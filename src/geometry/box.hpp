// Axis-aligned bounding box with the min/max distance queries the
// bounding-box pruning optimization of the paper (§4.4) relies on.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "geometry/point.hpp"

namespace geo {

template <int D>
struct Box {
    Point<D> lo;
    Point<D> hi;

    /// Empty box: lo = +inf, hi = -inf; extending with any point fixes it.
    static constexpr Box empty() noexcept {
        Box b;
        for (int i = 0; i < D; ++i) {
            b.lo[i] = std::numeric_limits<double>::infinity();
            b.hi[i] = -std::numeric_limits<double>::infinity();
        }
        return b;
    }

    static Box around(std::span<const Point<D>> points) noexcept {
        Box b = empty();
        for (const auto& p : points) b.extend(p);
        return b;
    }

    constexpr void extend(const Point<D>& p) noexcept {
        for (int i = 0; i < D; ++i) {
            lo[i] = std::min(lo[i], p[i]);
            hi[i] = std::max(hi[i], p[i]);
        }
    }

    constexpr void extend(const Box& o) noexcept {
        extend(o.lo);
        extend(o.hi);
    }

    [[nodiscard]] constexpr bool valid() const noexcept {
        for (int i = 0; i < D; ++i)
            if (lo[i] > hi[i]) return false;
        return true;
    }

    [[nodiscard]] constexpr bool contains(const Point<D>& p) const noexcept {
        for (int i = 0; i < D; ++i)
            if (p[i] < lo[i] || p[i] > hi[i]) return false;
        return true;
    }

    [[nodiscard]] constexpr Point<D> center() const noexcept {
        Point<D> c;
        for (int i = 0; i < D; ++i) c[i] = 0.5 * (lo[i] + hi[i]);
        return c;
    }

    [[nodiscard]] constexpr Point<D> extent() const noexcept {
        Point<D> e;
        for (int i = 0; i < D; ++i) e[i] = hi[i] - lo[i];
        return e;
    }

    /// Index of the widest axis (used by RCB / MultiJagged cut selection).
    [[nodiscard]] constexpr int widestAxis() const noexcept {
        int best = 0;
        double bestExtent = hi[0] - lo[0];
        for (int i = 1; i < D; ++i) {
            const double e = hi[i] - lo[i];
            if (e > bestExtent) {
                bestExtent = e;
                best = i;
            }
        }
        return best;
    }

    /// Smallest squared distance from p to any point of the box (0 if inside).
    [[nodiscard]] constexpr double minSquaredDistance(const Point<D>& p) const noexcept {
        double s = 0.0;
        for (int i = 0; i < D; ++i) {
            double d = 0.0;
            if (p[i] < lo[i]) d = lo[i] - p[i];
            else if (p[i] > hi[i]) d = p[i] - hi[i];
            s += d * d;
        }
        return s;
    }

    /// Largest squared distance from p to any point of the box.
    [[nodiscard]] constexpr double maxSquaredDistance(const Point<D>& p) const noexcept {
        double s = 0.0;
        for (int i = 0; i < D; ++i) {
            const double d = std::max(std::abs(p[i] - lo[i]), std::abs(p[i] - hi[i]));
            s += d * d;
        }
        return s;
    }

    [[nodiscard]] double minDistance(const Point<D>& p) const noexcept {
        return std::sqrt(minSquaredDistance(p));
    }

    [[nodiscard]] double maxDistance(const Point<D>& p) const noexcept {
        return std::sqrt(maxSquaredDistance(p));
    }

    [[nodiscard]] double diagonal() const noexcept { return distance(lo, hi); }
};

using Box2 = Box<2>;
using Box3 = Box<3>;

}  // namespace geo
