#include "geometry/eigen.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace geo {

template <int D>
Point<D> centroid(std::span<const Point<D>> points, std::span<const double> weights) {
    GEO_REQUIRE(!points.empty(), "centroid of empty point set");
    GEO_REQUIRE(weights.empty() || weights.size() == points.size(),
                "weights must be empty or match points");
    Point<D> c{};
    double totalWeight = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const double w = weights.empty() ? 1.0 : weights[i];
        c += points[i] * w;
        totalWeight += w;
    }
    GEO_REQUIRE(totalWeight > 0.0, "total weight must be positive");
    return c / totalWeight;
}

template <int D>
SymMatrix<D> covarianceMatrix(std::span<const Point<D>> points,
                              std::span<const double> weights) {
    const Point<D> mean = centroid<D>(points, weights);
    SymMatrix<D> m{};
    double totalWeight = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const double w = weights.empty() ? 1.0 : weights[i];
        const Point<D> d = points[i] - mean;
        for (int r = 0; r < D; ++r)
            for (int c = 0; c < D; ++c) m[r][c] += w * d[r] * d[c];
        totalWeight += w;
    }
    for (int r = 0; r < D; ++r)
        for (int c = 0; c < D; ++c) m[r][c] /= totalWeight;
    return m;
}

namespace {

/// Power iteration with deflation fallback; robust enough for the tiny,
/// well-conditioned covariance matrices RIB produces.
template <int D>
Point<D> powerIteration(const SymMatrix<D>& m) {
    // Deterministic start vector not orthogonal to the dominant eigenvector
    // for generic inputs; perturbed restart handles the unlucky case.
    Point<D> v{};
    for (int i = 0; i < D; ++i) v[i] = 1.0 + 0.01 * i;
    double vn = norm(v);
    v /= vn;

    Point<D> prev = v;
    for (int iter = 0; iter < 200; ++iter) {
        Point<D> next{};
        for (int r = 0; r < D; ++r)
            for (int c = 0; c < D; ++c) next[r] += m[r][c] * v[c];
        const double n = norm(next);
        if (n < 1e-300) {
            // Zero matrix (all points identical): any direction works.
            Point<D> axis{};
            axis[0] = 1.0;
            return axis;
        }
        next /= n;
        // Sign-stabilize so convergence checks work for negative eigenvalues
        // (cannot happen for covariances, but keep the routine generic).
        if (dot(next, v) < 0.0) next *= -1.0;
        prev = v;
        v = next;
        if (squaredDistance(v, prev) < 1e-24) break;
    }
    return v;
}

}  // namespace

template <int D>
Point<D> principalAxis(const SymMatrix<D>& m) {
    // Shift the spectrum so the dominant-magnitude eigenvalue is the largest
    // algebraic one: add trace-based diagonal shift (covariances are PSD so
    // this is belt-and-braces only).
    SymMatrix<D> shifted = m;
    double trace = 0.0;
    for (int i = 0; i < D; ++i) trace += m[i][i];
    for (int i = 0; i < D; ++i) shifted[i][i] += trace + 1e-12;
    return powerIteration<D>(shifted);
}

template SymMatrix<2> covarianceMatrix<2>(std::span<const Point2>, std::span<const double>);
template SymMatrix<3> covarianceMatrix<3>(std::span<const Point3>, std::span<const double>);
template Point2 centroid<2>(std::span<const Point2>, std::span<const double>);
template Point3 centroid<3>(std::span<const Point3>, std::span<const double>);
template Point2 principalAxis<2>(const SymMatrix<2>&);
template Point3 principalAxis<3>(const SymMatrix<3>&);

}  // namespace geo
