// Fixed-dimension geometric point type.
//
// The partitioner is templated on the spatial dimension D (2 or 3); 2.5D
// climate meshes are D=2 points with node weights, following the paper.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <ostream>

namespace geo {

template <int D>
struct Point {
    static_assert(D >= 1 && D <= 3, "supported dimensions: 1..3");

    std::array<double, D> x{};

    constexpr double& operator[](int i) noexcept { return x[static_cast<std::size_t>(i)]; }
    constexpr double operator[](int i) const noexcept { return x[static_cast<std::size_t>(i)]; }

    constexpr Point& operator+=(const Point& o) noexcept {
        for (int i = 0; i < D; ++i) x[i] += o.x[i];
        return *this;
    }
    constexpr Point& operator-=(const Point& o) noexcept {
        for (int i = 0; i < D; ++i) x[i] -= o.x[i];
        return *this;
    }
    constexpr Point& operator*=(double s) noexcept {
        for (auto& v : x) v *= s;
        return *this;
    }
    constexpr Point& operator/=(double s) noexcept {
        for (auto& v : x) v /= s;
        return *this;
    }

    friend constexpr Point operator+(Point a, const Point& b) noexcept { return a += b; }
    friend constexpr Point operator-(Point a, const Point& b) noexcept { return a -= b; }
    friend constexpr Point operator*(Point a, double s) noexcept { return a *= s; }
    friend constexpr Point operator*(double s, Point a) noexcept { return a *= s; }
    friend constexpr Point operator/(Point a, double s) noexcept { return a /= s; }
    friend constexpr bool operator==(const Point& a, const Point& b) noexcept {
        return a.x == b.x;
    }

    friend std::ostream& operator<<(std::ostream& os, const Point& p) {
        os << '(';
        for (int i = 0; i < D; ++i) os << (i ? ", " : "") << p.x[static_cast<std::size_t>(i)];
        return os << ')';
    }
};

template <int D>
constexpr double dot(const Point<D>& a, const Point<D>& b) noexcept {
    double s = 0.0;
    for (int i = 0; i < D; ++i) s += a[i] * b[i];
    return s;
}

template <int D>
constexpr double squaredDistance(const Point<D>& a, const Point<D>& b) noexcept {
    double s = 0.0;
    for (int i = 0; i < D; ++i) {
        const double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

template <int D>
double distance(const Point<D>& a, const Point<D>& b) noexcept {
    return std::sqrt(squaredDistance(a, b));
}

template <int D>
double norm(const Point<D>& a) noexcept {
    return std::sqrt(dot(a, a));
}

using Point2 = Point<2>;
using Point3 = Point<3>;

}  // namespace geo
