// Small symmetric eigenproblems for recursive inertial bisection (RIB).
//
// RIB projects points onto the principal axis of their covariance matrix;
// for D = 2 and D = 3 the symmetric eigenproblem is solved in closed form /
// with a few Jacobi rotations — no external linear algebra dependency.
#pragma once

#include <array>
#include <span>

#include "geometry/point.hpp"

namespace geo {

/// Symmetric D×D matrix stored densely (only used for D = 2, 3).
template <int D>
using SymMatrix = std::array<std::array<double, D>, D>;

/// Weighted covariance matrix of a point cloud about its weighted centroid.
/// An empty weight span means unit weights.
template <int D>
SymMatrix<D> covarianceMatrix(std::span<const Point<D>> points,
                              std::span<const double> weights = {});

/// Weighted centroid. An empty weight span means unit weights.
template <int D>
Point<D> centroid(std::span<const Point<D>> points, std::span<const double> weights = {});

/// Eigenvector of the largest eigenvalue of a symmetric matrix
/// (the principal axis). Returns a unit vector.
template <int D>
Point<D> principalAxis(const SymMatrix<D>& m);

extern template SymMatrix<2> covarianceMatrix<2>(std::span<const Point2>, std::span<const double>);
extern template SymMatrix<3> covarianceMatrix<3>(std::span<const Point3>, std::span<const double>);
extern template Point2 centroid<2>(std::span<const Point2>, std::span<const double>);
extern template Point3 centroid<3>(std::span<const Point3>, std::span<const double>);
extern template Point2 principalAxis<2>(const SymMatrix<2>&);
extern template Point3 principalAxis<3>(const SymMatrix<3>&);

}  // namespace geo
