// Distributed SpMV benchmark (§2 and §5.2.4 of the paper).
//
// "To measure the quality of a partition empirically, we redistribute the
//  input graph according to it, perform sparse matrix-vector multiplications
//  with the adjacency matrix ... and measure the communication time needed
//  within the SpMV", averaged over 100 multiplications.
//
// We redistribute the graph into one subdomain per block, build the halo
// (ghost-vertex) exchange plan, and execute the multiplications. Per
// iteration we measure the wall time of the ghost exchange (the shared-
// memory stand-in for MPI point-to-point traffic) and also report a modeled
// network time from the latency–bandwidth cost model, which is the number
// comparable to the paper's timeSpMVComm column.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/metrics.hpp"
#include "par/cost_model.hpp"

namespace geo::spmv {

/// Halo exchange plan: for every block, which foreign vertices it reads.
struct HaloPlan {
    std::int32_t k = 0;
    /// ghosts[b] = sorted foreign vertices block b needs (its receive list).
    std::vector<std::vector<graph::Vertex>> ghosts;
    /// neighborCount[b] = number of distinct blocks b receives from.
    std::vector<std::int32_t> neighborCount;

    [[nodiscard]] std::int64_t totalGhosts() const noexcept {
        std::int64_t s = 0;
        for (const auto& g : ghosts) s += static_cast<std::int64_t>(g.size());
        return s;
    }
    [[nodiscard]] std::int64_t maxGhosts() const noexcept {
        std::int64_t m = 0;
        for (const auto& g : ghosts) m = std::max(m, static_cast<std::int64_t>(g.size()));
        return m;
    }
};

HaloPlan buildHaloPlan(const graph::CsrGraph& g, const graph::Partition& part,
                       std::int32_t k);

struct SpmvTiming {
    double commSecondsPerIteration = 0.0;     ///< measured ghost-exchange wall time
    double modeledCommSecondsPerIteration = 0.0;  ///< latency–bandwidth estimate
    double computeSecondsPerIteration = 0.0;  ///< local multiply wall time
    std::int64_t totalGhosts = 0;
    std::int64_t maxGhosts = 0;
    std::int32_t maxNeighbors = 0;
    int iterations = 0;
};

/// Run `iterations` SpMVs y = A·x on the block-distributed graph and report
/// per-iteration communication cost. Deterministic given the graph.
SpmvTiming runSpmv(const graph::CsrGraph& g, const graph::Partition& part, std::int32_t k,
                   int iterations = 100, const par::CostModel& model = {});

}  // namespace geo::spmv
