#include "spmv/spmv.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "support/assert.hpp"
#include "support/timer.hpp"

namespace geo::spmv {

HaloPlan buildHaloPlan(const graph::CsrGraph& g, const graph::Partition& part,
                       std::int32_t k) {
    graph::validatePartition(g, part, k);
    HaloPlan plan;
    plan.k = k;
    plan.ghosts.resize(static_cast<std::size_t>(k));
    plan.neighborCount.assign(static_cast<std::size_t>(k), 0);

    const graph::Vertex n = g.numVertices();
    for (graph::Vertex v = 0; v < n; ++v) {
        const auto bv = part[static_cast<std::size_t>(v)];
        for (const auto u : g.neighbors(v)) {
            if (part[static_cast<std::size_t>(u)] != bv)
                plan.ghosts[static_cast<std::size_t>(bv)].push_back(u);
        }
    }
    for (std::int32_t b = 0; b < k; ++b) {
        auto& ghosts = plan.ghosts[static_cast<std::size_t>(b)];
        std::sort(ghosts.begin(), ghosts.end());
        ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
        std::set<std::int32_t> owners;
        for (const auto u : ghosts) owners.insert(part[static_cast<std::size_t>(u)]);
        plan.neighborCount[static_cast<std::size_t>(b)] =
            static_cast<std::int32_t>(owners.size());
    }
    return plan;
}

SpmvTiming runSpmv(const graph::CsrGraph& g, const graph::Partition& part, std::int32_t k,
                   int iterations, const par::CostModel& model) {
    GEO_REQUIRE(iterations >= 1, "need at least one iteration");
    const auto plan = buildHaloPlan(g, part, k);

    const graph::Vertex n = g.numVertices();
    std::vector<double> x(static_cast<std::size_t>(n));
    std::vector<double> y(static_cast<std::size_t>(n), 0.0);
    for (graph::Vertex v = 0; v < n; ++v)
        x[static_cast<std::size_t>(v)] = 1.0 + 0.001 * static_cast<double>(v % 1000);

    // Ghost receive buffers per block — the exchange is a copy from the
    // owner's x values into the consumer's buffer, byte-equivalent to the
    // MPI messages a real run would post.
    std::vector<std::vector<double>> ghostValues(static_cast<std::size_t>(k));
    for (std::int32_t b = 0; b < k; ++b)
        ghostValues[static_cast<std::size_t>(b)]
            .resize(plan.ghosts[static_cast<std::size_t>(b)].size());

    // Vertices grouped by block for the local multiply sweep.
    std::vector<std::vector<graph::Vertex>> owned(static_cast<std::size_t>(k));
    for (graph::Vertex v = 0; v < n; ++v)
        owned[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])].push_back(v);

    SpmvTiming timing;
    timing.iterations = iterations;
    timing.totalGhosts = plan.totalGhosts();
    timing.maxGhosts = plan.maxGhosts();
    timing.maxNeighbors =
        plan.neighborCount.empty()
            ? 0
            : *std::max_element(plan.neighborCount.begin(), plan.neighborCount.end());

    // Modeled comm: slowest block per iteration (makespan), one message per
    // neighbor, 8 bytes per ghost value each way.
    double modeledPerIter = 0.0;
    for (std::int32_t b = 0; b < k; ++b) {
        const auto bytes = plan.ghosts[static_cast<std::size_t>(b)].size() * sizeof(double);
        modeledPerIter = std::max(
            modeledPerIter, model.neighborExchange(
                                k, plan.neighborCount[static_cast<std::size_t>(b)], bytes));
    }
    timing.modeledCommSecondsPerIteration = modeledPerIter;

    double commSeconds = 0.0, computeSeconds = 0.0;
    for (int iter = 0; iter < iterations; ++iter) {
        // Halo exchange.
        Timer tc;
        for (std::int32_t b = 0; b < k; ++b) {
            const auto& ghosts = plan.ghosts[static_cast<std::size_t>(b)];
            auto& buf = ghostValues[static_cast<std::size_t>(b)];
            for (std::size_t i = 0; i < ghosts.size(); ++i)
                buf[i] = x[static_cast<std::size_t>(ghosts[i])];
        }
        commSeconds += tc.seconds();

        // Local multiply: y = A·x (ghost values come from the buffers,
        // found by binary search in the sorted ghost list).
        Timer tm;
        for (std::int32_t b = 0; b < k; ++b) {
            const auto& ghosts = plan.ghosts[static_cast<std::size_t>(b)];
            const auto& buf = ghostValues[static_cast<std::size_t>(b)];
            for (const auto v : owned[static_cast<std::size_t>(b)]) {
                double acc = 0.0;
                for (const auto u : g.neighbors(v)) {
                    if (part[static_cast<std::size_t>(u)] ==
                        part[static_cast<std::size_t>(v)]) {
                        acc += x[static_cast<std::size_t>(u)];
                    } else {
                        const auto it =
                            std::lower_bound(ghosts.begin(), ghosts.end(), u);
                        acc += buf[static_cast<std::size_t>(it - ghosts.begin())];
                    }
                }
                // Normalize by degree so repeated multiplications stay in
                // range (random-walk operator instead of raw adjacency —
                // identical memory traffic, no overflow after 100 rounds).
                y[static_cast<std::size_t>(v)] =
                    acc / static_cast<double>(std::max<std::int64_t>(g.degree(v), 1));
            }
        }
        computeSeconds += tm.seconds();
        std::swap(x, y);
    }

    timing.commSecondsPerIteration = commSeconds / iterations;
    timing.computeSecondsPerIteration = computeSeconds / iterations;
    return timing;
}

}  // namespace geo::spmv
