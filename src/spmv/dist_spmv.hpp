// SPMD distributed SpMV over the simulated message-passing runtime.
//
// The paper measures SpMV communication time with real MPI ranks: the graph
// is redistributed according to the partition, each process owns the rows
// of its blocks, and every multiplication starts with a halo exchange of
// ghost values. This module reproduces that setup end-to-end on the
// simulated runtime: blocks are mapped to ranks, each rank extracts its
// local subgraph, halos move through Comm::alltoallv, and per-rank CPU and
// modeled network time are reported — the distributed counterpart of the
// plan-based `runSpmv`.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"
#include "graph/metrics.hpp"
#include "par/comm.hpp"

namespace geo::spmv {

struct DistSpmvTiming {
    double commSecondsPerIteration = 0.0;     ///< modeled network time (max rank)
    double computeSecondsPerIteration = 0.0;  ///< max-rank CPU time
    std::uint64_t haloBytesPerIteration = 0;  ///< total ghost bytes moved
    std::int64_t totalGhosts = 0;
    int iterations = 0;
    double checksum = 0.0;  ///< sum of the result vector (correctness probe)
};

/// Run `iterations` distributed SpMVs with `ranks` SPMD processes; block b
/// of the partition is owned by rank b % ranks. Deterministic.
DistSpmvTiming runSpmvDistributed(const graph::CsrGraph& g, const graph::Partition& part,
                                  std::int32_t k, int ranks, int iterations = 100,
                                  const par::CostModel& model = {});

}  // namespace geo::spmv
