#include "spmv/dist_spmv.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "support/assert.hpp"

namespace geo::spmv {

namespace {

/// Deterministic initial vector entry (shared with the plan-based runner's
/// spirit: bounded values so 100 iterations stay finite).
double initialValue(graph::Vertex v) {
    return 1.0 + 0.001 * static_cast<double>(v % 1000);
}

struct RankState {
    std::vector<graph::Vertex> owned;               ///< global ids of owned vertices
    std::unordered_map<graph::Vertex, std::size_t> globalToLocal;
    std::vector<double> x;                          ///< values of owned vertices
    // Halo: for each peer rank, the global ids we must send / receive.
    std::vector<std::vector<graph::Vertex>> sendIds;  ///< indexed by peer rank
    std::vector<std::vector<graph::Vertex>> recvIds;
    std::unordered_map<graph::Vertex, double> ghostValues;
};

}  // namespace

DistSpmvTiming runSpmvDistributed(const graph::CsrGraph& g, const graph::Partition& part,
                                  std::int32_t k, int ranks, int iterations,
                                  const par::CostModel& model) {
    graph::validatePartition(g, part, k);
    GEO_REQUIRE(ranks >= 1, "need at least one rank");
    GEO_REQUIRE(iterations >= 1, "need at least one iteration");

    auto ownerOf = [&](graph::Vertex v) {
        return static_cast<int>(part[static_cast<std::size_t>(v)] % ranks);
    };

    DistSpmvTiming timing;
    timing.iterations = iterations;

    std::vector<double> perRankCpu(static_cast<std::size_t>(ranks), 0.0);
    std::vector<double> checksums(static_cast<std::size_t>(ranks), 0.0);
    std::vector<std::uint64_t> haloBytes(static_cast<std::size_t>(ranks), 0);
    std::vector<double> modeledComm(static_cast<std::size_t>(ranks), 0.0);
    std::vector<std::int64_t> ghosts(static_cast<std::size_t>(ranks), 0);

    // Pinned to the simulator: the body assembles per-rank timing vectors
    // through shared memory (perRankCpu, checksums, ...), which a
    // cross-process transport cannot provide.
    par::Machine machine(ranks, model, par::TransportKind::Sim);
    machine.run([&](par::Comm& comm) {
        const int r = comm.rank();
        const int p = comm.size();

        // Build the local subdomain: owned vertices, halo send/recv lists.
        const double cpu0 = comm.cpuSeconds();
        RankState st;
        st.sendIds.resize(static_cast<std::size_t>(p));
        st.recvIds.resize(static_cast<std::size_t>(p));
        for (graph::Vertex v = 0; v < g.numVertices(); ++v) {
            if (ownerOf(v) != r) continue;
            st.globalToLocal.emplace(v, st.owned.size());
            st.owned.push_back(v);
            st.x.push_back(initialValue(v));
        }
        // Receive list: foreign neighbors of owned vertices, by owner.
        for (const auto v : st.owned) {
            for (const auto u : g.neighbors(v)) {
                const int owner = ownerOf(u);
                if (owner != r) st.recvIds[static_cast<std::size_t>(owner)].push_back(u);
            }
        }
        for (auto& ids : st.recvIds) {
            std::sort(ids.begin(), ids.end());
            ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
        }
        // Send lists are the transpose of receive lists: exchange requests.
        {
            std::vector<std::vector<graph::Vertex>> requests(static_cast<std::size_t>(p));
            for (int peer = 0; peer < p; ++peer)
                requests[static_cast<std::size_t>(peer)] =
                    st.recvIds[static_cast<std::size_t>(peer)];
            // Tag each request with the requester: flatten as (requester, id)
            // pairs via alltoallv.
            struct Req {
                std::int32_t requester;
                graph::Vertex id;
            };
            std::vector<std::vector<Req>> outbound(static_cast<std::size_t>(p));
            for (int peer = 0; peer < p; ++peer)
                for (const auto id : requests[static_cast<std::size_t>(peer)])
                    outbound[static_cast<std::size_t>(peer)].push_back(Req{r, id});
            const auto inbound = comm.alltoallv(outbound);
            for (const auto& req : inbound)
                st.sendIds[static_cast<std::size_t>(req.requester)].push_back(req.id);
        }

        std::int64_t myGhosts = 0;
        for (const auto& ids : st.recvIds) myGhosts += static_cast<std::int64_t>(ids.size());

        // Iterate: halo exchange + local multiply.
        std::uint64_t myHaloBytes = 0;
        std::vector<double> y(st.x.size());
        for (int iter = 0; iter < iterations; ++iter) {
            std::vector<std::vector<double>> outbound(static_cast<std::size_t>(p));
            for (int peer = 0; peer < p; ++peer) {
                for (const auto id : st.sendIds[static_cast<std::size_t>(peer)])
                    outbound[static_cast<std::size_t>(peer)].push_back(
                        st.x[st.globalToLocal.at(id)]);
                if (peer != r)
                    myHaloBytes += st.sendIds[static_cast<std::size_t>(peer)].size() *
                                   sizeof(double);
            }
            const auto inbound = comm.alltoallv(outbound);
            // inbound concatenates, in rank order, the values each peer sent
            // us — matching the order of our recvIds lists.
            std::size_t cursor = 0;
            st.ghostValues.clear();
            for (int peer = 0; peer < p; ++peer)
                for (const auto id : st.recvIds[static_cast<std::size_t>(peer)])
                    st.ghostValues[id] = inbound[cursor++];
            GEO_CHECK(cursor == inbound.size(), "halo exchange size mismatch");

            for (std::size_t i = 0; i < st.owned.size(); ++i) {
                const auto v = st.owned[i];
                double acc = 0.0;
                for (const auto u : g.neighbors(v)) {
                    const auto it = st.globalToLocal.find(u);
                    acc += it != st.globalToLocal.end() ? st.x[it->second]
                                                        : st.ghostValues.at(u);
                }
                y[i] = acc / static_cast<double>(std::max<std::int64_t>(g.degree(v), 1));
            }
            std::swap(st.x, y);
        }

        double checksum = 0.0;
        for (const auto v : st.x) checksum += v;

        perRankCpu[static_cast<std::size_t>(r)] = comm.cpuSeconds() - cpu0;
        checksums[static_cast<std::size_t>(r)] = checksum;
        haloBytes[static_cast<std::size_t>(r)] = myHaloBytes;
        modeledComm[static_cast<std::size_t>(r)] = comm.stats().modeledCommSeconds;
        ghosts[static_cast<std::size_t>(r)] = myGhosts;
    });

    timing.computeSecondsPerIteration =
        *std::max_element(perRankCpu.begin(), perRankCpu.end()) / iterations;
    timing.commSecondsPerIteration =
        *std::max_element(modeledComm.begin(), modeledComm.end()) / iterations;
    timing.checksum = std::accumulate(checksums.begin(), checksums.end(), 0.0);
    timing.haloBytesPerIteration =
        std::accumulate(haloBytes.begin(), haloBytes.end(), std::uint64_t{0}) /
        static_cast<std::uint64_t>(iterations);
    timing.totalGhosts = std::accumulate(ghosts.begin(), ghosts.end(), std::int64_t{0});
    return timing;
}

}  // namespace geo::spmv
