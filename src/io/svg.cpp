#include "io/svg.hpp"

#include <array>
#include <fstream>

#include "geometry/box.hpp"
#include "support/assert.hpp"

namespace geo::io {

namespace {

// Qualitative palette (ColorBrewer Set1 + Dark2 extension).
constexpr std::array<const char*, 16> kPalette = {
    "#e41a1c", "#377eb8", "#4daf4a", "#984ea3", "#ff7f00", "#ffff33", "#a65628", "#f781bf",
    "#1b9e77", "#d95f02", "#7570b3", "#e7298a", "#66a61e", "#e6ab02", "#a6761d", "#666666"};

}  // namespace

void writeSvgPartition(const std::string& path, const std::vector<Point2>& points,
                       const graph::Partition& part, std::int32_t k, int widthPx,
                       const std::string& title) {
    GEO_REQUIRE(points.size() == part.size(), "one block per point");
    GEO_REQUIRE(k >= 1, "need at least one block");
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open for writing: " + path);

    const auto bb = Box2::around(std::span<const Point2>(points));
    const double extentX = std::max(bb.hi[0] - bb.lo[0], 1e-12);
    const double extentY = std::max(bb.hi[1] - bb.lo[1], 1e-12);
    const int heightPx = static_cast<int>(widthPx * extentY / extentX);
    const double radius = std::max(0.8, widthPx / 500.0);

    out << "<svg xmlns='http://www.w3.org/2000/svg' width='" << widthPx << "' height='"
        << heightPx << "' viewBox='0 0 " << widthPx << ' ' << heightPx << "'>\n";
    if (!title.empty())
        out << "<title>" << title << "</title>\n";
    out << "<rect width='100%' height='100%' fill='white'/>\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const double x = (points[i][0] - bb.lo[0]) / extentX * widthPx;
        // SVG y grows downward.
        const double y = heightPx - (points[i][1] - bb.lo[1]) / extentY * heightPx;
        const char* color =
            kPalette[static_cast<std::size_t>(part[i]) % kPalette.size()];
        out << "<circle cx='" << x << "' cy='" << y << "' r='" << radius << "' fill='"
            << color << "'/>\n";
    }
    out << "</svg>\n";
    GEO_CHECK(out.good(), "write failed: " + path);
}

}  // namespace geo::io
