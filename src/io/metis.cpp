#include "io/metis.hpp"

#include <fstream>
#include <sstream>

#include "geometry/point.hpp"
#include "support/assert.hpp"

namespace geo::io {

namespace {

std::ifstream openIn(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open for reading: " + path);
    return in;
}

std::ofstream openOut(const std::string& path) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open for writing: " + path);
    return out;
}

/// Next non-comment line (METIS comments start with '%').
bool nextLine(std::ifstream& in, std::string& line) {
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%') return true;
    }
    return false;
}

}  // namespace

void writeMetis(const std::string& path, const graph::CsrGraph& g,
                const std::vector<double>& vertexWeights) {
    GEO_REQUIRE(vertexWeights.empty() ||
                    static_cast<graph::Vertex>(vertexWeights.size()) == g.numVertices(),
                "weights must be empty or match vertices");
    auto out = openOut(path);
    const bool weighted = !vertexWeights.empty();
    out << g.numVertices() << ' ' << g.numEdges();
    if (weighted) out << " 010";
    out << '\n';
    for (graph::Vertex v = 0; v < g.numVertices(); ++v) {
        bool first = true;
        if (weighted) {
            out << static_cast<long long>(vertexWeights[static_cast<std::size_t>(v)]);
            first = false;
        }
        for (const auto u : g.neighbors(v)) {
            if (!first) out << ' ';
            out << (u + 1);  // 1-based
            first = false;
        }
        out << '\n';
    }
    GEO_CHECK(out.good(), "write failed: " + path);
}

MetisGraph readMetis(const std::string& path) {
    auto in = openIn(path);
    std::string line;
    if (!nextLine(in, line)) throw std::runtime_error("empty METIS file: " + path);
    std::istringstream header(line);
    std::int64_t n = 0, m = 0;
    std::string fmt;
    if (!(header >> n >> m) || n < 0 || m < 0)
        throw std::runtime_error("bad METIS header: " + path);
    header >> fmt;  // optional format field
    const bool weighted = fmt.size() >= 2 && fmt[fmt.size() - 2] == '1';

    MetisGraph out;
    graph::GraphBuilder builder(static_cast<graph::Vertex>(n));
    if (weighted) out.vertexWeights.reserve(static_cast<std::size_t>(n));
    for (std::int64_t v = 0; v < n; ++v) {
        if (!nextLine(in, line))
            throw std::runtime_error("unexpected end of METIS file: " + path);
        std::istringstream row(line);
        if (weighted) {
            double w;
            if (!(row >> w)) throw std::runtime_error("missing vertex weight: " + path);
            out.vertexWeights.push_back(w);
        }
        std::int64_t u;
        while (row >> u) {
            if (u < 1 || u > n) throw std::runtime_error("neighbor out of range: " + path);
            if (u - 1 > v)  // each undirected edge once
                builder.addEdge(static_cast<graph::Vertex>(v),
                                static_cast<graph::Vertex>(u - 1));
        }
    }
    out.graph = builder.build();
    if (out.graph.numEdges() != m)
        throw std::runtime_error("edge count mismatch in METIS file: " + path);
    return out;
}

void writePartition(const std::string& path, const graph::Partition& part) {
    auto out = openOut(path);
    for (const auto b : part) out << b << '\n';
    GEO_CHECK(out.good(), "write failed: " + path);
}

graph::Partition readPartition(const std::string& path) {
    auto in = openIn(path);
    graph::Partition part;
    std::int32_t b;
    while (in >> b) part.push_back(b);
    return part;
}

void writeCoordinates(const std::string& path, const std::vector<Point2>& points) {
    auto out = openOut(path);
    out.precision(17);
    for (const auto& p : points) out << p[0] << ' ' << p[1] << '\n';
    GEO_CHECK(out.good(), "write failed: " + path);
}

std::vector<Point2> readCoordinates(const std::string& path) {
    auto in = openIn(path);
    std::vector<Point2> points;
    double x, y;
    while (in >> x >> y) points.push_back(Point2{{x, y}});
    return points;
}

}  // namespace geo::io
