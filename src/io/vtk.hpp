// Legacy-VTK export of partitioned meshes for inspection in ParaView —
// the 3D counterpart of the SVG renderer (Fig. 1 shows 2D only; 3D block
// shapes are best judged interactively).
#pragma once

#include <string>
#include <vector>

#include "geometry/point.hpp"
#include "graph/csr.hpp"
#include "graph/metrics.hpp"

namespace geo::io {

/// Write an ASCII legacy VTK (PolyData) file: points, mesh edges as lines,
/// and the block id as a point scalar. Works for D = 2 (z = 0) and D = 3.
template <int D>
void writeVtk(const std::string& path, const std::vector<Point<D>>& points,
              const graph::CsrGraph& graph, const graph::Partition& part);

extern template void writeVtk<2>(const std::string&, const std::vector<Point2>&,
                                 const graph::CsrGraph&, const graph::Partition&);
extern template void writeVtk<3>(const std::string&, const std::vector<Point3>&,
                                 const graph::CsrGraph&, const graph::Partition&);

}  // namespace geo::io
