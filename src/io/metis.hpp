// METIS / Chaco graph file format: the interchange format the DIMACS
// benchmark meshes ship in, so generated instances can be exported for
// cross-checking against external partitioners, and external meshes can be
// imported.
//
// Format: first line "n m [fmt]", then one line per vertex listing its
// 1-based neighbors (with leading vertex weight when fmt has the 10 bit).
#pragma once

#include <string>
#include <vector>

#include "geometry/point.hpp"
#include "graph/csr.hpp"
#include "graph/metrics.hpp"

namespace geo::io {

struct MetisGraph {
    graph::CsrGraph graph;
    std::vector<double> vertexWeights;  ///< empty when the file has none
};

/// Write graph (+ optional vertex weights) in METIS format.
void writeMetis(const std::string& path, const graph::CsrGraph& g,
                const std::vector<double>& vertexWeights = {});

/// Read a METIS file; throws std::runtime_error on malformed input.
MetisGraph readMetis(const std::string& path);

/// One block id per line (the format METIS/KaHIP partition files use).
void writePartition(const std::string& path, const graph::Partition& part);
graph::Partition readPartition(const std::string& path);

/// 2D coordinates, one "x y" pair per line.
void writeCoordinates(const std::string& path, const std::vector<Point2>& points);
std::vector<Point2> readCoordinates(const std::string& path);

}  // namespace geo::io
