#include "io/vtk.hpp"

#include <fstream>

#include "support/assert.hpp"

namespace geo::io {

template <int D>
void writeVtk(const std::string& path, const std::vector<Point<D>>& points,
              const graph::CsrGraph& graph, const graph::Partition& part) {
    GEO_REQUIRE(points.size() == part.size(), "one block per point");
    GEO_REQUIRE(static_cast<graph::Vertex>(points.size()) == graph.numVertices(),
                "points must match graph vertices");
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open for writing: " + path);

    out << "# vtk DataFile Version 3.0\n"
        << "geographer partition\n"
        << "ASCII\n"
        << "DATASET POLYDATA\n";
    out << "POINTS " << points.size() << " double\n";
    out.precision(12);
    for (const auto& p : points) {
        out << p[0] << ' ' << p[1] << ' ' << (D == 3 ? p[2] : 0.0) << '\n';
    }

    const auto edges = graph.numEdges();
    out << "LINES " << edges << ' ' << 3 * edges << '\n';
    for (graph::Vertex v = 0; v < graph.numVertices(); ++v)
        for (const auto u : graph.neighbors(v))
            if (u > v) out << "2 " << v << ' ' << u << '\n';

    out << "POINT_DATA " << points.size() << '\n'
        << "SCALARS block int 1\n"
        << "LOOKUP_TABLE default\n";
    for (const auto b : part) out << b << '\n';
    GEO_CHECK(out.good(), "write failed: " + path);
}

template void writeVtk<2>(const std::string&, const std::vector<Point2>&,
                          const graph::CsrGraph&, const graph::Partition&);
template void writeVtk<3>(const std::string&, const std::vector<Point3>&,
                          const graph::CsrGraph&, const graph::Partition&);

}  // namespace geo::io
