// SVG rendering of 2D partitions — regenerates the visual comparison of
// Fig. 1 (partition shapes per tool).
#pragma once

#include <string>
#include <vector>

#include "geometry/point.hpp"
#include "graph/metrics.hpp"

namespace geo::io {

/// Render points colored by block into an SVG file. Colors cycle through a
/// fixed qualitative palette; the viewport is fitted to the point cloud.
void writeSvgPartition(const std::string& path, const std::vector<Point2>& points,
                       const graph::Partition& part, std::int32_t k, int widthPx = 800,
                       const std::string& title = "");

}  // namespace geo::io
