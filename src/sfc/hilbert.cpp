#include "sfc/hilbert.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "par/parallel_for.hpp"
#include "support/assert.hpp"

namespace geo::sfc {

namespace {

/// Quantize p into integer grid coordinates with `bits` bits per dimension.
template <int D>
std::array<std::uint32_t, D> quantize(const Point<D>& p, const Box<D>& bounds, int bits) {
    GEO_REQUIRE(bounds.valid(), "hilbert index needs a valid bounding box");
    std::array<std::uint32_t, D> coord{};
    const auto maxCell = static_cast<std::uint64_t>((1ULL << bits) - 1);
    for (int i = 0; i < D; ++i) {
        const double extent = bounds.hi[i] - bounds.lo[i];
        double t = extent > 0.0 ? (p[i] - bounds.lo[i]) / extent : 0.0;
        t = std::clamp(t, 0.0, 1.0);
        auto c = static_cast<std::uint64_t>(t * static_cast<double>(maxCell + 1));
        coord[static_cast<std::size_t>(i)] =
            static_cast<std::uint32_t>(std::min<std::uint64_t>(c, maxCell));
    }
    return coord;
}

/// Skilling: axis coordinates -> transpose form of the Hilbert index.
template <int D>
void axesToTranspose(std::array<std::uint32_t, D>& x, int bits) {
    // Gray decode by H ^ (H/2).
    std::uint32_t m = 1U << (bits - 1);
    // Inverse undo.
    for (std::uint32_t q = m; q > 1; q >>= 1) {
        const std::uint32_t pMask = q - 1;
        for (int i = 0; i < D; ++i) {
            if (x[static_cast<std::size_t>(i)] & q) {
                x[0] ^= pMask;  // invert
            } else {
                const std::uint32_t t = (x[0] ^ x[static_cast<std::size_t>(i)]) & pMask;
                x[0] ^= t;
                x[static_cast<std::size_t>(i)] ^= t;
            }
        }
    }
    // Gray encode.
    for (int i = 1; i < D; ++i) x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i - 1)];
    std::uint32_t t = 0;
    for (std::uint32_t q = m; q > 1; q >>= 1) {
        if (x[static_cast<std::size_t>(D - 1)] & q) t ^= q - 1;
    }
    for (int i = 0; i < D; ++i) x[static_cast<std::size_t>(i)] ^= t;
}

/// Skilling: transpose form -> axis coordinates (inverse of the above).
template <int D>
void transposeToAxes(std::array<std::uint32_t, D>& x, int bits) {
    const std::uint32_t n = 2U << (bits - 1);
    // Gray decode by H ^ (H/2).
    std::uint32_t t = x[static_cast<std::size_t>(D - 1)] >> 1;
    for (int i = D - 1; i > 0; --i)
        x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i - 1)];
    x[0] ^= t;
    // Undo excess work.
    for (std::uint32_t q = 2; q != n; q <<= 1) {
        const std::uint32_t pMask = q - 1;
        for (int i = D - 1; i >= 0; --i) {
            if (x[static_cast<std::size_t>(i)] & q) {
                x[0] ^= pMask;
            } else {
                const std::uint32_t s = (x[0] ^ x[static_cast<std::size_t>(i)]) & pMask;
                x[0] ^= s;
                x[static_cast<std::size_t>(i)] ^= s;
            }
        }
    }
}

/// Interleave the transpose form into one integer: bit b of dimension i of
/// the transpose occupies position b*D + (D-1-i) of the index.
template <int D>
std::uint64_t packTranspose(const std::array<std::uint32_t, D>& x, int bits) {
    std::uint64_t index = 0;
    for (int b = bits - 1; b >= 0; --b) {
        for (int i = 0; i < D; ++i) {
            index <<= 1;
            index |= (x[static_cast<std::size_t>(i)] >> b) & 1U;
        }
    }
    return index;
}

template <int D>
std::array<std::uint32_t, D> unpackTranspose(std::uint64_t index, int bits) {
    std::array<std::uint32_t, D> x{};
    for (int b = 0; b < bits; ++b) {
        for (int i = D - 1; i >= 0; --i) {
            x[static_cast<std::size_t>(i)] |= static_cast<std::uint32_t>(index & 1ULL) << b;
            index >>= 1;
        }
    }
    return x;
}

}  // namespace

template <int D>
std::uint64_t hilbertIndex(const Point<D>& p, const Box<D>& bounds) {
    constexpr int bits = kBitsPerDim<D>;
    auto coord = quantize<D>(p, bounds, bits);
    axesToTranspose<D>(coord, bits);
    return packTranspose<D>(coord, bits);
}

template <int D>
Point<D> hilbertPoint(std::uint64_t index, const Box<D>& bounds) {
    constexpr int bits = kBitsPerDim<D>;
    auto coord = unpackTranspose<D>(index, bits);
    transposeToAxes<D>(coord, bits);
    Point<D> p;
    const double cells = static_cast<double>(1ULL << bits);
    for (int i = 0; i < D; ++i) {
        const double extent = bounds.hi[i] - bounds.lo[i];
        p[i] = bounds.lo[i] +
               extent * ((static_cast<double>(coord[static_cast<std::size_t>(i)]) + 0.5) / cells);
    }
    return p;
}

template <int D>
Box<D> boundsOf(std::span<const Point<D>> points, int threads) {
    if (points.empty()) return Box<D>::empty();
    std::vector<Box<D>> partial(static_cast<std::size_t>(std::max(1, threads)),
                                Box<D>::empty());
    par::parallelFor(threads, points.size(),
                     [&](std::size_t i0, std::size_t i1, int worker) {
                         Box<D> bb = Box<D>::empty();
                         for (std::size_t i = i0; i < i1; ++i) bb.extend(points[i]);
                         partial[static_cast<std::size_t>(worker)] = bb;
                     });
    Box<D> out = Box<D>::empty();
    for (const auto& bb : partial)
        if (bb.valid()) out.extend(bb);
    return out;
}

template <int D>
void hilbertIndicesInto(std::span<const Point<D>> points, const Box<D>& bounds,
                        std::span<std::uint64_t> out, int threads) {
    GEO_REQUIRE(out.size() == points.size(), "need one key slot per point");
    const Box<D> bb = bounds.valid() ? bounds : boundsOf<D>(points, threads);
    par::parallelFor(threads, points.size(),
                     [&](std::size_t i0, std::size_t i1, int) {
                         for (std::size_t i = i0; i < i1; ++i)
                             out[i] = hilbertIndex<D>(points[i], bb);
                     });
}

template <int D>
std::vector<std::uint64_t> hilbertIndices(std::span<const Point<D>> points,
                                          const Box<D>& bounds, int threads) {
    std::vector<std::uint64_t> out(points.size());
    hilbertIndicesInto<D>(points, bounds, out, threads);
    return out;
}

template <int D>
std::uint64_t mortonIndex(const Point<D>& p, const Box<D>& bounds) {
    constexpr int bits = kBitsPerDim<D>;
    const auto coord = quantize<D>(p, bounds, bits);
    std::uint64_t index = 0;
    for (int b = bits - 1; b >= 0; --b) {
        for (int i = 0; i < D; ++i) {
            index <<= 1;
            index |= (coord[static_cast<std::size_t>(i)] >> b) & 1U;
        }
    }
    return index;
}

template <int D>
void mortonIndicesInto(std::span<const Point<D>> points, const Box<D>& bounds,
                       std::span<std::uint64_t> out, int threads) {
    GEO_REQUIRE(out.size() == points.size(), "need one key slot per point");
    const Box<D> bb = bounds.valid() ? bounds : boundsOf<D>(points, threads);
    par::parallelFor(threads, points.size(),
                     [&](std::size_t i0, std::size_t i1, int) {
                         for (std::size_t i = i0; i < i1; ++i)
                             out[i] = mortonIndex<D>(points[i], bb);
                     });
}

template <int D>
std::vector<std::uint64_t> mortonIndices(std::span<const Point<D>> points,
                                         const Box<D>& bounds, int threads) {
    std::vector<std::uint64_t> out(points.size());
    mortonIndicesInto<D>(points, bounds, out, threads);
    return out;
}

template std::uint64_t hilbertIndex<2>(const Point2&, const Box2&);
template std::uint64_t hilbertIndex<3>(const Point3&, const Box3&);
template Point2 hilbertPoint<2>(std::uint64_t, const Box2&);
template Point3 hilbertPoint<3>(std::uint64_t, const Box3&);
template std::vector<std::uint64_t> hilbertIndices<2>(std::span<const Point2>, const Box2&, int);
template std::vector<std::uint64_t> hilbertIndices<3>(std::span<const Point3>, const Box3&, int);
template void hilbertIndicesInto<2>(std::span<const Point2>, const Box2&, std::span<std::uint64_t>, int);
template void hilbertIndicesInto<3>(std::span<const Point3>, const Box3&, std::span<std::uint64_t>, int);
template void mortonIndicesInto<2>(std::span<const Point2>, const Box2&, std::span<std::uint64_t>, int);
template void mortonIndicesInto<3>(std::span<const Point3>, const Box3&, std::span<std::uint64_t>, int);
template std::uint64_t mortonIndex<2>(const Point2&, const Box2&);
template std::uint64_t mortonIndex<3>(const Point3&, const Box3&);
template std::vector<std::uint64_t> mortonIndices<2>(std::span<const Point2>, const Box2&, int);
template std::vector<std::uint64_t> mortonIndices<3>(std::span<const Point3>, const Box3&, int);
template Box2 boundsOf<2>(std::span<const Point2>, int);
template Box3 boundsOf<3>(std::span<const Point3>, int);

}  // namespace geo::sfc
