// Hilbert space-filling curve indices for 2D and 3D points.
//
// Geographer (§4.1) sorts all points by their Hilbert index to (i) give each
// process a spatially compact local point set and (ii) bootstrap the initial
// k-means centers at equidistant positions along the curve. The locality
// property of the Hilbert curve — points close in index are close in space —
// is what makes both uses effective.
//
// Implementation: Skilling's transpose-based algorithm (AIP Conf. Proc. 707,
// 2004), which maps between axis coordinates and the "transpose" form of the
// Hilbert index for arbitrary dimension; we instantiate D = 2, 3 and pack
// the result into a single 64-bit key (D * bitsPerDim <= 62).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/point.hpp"

namespace geo::sfc {

/// Number of bits of resolution per dimension used for 64-bit keys.
template <int D>
inline constexpr int kBitsPerDim = (D == 2) ? 31 : 20;

/// Map a point inside `bounds` to its Hilbert curve index.
/// Points on the upper boundary are clamped to the last cell.
template <int D>
std::uint64_t hilbertIndex(const Point<D>& p, const Box<D>& bounds);

/// Inverse: center of the cell with the given Hilbert index, in `bounds`.
template <int D>
Point<D> hilbertPoint(std::uint64_t index, const Box<D>& bounds);

/// Convenience: indices for a whole point set (bounds computed if invalid).
template <int D>
std::vector<std::uint64_t> hilbertIndices(std::span<const Point<D>> points,
                                          const Box<D>& bounds);

/// Morton (Z-order) index; used as a cheaper, lower-locality comparator
/// in ablation experiments.
template <int D>
std::uint64_t mortonIndex(const Point<D>& p, const Box<D>& bounds);

extern template std::uint64_t hilbertIndex<2>(const Point2&, const Box2&);
extern template std::uint64_t hilbertIndex<3>(const Point3&, const Box3&);
extern template Point2 hilbertPoint<2>(std::uint64_t, const Box2&);
extern template Point3 hilbertPoint<3>(std::uint64_t, const Box3&);
extern template std::vector<std::uint64_t> hilbertIndices<2>(std::span<const Point2>, const Box2&);
extern template std::vector<std::uint64_t> hilbertIndices<3>(std::span<const Point3>, const Box3&);
extern template std::uint64_t mortonIndex<2>(const Point2&, const Box2&);
extern template std::uint64_t mortonIndex<3>(const Point3&, const Box3&);

}  // namespace geo::sfc
