// Hilbert space-filling curve indices for 2D and 3D points.
//
// Geographer (§4.1) sorts all points by their Hilbert index to (i) give each
// process a spatially compact local point set and (ii) bootstrap the initial
// k-means centers at equidistant positions along the curve. The locality
// property of the Hilbert curve — points close in index are close in space —
// is what makes both uses effective.
//
// Implementation: Skilling's transpose-based algorithm (AIP Conf. Proc. 707,
// 2004), which maps between axis coordinates and the "transpose" form of the
// Hilbert index for arbitrary dimension; we instantiate D = 2, 3 and pack
// the result into a single 64-bit key (D * bitsPerDim <= 62).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/point.hpp"

namespace geo::sfc {

/// Number of bits of resolution per dimension used for 64-bit keys.
template <int D>
inline constexpr int kBitsPerDim = (D == 2) ? 31 : 20;

/// Map a point inside `bounds` to its Hilbert curve index.
/// Points on the upper boundary are clamped to the last cell.
template <int D>
std::uint64_t hilbertIndex(const Point<D>& p, const Box<D>& bounds);

/// Inverse: center of the cell with the given Hilbert index, in `bounds`.
template <int D>
Point<D> hilbertPoint(std::uint64_t index, const Box<D>& bounds);

/// Points per keying tile — the span the chunked pipeline keys at a time
/// (geographer fuses keying into its record build through one tile-sized
/// stack buffer per worker instead of an n-wide key mirror). Matches the
/// core::PointStore tile.
inline constexpr std::size_t kKeyTile = 1024;

/// Batch keying for a whole point set. Callers that already hold the global
/// bounding box (geographer's allreduced box, repart's carried state) pass
/// it and no per-call bounds pass runs; an invalid `bounds` falls back to a
/// bounds computation over `points`. Both the bounds pass and the keying
/// loop fan out over `threads` workers; indices are pure per-point integer
/// functions and the bounds reduction is exact min/max, so results are
/// identical at every thread count.
template <int D>
std::vector<std::uint64_t> hilbertIndices(std::span<const Point<D>> points,
                                          const Box<D>& bounds, int threads = 1);

/// Span-writing variant: key `points` into caller-provided `out` (same
/// size) without allocating. The chunked pipeline calls this per tile, so
/// the key buffer stays tile-sized instead of mirroring all n points.
template <int D>
void hilbertIndicesInto(std::span<const Point<D>> points, const Box<D>& bounds,
                        std::span<std::uint64_t> out, int threads = 1);

/// Morton (Z-order) index; used as a cheaper, lower-locality comparator
/// in ablation experiments.
template <int D>
std::uint64_t mortonIndex(const Point<D>& p, const Box<D>& bounds);

/// Batch Morton keying with the same bounds-reuse and threading contract as
/// hilbertIndices.
template <int D>
std::vector<std::uint64_t> mortonIndices(std::span<const Point<D>> points,
                                         const Box<D>& bounds, int threads = 1);

/// Span-writing Morton variant; see hilbertIndicesInto.
template <int D>
void mortonIndicesInto(std::span<const Point<D>> points, const Box<D>& bounds,
                       std::span<std::uint64_t> out, int threads = 1);

/// Bounding box of `points`, the reduction preceding keying: per-worker
/// partial boxes merged into one. Box merge is exact coordinate min/max —
/// associative and commutative — so the result is thread-count independent.
template <int D>
Box<D> boundsOf(std::span<const Point<D>> points, int threads = 1);

extern template std::uint64_t hilbertIndex<2>(const Point2&, const Box2&);
extern template std::uint64_t hilbertIndex<3>(const Point3&, const Box3&);
extern template Point2 hilbertPoint<2>(std::uint64_t, const Box2&);
extern template Point3 hilbertPoint<3>(std::uint64_t, const Box3&);
extern template std::vector<std::uint64_t> hilbertIndices<2>(std::span<const Point2>, const Box2&, int);
extern template std::vector<std::uint64_t> hilbertIndices<3>(std::span<const Point3>, const Box3&, int);
extern template void hilbertIndicesInto<2>(std::span<const Point2>, const Box2&, std::span<std::uint64_t>, int);
extern template void hilbertIndicesInto<3>(std::span<const Point3>, const Box3&, std::span<std::uint64_t>, int);
extern template void mortonIndicesInto<2>(std::span<const Point2>, const Box2&, std::span<std::uint64_t>, int);
extern template void mortonIndicesInto<3>(std::span<const Point3>, const Box3&, std::span<std::uint64_t>, int);
extern template std::uint64_t mortonIndex<2>(const Point2&, const Box2&);
extern template std::uint64_t mortonIndex<3>(const Point3&, const Box3&);
extern template std::vector<std::uint64_t> mortonIndices<2>(std::span<const Point2>, const Box2&, int);
extern template std::vector<std::uint64_t> mortonIndices<3>(std::span<const Point3>, const Box3&, int);
extern template Box2 boundsOf<2>(std::span<const Point2>, int);
extern template Box3 boundsOf<3>(std::span<const Point3>, int);

}  // namespace geo::sfc
