#include "repart/scenarios.hpp"

#include <cmath>
#include <numbers>
#include <numeric>
#include <unordered_map>

#include "support/assert.hpp"

namespace geo::repart {

const char* toString(ScenarioKind kind) noexcept {
    switch (kind) {
        case ScenarioKind::Advection: return "advection";
        case ScenarioKind::Rotation: return "rotation";
        case ScenarioKind::Hotspot: return "hotspot";
        case ScenarioKind::Churn: return "churn";
    }
    return "?";
}

namespace {

template <int D>
Point<D> uniformPoint(Xoshiro256& rng) {
    Point<D> p;
    for (int d = 0; d < D; ++d) p[d] = rng.uniform();
    return p;
}

/// Wrap a coordinate into [0, 1) (unit torus).
double wrap01(double x) noexcept { return x - std::floor(x); }

}  // namespace

template <int D>
Scenario<D>::Scenario(const ScenarioConfig& config)
    : config_(config), rng_(config.seed) {
    GEO_REQUIRE(config_.basePoints >= 1, "scenario needs at least one point");
    GEO_REQUIRE(config_.drift >= 0.0, "drift must be non-negative");
    GEO_REQUIRE(config_.churnFraction >= 0.0 && config_.churnFraction <= 1.0,
                "churn fraction must be in [0, 1]");
    GEO_REQUIRE(config_.hotspotRadius > 0.0, "hotspot radius must be positive");
    GEO_REQUIRE(config_.hotspotBoost >= 0.0, "hotspot boost must be non-negative");
    GEO_REQUIRE(config_.hotspotWeight > 0.0, "hotspot weight must be positive");

    const auto n = static_cast<std::size_t>(config_.basePoints);
    step_.step = 0;
    step_.ids.resize(n);
    std::iota(step_.ids.begin(), step_.ids.end(), std::int64_t{0});
    step_.points.reserve(n);
    for (std::size_t i = 0; i < n; ++i) step_.points.push_back(uniformPoint<D>(rng_));
    nextId_ = config_.basePoints;

    // Fixed advection direction drawn once from the stream: a unit vector
    // scaled to `drift` per step.
    Point<D> dir{};
    double len = 0.0;
    do {
        for (int d = 0; d < D; ++d) dir[d] = 2.0 * rng_.uniform() - 1.0;
        len = norm(dir);
    } while (len < 1e-9);
    velocity_ = dir * (config_.drift / len);

    if (config_.kind == ScenarioKind::Hotspot) {
        step_.weights.assign(n, 1.0);
        refreshHotspot();
    }
}

template <int D>
Point<D> Scenario<D>::hotspotCenter(int step) const noexcept {
    // The refinement region orbits the domain center; one `drift` step moves
    // it by a `drift` fraction of the orbit circumference.
    const double radius = 0.28;
    const double angle = 2.0 * std::numbers::pi * config_.drift * static_cast<double>(step);
    Point<D> c;
    for (int d = 0; d < D; ++d) c[d] = 0.5;
    c[0] += radius * std::cos(angle);
    c[1] += radius * std::sin(angle);
    return c;
}

template <int D>
void Scenario<D>::refreshHotspot() {
    const Point<D> center = hotspotCenter(step_.step);
    const double r = config_.hotspotRadius;

    // Drop hotspot points (id >= basePoints) the region no longer covers.
    std::size_t keep = 0;
    std::size_t inside = 0;
    for (std::size_t i = 0; i < step_.points.size(); ++i) {
        const bool base = step_.ids[i] < config_.basePoints;
        const bool covered = distance(step_.points[i], center) <= r;
        if (base || covered) {
            step_.ids[keep] = step_.ids[i];
            step_.points[keep] = step_.points[i];
            step_.weights[keep] = step_.weights[i];
            ++keep;
            inside += (!base);
        }
    }
    step_.ids.resize(keep);
    step_.points.resize(keep);
    step_.weights.resize(keep);

    // Refill the region to its target density with fresh points sampled
    // uniformly in the ball (rejection from the bounding cube, clamped to
    // the unit domain).
    const auto target = static_cast<std::size_t>(
        config_.hotspotBoost * static_cast<double>(config_.basePoints));
    while (inside < target) {
        Point<D> offset;
        double len2;
        do {
            for (int d = 0; d < D; ++d) offset[d] = r * (2.0 * rng_.uniform() - 1.0);
            len2 = dot(offset, offset);
        } while (len2 > r * r);
        Point<D> p = center + offset;
        bool inDomain = true;
        for (int d = 0; d < D; ++d) inDomain = inDomain && p[d] >= 0.0 && p[d] < 1.0;
        if (!inDomain) continue;
        step_.ids.push_back(nextId_++);
        step_.points.push_back(p);
        step_.weights.push_back(config_.hotspotWeight);
        ++inside;
    }
}

template <int D>
void Scenario<D>::advance() {
    step_.step++;
    switch (config_.kind) {
        case ScenarioKind::Advection:
            for (auto& p : step_.points) {
                p += velocity_;
                for (int d = 0; d < D; ++d) p[d] = wrap01(p[d]);
            }
            break;
        case ScenarioKind::Rotation: {
            const double angle = 2.0 * std::numbers::pi * config_.drift;
            const double c = std::cos(angle), s = std::sin(angle);
            for (auto& p : step_.points) {
                const double x = p[0] - 0.5, y = p[1] - 0.5;
                p[0] = 0.5 + c * x - s * y;
                p[1] = 0.5 + s * x + c * y;
            }
            break;
        }
        case ScenarioKind::Hotspot:
            refreshHotspot();
            break;
        case ScenarioKind::Churn:
            for (std::size_t i = 0; i < step_.points.size(); ++i) {
                if (rng_.uniform() < config_.churnFraction) {
                    step_.points[i] = uniformPoint<D>(rng_);
                    step_.ids[i] = nextId_++;
                }
            }
            break;
    }
}

template <int D>
std::vector<ChurnEvent<D>> diffSteps(const WorkloadStep<D>& prev,
                                     const WorkloadStep<D>& next) {
    std::unordered_map<std::int64_t, std::size_t> prevSlot;
    prevSlot.reserve(prev.ids.size());
    for (std::size_t i = 0; i < prev.ids.size(); ++i) prevSlot.emplace(prev.ids[i], i);

    std::unordered_map<std::int64_t, std::size_t> nextSlot;
    nextSlot.reserve(next.ids.size());
    for (std::size_t i = 0; i < next.ids.size(); ++i) nextSlot.emplace(next.ids[i], i);

    std::vector<ChurnEvent<D>> events;
    // Removes first (prev order): applying the stream never holds two live
    // points under one id, whatever the scenario recycled.
    for (std::size_t i = 0; i < prev.ids.size(); ++i) {
        if (nextSlot.find(prev.ids[i]) != nextSlot.end()) continue;
        ChurnEvent<D> e;
        e.kind = ChurnEvent<D>::Kind::Remove;
        e.id = prev.ids[i];
        events.push_back(e);
    }
    for (std::size_t i = 0; i < next.ids.size(); ++i) {
        const auto it = prevSlot.find(next.ids[i]);
        ChurnEvent<D> e;
        e.id = next.ids[i];
        e.point = next.points[i];
        e.weight = next.weights.empty() ? 1.0 : next.weights[i];
        if (it == prevSlot.end()) {
            e.kind = ChurnEvent<D>::Kind::Insert;
        } else {
            if (prev.points[it->second] == next.points[i]) continue;  // unchanged
            e.kind = ChurnEvent<D>::Kind::Move;
        }
        events.push_back(e);
    }
    return events;
}

template std::vector<ChurnEvent<2>> diffSteps<2>(const WorkloadStep<2>&,
                                                 const WorkloadStep<2>&);
template std::vector<ChurnEvent<3>> diffSteps<3>(const WorkloadStep<3>&,
                                                 const WorkloadStep<3>&);

template class Scenario<2>;
template class Scenario<3>;

}  // namespace geo::repart
