// Deterministic time-stepped workload generators for the dynamic
// repartitioning subsystem.
//
// Adaptive simulations move, refine and coarsen their mesh between time
// steps; the partition must follow. Each scenario evolves a point cloud over
// T steps with a stable per-point identity, so migration between consecutive
// partitions is measurable (see migration.hpp):
//   * Advection — every point drifts with a constant velocity field,
//     wrapping around the unit torus,
//   * Rotation  — rigid rotation about the domain center (xy-plane in 3D),
//   * Hotspot   — a static background cloud plus a moving refinement region
//     that adds points under itself and removes them once it passes,
//   * Churn     — a random fraction of points is replaced by fresh uniform
//     points each step (uncorrelated adaptivity; the hard case for warm
//     starts to exploit, and the control scenario of the benchmarks).
// All randomness flows through one seeded Xoshiro256 stream, so a scenario
// replayed from the same config produces bit-identical steps.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/point.hpp"
#include "support/rng.hpp"

namespace geo::repart {

enum class ScenarioKind { Advection, Rotation, Hotspot, Churn };

[[nodiscard]] const char* toString(ScenarioKind kind) noexcept;

struct ScenarioConfig {
    ScenarioKind kind = ScenarioKind::Advection;
    std::int64_t basePoints = 10000;
    double drift = 0.02;       ///< per-step motion as a fraction of the unit domain
    std::uint64_t seed = 1;
    double hotspotRadius = 0.18;  ///< refinement region radius (Hotspot)
    double hotspotBoost = 0.4;    ///< hotspot points as a fraction of basePoints
    double hotspotWeight = 2.0;   ///< node weight of refinement points (Hotspot)
    double churnFraction = 0.05;  ///< fraction of points replaced per step (Churn)
};

/// One timestep of an evolving workload. `ids` are stable across steps:
/// a surviving point keeps its id, added points get fresh ids — the key that
/// lets migration.hpp match partitions across steps with insert/delete.
/// Only the Hotspot scenario populates `weights` (refinement points carry
/// `hotspotWeight`); the others use unit weights (empty vector).
template <int D>
struct WorkloadStep {
    int step = 0;
    std::vector<std::int64_t> ids;
    std::vector<Point<D>> points;
    std::vector<double> weights;  ///< empty = unit weights
};

/// One point-level mutation of an evolving workload — the currency of the
/// serving service's streaming ingest path (serve/service.hpp). A scenario
/// step transition decomposes into Insert (fresh id appears), Remove (id
/// disappears) and Move (surviving id changes coordinates) events via
/// diffSteps below.
template <int D>
struct ChurnEvent {
    enum class Kind : std::uint8_t { Insert, Remove, Move };

    Kind kind = Kind::Move;
    std::int64_t id = 0;
    Point<D> point{};     ///< new position (Insert/Move; ignored for Remove)
    double weight = 1.0;  ///< node weight (Insert; ignored otherwise)
};

/// Decompose two consecutive workload steps into churn events: Removes for
/// ids only in `prev` (in prev order), then Inserts for fresh ids and Moves
/// for surviving ids whose position changed (in next order). Applying the
/// events to prev's point set — in order — reproduces next's set exactly,
/// and the order is deterministic, so a replayed ingest stream is
/// bit-identical run to run.
template <int D>
[[nodiscard]] std::vector<ChurnEvent<D>> diffSteps(const WorkloadStep<D>& prev,
                                                   const WorkloadStep<D>& next);

extern template std::vector<ChurnEvent<2>> diffSteps<2>(const WorkloadStep<2>&,
                                                        const WorkloadStep<2>&);
extern template std::vector<ChurnEvent<3>> diffSteps<3>(const WorkloadStep<3>&,
                                                        const WorkloadStep<3>&);

/// Stateful generator: construct at step 0, advance() to the next step.
template <int D>
class Scenario {
public:
    explicit Scenario(const ScenarioConfig& config);

    [[nodiscard]] const ScenarioConfig& config() const noexcept { return config_; }
    [[nodiscard]] const WorkloadStep<D>& current() const noexcept { return step_; }

    /// Evolve to the next timestep (deterministic given the config).
    void advance();

private:
    [[nodiscard]] Point<D> hotspotCenter(int step) const noexcept;
    void refreshHotspot();

    ScenarioConfig config_;
    WorkloadStep<D> step_;
    Xoshiro256 rng_;
    Point<D> velocity_{};        ///< advection drift per step
    std::int64_t nextId_ = 0;
};

extern template class Scenario<2>;
extern template class Scenario<3>;

}  // namespace geo::repart
