// Migration-volume and partition-stability metrics for dynamic
// repartitioning.
//
// When the partition of step t+1 differs from step t, every surviving point
// whose block changed must be shipped to its new owner before the next
// solver phase. This module quantifies that cost: points/weight migrated,
// per-rank send/recv bytes under a contiguous block→rank mapping, and a
// modeled transfer time via the same par::CostModel the SPMD runtime uses —
// so repartitioning benchmarks can weigh partition quality against data
// movement in one unit (seconds).
//
// Steps are matched by stable point id (see scenarios.hpp): points present
// in both steps are "survivors"; insertions/deletions cost nothing here
// (the solver pays for them regardless of the partitioner).
#pragma once

#include <cstdint>
#include <span>

#include "par/cost_model.hpp"

namespace geo::repart {

struct MigrationStats {
    std::int64_t survivors = 0;       ///< points present in both steps
    std::int64_t migratedPoints = 0;  ///< survivors whose block changed
    double survivingWeight = 0.0;
    double migratedWeight = 0.0;
    double migratedFraction = 0.0;  ///< migratedWeight / survivingWeight
    double stability = 1.0;         ///< 1 − migratedFraction
    std::uint64_t totalBytes = 0;   ///< payload crossing rank boundaries
    std::uint64_t maxSendBytes = 0; ///< heaviest sender
    std::uint64_t maxRecvBytes = 0; ///< heaviest receiver
    /// CostModel estimate of the exchange. Any migration is charged the
    /// alltoallv round (block relabeling is collective metadata) even when
    /// no payload crosses rank boundaries — only the latency term remains
    /// then, which the model prices at (ranks−1)·α, i.e. 0 on one rank.
    /// 0 when nothing migrated at all.
    double modeledSeconds = 0.0;
};

/// Default migration payload: D coordinates + weight + id.
[[nodiscard]] constexpr std::size_t migrationBytesPerPoint(int dim) noexcept {
    return sizeof(double) * static_cast<std::size_t>(dim + 1) + sizeof(std::int64_t);
}

/// Owner rank of a block under the contiguous block→rank mapping: the exact
/// inverse (also for p ∤ k) of par::blockRange, the balanced distribution
/// used everywhere else in the repo — rank r owns blocks
/// ⌊k·r/p⌋ … ⌊k·(r+1)/p⌋−1.
[[nodiscard]] constexpr int ownerRank(std::int32_t block, std::int32_t k,
                                      int ranks) noexcept {
    return static_cast<int>(
        (static_cast<std::int64_t>(ranks) * (block + 1) - 1) / k);
}

/// Compare the partitions of two consecutive steps. `prevIds`/`prevBlocks`
/// describe step t (parallel arrays), `currIds`/`currBlocks`/`currWeights`
/// step t+1 (`currWeights` may be empty = unit). Survivor weights are taken
/// from the current step.
MigrationStats migrationStats(std::span<const std::int64_t> prevIds,
                              std::span<const std::int32_t> prevBlocks,
                              std::span<const std::int64_t> currIds,
                              std::span<const std::int32_t> currBlocks,
                              std::span<const double> currWeights, std::int32_t k,
                              int ranks, std::size_t bytesPerPoint,
                              const par::CostModel& model = {});

}  // namespace geo::repart
