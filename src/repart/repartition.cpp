#include "repart/repartition.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <mutex>

#include "core/balanced_kmeans.hpp"
#include "geometry/box.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace geo::repart {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Sampled Lloyd half-step against the previous (centers, influence):
/// returns max_c dist(centroid_c, center_c) / expected cluster radius.
/// Serial and cheap — O(sample · k) — so it runs before the SPMD machine
/// spins up.
template <int D>
double probeDrift(std::span<const Point<D>> points, std::span<const double> weights,
                  const RepartState<D>& state, std::int64_t probeSample) {
    const auto k = state.centers.size();
    const auto n = static_cast<std::int64_t>(points.size());
    // Keep ≥ 8 expected sample points per cluster even at large k, so the
    // stranded-center detection below never silently disarms. Floor-divided
    // stride guarantees sampled ≥ probeSample whenever n ≥ probeSample (at
    // the cost of at most 2·probeSample samples).
    probeSample = std::max<std::int64_t>(probeSample, 8 * static_cast<std::int64_t>(k));
    const std::int64_t stride = std::max<std::int64_t>(1, n / probeSample);

    // The cluster-scale normalization only needs the bounding box of the
    // sample — a full pass over the points would defeat the probe's
    // O(sample · k) budget.
    Box<D> bb = Box<D>::empty();
    for (std::int64_t i = 0; i < n; i += stride) bb.extend(points[static_cast<std::size_t>(i)]);
    const double clusterScale =
        core::expectedClusterRadius(bb.diagonal(), static_cast<std::int32_t>(k), D);
    // Degenerate sample (all points coincide): drift is unmeasurable, and
    // the old centers may be arbitrarily stale — fall back cold.
    if (clusterScale <= 0.0) return kInf;

    std::vector<double> sums(k * (D + 1), 0.0);
    std::vector<double> minRawDist(k, kInf);  // for the stranded-center test
    for (std::int64_t i = 0; i < n; i += stride) {
        const auto& pt = points[static_cast<std::size_t>(i)];
        double best = kInf;
        std::size_t bestC = 0;
        for (std::size_t c = 0; c < k; ++c) {
            const double raw = distance(pt, state.centers[c]);
            minRawDist[c] = std::min(minRawDist[c], raw);
            const double eDist = raw / state.influence[c];
            if (eDist < best) {
                best = eDist;
                bestC = c;
            }
        }
        const double w = weights.empty() ? 1.0 : weights[static_cast<std::size_t>(i)];
        for (int d = 0; d < D; ++d) sums[bestC * (D + 1) + static_cast<std::size_t>(d)] += w * pt[d];
        sums[bestC * (D + 1) + D] += w;
    }

    double maxDrift = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
        const double w = sums[c * (D + 1) + D];
        if (w <= 0.0) {
            // A cluster that wins no sampled point has two very different
            // causes:
            //   * its center is stranded in vacated space — the one
            //     situation influence adaptation (capped at 5% per sweep)
            //     recovers from slowly, exactly what the cold fallback
            //     exists for, or
            //   * the cluster is weight-heavy but point-sparse (k-means
            //     balances by WEIGHT, the stride sample is by COUNT),
            //     which is healthy.
            // Geometry separates them: a stranded center is far from every
            // sampled point; a heavy cluster's center sits inside the
            // cloud. Only the stranded case reports infinite drift → cold.
            if (minRawDist[c] > clusterScale) return kInf;
            continue;
        }
        Point<D> centroid;
        for (int d = 0; d < D; ++d) centroid[d] = sums[c * (D + 1) + static_cast<std::size_t>(d)] / w;
        maxDrift = std::max(maxDrift, distance(centroid, state.centers[c]));
    }
    return maxDrift / clusterScale;
}

/// Warm SPMD body: block-distribute the points in input order (standing in
/// for "points stay where the previous partition left them"), then resume
/// balanced k-means from the previous centers and influence. No Hilbert
/// indexing, no sample sort, no redistribution — the phases the warm path
/// exists to skip.
template <int D>
void warmBody(par::Comm& comm, std::span<const Point<D>> points,
              std::span<const double> weights, const core::Settings& settings,
              const RepartState<D>& state, core::GeographerResult& result,
              std::mutex& resultMutex) {
    const auto n = static_cast<std::int64_t>(points.size());
    const int p = comm.size();
    const int r = comm.rank();
    const double cpuStart = comm.cpuSeconds();
    const double commStart = comm.stats().modeledCommSeconds;

    const auto [lo, hi] = par::blockRange(n, r, p);
    // Contiguous views — no copy; the spans outlive the SPMD run.
    const auto localPoints = points.subspan(static_cast<std::size_t>(lo),
                                            static_cast<std::size_t>(hi - lo));
    const auto localWeights =
        weights.empty() ? weights
                        : weights.subspan(static_cast<std::size_t>(lo),
                                          static_cast<std::size_t>(hi - lo));

    Timer timer;
    core::Settings warm = settings;
    // The carried-over centers already cover the full cloud; sampled
    // (re-)initialization would only delay the resumed convergence.
    warm.sampledInitialization = false;
    warm.initialInfluence = state.influence;
    auto outcome = core::balancedKMeans<D>(comm, localPoints, localWeights,
                                           state.centers, warm);
    const double kmeansSeconds = timer.seconds();

    const double pipelineScore = (comm.cpuSeconds() - cpuStart) +
                                 (comm.stats().modeledCommSeconds - commStart);
    const double pipelineMax = comm.allreduceMax(pipelineScore);

    // Rank slices are contiguous in input order, so the rank-ordered
    // concatenation of local assignments IS the global partition.
    const auto all =
        comm.allgatherv(std::span<const std::int32_t>(outcome.assignment));

    const double kmeansMax = comm.allreduceMax(kmeansSeconds);
    std::array<double, 2> subPhaseMax{outcome.assignSeconds, outcome.updateSeconds};
    comm.allreduceMax(std::span<double>(subPhaseMax.data(), subPhaseMax.size()));
    core::detail::storeKMeansDiagnostics<D>(comm, outcome, result, resultMutex);

    if (comm.isRoot()) {
        const std::lock_guard<std::mutex> lock(resultMutex);
        result.partition = all;
        result.phaseSeconds["kmeans"] = kmeansMax;
        result.phaseSeconds["assign"] = subPhaseMax[0];
        result.phaseSeconds["update"] = subPhaseMax[1];
        result.modeledSeconds = pipelineMax;
    }
    // Cross-process runs have no shared result object: hand every rank the
    // root's assembled copy (no-op on the simulator). The carried-over
    // RepartState below is rebuilt from these replicated fields, so every
    // worker process enters the next step with identical warm state.
    core::detail::replicateResult(comm, result, resultMutex);
}

}  // namespace

template <int D>
RepartResult<D> repartitionGeographer(std::span<const Point<D>> points,
                                      std::span<const double> weights, std::int32_t k,
                                      int ranks, const core::Settings& settings,
                                      RepartState<D>& state, const RepartOptions& options,
                                      par::CostModel model) {
    GEO_REQUIRE(k >= 1, "need at least one block");
    GEO_REQUIRE(static_cast<std::int64_t>(points.size()) >= k, "need at least k points");
    GEO_REQUIRE(weights.empty() || weights.size() == points.size(),
                "weights must be empty or match points");
    GEO_REQUIRE(!(options.forceCold && options.forceWarm),
                "forceCold and forceWarm are mutually exclusive");
    GEO_REQUIRE(options.probeSample >= 1, "probeSample must be at least 1");

    RepartResult<D> out;
    double probeSeconds = 0.0;
    bool warm = false;
    if (!options.forceCold && state.warmable(k)) {
        if (options.forceWarm) {
            warm = true;
        } else {
            Timer probeTimer;
            out.normalizedDrift = probeDrift<D>(points, weights, state, options.probeSample);
            probeSeconds = probeTimer.seconds();
            warm = *out.normalizedDrift <= options.driftThresholdFactor;
        }
    }

    if (warm) {
        std::mutex resultMutex;
        par::Machine machine(ranks, model, settings.resolvedTransport());
        out.result.runStats = machine.run([&](par::Comm& comm) {
            warmBody<D>(comm, points, weights, settings, state, out.result, resultMutex);
        });
        out.warmStarted = true;
        for (const auto b : out.result.partition)
            GEO_CHECK(b >= 0 && b < k, "every point must be assigned a block");
    } else {
        out.result = core::partitionGeographer<D>(points, weights, k, ranks, settings, model);
        out.warmStarted = false;
    }
    // The probe is a real per-step cost of the warm strategy: fold it into
    // the modeled pipeline time so warm-vs-cold comparisons stay honest.
    // Recorded only when the probe actually ran — a phase entry of 0 would
    // be indistinguishable from a probe that was skipped (forced paths, no
    // usable state).
    if (out.normalizedDrift.has_value()) {
        out.result.phaseSeconds["probe"] = probeSeconds;
        out.result.modeledSeconds += probeSeconds;
    }

    // Carry this step's state to the next call.
    state.centers = core::unflattenCenters<D>(out.result.centerCoords);
    state.influence = out.result.influence;
    return out;
}

template RepartResult<2> repartitionGeographer<2>(std::span<const Point2>,
                                                  std::span<const double>, std::int32_t, int,
                                                  const core::Settings&, RepartState<2>&,
                                                  const RepartOptions&, par::CostModel);
template RepartResult<3> repartitionGeographer<3>(std::span<const Point3>,
                                                  std::span<const double>, std::int32_t, int,
                                                  const core::Settings&, RepartState<3>&,
                                                  const RepartOptions&, par::CostModel);

}  // namespace geo::repart
