#include "repart/migration.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "support/assert.hpp"

namespace geo::repart {

MigrationStats migrationStats(std::span<const std::int64_t> prevIds,
                              std::span<const std::int32_t> prevBlocks,
                              std::span<const std::int64_t> currIds,
                              std::span<const std::int32_t> currBlocks,
                              std::span<const double> currWeights, std::int32_t k,
                              int ranks, std::size_t bytesPerPoint,
                              const par::CostModel& model) {
    GEO_REQUIRE(prevIds.size() == prevBlocks.size(),
                "previous ids and blocks must be parallel arrays");
    GEO_REQUIRE(currIds.size() == currBlocks.size(),
                "current ids and blocks must be parallel arrays");
    GEO_REQUIRE(currWeights.empty() || currWeights.size() == currIds.size(),
                "weights must be empty or match current points");
    GEO_REQUIRE(k >= 1, "need at least one block");
    GEO_REQUIRE(ranks >= 1, "need at least one rank");

    std::unordered_map<std::int64_t, std::int32_t> prevBlockOf;
    prevBlockOf.reserve(prevIds.size());
    for (std::size_t i = 0; i < prevIds.size(); ++i) {
        GEO_REQUIRE(prevBlocks[i] >= 0 && prevBlocks[i] < k, "previous block out of range");
        const bool inserted = prevBlockOf.emplace(prevIds[i], prevBlocks[i]).second;
        GEO_REQUIRE(inserted, "previous ids must be unique");
    }

    std::vector<std::uint64_t> sendBytes(static_cast<std::size_t>(ranks), 0);
    std::vector<std::uint64_t> recvBytes(static_cast<std::size_t>(ranks), 0);

    std::unordered_set<std::int64_t> seenCurr;
    seenCurr.reserve(currIds.size());

    MigrationStats stats;
    for (std::size_t i = 0; i < currIds.size(); ++i) {
        GEO_REQUIRE(currBlocks[i] >= 0 && currBlocks[i] < k, "current block out of range");
        GEO_REQUIRE(seenCurr.insert(currIds[i]).second, "current ids must be unique");
        const auto it = prevBlockOf.find(currIds[i]);
        if (it == prevBlockOf.end()) continue;  // inserted this step
        const std::int32_t from = it->second;
        const std::int32_t to = currBlocks[i];
        const double w = currWeights.empty() ? 1.0 : currWeights[i];
        stats.survivors++;
        stats.survivingWeight += w;
        if (from == to) continue;
        stats.migratedPoints++;
        stats.migratedWeight += w;
        const int src = ownerRank(from, k, ranks);
        const int dst = ownerRank(to, k, ranks);
        if (src != dst) {
            // Only inter-rank moves generate network traffic.
            sendBytes[static_cast<std::size_t>(src)] += bytesPerPoint;
            recvBytes[static_cast<std::size_t>(dst)] += bytesPerPoint;
            stats.totalBytes += bytesPerPoint;
        }
    }

    // The same definition graph::partitionChange applies to a fixed vertex
    // set, here over the survivors only.
    stats.migratedFraction =
        stats.survivingWeight > 0.0 ? stats.migratedWeight / stats.survivingWeight : 0.0;
    stats.stability = 1.0 - stats.migratedFraction;
    stats.maxSendBytes = *std::max_element(sendBytes.begin(), sendBytes.end());
    stats.maxRecvBytes = *std::max_element(recvBytes.begin(), recvBytes.end());
    // Any migration is charged the collective round: block relabeling is
    // collective metadata even when every moved point stays on its rank
    // (maxSend/maxRecvBytes are 0 then, so only the (ranks-1)*alpha latency
    // term remains — 0 on a single rank, where nothing is collective).
    if (stats.migratedPoints > 0)
        stats.modeledSeconds = model.alltoallv(
            ranks, static_cast<std::size_t>(stats.maxSendBytes),
            static_cast<std::size_t>(stats.maxRecvBytes));
    return stats;
}

}  // namespace geo::repart
