// Dynamic repartitioning: warm-started balanced k-means across timesteps.
//
// Balanced k-means is uniquely suited to repartitioning: the centers and
// influence values of step t are a near-optimal starting state for step t+1,
// unlike RCB/HSFC whose cut structure must be recomputed from scratch. The
// entry point here decides per step between
//   * the WARM path — skip the Hilbert sort/redistribute phases entirely and
//     run balanced k-means directly on the (block-distributed) new points,
//     starting from the previous centers and influence, and
//   * the COLD path — the full partitionGeographer pipeline — whenever the
//     workload moved too far for the old state to help (probed center drift
//     above a threshold), or no previous state exists.
// The drift probe is a cheap sampled Lloyd half-step: assign a deterministic
// sample of the new points to the old (center, influence) state, measure how
// far each cluster's centroid moved, and normalize by the expected cluster
// radius (bbox diagonal / k^(1/d) — the same scale the convergence test
// uses). See DESIGN.md "Dynamic repartitioning".
#pragma once

#include <optional>
#include <span>

#include "core/geographer.hpp"
#include "core/settings.hpp"
#include "par/comm.hpp"
#include "par/cost_model.hpp"

namespace geo::repart {

/// Warm-start state carried between timesteps: the replicated (centers,
/// influence) pair of the previous run. Default-constructed = no state yet
/// (first call runs cold).
template <int D>
struct RepartState {
    std::vector<Point<D>> centers;
    std::vector<double> influence;

    /// Usable to warm-start a k-block run?
    [[nodiscard]] bool warmable(std::int32_t k) const noexcept {
        return static_cast<std::int32_t>(centers.size()) == k &&
               influence.size() == centers.size();
    }
};

struct RepartOptions {
    /// Warm-start when the probed center drift is below this fraction of the
    /// expected cluster radius; fall back to the cold pipeline otherwise.
    double driftThresholdFactor = 0.25;
    /// Number of points the drift probe samples (deterministic stride).
    std::int64_t probeSample = 4096;
    /// Force the cold pipeline regardless of drift (re-partition baseline).
    bool forceCold = false;
    /// Force the warm path whenever state is available (skips the probe).
    bool forceWarm = false;
};

template <int D>
struct RepartResult {
    core::GeographerResult result;
    /// True when the Hilbert sort/redistribute phases were skipped and
    /// k-means resumed from the previous (centers, influence).
    bool warmStarted = false;
    /// Probed max center drift over clusters, normalized by the expected
    /// cluster radius. Empty when the probe did not run (no usable state,
    /// forceWarm, or forceCold) — "not measured" is distinguishable from
    /// "measured zero drift". The probe ran iff this is set, and iff
    /// result.phaseSeconds contains a "probe" entry.
    std::optional<double> normalizedDrift;
};

/// Partition the new timestep's `points` into k blocks on `ranks` simulated
/// MPI processes, warm-starting from `state` when profitable. On return,
/// `state` holds this step's final centers and influence for the next call.
template <int D>
RepartResult<D> repartitionGeographer(std::span<const Point<D>> points,
                                      std::span<const double> weights, std::int32_t k,
                                      int ranks, const core::Settings& settings,
                                      RepartState<D>& state,
                                      const RepartOptions& options = {},
                                      par::CostModel model = {});

extern template RepartResult<2> repartitionGeographer<2>(
    std::span<const Point2>, std::span<const double>, std::int32_t, int,
    const core::Settings&, RepartState<2>&, const RepartOptions&, par::CostModel);
extern template RepartResult<3> repartitionGeographer<3>(
    std::span<const Point3>, std::span<const double>, std::int32_t, int,
    const core::Settings&, RepartState<3>&, const RepartOptions&, par::CostModel);

}  // namespace geo::repart
