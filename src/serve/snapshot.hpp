// Immutable, versioned partition snapshots for online point→block serving.
//
// The balanced k-means output is exactly a multiplicatively-weighted Voronoi
// diagram: the (centers, influence) pair determines which block owns ANY
// point in space, not just the inputs the partitioner saw. A
// PartitionSnapshot freezes that state into a read-only query structure:
//   * SoA center coordinates plus precomputed 1/influence² per block, so
//     lookups run the same sqrt-free squared-effective-distance comparison
//     the assignment engine uses (core/assign_kernel invariant: x ↦ x² is
//     monotone on non-negative effective distances, so the argmin matches
//     the sqrt-domain reference bitwise),
//   * an optional core::CenterKdTree over the centers for large k
//     (SnapshotOptions::kdTreeFromK), answering the same squared-domain
//     argmin in O(log k),
//   * for hierarchical runs, one weighted-Voronoi diagram per topology node
//     (HierResult::nodeDiagrams): a lookup descends the levels, picking the
//     argmin child at each node, and the mixed-radix child digits ARE the
//     depth-first leaf id — the flat block id of hier::HierResult,
//   * an optional block → topology-leaf and block → serving-rank mapping,
//   * binary save/load, so a serving process can restart from disk.
//
// Exactness contract: a snapshot built from a GeographerResult routes every
// input point of that run to exactly the block `partition` records, because
// it snapshots `assignmentInfluence` — the influence the final assignment
// sweep actually used (see GeographerResult). Exact argmin ties are
// possible only for duplicated centers (reachable: an empty cluster keeps
// its seeded center); the linear-scan and descent paths resolve them to the
// lowest block id, while the kd-tree path visits centers in tree order and
// may pick the duplicate — the same caveat the engine's own
// Settings::useKdTree mode carries relative to its scalar scan. With
// distinct centers (every real run in the suite) all paths agree bitwise.
//
// Snapshots are immutable after construction; every member function is
// const and safe to call from any number of threads concurrently. The
// Router (router.hpp) swaps shared_ptrs to snapshots atomically on top of
// this guarantee.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/center_tree.hpp"
#include "core/geographer.hpp"
#include "geometry/point.hpp"
#include "hier/hier_partition.hpp"
#include "hier/topology.hpp"
#include "repart/repartition.hpp"

namespace geo::serve {

struct SnapshotOptions {
    /// Build a core::CenterKdTree over the centers when a flat (depth-1)
    /// snapshot has at least this many blocks; single-point and batched
    /// lookups then answer the argmin in O(log k) instead of scanning all
    /// centers. 0 disables the tree entirely.
    std::int32_t kdTreeFromK = 128;

    /// Compact-center mode for flat (depth-1) snapshots: the batched route
    /// kernel scans fp32 mirrors of the centers and 1/influence² (half the
    /// cache and memory bandwidth per candidate; no kd-tree is built), with
    /// an exactness guard: any lane whose fp32 best-vs-second margin falls
    /// within a conservative per-tile rounding bound — i.e. any route the
    /// fp32 arithmetic could have flipped — is re-resolved by the exact
    /// fp64 scan. Routes are therefore ALWAYS identical to the fp64 path
    /// (compactFallbacks() counts the re-resolved lanes). Ignored for
    /// hierarchical snapshots.
    bool compactCenters = false;
};

template <int D>
class PartitionSnapshot {
public:
    /// One level of the routing hierarchy. A flat k-block snapshot is one
    /// level with a single node of branching k. Entries are node-major:
    /// node n's child c lives at slot n * branching + c.
    struct Level {
        std::int32_t branching = 0;
        /// SoA center coordinates, one array per dimension.
        std::array<std::vector<double>, static_cast<std::size_t>(D)> cx;
        std::vector<double> influence;
        std::vector<double> invInfluence2;  ///< derived: 1/influence²
        /// fp32 mirrors for the compact route kernel (filled only when
        /// SnapshotOptions::compactCenters is active on a flat snapshot;
        /// the fp64 arrays stay as the exactness-fallback cold path).
        std::array<std::vector<float>, static_cast<std::size_t>(D)> cx32;
        std::vector<float> invInfluence232;
    };

    /// Flat snapshot from a completed (or warm-repartitioned) run. Uses
    /// `assignmentInfluence` (exact for `result.partition`; see the header
    /// comment), falling back to `influence` when absent. `ranks >= 1`
    /// additionally records the contiguous block → rank split of
    /// par::blockRange; 0 leaves the snapshot without a rank map.
    static PartitionSnapshot fromResult(const core::GeographerResult& result,
                                        std::uint64_t version = 0, int ranks = 0,
                                        const SnapshotOptions& options = {});

    /// Flat snapshot from carried repartitioning state. RepartState holds
    /// the *post-adaptation* influence (the right warm start for the next
    /// timestep), so routes may differ from the producing run's partition
    /// near block boundaries whenever the two influence vectors differ —
    /// prefer fromResult when exact reproduction matters.
    static PartitionSnapshot fromState(const repart::RepartState<D>& state,
                                       std::uint64_t version = 0, int ranks = 0,
                                       const SnapshotOptions& options = {});

    /// Hierarchical snapshot: replays the per-node diagrams of a
    /// hier::partitionHierarchical / repartitionHierarchical run level by
    /// level and maps blocks to topology leaves (identity, recorded
    /// explicitly) and, when `ranks >= 1`, to serving ranks via
    /// Topology::leafRankMap.
    static PartitionSnapshot fromHierResult(const hier::HierResult& result,
                                            const hier::Topology& topo,
                                            std::uint64_t version = 0, int ranks = 0,
                                            const SnapshotOptions& options = {});

    /// Raw flat builder over replicated centers + the influence the served
    /// partition is exact for.
    static PartitionSnapshot fromCenters(std::span<const Point<D>> centers,
                                         std::span<const double> influence,
                                         std::uint64_t version = 0, int ranks = 0,
                                         const SnapshotOptions& options = {});

    [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
    [[nodiscard]] std::int32_t blockCount() const noexcept { return k_; }
    [[nodiscard]] int depth() const noexcept { return static_cast<int>(levels_.size()); }
    [[nodiscard]] bool usesKdTree() const noexcept { return useTree_; }
    [[nodiscard]] bool usesCompactCenters() const noexcept { return compact_; }
    [[nodiscard]] bool hasRankMap() const noexcept { return !blockRank_.empty(); }

    /// Lanes the compact fp32 kernel handed back to the exact fp64 scan
    /// because their margin was within the rounding guard (0 when
    /// compactCenters is off). Cumulative over the snapshot's lifetime;
    /// relaxed atomic, safe under concurrent readers.
    [[nodiscard]] std::uint64_t compactFallbacks() const noexcept {
        return fallbacks_.value.load(std::memory_order_relaxed);
    }

    /// Topology leaf of `block` (identity when the snapshot carries no
    /// explicit mapping — the hier convention block id == leaf id).
    [[nodiscard]] std::int32_t leafOf(std::int32_t block) const;
    /// Serving rank of `block`; -1 when the snapshot has no rank map.
    [[nodiscard]] std::int32_t rankOf(std::int32_t block) const;

    /// Block owning `p`: the argmin of dist²(p, center) · 1/influence² per
    /// level (low-latency single-point path).
    [[nodiscard]] std::int32_t blockOf(const Point<D>& p) const;

    /// Batched lookup: `blocks[i]` = block of `points[i]`. Serial but
    /// cache-blocked — fixed 1024-point tiles through a branchless
    /// centers-outer / points-inner squared-domain kernel (the Router fans
    /// tiles out over its worker threads). Per-point results are
    /// independent, so any split of the input produces identical output.
    void blockOf(std::span<const Point<D>> points,
                 std::span<std::int32_t> blocks) const;

    /// Serialize to a raw little-endian binary stream (centers and
    /// influence bit-exact, so a reloaded snapshot routes identically).
    void save(std::ostream& out) const;
    void save(const std::string& path) const;
    static PartitionSnapshot load(std::istream& in, const SnapshotOptions& options = {});
    static PartitionSnapshot load(const std::string& path,
                                  const SnapshotOptions& options = {});

private:
    PartitionSnapshot() = default;
    void finalize(const SnapshotOptions& options);  ///< derived state + checks
    void routeTile(const Point<D>* pts, std::size_t count, std::int32_t* out) const;
    void routeTileCompact(const Point<D>* pts, std::size_t count,
                          std::int32_t* out) const;
    [[nodiscard]] std::int32_t scanFlatExact(const Point<D>& p) const;

    /// Copyable relaxed counter: snapshots are returned by value from the
    /// builders, and std::atomic alone would delete those moves.
    struct RelaxedCounter {
        std::atomic<std::uint64_t> value{0};
        RelaxedCounter() = default;
        RelaxedCounter(const RelaxedCounter& o)
            : value(o.value.load(std::memory_order_relaxed)) {}
        RelaxedCounter& operator=(const RelaxedCounter& o) {
            value.store(o.value.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
            return *this;
        }
    };

    std::uint64_t version_ = 0;
    std::int32_t k_ = 0;
    std::vector<Level> levels_;
    std::vector<std::int32_t> blockLeaf_;  ///< empty = identity
    std::vector<std::int32_t> blockRank_;  ///< empty = no rank map
    core::CenterKdTree<D> tree_;
    bool useTree_ = false;
    bool compact_ = false;
    /// Guard-bound ingredients, precomputed over the centers at finalize:
    /// per-dimension max |coordinate| and the largest 1/influence².
    std::array<double, static_cast<std::size_t>(D)> centerAbsMax_{};
    double invInfluence2Max_ = 0.0;
    mutable RelaxedCounter fallbacks_;
};

extern template class PartitionSnapshot<2>;
extern template class PartitionSnapshot<3>;

}  // namespace geo::serve
