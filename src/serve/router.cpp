#include "serve/router.hpp"

#include <stdexcept>

#include "par/parallel_for.hpp"
#include "support/assert.hpp"

namespace geo::serve {

template <int D>
std::uint64_t Router<D>::publish(PartitionSnapshot<D> snapshot) {
    auto next = std::make_shared<const PartitionSnapshot<D>>(std::move(snapshot));
    // Serialize publishers (readers never take this mutex) so the returned
    // epochs match the order the snapshots became visible; the slot store
    // precedes the bump so epoch() >= E implies snapshot E is live.
    const std::lock_guard<std::mutex> lock(publishMutex_);
    current_.store(std::move(next));
    const std::uint64_t epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
    {
        const std::lock_guard<std::mutex> statusLock(statusMutex_);
        lastPublishError_.clear();
        consecutiveFailures_ = 0;
        lastPublishTime_ = HealthClock::now();
    }
    return epoch;
}

template <int D>
void Router<D>::recordPublishFailure(const std::string& what) noexcept {
    try {
        const std::lock_guard<std::mutex> lock(statusMutex_);
        lastPublishError_ = what;
        ++failedPublishes_;
        ++consecutiveFailures_;
    } catch (...) {
        // Assigning the error string may allocate; losing the message under
        // OOM is acceptable, losing serving is not.
    }
}

template <int D>
void Router<D>::poison(std::string reason) {
    {
        const std::lock_guard<std::mutex> lock(statusMutex_);
        poisonReason_ = std::move(reason);
    }
    poisoned_.store(true, std::memory_order_release);
}

template <int D>
void Router<D>::checkNotPoisoned() const {
    if (!poisoned_.load(std::memory_order_acquire)) return;
    std::string reason;
    {
        const std::lock_guard<std::mutex> lock(statusMutex_);
        reason = poisonReason_;
    }
    throw std::runtime_error("router poisoned: " + reason);
}

template <int D>
RouterHealth Router<D>::health() const {
    RouterHealth h;
    h.epoch = epoch();
    h.poisoned = poisoned_.load(std::memory_order_acquire);
    const std::lock_guard<std::mutex> lock(statusMutex_);
    h.failedPublishes = failedPublishes_;
    h.consecutiveFailures = consecutiveFailures_;
    h.lastPublishError = lastPublishError_;
    h.poisonReason = poisonReason_;
    if (h.epoch > 0)
        h.epochAgeSeconds =
            std::chrono::duration<double>(HealthClock::now() - lastPublishTime_)
                .count();
    return h;
}

template <int D>
std::int32_t Router<D>::route(const Point<D>& p) const {
    checkNotPoisoned();
    const auto snap = snapshot();
    GEO_REQUIRE(snap != nullptr, "route before the first publish");
    return snap->blockOf(p);
}

template <int D>
void Router<D>::route(std::span<const Point<D>> points,
                      std::span<std::int32_t> blocks) const {
    checkNotPoisoned();
    GEO_REQUIRE(points.size() == blocks.size(),
                "need one output slot per query point");
    const auto snap = snapshot();
    GEO_REQUIRE(snap != nullptr, "route before the first publish");
    // Workers share `snap` by reference: the shared_ptr grabbed above keeps
    // the snapshot alive until every chunk finished (parallelFor joins
    // before returning), however many publishes happen meanwhile.
    par::parallelFor(threads_, points.size(),
                     [&](std::size_t i0, std::size_t i1, int) {
                         snap->blockOf(points.subspan(i0, i1 - i0),
                                       blocks.subspan(i0, i1 - i0));
                     });
}

template <int D>
std::int32_t Router<D>::routeRank(const Point<D>& p) const {
    checkNotPoisoned();
    const auto snap = snapshot();
    GEO_REQUIRE(snap != nullptr, "route before the first publish");
    return snap->rankOf(snap->blockOf(p));
}

MisrouteStats misrouteStats(std::span<const std::int32_t> routed,
                            std::span<const std::int32_t> fresh) {
    GEO_REQUIRE(routed.size() == fresh.size(),
                "misroute comparison needs equally sized spans");
    MisrouteStats stats;
    stats.total = static_cast<std::int64_t>(routed.size());
    for (std::size_t i = 0; i < routed.size(); ++i)
        stats.misrouted += routed[i] != fresh[i];
    return stats;
}

template class Router<2>;
template class Router<3>;

}  // namespace geo::serve
