#include "serve/router.hpp"

#include "par/parallel_for.hpp"
#include "support/assert.hpp"

namespace geo::serve {

template <int D>
std::uint64_t Router<D>::publish(PartitionSnapshot<D> snapshot) {
    auto next = std::make_shared<const PartitionSnapshot<D>>(std::move(snapshot));
    // Serialize publishers (readers never take this mutex) so the returned
    // epochs match the order the snapshots became visible; the slot store
    // precedes the bump so epoch() >= E implies snapshot E is live.
    const std::lock_guard<std::mutex> lock(publishMutex_);
    current_.store(std::move(next));
    return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

template <int D>
std::int32_t Router<D>::route(const Point<D>& p) const {
    const auto snap = snapshot();
    GEO_REQUIRE(snap != nullptr, "route before the first publish");
    return snap->blockOf(p);
}

template <int D>
void Router<D>::route(std::span<const Point<D>> points,
                      std::span<std::int32_t> blocks) const {
    GEO_REQUIRE(points.size() == blocks.size(),
                "need one output slot per query point");
    const auto snap = snapshot();
    GEO_REQUIRE(snap != nullptr, "route before the first publish");
    // Workers share `snap` by reference: the shared_ptr grabbed above keeps
    // the snapshot alive until every chunk finished (parallelFor joins
    // before returning), however many publishes happen meanwhile.
    par::parallelFor(threads_, points.size(),
                     [&](std::size_t i0, std::size_t i1, int) {
                         snap->blockOf(points.subspan(i0, i1 - i0),
                                       blocks.subspan(i0, i1 - i0));
                     });
}

template <int D>
std::int32_t Router<D>::routeRank(const Point<D>& p) const {
    const auto snap = snapshot();
    GEO_REQUIRE(snap != nullptr, "route before the first publish");
    return snap->rankOf(snap->blockOf(p));
}

MisrouteStats misrouteStats(std::span<const std::int32_t> routed,
                            std::span<const std::int32_t> fresh) {
    GEO_REQUIRE(routed.size() == fresh.size(),
                "misroute comparison needs equally sized spans");
    MisrouteStats stats;
    stats.total = static_cast<std::int64_t>(routed.size());
    for (std::size_t i = 0; i < routed.size(); ++i)
        stats.misrouted += routed[i] != fresh[i];
    return stats;
}

template class Router<2>;
template class Router<3>;

}  // namespace geo::serve
