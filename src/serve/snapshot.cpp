#include "serve/snapshot.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>

#include "par/comm.hpp"
#include "support/assert.hpp"
#include "support/binio.hpp"

#if defined(__SSE2__)
#define GEO_SERVE_SSE2 1
#include <emmintrin.h>
#endif

namespace geo::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Points per batch tile — matches the assignment engine's cache block, so
/// the kernel's working set (SoA lanes + best/bestC) stays L1/L2 resident.
constexpr std::size_t kRouteTile = 1024;

constexpr char kMagic[8] = {'G', 'E', 'O', 'S', 'N', 'P', '0', '1'};

template <typename T>
void writeRaw(std::ostream& out, const T& value) {
    out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void writeVec(std::ostream& out, const std::vector<T>& v) {
    if (!v.empty())
        out.write(reinterpret_cast<const char*>(v.data()),
                  static_cast<std::streamsize>(v.size() * sizeof(T)));
}

/// Hard ceiling on a snapshot file: 4 GiB holds > 10^8 blocks of a 3D
/// flat diagram, far past the serving tier's reach. readAll enforces it
/// while slurping, so an oversized (or unbounded, e.g. piped) stream fails
/// at the cap instead of after exhausting memory.
constexpr std::size_t kMaxSnapshotBytes = std::size_t{1} << 32;

}  // namespace

template <int D>
void PartitionSnapshot<D>::finalize(const SnapshotOptions& options) {
    GEO_REQUIRE(!levels_.empty(), "snapshot needs at least one level");
    std::int64_t nodes = 1;
    for (auto& level : levels_) {
        GEO_REQUIRE(level.branching >= 1, "level branching must be at least 1");
        const auto entries =
            static_cast<std::size_t>(nodes) * static_cast<std::size_t>(level.branching);
        GEO_REQUIRE(level.influence.size() == entries,
                    "level influence size does not match node count × branching");
        for (int d = 0; d < D; ++d)
            GEO_REQUIRE(level.cx[static_cast<std::size_t>(d)].size() == entries,
                        "level center coordinates do not match node count × branching");
        level.invInfluence2.resize(entries);
        for (std::size_t i = 0; i < entries; ++i) {
            const double inf = level.influence[i];
            GEO_REQUIRE(inf > 0.0, "influence values must be positive");
            level.invInfluence2[i] = 1.0 / (inf * inf);
        }
        nodes *= level.branching;
        GEO_REQUIRE(nodes <= (std::int64_t{1} << 30), "snapshot block count overflows");
    }
    k_ = static_cast<std::int32_t>(nodes);
    GEO_REQUIRE(blockLeaf_.empty() ||
                    blockLeaf_.size() == static_cast<std::size_t>(k_),
                "block → leaf map must cover every block");
    GEO_REQUIRE(blockRank_.empty() ||
                    blockRank_.size() == static_cast<std::size_t>(k_),
                "block → rank map must cover every block");
    // Value validation matters for load(): a corrupt-but-structurally-valid
    // stream must fail here, not hand a serving process garbage leaf/rank
    // ids to index its dispatch structures with.
    for (const std::int32_t leaf : blockLeaf_)
        GEO_REQUIRE(leaf >= 0 && leaf < k_, "block → leaf map entry out of range");
    for (const std::int32_t rank : blockRank_)
        GEO_REQUIRE(rank >= 0, "block → rank map entry out of range");

    compact_ = false;
    if (options.compactCenters && depth() == 1) {
        Level& flat = levels_.front();
        const auto entries = static_cast<std::size_t>(k_);
        centerAbsMax_.fill(0.0);
        invInfluence2Max_ = 0.0;
        for (int d = 0; d < D; ++d) {
            auto& mirror = flat.cx32[static_cast<std::size_t>(d)];
            mirror.resize(entries);
            for (std::size_t c = 0; c < entries; ++c) {
                const double v = flat.cx[static_cast<std::size_t>(d)][c];
                mirror[c] = static_cast<float>(v);
                centerAbsMax_[static_cast<std::size_t>(d)] =
                    std::max(centerAbsMax_[static_cast<std::size_t>(d)], std::abs(v));
            }
        }
        flat.invInfluence232.resize(entries);
        for (std::size_t c = 0; c < entries; ++c) {
            flat.invInfluence232[c] = static_cast<float>(flat.invInfluence2[c]);
            invInfluence2Max_ = std::max(invInfluence2Max_, flat.invInfluence2[c]);
        }
        compact_ = true;
    }

    useTree_ = false;
    if (!compact_ && depth() == 1 && options.kdTreeFromK > 0 &&
        k_ >= options.kdTreeFromK) {
        const Level& flat = levels_.front();
        std::vector<Point<D>> centers(static_cast<std::size_t>(k_));
        for (std::int32_t c = 0; c < k_; ++c)
            for (int d = 0; d < D; ++d)
                centers[static_cast<std::size_t>(c)][d] =
                    flat.cx[static_cast<std::size_t>(d)][static_cast<std::size_t>(c)];
        tree_.rebuild(centers, flat.influence);
        useTree_ = true;
    }
}

template <int D>
PartitionSnapshot<D> PartitionSnapshot<D>::fromCenters(
    std::span<const Point<D>> centers, std::span<const double> influence,
    std::uint64_t version, int ranks, const SnapshotOptions& options) {
    GEO_REQUIRE(!centers.empty(), "snapshot needs at least one center");
    GEO_REQUIRE(centers.size() == influence.size(),
                "need one influence value per center");
    PartitionSnapshot snap;
    snap.version_ = version;
    Level level;
    level.branching = static_cast<std::int32_t>(centers.size());
    for (int d = 0; d < D; ++d)
        level.cx[static_cast<std::size_t>(d)].resize(centers.size());
    for (std::size_t c = 0; c < centers.size(); ++c)
        for (int d = 0; d < D; ++d)
            level.cx[static_cast<std::size_t>(d)][c] = centers[c][d];
    level.influence.assign(influence.begin(), influence.end());
    snap.levels_.push_back(std::move(level));
    if (ranks >= 1)
        snap.blockRank_ =
            par::blockRankMap(static_cast<std::int64_t>(centers.size()), ranks);
    snap.finalize(options);
    return snap;
}

template <int D>
PartitionSnapshot<D> PartitionSnapshot<D>::fromResult(
    const core::GeographerResult& result, std::uint64_t version, int ranks,
    const SnapshotOptions& options) {
    const auto centers = core::unflattenCenters<D>(result.centerCoords);
    const auto& influence = result.assignmentInfluence.empty()
                                ? result.influence
                                : result.assignmentInfluence;
    return fromCenters(centers, influence, version, ranks, options);
}

template <int D>
PartitionSnapshot<D> PartitionSnapshot<D>::fromState(
    const repart::RepartState<D>& state, std::uint64_t version, int ranks,
    const SnapshotOptions& options) {
    return fromCenters(std::span<const Point<D>>(state.centers), state.influence,
                       version, ranks, options);
}

template <int D>
PartitionSnapshot<D> PartitionSnapshot<D>::fromHierResult(
    const hier::HierResult& result, const hier::Topology& topo, std::uint64_t version,
    int ranks, const SnapshotOptions& options) {
    topo.validate();
    const std::int32_t k = topo.leafCount();
    PartitionSnapshot snap;
    snap.version_ = version;

    // Breadth-first level offsets, mirroring the HierRun node numbering.
    std::size_t nodesAtLevel = 1;
    std::size_t offset = 0;
    for (int l = 0; l < topo.depth(); ++l) {
        const auto& tl = topo.levels[static_cast<std::size_t>(l)];
        const auto b = static_cast<std::size_t>(tl.branching);
        Level level;
        level.branching = tl.branching;
        const std::size_t entries = nodesAtLevel * b;
        for (int d = 0; d < D; ++d)
            level.cx[static_cast<std::size_t>(d)].resize(entries);
        level.influence.resize(entries);
        for (std::size_t node = 0; node < nodesAtLevel; ++node) {
            GEO_REQUIRE(offset + node < result.nodeDiagrams.size(),
                        "HierResult node diagrams do not cover the topology");
            const auto& diagram = result.nodeDiagrams[offset + node];
            GEO_REQUIRE(diagram.centerCoords.size() == b * D &&
                            diagram.influence.size() == b,
                        "node diagram does not match the level branching");
            for (std::size_t c = 0; c < b; ++c) {
                for (int d = 0; d < D; ++d)
                    level.cx[static_cast<std::size_t>(d)][node * b + c] =
                        diagram.centerCoords[c * D + static_cast<std::size_t>(d)];
                level.influence[node * b + c] = diagram.influence[c];
            }
        }
        snap.levels_.push_back(std::move(level));
        offset += nodesAtLevel;
        nodesAtLevel *= b;
    }

    snap.blockLeaf_ = result.blockLeaf;
    if (ranks >= 1) {
        const auto leafRank = topo.leafRankMap(ranks);
        snap.blockRank_.resize(static_cast<std::size_t>(k));
        for (std::int32_t blk = 0; blk < k; ++blk) {
            const std::int32_t leaf = snap.blockLeaf_.empty()
                                          ? blk
                                          : snap.blockLeaf_[static_cast<std::size_t>(blk)];
            snap.blockRank_[static_cast<std::size_t>(blk)] =
                leafRank[static_cast<std::size_t>(leaf)];
        }
    }
    snap.finalize(options);
    GEO_CHECK(snap.k_ == k, "snapshot block count must equal the topology leaf count");
    return snap;
}

template <int D>
std::int32_t PartitionSnapshot<D>::leafOf(std::int32_t block) const {
    GEO_REQUIRE(block >= 0 && block < k_, "block id out of range");
    return blockLeaf_.empty() ? block : blockLeaf_[static_cast<std::size_t>(block)];
}

template <int D>
std::int32_t PartitionSnapshot<D>::rankOf(std::int32_t block) const {
    GEO_REQUIRE(block >= 0 && block < k_, "block id out of range");
    return blockRank_.empty() ? -1 : blockRank_[static_cast<std::size_t>(block)];
}

template <int D>
std::int32_t PartitionSnapshot<D>::blockOf(const Point<D>& p) const {
    if (useTree_) return tree_.queryNearestIds(p).best;
    std::int64_t node = 0;
    for (const Level& level : levels_) {
        const auto b = static_cast<std::size_t>(level.branching);
        const std::size_t base = static_cast<std::size_t>(node) * b;
        double best2 = kInf;
        std::size_t best = 0;
        for (std::size_t c = 0; c < b; ++c) {
            double d2 = 0.0;
            for (int d = 0; d < D; ++d) {
                const double diff = p[d] - level.cx[static_cast<std::size_t>(d)][base + c];
                d2 += diff * diff;
            }
            const double e2 = d2 * level.invInfluence2[base + c];
            if (e2 < best2) {
                best2 = e2;
                best = c;
            }
        }
        node = node * level.branching + static_cast<std::int64_t>(best);
    }
    return static_cast<std::int32_t>(node);
}

/// One tile through the flat branchless kernel (depth-1, no tree): lanes are
/// points, the outer loop walks centers, and best/bestC update via pure
/// min + flat selects — the same if-convertible shape as the assignment
/// engine's batch kernel, minus the second-best and pruning lanes. Center
/// ids travel as doubles so every select lane has one vector width.
template <int D>
void PartitionSnapshot<D>::routeTile(const Point<D>* pts, std::size_t count,
                                     std::int32_t* out) const {
    if (useTree_) {
        for (std::size_t i = 0; i < count; ++i)
            out[i] = tree_.queryNearestIds(pts[i]).best;
        return;
    }
    if (depth() > 1) {
        for (std::size_t i = 0; i < count; ++i) out[i] = blockOf(pts[i]);
        return;
    }
    if (compact_) {
        routeTileCompact(pts, count, out);
        return;
    }

    const Level& flat = levels_.front();
    double gx[static_cast<std::size_t>(D)][kRouteTile];
    double best2[kRouteTile];
    double bestC[kRouteTile];
    for (std::size_t i = 0; i < count; ++i) {
        for (int d = 0; d < D; ++d) gx[static_cast<std::size_t>(d)][i] = pts[i][d];
        best2[i] = kInf;
        bestC[i] = 0.0;
    }

    const auto k = static_cast<std::size_t>(flat.branching);
    for (std::size_t c = 0; c < k; ++c) {
        std::array<double, static_cast<std::size_t>(D)> cx;
        for (int d = 0; d < D; ++d)
            cx[static_cast<std::size_t>(d)] = flat.cx[static_cast<std::size_t>(d)][c];
        const double inv = flat.invInfluence2[c];
        const auto cd = static_cast<double>(c);

        const auto scalarLanes = [&](std::size_t from, std::size_t to) {
            for (std::size_t j = from; j < to; ++j) {
                double d2 = 0.0;
                for (int d = 0; d < D; ++d) {
                    const double diff =
                        gx[static_cast<std::size_t>(d)][j] - cx[static_cast<std::size_t>(d)];
                    d2 += diff * diff;
                }
                const double e2 = d2 * inv;
                const double ob = best2[j];
                best2[j] = std::min(e2, ob);
                bestC[j] = e2 < ob ? cd : bestC[j];
            }
        };
#if GEO_SERVE_SSE2
        const __m128d cdv = _mm_set1_pd(cd);
        const __m128d invv = _mm_set1_pd(inv);
        std::size_t j = 0;
        for (; j + 2 <= count; j += 2) {
            __m128d d2 = _mm_setzero_pd();
            for (int d = 0; d < D; ++d) {
                const __m128d diff =
                    _mm_sub_pd(_mm_loadu_pd(&gx[static_cast<std::size_t>(d)][j]),
                               _mm_set1_pd(cx[static_cast<std::size_t>(d)]));
                d2 = _mm_add_pd(d2, _mm_mul_pd(diff, diff));
            }
            const __m128d e2 = _mm_mul_pd(d2, invv);
            const __m128d ob = _mm_loadu_pd(best2 + j);
            const __m128d obc = _mm_loadu_pd(bestC + j);
            const __m128d mb = _mm_cmplt_pd(e2, ob);
            _mm_storeu_pd(best2 + j, _mm_min_pd(e2, ob));
            _mm_storeu_pd(bestC + j,
                          _mm_or_pd(_mm_and_pd(mb, cdv), _mm_andnot_pd(mb, obc)));
        }
        scalarLanes(j, count);
#else
        scalarLanes(0, count);
#endif
    }
    for (std::size_t i = 0; i < count; ++i) out[i] = static_cast<std::int32_t>(bestC[i]);
}

namespace {

/// Slack factor for the compact kernel's rounding guard. Walking the error
/// terms — fp32 conversion of both operands (u·M each), the rounded
/// subtract (2u·M), squaring against |diff| ≤ 2M, the D-term rounded sum,
/// and the rounded multiply by the converted 1/influence² — bounds the
/// constant in front of u·inv·Σ_d M_d² by roughly 28 + 4D (≤ 40 for D = 3).
/// 128 triples that for headroom while the guard stays ~8e-6 relative —
/// far below typical best/second margins, so fallbacks stay rare.
constexpr double kCompactSlack = 128.0;

/// Unit roundoff of fp32.
constexpr double kF32Unit = 0x1p-24;

}  // namespace

/// fp32 tile kernel with an exactness guard. Per tile it computes, from the
/// lane coordinates and the precomputed center maxima, a conservative
/// absolute bound E on |e2_f32 − e2_f64| valid for EVERY (lane, center)
/// pair of the tile:
///
///   |Δe2| ≤ K·u·inv_max·Σ_d M_d²,   M_d = max(|x_d|, |c_d|) over the tile
///
/// (diff_d may cancel to near zero, but its absolute error is bounded by
/// O(u·M_d); squaring against |diff_d| ≤ 2·M_d and summing keeps everything
/// inside the Σ M_d² envelope — kCompactSlack absorbs the constants). If the
/// fp32 margin second2 − best2 exceeds 2E, the fp32 winner is the strict
/// fp64 argmin: for any rival b, e2_64(b) ≥ e2_32(b) − E > e2_32(best) + E ≥
/// e2_64(best). Otherwise — including exact fp32 ties, overflow to inf, and
/// the inf−inf NaN case, all of which fail the `> 2E` comparison — the lane
/// re-resolves through the exact fp64 scan with its lowest-id tie rule.
/// Routes are therefore bitwise identical to the fp64 path by construction.
template <int D>
void PartitionSnapshot<D>::routeTileCompact(const Point<D>* pts, std::size_t count,
                                            std::int32_t* out) const {
    const Level& flat = levels_.front();
    constexpr float kInfF = std::numeric_limits<float>::infinity();
    float gx[static_cast<std::size_t>(D)][kRouteTile];
    float best2[kRouteTile];
    float second2[kRouteTile];
    std::int32_t bestC[kRouteTile];

    std::array<double, static_cast<std::size_t>(D)> m = centerAbsMax_;
    for (std::size_t i = 0; i < count; ++i) {
        for (int d = 0; d < D; ++d) {
            const double v = pts[i][d];
            gx[static_cast<std::size_t>(d)][i] = static_cast<float>(v);
            m[static_cast<std::size_t>(d)] =
                std::max(m[static_cast<std::size_t>(d)], std::abs(v));
        }
        best2[i] = kInfF;
        second2[i] = kInfF;
        bestC[i] = 0;
    }
    double mag2 = 0.0;
    for (int d = 0; d < D; ++d)
        mag2 += m[static_cast<std::size_t>(d)] * m[static_cast<std::size_t>(d)];
    const double guard = 2.0 * kCompactSlack * kF32Unit * invInfluence2Max_ * mag2;

    const auto k = static_cast<std::size_t>(flat.branching);
    for (std::size_t c = 0; c < k; ++c) {
        std::array<float, static_cast<std::size_t>(D)> cx;
        for (int d = 0; d < D; ++d)
            cx[static_cast<std::size_t>(d)] =
                flat.cx32[static_cast<std::size_t>(d)][c];
        const float inv = flat.invInfluence232[c];
        const auto ci = static_cast<std::int32_t>(c);
        for (std::size_t j = 0; j < count; ++j) {
            float d2 = 0.0F;
            for (int d = 0; d < D; ++d) {
                const float diff =
                    gx[static_cast<std::size_t>(d)][j] - cx[static_cast<std::size_t>(d)];
                d2 += diff * diff;
            }
            const float e2 = d2 * inv;
            const float ob = best2[j];
            best2[j] = std::min(e2, ob);
            second2[j] = std::min(second2[j], std::max(e2, ob));
            bestC[j] = e2 < ob ? ci : bestC[j];
        }
    }

    std::uint64_t fellBack = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (static_cast<double>(second2[i]) - static_cast<double>(best2[i]) > guard) {
            out[i] = bestC[i];
        } else {
            out[i] = scanFlatExact(pts[i]);
            ++fellBack;
        }
    }
    if (fellBack != 0)
        fallbacks_.value.fetch_add(fellBack, std::memory_order_relaxed);
}

/// Exact fp64 linear scan over a flat snapshot's centers — the compact
/// kernel's fallback; same loop (and lowest-id tie rule) as the depth-1
/// body of the single-point blockOf.
template <int D>
std::int32_t PartitionSnapshot<D>::scanFlatExact(const Point<D>& p) const {
    const Level& flat = levels_.front();
    const auto k = static_cast<std::size_t>(flat.branching);
    double best2 = kInf;
    std::size_t best = 0;
    for (std::size_t c = 0; c < k; ++c) {
        double d2 = 0.0;
        for (int d = 0; d < D; ++d) {
            const double diff = p[d] - flat.cx[static_cast<std::size_t>(d)][c];
            d2 += diff * diff;
        }
        const double e2 = d2 * flat.invInfluence2[c];
        if (e2 < best2) {
            best2 = e2;
            best = c;
        }
    }
    return static_cast<std::int32_t>(best);
}

template <int D>
void PartitionSnapshot<D>::blockOf(std::span<const Point<D>> points,
                                   std::span<std::int32_t> blocks) const {
    GEO_REQUIRE(points.size() == blocks.size(),
                "need one output slot per query point");
    for (std::size_t i0 = 0; i0 < points.size(); i0 += kRouteTile)
        routeTile(points.data() + i0, std::min(kRouteTile, points.size() - i0),
                  blocks.data() + i0);
}

template <int D>
void PartitionSnapshot<D>::save(std::ostream& out) const {
    out.write(kMagic, sizeof(kMagic));
    writeRaw<std::uint32_t>(out, static_cast<std::uint32_t>(D));
    writeRaw<std::uint64_t>(out, version_);
    writeRaw<std::int32_t>(out, k_);
    writeRaw<std::int32_t>(out, static_cast<std::int32_t>(levels_.size()));
    for (const Level& level : levels_) {
        writeRaw<std::int32_t>(out, level.branching);
        writeRaw<std::uint64_t>(out, static_cast<std::uint64_t>(level.influence.size()));
        for (int d = 0; d < D; ++d) writeVec(out, level.cx[static_cast<std::size_t>(d)]);
        writeVec(out, level.influence);
    }
    writeRaw<std::uint8_t>(out, blockLeaf_.empty() ? 0 : 1);
    writeVec(out, blockLeaf_);
    writeRaw<std::uint8_t>(out, blockRank_.empty() ? 0 : 1);
    writeVec(out, blockRank_);
    GEO_REQUIRE(out.good(), "snapshot write failed");
}

template <int D>
void PartitionSnapshot<D>::save(const std::string& path) const {
    std::ofstream out(path, std::ios::binary);
    GEO_REQUIRE(out.is_open(), "cannot open snapshot file for writing");
    save(out);
}

template <int D>
PartitionSnapshot<D> PartitionSnapshot<D>::load(std::istream& in,
                                                const SnapshotOptions& options) {
    // Slurp-then-decode through the shared binio primitives (the same ones
    // the socket transport's wire codec uses): every read — fixed field or
    // counted array — is bounds-checked against the bytes actually present
    // BEFORE any allocation, so a truncated or hostile stream fails with a
    // clean error instead of a giant vector construction; expectEnd at the
    // bottom rejects oversized input carrying trailing bytes.
    const std::vector<std::byte> buf = binio::readAll(in, kMaxSnapshotBytes);
    binio::Reader r(buf);

    const std::vector<std::byte> magic = r.remaining() >= sizeof(kMagic)
                                             ? r.bytes(sizeof(kMagic))
                                             : std::vector<std::byte>{};
    GEO_REQUIRE(magic.size() == sizeof(kMagic) &&
                    std::memcmp(magic.data(), kMagic, sizeof(kMagic)) == 0,
                "not a partition snapshot (bad magic)");
    GEO_REQUIRE(r.u32() == static_cast<std::uint32_t>(D),
                "snapshot dimension does not match");
    PartitionSnapshot snap;
    snap.version_ = r.u64();
    const auto k = r.i32();
    const auto depth = r.i32();
    GEO_REQUIRE(k >= 1 && k <= (std::int32_t{1} << 30) && depth >= 1 && depth <= 64,
                "corrupt snapshot header");
    // Structural validation on top of the byte bounds: entry counts must
    // also match the level product, so a stream that is long enough but
    // structurally inconsistent still fails loudly.
    std::int64_t nodes = 1;
    for (std::int32_t l = 0; l < depth; ++l) {
        Level level;
        level.branching = r.i32();
        GEO_REQUIRE(level.branching >= 1 &&
                        nodes * level.branching <= (std::int64_t{1} << 30),
                    "corrupt snapshot (bad level branching)");
        const std::uint64_t entries = r.u64();
        GEO_REQUIRE(entries ==
                        static_cast<std::uint64_t>(nodes * level.branching),
                    "corrupt snapshot (level entry count mismatch)");
        for (int d = 0; d < D; ++d)
            level.cx[static_cast<std::size_t>(d)] =
                r.vec<double>(static_cast<std::size_t>(entries));
        level.influence = r.vec<double>(static_cast<std::size_t>(entries));
        snap.levels_.push_back(std::move(level));
        nodes *= level.branching;
    }
    GEO_REQUIRE(nodes == k, "corrupt snapshot (level product != block count)");
    if (r.u8() != 0)
        snap.blockLeaf_ = r.vec<std::int32_t>(static_cast<std::size_t>(k));
    if (r.u8() != 0)
        snap.blockRank_ = r.vec<std::int32_t>(static_cast<std::size_t>(k));
    r.expectEnd("partition snapshot");
    snap.finalize(options);
    GEO_CHECK(snap.k_ == k, "snapshot block count diverged from its header");
    return snap;
}

template <int D>
PartitionSnapshot<D> PartitionSnapshot<D>::load(const std::string& path,
                                                const SnapshotOptions& options) {
    std::ifstream in(path, std::ios::binary);
    GEO_REQUIRE(in.is_open(), "cannot open snapshot file for reading");
    return load(in, options);
}

template class PartitionSnapshot<2>;
template class PartitionSnapshot<3>;

}  // namespace geo::serve
