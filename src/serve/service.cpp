#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "par/parallel_for.hpp"
#include "support/assert.hpp"
#include "support/fault.hpp"
#include "support/timer.hpp"

namespace geo::serve {

namespace {

/// Latency shards: enough that a realistic frontier (tens of threads) sees
/// one shard per thread; beyond that threads share shards, which only costs
/// contention, never correctness.
constexpr int kLatencyShards = 16;

/// Refresh the cached p99 every this many served batches — merging the
/// histogram is O(buckets·shards), too heavy for every admission check.
constexpr std::uint64_t kP99RefreshBatches = 64;

/// Stable per-thread shard assignment (round-robin over all threads that
/// ever routed, wrapping into the shard count inside record()).
int threadShard() {
    static std::atomic<int> next{0};
    thread_local const int shard = next.fetch_add(1, std::memory_order_relaxed);
    return shard;
}

}  // namespace

const char* toString(ServiceState state) noexcept {
    switch (state) {
        case ServiceState::Healthy: return "healthy";
        case ServiceState::Backpressure: return "backpressure";
        case ServiceState::Shedding: return "shedding";
        case ServiceState::Poisoned: return "poisoned";
    }
    return "?";
}

template <int D>
PartitionService<D>::PartitionService(ServiceConfig<D> config,
                                      repart::WorkloadStep<D> initial)
    : config_(std::move(config)),
      router_(config_.settings.resolvedThreads()),
      latency_(kLatencyShards) {
    GEO_REQUIRE(config_.blocks >= 1, "service needs at least one block");
    GEO_REQUIRE(config_.slo.ingestQueueBound >= 1,
                "ingest queue bound must admit at least one event");
    GEO_REQUIRE(initial.ids.size() == initial.points.size(),
                "initial step needs one id per point");
    GEO_REQUIRE(static_cast<std::int64_t>(initial.points.size()) >= config_.blocks,
                "initial step needs at least one point per block");
    eventThreshold_ = config_.repartitionEventThreshold > 0
                          ? config_.repartitionEventThreshold
                          : (config_.slo.maxStalenessEvents > 0
                                 ? std::max<std::uint64_t>(1, config_.slo.maxStalenessEvents / 2)
                                 : 4096);
    startTime_ = HealthClock::now();

    live_.ids = std::move(initial.ids);
    live_.points = std::move(initial.points);
    live_.weights = std::move(initial.weights);
    if (live_.weights.empty()) live_.weights.assign(live_.points.size(), 1.0);
    live_.slot.reserve(live_.ids.size());
    for (std::size_t i = 0; i < live_.ids.size(); ++i) live_.slot[live_.ids[i]] = i;

    // Synchronous cold start: the service is servable (epoch 1) before the
    // constructor returns. A failure HERE throws — there is no last good
    // epoch to degrade to yet.
    const auto rr = repart::repartitionGeographer<D>(
        live_.points, live_.weights, config_.blocks, config_.ranks,
        config_.settings, repartState_);
    router_.publish(PartitionSnapshot<D>::fromResult(rr.result, /*version=*/1,
                                                     config_.ranks,
                                                     config_.snapshotOptions));
    publishedEpochs_.store(1, std::memory_order_relaxed);
    captureOriginNanos_.store(0, std::memory_order_relaxed);
    if (config_.onPublish) config_.onPublish(1, router_.snapshot());

    const int workers = std::max(1, config_.ingestWorkers);
    ingestThreads_.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
        ingestThreads_.emplace_back([this] { ingestLoop(); });
    repartThread_ = std::thread([this] { repartitionLoop(); });
}

template <int D>
PartitionService<D>::~PartitionService() {
    stop();
}

template <int D>
void PartitionService<D>::stop() {
    if (stopped_.exchange(true)) {
        // Second caller (or the destructor after an explicit stop): threads
        // are already told; just make sure they were joined.
    } else {
        {
            const std::lock_guard<std::mutex> lock(queueMutex_);
            queueNotFull_.notify_all();
            queueNotEmpty_.notify_all();
            queueDrained_.notify_all();
        }
        {
            const std::lock_guard<std::mutex> lock(repartMutex_);
            repartWake_.notify_all();
            epochCv_.notify_all();
        }
    }
    for (auto& t : ingestThreads_)
        if (t.joinable()) t.join();
    if (repartThread_.joinable()) repartThread_.join();
}

// --------------------------------------------------------------- ingest

template <int D>
bool PartitionService<D>::submit(std::vector<repart::ChurnEvent<D>> events) {
    if (events.empty()) return !stopped_.load(std::memory_order_acquire);
    {
        std::unique_lock<std::mutex> lock(queueMutex_);
        bool counted = false;
        // A batch larger than the whole bound is admitted alone into an
        // empty queue — rejecting it forever would deadlock the producer.
        while (!stopped_.load(std::memory_order_acquire) && queuedEvents_ > 0 &&
               queuedEvents_ + events.size() > config_.slo.ingestQueueBound) {
            if (!counted) {
                backpressureWaits_.fetch_add(1, std::memory_order_relaxed);
                counted = true;
            }
            blockedProducers_.fetch_add(1, std::memory_order_relaxed);
            evaluateState();  // make the Backpressure transition visible NOW
            queueNotFull_.wait(lock);
            blockedProducers_.fetch_sub(1, std::memory_order_relaxed);
        }
        if (stopped_.load(std::memory_order_acquire)) return false;
        queuedEvents_ += events.size();
        queueDepth_.store(queuedEvents_, std::memory_order_relaxed);
        queue_.push_back(std::move(events));
    }
    queueNotEmpty_.notify_one();
    evaluateState();
    return true;
}

template <int D>
bool PartitionService<D>::trySubmit(std::vector<repart::ChurnEvent<D>> events) {
    if (events.empty()) return !stopped_.load(std::memory_order_acquire);
    {
        const std::lock_guard<std::mutex> lock(queueMutex_);
        if (stopped_.load(std::memory_order_acquire)) return false;
        if (queuedEvents_ > 0 &&
            queuedEvents_ + events.size() > config_.slo.ingestQueueBound)
            return false;
        queuedEvents_ += events.size();
        queueDepth_.store(queuedEvents_, std::memory_order_relaxed);
        queue_.push_back(std::move(events));
    }
    queueNotEmpty_.notify_one();
    evaluateState();
    return true;
}

template <int D>
void PartitionService<D>::ingestLoop() {
    for (;;) {
        std::vector<repart::ChurnEvent<D>> batch;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueNotEmpty_.wait(lock, [this] {
                return stopped_.load(std::memory_order_acquire) || !queue_.empty();
            });
            if (stopped_.load(std::memory_order_acquire)) return;
            batch = std::move(queue_.front());
            queue_.pop_front();
            queuedEvents_ -= batch.size();
            queueDepth_.store(queuedEvents_, std::memory_order_relaxed);
            ++applyingBatches_;
        }
        queueNotFull_.notify_all();

        const std::uint64_t seq =
            ingestBatchSeq_.fetch_add(1, std::memory_order_relaxed);
        if (config_.ingestHook) config_.ingestHook(seq);
        applyBatch(batch);

        {
            const std::lock_guard<std::mutex> lock(queueMutex_);
            --applyingBatches_;
            if (queue_.empty() && applyingBatches_ == 0) queueDrained_.notify_all();
        }
        evaluateState();
        // The repartition worker re-checks its pending-event predicate; an
        // unconditional nudge per batch is cheaper than tracking the
        // threshold here.
        repartWake_.notify_one();
    }
}

template <int D>
void PartitionService<D>::applyBatch(
    const std::vector<repart::ChurnEvent<D>>& events) {
    const std::lock_guard<std::mutex> lock(pointsMutex_);
    for (const auto& e : events) {
        const auto it = live_.slot.find(e.id);
        switch (e.kind) {
            case repart::ChurnEvent<D>::Kind::Insert:
                if (it != live_.slot.end()) {  // defensive: recycled id = move
                    live_.points[it->second] = e.point;
                    live_.weights[it->second] = e.weight;
                    break;
                }
                live_.slot[e.id] = live_.points.size();
                live_.ids.push_back(e.id);
                live_.points.push_back(e.point);
                live_.weights.push_back(e.weight);
                break;
            case repart::ChurnEvent<D>::Kind::Remove: {
                if (it == live_.slot.end()) break;  // defensive: already gone
                const std::size_t idx = it->second;
                const std::size_t last = live_.points.size() - 1;
                if (idx != last) {
                    live_.ids[idx] = live_.ids[last];
                    live_.points[idx] = live_.points[last];
                    live_.weights[idx] = live_.weights[last];
                    live_.slot[live_.ids[idx]] = idx;
                }
                live_.ids.pop_back();
                live_.points.pop_back();
                live_.weights.pop_back();
                live_.slot.erase(e.id);
                break;
            }
            case repart::ChurnEvent<D>::Kind::Move:
                if (it == live_.slot.end()) {  // defensive: resurrect as insert
                    live_.slot[e.id] = live_.points.size();
                    live_.ids.push_back(e.id);
                    live_.points.push_back(e.point);
                    live_.weights.push_back(e.weight);
                    break;
                }
                live_.points[it->second] = e.point;
                break;
        }
    }
    // Inside the points lock: a capture that copies the set sees exactly
    // the events counted as applied, so staleness-in-events is exact.
    appliedEvents_.fetch_add(events.size(), std::memory_order_relaxed);
}

// --------------------------------------------------- repartition worker

template <int D>
void PartitionService<D>::repartitionLoop() {
    std::uint64_t seq = 0;
    const auto interval = std::chrono::duration<double>(
        std::max(1e-4, config_.repartitionIntervalSeconds));
    while (!stopped_.load(std::memory_order_acquire)) {
        bool requested = false;
        {
            std::unique_lock<std::mutex> lock(repartMutex_);
            repartWake_.wait_for(lock, interval, [this] {
                return stopped_.load(std::memory_order_acquire) || repartRequested_ ||
                       stalenessEventsNow() >= eventThreshold_;
            });
            requested = repartRequested_;
            repartRequested_ = false;
        }
        if (stopped_.load(std::memory_order_acquire)) break;
        // Nothing moved and nobody asked: a recompute would republish the
        // same diagram — skip the round, staleness is not accumulating.
        if (!requested && stalenessEventsNow() == 0) continue;

        repartitionAttempts_.fetch_add(1, std::memory_order_relaxed);
        if (config_.repartHook) config_.repartHook(seq);
        // Chaos hook: GEO_FAULT=delay:op=repart wedges the worker HERE —
        // queries keep flowing from the last epoch while staleness grows.
        support::faultPoint("repart", seq);

        // Consistent capture of the live set + the exact event count it
        // reflects (applyBatch counts under the same lock).
        std::vector<Point<D>> points;
        std::vector<double> weights;
        std::uint64_t capturedEvents = 0;
        {
            const std::lock_guard<std::mutex> lock(pointsMutex_);
            points = live_.points;
            weights = live_.weights;
            capturedEvents = appliedEvents_.load(std::memory_order_relaxed);
        }
        const std::int64_t captureNanos =
            std::chrono::duration_cast<std::chrono::nanoseconds>(HealthClock::now() -
                                                                 startTime_)
                .count();
        if (static_cast<std::int64_t>(points.size()) < config_.blocks) {
            // Deletes shrank the set below k: nothing publishable; retry
            // once inserts catch up.
            ++seq;
            continue;
        }

        double misroute = -1.0;
        const bool ok = router_.tryPublish([&] {
            auto rr = repart::repartitionGeographer<D>(
                points, weights, config_.blocks, config_.ranks, config_.settings,
                repartState_);
            // Chaos hook: GEO_FAULT=kill/exit/delay:op=publish targets the
            // window between recompute and epoch swap.
            support::faultPoint("publish", seq);
            const std::uint64_t epoch = router_.epoch() + 1;
            if (config_.publishHook) config_.publishHook(epoch);
            // Misroute the SLO tracks: what the snapshot being replaced
            // would answer for the fresh point set vs the fresh partition.
            if (const auto old = router_.snapshot()) {
                std::vector<std::int32_t> stale(points.size(), -1);
                old->blockOf(std::span<const Point<D>>(points),
                             std::span<std::int32_t>(stale));
                misroute = misrouteStats(stale, rr.result.partition).fraction();
            }
            return PartitionSnapshot<D>::fromResult(rr.result, epoch, config_.ranks,
                                                    config_.snapshotOptions);
        });

        if (ok) {
            eventsAtLastPublish_.store(capturedEvents, std::memory_order_relaxed);
            captureOriginNanos_.store(captureNanos, std::memory_order_relaxed);
            publishedEpochs_.fetch_add(1, std::memory_order_relaxed);
            if (misroute >= 0.0)
                lastMisroute_.store(misroute, std::memory_order_relaxed);
            {
                const std::lock_guard<std::mutex> lock(repartMutex_);
                epochCv_.notify_all();
            }
            if (config_.onPublish) config_.onPublish(router_.epoch(), router_.snapshot());
        } else {
            // Degraded: the router recorded the failure and still serves
            // the last good epoch. Pace the retry on the cadence interval
            // instead of hot-looping a failing recompute.
            std::unique_lock<std::mutex> lock(repartMutex_);
            repartWake_.wait_for(lock, interval, [this] {
                return stopped_.load(std::memory_order_acquire) || repartRequested_;
            });
        }
        ++seq;
        evaluateState();
    }
}

template <int D>
void PartitionService<D>::requestRepartition() {
    {
        const std::lock_guard<std::mutex> lock(repartMutex_);
        repartRequested_ = true;
    }
    repartWake_.notify_one();
}

template <int D>
bool PartitionService<D>::waitForEpoch(std::uint64_t epoch,
                                       double timeoutSeconds) const {
    std::unique_lock<std::mutex> lock(repartMutex_);
    epochCv_.wait_for(lock, std::chrono::duration<double>(timeoutSeconds), [&] {
        return router_.epoch() >= epoch || stopped_.load(std::memory_order_acquire);
    });
    return router_.epoch() >= epoch;
}

template <int D>
bool PartitionService<D>::waitForIngestDrain(double timeoutSeconds) const {
    std::unique_lock<std::mutex> lock(queueMutex_);
    return queueDrained_.wait_for(
        lock, std::chrono::duration<double>(timeoutSeconds), [&] {
            return (queue_.empty() && applyingBatches_ == 0) ||
                   stopped_.load(std::memory_order_acquire);
        });
}

// ------------------------------------------------------- query frontier

template <int D>
RouteTicket PartitionService<D>::route(std::span<const Point<D>> points,
                                       std::span<std::int32_t> blocks,
                                       QueryPriority priority) const {
    GEO_REQUIRE(points.size() == blocks.size(),
                "need one output slot per query point");
    evaluateState();
    RouteTicket ticket;
    const ServiceState state = state_.load(std::memory_order_acquire);
    if (state == ServiceState::Poisoned) {
        ticket.status = RouteStatus::Poisoned;
        return ticket;
    }
    if (state == ServiceState::Shedding && priority == QueryPriority::Low) {
        shedQueries_.fetch_add(1, std::memory_order_relaxed);
        ticket.status = RouteStatus::Overloaded;
        return ticket;
    }

    Timer timer;
    // One snapshot for the whole batch — the ticket's epoch is exactly the
    // snapshot every point was answered from, however many publishes land
    // while the batch is in flight.
    const auto snap = router_.snapshot();
    GEO_REQUIRE(snap != nullptr, "service constructed servable");
    par::parallelFor(config_.settings.resolvedThreads(), points.size(),
                     [&](std::size_t i0, std::size_t i1, int) {
                         snap->blockOf(points.subspan(i0, i1 - i0),
                                       blocks.subspan(i0, i1 - i0));
                     });
    ticket.seconds = timer.seconds();
    ticket.epoch = snap->version();
    latency_.record(ticket.seconds, threadShard());

    const std::uint64_t served =
        servedBatches_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (config_.slo.p99LatencyTargetSeconds > 0.0 &&
        (served % kP99RefreshBatches == 0 || served == 1))
        cachedP99_.store(latency_.merged().quantile(0.99),
                         std::memory_order_relaxed);
    return ticket;
}

// -------------------------------------------------- admission controller

template <int D>
std::uint64_t PartitionService<D>::stalenessEventsNow() const noexcept {
    const std::uint64_t applied = appliedEvents_.load(std::memory_order_relaxed);
    const std::uint64_t at = eventsAtLastPublish_.load(std::memory_order_relaxed);
    return applied > at ? applied - at : 0;
}

template <int D>
double PartitionService<D>::stalenessSecondsNow() const noexcept {
    const auto nowNanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              HealthClock::now() - startTime_)
                              .count();
    return static_cast<double>(nowNanos -
                               captureOriginNanos_.load(std::memory_order_relaxed)) *
           1e-9;
}

template <int D>
void PartitionService<D>::evaluateState() const {
    const auto& slo = config_.slo;
    ServiceState next = ServiceState::Healthy;
    char reason[160];
    std::snprintf(reason, sizeof reason, "within slo");

    if (router_.poisoned()) {
        next = ServiceState::Poisoned;
        std::snprintf(reason, sizeof reason, "router poisoned");
    } else {
        const double staleSeconds = stalenessSecondsNow();
        const std::uint64_t staleEvents = stalenessEventsNow();
        const double misroute = lastMisroute_.load(std::memory_order_relaxed);
        const double p99 = cachedP99_.load(std::memory_order_relaxed);
        if (slo.maxStalenessSeconds > 0.0 && staleSeconds > slo.maxStalenessSeconds) {
            next = ServiceState::Shedding;
            std::snprintf(reason, sizeof reason, "staleness %.3fs > %.3fs",
                          staleSeconds, slo.maxStalenessSeconds);
        } else if (slo.maxStalenessEvents > 0 &&
                   staleEvents > slo.maxStalenessEvents) {
            next = ServiceState::Shedding;
            std::snprintf(reason, sizeof reason,
                          "staleness %llu events > %llu",
                          static_cast<unsigned long long>(staleEvents),
                          static_cast<unsigned long long>(slo.maxStalenessEvents));
        } else if (slo.maxMisrouteFraction > 0.0 && misroute > slo.maxMisrouteFraction) {
            next = ServiceState::Shedding;
            std::snprintf(reason, sizeof reason, "misroute %.4f > %.4f", misroute,
                          slo.maxMisrouteFraction);
        } else if (slo.p99LatencyTargetSeconds > 0.0 &&
                   p99 > slo.p99LatencyTargetSeconds) {
            next = ServiceState::Shedding;
            std::snprintf(reason, sizeof reason, "p99 %.6fs > %.6fs", p99,
                          slo.p99LatencyTargetSeconds);
        } else if (queueDepth_.load(std::memory_order_relaxed) >=
                       slo.ingestQueueBound ||
                   blockedProducers_.load(std::memory_order_relaxed) > 0) {
            next = ServiceState::Backpressure;
            std::snprintf(reason, sizeof reason,
                          "ingest queue %zu / bound %zu, %d producer(s) blocked",
                          queueDepth_.load(std::memory_order_relaxed),
                          slo.ingestQueueBound,
                          blockedProducers_.load(std::memory_order_relaxed));
        }
    }
    if (next == state_.load(std::memory_order_acquire)) return;
    const std::lock_guard<std::mutex> lock(statusMutex_);
    const ServiceState current = state_.load(std::memory_order_acquire);
    if (next == current) return;  // another thread recorded it first
    StateTransition t;
    t.from = current;
    t.to = next;
    t.atSeconds = std::chrono::duration<double>(HealthClock::now() - startTime_).count();
    t.reason = reason;
    transitions_.push_back(std::move(t));
    while (transitions_.size() > kMaxTransitions) transitions_.pop_front();
    state_.store(next, std::memory_order_release);
}

template <int D>
ServiceHealth PartitionService<D>::health() const {
    evaluateState();
    ServiceHealth h;
    h.router = router_.health();
    h.state = state_.load(std::memory_order_acquire);
    const auto merged = latency_.merged();
    h.p50LatencySeconds = merged.quantile(0.50);
    h.p99LatencySeconds = merged.quantile(0.99);
    h.stalenessSeconds = stalenessSecondsNow();
    h.stalenessEvents = stalenessEventsNow();
    h.lastMisrouteFraction = lastMisroute_.load(std::memory_order_relaxed);
    h.ingestQueueDepth = queueDepth_.load(std::memory_order_relaxed);
    h.ingestQueueBound = config_.slo.ingestQueueBound;
    h.appliedEvents = appliedEvents_.load(std::memory_order_relaxed);
    h.servedBatches = servedBatches_.load(std::memory_order_relaxed);
    h.shedQueries = shedQueries_.load(std::memory_order_relaxed);
    h.backpressureWaits = backpressureWaits_.load(std::memory_order_relaxed);
    h.publishedEpochs = publishedEpochs_.load(std::memory_order_relaxed);
    h.repartitionAttempts = repartitionAttempts_.load(std::memory_order_relaxed);
    {
        const std::lock_guard<std::mutex> lock(statusMutex_);
        h.transitions.assign(transitions_.begin(), transitions_.end());
    }
    return h;
}

template class PartitionService<2>;
template class PartitionService<3>;

}  // namespace geo::serve
