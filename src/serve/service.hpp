// SLO-governed partition-serving service: concurrent ingest, background
// repartition, bounded staleness, and backpressure.
//
// bench/repart_timeline closes the compute→serve→recompute loop OFFLINE —
// one thread does everything in sequence. A PartitionService promotes it to
// a long-running online service running three roles concurrently against
// one serve::Router:
//   * the QUERY FRONTIER — any number of caller threads issuing batched
//     route() calls; each batch is answered against exactly one published
//     snapshot (the epoch is returned in the RouteTicket) and its latency
//     is recorded into a lock-free sharded histogram
//     (support/histogram.hpp),
//   * the INGEST PATH — producers submit() batches of repart::ChurnEvent
//     (inserts/deletes/drift, e.g. repart::diffSteps over a scenario) into
//     a mutex-protected bounded queue drained by worker threads that apply
//     them to the live point set — the job-queue shape of an IPP-style
//     print server: jobs held under one lock, workers draining, clients
//     polling state. When the queue is full, producers BLOCK (backpressure)
//     instead of growing the queue without bound,
//   * the REPARTITION WORKER — a background thread that captures a
//     consistent copy of the live point set, warm-starts
//     repart::repartitionGeographer, and publishes the fresh snapshot via
//     Router::tryPublish — so a failed recompute or publish degrades to the
//     last good epoch (PR 8's RouterHealth path) instead of taking serving
//     down. Fault points faultPoint("repart", seq) / faultPoint("publish",
//     seq) let GEO_FAULT wedge or kill the loop deterministically.
//
// The SLO contract (SloConfig) makes staleness an explicit, bounded
// quantity: a snapshot's staleness is measured BOTH in seconds since its
// point set was captured AND in churn events applied since then. The
// admission controller degrades through the state machine
//
//     Healthy → Backpressure → Shedding → Poisoned
//
//   * Backpressure — the ingest queue is at its bound; producers block,
//     queries still flow,
//   * Shedding — an SLO bound is violated (staleness in seconds or events,
//     observed misroute rate, or p99 route latency): LOW-priority queries
//     are rejected with a typed RouteStatus::Overloaded ticket; HIGH-
//     priority queries are still answered from the stale snapshot
//     (availability for the traffic that needs it, load shed for the rest),
//   * Poisoned — only via Router::poison; the service never poisons itself.
// Every transition is recorded and visible in a ServiceHealth snapshot.
// All ages use serve::HealthClock (steady), never the wall clock.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/settings.hpp"
#include "repart/repartition.hpp"
#include "repart/scenarios.hpp"
#include "serve/router.hpp"
#include "serve/snapshot.hpp"
#include "support/histogram.hpp"

namespace geo::serve {

enum class ServiceState : std::uint8_t { Healthy, Backpressure, Shedding, Poisoned };

[[nodiscard]] const char* toString(ServiceState state) noexcept;

/// The serving-level objectives the admission controller enforces. A bound
/// of 0 (or 0 events) disables that trigger — the defaults are deliberately
/// generous so a service without explicit SLOs behaves like a plain Router.
struct SloConfig {
    /// Shed low-priority traffic when the p99 batched-route latency (over
    /// the service lifetime histogram) exceeds this. 0 disables.
    double p99LatencyTargetSeconds = 0.0;
    /// Shed when the misroute rate observed at the last publish (stale
    /// snapshot vs fresh partition over the captured point set) exceeds
    /// this fraction. <= 0 disables.
    double maxMisrouteFraction = 0.0;
    /// Shed when the served snapshot's capture is older than this. The
    /// capture time, not the publish time: a recompute that took 3 s
    /// publishes a snapshot that is already 3 s stale. 0 disables.
    double maxStalenessSeconds = 0.0;
    /// Shed when more than this many churn events were applied to the live
    /// point set after the served snapshot's capture. 0 disables.
    std::uint64_t maxStalenessEvents = 0;
    /// Ingest-queue bound in EVENTS: submit() blocks while admitting the
    /// batch would push the queued event count past this. Must be >= 1.
    std::size_t ingestQueueBound = 65536;
};

enum class QueryPriority : std::uint8_t { Low, High };

enum class RouteStatus : std::uint8_t {
    Ok,          ///< answered; `epoch` says from which snapshot
    Overloaded,  ///< shed: low priority while the service is degraded
    Poisoned,    ///< the router was explicitly poisoned
};

/// Receipt of one batched route() call.
struct RouteTicket {
    RouteStatus status = RouteStatus::Ok;
    std::uint64_t epoch = 0;  ///< snapshot version that answered (Ok only)
    double seconds = 0.0;     ///< measured batch latency (Ok only)
};

/// One admission-controller state change, timestamped on the service's
/// steady clock (seconds since construction).
struct StateTransition {
    ServiceState from = ServiceState::Healthy;
    ServiceState to = ServiceState::Healthy;
    double atSeconds = 0.0;
    std::string reason;
};

/// Operator-visible snapshot of the whole serving loop.
struct ServiceHealth {
    ServiceState state = ServiceState::Healthy;
    RouterHealth router;
    double p50LatencySeconds = 0.0;
    double p99LatencySeconds = 0.0;
    /// Staleness of the served snapshot: seconds since its point-set
    /// capture, and churn events applied to the live set since then.
    double stalenessSeconds = 0.0;
    std::uint64_t stalenessEvents = 0;
    /// Misroute fraction measured at the last successful publish (previous
    /// snapshot vs fresh partition over the captured points); -1 before the
    /// first repartition publish.
    double lastMisrouteFraction = -1.0;
    std::size_t ingestQueueDepth = 0;  ///< queued events right now
    std::size_t ingestQueueBound = 0;
    std::uint64_t appliedEvents = 0;      ///< churn events applied in total
    std::uint64_t servedBatches = 0;      ///< Ok route() calls
    std::uint64_t shedQueries = 0;        ///< Overloaded tickets issued
    std::uint64_t backpressureWaits = 0;  ///< producer blocks on the full queue
    std::uint64_t publishedEpochs = 0;    ///< successful publishes (incl. epoch 1)
    std::uint64_t repartitionAttempts = 0;
    /// Most recent admission-controller transitions, oldest first (bounded
    /// ring — see kMaxTransitions).
    std::vector<StateTransition> transitions;
};

template <int D>
struct ServiceConfig {
    std::int32_t blocks = 8;
    int ranks = 1;
    /// Settings for every repartition the worker runs (threads also drive
    /// the router's batched-route fan-out).
    core::Settings settings;
    SloConfig slo;
    /// Threads draining the ingest queue. Applying events takes the point
    /// mutex, so >1 worker mostly buys popping/validation concurrency.
    int ingestWorkers = 1;
    /// Repartition cadence floor: the worker recomputes at least this often
    /// while churn arrives, and immediately once pending (unsnapshotted)
    /// events reach repartitionEventThreshold.
    double repartitionIntervalSeconds = 0.05;
    /// 0 = derive: half of slo.maxStalenessEvents when that is set, else
    /// 4096.
    std::uint64_t repartitionEventThreshold = 0;
    SnapshotOptions snapshotOptions;

    // ---- test seams (no-ops when empty) ------------------------------
    /// Runs inside the tryPublish factory right before the snapshot is
    /// built, with the would-be epoch; a throw here is a publish failure
    /// (the deterministic way to drive a publish-failure storm in-process).
    std::function<void(std::uint64_t epoch)> publishHook;
    /// Runs at the top of every repartition-worker iteration (before the
    /// point-set capture); blocking here wedges the worker like a
    /// GEO_FAULT=delay:op=repart would.
    std::function<void(std::uint64_t seq)> repartHook;
    /// Runs in an ingest worker before each batch is applied; blocking here
    /// stalls draining so tests can fill the queue deterministically.
    std::function<void(std::uint64_t batch)> ingestHook;
    /// Called after every successful publish with the epoch and the
    /// now-current snapshot (the epoch-consistency tests record these).
    std::function<void(std::uint64_t epoch,
                       std::shared_ptr<const PartitionSnapshot<D>>)>
        onPublish;
};

template <int D>
class PartitionService {
public:
    /// Capped length of ServiceHealth::transitions (oldest entries drop).
    static constexpr std::size_t kMaxTransitions = 64;

    /// Partitions `initial` synchronously (cold) and publishes epoch 1, so
    /// the service is servable before the constructor returns; then starts
    /// the ingest workers and the repartition worker.
    PartitionService(ServiceConfig<D> config, repart::WorkloadStep<D> initial);
    ~PartitionService();

    PartitionService(const PartitionService&) = delete;
    PartitionService& operator=(const PartitionService&) = delete;

    /// Stop ingest + repartition threads (idempotent). Pending queued
    /// batches are dropped; the router keeps serving its last epoch.
    void stop();

    /// Enqueue a churn batch, BLOCKING while the queue is at its event
    /// bound (backpressure). Returns false when the service is stopped
    /// (the batch is not enqueued). Empty batches return true immediately.
    bool submit(std::vector<repart::ChurnEvent<D>> events);

    /// Non-blocking submit: false when admission would have blocked (or the
    /// service is stopped) — what a producer that prefers dropping to
    /// stalling calls.
    bool trySubmit(std::vector<repart::ChurnEvent<D>> events);

    /// Batched query against the current snapshot. Admission may shed
    /// Low-priority batches (RouteStatus::Overloaded; `blocks` is then
    /// untouched). Never throws on a poisoned router — that surfaces as
    /// RouteStatus::Poisoned. Thread-safe; this IS the query frontier.
    RouteTicket route(std::span<const Point<D>> points,
                      std::span<std::int32_t> blocks,
                      QueryPriority priority = QueryPriority::High) const;

    [[nodiscard]] ServiceHealth health() const;

    [[nodiscard]] const Router<D>& router() const noexcept { return router_; }
    /// Mutable router access: poison() is the operator's kill switch.
    [[nodiscard]] Router<D>& router() noexcept { return router_; }

    /// Nudge the repartition worker out of its cadence wait.
    void requestRepartition();

    /// Wait until the router reaches `epoch` (true) or `timeoutSeconds`
    /// passes (false).
    bool waitForEpoch(std::uint64_t epoch, double timeoutSeconds) const;

    /// Wait until the ingest queue is empty and no batch is mid-apply.
    bool waitForIngestDrain(double timeoutSeconds) const;

private:
    struct PointSet {
        std::vector<std::int64_t> ids;
        std::vector<Point<D>> points;
        std::vector<double> weights;
        std::unordered_map<std::int64_t, std::size_t> slot;
    };

    void ingestLoop();
    void repartitionLoop();
    void applyBatch(const std::vector<repart::ChurnEvent<D>>& events);
    /// Re-derive the admission state from current measurements; record and
    /// publish the transition when it changed. `statusMutex_` must NOT be
    /// held by the caller.
    void evaluateState() const;
    [[nodiscard]] std::uint64_t stalenessEventsNow() const noexcept;
    [[nodiscard]] double stalenessSecondsNow() const noexcept;

    ServiceConfig<D> config_;
    std::uint64_t eventThreshold_ = 0;  ///< resolved repartitionEventThreshold
    Router<D> router_;
    repart::RepartState<D> repartState_;
    HealthClock::time_point startTime_{};

    // Live point set (ingest workers write, repartition worker captures).
    mutable std::mutex pointsMutex_;
    PointSet live_;

    // Bounded ingest queue (the job-queue: one mutex, workers draining,
    // producers blocking on the not-full condition).
    mutable std::mutex queueMutex_;
    std::condition_variable queueNotFull_;   ///< producers wait here
    std::condition_variable queueNotEmpty_;  ///< ingest workers wait here
    mutable std::condition_variable queueDrained_;  ///< waitForIngestDrain
    std::deque<std::vector<repart::ChurnEvent<D>>> queue_;
    std::size_t queuedEvents_ = 0;  ///< sum of queued batch sizes (queueMutex_)
    std::size_t applyingBatches_ = 0;
    std::atomic<std::size_t> queueDepth_{0};  ///< lock-free mirror of queuedEvents_
    std::atomic<int> blockedProducers_{0};

    // Repartition worker coordination.
    mutable std::mutex repartMutex_;
    std::condition_variable repartWake_;
    bool repartRequested_ = false;
    mutable std::condition_variable epochCv_;  ///< waitForEpoch (repartMutex_)

    // Monotonic counters + cached SLO measurements (relaxed atomics: the
    // admission controller runs on every route() call and must stay off
    // every mutex a writer might hold).
    std::atomic<std::uint64_t> appliedEvents_{0};
    std::atomic<std::uint64_t> eventsAtLastPublish_{0};
    std::atomic<std::int64_t> captureOriginNanos_{0};  ///< served snapshot's capture, ns since start
    mutable std::atomic<std::uint64_t> servedBatches_{0};
    mutable std::atomic<std::uint64_t> shedQueries_{0};
    mutable std::atomic<std::uint64_t> backpressureWaits_{0};
    std::atomic<std::uint64_t> publishedEpochs_{0};
    std::atomic<std::uint64_t> repartitionAttempts_{0};
    std::atomic<std::uint64_t> ingestBatchSeq_{0};
    std::atomic<double> lastMisroute_{-1.0};
    mutable std::atomic<double> cachedP99_{0.0};  ///< refreshed every few batches

    mutable support::LatencyHistogram latency_;

    // Admission state + transition log.
    mutable std::atomic<ServiceState> state_{ServiceState::Healthy};
    mutable std::mutex statusMutex_;  ///< guards transitions_ only
    mutable std::deque<StateTransition> transitions_;

    std::atomic<bool> stopped_{false};
    std::vector<std::thread> ingestThreads_;
    std::thread repartThread_;
};

extern template class PartitionService<2>;
extern template class PartitionService<3>;

}  // namespace geo::serve
