// Lock-free epoch-swapped router: the thread-safe serving handle over
// immutable PartitionSnapshots.
//
// A Router answers point → block (→ rank) lookups against "the current
// partition" while repartitioning keeps publishing new ones. The contract:
//   * readers never block — route()/snapshot() copy the current snapshot
//     pointer out of a par::AtomicSharedPtr slot (a one-bit spin protocol
//     held for a single refcount increment; see that header for why the
//     standard atomic<shared_ptr> does not survive TSan) and then work
//     exclusively on that immutable snapshot, so a reader mid-batch keeps
//     its snapshot alive even if the publisher swaps and drops every other
//     reference,
//   * publishers swap in O(1) — publish() installs the new snapshot with
//     one release store into the slot and bumps the router epoch; it never
//     waits for readers, and the old snapshot is freed by whichever side
//     drops the last reference,
//   * a reader therefore observes either the complete old snapshot or the
//     complete new one, never a mix — the property tests/test_serve.cpp
//     hammers under the TSan CI job.
//
// Batched route() fans fixed tiles out over the router's worker threads via
// par::parallelFor (Settings::threads semantics: per-point results are
// independent, so the output is identical at every thread count). The
// single-point overload is the low-latency path: one shared_ptr load + one
// descent, no pool traffic.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "par/atomic_shared_ptr.hpp"
#include "par/thread_pool.hpp"
#include "serve/snapshot.hpp"

namespace geo::serve {

/// The one clock every serving-layer age/staleness measurement uses.
/// Pinned to steady_clock on purpose: RouterHealth::epochAgeSeconds and the
/// service SLO staleness window must not jump when NTP steps the wall
/// clock — a backwards wall-clock jump would fake a fresh snapshot, a
/// forwards one would fake an SLO violation and shed real traffic. The
/// regression test in tests/test_serve.cpp asserts this alias stays steady.
using HealthClock = std::chrono::steady_clock;
static_assert(HealthClock::is_steady,
              "serving staleness must be immune to wall-clock jumps");

/// Health/staleness report of a Router (see Router::health). The serving
/// contract under failure is graceful degradation: a failed publish leaves
/// the last good snapshot in place and is only RECORDED here — routing
/// keeps answering, just against an aging epoch. Operators (and the chaos
/// tests) read this struct to see how stale the answers are and why.
struct RouterHealth {
    std::uint64_t epoch = 0;            ///< last successfully published epoch
    double epochAgeSeconds = 0.0;       ///< age of that epoch (0 if none yet)
    std::uint64_t failedPublishes = 0;  ///< total tryPublish failures
    std::uint64_t consecutiveFailures = 0;  ///< failures since the last success
    std::string lastPublishError;       ///< empty when the last publish worked
    bool poisoned = false;              ///< explicit refuse-to-serve flag
    std::string poisonReason;

    /// True when route() would answer: some epoch is live and the router
    /// was not explicitly poisoned. Stale-but-alive IS servable.
    [[nodiscard]] bool servable() const noexcept { return epoch > 0 && !poisoned; }
};

template <int D>
class Router {
public:
    /// `threads` workers serve batched route() calls; 0 = the process
    /// default (GEO_THREADS or 1), matching Settings::resolvedThreads().
    explicit Router(int threads = 0)
        : threads_(threads >= 1 ? threads : par::defaultThreads()) {}

    Router(const Router&) = delete;
    Router& operator=(const Router&) = delete;

    /// Atomically install `snapshot` as the current one and bump the epoch.
    /// Returns the new epoch (1 for the first publish). O(1): readers are
    /// never blocked or waited for; concurrent publishers serialize among
    /// themselves on a publisher-only mutex so the returned epochs match
    /// the order the snapshots became visible. The epoch is bumped *after*
    /// the slot store: observing epoch() >= E guarantees the E-th snapshot
    /// (or a newer one) is already visible to snapshot()/route().
    std::uint64_t publish(PartitionSnapshot<D> snapshot);

    /// Degradation-aware publish: run `make` (a callable producing the next
    /// PartitionSnapshot<D> — typically a repartition against a possibly
    /// failing transport) and publish its result. If production OR the
    /// publish throws, the router keeps serving the last good epoch, the
    /// failure is recorded for health(), and false is returned. Never
    /// throws: failure to produce a NEW partition must not take down
    /// serving of the OLD one.
    template <typename MakeSnapshot>
    bool tryPublish(MakeSnapshot&& make) noexcept {
        try {
            publish(std::forward<MakeSnapshot>(make)());
            return true;
        } catch (const std::exception& e) {
            recordPublishFailure(e.what());
            return false;
        } catch (...) {
            recordPublishFailure("unknown publish error");
            return false;
        }
    }

    /// Explicitly refuse to serve from now on: every route()/routeRank()
    /// call throws std::runtime_error carrying `reason`. The ONLY way a
    /// router stops answering — staleness and failed publishes never do.
    void poison(std::string reason);

    /// Current health/staleness snapshot (thread-safe, not on the routing
    /// fast path).
    [[nodiscard]] RouterHealth health() const;

    /// Lock-free poison probe — what the serving service's admission
    /// controller checks per batch (health() takes the status mutex and
    /// copies strings; too heavy for that path).
    [[nodiscard]] bool poisoned() const noexcept {
        return poisoned_.load(std::memory_order_acquire);
    }

    /// The current snapshot (nullptr before the first publish). The
    /// returned shared_ptr keeps the snapshot alive across any number of
    /// subsequent publishes.
    [[nodiscard]] std::shared_ptr<const PartitionSnapshot<D>> snapshot() const {
        return current_.load();
    }

    /// Number of publishes so far (0 = nothing published yet).
    [[nodiscard]] std::uint64_t epoch() const noexcept {
        return epoch_.load(std::memory_order_acquire);
    }

    [[nodiscard]] bool hasSnapshot() const { return snapshot() != nullptr; }

    /// Low-latency single lookup against the current snapshot.
    [[nodiscard]] std::int32_t route(const Point<D>& p) const;

    /// Batched lookup: `blocks[i]` = block of `points[i]`, computed against
    /// ONE snapshot (grabbed once for the whole batch) with the cache-
    /// blocked squared-domain kernel across the router's worker threads.
    void route(std::span<const Point<D>> points, std::span<std::int32_t> blocks) const;

    /// Serving rank of the block owning `p` (-1 when the current snapshot
    /// carries no rank map).
    [[nodiscard]] std::int32_t routeRank(const Point<D>& p) const;

    [[nodiscard]] int threads() const noexcept { return threads_; }

private:
    void recordPublishFailure(const std::string& what) noexcept;
    /// Fast-path poison check: one relaxed atomic load when healthy; the
    /// throw path takes the status mutex to read the reason.
    void checkNotPoisoned() const;

    par::AtomicSharedPtr<const PartitionSnapshot<D>> current_;
    std::atomic<std::uint64_t> epoch_{0};
    std::mutex publishMutex_;  ///< serializes publishers; readers never touch it
    int threads_;

    std::atomic<bool> poisoned_{false};
    mutable std::mutex statusMutex_;  ///< guards the health strings + timestamp
    std::string lastPublishError_;
    std::string poisonReason_;
    std::uint64_t failedPublishes_ = 0;
    std::uint64_t consecutiveFailures_ = 0;
    HealthClock::time_point lastPublishTime_{};
};

/// Misroute accounting of a stale snapshot against the fresh partition of
/// the SAME query points: position i compares the routed block to the block
/// the freshly computed partition assigns. The fraction is the paper-side
/// cost of serving block lookups from the previous timestep's diagram while
/// the next repartition is still running.
struct MisrouteStats {
    std::int64_t total = 0;
    std::int64_t misrouted = 0;

    [[nodiscard]] double fraction() const noexcept {
        return total == 0 ? 0.0
                          : static_cast<double>(misrouted) / static_cast<double>(total);
    }
};

[[nodiscard]] MisrouteStats misrouteStats(std::span<const std::int32_t> routed,
                                          std::span<const std::int32_t> fresh);

extern template class Router<2>;
extern template class Router<3>;

}  // namespace geo::serve
