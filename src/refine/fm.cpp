#include "refine/fm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "support/assert.hpp"

namespace geo::refine {

namespace {

/// Best move for vertex v: target block and edge-cut gain.
struct Move {
    std::int32_t target = -1;
    std::int64_t gain = 0;
};

Move bestMove(const graph::CsrGraph& g, const graph::Partition& part, graph::Vertex v,
              std::vector<std::int64_t>& edgesTo, std::vector<std::int32_t>& touched) {
    const auto own = part[static_cast<std::size_t>(v)];
    std::int64_t internal = 0;
    for (const auto u : g.neighbors(v)) {
        const auto b = part[static_cast<std::size_t>(u)];
        if (b == own) {
            ++internal;
        } else {
            if (edgesTo[static_cast<std::size_t>(b)] == 0) touched.push_back(b);
            edgesTo[static_cast<std::size_t>(b)]++;
        }
    }
    Move best;
    for (const auto b : touched) {
        const std::int64_t gain = edgesTo[static_cast<std::size_t>(b)] - internal;
        if (best.target < 0 || gain > best.gain ||
            (gain == best.gain && b < best.target)) {
            best.target = b;
            best.gain = gain;
        }
        edgesTo[static_cast<std::size_t>(b)] = 0;  // reset scratch
    }
    touched.clear();
    return best;
}

}  // namespace

FmResult fmRefine(const graph::CsrGraph& g, graph::Partition& part, std::int32_t k,
                  std::span<const double> weights, const FmSettings& settings) {
    graph::validatePartition(g, part, k);
    GEO_REQUIRE(weights.empty() || weights.size() == part.size(),
                "weights must be empty or match vertices");
    GEO_REQUIRE(settings.maxPasses >= 1, "need at least one pass");

    const graph::Vertex n = g.numVertices();
    auto weightOf = [&](graph::Vertex v) {
        return weights.empty() ? 1.0 : weights[static_cast<std::size_t>(v)];
    };

    std::vector<double> blockWeight(static_cast<std::size_t>(k), 0.0);
    double total = 0.0;
    for (graph::Vertex v = 0; v < n; ++v) {
        blockWeight[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
            weightOf(v);
        total += weightOf(v);
    }
    const double maxBlockWeight =
        (1.0 + settings.epsilon) * std::ceil(total / static_cast<double>(k));

    FmResult result;
    result.cutBefore = graph::edgeCut(g, part);

    std::vector<std::int64_t> edgesToScratch(static_cast<std::size_t>(k), 0);
    std::vector<std::int32_t> touchedScratch;

    for (int pass = 0; pass < settings.maxPasses; ++pass) {
        result.passes = pass + 1;

        // Boundary vertices with their current best gain, processed in
        // descending gain order (one bucket sort pass; gains are small).
        struct Candidate {
            graph::Vertex v;
            std::int64_t gain;
        };
        std::vector<Candidate> candidates;
        for (graph::Vertex v = 0; v < n; ++v) {
            const auto own = part[static_cast<std::size_t>(v)];
            bool boundary = false;
            for (const auto u : g.neighbors(v))
                if (part[static_cast<std::size_t>(u)] != own) {
                    boundary = true;
                    break;
                }
            if (!boundary) continue;
            const Move m = bestMove(g, part, v, edgesToScratch, touchedScratch);
            if (m.gain > 0) candidates.push_back(Candidate{v, m.gain});
        }
        std::sort(candidates.begin(), candidates.end(),
                  [](const Candidate& a, const Candidate& b) {
                      return a.gain != b.gain ? a.gain > b.gain : a.v < b.v;
                  });

        std::int64_t movedThisPass = 0;
        for (const auto& cand : candidates) {
            // Re-evaluate: earlier moves may have changed the neighborhood.
            const Move m = bestMove(g, part, cand.v, edgesToScratch, touchedScratch);
            if (m.target < 0 || m.gain <= 0) continue;
            const auto own = part[static_cast<std::size_t>(cand.v)];
            const double w = weightOf(cand.v);
            if (blockWeight[static_cast<std::size_t>(m.target)] + w > maxBlockWeight)
                continue;  // would overload the target block
            part[static_cast<std::size_t>(cand.v)] = m.target;
            blockWeight[static_cast<std::size_t>(own)] -= w;
            blockWeight[static_cast<std::size_t>(m.target)] += w;
            ++movedThisPass;
        }
        result.movedVertices += movedThisPass;
        if (movedThisPass == 0) break;
    }

    result.cutAfter = graph::edgeCut(g, part);
    GEO_CHECK(result.cutAfter <= result.cutBefore,
              "refinement must never worsen the cut");
    return result;
}

}  // namespace geo::refine
