// Fiduccia–Mattheyses-style greedy boundary refinement.
//
// The paper (§2) notes that "a graph-based postprocessing, for example
// based on the Fiduccia-Mattheyses local refinement heuristic is easily
// possible, but outside the scope of this paper". This module provides that
// postprocessing: a k-way greedy pass over boundary vertices that moves a
// vertex to the adjacent block with the largest positive edge-cut gain,
// subject to the balance constraint. Used by the refinement ablation bench
// to quantify how much graph-based polish adds on top of each geometric
// partitioner.
#pragma once

#include <cstdint>
#include <span>

#include "graph/csr.hpp"
#include "graph/metrics.hpp"

namespace geo::refine {

struct FmSettings {
    double epsilon = 0.03;  ///< balance constraint for moves
    int maxPasses = 10;     ///< passes over the boundary; stops early on no gain
};

struct FmResult {
    std::int64_t cutBefore = 0;
    std::int64_t cutAfter = 0;
    std::int64_t movedVertices = 0;
    int passes = 0;
};

/// Refine `part` in place. Only moves that keep every block within
/// (1 + epsilon) * ceil(totalWeight / k) are applied, so a balanced input
/// stays balanced. Deterministic.
FmResult fmRefine(const graph::CsrGraph& g, graph::Partition& part, std::int32_t k,
                  std::span<const double> weights = {}, const FmSettings& settings = {});

}  // namespace geo::refine
