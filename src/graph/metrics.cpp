#include "graph/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace geo::graph {

void validatePartition(const CsrGraph& g, const Partition& part, std::int32_t k) {
    GEO_REQUIRE(static_cast<Vertex>(part.size()) == g.numVertices(),
                "partition must assign every vertex");
    GEO_REQUIRE(k >= 1, "need at least one block");
    for (const auto b : part)
        GEO_REQUIRE(b >= 0 && b < k, "block id out of range");
}

std::int64_t edgeCut(const CsrGraph& g, const Partition& part) {
    std::int64_t cut = 0;
    const Vertex n = g.numVertices();
    for (Vertex v = 0; v < n; ++v) {
        const auto bv = part[static_cast<std::size_t>(v)];
        for (const Vertex u : g.neighbors(v))
            cut += (part[static_cast<std::size_t>(u)] != bv);
    }
    return cut / 2;  // each cut edge seen from both endpoints
}

std::vector<std::int64_t> externalEdges(const CsrGraph& g, const Partition& part,
                                        std::int32_t k) {
    std::vector<std::int64_t> ext(static_cast<std::size_t>(k), 0);
    const Vertex n = g.numVertices();
    for (Vertex v = 0; v < n; ++v) {
        const auto bv = part[static_cast<std::size_t>(v)];
        for (const Vertex u : g.neighbors(v))
            if (part[static_cast<std::size_t>(u)] != bv) ext[static_cast<std::size_t>(bv)]++;
    }
    return ext;
}

std::vector<std::int64_t> communicationVolume(const CsrGraph& g, const Partition& part,
                                              std::int32_t k) {
    std::vector<std::int64_t> comm(static_cast<std::size_t>(k), 0);
    forEachGhost(g, part, k, [&](std::int32_t owner, std::int32_t, Vertex) {
        comm[static_cast<std::size_t>(owner)]++;
    });
    return comm;
}

double imbalance(const Partition& part, std::int32_t k, std::span<const double> weights) {
    return imbalance(part, k, weights, {});
}

double imbalance(const Partition& part, std::int32_t k, std::span<const double> weights,
                 std::span<const double> targetFractions) {
    GEO_REQUIRE(k >= 1, "need at least one block");
    GEO_REQUIRE(weights.empty() || weights.size() == part.size(),
                "weights must be empty or match vertices");
    GEO_REQUIRE(targetFractions.empty() ||
                    targetFractions.size() == static_cast<std::size_t>(k),
                "need one target fraction per block");
    double fractionSum = 0.0;
    for (const double f : targetFractions) {
        GEO_REQUIRE(f > 0.0, "target fractions must be positive");
        fractionSum += f;
    }
    std::vector<double> blockWeight(static_cast<std::size_t>(k), 0.0);
    double total = 0.0;
    for (std::size_t v = 0; v < part.size(); ++v) {
        const double w = weights.empty() ? 1.0 : weights[v];
        blockWeight[static_cast<std::size_t>(part[v])] += w;
        total += w;
    }
    if (total <= 0.0) return 0.0;
    if (targetFractions.empty()) {
        // Uniform targets keep the paper's ceil rounding so perfect integer
        // splits report exactly 0.
        const double target = std::ceil(total / k);
        const double heaviest = *std::max_element(blockWeight.begin(), blockWeight.end());
        return heaviest / target - 1.0;
    }
    // Non-uniform targets: denominator target_b · W (DESIGN.md "Imbalance
    // with ceil rounding") — no rounding, the fractions already encode the
    // intended split exactly.
    double worst = 0.0;
    for (std::int32_t b = 0; b < k; ++b) {
        const double target =
            targetFractions[static_cast<std::size_t>(b)] / fractionSum * total;
        worst = std::max(worst, blockWeight[static_cast<std::size_t>(b)] / target);
    }
    return worst - 1.0;
}

double topologyCommCost(const CsrGraph& g, const Partition& part, std::int32_t k,
                        std::span<const double> linkCost) {
    GEO_REQUIRE(linkCost.size() == static_cast<std::size_t>(k) * static_cast<std::size_t>(k),
                "linkCost must be a k x k matrix");
    double cost = 0.0;
    // Receiver-major per the contract: block `receiver` needs the ghost
    // from block `owner`, weighted linkCost[receiver·k + owner].
    forEachGhost(g, part, k, [&](std::int32_t owner, std::int32_t receiver, Vertex) {
        cost += linkCost[static_cast<std::size_t>(receiver) * static_cast<std::size_t>(k) +
                         static_cast<std::size_t>(owner)];
    });
    return cost;
}

double partitionChange(const Partition& before, const Partition& after,
                       std::span<const double> weights) {
    GEO_REQUIRE(before.size() == after.size(),
                "partitions must cover the same vertex set");
    GEO_REQUIRE(weights.empty() || weights.size() == before.size(),
                "weights must be empty or match vertices");
    double total = 0.0, changed = 0.0;
    for (std::size_t v = 0; v < before.size(); ++v) {
        const double w = weights.empty() ? 1.0 : weights[v];
        total += w;
        if (before[v] != after[v]) changed += w;
    }
    return total > 0.0 ? changed / total : 0.0;
}

std::int32_t blockDiameterLowerBound(const CsrGraph& g, std::span<const std::int32_t> mask,
                                     std::int32_t value, int sweeps) {
    // Find any vertex of the block.
    Vertex start = -1;
    std::size_t blockSize = 0;
    for (std::size_t v = 0; v < mask.size(); ++v) {
        if (mask[v] == value) {
            if (start < 0) start = static_cast<Vertex>(v);
            ++blockSize;
        }
    }
    if (start < 0) return -1;
    if (blockSize == 1) return 0;

    // Double-sweep: BFS from an arbitrary vertex, then repeatedly from the
    // farthest vertex found (iFUB's initialization). The largest observed
    // eccentricity is a diameter lower bound and a 2-approximation.
    std::int32_t best = 0;
    Vertex source = start;
    std::size_t reached = 0;
    for (int i = 0; i < sweeps; ++i) {
        const BfsResult r = bfs(g, source, mask, value);
        if (i == 0) {
            reached = static_cast<std::size_t>(
                std::count_if(r.distance.begin(), r.distance.end(),
                              [](std::int32_t d) { return d >= 0; }));
            if (reached < blockSize) return kInfiniteDiameter;  // disconnected
        }
        best = std::max(best, r.eccentricity);
        if (r.farthest == source) break;  // converged (single vertex or tie)
        source = r.farthest;
    }
    return best;
}

double harmonicMeanDiameter(std::span<const std::int32_t> diameters) {
    double invSum = 0.0;
    int counted = 0;
    for (const auto d : diameters) {
        if (d < 0) continue;  // empty block
        ++counted;
        if (d == kInfiniteDiameter) continue;  // 1/inf = 0
        if (d == 0) return 0.0;  // a singleton block dominates the harmonic mean
        invSum += 1.0 / static_cast<double>(d);
    }
    if (counted == 0 || invSum == 0.0) return 0.0;
    return static_cast<double>(counted) / invSum;
}

std::vector<std::int32_t> blockComponents(const CsrGraph& g, const Partition& part,
                                          std::int32_t k) {
    const Vertex n = g.numVertices();
    std::vector<std::int32_t> comps(static_cast<std::size_t>(k), 0);
    std::vector<char> visited(static_cast<std::size_t>(n), 0);
    std::vector<Vertex> stack;
    for (Vertex s = 0; s < n; ++s) {
        if (visited[static_cast<std::size_t>(s)]) continue;
        const auto block = part[static_cast<std::size_t>(s)];
        comps[static_cast<std::size_t>(block)]++;
        visited[static_cast<std::size_t>(s)] = 1;
        stack.push_back(s);
        while (!stack.empty()) {
            const Vertex v = stack.back();
            stack.pop_back();
            for (const Vertex u : g.neighbors(v)) {
                if (!visited[static_cast<std::size_t>(u)] &&
                    part[static_cast<std::size_t>(u)] == block) {
                    visited[static_cast<std::size_t>(u)] = 1;
                    stack.push_back(u);
                }
            }
        }
    }
    return comps;
}

PartitionMetrics evaluatePartition(const CsrGraph& g, const Partition& part, std::int32_t k,
                                   std::span<const double> weights, bool computeDiameter,
                                   std::span<const double> targetFractions) {
    validatePartition(g, part, k);
    PartitionMetrics m;
    m.edgeCut = edgeCut(g, part);
    const auto ext = externalEdges(g, part, k);
    m.maxExternalEdges = ext.empty() ? 0 : *std::max_element(ext.begin(), ext.end());
    const auto comm = communicationVolume(g, part, k);
    for (const auto c : comm) {
        m.maxCommVolume = std::max(m.maxCommVolume, c);
        m.totalCommVolume += c;
    }
    m.imbalance = imbalance(part, k, weights, targetFractions);

    std::vector<std::size_t> blockSize(static_cast<std::size_t>(k), 0);
    for (const auto b : part) blockSize[static_cast<std::size_t>(b)]++;
    for (const auto s : blockSize) m.emptyBlocks += (s == 0);

    if (computeDiameter) {
        std::vector<std::int32_t> diam(static_cast<std::size_t>(k));
        for (std::int32_t b = 0; b < k; ++b) {
            diam[static_cast<std::size_t>(b)] =
                blockDiameterLowerBound(g, part, b);
            if (diam[static_cast<std::size_t>(b)] == kInfiniteDiameter)
                m.disconnectedBlocks++;
        }
        m.harmonicMeanDiameter = harmonicMeanDiameter(diam);
    }
    return m;
}

}  // namespace geo::graph
