#include "graph/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "par/parallel_for.hpp"
#include "support/assert.hpp"

namespace geo::graph {

namespace {

/// Vertices per chunk for the threaded double-weight accumulations. Fixed
/// (never derived from the thread count) so the per-chunk partial sums —
/// and therefore the reduced totals — are identical at every thread count.
constexpr std::size_t kMetricsChunk = 4096;

}  // namespace

void validatePartition(const CsrGraph& g, const Partition& part, std::int32_t k) {
    GEO_REQUIRE(static_cast<Vertex>(part.size()) == g.numVertices(),
                "partition must assign every vertex");
    GEO_REQUIRE(k >= 1, "need at least one block");
    for (const auto b : part)
        GEO_REQUIRE(b >= 0 && b < k, "block id out of range");
}

std::int64_t edgeCut(const CsrGraph& g, const Partition& part, int threads) {
    const Vertex n = g.numVertices();
    std::vector<std::int64_t> partial(static_cast<std::size_t>(std::max(1, threads)), 0);
    par::parallelFor(threads, static_cast<std::size_t>(n),
                     [&](std::size_t v0, std::size_t v1, int worker) {
                         std::int64_t cut = 0;
                         for (std::size_t v = v0; v < v1; ++v) {
                             const auto bv = part[v];
                             for (const Vertex u : g.neighbors(static_cast<Vertex>(v)))
                                 cut += (part[static_cast<std::size_t>(u)] != bv);
                         }
                         partial[static_cast<std::size_t>(worker)] = cut;
                     });
    std::int64_t cut = 0;
    for (const auto c : partial) cut += c;
    return cut / 2;  // each cut edge seen from both endpoints
}

std::vector<std::int64_t> externalEdges(const CsrGraph& g, const Partition& part,
                                        std::int32_t k, int threads) {
    const Vertex n = g.numVertices();
    const auto kk = static_cast<std::size_t>(k);
    const auto workers = static_cast<std::size_t>(std::max(1, threads));
    std::vector<std::int64_t> partial(workers * kk, 0);
    par::parallelFor(threads, static_cast<std::size_t>(n),
                     [&](std::size_t v0, std::size_t v1, int worker) {
                         std::int64_t* ext = &partial[static_cast<std::size_t>(worker) * kk];
                         for (std::size_t v = v0; v < v1; ++v) {
                             const auto bv = part[v];
                             for (const Vertex u : g.neighbors(static_cast<Vertex>(v)))
                                 if (part[static_cast<std::size_t>(u)] != bv)
                                     ext[static_cast<std::size_t>(bv)]++;
                         }
                     });
    std::vector<std::int64_t> ext(kk, 0);
    for (std::size_t w = 0; w < workers; ++w)
        for (std::size_t b = 0; b < kk; ++b) ext[b] += partial[w * kk + b];
    return ext;
}

std::vector<std::int64_t> ghostPairCounts(const CsrGraph& g, const Partition& part,
                                          std::int32_t k, int threads) {
    const Vertex n = g.numVertices();
    const auto kk = static_cast<std::size_t>(k);
    // A vertex's ghost contributions depend only on the vertex and its
    // neighborhood, so vertex ranges partition the enumeration exactly.
    // Cap the fan-out so the TOTAL of the per-worker k×k matrices stays
    // within a fixed budget at huge k (the workers×k² scratch must not
    // dwarf the k² result the caller asked for). Depends on k alone, never
    // on the requested thread count, so results stay thread-independent.
    const std::size_t matrixBytes = kk * kk * sizeof(std::int64_t);
    const std::size_t budget = std::size_t{64} << 20;
    const int maxWorkers = matrixBytes == 0
                               ? threads
                               : static_cast<int>(std::max<std::size_t>(1, budget / matrixBytes));
    threads = std::min(threads, maxWorkers);
    const auto workers = static_cast<std::size_t>(std::max(1, threads));
    std::vector<std::int64_t> partial(workers * kk * kk, 0);
    std::vector<std::vector<Vertex>> lastSeen(workers,
                                              std::vector<Vertex>(kk, Vertex{-1}));
    par::parallelFor(threads, static_cast<std::size_t>(n),
                     [&](std::size_t v0, std::size_t v1, int worker) {
                         std::int64_t* counts =
                             &partial[static_cast<std::size_t>(worker) * kk * kk];
                         auto& seen = lastSeen[static_cast<std::size_t>(worker)];
                         for (std::size_t v = v0; v < v1; ++v) {
                             const auto owner = part[v];
                             for (const Vertex u : g.neighbors(static_cast<Vertex>(v))) {
                                 const auto receiver = part[static_cast<std::size_t>(u)];
                                 if (receiver != owner &&
                                     seen[static_cast<std::size_t>(receiver)] !=
                                         static_cast<Vertex>(v)) {
                                     seen[static_cast<std::size_t>(receiver)] =
                                         static_cast<Vertex>(v);
                                     counts[static_cast<std::size_t>(receiver) * kk +
                                            static_cast<std::size_t>(owner)]++;
                                 }
                             }
                         }
                     });
    std::vector<std::int64_t> counts(kk * kk, 0);
    for (std::size_t w = 0; w < workers; ++w)
        for (std::size_t i = 0; i < kk * kk; ++i) counts[i] += partial[w * kk * kk + i];
    return counts;
}

std::vector<std::int64_t> communicationVolume(const CsrGraph& g, const Partition& part,
                                              std::int32_t k, int threads) {
    const auto kk = static_cast<std::size_t>(k);
    // The k×k pair matrix is only a means to parallelism here; at large k
    // it would dwarf the O(k) output (the seed needed k counters, not k²).
    // Fall back to the definitional serial fold then — the predicate
    // depends on k alone, so the path (and the exact integer result) is
    // still independent of the thread count.
    if (threads <= 1 || kk * kk * sizeof(std::int64_t) > (std::size_t{8} << 20)) {
        std::vector<std::int64_t> comm(kk, 0);
        forEachGhost(g, part, k, [&](std::int32_t owner, std::int32_t, Vertex) {
            comm[static_cast<std::size_t>(owner)]++;
        });
        return comm;
    }
    const auto pairs = ghostPairCounts(g, part, k, threads);
    std::vector<std::int64_t> comm(kk, 0);
    for (std::size_t receiver = 0; receiver < kk; ++receiver)
        for (std::size_t owner = 0; owner < kk; ++owner)
            comm[owner] += pairs[receiver * kk + owner];
    return comm;
}

double imbalance(const Partition& part, std::int32_t k, std::span<const double> weights) {
    return imbalance(part, k, weights, {});
}

double imbalance(const Partition& part, std::int32_t k, std::span<const double> weights,
                 std::span<const double> targetFractions, int threads) {
    GEO_REQUIRE(k >= 1, "need at least one block");
    GEO_REQUIRE(weights.empty() || weights.size() == part.size(),
                "weights must be empty or match vertices");
    GEO_REQUIRE(targetFractions.empty() ||
                    targetFractions.size() == static_cast<std::size_t>(k),
                "need one target fraction per block");
    double fractionSum = 0.0;
    for (const double f : targetFractions) {
        GEO_REQUIRE(f > 0.0, "target fractions must be positive");
        fractionSum += f;
    }
    // Block weights over fixed 4096-vertex chunks, chunk partials reduced in
    // ascending chunk order — bitwise identical at every thread count.
    const auto kk = static_cast<std::size_t>(k);
    const std::size_t n = part.size();
    const std::size_t chunks = n == 0 ? 0 : (n + kMetricsChunk - 1) / kMetricsChunk;
    std::vector<double> chunkWeight(chunks * (kk + 1));
    par::parallelFor(threads, chunks, [&](std::size_t c0, std::size_t c1, int) {
        for (std::size_t c = c0; c < c1; ++c) {
            double* partial = &chunkWeight[c * (kk + 1)];
            std::fill(partial, partial + kk + 1, 0.0);
            const std::size_t v1 = std::min(n, (c + 1) * kMetricsChunk);
            for (std::size_t v = c * kMetricsChunk; v < v1; ++v) {
                const double w = weights.empty() ? 1.0 : weights[v];
                partial[static_cast<std::size_t>(part[v])] += w;
                partial[kk] += w;
            }
        }
    });
    std::vector<double> blockWeight(kk, 0.0);
    double total = 0.0;
    for (std::size_t c = 0; c < chunks; ++c) {
        const double* partial = &chunkWeight[c * (kk + 1)];
        for (std::size_t b = 0; b < kk; ++b) blockWeight[b] += partial[b];
        total += partial[kk];
    }
    if (total <= 0.0) return 0.0;
    if (targetFractions.empty()) {
        // Uniform targets keep the paper's ceil rounding so perfect integer
        // splits report exactly 0.
        const double target = std::ceil(total / k);
        const double heaviest = *std::max_element(blockWeight.begin(), blockWeight.end());
        return heaviest / target - 1.0;
    }
    // Non-uniform targets: denominator target_b · W (DESIGN.md "Imbalance
    // with ceil rounding") — no rounding, the fractions already encode the
    // intended split exactly.
    double worst = 0.0;
    for (std::int32_t b = 0; b < k; ++b) {
        const double target =
            targetFractions[static_cast<std::size_t>(b)] / fractionSum * total;
        worst = std::max(worst, blockWeight[static_cast<std::size_t>(b)] / target);
    }
    return worst - 1.0;
}

double topologyCommCost(const CsrGraph& g, const Partition& part, std::int32_t k,
                        std::span<const double> linkCost, int threads) {
    GEO_REQUIRE(linkCost.size() == static_cast<std::size_t>(k) * static_cast<std::size_t>(k),
                "linkCost must be a k x k matrix");
    // Receiver-major per the contract: block `receiver` needs the ghost
    // from block `owner`, weighted linkCost[receiver·k + owner]. The fold
    // runs over the integer pair-count matrix in fixed index order, so the
    // floating-point sum is independent of the thread count.
    const auto pairs = ghostPairCounts(g, part, k, threads);
    double cost = 0.0;
    for (std::size_t i = 0; i < pairs.size(); ++i)
        if (pairs[i] != 0) cost += static_cast<double>(pairs[i]) * linkCost[i];
    return cost;
}

double partitionChange(const Partition& before, const Partition& after,
                       std::span<const double> weights) {
    GEO_REQUIRE(before.size() == after.size(),
                "partitions must cover the same vertex set");
    GEO_REQUIRE(weights.empty() || weights.size() == before.size(),
                "weights must be empty or match vertices");
    double total = 0.0, changed = 0.0;
    for (std::size_t v = 0; v < before.size(); ++v) {
        const double w = weights.empty() ? 1.0 : weights[v];
        total += w;
        if (before[v] != after[v]) changed += w;
    }
    return total > 0.0 ? changed / total : 0.0;
}

std::int32_t blockDiameterLowerBound(const CsrGraph& g, std::span<const std::int32_t> mask,
                                     std::int32_t value, int sweeps) {
    // Find any vertex of the block.
    Vertex start = -1;
    std::size_t blockSize = 0;
    for (std::size_t v = 0; v < mask.size(); ++v) {
        if (mask[v] == value) {
            if (start < 0) start = static_cast<Vertex>(v);
            ++blockSize;
        }
    }
    if (start < 0) return -1;
    if (blockSize == 1) return 0;

    // Double-sweep: BFS from an arbitrary vertex, then repeatedly from the
    // farthest vertex found (iFUB's initialization). The largest observed
    // eccentricity is a diameter lower bound and a 2-approximation.
    std::int32_t best = 0;
    Vertex source = start;
    std::size_t reached = 0;
    for (int i = 0; i < sweeps; ++i) {
        const BfsResult r = bfs(g, source, mask, value);
        if (i == 0) {
            reached = static_cast<std::size_t>(
                std::count_if(r.distance.begin(), r.distance.end(),
                              [](std::int32_t d) { return d >= 0; }));
            if (reached < blockSize) return kInfiniteDiameter;  // disconnected
        }
        best = std::max(best, r.eccentricity);
        if (r.farthest == source) break;  // converged (single vertex or tie)
        source = r.farthest;
    }
    return best;
}

double harmonicMeanDiameter(std::span<const std::int32_t> diameters) {
    double invSum = 0.0;
    int counted = 0;
    for (const auto d : diameters) {
        if (d < 0) continue;  // empty block
        ++counted;
        if (d == kInfiniteDiameter) continue;  // 1/inf = 0
        if (d == 0) return 0.0;  // a singleton block dominates the harmonic mean
        invSum += 1.0 / static_cast<double>(d);
    }
    if (counted == 0 || invSum == 0.0) return 0.0;
    return static_cast<double>(counted) / invSum;
}

std::vector<std::int32_t> blockComponents(const CsrGraph& g, const Partition& part,
                                          std::int32_t k) {
    const Vertex n = g.numVertices();
    std::vector<std::int32_t> comps(static_cast<std::size_t>(k), 0);
    std::vector<char> visited(static_cast<std::size_t>(n), 0);
    std::vector<Vertex> stack;
    for (Vertex s = 0; s < n; ++s) {
        if (visited[static_cast<std::size_t>(s)]) continue;
        const auto block = part[static_cast<std::size_t>(s)];
        comps[static_cast<std::size_t>(block)]++;
        visited[static_cast<std::size_t>(s)] = 1;
        stack.push_back(s);
        while (!stack.empty()) {
            const Vertex v = stack.back();
            stack.pop_back();
            for (const Vertex u : g.neighbors(v)) {
                if (!visited[static_cast<std::size_t>(u)] &&
                    part[static_cast<std::size_t>(u)] == block) {
                    visited[static_cast<std::size_t>(u)] = 1;
                    stack.push_back(u);
                }
            }
        }
    }
    return comps;
}

PartitionMetrics evaluatePartition(const CsrGraph& g, const Partition& part, std::int32_t k,
                                   std::span<const double> weights, bool computeDiameter,
                                   std::span<const double> targetFractions, int threads) {
    validatePartition(g, part, k);
    PartitionMetrics m;
    m.edgeCut = edgeCut(g, part, threads);
    const auto ext = externalEdges(g, part, k, threads);
    m.maxExternalEdges = ext.empty() ? 0 : *std::max_element(ext.begin(), ext.end());
    const auto comm = communicationVolume(g, part, k, threads);
    for (const auto c : comm) {
        m.maxCommVolume = std::max(m.maxCommVolume, c);
        m.totalCommVolume += c;
    }
    m.imbalance = imbalance(part, k, weights, targetFractions, threads);

    std::vector<std::size_t> blockSize(static_cast<std::size_t>(k), 0);
    for (const auto b : part) blockSize[static_cast<std::size_t>(b)]++;
    for (const auto s : blockSize) m.emptyBlocks += (s == 0);

    if (computeDiameter) {
        std::vector<std::int32_t> diam(static_cast<std::size_t>(k));
        for (std::int32_t b = 0; b < k; ++b) {
            diam[static_cast<std::size_t>(b)] =
                blockDiameterLowerBound(g, part, b);
            if (diam[static_cast<std::size_t>(b)] == kInfiniteDiameter)
                m.disconnectedBlocks++;
        }
        m.harmonicMeanDiameter = harmonicMeanDiameter(diam);
    }
    return m;
}

}  // namespace geo::graph
