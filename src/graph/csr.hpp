// Compressed-sparse-row graph: the mesh connectivity substrate.
//
// Partition quality in the paper is judged with graph metrics (edge cut,
// communication volume, block diameter) over the primal mesh graph, and the
// SpMV benchmark multiplies with its adjacency matrix. Vertices are 32-bit
// (laptop-scale instances), edges undirected and stored symmetrically.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace geo::graph {

using Vertex = std::int32_t;
using EdgeIndex = std::int64_t;

class CsrGraph {
public:
    CsrGraph() = default;
    CsrGraph(std::vector<EdgeIndex> offsets, std::vector<Vertex> targets);

    [[nodiscard]] Vertex numVertices() const noexcept {
        return offsets_.empty() ? 0 : static_cast<Vertex>(offsets_.size() - 1);
    }
    /// Number of undirected edges (each stored twice internally).
    [[nodiscard]] EdgeIndex numEdges() const noexcept {
        return static_cast<EdgeIndex>(targets_.size()) / 2;
    }

    [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const noexcept {
        const auto begin = offsets_[static_cast<std::size_t>(v)];
        const auto end = offsets_[static_cast<std::size_t>(v) + 1];
        return {targets_.data() + begin, static_cast<std::size_t>(end - begin)};
    }

    [[nodiscard]] EdgeIndex degree(Vertex v) const noexcept {
        return offsets_[static_cast<std::size_t>(v) + 1] - offsets_[static_cast<std::size_t>(v)];
    }

    [[nodiscard]] const std::vector<EdgeIndex>& offsets() const noexcept { return offsets_; }
    [[nodiscard]] const std::vector<Vertex>& targets() const noexcept { return targets_; }

    /// Verify symmetry, sorted adjacency, no self-loops; throws on violation.
    void validate() const;

private:
    std::vector<EdgeIndex> offsets_{0};
    std::vector<Vertex> targets_;
};

/// Accumulates undirected edges and emits a deduplicated symmetric CSR.
class GraphBuilder {
public:
    explicit GraphBuilder(Vertex numVertices) : numVertices_(numVertices) {}

    /// Add undirected edge {u, v}; duplicates and self-loops are dropped at
    /// build time.
    void addEdge(Vertex u, Vertex v) {
        edges_.emplace_back(u, v);
    }

    [[nodiscard]] CsrGraph build() const;

    [[nodiscard]] Vertex numVertices() const noexcept { return numVertices_; }

private:
    Vertex numVertices_;
    std::vector<std::pair<Vertex, Vertex>> edges_;
};

/// Breadth-first search from `source` restricted to vertices where
/// mask[v] == maskValue (pass empty mask for whole-graph BFS).
/// Returns (distances, farthest vertex); unreachable vertices get -1.
struct BfsResult {
    std::vector<std::int32_t> distance;
    Vertex farthest = -1;
    std::int32_t eccentricity = 0;
};

BfsResult bfs(const CsrGraph& g, Vertex source, std::span<const std::int32_t> mask = {},
              std::int32_t maskValue = 0);

/// Connected components; returns component id per vertex and component count.
struct Components {
    std::vector<std::int32_t> id;
    std::int32_t count = 0;
};

Components connectedComponents(const CsrGraph& g);

}  // namespace geo::graph
