// Partition quality metrics from §2 of the paper.
//
// For a partition Π = (V_1 … V_k):
//   ext(V_i)   — edges leaving the block,
//   comm(V_i)  — Σ_{v∈V_i} #{foreign blocks adjacent to v}  (communication
//                volume: each foreign adjacent block means one ghost copy),
//   diam(V_i)  — graph diameter of the induced block subgraph; ∞ when the
//                block is disconnected.
// The paper reports edge cut, max/total comm volume, the *harmonic* mean of
// block diameters (robust to ∞), imbalance, and SpMV comm time. Diameters
// use the iFUB-style lower bound of Crescenzi et al.: a few double-sweep BFS
// rounds, which is a 2-approximation and usually tight on meshes.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "par/thread_pool.hpp"

namespace geo::graph {

/// Block assignment: part[v] in [0, k).
using Partition = std::vector<std::int32_t>;

struct PartitionMetrics {
    std::int64_t edgeCut = 0;          ///< undirected cut edges
    std::int64_t maxExternalEdges = 0; ///< max_i ext(V_i)
    std::int64_t maxCommVolume = 0;    ///< max_i comm(V_i)
    std::int64_t totalCommVolume = 0;  ///< Σ_i comm(V_i)
    double imbalance = 0.0;            ///< max_i w(V_i)/target_i − 1
    double harmonicMeanDiameter = 0.0; ///< harmonic mean of block diameters
    std::int32_t disconnectedBlocks = 0;
    std::int32_t emptyBlocks = 0;
};

/// Validate that part assigns every vertex a block in [0, k).
void validatePartition(const CsrGraph& g, const Partition& part, std::int32_t k);

/// Edge cut: number of undirected edges with endpoints in different blocks.
/// Threaded over vertex ranges; per-worker counts are exact integers, so the
/// result is identical at every thread count.
std::int64_t edgeCut(const CsrGraph& g, const Partition& part, int threads = par::defaultThreads());

/// Per-block external edge counts (each cut edge counted at both blocks).
std::vector<std::int64_t> externalEdges(const CsrGraph& g, const Partition& part,
                                        std::int32_t k, int threads = par::defaultThreads());

/// Per-block communication volume comm(V_i).
std::vector<std::int64_t> communicationVolume(const CsrGraph& g, const Partition& part,
                                              std::int32_t k, int threads = par::defaultThreads());

/// Enumerate every ghost copy of a partition: fn(owner, receiver, v) is
/// invoked exactly once per (vertex v, adjacent foreign block) pair — block
/// `receiver` reads vertex v of block `owner`. The definitional form of
/// ghost counting; callers that only need per-pair totals fold over
/// ghostPairCounts below (its parallel matrix form — communicationVolume,
/// topologyCommCost and hier::topologySpmvCommSeconds all do).
template <typename Fn>
void forEachGhost(const CsrGraph& g, const Partition& part, std::int32_t k, Fn&& fn) {
    const Vertex n = g.numVertices();
    // Scratch marker: last vertex that touched block b, avoids clearing a
    // k-sized array per vertex.
    std::vector<Vertex> lastSeen(static_cast<std::size_t>(k), -1);
    for (Vertex v = 0; v < n; ++v) {
        const auto owner = part[static_cast<std::size_t>(v)];
        for (const Vertex u : g.neighbors(v)) {
            const auto receiver = part[static_cast<std::size_t>(u)];
            if (receiver != owner && lastSeen[static_cast<std::size_t>(receiver)] != v) {
                lastSeen[static_cast<std::size_t>(receiver)] = v;
                fn(owner, receiver, v);
            }
        }
    }
}

/// Ghost-copy counts per (receiver, owner) block pair: entry
/// [receiver·k + owner] is the number of ghost copies block `receiver`
/// needs from block `owner` — the matrix form of forEachGhost. Ghost
/// detection is purely vertex-local (a vertex and its neighborhood), so the
/// enumeration parallelizes over vertex ranges with per-worker count
/// matrices; integer sums make the merged result independent of the thread
/// count. communicationVolume, topologyCommCost and
/// hier::topologySpmvCommSeconds fold over this matrix in fixed
/// (receiver, owner) order, which also pins their floating-point
/// accumulation order regardless of threads.
std::vector<std::int64_t> ghostPairCounts(const CsrGraph& g, const Partition& part,
                                          std::int32_t k, int threads = par::defaultThreads());

/// max_i weight(V_i) / ceil(totalWeight/k) − 1. Empty weights = unit weights.
double imbalance(const Partition& part, std::int32_t k,
                 std::span<const double> weights = {});

/// Imbalance against non-uniform block size targets (paper footnote 1,
/// DESIGN.md "Imbalance with ceil rounding"): max_i weight(V_i) /
/// (target_i · totalWeight) − 1, where target_i is the i-th fraction
/// normalized over their sum. One positive fraction per block; empty
/// fractions fall back to the uniform ceil definition above. A perfectly
/// split non-uniform target reports exactly 0. Block weights accumulate
/// into per-block partials over fixed 4096-vertex chunks reduced in chunk
/// order, so the value is bitwise identical at every `threads` (incl. 1).
double imbalance(const Partition& part, std::int32_t k, std::span<const double> weights,
                 std::span<const double> targetFractions, int threads = par::defaultThreads());

/// Topology-weighted communication cost: like the total communication
/// volume, but each ghost copy a vertex of block i needs from block j is
/// weighted by linkCost[i·k + j] — typically the relative bandwidth factor
/// of the deepest machine-topology level the (i, j) traffic crosses (see
/// hier::Topology::blockCostMatrix). With all off-diagonal weights 1 this
/// equals totalCommVolume.
double topologyCommCost(const CsrGraph& g, const Partition& part, std::int32_t k,
                        std::span<const double> linkCost, int threads = par::defaultThreads());

/// Weighted fraction of vertices whose block differs between two partitions
/// of the same vertex set — the partition-stability metric.
/// repart::migrationStats applies the same definition to the survivor set
/// of two consecutive timesteps. Empty weights = unit weights. Returns 0
/// for an empty vertex set.
double partitionChange(const Partition& before, const Partition& after,
                       std::span<const double> weights = {});

/// iFUB-style diameter lower bound for the subgraph induced by mask==value;
/// `sweeps` double-sweep rounds (paper uses 3). Returns −1 for an empty
/// block and max int32 when disconnected (infinite diameter).
std::int32_t blockDiameterLowerBound(const CsrGraph& g, std::span<const std::int32_t> mask,
                                     std::int32_t value, int sweeps = 3);

/// Harmonic mean over block diameters; infinite diameters contribute 0
/// (matching the paper's choice of harmonic aggregation), empty blocks are
/// skipped.
double harmonicMeanDiameter(std::span<const std::int32_t> diameters);

/// Number of connected components inside each block.
std::vector<std::int32_t> blockComponents(const CsrGraph& g, const Partition& part,
                                          std::int32_t k);

/// One-call evaluation of all §2 metrics. Non-empty `targetFractions`
/// switch the imbalance to the non-uniform-target definition — pass the
/// same fractions the partitioner ran with (Settings::targetFractions),
/// otherwise heterogeneous runs report a bogus imbalance. `threads` fans
/// the O(n+m) metrics (cut, external edges, ghost counts, block weights)
/// out over workers with deterministic reductions; the BFS-based diameter
/// bound stays serial. All fields are identical at every thread count.
PartitionMetrics evaluatePartition(const CsrGraph& g, const Partition& part, std::int32_t k,
                                   std::span<const double> weights = {},
                                   bool computeDiameter = true,
                                   std::span<const double> targetFractions = {},
                                   int threads = par::defaultThreads());

inline constexpr std::int32_t kInfiniteDiameter = std::numeric_limits<std::int32_t>::max();

}  // namespace geo::graph
