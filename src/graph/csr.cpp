#include "graph/csr.hpp"

#include <algorithm>
#include <queue>

#include "support/assert.hpp"

namespace geo::graph {

CsrGraph::CsrGraph(std::vector<EdgeIndex> offsets, std::vector<Vertex> targets)
    : offsets_(std::move(offsets)), targets_(std::move(targets)) {
    GEO_REQUIRE(!offsets_.empty(), "offsets must contain at least the leading 0");
    GEO_REQUIRE(offsets_.front() == 0, "offsets must start at 0");
    GEO_REQUIRE(offsets_.back() == static_cast<EdgeIndex>(targets_.size()),
                "offsets must end at targets.size()");
}

void CsrGraph::validate() const {
    const Vertex n = numVertices();
    for (Vertex v = 0; v < n; ++v) {
        const auto nbrs = neighbors(v);
        GEO_CHECK(std::is_sorted(nbrs.begin(), nbrs.end()), "adjacency must be sorted");
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            const Vertex u = nbrs[i];
            GEO_CHECK(u >= 0 && u < n, "neighbor out of range");
            GEO_CHECK(u != v, "self-loop");
            GEO_CHECK(i == 0 || nbrs[i - 1] != u, "duplicate edge");
            // Symmetry: v must appear in u's adjacency.
            const auto back = neighbors(u);
            GEO_CHECK(std::binary_search(back.begin(), back.end(), v),
                      "missing reverse edge");
        }
    }
}

CsrGraph GraphBuilder::build() const {
    // Symmetrize, sort, dedupe.
    std::vector<std::pair<Vertex, Vertex>> dir;
    dir.reserve(edges_.size() * 2);
    for (const auto& [u, v] : edges_) {
        GEO_REQUIRE(u >= 0 && u < numVertices_ && v >= 0 && v < numVertices_,
                    "edge endpoint out of range");
        if (u == v) continue;
        dir.emplace_back(u, v);
        dir.emplace_back(v, u);
    }
    std::sort(dir.begin(), dir.end());
    dir.erase(std::unique(dir.begin(), dir.end()), dir.end());

    std::vector<EdgeIndex> offsets(static_cast<std::size_t>(numVertices_) + 1, 0);
    for (const auto& [u, v] : dir) offsets[static_cast<std::size_t>(u) + 1]++;
    for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];
    std::vector<Vertex> targets;
    targets.reserve(dir.size());
    for (const auto& [u, v] : dir) targets.push_back(v);
    return CsrGraph(std::move(offsets), std::move(targets));
}

BfsResult bfs(const CsrGraph& g, Vertex source, std::span<const std::int32_t> mask,
              std::int32_t maskValue) {
    const Vertex n = g.numVertices();
    GEO_REQUIRE(source >= 0 && source < n, "bfs source out of range");
    GEO_REQUIRE(mask.empty() || static_cast<Vertex>(mask.size()) == n,
                "mask must cover all vertices");
    BfsResult out;
    out.distance.assign(static_cast<std::size_t>(n), -1);
    auto inScope = [&](Vertex v) {
        return mask.empty() || mask[static_cast<std::size_t>(v)] == maskValue;
    };
    GEO_REQUIRE(inScope(source), "bfs source outside mask");

    std::vector<Vertex> frontier{source};
    out.distance[static_cast<std::size_t>(source)] = 0;
    out.farthest = source;
    std::int32_t level = 0;
    std::vector<Vertex> next;
    while (!frontier.empty()) {
        next.clear();
        ++level;
        for (const Vertex v : frontier) {
            for (const Vertex u : g.neighbors(v)) {
                if (!inScope(u)) continue;
                auto& d = out.distance[static_cast<std::size_t>(u)];
                if (d < 0) {
                    d = level;
                    out.farthest = u;
                    out.eccentricity = level;
                    next.push_back(u);
                }
            }
        }
        frontier.swap(next);
    }
    return out;
}

Components connectedComponents(const CsrGraph& g) {
    const Vertex n = g.numVertices();
    Components out;
    out.id.assign(static_cast<std::size_t>(n), -1);
    std::vector<Vertex> stack;
    for (Vertex s = 0; s < n; ++s) {
        if (out.id[static_cast<std::size_t>(s)] >= 0) continue;
        const std::int32_t c = out.count++;
        stack.push_back(s);
        out.id[static_cast<std::size_t>(s)] = c;
        while (!stack.empty()) {
            const Vertex v = stack.back();
            stack.pop_back();
            for (const Vertex u : g.neighbors(v)) {
                if (out.id[static_cast<std::size_t>(u)] < 0) {
                    out.id[static_cast<std::size_t>(u)] = c;
                    stack.push_back(u);
                }
            }
        }
    }
    return out;
}

}  // namespace geo::graph
