// Budgeted, tiled SoA mirror of an active point set — the one shared point
// representation every per-layer private copy funnels into.
//
// The assignment engine (and before this store, the SFC keying and the
// snapshot build too) used to mirror all n active points into its own
// unbounded SoA arrays; at n = 10⁸ those duplicated mirrors — not the
// algorithm — are the memory wall. A PointStore materializes the active
// set in fixed 1024-point tiles grouped into budget-sized *waves*:
//
//   * budget = 0 (unlimited): one wave holds the whole active set,
//     gathered once per setActive — exactly the pre-budget behavior.
//   * budget > 0: a wave holds floor(budget / bytesPerPoint) points,
//     rounded down to a whole number of tiles (clamped up to one tile —
//     a budget smaller than one tile still makes progress). Each sweep
//     walks the waves in order; requesting a wave regenerates it from the
//     caller's points/weights via the active order (an O(wave) gather),
//     so only one wave's storage is ever allocated.
//
// Determinism contract (DESIGN.md "Memory model & tiling"): wave
// boundaries are multiples of the tile size, which equals the assignment
// engine's fixed cache block. The engine's reductions are left folds over
// per-block partials in ascending global block order; grouping blocks
// into waves and folding wave-by-wave (waves ascending, blocks within a
// wave ascending) is the same left fold — so chunked results are bitwise
// identical to the resident path at every budget and thread count.
//
// Accounting: residentBytes (tile storage currently allocated),
// peakResidentBytes (its high-water mark), tileFills (every tile gather)
// and spilledTiles (refills beyond each tile's first fill — the price of
// running under budget). The engine surfaces these through KMeansCounters.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/point.hpp"

namespace geo::core {

template <int D>
class PointStore {
public:
    /// Points per tile. Matches the assignment engine's cache block (1024)
    /// so wave boundaries always fall on block boundaries; a static_assert
    /// in assign_kernel.cpp keeps the two in sync.
    static constexpr std::size_t kTilePoints = 1024;

    /// Storage bytes one point occupies: D coordinates + one weight.
    static constexpr std::uint64_t kBytesPerPoint = (D + 1) * sizeof(double);

    /// `points`/`weights` must outlive the store (weights may be empty =
    /// unit). `budgetBytes` = 0 means unlimited.
    PointStore(std::span<const Point<D>> points, std::span<const double> weights,
               std::uint64_t budgetBytes);

    /// Declare the active prefix order[0..activeCount): recompute the
    /// active bounding box, the wave geometry, and (when the budget allows
    /// residency) gather the whole set once. Unlike the pre-store engine,
    /// `order` is referenced, not copied — a chunked store regenerates
    /// waves from it on every pass, so it must stay valid and unchanged
    /// until the next setActive.
    void setActive(std::span<const std::size_t> order, std::size_t activeCount,
                   int threads);

    /// The active order this store gathers through (what setActive kept).
    [[nodiscard]] std::span<const std::size_t> ids() const noexcept { return order_; }
    [[nodiscard]] std::size_t activeCount() const noexcept { return active_; }
    [[nodiscard]] const Box<D>& activeBox() const noexcept { return box_; }

    /// Whole active set resident in one always-loaded wave (budget 0 or
    /// large enough)?
    [[nodiscard]] bool resident() const noexcept { return resident_; }

    /// Wave capacity in points (a multiple of kTilePoints, or the whole
    /// active set when resident) and the number of waves covering the
    /// active set (0 when nothing is active).
    [[nodiscard]] std::size_t wavePoints() const noexcept { return wavePoints_; }
    [[nodiscard]] std::size_t waveCount() const noexcept { return waveCount_; }

    /// One materialized wave: slot j holds active index begin + j, i.e.
    /// point order[begin + j]. Pointers stay valid until the next wave()
    /// or setActive call.
    struct WaveView {
        std::size_t begin = 0;  ///< first active slot; multiple of kTilePoints
        std::size_t count = 0;
        std::array<const double*, static_cast<std::size_t>(D)> x{};
        const double* weight = nullptr;
    };

    /// Materialize wave `w` (gathering over `threads` workers when it is
    /// not already loaded) and return its view.
    [[nodiscard]] WaveView wave(std::size_t w, int threads);

    struct Accounting {
        std::uint64_t residentBytes = 0;      ///< tile storage currently held
        std::uint64_t peakResidentBytes = 0;  ///< high-water mark of the above
        std::uint64_t tileFills = 0;          ///< tiles gathered, first fills included
        std::uint64_t spilledTiles = 0;       ///< refills beyond each tile's first fill
    };
    [[nodiscard]] const Accounting& accounting() const noexcept { return acc_; }

private:
    void fill(std::size_t begin, std::size_t count, int threads);

    std::span<const Point<D>> points_;
    std::span<const double> weights_;
    std::uint64_t budget_ = 0;

    std::span<const std::size_t> order_;
    std::size_t active_ = 0;
    Box<D> box_ = Box<D>::empty();

    std::array<std::vector<double>, static_cast<std::size_t>(D)> sx_;
    std::vector<double> sw_;
    std::size_t wavePoints_ = 0;
    std::size_t waveCount_ = 0;
    std::size_t loadedWave_ = kNoWave;
    bool resident_ = true;
    std::vector<char> waveFilled_;  ///< per wave: gathered at least once

    Accounting acc_;

    static constexpr std::size_t kNoWave = static_cast<std::size_t>(-1);
};

extern template class PointStore<2>;
extern template class PointStore<3>;

}  // namespace geo::core
