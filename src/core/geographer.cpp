#include "core/geographer.hpp"

#include <algorithm>
#include <mutex>

#include "geometry/box.hpp"
#include "par/sort.hpp"
#include "sfc/hilbert.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace geo::core {

namespace {

template <int D>
struct PointRecord {
    std::int64_t gid;  ///< original input position
    Point<D> pt;
    double weight;
};

/// Initial-center contribution gathered from the curve-sorted distribution.
template <int D>
struct CenterSeed {
    std::int32_t index;
    Point<D> pt;
};

template <int D>
void spmdBody(par::Comm& comm, std::span<const Point<D>> points,
              std::span<const double> weights, std::int32_t k, const Settings& settings,
              GeographerResult& result, std::mutex& resultMutex) {
    using Rec = par::KeyedRecord<std::uint64_t, PointRecord<D>>;
    const auto n = static_cast<std::int64_t>(points.size());
    const int p = comm.size();
    const int r = comm.rank();
    // Baseline for the pipeline cost snapshot: on the serial fast path the
    // body runs on the caller's thread, whose CPU clock predates this call.
    const double cpuStart = comm.cpuSeconds();
    const double commStart = comm.stats().modeledCommSeconds;

    // Block distribution of the input, as if each rank had read its slice.
    const auto [lo, hi] = par::blockRange(n, r, p);

    PhaseTimer phases;

    // Phase 1: Hilbert indices (global bounding box via allreduce).
    Timer t1;
    Box<D> bb = Box<D>::empty();
    for (std::int64_t i = lo; i < hi; ++i) bb.extend(points[static_cast<std::size_t>(i)]);
    std::array<double, 2 * D> lohi;
    for (int d = 0; d < D; ++d) {
        lohi[static_cast<std::size_t>(d)] =
            bb.valid() ? bb.lo[d] : std::numeric_limits<double>::infinity();
        lohi[static_cast<std::size_t>(D + d)] =
            bb.valid() ? -bb.hi[d] : std::numeric_limits<double>::infinity();
    }
    comm.allreduceMin(std::span<double>(lohi.data(), lohi.size()));
    Box<D> globalBox;
    for (int d = 0; d < D; ++d) {
        globalBox.lo[d] = lohi[static_cast<std::size_t>(d)];
        globalBox.hi[d] = -lohi[static_cast<std::size_t>(D + d)];
    }
    std::vector<Rec> records;
    records.reserve(static_cast<std::size_t>(hi - lo));
    for (std::int64_t i = lo; i < hi; ++i) {
        const auto& pt = points[static_cast<std::size_t>(i)];
        const std::uint64_t key = settings.curve == Curve::Hilbert
                                      ? sfc::hilbertIndex<D>(pt, globalBox)
                                      : sfc::mortonIndex<D>(pt, globalBox);
        records.push_back(Rec{key, PointRecord<D>{i, pt,
                                                  weights.empty()
                                                      ? 1.0
                                                      : weights[static_cast<std::size_t>(i)]}});
    }
    phases.add("hilbert", t1.seconds());

    // Phase 2: global sort by curve index + equalizing redistribution.
    Timer t2;
    records = par::sampleSort(comm, std::move(records));
    records = par::rebalanceSorted(comm, std::move(records));
    phases.add("redistribute", t2.seconds());

    // Phase 3 + 4: curve seeding and balanced k-means.
    Timer t3;
    const auto localCount = static_cast<std::int64_t>(records.size());
    const std::int64_t before = comm.exscanSum(localCount);

    // Centers at global sorted positions i*n/k + n/(2k) (Alg. 2 line 7).
    std::vector<CenterSeed<D>> localSeeds;
    for (std::int32_t c = 0; c < k; ++c) {
        const std::int64_t pos =
            std::min(n - 1, (n * c) / k + n / (2 * static_cast<std::int64_t>(k)));
        if (pos >= before && pos < before + localCount) {
            localSeeds.push_back(
                CenterSeed<D>{c, records[static_cast<std::size_t>(pos - before)].value.pt});
        }
    }
    const auto allSeeds = comm.allgatherv(std::span<const CenterSeed<D>>(localSeeds));
    GEO_CHECK(static_cast<std::int32_t>(allSeeds.size()) == k,
              "every center position must be owned by exactly one rank");
    std::vector<Point<D>> centers(static_cast<std::size_t>(k));
    for (const auto& s : allSeeds) centers[static_cast<std::size_t>(s.index)] = s.pt;

    std::vector<Point<D>> localPoints;
    std::vector<double> localWeights;
    localPoints.reserve(records.size());
    localWeights.reserve(records.size());
    for (const auto& rec : records) {
        localPoints.push_back(rec.value.pt);
        localWeights.push_back(rec.value.weight);
    }

    auto outcome =
        balancedKMeans<D>(comm, localPoints, localWeights, std::move(centers), settings);
    phases.add("kmeans", t3.seconds());

    // Snapshot the pipeline cost before the diagnostic result gather: this
    // is what the paper's running-time measurements cover.
    const double pipelineScore = (comm.cpuSeconds() - cpuStart) +
                                 (comm.stats().modeledCommSeconds - commStart);
    const double pipelineMax = comm.allreduceMax(pipelineScore);

    // Collect the global partition (by original input order).
    struct GidBlock {
        std::int64_t gid;
        std::int32_t block;
    };
    std::vector<GidBlock> mine;
    mine.reserve(records.size());
    for (std::size_t i = 0; i < records.size(); ++i)
        mine.push_back(GidBlock{records[i].value.gid, outcome.assignment[i]});
    const auto all = comm.allgatherv(std::span<const GidBlock>(mine));

    // Reduce diagnostics: max phase time, summed counters + k-means state.
    std::array<double, 3> phaseMax{phases.get("hilbert"), phases.get("redistribute"),
                                   phases.get("kmeans")};
    comm.allreduceMax(std::span<double>(phaseMax.data(), phaseMax.size()));
    detail::storeKMeansDiagnostics<D>(comm, outcome, result, resultMutex);

    if (comm.isRoot()) {
        const std::lock_guard<std::mutex> lock(resultMutex);
        result.partition.assign(static_cast<std::size_t>(n), -1);
        for (const auto& gb : all)
            result.partition[static_cast<std::size_t>(gb.gid)] = gb.block;
        result.phaseSeconds["hilbert"] = phaseMax[0];
        result.phaseSeconds["redistribute"] = phaseMax[1];
        result.phaseSeconds["kmeans"] = phaseMax[2];
        result.modeledSeconds = pipelineMax;
    }
}

}  // namespace

namespace detail {

template <int D>
void storeKMeansDiagnostics(par::Comm& comm, const KMeansOutcome<D>& outcome,
                            GeographerResult& result, std::mutex& resultMutex) {
    std::array<std::uint64_t, 7> counterSum{
        outcome.counters.pointEvaluations, outcome.counters.boundSkips,
        outcome.counters.distanceCalcs, outcome.counters.bboxBreaks,
        outcome.counters.balanceIterations, outcome.counters.epochBoundApplications,
        outcome.counters.batchedDistanceCalcs};
    comm.allreduceSum(std::span<std::uint64_t>(counterSum.data(), counterSum.size()));

    if (!comm.isRoot()) return;
    const std::lock_guard<std::mutex> lock(resultMutex);
    result.imbalance = outcome.imbalance;
    result.converged = outcome.converged;
    result.counters.pointEvaluations = counterSum[0];
    result.counters.boundSkips = counterSum[1];
    result.counters.distanceCalcs = counterSum[2];
    result.counters.bboxBreaks = counterSum[3];
    result.counters.balanceIterations = counterSum[4];
    result.counters.epochBoundApplications = counterSum[5];
    result.counters.batchedDistanceCalcs = counterSum[6];
    result.counters.outerIterations = outcome.counters.outerIterations;
    const auto k = outcome.centers.size();
    result.centerCoords.resize(k * D);
    for (std::size_t c = 0; c < k; ++c)
        for (int d = 0; d < D; ++d)
            result.centerCoords[c * D + static_cast<std::size_t>(d)] =
                outcome.centers[c][d];
    result.influence = outcome.influence;
}

template void storeKMeansDiagnostics<2>(par::Comm&, const KMeansOutcome<2>&,
                                        GeographerResult&, std::mutex&);
template void storeKMeansDiagnostics<3>(par::Comm&, const KMeansOutcome<3>&,
                                        GeographerResult&, std::mutex&);

}  // namespace detail

template <int D>
GeographerResult partitionGeographer(std::span<const Point<D>> points,
                                     std::span<const double> weights, std::int32_t k,
                                     int ranks, const Settings& settings,
                                     par::CostModel model) {
    GEO_REQUIRE(k >= 1, "need at least one block");
    GEO_REQUIRE(!points.empty(), "need points to partition");
    GEO_REQUIRE(static_cast<std::int64_t>(points.size()) >= k,
                "need at least k points");
    GEO_REQUIRE(weights.empty() || weights.size() == points.size(),
                "weights must be empty or match points");

    GeographerResult result;
    std::mutex resultMutex;
    par::Machine machine(ranks, model);
    result.runStats = machine.run([&](par::Comm& comm) {
        spmdBody<D>(comm, points, weights, k, settings, result, resultMutex);
    });

    for (const auto b : result.partition)
        GEO_CHECK(b >= 0, "every point must be assigned a block");
    return result;
}

template GeographerResult partitionGeographer<2>(std::span<const Point2>,
                                                 std::span<const double>, std::int32_t, int,
                                                 const Settings&, par::CostModel);
template GeographerResult partitionGeographer<3>(std::span<const Point3>,
                                                 std::span<const double>, std::int32_t, int,
                                                 const Settings&, par::CostModel);

}  // namespace geo::core
