#include "core/geographer.hpp"

#include <algorithm>
#include <array>
#include <mutex>

#include "geometry/box.hpp"
#include "par/parallel_for.hpp"
#include "par/sort.hpp"
#include "sfc/hilbert.hpp"
#include "support/assert.hpp"
#include "support/binio.hpp"
#include "support/timer.hpp"

namespace geo::core {

namespace {

template <int D>
struct PointRecord {
    std::int64_t gid;  ///< original input position
    Point<D> pt;
    double weight;
};

/// Initial-center contribution gathered from the curve-sorted distribution.
template <int D>
struct CenterSeed {
    std::int32_t index;
    Point<D> pt;
};

template <int D>
void spmdBody(par::Comm& comm, std::span<const Point<D>> points,
              std::span<const double> weights, std::int32_t k, const Settings& settings,
              GeographerResult& result, std::mutex& resultMutex) {
    using Rec = par::KeyedRecord<std::uint64_t, PointRecord<D>>;
    const auto n = static_cast<std::int64_t>(points.size());
    const int p = comm.size();
    const int r = comm.rank();
    // Baseline for the pipeline cost snapshot: on the serial fast path the
    // body runs on the caller's thread, whose CPU clock predates this call.
    const double cpuStart = comm.cpuSeconds();
    const double commStart = comm.stats().modeledCommSeconds;

    // Block distribution of the input, as if each rank had read its slice.
    const auto [lo, hi] = par::blockRange(n, r, p);
    const auto localCountIn = static_cast<std::size_t>(hi - lo);
    const auto localPoints = points.subspan(static_cast<std::size_t>(lo), localCountIn);
    const int threads = settings.resolvedThreads();

    PhaseTimer phases;

    // Phase 1: curve keys for the local slice (threaded bounds pass, global
    // bounding box via allreduce, threaded batch keying).
    Timer t1;
    const Box<D> bb = sfc::boundsOf<D>(localPoints, threads);
    std::array<double, 2 * D> lohi;
    for (int d = 0; d < D; ++d) {
        lohi[static_cast<std::size_t>(d)] =
            bb.valid() ? bb.lo[d] : std::numeric_limits<double>::infinity();
        lohi[static_cast<std::size_t>(D + d)] =
            bb.valid() ? -bb.hi[d] : std::numeric_limits<double>::infinity();
    }
    comm.allreduceMin(std::span<double>(lohi.data(), lohi.size()));
    Box<D> globalBox;
    for (int d = 0; d < D; ++d) {
        globalBox.lo[d] = lohi[static_cast<std::size_t>(d)];
        globalBox.hi[d] = -lohi[static_cast<std::size_t>(D + d)];
    }
    // Keying is fused into the record build through one tile-sized stack
    // buffer per worker (no n-wide key mirror): each worker keys a
    // kKeyTile-point span at a time and writes the records straight out.
    // Keys are pure per-point functions of (point, globalBox), so the
    // tiling changes neither the values nor their order.
    std::vector<Rec> records(localCountIn);
    par::parallelForTiled(
        threads, localCountIn, sfc::kKeyTile,
        [&](std::size_t i0, std::size_t i1, int) {
            std::array<std::uint64_t, sfc::kKeyTile> tileKeys;
            for (std::size_t t0 = i0; t0 < i1; t0 += sfc::kKeyTile) {
                const std::size_t t1 = std::min(i1, t0 + sfc::kKeyTile);
                const auto tilePoints = localPoints.subspan(t0, t1 - t0);
                const auto tileOut = std::span<std::uint64_t>(tileKeys.data(), t1 - t0);
                if (settings.curve == Curve::Hilbert)
                    sfc::hilbertIndicesInto<D>(tilePoints, globalBox, tileOut);
                else
                    sfc::mortonIndicesInto<D>(tilePoints, globalBox, tileOut);
                for (std::size_t i = t0; i < t1; ++i) {
                    const std::int64_t gid = lo + static_cast<std::int64_t>(i);
                    records[i] =
                        Rec{tileKeys[i - t0],
                            PointRecord<D>{gid, localPoints[i],
                                           weights.empty()
                                               ? 1.0
                                               : weights[static_cast<std::size_t>(gid)]}};
                }
            }
        });
    const std::uint64_t keyedPoints = localCountIn;
    phases.add("hilbert", t1.seconds());

    // Phase 2: global sort by curve index + equalizing redistribution.
    Timer t2;
    records = par::sampleSort(comm, std::move(records), /*oversampling=*/16, threads);
    records = par::rebalanceSorted(comm, std::move(records));
    const auto sortedRecords = static_cast<std::uint64_t>(records.size());
    phases.add("redistribute", t2.seconds());

    // Phase 3 + 4: curve seeding and balanced k-means.
    Timer t3;
    const auto localCount = static_cast<std::int64_t>(records.size());
    const std::int64_t before = comm.exscanSum(localCount);

    // Centers at global sorted positions i*n/k + n/(2k) (Alg. 2 line 7).
    std::vector<CenterSeed<D>> localSeeds;
    for (std::int32_t c = 0; c < k; ++c) {
        const std::int64_t pos =
            std::min(n - 1, (n * c) / k + n / (2 * static_cast<std::int64_t>(k)));
        if (pos >= before && pos < before + localCount) {
            localSeeds.push_back(
                CenterSeed<D>{c, records[static_cast<std::size_t>(pos - before)].value.pt});
        }
    }
    const auto allSeeds = comm.allgatherv(std::span<const CenterSeed<D>>(localSeeds));
    GEO_CHECK(static_cast<std::int32_t>(allSeeds.size()) == k,
              "every center position must be owned by exactly one rank");
    std::vector<Point<D>> centers(static_cast<std::size_t>(k));
    for (const auto& s : allSeeds) centers[static_cast<std::size_t>(s.index)] = s.pt;

    // Strip the sorted records into the k-means inputs (points, weights)
    // plus the gid map needed for the final gather, and free the records
    // before the k-means phase — keeping the keyed AoS mirror alive through
    // the whole solve would otherwise dominate the per-rank footprint.
    std::vector<Point<D>> localKmeansPoints;
    std::vector<double> localWeights;
    std::vector<std::int64_t> localGids;
    localKmeansPoints.reserve(records.size());
    localWeights.reserve(records.size());
    localGids.reserve(records.size());
    for (const auto& rec : records) {
        localKmeansPoints.push_back(rec.value.pt);
        localWeights.push_back(rec.value.weight);
        localGids.push_back(rec.value.gid);
    }
    records.clear();
    records.shrink_to_fit();

    auto outcome =
        balancedKMeans<D>(comm, localKmeansPoints, localWeights, std::move(centers), settings);
    outcome.counters.keyedPoints = keyedPoints;
    outcome.counters.sortedRecords = sortedRecords;
    phases.add("kmeans", t3.seconds());
    // Sub-phases of k-means, for the thread-scaling breakdown.
    phases.add("assign", outcome.assignSeconds);
    phases.add("update", outcome.updateSeconds);

    // Snapshot the pipeline cost before the diagnostic result gather: this
    // is what the paper's running-time measurements cover.
    const double pipelineScore = (comm.cpuSeconds() - cpuStart) +
                                 (comm.stats().modeledCommSeconds - commStart);
    const double pipelineMax = comm.allreduceMax(pipelineScore);

    // Collect the global partition (by original input order).
    struct GidBlock {
        std::int64_t gid;
        std::int32_t block;
    };
    std::vector<GidBlock> mine;
    mine.reserve(localGids.size());
    for (std::size_t i = 0; i < localGids.size(); ++i)
        mine.push_back(GidBlock{localGids[i], outcome.assignment[i]});
    const auto all = comm.allgatherv(std::span<const GidBlock>(mine));

    // Reduce diagnostics: max phase time, summed counters + k-means state.
    std::array<double, 5> phaseMax{phases.get("hilbert"), phases.get("redistribute"),
                                   phases.get("kmeans"), phases.get("assign"),
                                   phases.get("update")};
    comm.allreduceMax(std::span<double>(phaseMax.data(), phaseMax.size()));
    detail::storeKMeansDiagnostics<D>(comm, outcome, result, resultMutex);

    if (comm.isRoot()) {
        const std::lock_guard<std::mutex> lock(resultMutex);
        result.partition.assign(static_cast<std::size_t>(n), -1);
        for (const auto& gb : all)
            result.partition[static_cast<std::size_t>(gb.gid)] = gb.block;
        result.phaseSeconds["hilbert"] = phaseMax[0];
        result.phaseSeconds["redistribute"] = phaseMax[1];
        result.phaseSeconds["kmeans"] = phaseMax[2];
        result.phaseSeconds["assign"] = phaseMax[3];
        result.phaseSeconds["update"] = phaseMax[4];
        result.modeledSeconds = pipelineMax;
    }
    // Cross-process runs have no shared result object: hand every rank the
    // root's assembled copy (no-op on the simulator).
    detail::replicateResult(comm, result, resultMutex);
}

}  // namespace

namespace detail {

template <int D>
void storeKMeansDiagnostics(par::Comm& comm, const KMeansOutcome<D>& outcome,
                            GeographerResult& result, std::mutex& resultMutex) {
    std::array<std::uint64_t, 10> counterSum{
        outcome.counters.pointEvaluations, outcome.counters.boundSkips,
        outcome.counters.distanceCalcs, outcome.counters.bboxBreaks,
        outcome.counters.balanceIterations, outcome.counters.epochBoundApplications,
        outcome.counters.batchedDistanceCalcs, outcome.counters.keyedPoints,
        outcome.counters.sortedRecords, outcome.counters.spilledTiles};
    comm.allreduceSum(std::span<std::uint64_t>(counterSum.data(), counterSum.size()));
    // Memory counters describe one rank's tile store, so the cross-rank
    // reduction is a max (the worst store), not a sum.
    std::array<std::uint64_t, 2> counterMax{outcome.counters.peakTileBytes,
                                            outcome.counters.residentBytes};
    comm.allreduceMax(std::span<std::uint64_t>(counterMax.data(), counterMax.size()));

    if (!comm.isRoot()) return;
    const std::lock_guard<std::mutex> lock(resultMutex);
    result.imbalance = outcome.imbalance;
    result.converged = outcome.converged;
    result.counters.pointEvaluations = counterSum[0];
    result.counters.boundSkips = counterSum[1];
    result.counters.distanceCalcs = counterSum[2];
    result.counters.bboxBreaks = counterSum[3];
    result.counters.balanceIterations = counterSum[4];
    result.counters.epochBoundApplications = counterSum[5];
    result.counters.batchedDistanceCalcs = counterSum[6];
    result.counters.keyedPoints = counterSum[7];
    result.counters.sortedRecords = counterSum[8];
    result.counters.spilledTiles = counterSum[9];
    result.counters.peakTileBytes = counterMax[0];
    result.counters.residentBytes = counterMax[1];
    result.counters.outerIterations = outcome.counters.outerIterations;
    const auto k = outcome.centers.size();
    result.centerCoords.resize(k * D);
    for (std::size_t c = 0; c < k; ++c)
        for (int d = 0; d < D; ++d)
            result.centerCoords[c * D + static_cast<std::size_t>(d)] =
                outcome.centers[c][d];
    result.influence = outcome.influence;
    result.assignmentInfluence = outcome.assignmentInfluence;
}

template void storeKMeansDiagnostics<2>(par::Comm&, const KMeansOutcome<2>&,
                                        GeographerResult&, std::mutex&);
template void storeKMeansDiagnostics<3>(par::Comm&, const KMeansOutcome<3>&,
                                        GeographerResult&, std::mutex&);

void replicateResult(par::Comm& comm, GeographerResult& result,
                     std::mutex& resultMutex) {
    if (!comm.crossProcess() || comm.size() == 1) return;
    par::Transport& transport = comm.transport();

    if (comm.isRoot()) {
        binio::Writer w;
        {
            const std::lock_guard<std::mutex> lock(resultMutex);
            w.u64(result.partition.size());
            w.vec(result.partition);
            w.f64(result.imbalance);
            w.u8(result.converged ? 1 : 0);
            w.u64(result.counters.pointEvaluations);
            w.u64(result.counters.boundSkips);
            w.u64(result.counters.distanceCalcs);
            w.u64(result.counters.bboxBreaks);
            w.u64(result.counters.balanceIterations);
            w.u64(result.counters.epochBoundApplications);
            w.u64(result.counters.batchedDistanceCalcs);
            w.u64(result.counters.keyedPoints);
            w.u64(result.counters.sortedRecords);
            w.u64(result.counters.peakTileBytes);
            w.u64(result.counters.residentBytes);
            w.u64(result.counters.spilledTiles);
            w.i32(result.counters.outerIterations);
            w.f64(result.modeledSeconds);
            w.u32(static_cast<std::uint32_t>(result.phaseSeconds.size()));
            for (const auto& [name, seconds] : result.phaseSeconds) {
                w.u32(static_cast<std::uint32_t>(name.size()));
                w.bytes(name.data(), name.size());
                w.f64(seconds);
            }
            w.u64(result.centerCoords.size());
            w.vec(result.centerCoords);
            w.u64(result.influence.size());
            w.vec(result.influence);
            w.u64(result.assignmentInfluence.size());
            w.vec(result.assignmentInfluence);
        }
        std::uint64_t bytes = w.size();
        transport.broadcast(&bytes, sizeof(bytes), 0);
        transport.broadcast(const_cast<std::byte*>(w.buffer().data()), w.size(), 0);
        return;
    }

    std::uint64_t bytes = 0;
    transport.broadcast(&bytes, sizeof(bytes), 0);
    std::vector<std::byte> payload(static_cast<std::size_t>(bytes));
    transport.broadcast(payload.data(), payload.size(), 0);

    binio::Reader r(payload);
    const std::lock_guard<std::mutex> lock(resultMutex);
    result.partition = r.vec<graph::Partition::value_type>(
        static_cast<std::size_t>(r.u64()));
    result.imbalance = r.f64();
    result.converged = r.u8() != 0;
    result.counters.pointEvaluations = r.u64();
    result.counters.boundSkips = r.u64();
    result.counters.distanceCalcs = r.u64();
    result.counters.bboxBreaks = r.u64();
    result.counters.balanceIterations = r.u64();
    result.counters.epochBoundApplications = r.u64();
    result.counters.batchedDistanceCalcs = r.u64();
    result.counters.keyedPoints = r.u64();
    result.counters.sortedRecords = r.u64();
    result.counters.peakTileBytes = r.u64();
    result.counters.residentBytes = r.u64();
    result.counters.spilledTiles = r.u64();
    result.counters.outerIterations = r.i32();
    result.modeledSeconds = r.f64();
    const std::uint32_t phases = r.u32();
    result.phaseSeconds.clear();
    for (std::uint32_t i = 0; i < phases; ++i) {
        const std::uint32_t len = r.u32();
        const auto nameBytes = r.bytes(len);
        std::string name(reinterpret_cast<const char*>(nameBytes.data()),
                         nameBytes.size());
        result.phaseSeconds[name] = r.f64();
    }
    result.centerCoords = r.vec<double>(static_cast<std::size_t>(r.u64()));
    result.influence = r.vec<double>(static_cast<std::size_t>(r.u64()));
    result.assignmentInfluence = r.vec<double>(static_cast<std::size_t>(r.u64()));
    r.expectEnd("replicated result");
}

}  // namespace detail

template <int D>
GeographerResult partitionGeographer(std::span<const Point<D>> points,
                                     std::span<const double> weights, std::int32_t k,
                                     int ranks, const Settings& settings,
                                     par::CostModel model) {
    GEO_REQUIRE(k >= 1, "need at least one block");
    GEO_REQUIRE(!points.empty(), "need points to partition");
    GEO_REQUIRE(static_cast<std::int64_t>(points.size()) >= k,
                "need at least k points");
    GEO_REQUIRE(weights.empty() || weights.size() == points.size(),
                "weights must be empty or match points");

    GeographerResult result;
    std::mutex resultMutex;
    par::Machine machine(ranks, model, settings.resolvedTransport());
    result.runStats = machine.run([&](par::Comm& comm) {
        spmdBody<D>(comm, points, weights, k, settings, result, resultMutex);
    });

    for (const auto b : result.partition)
        GEO_CHECK(b >= 0, "every point must be assigned a block");
    return result;
}

template GeographerResult partitionGeographer<2>(std::span<const Point2>,
                                                 std::span<const double>, std::int32_t, int,
                                                 const Settings&, par::CostModel);
template GeographerResult partitionGeographer<3>(std::span<const Point3>,
                                                 std::span<const double>, std::int32_t, int,
                                                 const Settings&, par::CostModel);

}  // namespace geo::core
