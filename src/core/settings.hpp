// Tuning parameters of balanced k-means / Geographer (§4 of the paper).
//
// Every switch the paper describes as a "tuning parameter" or optimization
// is independently toggleable so the ablation benches can quantify it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "par/thread_pool.hpp"
#include "par/transport/transport.hpp"
#include "support/mem.hpp"

namespace geo::core {

/// Process-wide default worker-thread count (GEO_THREADS or 1); see
/// par::defaultThreads — re-exported here because Settings resolution is
/// where most callers meet it.
using par::defaultThreads;

/// Space-filling curve used for the sort/redistribution and center seeding.
/// The paper uses Hilbert; Morton is provided for the curve ablation.
enum class Curve { Hilbert, Morton };

struct Settings {
    /// Maximum allowed imbalance ε (paper uses 0.03 / 0.05).
    double epsilon = 0.03;

    /// Which space-filling curve drives phase 1 (§4.1).
    Curve curve = Curve::Hilbert;

    /// Outer iterations: center-movement rounds (Alg. 2 maxIter).
    int maxIterations = 50;

    /// Balance iterations between center movements (Alg. 1 maxBalanceIter).
    int maxBalanceIterations = 20;

    /// Convergence: stop when the largest center movement falls below this
    /// fraction of the expected cluster radius (bbox diagonal / k^(1/d)).
    double deltaThresholdFactor = 5e-3;

    /// Maximum relative influence change per balance step (paper: 5%).
    double influenceChangeCap = 0.05;

    /// Influence erosion on center movement (Eq. 2–3).
    bool influenceErosion = true;

    /// Hamerly-style distance bounds adapted to effective distances (§4.3).
    bool hamerlyBounds = true;

    /// Bounding-box center pruning (§4.4).
    bool boundingBoxPruning = true;

    /// Assign points via a kd-tree over the centers instead of the linear
    /// scan — the alternative §4.3 dismisses ("kd-trees are outperformed by
    /// simpler distance bounds"); kept for the ablation that verifies the
    /// claim. Composes with hamerlyBounds (the skip test still applies).
    bool useKdTree = false;

    /// Sampled initialization: start with 100 random points per rank and
    /// double each round (§4.5 "random initialization").
    bool sampledInitialization = true;
    int initialSampleSize = 100;

    /// Intra-rank worker threads for every O(n) pipeline phase: SFC keying
    /// and bounds, the rank-local sort inside par::sampleSort, the
    /// assignment sweep and center update (core/assign_kernel), and the
    /// graph metrics. Results are bitwise identical at every thread count:
    /// work is split at fixed cache-block boundaries and reduced in block
    /// order (DESIGN.md "Threading model"). 0 = unset: fall back to the
    /// deprecated `assignThreads` alias, then to GEO_THREADS/1. Callers
    /// read the resolved value via resolvedThreads().
    int threads = 0;

    /// DEPRECATED alias for `threads` (pre-PR-4 name, when only the
    /// assignment sweep was threaded). Honored only while `threads` is
    /// unset (0); new code should set `threads`.
    int assignThreads = 0;

    /// The thread count every phase actually uses: `threads` if set,
    /// else the deprecated `assignThreads`, else defaultThreads()
    /// (GEO_THREADS or 1).
    [[nodiscard]] int resolvedThreads() const noexcept {
        if (threads >= 1) return threads;
        if (assignThreads >= 1) return assignThreads;
        return defaultThreads();
    }

    /// SPMD rank count for entry points that own their Machine (examples,
    /// benches, serve tooling). 0 = unset: fall back to GEO_RANKS, then 1.
    /// Mirrors the `threads`/GEO_THREADS pattern — and inside a geo_launch
    /// worker GEO_RANKS is exactly the mesh size, so a Settings-driven run
    /// automatically matches the launched process count.
    int ranks = 0;

    /// Transport backend for the SPMD runs this Settings drives. Auto =
    /// unset: fall back to GEO_TRANSPORT, then the simulator. Socket/Tcp
    /// only take effect inside a geo_launch worker whose mesh size matches
    /// the Machine's rank count; anything else simulates (par::Machine).
    par::TransportKind transport = par::TransportKind::Auto;

    /// The rank count actually used: `ranks` if set, else GEO_RANKS, else 1.
    /// Unlike resolvedThreads this is NOT cached process-wide: geo_launch
    /// workers and the precedence tests mutate the environment at runtime.
    [[nodiscard]] int resolvedRanks() const noexcept {
        if (ranks >= 1) return ranks;
        return par::defaultRanks();
    }

    /// The transport actually used: `transport` if set, else GEO_TRANSPORT,
    /// else the simulator. Never returns Auto. Throws std::invalid_argument
    /// on an unparseable GEO_TRANSPORT value.
    [[nodiscard]] par::TransportKind resolvedTransport() const {
        if (transport != par::TransportKind::Auto) return transport;
        return par::envTransportKind();
    }

    /// Deadline (ms) for every blocking socket-transport operation: a dead
    /// or wedged peer surfaces as a typed par::TransportError instead of a
    /// hang. -1 = unset: fall back to GEO_COMM_TIMEOUT_MS, then 30000.
    /// 0 disables the deadline (pre-fault-tolerance blocking behavior).
    /// Only meaningful for SPMD runs over the socket/tcp transport; the
    /// in-process simulator cannot lose a rank.
    int commTimeoutMs = -1;

    /// The deadline actually used: `commTimeoutMs` if set (>= 0), else
    /// GEO_COMM_TIMEOUT_MS, else 30000. NOT cached: geo_launch forwards
    /// --comm-timeout-ms through the environment at runtime.
    [[nodiscard]] int resolvedCommTimeoutMs() const noexcept {
        if (commTimeoutMs >= 0) return commTimeoutMs;
        return par::defaultCommTimeoutMs();
    }

    /// Byte budget for the tiled point mirror every assignment sweep and
    /// center update runs over (core::PointStore). 0 = unset: fall back to
    /// GEO_MEM_BUDGET, then unlimited (the whole active set stays resident,
    /// exactly the pre-budget behavior). A positive budget caps the mirror:
    /// the store materializes the active set in budget-sized waves of fixed
    /// 1024-point tiles and regenerates them from the caller's points on
    /// every pass. Results are bitwise identical at every budget — wave
    /// boundaries fall on the same fixed tile grid the threading contract
    /// already reduces over (DESIGN.md "Memory model & tiling"). Budgets
    /// smaller than one tile clamp up to one tile.
    std::uint64_t memoryBudgetBytes = 0;

    /// The byte budget actually used: `memoryBudgetBytes` if set, else
    /// GEO_MEM_BUDGET, else 0 (= unlimited). Like resolvedRanks this is NOT
    /// cached process-wide: the precedence tests mutate the environment at
    /// runtime. Throws std::invalid_argument on an unparseable
    /// GEO_MEM_BUDGET value.
    [[nodiscard]] std::uint64_t resolvedMemoryBudget() const {
        if (memoryBudgetBytes > 0) return memoryBudgetBytes;
        return support::envMemoryBudget();
    }

    /// Equivalence mode: run the scalar sqrt-domain reference kernel (the
    /// seed implementation's per-candidate loop) instead of the SoA
    /// squared-domain batch kernel. Exists so tests and benches can prove the
    /// fast engine reproduces the reference outcomes exactly.
    bool referenceAssignment = false;

    /// RNG seed for the sampling permutation.
    std::uint64_t seed = 1;

    /// Warm-start influence values paired with the initial centers (one per
    /// block, all positive), e.g. carried over from the previous timestep by
    /// the repartitioning subsystem (src/repart). Empty = all ones (cold
    /// start). Must be replicated identically on every rank, like the
    /// centers.
    std::vector<double> initialInfluence;

    /// Optional non-uniform block size targets (paper footnote 1:
    /// "when partitioning for heterogeneous architectures, this can easily
    /// be adapted"). Empty = uniform; otherwise one positive fraction per
    /// block, normalized internally.
    std::vector<double> targetFractions;
};

/// Counters recorded inside the assignment loop; basis for the paper's
/// "inner loop skipped in about 80% of the cases" claim and the ablation
/// benches.
struct KMeansCounters {
    std::uint64_t pointEvaluations = 0;  ///< points visited in assignment loops
    std::uint64_t boundSkips = 0;        ///< skipped entirely via ub < lb
    std::uint64_t distanceCalcs = 0;     ///< effective-distance evaluations
    std::uint64_t bboxBreaks = 0;        ///< inner loops cut short by bbox pruning
    std::uint64_t balanceIterations = 0; ///< total assign-and-balance sweeps
    std::uint64_t epochBoundApplications = 0;  ///< lazy Hamerly epochs applied on touch
    std::uint64_t batchedDistanceCalcs = 0;    ///< distances evaluated by the SoA batch kernel
    std::uint64_t keyedPoints = 0;       ///< points run through SFC keying (phase 1)
    std::uint64_t sortedRecords = 0;     ///< records owned after the global sort (phase 2)
    std::uint64_t peakTileBytes = 0;     ///< high-water tile-storage bytes (PointStore)
    std::uint64_t residentBytes = 0;     ///< tile-storage bytes held at sweep end
    std::uint64_t spilledTiles = 0;      ///< tile refills beyond each tile's first fill
    int outerIterations = 0;             ///< center-movement rounds

    [[nodiscard]] double skipFraction() const noexcept {
        return pointEvaluations == 0
                   ? 0.0
                   : static_cast<double>(boundSkips) / static_cast<double>(pointEvaluations);
    }

    void merge(const KMeansCounters& o) noexcept {
        pointEvaluations += o.pointEvaluations;
        boundSkips += o.boundSkips;
        distanceCalcs += o.distanceCalcs;
        bboxBreaks += o.bboxBreaks;
        balanceIterations += o.balanceIterations;
        epochBoundApplications += o.epochBoundApplications;
        batchedDistanceCalcs += o.batchedDistanceCalcs;
        keyedPoints += o.keyedPoints;
        sortedRecords += o.sortedRecords;
        // Memory counters: peaks/resident take the max (they describe one
        // store's high-water mark, not additive work), spills accumulate.
        peakTileBytes = std::max(peakTileBytes, o.peakTileBytes);
        residentBytes = std::max(residentBytes, o.residentBytes);
        spilledTiles += o.spilledTiles;
        outerIterations = std::max(outerIterations, o.outerIterations);
    }
};

}  // namespace geo::core
