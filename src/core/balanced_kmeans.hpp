// Balanced k-means — the paper's core contribution (§4, Algorithms 1 & 2).
//
// Lloyd's algorithm extended with:
//   * per-cluster *influence* values; points are assigned to the cluster
//     minimizing the effective distance dist(p, center(c)) / influence(c)
//     (a multiplicatively-weighted Voronoi assignment),
//   * influence adaptation after every assignment sweep, scaled by the
//     d-th root of the size ratio (Eq. 1) and capped at ±5% per step,
//   * influence erosion towards 1 when centers move (Eq. 2–3),
//   * Hamerly distance bounds adapted to effective distances (Eq. 4–5),
//   * bounding-box pruning of candidate centers (§4.4),
//   * sampled initialization rounds (§4.5).
//
// SPMD: each rank holds a subset of the points; centers, influence values
// and global block sizes are replicated via allreduce — the only
// communication, exactly as in the paper.
//
// The assignment sweep itself (and the lazy epoch-based variant of the
// Hamerly bound maintenance) lives in core/assign_kernel.hpp; this file
// owns the outer Lloyd/balance loops, influence adaptation and erosion.
//
// Note on Eq. 1/4/5 signs: the paper's printed formulas are dimensionally
// inconsistent with its own prose (e.g. Eq. 4 *lowers* the upper bound when
// a center moves). We implement the semantics the prose describes; see
// DESIGN.md "Key design decisions".
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "core/settings.hpp"
#include "geometry/point.hpp"
#include "par/comm.hpp"

namespace geo::core {

/// Expected cluster radius `bbox diagonal / k^(1/d)` — the shared length
/// scale of the convergence test (Settings::deltaThresholdFactor) and the
/// repartitioning drift probe (RepartOptions::driftThresholdFactor).
[[nodiscard]] inline double expectedClusterRadius(double bboxDiagonal, std::int32_t k,
                                                  int dim) noexcept {
    return bboxDiagonal /
           std::pow(static_cast<double>(k), 1.0 / static_cast<double>(dim));
}

template <int D>
struct KMeansOutcome {
    std::vector<std::int32_t> assignment;  ///< block per *local* point
    std::vector<Point<D>> centers;         ///< final replicated centers
    std::vector<double> influence;         ///< final replicated influence
    /// Influence values the *final assignment sweep* used: `assignment` is an
    /// exact multiplicatively-weighted Voronoi partition of (centers,
    /// assignmentInfluence). Equal to `influence` whenever the last balance
    /// loop broke on imbalance <= epsilon; they differ when the loop
    /// exhausted maxBalanceIterations, because influence adaptation runs
    /// once more *after* the final sweep (that post-adapt state is the right
    /// warm start for the next timestep, but not the state the assignment
    /// was computed against). The online serving subsystem (src/serve)
    /// snapshots this pair to reproduce the assignment bitwise.
    std::vector<double> assignmentInfluence;
    double imbalance = 0.0;                ///< achieved global imbalance
    bool converged = false;                ///< center movement below threshold
    KMeansCounters counters;               ///< this rank's loop counters
    /// Wall-time split of the k-means loop on this rank: the
    /// assign-and-balance sweeps vs the center-update reductions (incl.
    /// their allreduces) — the phase granularity the thread-scaling bench
    /// reports.
    double assignSeconds = 0.0;
    double updateSeconds = 0.0;
};

/// Run balanced k-means on the rank-local `points` with replicated initial
/// `centers` (identical on every rank). `weights` may be empty (unit).
template <int D>
KMeansOutcome<D> balancedKMeans(par::Comm& comm, std::span<const Point<D>> points,
                                std::span<const double> weights,
                                std::vector<Point<D>> centers, const Settings& settings);

extern template KMeansOutcome<2> balancedKMeans<2>(par::Comm&, std::span<const Point2>,
                                                   std::span<const double>,
                                                   std::vector<Point2>, const Settings&);
extern template KMeansOutcome<3> balancedKMeans<3>(par::Comm&, std::span<const Point3>,
                                                   std::span<const double>,
                                                   std::vector<Point3>, const Settings&);

}  // namespace geo::core
