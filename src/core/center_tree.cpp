#include "core/center_tree.hpp"

#include <algorithm>
#include <limits>

#include "support/assert.hpp"

namespace geo::core {

namespace {
constexpr std::int32_t kLeafSize = 4;
constexpr double kInf = std::numeric_limits<double>::infinity();
}

template <int D>
CenterKdTree<D>::CenterKdTree(std::span<const Point<D>> centers,
                              std::span<const double> influence) {
    rebuild(centers, influence);
}

template <int D>
void CenterKdTree<D>::rebuild(std::span<const Point<D>> centers,
                              std::span<const double> influence) {
    GEO_REQUIRE(!centers.empty(), "kd-tree needs at least one center");
    GEO_REQUIRE(centers.size() == influence.size(), "one influence per center");
    centers_.assign(centers.begin(), centers.end());
    influence_.assign(influence.begin(), influence.end());
    invInfluence2_.resize(influence_.size());
    for (std::size_t c = 0; c < influence_.size(); ++c)
        invInfluence2_[c] = 1.0 / (influence_[c] * influence_[c]);
    order_.resize(centers_.size());
    for (std::size_t i = 0; i < order_.size(); ++i)
        order_[i] = static_cast<std::int32_t>(i);
    nodes_.clear();
    nodes_.reserve(2 * centers_.size() / kLeafSize + 2);
    root_ = build(0, static_cast<std::int32_t>(centers_.size()), 0);
}

template <int D>
std::int32_t CenterKdTree<D>::build(std::int32_t begin, std::int32_t end, int depth) {
    Node node;
    node.bounds = Box<D>::empty();
    node.maxInfluence = 0.0;
    for (std::int32_t i = begin; i < end; ++i) {
        const auto c = order_[static_cast<std::size_t>(i)];
        node.bounds.extend(centers_[static_cast<std::size_t>(c)]);
        node.maxInfluence =
            std::max(node.maxInfluence, influence_[static_cast<std::size_t>(c)]);
    }
    node.invMaxInfluence2 = 1.0 / (node.maxInfluence * node.maxInfluence);
    node.begin = begin;
    node.end = end;

    const auto id = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(node);
    if (end - begin > kLeafSize) {
        const int axis = depth % D;
        const std::int32_t mid = (begin + end) / 2;
        std::nth_element(order_.begin() + begin, order_.begin() + mid, order_.begin() + end,
                         [&](std::int32_t a, std::int32_t b) {
                             return centers_[static_cast<std::size_t>(a)][axis] <
                                    centers_[static_cast<std::size_t>(b)][axis];
                         });
        // Children are built after the parent; store indices post hoc.
        const auto left = build(begin, mid, depth + 1);
        const auto right = build(mid, end, depth + 1);
        nodes_[static_cast<std::size_t>(id)].left = left;
        nodes_[static_cast<std::size_t>(id)].right = right;
    }
    return id;
}

template <int D>
void CenterKdTree<D>::search(std::int32_t nodeId, const Point<D>& p,
                             QueryResult& out) const {
    const Node& node = nodes_[static_cast<std::size_t>(nodeId)];
    // Lower bound on any effective distance inside this subtree.
    const double bound = node.bounds.minDistance(p) / node.maxInfluence;
    if (bound >= out.secondDistance) return;

    if (node.left < 0) {
        for (std::int32_t i = node.begin; i < node.end; ++i) {
            const auto c = order_[static_cast<std::size_t>(i)];
            const double eff = distance(p, centers_[static_cast<std::size_t>(c)]) /
                               influence_[static_cast<std::size_t>(c)];
            if (eff < out.bestDistance) {
                out.secondDistance = out.bestDistance;
                out.bestDistance = eff;
                out.best = c;
            } else if (eff < out.secondDistance) {
                out.secondDistance = eff;
            }
        }
        return;
    }
    // Visit the child whose box is closer first (better pruning).
    const auto& l = nodes_[static_cast<std::size_t>(node.left)];
    const auto& r = nodes_[static_cast<std::size_t>(node.right)];
    const double dl = l.bounds.minDistance(p) / l.maxInfluence;
    const double dr = r.bounds.minDistance(p) / r.maxInfluence;
    if (dl <= dr) {
        search(node.left, p, out);
        search(node.right, p, out);
    } else {
        search(node.right, p, out);
        search(node.left, p, out);
    }
}

template <int D>
void CenterKdTree<D>::searchSquared(std::int32_t nodeId, const Point<D>& p,
                                    IdResult& out, double& best2,
                                    double& second2) const {
    const Node& node = nodes_[static_cast<std::size_t>(nodeId)];
    // Squared-domain lower bound: minDist²/maxInfluence² — same pruning
    // decision as the sqrt path up to rounding, conservative either way.
    const double bound2 = node.bounds.minSquaredDistance(p) * node.invMaxInfluence2;
    if (bound2 >= second2) return;

    if (node.left < 0) {
        for (std::int32_t i = node.begin; i < node.end; ++i) {
            const auto c = order_[static_cast<std::size_t>(i)];
            const double eff2 = squaredDistance(p, centers_[static_cast<std::size_t>(c)]) *
                                invInfluence2_[static_cast<std::size_t>(c)];
            if (eff2 < best2) {
                second2 = best2;
                out.second = out.best;
                best2 = eff2;
                out.best = c;
            } else if (eff2 < second2) {
                second2 = eff2;
                out.second = c;
            }
        }
        return;
    }
    const auto& l = nodes_[static_cast<std::size_t>(node.left)];
    const auto& r = nodes_[static_cast<std::size_t>(node.right)];
    const double dl = l.bounds.minSquaredDistance(p) * l.invMaxInfluence2;
    const double dr = r.bounds.minSquaredDistance(p) * r.invMaxInfluence2;
    if (dl <= dr) {
        searchSquared(node.left, p, out, best2, second2);
        searchSquared(node.right, p, out, best2, second2);
    } else {
        searchSquared(node.right, p, out, best2, second2);
        searchSquared(node.left, p, out, best2, second2);
    }
}

template <int D>
typename CenterKdTree<D>::QueryResult CenterKdTree<D>::query(const Point<D>& p) const {
    QueryResult out;
    out.bestDistance = kInf;
    out.secondDistance = kInf;
    search(root_, p, out);
    GEO_CHECK(out.best >= 0, "kd-tree query found no center");
    return out;
}

template <int D>
typename CenterKdTree<D>::IdResult CenterKdTree<D>::queryNearestIds(
    const Point<D>& p) const {
    IdResult out;
    double best2 = kInf, second2 = kInf;
    searchSquared(root_, p, out, best2, second2);
    GEO_CHECK(out.best >= 0, "kd-tree query found no center");
    return out;
}

template class CenterKdTree<2>;
template class CenterKdTree<3>;

}  // namespace geo::core
