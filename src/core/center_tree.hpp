// kd-tree over cluster centers for nearest-effective-distance queries.
//
// §4.3 of the paper: "Nearest-neighbor data structures like kd-trees are
// outperformed by simpler distance bounds in most published experiments."
// This structure exists to reproduce that comparison (ablation_kdtree
// bench): it answers argmin_c dist(p, center(c))/influence(c) queries with
// branch-and-bound pruning, correctly handling the multiplicative weights
// by tracking the maximum influence per subtree.
//
// Two query flavours share one tree:
//   * query()           — sqrt domain, returns effective distances (the seed
//                         semantics; reference assignment mode),
//   * queryNearestIds() — squared effective-distance domain; computes and
//                         prunes on dist²·(1/influence²) so no sqrt is taken
//                         anywhere on the path, and returns only the best /
//                         second-best center ids (the fast assignment engine
//                         materializes the Hamerly bounds itself).
// Both answer the same argmin: x ↦ x² is monotone on the non-negative
// effective distances, so the squared comparisons order candidates and
// subtree bounds identically.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/point.hpp"

namespace geo::core {

template <int D>
class CenterKdTree {
public:
    /// Build over replicated centers + influence values.
    CenterKdTree(std::span<const Point<D>> centers, std::span<const double> influence);

    /// Default-constructed empty tree; call rebuild() before querying.
    CenterKdTree() = default;

    /// Rebuild in place over new centers/influence (called every balance
    /// round — reuses all node/order/center storage instead of reallocating).
    void rebuild(std::span<const Point<D>> centers, std::span<const double> influence);

    struct QueryResult {
        std::int32_t best = -1;
        double bestDistance = 0.0;    ///< effective distance to best
        double secondDistance = 0.0;  ///< effective distance to runner-up
    };

    /// Best and second-best cluster by effective distance (sqrt domain).
    [[nodiscard]] QueryResult query(const Point<D>& p) const;

    struct IdResult {
        std::int32_t best = -1;
        std::int32_t second = -1;  ///< -1 when the tree holds a single center
    };

    /// Best and second-best cluster ids, computed entirely in the squared
    /// effective-distance domain (no sqrt).
    [[nodiscard]] IdResult queryNearestIds(const Point<D>& p) const;

    [[nodiscard]] std::int32_t size() const noexcept {
        return static_cast<std::int32_t>(centers_.size());
    }

private:
    struct Node {
        Box<D> bounds;          ///< bounding box of centers in this subtree
        double maxInfluence;    ///< pruning bound: eff dist >= minDist/maxInfl
        double invMaxInfluence2;  ///< 1/maxInfluence² for squared-domain pruning
        std::int32_t left = -1, right = -1;  ///< children; -1 = leaf
        std::int32_t begin = 0, end = 0;     ///< center range (leaf)
    };

    std::int32_t build(std::int32_t begin, std::int32_t end, int depth);
    void search(std::int32_t nodeId, const Point<D>& p, QueryResult& out) const;
    void searchSquared(std::int32_t nodeId, const Point<D>& p, IdResult& out,
                       double& best2, double& second2) const;

    std::vector<Point<D>> centers_;
    std::vector<double> influence_;
    std::vector<double> invInfluence2_;  ///< 1/influence² per center
    std::vector<std::int32_t> order_;  ///< center ids, permuted by the build
    std::vector<Node> nodes_;
    std::int32_t root_ = -1;
};

extern template class CenterKdTree<2>;
extern template class CenterKdTree<3>;

}  // namespace geo::core
