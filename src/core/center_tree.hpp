// kd-tree over cluster centers for nearest-effective-distance queries.
//
// §4.3 of the paper: "Nearest-neighbor data structures like kd-trees are
// outperformed by simpler distance bounds in most published experiments."
// This structure exists to reproduce that comparison (ablation_kdtree
// bench): it answers argmin_c dist(p, center(c))/influence(c) queries with
// branch-and-bound pruning, correctly handling the multiplicative weights
// by tracking the maximum influence per subtree.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/point.hpp"

namespace geo::core {

template <int D>
class CenterKdTree {
public:
    /// Build over replicated centers + influence values (rebuilt whenever
    /// either changes; k is small so builds are cheap).
    CenterKdTree(std::span<const Point<D>> centers, std::span<const double> influence);

    struct QueryResult {
        std::int32_t best = -1;
        double bestDistance = 0.0;    ///< effective distance to best
        double secondDistance = 0.0;  ///< effective distance to runner-up
    };

    /// Best and second-best cluster by effective distance.
    [[nodiscard]] QueryResult query(const Point<D>& p) const;

    [[nodiscard]] std::int32_t size() const noexcept {
        return static_cast<std::int32_t>(centers_.size());
    }

private:
    struct Node {
        Box<D> bounds;          ///< bounding box of centers in this subtree
        double maxInfluence;    ///< pruning bound: eff dist >= minDist/maxInfl
        std::int32_t left = -1, right = -1;  ///< children; -1 = leaf
        std::int32_t begin = 0, end = 0;     ///< center range (leaf)
    };

    std::int32_t build(std::int32_t begin, std::int32_t end, int depth);
    void search(std::int32_t nodeId, const Point<D>& p, QueryResult& out) const;

    std::vector<Point<D>> centers_;
    std::vector<double> influence_;
    std::vector<std::int32_t> order_;  ///< center ids, permuted by the build
    std::vector<Node> nodes_;
    std::int32_t root_ = -1;
};

extern template class CenterKdTree<2>;
extern template class CenterKdTree<3>;

}  // namespace geo::core
