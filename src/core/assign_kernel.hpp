// Fast point-to-center assignment engine for balanced k-means.
//
// Every subsystem (one-shot partitioner, repart warm restarts, hier
// per-node solves) funnels into the assignment sweep of Algorithm 1/2; this
// engine owns that hot path. Four ideas, independently toggleable through
// Settings:
//
//   1. Squared effective-distance domain. Candidates are compared as
//      dist²(p,c) · (1/influence(c)²); x ↦ x² is monotone on non-negative
//      effective distances, so the argmin (and the bbox-pruning break) are
//      unchanged while the per-candidate sqrt disappears. Only when a point
//      is actually (re)assigned are its Hamerly bounds materialized — at
//      most two sqrts per assigned point, computed with the exact same
//      expression (`distance(p,c)/influence(c)`) the scalar reference path
//      uses, so ub/lb stay bitwise identical between modes.
//   2. Lazy epoch-based bounds. Influence adaptation and center movement no
//      longer sweep all n points to relax ub/lb; they append one epoch
//      (per-cluster ratio/shift + the min-ratio/max-shift scalars) to a log,
//      and a point replays the epochs it missed when it is next touched.
//      Each balance round costs O(active points) instead of O(n) — the big
//      win for sampled initialization and warm-started repartitioning.
//      Sequential replay applies the identical multiply/add per round the
//      eager sweeps performed, so bound values are bitwise unchanged.
//   3. Budgeted SoA mirror (core::PointStore) + cache-blocked batch kernel.
//      setActive() hands the active order to a PointStore, which mirrors
//      the points into per-dimension tile arrays under the byte budget of
//      Settings::memoryBudgetBytes / GEO_MEM_BUDGET: unlimited keeps the
//      whole set resident (one gather per setActive, as before); a finite
//      budget materializes budget-sized waves of fixed 1024-point tiles,
//      regenerated from the caller's points on every pass. The sweep walks
//      the waves in order, each wave's fixed 1024-point blocks in parallel,
//      gathers the not-skipped points of each block into contiguous
//      scratch, and runs an auto-vectorizable centers-outer / points-inner
//      kernel with branchless best/second tracking. Weighted cluster sizes
//      are accumulated per block and reduced in block order.
//   4. Intra-rank threading (Settings::threads; the old name assignThreads
//      survives as a deprecated alias) via par::parallelFor over whole
//      blocks. Because block (and wave) boundaries are fixed and the block
//      partials are reduced serially in ascending global block order —
//      waves ascending, blocks within a wave ascending, which is the same
//      left fold the resident path performs — results are bitwise
//      identical at every thread count AND every memory budget. The same
//      contract covers updateCenters(), the threaded Alg. 2 line-13
//      reduction.
//
// Settings::referenceAssignment selects the scalar sqrt-domain kernel (the
// seed implementation's per-candidate loop) as an equivalence oracle; the
// suite in tests/test_kmeans.cpp proves fast == reference == seed exactly.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/center_tree.hpp"
#include "core/point_store.hpp"
#include "core/settings.hpp"
#include "geometry/box.hpp"
#include "geometry/point.hpp"

namespace geo::core {

template <int D>
class AssignEngine {
public:
    /// `points`/`weights` must outlive the engine (weights may be empty =
    /// unit). `k` is the number of clusters.
    AssignEngine(std::span<const Point<D>> points, std::span<const double> weights,
                 const Settings& settings, std::int32_t k);

    /// Declare the active prefix order[0..activeCount) — the PointStore
    /// recomputes the active bounding box and (budget permitting) mirrors
    /// the points. Called once per assignAndBalance (the active set only
    /// changes between calls). `order` is referenced, not copied: a
    /// budgeted store regenerates tiles from it on every sweep, so it must
    /// stay valid and unchanged until the next setActive.
    void setActive(std::span<const std::size_t> order, std::size_t activeCount);

    /// Bounding box of the active points (invalid when none are active).
    [[nodiscard]] const Box<D>& activeBox() const noexcept {
        return store_.activeBox();
    }

    /// Start one assignment round against `centers`/`influence` (replicated
    /// state; spans must stay valid until the next beginRound). Recomputes
    /// the bbox-pruning candidate order from `activeBox` — pruning keys are
    /// only ever consulted when they were computed in *this* round, so a
    /// round whose box is invalid can never scan against stale keys.
    void beginRound(std::span<const Point<D>> centers, std::span<const double> influence,
                    const Box<D>& activeBox);

    /// One assignment sweep over the active points: replay missed bound
    /// epochs, skip via ub < lb, (re)assign the rest, and write the
    /// deterministic per-cluster weighted sizes into `localSizes` (k wide).
    void sweep(std::span<double> localSizes);

    /// Weighted per-cluster coordinate/weight sums over the active points —
    /// the Alg. 2 line-13 center-update reduction. `sums` is k·(D+1) wide:
    /// D coordinate sums then the weight per cluster. Runs over the same
    /// fixed 1024-slot blocks as sweep(), with per-block partials reduced
    /// serially in block order, so the result is bitwise identical at every
    /// Settings::threads value (and to the block-ordered serial sum).
    void updateCenters(std::span<double> sums);

    /// Influence changed from I to I' (ratio = I/I'): ub scales by its own
    /// cluster's ratio, lb by the smallest ratio. O(k), applied lazily.
    void pushInfluenceEpoch(std::span<const double> ratio);

    /// Centers moved by delta (shift = delta/I') and influence possibly
    /// eroded (ratio = I/I'): Eq. 4–5 relaxation, O(k), applied lazily.
    void pushMoveEpoch(std::span<const double> ratio, std::span<const double> shift);

    /// Forget all bounds (ub = ∞, lb = 0) and mark every point current.
    void resetBounds();

    [[nodiscard]] std::span<const std::int32_t> assignment() const noexcept {
        return assignment_;
    }
    [[nodiscard]] std::vector<std::int32_t> takeAssignment() noexcept {
        return std::move(assignment_);
    }
    [[nodiscard]] const KMeansCounters& counters() const noexcept { return counters_; }

private:
    struct Epoch {
        std::vector<double> ratio;  ///< per-cluster I/I'
        std::vector<double> shift;  ///< per-cluster delta/I' (move epochs only)
        double minRatio = 1.0;
        double maxShift = 0.0;
        bool move = false;
    };

    /// Per-worker scratch: gathered coordinates + kernel state. Center ids
    /// are tracked as doubles inside the batch kernel so every lane of the
    /// select has one width (vectorizer-friendly); materialization narrows.
    struct Scratch {
        std::vector<std::size_t> pointIdx;  ///< global point id per gathered slot
        std::array<std::vector<double>, static_cast<std::size_t>(D)> gx;
        std::vector<double> best2, second2, bestC, secondC;
        KMeansCounters counters;
    };

    void processBlock(const typename PointStore<D>::WaveView& wave,
                      std::size_t block, Scratch& scratch, double* blockSizes);
    void batchKernel(Scratch& scratch, std::size_t m);
    void recordStoreCounters();
    void assignPointReference(std::size_t p, KMeansCounters& counters);
    void applyEpochs(std::size_t p, KMeansCounters& counters);
    [[nodiscard]] std::uint32_t currentEpoch() const noexcept {
        return static_cast<std::uint32_t>(epochs_.size());
    }

    std::span<const Point<D>> points_;
    std::span<const double> weights_;
    const Settings& settings_;
    std::int32_t k_;

    // Persistent per-point state (indexed by global point id).
    std::vector<std::int32_t> assignment_;
    std::vector<double> ub_, lb_;
    std::vector<std::uint32_t> epoch_;
    std::vector<Epoch> epochs_;

    // Budgeted active-set mirror: the shared tiled point representation
    // (coords + weights in fixed tiles, active order, bounding box).
    PointStore<D> store_;

    // Round state.
    std::span<const Point<D>> centers_;
    std::span<const double> influence_;
    std::vector<double> invInfluence2_;
    std::vector<std::int32_t> sortedCenters_;
    std::vector<double> centerKey_;
    bool keysValid_ = false;  ///< pruning keys were computed this round
    CenterKdTree<D> tree_;

    std::vector<double> blockSizes_;  ///< per-block weighted cluster sizes
    std::vector<double> blockSums_;   ///< per-block center-update partials
    std::vector<Scratch> scratch_;
    KMeansCounters counters_;
};

extern template class AssignEngine<2>;
extern template class AssignEngine<3>;

}  // namespace geo::core
