// Geographer: the end-to-end partitioner (§4.1, §4.5, Algorithm 2).
//
// Pipeline per SPMD rank:
//   1. compute Hilbert indices of the local points      (phase "hilbert")
//   2. global sample sort + redistribution by index      (phase "redistribute")
//   3. seed k centers equidistantly along the curve
//   4. balanced k-means                                  (phase "kmeans")
//
// The phase split matches the component breakdown the paper reports in
// §5.3.2. The number of blocks k is independent of the number of ranks.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/balanced_kmeans.hpp"
#include "core/settings.hpp"
#include "graph/metrics.hpp"
#include "par/comm.hpp"

namespace geo::core {

struct GeographerResult {
    /// Block per original (input-order) point.
    graph::Partition partition;
    double imbalance = 0.0;
    bool converged = false;
    /// Loop counters summed over all ranks.
    KMeansCounters counters;
    /// Per-phase wall time, max over ranks: "hilbert", "redistribute",
    /// "kmeans", plus the k-means sub-phases "assign" (assignment sweeps)
    /// and "update" (center-update reductions).
    std::map<std::string, double> phaseSeconds;
    /// Aggregate runtime statistics of the SPMD run (modeled comm time,
    /// bytes, per-rank CPU time). Includes the diagnostic result gather.
    par::RunStats runStats;
    /// Modeled parallel time of the partitioning pipeline alone (max-rank
    /// CPU + modeled comm up to the end of k-means, excluding the
    /// diagnostic gather) — the number comparable to the paper's timings.
    double modeledSeconds = 0.0;
    /// Final replicated k-means centers, flattened row-major (k × D) so the
    /// result type stays dimension-agnostic. Together with `influence` this
    /// is the warm-start state consumed by repart::repartitionGeographer.
    std::vector<double> centerCoords;
    /// Final replicated influence values (one per block).
    std::vector<double> influence;
    /// Influence values the final assignment sweep used: `partition` is an
    /// exact multiplicatively-weighted Voronoi partition of (centerCoords,
    /// assignmentInfluence). Equal to `influence` unless the last balance
    /// loop exhausted maxBalanceIterations (see KMeansOutcome). Consumed by
    /// the online serving subsystem (src/serve) so published snapshots
    /// reproduce the partition bitwise.
    std::vector<double> assignmentInfluence;
};

/// Unflatten row-major (k × D) center coordinates (the
/// GeographerResult::centerCoords layout) back into Point form — the layout
/// repart::RepartState and serve::PartitionSnapshot consume.
template <int D>
[[nodiscard]] inline std::vector<Point<D>> unflattenCenters(
    std::span<const double> coords) {
    std::vector<Point<D>> centers(coords.size() / static_cast<std::size_t>(D));
    for (std::size_t c = 0; c < centers.size(); ++c)
        for (int d = 0; d < D; ++d)
            centers[c][d] = coords[c * static_cast<std::size_t>(D) +
                                   static_cast<std::size_t>(d)];
    return centers;
}

/// Partition `points` into k blocks with `ranks` simulated MPI processes.
/// `weights` may be empty (unit weights).
template <int D>
GeographerResult partitionGeographer(std::span<const Point<D>> points,
                                     std::span<const double> weights, std::int32_t k,
                                     int ranks, const Settings& settings,
                                     par::CostModel model = {});

extern template GeographerResult partitionGeographer<2>(std::span<const Point2>,
                                                        std::span<const double>, std::int32_t,
                                                        int, const Settings&, par::CostModel);
extern template GeographerResult partitionGeographer<3>(std::span<const Point3>,
                                                        std::span<const double>, std::int32_t,
                                                        int, const Settings&, par::CostModel);

namespace detail {

/// Reduce a rank-local k-means outcome into `result` (root only, guarded by
/// `resultMutex`): summed loop counters, imbalance, convergence flag, and
/// the flattened warm-start state (row-major centers, influence).
/// Collective — every rank must enter it at the same point. Shared by the
/// cold pipeline here and the warm path in src/repart.
template <int D>
void storeKMeansDiagnostics(par::Comm& comm, const KMeansOutcome<D>& outcome,
                            GeographerResult& result, std::mutex& resultMutex);

extern template void storeKMeansDiagnostics<2>(par::Comm&, const KMeansOutcome<2>&,
                                               GeographerResult&, std::mutex&);
extern template void storeKMeansDiagnostics<3>(par::Comm&, const KMeansOutcome<3>&,
                                               GeographerResult&, std::mutex&);

/// Replicate the root-assembled GeographerResult to every rank. On the
/// shared-memory simulator all ranks already see the one result object and
/// this is a no-op; on a cross-process transport the root serializes the
/// result and broadcasts it over RAW transport calls — bookkeeping, not
/// algorithm communication, so it never touches CommStats and stats stay
/// comparable across backends. Collective: every rank must call it at the
/// same point (both SPMD bodies do, as their last step).
void replicateResult(par::Comm& comm, GeographerResult& result,
                     std::mutex& resultMutex);

}  // namespace detail

}  // namespace geo::core
