// Geographer: the end-to-end partitioner (§4.1, §4.5, Algorithm 2).
//
// Pipeline per SPMD rank:
//   1. compute Hilbert indices of the local points      (phase "hilbert")
//   2. global sample sort + redistribution by index      (phase "redistribute")
//   3. seed k centers equidistantly along the curve
//   4. balanced k-means                                  (phase "kmeans")
//
// The phase split matches the component breakdown the paper reports in
// §5.3.2. The number of blocks k is independent of the number of ranks.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/balanced_kmeans.hpp"
#include "core/settings.hpp"
#include "graph/metrics.hpp"
#include "par/comm.hpp"

namespace geo::core {

struct GeographerResult {
    /// Block per original (input-order) point.
    graph::Partition partition;
    double imbalance = 0.0;
    bool converged = false;
    /// Loop counters summed over all ranks.
    KMeansCounters counters;
    /// Per-phase wall time, max over ranks: "hilbert", "redistribute",
    /// "kmeans".
    std::map<std::string, double> phaseSeconds;
    /// Aggregate runtime statistics of the SPMD run (modeled comm time,
    /// bytes, per-rank CPU time). Includes the diagnostic result gather.
    par::RunStats runStats;
    /// Modeled parallel time of the partitioning pipeline alone (max-rank
    /// CPU + modeled comm up to the end of k-means, excluding the
    /// diagnostic gather) — the number comparable to the paper's timings.
    double modeledSeconds = 0.0;
};

/// Partition `points` into k blocks with `ranks` simulated MPI processes.
/// `weights` may be empty (unit weights).
template <int D>
GeographerResult partitionGeographer(std::span<const Point<D>> points,
                                     std::span<const double> weights, std::int32_t k,
                                     int ranks, const Settings& settings,
                                     par::CostModel model = {});

extern template GeographerResult partitionGeographer<2>(std::span<const Point2>,
                                                        std::span<const double>, std::int32_t,
                                                        int, const Settings&, par::CostModel);
extern template GeographerResult partitionGeographer<3>(std::span<const Point3>,
                                                        std::span<const double>, std::int32_t,
                                                        int, const Settings&, par::CostModel);

}  // namespace geo::core
