#include "core/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "support/assert.hpp"
#include "support/binio.hpp"
#include "support/crc32.hpp"

namespace geo::core {

namespace {

/// Checkpoints hold k centers of small dimension — far below this. The cap
/// keeps a corrupt length field from driving a giant allocation.
constexpr std::size_t kMaxCheckpointBytes = std::size_t{1} << 30;

}  // namespace

std::vector<std::byte> encodeCheckpoint(const CheckpointState& state) {
    GEO_REQUIRE(state.dims > 0, "checkpoint needs dims > 0");
    GEO_REQUIRE(state.centerCoords.size() == state.influence.size() * state.dims,
                "checkpoint centerCoords size must be k * dims");

    binio::Writer payload;
    payload.u32(state.dims);
    payload.u32(static_cast<std::uint32_t>(state.k()));
    payload.u64(state.phase);
    payload.u64(state.step);
    payload.vec(state.centerCoords);
    payload.vec(state.influence);
    const std::vector<std::byte> body = std::move(payload).take();

    binio::Writer out;
    out.u32(kCheckpointMagic);
    out.u32(kCheckpointVersion);
    out.u64(body.size());
    out.bytes(body);
    out.u32(support::crc32(body));
    return std::move(out).take();
}

CheckpointState decodeCheckpoint(std::span<const std::byte> data) {
    GEO_REQUIRE(data.size() >= 16, "checkpoint truncated (missing header)");
    binio::Reader header(data);
    GEO_REQUIRE(header.u32() == kCheckpointMagic,
                "checkpoint magic mismatch (not a checkpoint file)");
    const std::uint32_t version = header.u32();
    GEO_REQUIRE(version == kCheckpointVersion,
                "unsupported checkpoint version " + std::to_string(version));
    const std::uint64_t len = header.u64();
    GEO_REQUIRE(len <= kMaxCheckpointBytes, "checkpoint payload length implausible");
    GEO_REQUIRE(header.remaining() >= len + sizeof(std::uint32_t),
                "checkpoint truncated (payload shorter than header claims)");
    const std::vector<std::byte> body = header.bytes(static_cast<std::size_t>(len));
    const std::uint32_t storedCrc = header.u32();
    header.expectEnd("checkpoint file");
    GEO_REQUIRE(support::crc32(body) == storedCrc,
                "checkpoint CRC mismatch (file corrupt)");

    binio::Reader r(body);
    CheckpointState state;
    state.dims = r.u32();
    const std::uint32_t k = r.u32();
    state.phase = r.u64();
    state.step = r.u64();
    GEO_REQUIRE(state.dims > 0, "checkpoint dims must be > 0");
    state.centerCoords = r.vec<double>(static_cast<std::size_t>(k) * state.dims);
    state.influence = r.vec<double>(k);
    r.expectEnd("checkpoint payload");
    return state;
}

void saveCheckpoint(const std::string& path, const CheckpointState& state) {
    const std::vector<std::byte> image = encodeCheckpoint(state);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw std::runtime_error("checkpoint: cannot open '" + tmp +
                                     "' for writing");
        out.write(reinterpret_cast<const char*>(image.data()),
                  static_cast<std::streamsize>(image.size()));
        out.flush();
        if (!out)
            throw std::runtime_error("checkpoint: write to '" + tmp + "' failed");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("checkpoint: rename to '" + path + "' failed");
    }
}

CheckpointState loadCheckpoint(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("checkpoint: cannot open '" + path + "'");
    const std::vector<std::byte> image =
        binio::readAll(in, kMaxCheckpointBytes + 64);
    return decodeCheckpoint(image);
}

}  // namespace geo::core
