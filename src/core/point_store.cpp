#include "core/point_store.hpp"

#include <algorithm>

#include "par/parallel_for.hpp"
#include "support/assert.hpp"

namespace geo::core {

template <int D>
PointStore<D>::PointStore(std::span<const Point<D>> points,
                          std::span<const double> weights, std::uint64_t budgetBytes)
    : points_(points), weights_(weights), budget_(budgetBytes) {
    GEO_REQUIRE(weights_.empty() || weights_.size() == points_.size(),
                "weights must be empty or match points");
}

template <int D>
void PointStore<D>::setActive(std::span<const std::size_t> order,
                              std::size_t activeCount, int threads) {
    GEO_REQUIRE(activeCount <= order.size() && activeCount <= points_.size(),
                "active count exceeds available points");
    order_ = order.first(activeCount);
    active_ = activeCount;

    // Active bounding box: per-worker partial boxes merged serially — box
    // merge is exact coordinate min/max, so the result is thread-count
    // independent.
    box_ = Box<D>::empty();
    if (active_ > 0) {
        std::vector<Box<D>> partial(static_cast<std::size_t>(std::max(1, threads)),
                                    Box<D>::empty());
        par::parallelFor(threads, active_,
                         [&](std::size_t i0, std::size_t i1, int worker) {
                             Box<D> bb = Box<D>::empty();
                             for (std::size_t i = i0; i < i1; ++i)
                                 bb.extend(points_[order_[i]]);
                             partial[static_cast<std::size_t>(worker)] = bb;
                         });
        for (const auto& bb : partial)
            if (bb.valid()) box_.extend(bb);
    }

    // Wave geometry: whole set resident when it fits the budget; otherwise
    // budget-sized waves rounded down to whole tiles (clamped up to one
    // tile, so a sub-tile budget still makes progress).
    resident_ = budget_ == 0 || budget_ >= kBytesPerPoint * active_;
    if (resident_) {
        wavePoints_ = active_;
    } else {
        const auto budgetPoints = static_cast<std::size_t>(budget_ / kBytesPerPoint);
        wavePoints_ = std::max(kTilePoints, budgetPoints / kTilePoints * kTilePoints);
    }
    waveCount_ = active_ == 0 || wavePoints_ == 0
                     ? 0
                     : (active_ + wavePoints_ - 1) / wavePoints_;
    loadedWave_ = kNoWave;
    waveFilled_.assign(waveCount_, 0);

    const std::size_t capacity = std::min(wavePoints_, active_);
    for (int d = 0; d < D; ++d) sx_[static_cast<std::size_t>(d)].resize(capacity);
    sw_.resize(capacity);
    acc_.residentBytes = kBytesPerPoint * capacity;
    acc_.peakResidentBytes = std::max(acc_.peakResidentBytes, acc_.residentBytes);

    if (resident_ && active_ > 0) {
        fill(0, active_, threads);
        acc_.tileFills += (active_ + kTilePoints - 1) / kTilePoints;
        waveFilled_[0] = 1;
        loadedWave_ = 0;
    }
}

template <int D>
typename PointStore<D>::WaveView PointStore<D>::wave(std::size_t w, int threads) {
    GEO_REQUIRE(w < waveCount_, "wave index out of range");
    const std::size_t begin = w * wavePoints_;
    const std::size_t count = std::min(active_ - begin, wavePoints_);
    if (loadedWave_ != w) {
        fill(begin, count, threads);
        const std::uint64_t tiles = (count + kTilePoints - 1) / kTilePoints;
        acc_.tileFills += tiles;
        if (waveFilled_[w] != 0) acc_.spilledTiles += tiles;
        waveFilled_[w] = 1;
        loadedWave_ = w;
    }
    WaveView view;
    view.begin = begin;
    view.count = count;
    for (int d = 0; d < D; ++d)
        view.x[static_cast<std::size_t>(d)] = sx_[static_cast<std::size_t>(d)].data();
    view.weight = sw_.data();
    return view;
}

template <int D>
void PointStore<D>::fill(std::size_t begin, std::size_t count, int threads) {
    par::parallelFor(threads, count, [&](std::size_t j0, std::size_t j1, int) {
        for (std::size_t j = j0; j < j1; ++j) {
            const std::size_t p = order_[begin + j];
            const Point<D>& pt = points_[p];
            for (int d = 0; d < D; ++d) sx_[static_cast<std::size_t>(d)][j] = pt[d];
            sw_[j] = weights_.empty() ? 1.0 : weights_[p];
        }
    });
}

template class PointStore<2>;
template class PointStore<3>;

}  // namespace geo::core
