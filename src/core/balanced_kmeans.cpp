#include "core/balanced_kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/assign_kernel.hpp"
#include "geometry/box.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace geo::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

template <int D>
class BalancedKMeansRun {
public:
    BalancedKMeansRun(par::Comm& comm, std::span<const Point<D>> points,
                      std::span<const double> weights, std::vector<Point<D>> centers,
                      const Settings& settings)
        : comm_(comm),
          points_(points),
          weights_(weights),
          settings_(settings),
          k_(static_cast<std::int32_t>(centers.size())),
          centers_(std::move(centers)),
          engine_(points_, weights_, settings_, k_) {
        GEO_REQUIRE(k_ >= 1, "need at least one center");
        GEO_REQUIRE(weights_.empty() || weights_.size() == points_.size(),
                    "weights must be empty or match points");
        // Block size targets: uniform, or user-provided fractions
        // (heterogeneous architectures, paper footnote 1).
        if (settings_.targetFractions.empty()) {
            targetShare_.assign(static_cast<std::size_t>(k_),
                                1.0 / static_cast<double>(k_));
        } else {
            GEO_REQUIRE(static_cast<std::int32_t>(settings_.targetFractions.size()) == k_,
                        "need one target fraction per block");
            double sum = 0.0;
            for (const double f : settings_.targetFractions) {
                GEO_REQUIRE(f > 0.0, "target fractions must be positive");
                sum += f;
            }
            targetShare_.resize(static_cast<std::size_t>(k_));
            for (std::int32_t c = 0; c < k_; ++c)
                targetShare_[static_cast<std::size_t>(c)] =
                    settings_.targetFractions[static_cast<std::size_t>(c)] / sum;
        }
        const std::size_t n = points_.size();
        if (settings_.initialInfluence.empty()) {
            influence_.assign(static_cast<std::size_t>(k_), 1.0);
        } else {
            // Warm start: resume from the influence state of a previous run.
            GEO_REQUIRE(static_cast<std::int32_t>(settings_.initialInfluence.size()) == k_,
                        "need one initial influence value per block");
            for (const double inf : settings_.initialInfluence)
                GEO_REQUIRE(inf > 0.0, "initial influence values must be positive");
            influence_ = settings_.initialInfluence;
        }

        // Hoisted per-iteration buffers (reused across every round).
        const auto ks = static_cast<std::size_t>(k_);
        sums_.resize(ks * (D + 1));
        localSizes_.resize(ks);
        globalSizes_.resize(ks);
        delta_.resize(ks);
        ratio_.resize(ks);
        shift_.resize(ks);
        influenceBefore_.resize(ks);
        freshCenters_.resize(ks);

        // Random local permutation for the sampled initialization.
        order_.resize(n);
        std::iota(order_.begin(), order_.end(), std::size_t{0});
        if (settings_.sampledInitialization) {
            Xoshiro256 rng(settings_.seed ^
                           (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(comm_.rank() + 1)));
            for (std::size_t i = n; i > 1; --i)
                std::swap(order_[i - 1], order_[rng.below(i)]);
            sampleSize_ = std::min<std::size_t>(
                static_cast<std::size_t>(std::max(1, settings_.initialSampleSize)), n);
        } else {
            sampleSize_ = n;
        }

        // Scale for the convergence threshold: expected cluster radius.
        Box<D> bb = Box<D>::around(points_);
        // Global bounding box (some ranks may hold few/no points).
        std::array<double, 2 * D> lohi;
        for (int i = 0; i < D; ++i) {
            lohi[static_cast<std::size_t>(i)] = bb.valid() ? bb.lo[i] : kInf;
            lohi[static_cast<std::size_t>(D + i)] = bb.valid() ? -bb.hi[i] : kInf;
        }
        comm_.allreduceMin(std::span<double>(lohi.data(), lohi.size()));
        for (int i = 0; i < D; ++i) {
            globalBox_.lo[i] = lohi[static_cast<std::size_t>(i)];
            globalBox_.hi[i] = -lohi[static_cast<std::size_t>(D + i)];
        }
        clusterScale_ = expectedClusterRadius(globalBox_.diagonal(), k_, D);
        deltaThreshold_ = settings_.deltaThresholdFactor * clusterScale_;
    }

    KMeansOutcome<D> run() {
        KMeansOutcome<D> out;
        const std::size_t n = points_.size();
        double imbalanceNow = kInf;
        bool converged = false;

        for (int iter = 0; iter < settings_.maxIterations; ++iter) {
            counters_.outerIterations = iter + 1;
            imbalanceNow = assignAndBalance();

            // New centers: weighted mean of assigned (active) points,
            // computed with one global reduction (Alg. 2 line 13). The
            // per-cluster sums run through the engine's threaded
            // block-ordered kernel over its SoA mirror of the active set.
            Timer updateTimer;
            engine_.updateCenters(sums_);
            comm_.allreduceSum(std::span<double>(sums_));

            freshCenters_ = centers_;
            std::fill(delta_.begin(), delta_.end(), 0.0);
            double maxDelta = 0.0;
            for (std::int32_t c = 0; c < k_; ++c) {
                const auto base = static_cast<std::size_t>(c) * (D + 1);
                const double w = sums_[base + D];
                if (w <= 0.0) continue;  // empty cluster keeps its center
                Point<D> fresh;
                for (int d = 0; d < D; ++d) fresh[d] = sums_[base + static_cast<std::size_t>(d)] / w;
                delta_[static_cast<std::size_t>(c)] =
                    distance(fresh, centers_[static_cast<std::size_t>(c)]);
                maxDelta = std::max(maxDelta, delta_[static_cast<std::size_t>(c)]);
                freshCenters_[static_cast<std::size_t>(c)] = fresh;
            }

            const bool sampleComplete = (comm_.allreduceMin<std::uint64_t>(
                                             sampleSize_ >= n ? 1 : 0) == 1);
            if (sampleComplete && maxDelta < deltaThreshold_) {
                // Alg. 2 line 14: return the assignment as produced by the
                // last AssignAndBalance, with the centers it used — the
                // assignment stays an exact weighted-Voronoi partition of
                // the returned (centers, influence) state.
                converged = true;
                updateSeconds_ += updateTimer.seconds();
                break;
            }
            std::swap(centers_, freshCenters_);

            // Influence erosion (Eq. 2–3): regress influence towards 1 as a
            // sigmoid of the moved distance over the mean cluster diameter.
            influenceBefore_ = influence_;
            if (settings_.influenceErosion) {
                const double beta = std::max(clusterScale_, 1e-300);
                for (std::int32_t c = 0; c < k_; ++c) {
                    const double x = delta_[static_cast<std::size_t>(c)] / beta;
                    const double alpha = 2.0 / (1.0 + std::exp(-x)) - 1.0;  // in [0, 1)
                    auto& inf = influence_[static_cast<std::size_t>(c)];
                    inf = std::exp((1.0 - alpha) * std::log(inf));
                }
            }

            // Centers moved by delta (and influence possibly eroded):
            // conservative Eq. 4–5 relaxation, O(k) — the per-point work
            // happens lazily when a point is next touched.
            for (std::int32_t c = 0; c < k_; ++c) {
                const auto ci = static_cast<std::size_t>(c);
                ratio_[ci] = influenceBefore_[ci] / influence_[ci];
                shift_[ci] = delta_[ci] / influence_[ci];
            }
            engine_.pushMoveEpoch(ratio_, shift_);
            updateSeconds_ += updateTimer.seconds();

            if (sampleSize_ < n) sampleSize_ = std::min(n, sampleSize_ * 2);
        }

        // Grow to the full point set if sampling never got there and do one
        // final assign-and-balance so every point has a block and balance is
        // enforced on the complete input.
        if (sampleSize_ < n) {
            sampleSize_ = n;
            engine_.resetBounds();
            imbalanceNow = assignAndBalance();
        } else if (!converged) {
            imbalanceNow = assignAndBalance();
        }

        counters_.merge(engine_.counters());
        out.assignment = engine_.takeAssignment();
        out.centers = std::move(centers_);
        out.influence = std::move(influence_);
        out.assignmentInfluence = std::move(lastSweepInfluence_);
        out.imbalance = imbalanceNow;
        out.converged = converged;
        out.counters = counters_;
        out.assignSeconds = assignSeconds_;
        out.updateSeconds = updateSeconds_;
        return out;
    }

private:
    /// Algorithm 1: repeated assignment sweeps with influence adaptation
    /// until balance or maxBalanceIterations. Returns achieved imbalance.
    double assignAndBalance() {
        const Timer assignTimer;
        // Mirror the *active* local points into the engine's SoA arrays and
        // compute their bounding box (§4.4) — once per call, like the seed.
        engine_.setActive(order_, sampleSize_);

        double imb = kInf;
        for (int round = 0; round < settings_.maxBalanceIterations; ++round) {
            counters_.balanceIterations++;

            engine_.beginRound(centers_, influence_, engine_.activeBox());
            engine_.sweep(localSizes_);
            // The influence this sweep ran against — when the loop below
            // exits by exhaustion, adaptInfluence has already moved
            // influence_ past the state the (surviving) assignment is an
            // exact Voronoi partition of. KMeansOutcome reports both.
            lastSweepInfluence_.assign(influence_.begin(), influence_.end());

            globalSizes_ = localSizes_;
            comm_.allreduceSum(std::span<double>(globalSizes_));
            imb = imbalanceOf(globalSizes_);
            if (imb <= settings_.epsilon) break;

            adaptInfluence(globalSizes_);
        }
        assignSeconds_ += assignTimer.seconds();
        return imb;
    }

    /// Imbalance against the (possibly non-uniform) block size targets:
    /// max_c size_c / target_c − 1, with the paper's ceil rounding in the
    /// uniform case.
    double imbalanceOf(std::span<const double> globalSizes) const {
        const double total = std::accumulate(globalSizes.begin(), globalSizes.end(), 0.0);
        if (total <= 0.0) return 0.0;
        double worst = 0.0;
        const bool uniform = settings_.targetFractions.empty();
        for (std::int32_t c = 0; c < k_; ++c) {
            const double target =
                uniform ? std::ceil(total / static_cast<double>(k_))
                        : targetShare_[static_cast<std::size_t>(c)] * total;
            worst = std::max(worst, globalSizes[static_cast<std::size_t>(c)] /
                                        std::max(target, 1e-300));
        }
        return worst - 1.0;
    }

    /// Eq. 1 with the 5% cap: influence scales with the d-th root of the
    /// target/current size ratio. Replicated deterministically on all ranks.
    void adaptInfluence(std::span<const double> globalSizes) {
        const double total = std::accumulate(globalSizes.begin(), globalSizes.end(), 0.0);
        const double cap = settings_.influenceChangeCap;
        for (std::int32_t c = 0; c < k_; ++c) {
            const double target = targetShare_[static_cast<std::size_t>(c)] * total;
            const double size = globalSizes[static_cast<std::size_t>(c)];
            double factor;
            if (size <= 0.0) {
                factor = 1.0 + cap;  // empty cluster: attract as fast as allowed
            } else {
                const double gamma = target / size;
                factor = std::clamp(std::pow(gamma, 1.0 / static_cast<double>(D)),
                                    1.0 - cap, 1.0 + cap);
            }
            const double before = influence_[static_cast<std::size_t>(c)];
            influence_[static_cast<std::size_t>(c)] = before * factor;
            ratio_[static_cast<std::size_t>(c)] = before / influence_[static_cast<std::size_t>(c)];
        }
        engine_.pushInfluenceEpoch(ratio_);
    }

    par::Comm& comm_;
    std::span<const Point<D>> points_;
    std::span<const double> weights_;
    const Settings& settings_;
    std::int32_t k_;
    std::vector<double> targetShare_;
    std::vector<Point<D>> centers_;
    std::vector<double> influence_;
    AssignEngine<D> engine_;
    std::vector<std::size_t> order_;
    std::size_t sampleSize_ = 0;
    Box<D> globalBox_ = Box<D>::empty();
    double clusterScale_ = 1.0;
    double deltaThreshold_ = 0.0;
    KMeansCounters counters_;
    double assignSeconds_ = 0.0;
    double updateSeconds_ = 0.0;

    // Hoisted buffers (one allocation for the whole run).
    std::vector<double> sums_, localSizes_, globalSizes_;
    std::vector<double> delta_, ratio_, shift_, influenceBefore_;
    std::vector<double> lastSweepInfluence_;
    std::vector<Point<D>> freshCenters_;
};

}  // namespace

template <int D>
KMeansOutcome<D> balancedKMeans(par::Comm& comm, std::span<const Point<D>> points,
                                std::span<const double> weights,
                                std::vector<Point<D>> centers, const Settings& settings) {
    BalancedKMeansRun<D> run(comm, points, weights, std::move(centers), settings);
    return run.run();
}

template KMeansOutcome<2> balancedKMeans<2>(par::Comm&, std::span<const Point2>,
                                            std::span<const double>, std::vector<Point2>,
                                            const Settings&);
template KMeansOutcome<3> balancedKMeans<3>(par::Comm&, std::span<const Point3>,
                                            std::span<const double>, std::vector<Point3>,
                                            const Settings&);

}  // namespace geo::core
