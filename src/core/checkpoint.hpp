// Checkpoint/restart of warm partition state.
//
// A long repartitioning run (bench/repart_timeline, any driver that loops
// timesteps) carries exactly two kinds of state between steps:
//
//   1. the WARM STATE — the balanced-k-means centers and influence radii
//      the next step seeds from (repart::RepartState), and
//   2. a DETERMINISTIC CURSOR — which phase (scenario) and which step the
//      run is at. No RNG state is needed: scenarios regenerate their point
//      sets by advancing from the seed, so (cursor, warm state) fully
//      determines the rest of the run. That is what makes a resumed run
//      bitwise identical to an uninterrupted one.
//
// File format (all native byte order, like every binio surface):
//
//     [u32 magic 'GEOC'][u32 version][u64 payloadLen][payload][u32 crc32]
//
// with the CRC over the payload bytes only. The loader distinguishes its
// failure modes — wrong magic, unsupported version, truncation, CRC
// mismatch, and semantic size mismatches — because a recovery path that
// cannot tell "not a checkpoint" from "corrupt checkpoint" cannot decide
// whether restarting from scratch is safe.
//
// Writes are atomic: encode to `path.tmp`, fsync-free rename over `path`.
// A crash mid-write leaves the previous checkpoint intact, never a torn
// file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace geo::core {

constexpr std::uint32_t kCheckpointMagic = 0x47454F43;  // "GEOC"
constexpr std::uint32_t kCheckpointVersion = 1;

/// Warm partition state plus the deterministic cursor. Dimension-erased
/// (flattened coordinates) so one codec serves every D; callers reshape via
/// dims.
struct CheckpointState {
    std::uint32_t dims = 0;
    std::uint64_t phase = 0;  ///< outer unit (scenario index, config row, ...)
    std::uint64_t step = 0;   ///< next step to execute within the phase
    std::vector<double> centerCoords;  ///< k × dims, flattened row-major
    std::vector<double> influence;     ///< k influence radii

    [[nodiscard]] std::size_t k() const noexcept { return influence.size(); }
};

/// Encode to the framed format above (header + payload + CRC).
[[nodiscard]] std::vector<std::byte> encodeCheckpoint(const CheckpointState& state);

/// Decode and validate a full checkpoint file image. Throws
/// std::invalid_argument naming the failure: bad magic, bad version,
/// truncation, CRC mismatch, or inconsistent payload sizes.
[[nodiscard]] CheckpointState decodeCheckpoint(std::span<const std::byte> data);

/// Atomic save: write `path.tmp`, rename over `path`. Throws
/// std::runtime_error on I/O failure.
void saveCheckpoint(const std::string& path, const CheckpointState& state);

/// Load and decode `path`. Throws std::runtime_error when the file cannot
/// be read, std::invalid_argument when it is corrupt.
[[nodiscard]] CheckpointState loadCheckpoint(const std::string& path);

}  // namespace geo::core
