#include "core/assign_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "par/parallel_for.hpp"
#include "support/assert.hpp"

#if defined(__SSE2__)
#define GEO_ASSIGN_SSE2 1
#include <emmintrin.h>
#endif

namespace geo::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Points per cache block. Fixed (never derived from the thread count) so
/// the per-block size partials — and with them every floating-point sum the
/// sweep and the center update produce — are identical at any
/// Settings::threads. Must equal the PointStore tile so wave boundaries
/// always fall on block boundaries (the chunked-path bitwise guarantee).
constexpr std::size_t kAssignBlock = 1024;
static_assert(kAssignBlock == PointStore<2>::kTilePoints &&
              kAssignBlock == PointStore<3>::kTilePoints);

}  // namespace

template <int D>
AssignEngine<D>::AssignEngine(std::span<const Point<D>> points,
                              std::span<const double> weights,
                              const Settings& settings, std::int32_t k)
    : points_(points),
      weights_(weights),
      settings_(settings),
      k_(k),
      store_(points, weights, settings.resolvedMemoryBudget()) {
    GEO_REQUIRE(k_ >= 1, "need at least one center");
    GEO_REQUIRE(weights_.empty() || weights_.size() == points_.size(),
                "weights must be empty or match points");
    assignment_.assign(points_.size(), -1);
    ub_.assign(points_.size(), kInf);
    lb_.assign(points_.size(), 0.0);
    epoch_.assign(points_.size(), 0);
    scratch_.resize(static_cast<std::size_t>(settings_.resolvedThreads()));
}

template <int D>
void AssignEngine<D>::setActive(std::span<const std::size_t> order,
                                std::size_t activeCount) {
    store_.setActive(order, activeCount, settings_.resolvedThreads());
    recordStoreCounters();
}

/// Surface the store's accounting through KMeansCounters. The store totals
/// are cumulative over its lifetime, so they are assigned (peaks via max),
/// not added — merge() across engines then maxes peaks and sums spills.
template <int D>
void AssignEngine<D>::recordStoreCounters() {
    const auto& acc = store_.accounting();
    counters_.peakTileBytes = std::max(counters_.peakTileBytes, acc.peakResidentBytes);
    counters_.residentBytes = acc.residentBytes;
    counters_.spilledTiles = acc.spilledTiles;
}

template <int D>
void AssignEngine<D>::beginRound(std::span<const Point<D>> centers,
                                 std::span<const double> influence,
                                 const Box<D>& activeBox) {
    GEO_REQUIRE(static_cast<std::int32_t>(centers.size()) == k_ &&
                    static_cast<std::int32_t>(influence.size()) == k_,
                "need one center and one influence value per cluster");
    centers_ = centers;
    influence_ = influence;
    if (!settings_.referenceAssignment) {
        invInfluence2_.resize(static_cast<std::size_t>(k_));
        for (std::int32_t c = 0; c < k_; ++c) {
            const double inf = influence_[static_cast<std::size_t>(c)];
            invInfluence2_[static_cast<std::size_t>(c)] = 1.0 / (inf * inf);
        }
    }
    sortedCenters_.resize(static_cast<std::size_t>(k_));
    std::iota(sortedCenters_.begin(), sortedCenters_.end(), 0);
    // The stale-key guard: keys are valid only when computed *this round*
    // against *this round's* box. A round with an invalid box (e.g. no
    // active points) must fall back to the unpruned scan — consulting keys
    // left over from an earlier round against the freshly reset identity
    // order would break the "remaining centers cannot win" argument and can
    // assign a point to the wrong cluster.
    keysValid_ = false;
    if (settings_.boundingBoxPruning && activeBox.valid()) {
        centerKey_.resize(static_cast<std::size_t>(k_));
        for (std::int32_t c = 0; c < k_; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            centerKey_[ci] = settings_.referenceAssignment
                                 ? activeBox.minDistance(centers_[ci]) / influence_[ci]
                                 : activeBox.minSquaredDistance(centers_[ci]) *
                                       invInfluence2_[ci];
        }
        std::sort(sortedCenters_.begin(), sortedCenters_.end(),
                  [&](std::int32_t a, std::int32_t b) {
                      return centerKey_[static_cast<std::size_t>(a)] <
                             centerKey_[static_cast<std::size_t>(b)];
                  });
        keysValid_ = true;
    }
    if (settings_.useKdTree) tree_.rebuild(centers_, influence_);
}

template <int D>
void AssignEngine<D>::sweep(std::span<double> localSizes) {
    GEO_REQUIRE(static_cast<std::int32_t>(localSizes.size()) == k_,
                "localSizes must have one entry per cluster");
    std::fill(localSizes.begin(), localSizes.end(), 0.0);
    const std::size_t active = store_.activeCount();
    if (active == 0) return;
    GEO_CHECK(!centers_.empty(), "beginRound must precede sweep");

    const auto stride = static_cast<std::size_t>(k_);
    const std::size_t waveBlocks =
        (std::min(store_.wavePoints(), active) + kAssignBlock - 1) / kAssignBlock;
    blockSizes_.resize(waveBlocks * stride);
    const int threads = settings_.resolvedThreads();
    if (scratch_.size() < static_cast<std::size_t>(threads))
        scratch_.resize(static_cast<std::size_t>(threads));

    // Waves in ascending order, each wave's blocks in parallel; folding the
    // per-block partials wave-by-wave in ascending block order is the same
    // left fold the resident single-wave path performs, so localSizes is
    // bitwise identical at every budget and thread count.
    for (std::size_t w = 0; w < store_.waveCount(); ++w) {
        const auto wave = store_.wave(w, threads);
        const std::size_t blocks = (wave.count + kAssignBlock - 1) / kAssignBlock;
        par::parallelFor(threads, blocks,
                         [&](std::size_t b0, std::size_t b1, int worker) {
                             auto& scratch = scratch_[static_cast<std::size_t>(worker)];
                             for (std::size_t b = b0; b < b1; ++b)
                                 processBlock(wave, b, scratch, &blockSizes_[b * stride]);
                         });
        for (std::size_t b = 0; b < blocks; ++b)
            for (std::size_t c = 0; c < stride; ++c)
                localSizes[c] += blockSizes_[b * stride + c];
    }
    // Counter merges are integer sums — order-independent.
    for (auto& scratch : scratch_) {
        counters_.merge(scratch.counters);
        scratch.counters = KMeansCounters{};
    }
    recordStoreCounters();
}

template <int D>
void AssignEngine<D>::updateCenters(std::span<double> sums) {
    const auto stride = static_cast<std::size_t>(k_) * (D + 1);
    GEO_REQUIRE(sums.size() == stride, "sums must be k*(D+1) wide");
    std::fill(sums.begin(), sums.end(), 0.0);
    const std::size_t active = store_.activeCount();
    if (active == 0) return;

    const std::size_t waveBlocks =
        (std::min(store_.wavePoints(), active) + kAssignBlock - 1) / kAssignBlock;
    blockSums_.resize(waveBlocks * stride);
    const int threads = settings_.resolvedThreads();
    const std::size_t* ids = store_.ids().data();
    // Same wave-then-block left fold as sweep(): bitwise identical at every
    // budget and thread count.
    for (std::size_t w = 0; w < store_.waveCount(); ++w) {
        const auto wave = store_.wave(w, threads);
        const std::size_t blocks = (wave.count + kAssignBlock - 1) / kAssignBlock;
        par::parallelFor(
            threads, blocks, [&](std::size_t b0, std::size_t b1, int) {
                for (std::size_t b = b0; b < b1; ++b) {
                    double* partial = &blockSums_[b * stride];
                    std::fill(partial, partial + stride, 0.0);
                    const std::size_t j0 = b * kAssignBlock;
                    const std::size_t j1 = std::min(wave.count, j0 + kAssignBlock);
                    for (std::size_t j = j0; j < j1; ++j) {
                        const auto c = static_cast<std::size_t>(
                            assignment_[ids[wave.begin + j]]);
                        const double weight = wave.weight[j];
                        double* row = partial + c * (D + 1);
                        for (int d = 0; d < D; ++d)
                            row[d] += weight * wave.x[static_cast<std::size_t>(d)][j];
                        row[D] += weight;
                    }
                }
            });
        for (std::size_t b = 0; b < blocks; ++b)
            for (std::size_t c = 0; c < stride; ++c)
                sums[c] += blockSums_[b * stride + c];
    }
    recordStoreCounters();
}

template <int D>
void AssignEngine<D>::processBlock(const typename PointStore<D>::WaveView& wave,
                                   std::size_t block, Scratch& scratch,
                                   double* blockSizes) {
    const std::size_t j0 = block * kAssignBlock;
    const std::size_t j1 = std::min(wave.count, j0 + kAssignBlock);
    const std::size_t* ids = store_.ids().data();
    scratch.pointIdx.clear();
    for (int d = 0; d < D; ++d) scratch.gx[static_cast<std::size_t>(d)].clear();

    const bool reference = settings_.referenceAssignment;
    for (std::size_t j = j0; j < j1; ++j) {
        const std::size_t p = ids[wave.begin + j];
        scratch.counters.pointEvaluations++;
        if (settings_.hamerlyBounds && assignment_[p] >= 0) {
            applyEpochs(p, scratch.counters);
            if (ub_[p] < lb_[p]) {
                scratch.counters.boundSkips++;  // membership provably unchanged
                continue;
            }
        }
        scratch.pointIdx.push_back(p);
        if (!reference && !settings_.useKdTree)
            for (int d = 0; d < D; ++d)
                scratch.gx[static_cast<std::size_t>(d)].push_back(
                    wave.x[static_cast<std::size_t>(d)][j]);
    }

    if (!scratch.pointIdx.empty()) {
        if (reference) {
            for (const std::size_t p : scratch.pointIdx)
                assignPointReference(p, scratch.counters);
        } else if (settings_.useKdTree) {
            const std::uint32_t cur = currentEpoch();
            for (const std::size_t p : scratch.pointIdx) {
                const auto q = tree_.queryNearestIds(points_[p]);
                assignment_[p] = q.best;
                const auto bc = static_cast<std::size_t>(q.best);
                ub_[p] = distance(points_[p], centers_[bc]) / influence_[bc];
                if (q.second >= 0) {
                    const auto sc = static_cast<std::size_t>(q.second);
                    lb_[p] = distance(points_[p], centers_[sc]) / influence_[sc];
                } else {
                    lb_[p] = kInf;
                }
                epoch_[p] = cur;
            }
        } else {
            batchKernel(scratch, scratch.pointIdx.size());
        }
    }

    // Per-block weighted sizes, accumulated in slot order within the block.
    for (std::int32_t c = 0; c < k_; ++c) blockSizes[c] = 0.0;
    for (std::size_t j = j0; j < j1; ++j)
        blockSizes[assignment_[ids[wave.begin + j]]] += wave.weight[j];
}

namespace {
/// How many sorted centers the batch kernel scans between lane-retirement
/// passes. A lane (point) is finished as soon as the next center's pruning
/// key exceeds its second-best — the per-point break of the scalar path —
/// so the interval only bounds how many extra candidates a finished lane
/// may see before it is compacted away.
constexpr std::size_t kRetireInterval = 4;
}  // namespace

/// Centers-outer, lanes-inner squared-domain scan over one gathered block.
/// The inner loop does unconditional loads/stores with ternary selects (no
/// control flow) so -O3 can if-convert and vectorize it; center ids travel
/// as doubles so every lane of the select has one vector width. Lanes whose
/// per-point pruning break has fired are materialized and compacted out
/// every kRetireInterval centers, keeping the live lanes contiguous.
template <int D>
void AssignEngine<D>::batchKernel(Scratch& scratch, std::size_t m) {
    scratch.best2.assign(m, kInf);
    scratch.second2.assign(m, kInf);
    scratch.bestC.assign(m, -1.0);
    scratch.secondC.assign(m, -1.0);
    const std::uint32_t cur = currentEpoch();

    // Materialize one lane: recompute the Hamerly bounds with the exact
    // scalar expression of the reference path, so ub/lb agree bitwise
    // across modes (the only sqrts on the fast path — at most two per
    // assigned point).
    const auto materialize = [&](std::size_t j) {
        const std::size_t p = scratch.pointIdx[j];
        const auto bc = static_cast<std::int32_t>(scratch.bestC[j]);
        GEO_CHECK(bc >= 0, "assignment found no center");
        assignment_[p] = bc;
        ub_[p] = distance(points_[p], centers_[static_cast<std::size_t>(bc)]) /
                 influence_[static_cast<std::size_t>(bc)];
        const auto sc = static_cast<std::int32_t>(scratch.secondC[j]);
        lb_[p] = sc >= 0
                     ? distance(points_[p], centers_[static_cast<std::size_t>(sc)]) /
                           influence_[static_cast<std::size_t>(sc)]
                     : kInf;
        epoch_[p] = cur;
    };

    std::size_t live = m;
    const std::size_t kCount = sortedCenters_.size();
    for (std::size_t ci = 0; ci < kCount && live > 0; ++ci) {
        const std::int32_t c = sortedCenters_[ci];
        std::array<double, static_cast<std::size_t>(D)> cx;
        for (int d = 0; d < D; ++d)
            cx[static_cast<std::size_t>(d)] = centers_[static_cast<std::size_t>(c)][d];
        const double inv = invInfluence2_[static_cast<std::size_t>(c)];
        const auto cd = static_cast<double>(c);

        double* __restrict best2 = scratch.best2.data();
        double* __restrict second2 = scratch.second2.data();
        double* __restrict bestC = scratch.bestC.data();
        double* __restrict secondC = scratch.secondC.data();
        std::array<const double*, static_cast<std::size_t>(D)> gx;
        for (int d = 0; d < D; ++d)
            gx[static_cast<std::size_t>(d)] =
                scratch.gx[static_cast<std::size_t>(d)].data();
        // Branchless best/second update per lane: the value lanes are pure
        // min/max (second' = min(os, max(e2, ob))), the id lanes flat
        // selects. The SSE2 body below is this exact computation two lanes
        // at a time (minpd/maxpd + compare-mask selects); the tie behaviour
        // of minpd/maxpd only ever picks between bitwise-equal values, so
        // both bodies match the scalar reference's strict-< logic exactly.
        const auto scalarLanes = [&](std::size_t from, std::size_t to) {
            for (std::size_t j = from; j < to; ++j) {
                double d2 = 0.0;
                for (int d = 0; d < D; ++d) {
                    const double diff = gx[static_cast<std::size_t>(d)][j] -
                                        cx[static_cast<std::size_t>(d)];
                    d2 += diff * diff;
                }
                const double e2 = d2 * inv;
                const double ob = best2[j], os = second2[j];
                const double obc = bestC[j], osc = secondC[j];
                best2[j] = std::min(e2, ob);
                second2[j] = std::min(os, std::max(e2, ob));
                const double demoted = e2 < os ? cd : osc;
                bestC[j] = e2 < ob ? cd : obc;
                secondC[j] = e2 < ob ? obc : demoted;
            }
        };
#if GEO_ASSIGN_SSE2
        const __m128d cdv = _mm_set1_pd(cd);
        const __m128d invv = _mm_set1_pd(inv);
        std::size_t j = 0;
        for (; j + 2 <= live; j += 2) {
            __m128d d2 = _mm_setzero_pd();
            for (int d = 0; d < D; ++d) {
                const __m128d diff =
                    _mm_sub_pd(_mm_loadu_pd(gx[static_cast<std::size_t>(d)] + j),
                               _mm_set1_pd(cx[static_cast<std::size_t>(d)]));
                d2 = _mm_add_pd(d2, _mm_mul_pd(diff, diff));
            }
            const __m128d e2 = _mm_mul_pd(d2, invv);
            const __m128d ob = _mm_loadu_pd(best2 + j);
            const __m128d os = _mm_loadu_pd(second2 + j);
            const __m128d obc = _mm_loadu_pd(bestC + j);
            const __m128d osc = _mm_loadu_pd(secondC + j);
            const __m128d mb = _mm_cmplt_pd(e2, ob);
            const __m128d ms = _mm_cmplt_pd(e2, os);
            _mm_storeu_pd(best2 + j, _mm_min_pd(e2, ob));
            _mm_storeu_pd(second2 + j, _mm_min_pd(os, _mm_max_pd(e2, ob)));
            const __m128d demoted =
                _mm_or_pd(_mm_and_pd(ms, cdv), _mm_andnot_pd(ms, osc));
            _mm_storeu_pd(bestC + j,
                          _mm_or_pd(_mm_and_pd(mb, cdv), _mm_andnot_pd(mb, obc)));
            _mm_storeu_pd(secondC + j,
                          _mm_or_pd(_mm_and_pd(mb, obc), _mm_andnot_pd(mb, demoted)));
        }
        scalarLanes(j, live);
#else
        scalarLanes(0, live);
#endif
        scratch.counters.distanceCalcs += live;
        scratch.counters.batchedDistanceCalcs += live;

        // Retire finished lanes. Keys are sorted ascending, so once
        // key[next] > second2[lane] holds, every remaining center fails the
        // scalar path's break test for that lane: its best/second are final.
        if (keysValid_ && ci + 1 < kCount &&
            ((ci % kRetireInterval) == kRetireInterval - 1 || ci + 2 == kCount)) {
            const double nextKey =
                centerKey_[static_cast<std::size_t>(sortedCenters_[ci + 1])];
            std::size_t w = 0;
            for (std::size_t j = 0; j < live; ++j) {
                if (nextKey > scratch.second2[j]) {
                    scratch.counters.bboxBreaks++;
                    materialize(j);
                    continue;
                }
                if (w != j) {
                    scratch.pointIdx[w] = scratch.pointIdx[j];
                    for (int d = 0; d < D; ++d)
                        scratch.gx[static_cast<std::size_t>(d)][w] =
                            scratch.gx[static_cast<std::size_t>(d)][j];
                    scratch.best2[w] = scratch.best2[j];
                    scratch.second2[w] = scratch.second2[j];
                    scratch.bestC[w] = scratch.bestC[j];
                    scratch.secondC[w] = scratch.secondC[j];
                }
                ++w;
            }
            live = w;
        }
    }
    for (std::size_t j = 0; j < live; ++j) materialize(j);
}

/// The seed implementation's inner loop, verbatim: per-candidate sqrt in
/// the effective-distance domain with the per-point pruning break.
template <int D>
void AssignEngine<D>::assignPointReference(std::size_t p, KMeansCounters& counters) {
    const std::uint32_t cur = currentEpoch();
    if (settings_.useKdTree) {
        const auto q = tree_.query(points_[p]);
        assignment_[p] = q.best;
        ub_[p] = q.bestDistance;
        lb_[p] = q.secondDistance;
        epoch_[p] = cur;
        return;
    }
    double best = kInf, second = kInf;
    std::int32_t bestC = -1;
    const Point<D>& pt = points_[p];
    for (std::size_t ci = 0; ci < sortedCenters_.size(); ++ci) {
        const std::int32_t c = sortedCenters_[ci];
        if (keysValid_ && centerKey_[static_cast<std::size_t>(c)] > second) {
            counters.bboxBreaks++;
            break;  // no remaining center can beat the second best
        }
        counters.distanceCalcs++;
        const double eDist = distance(pt, centers_[static_cast<std::size_t>(c)]) /
                             influence_[static_cast<std::size_t>(c)];
        if (eDist < best) {
            second = best;
            best = eDist;
            bestC = c;
        } else if (eDist < second) {
            second = eDist;
        }
    }
    GEO_CHECK(bestC >= 0, "assignment found no center");
    assignment_[p] = bestC;
    ub_[p] = best;
    lb_[p] = second;
    epoch_[p] = cur;
}

template <int D>
void AssignEngine<D>::applyEpochs(std::size_t p, KMeansCounters& counters) {
    const std::uint32_t cur = currentEpoch();
    std::uint32_t e = epoch_[p];
    if (e == cur) return;
    const auto c = static_cast<std::size_t>(assignment_[p]);
    double ub = ub_[p], lb = lb_[p];
    counters.epochBoundApplications += cur - e;
    for (; e < cur; ++e) {
        const Epoch& ep = epochs_[e];
        if (ep.move) {
            ub = ub * ep.ratio[c] + ep.shift[c];
            lb = std::max(0.0, lb * ep.minRatio - ep.maxShift);
        } else {
            ub *= ep.ratio[c];
            lb *= ep.minRatio;
        }
    }
    ub_[p] = ub;
    lb_[p] = lb;
    epoch_[p] = cur;
}

template <int D>
void AssignEngine<D>::pushInfluenceEpoch(std::span<const double> ratio) {
    if (!settings_.hamerlyBounds) return;
    GEO_REQUIRE(static_cast<std::int32_t>(ratio.size()) == k_,
                "need one ratio per cluster");
    Epoch epoch;
    epoch.ratio.assign(ratio.begin(), ratio.end());
    epoch.minRatio = *std::min_element(ratio.begin(), ratio.end());
    epoch.move = false;
    epochs_.push_back(std::move(epoch));
}

template <int D>
void AssignEngine<D>::pushMoveEpoch(std::span<const double> ratio,
                                    std::span<const double> shift) {
    if (!settings_.hamerlyBounds) return;
    GEO_REQUIRE(static_cast<std::int32_t>(ratio.size()) == k_ &&
                    static_cast<std::int32_t>(shift.size()) == k_,
                "need one ratio and shift per cluster");
    Epoch epoch;
    epoch.ratio.assign(ratio.begin(), ratio.end());
    epoch.shift.assign(shift.begin(), shift.end());
    epoch.minRatio = *std::min_element(ratio.begin(), ratio.end());
    epoch.maxShift = *std::max_element(shift.begin(), shift.end());
    epoch.move = true;
    epochs_.push_back(std::move(epoch));
}

template <int D>
void AssignEngine<D>::resetBounds() {
    std::fill(ub_.begin(), ub_.end(), kInf);
    std::fill(lb_.begin(), lb_.end(), 0.0);
    // Every point is now current, so no logged epoch can ever be replayed
    // again — drop the log instead of retaining O(rounds · k) dead state.
    epochs_.clear();
    std::fill(epoch_.begin(), epoch_.end(), 0u);
}

template class AssignEngine<2>;
template class AssignEngine<3>;

}  // namespace geo::core
