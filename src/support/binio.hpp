// Bounds-checked binary encode/decode primitives.
//
// One set of helpers backs every binary surface of the system: the serving
// snapshot files (src/serve/snapshot.cpp) and the transport wire codec
// (src/par/transport/socket.cpp). Both face the same failure modes — a
// truncated stream, a hostile length field sized to force a giant
// allocation, trailing garbage after a well-formed prefix — so the
// validation lives here once:
//
//   * Reader never reads past the buffer: every fixed-size read and every
//     count-prefixed array read is checked against the bytes actually
//     remaining BEFORE any allocation sized by it. A corrupt count fails
//     with a clean error instead of an std::bad_alloc (or worse).
//   * vec<T>(count) additionally guards the count * sizeof(T) product, so
//     an overflowing length field cannot wrap into a small allocation.
//   * Decoders assert atEnd() when a message must be consumed exactly —
//     oversized input (valid prefix + trailing bytes) is an error, not
//     silently ignored data.
//
// Values are encoded in native byte order: snapshots are host-local files
// and the socket transport only spans one host (DESIGN.md §2), so a
// byte-swapping layer would be untestable dead code today. The format
// carries magic tags; a file moved across endianness fails the magic check.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <istream>
#include <span>
#include <type_traits>
#include <vector>

#include "support/assert.hpp"

namespace geo::binio {

/// Bounds-checked sequential decoder over an in-memory buffer. Throws
/// std::invalid_argument (via GEO_REQUIRE) on any attempt to read past the
/// end — the caller-facing signal for "truncated or corrupt input".
class Reader {
public:
    explicit Reader(std::span<const std::byte> data) : data_(data) {}

    [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
    [[nodiscard]] bool atEnd() const noexcept { return pos_ == data_.size(); }

    /// Remaining bytes as a view (does not advance).
    [[nodiscard]] std::span<const std::byte> rest() const noexcept {
        return data_.subspan(pos_);
    }

    template <typename T>
    [[nodiscard]] T raw() {
        static_assert(std::is_trivially_copyable_v<T>);
        GEO_REQUIRE(remaining() >= sizeof(T), "binary input truncated");
        T value;
        std::memcpy(&value, data_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return value;
    }

    [[nodiscard]] std::uint8_t u8() { return raw<std::uint8_t>(); }
    [[nodiscard]] std::uint32_t u32() { return raw<std::uint32_t>(); }
    [[nodiscard]] std::uint64_t u64() { return raw<std::uint64_t>(); }
    [[nodiscard]] std::int32_t i32() { return raw<std::int32_t>(); }
    [[nodiscard]] std::int64_t i64() { return raw<std::int64_t>(); }
    [[nodiscard]] double f64() { return raw<double>(); }

    /// `count` elements of T. The count is validated against the bytes
    /// actually remaining BEFORE the vector is allocated, and the byte size
    /// is computed overflow-safely, so a hostile count cannot trigger a
    /// giant or wrapped allocation.
    template <typename T>
    [[nodiscard]] std::vector<T> vec(std::size_t count) {
        static_assert(std::is_trivially_copyable_v<T>);
        GEO_REQUIRE(count <= remaining() / sizeof(T),
                    "binary input truncated (array exceeds remaining bytes)");
        std::vector<T> v(count);
        if (count > 0) {
            std::memcpy(v.data(), data_.data() + pos_, count * sizeof(T));
            pos_ += count * sizeof(T);
        }
        return v;
    }

    /// Raw byte run of explicit length.
    [[nodiscard]] std::vector<std::byte> bytes(std::size_t count) {
        return vec<std::byte>(count);
    }

    /// Skip `count` bytes (still bounds-checked).
    void skip(std::size_t count) {
        GEO_REQUIRE(count <= remaining(), "binary input truncated");
        pos_ += count;
    }

    /// Assert the buffer is fully consumed — rejects oversized input that
    /// carries trailing bytes after a well-formed message.
    void expectEnd(const char* what) const {
        GEO_REQUIRE(atEnd(), std::string(what) + " carries trailing bytes");
    }

private:
    std::span<const std::byte> data_;
    std::size_t pos_ = 0;
};

/// Append-only encoder mirroring Reader. take() moves the buffer out.
class Writer {
public:
    template <typename T>
    void raw(const T& value) {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto* p = reinterpret_cast<const std::byte*>(&value);
        out_.insert(out_.end(), p, p + sizeof(T));
    }

    void u8(std::uint8_t v) { raw(v); }
    void u32(std::uint32_t v) { raw(v); }
    void u64(std::uint64_t v) { raw(v); }
    void i32(std::int32_t v) { raw(v); }
    void i64(std::int64_t v) { raw(v); }
    void f64(double v) { raw(v); }

    void bytes(const void* data, std::size_t count) {
        const auto* p = static_cast<const std::byte*>(data);
        out_.insert(out_.end(), p, p + count);
    }
    void bytes(std::span<const std::byte> data) { bytes(data.data(), data.size()); }

    /// Element payload of a vector (no length prefix — callers encode the
    /// count explicitly so the decode side can validate it first).
    template <typename T>
    void vec(const std::vector<T>& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        if (!v.empty()) bytes(v.data(), v.size() * sizeof(T));
    }

    [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }
    [[nodiscard]] std::vector<std::byte> take() && { return std::move(out_); }
    [[nodiscard]] const std::vector<std::byte>& buffer() const noexcept { return out_; }

private:
    std::vector<std::byte> out_;
};

/// Slurp a stream into memory with an explicit size cap, reading in chunks
/// so an oversized input fails at the cap instead of after exhausting
/// memory. The cap is a REQUIRE: exceeding it reports "input too large"
/// rather than feeding a decoder an absurd buffer.
[[nodiscard]] inline std::vector<std::byte> readAll(std::istream& in,
                                                    std::size_t maxBytes) {
    std::vector<std::byte> buf;
    std::byte chunk[1 << 16];
    while (in.good()) {
        in.read(reinterpret_cast<char*>(chunk), sizeof(chunk));
        const auto got = static_cast<std::size_t>(in.gcount());
        if (got == 0) break;
        GEO_REQUIRE(buf.size() + got <= maxBytes, "binary input too large");
        buf.insert(buf.end(), chunk, chunk + got);
    }
    GEO_REQUIRE(in.eof(), "binary input stream failed mid-read");
    return buf;
}

}  // namespace geo::binio
