// Wall-clock timing helpers used by the benchmark harness and the
// component-breakdown instrumentation (§5.3.2 of the paper).
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace geo {

/// Simple monotonic stopwatch.
class Timer {
public:
    Timer() noexcept : start_(Clock::now()) {}

    void reset() noexcept { start_ = Clock::now(); }

    /// Elapsed seconds since construction or last reset().
    [[nodiscard]] double seconds() const noexcept {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/// Accumulates named phase timings (e.g. "sfc", "redistribute", "kmeans").
class PhaseTimer {
public:
    /// RAII scope: adds elapsed time to the named phase on destruction.
    class Scope {
    public:
        Scope(PhaseTimer& owner, std::string name)
            : owner_(owner), name_(std::move(name)) {}
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;
        ~Scope() { owner_.add(name_, timer_.seconds()); }

    private:
        PhaseTimer& owner_;
        std::string name_;
        Timer timer_;
    };

    [[nodiscard]] Scope scope(std::string name) { return Scope(*this, std::move(name)); }

    void add(const std::string& name, double seconds) { phases_[name] += seconds; }

    [[nodiscard]] double get(const std::string& name) const {
        auto it = phases_.find(name);
        return it == phases_.end() ? 0.0 : it->second;
    }

    [[nodiscard]] double total() const {
        double sum = 0.0;
        for (const auto& [name, t] : phases_) sum += t;
        return sum;
    }

    [[nodiscard]] const std::map<std::string, double>& phases() const { return phases_; }

    void clear() { phases_.clear(); }

private:
    std::map<std::string, double> phases_;
};

}  // namespace geo
