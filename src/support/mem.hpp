// Process memory introspection + memory-budget parsing.
//
// The chunked point pipeline (core/point_store.hpp) is budgeted in bytes;
// this header supplies the two sides of that contract: reading the budget
// (Settings::memoryBudgetBytes / the GEO_MEM_BUDGET environment variable,
// with K/M/G suffixes) and observing what the process actually used (current
// and peak RSS), which the BENCH_*.json writers record so the CI bench
// trajectory can assert a budgeted run stayed under its cap.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <string_view>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace geo::support {

/// Peak resident set size of this process in bytes (high-water mark since
/// process start — getrusage ru_maxrss, which Linux reports in KiB and
/// macOS in bytes). 0 on platforms without getrusage.
[[nodiscard]] inline std::uint64_t peakRssBytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
    rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss);
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
#else
    return 0;
#endif
}

/// Current resident set size in bytes (/proc/self/statm). 0 where /proc is
/// unavailable — callers treat it as "unknown", never as "no memory".
[[nodiscard]] inline std::uint64_t currentRssBytes() noexcept {
#if defined(__linux__)
    std::ifstream statm("/proc/self/statm");
    std::uint64_t sizePages = 0, residentPages = 0;
    if (!(statm >> sizePages >> residentPages)) return 0;
    const long page = sysconf(_SC_PAGESIZE);
    return residentPages * static_cast<std::uint64_t>(page > 0 ? page : 4096);
#else
    return 0;
#endif
}

/// Parse a byte count with an optional binary suffix: "0", "1048576",
/// "64K", "512M", "2G" (case-insensitive, optional trailing 'B').
/// Throws std::invalid_argument on anything else — a typoed budget must
/// fail loudly, not silently run unbudgeted.
[[nodiscard]] inline std::uint64_t parseMemBytes(std::string_view text) {
    std::size_t pos = 0;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos])) != 0)
        ++pos;
    if (pos == 0)
        throw std::invalid_argument("memory size must start with digits: '" +
                                    std::string(text) + "'");
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < pos; ++i) {
        const auto digit = static_cast<std::uint64_t>(text[i] - '0');
        if (value > (UINT64_MAX - digit) / 10)
            throw std::invalid_argument("memory size overflows: '" +
                                        std::string(text) + "'");
        value = value * 10 + digit;
    }
    std::string_view suffix = text.substr(pos);
    std::uint64_t multiplier = 1;
    if (!suffix.empty()) {
        switch (std::tolower(static_cast<unsigned char>(suffix[0]))) {
            case 'k': multiplier = std::uint64_t{1} << 10; break;
            case 'm': multiplier = std::uint64_t{1} << 20; break;
            case 'g': multiplier = std::uint64_t{1} << 30; break;
            default:
                throw std::invalid_argument("unknown memory suffix: '" +
                                            std::string(text) + "'");
        }
        suffix.remove_prefix(1);
        if (!suffix.empty() &&
            (suffix.size() > 1 ||
             std::tolower(static_cast<unsigned char>(suffix[0])) != 'b'))
            throw std::invalid_argument("unknown memory suffix: '" +
                                        std::string(text) + "'");
    }
    if (multiplier > 1 && value > UINT64_MAX / multiplier)
        throw std::invalid_argument("memory size overflows: '" +
                                    std::string(text) + "'");
    return value * multiplier;
}

/// The GEO_MEM_BUDGET environment variable as bytes; 0 (= unlimited) when
/// unset or empty. Deliberately NOT cached — geo_launch workers and the
/// precedence tests mutate the environment at runtime, mirroring
/// Settings::resolvedRanks.
[[nodiscard]] inline std::uint64_t envMemoryBudget() {
    const char* env = std::getenv("GEO_MEM_BUDGET");
    if (env == nullptr || *env == '\0') return 0;
    return parseMemBytes(env);
}

}  // namespace geo::support
