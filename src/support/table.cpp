#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace geo {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
    GEO_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::addRow(std::vector<std::string> cells) {
    GEO_REQUIRE(cells.size() == header_.size(), "row arity must match header");
    rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
    std::ostringstream os;
    os << std::setprecision(precision) << value;
    return os.str();
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
        }
        os << '\n';
    };
    emit(header_);
    std::size_t total = 0;
    for (auto w : width) total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) emit(row);
}

}  // namespace geo
