// Deterministic, fast pseudo-random number generation.
//
// All stochastic behaviour in the library flows through these generators so
// that every experiment is reproducible from a single 64-bit seed.
// Xoshiro256** is the workhorse; SplitMix64 seeds it and derives independent
// per-rank streams.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace geo {

/// SplitMix64: tiny generator used to expand one seed into many.
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// Xoshiro256**: high-quality 64-bit generator (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator so it plugs into <random>.
class Xoshiro256 {
public:
    using result_type = std::uint64_t;

    explicit Xoshiro256(std::uint64_t seed) noexcept {
        SplitMix64 sm(seed);
        for (auto& s : state_) s = sm.next();
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double uniform() noexcept {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept {
        return lo + (hi - lo) * uniform();
    }

    /// Uniform integer in [0, n). n must be > 0.
    std::uint64_t below(std::uint64_t n) noexcept {
        // Lemire's nearly-divisionless bounded generation.
        __uint128_t m = static_cast<__uint128_t>((*this)()) * n;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < n) {
            const std::uint64_t threshold = (0 - n) % n;
            while (lo < threshold) {
                m = static_cast<__uint128_t>((*this)()) * n;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Derive an independent stream, e.g. one per logical rank.
    Xoshiro256 split(std::uint64_t streamId) noexcept {
        SplitMix64 sm((*this)() ^ (0x9e3779b97f4a7c15ULL * (streamId + 1)));
        Xoshiro256 out(sm.next());
        return out;
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

}  // namespace geo
