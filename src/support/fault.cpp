#include "support/fault.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace geo::support {

namespace {

long parseNumber(const std::string& value, const char* what) {
    char* end = nullptr;
    const long v = std::strtol(value.c_str(), &end, 10);
    if (!end || *end != '\0' || value.empty())
        throw std::invalid_argument(std::string("GEO_FAULT: bad ") + what + " '" +
                                    value + "'");
    return v;
}

}  // namespace

std::optional<FaultSpec> parseFaultSpec(const char* spec) {
    if (!spec || *spec == '\0') return std::nullopt;
    const std::string text(spec);

    FaultSpec out;
    std::size_t pos = text.find(':');
    const std::string action = text.substr(0, pos);
    if (action == "kill") {
        out.action = FaultSpec::Action::Kill;
    } else if (action == "exit") {
        out.action = FaultSpec::Action::Exit;
    } else if (action == "delay") {
        out.action = FaultSpec::Action::Delay;
    } else if (action == "drop") {
        out.action = FaultSpec::Action::Drop;
    } else {
        throw std::invalid_argument("GEO_FAULT: unknown action '" + action +
                                    "' (use kill, exit, delay, or drop)");
    }

    while (pos != std::string::npos) {
        const std::size_t start = pos + 1;
        pos = text.find(':', start);
        const std::string field = text.substr(
            start, pos == std::string::npos ? std::string::npos : pos - start);
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument("GEO_FAULT: field '" + field +
                                        "' is not key=value");
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (key == "rank") {
            out.rank = static_cast<int>(parseNumber(value, "rank"));
        } else if (key == "op") {
            out.op = value;
        } else if (key == "seq") {
            out.seq = static_cast<std::uint64_t>(parseNumber(value, "seq"));
        } else if (key == "code") {
            out.exitCode = static_cast<int>(parseNumber(value, "code"));
        } else if (key == "ms") {
            out.delayMs = static_cast<int>(parseNumber(value, "ms"));
        } else if (key == "once") {
            out.onceMarker = value;
        } else {
            throw std::invalid_argument("GEO_FAULT: unknown key '" + key + "'");
        }
    }
    return out;
}

namespace {

/// GEO_FAULT parsed once per process. A malformed spec aborts on first use:
/// a chaos run with a typoed fault must not silently run fault-free.
const std::optional<FaultSpec>& processFaultSpec() {
    static const std::optional<FaultSpec> spec = [] {
        try {
            return parseFaultSpec(std::getenv("GEO_FAULT"));
        } catch (const std::exception& e) {
            std::fprintf(stderr, "[geo-fault] %s\n", e.what());
            std::abort();
        }
    }();
    return spec;
}

int envRank() noexcept {
    const char* env = std::getenv("GEO_RANK");
    return env && *env != '\0' ? std::atoi(env) : -1;
}

/// Returns true when this process claims the one-shot marker (file absent
/// and created now); O_EXCL makes the claim atomic across ranks sharing a
/// marker path.
bool claimOnceMarker(const std::string& path) {
    const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0) return false;  // already claimed (or unreachable path)
    ::close(fd);
    return true;
}

}  // namespace

void faultPoint(const char* op, std::uint64_t seq, int rank) {
    const auto& spec = processFaultSpec();
    if (!spec) return;
    if (spec->rank >= 0 && spec->rank != rank) return;
    if (!spec->op.empty() && spec->op != op) return;
    if (spec->seq != FaultSpec::kAnySeq && spec->seq != seq) return;
    if (!spec->onceMarker.empty() && !claimOnceMarker(spec->onceMarker)) return;

    std::fprintf(stderr, "[geo-fault] firing at rank=%d op=%s seq=%llu\n", rank, op,
                 static_cast<unsigned long long>(seq));
    std::fflush(stderr);
    switch (spec->action) {
        case FaultSpec::Action::Kill:
            ::raise(SIGKILL);
            return;  // unreachable
        case FaultSpec::Action::Exit:
            ::_exit(spec->exitCode);
        case FaultSpec::Action::Delay:
            ::usleep(static_cast<useconds_t>(spec->delayMs) * 1000);
            return;
        case FaultSpec::Action::Drop:
            // Wedge without closing anything: peers see silence, not EOF,
            // and must fall back on their deadlines. The supervision layer
            // (or the test harness) is responsible for reaping us.
            for (;;) ::pause();
    }
}

void faultPoint(const char* op, std::uint64_t seq) { faultPoint(op, seq, envRank()); }

}  // namespace geo::support
