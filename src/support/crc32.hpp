// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the integrity
// guard on checkpoint files. Table-driven, one byte per step; the table is
// computed once at first use. This is the same CRC as zlib's crc32(), so a
// checkpoint can be cross-checked with standard tools.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace geo::support {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32Table() {
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c >> 1) ^ ((c & 1u) ? 0xEDB88320u : 0u);
            t[i] = c;
        }
        return t;
    }();
    return table;
}

}  // namespace detail

/// CRC-32 of a byte span. `seed` chains incremental computation: pass the
/// previous call's result to continue a running checksum.
[[nodiscard]] inline std::uint32_t crc32(std::span<const std::byte> data,
                                         std::uint32_t seed = 0) {
    const auto& table = detail::crc32Table();
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (const std::byte b : data)
        c = table[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t bytes,
                                         std::uint32_t seed = 0) {
    return crc32(std::span(static_cast<const std::byte*>(data), bytes), seed);
}

}  // namespace geo::support
