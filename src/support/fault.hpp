// Deterministic fault injection for the distributed runtime.
//
// A fault is declared once, in the environment, and fires at a named fault
// point — no randomness, so a chaos test that kills rank 2 at allreduce #7
// kills rank 2 at allreduce #7 on every run:
//
//     GEO_FAULT=kill:rank=2:op=allreduce:seq=7
//
// Spec grammar: `<action>[:key=value]...` with actions
//   * kill            — raise SIGKILL (a crash the peers see as EOF),
//   * exit[:code=N]   — _exit(N) (default 1; a clean-looking early death),
//   * delay[:ms=N]    — sleep N ms then continue (default 1000; skew/jitter),
//   * drop            — stop participating forever without closing sockets
//                       (a wedged peer / network partition: survivors must
//                       hit their DEADLINE, not an EOF).
// and selectors
//   * rank=R          — only this rank fires (default: every rank),
//   * op=NAME         — only fault points named NAME ("allreduce",
//                       "alltoallv", "barrier", "broadcast", "allgatherv",
//                       "handshake", or an application-level name — the
//                       timeline benches fire "step" per timestep, and the
//                       serving service fires "repart" at the top of every
//                       repartition-worker iteration and "publish" between
//                       the recompute and the epoch swap; default: any op),
//   * seq=N           — only the N-th occurrence as counted by the fault
//                       point's own sequence argument (default: any),
//   * once=PATH       — one-shot across process restarts: the fault fires
//                       only if PATH does not exist, and creates PATH just
//                       before firing. This is what lets a `geo_launch
//                       --restart` test fail the first attempt and succeed
//                       the second.
//
// Fault points live in the socket transport (every collective + the
// handshake) and can be added to application code (e.g. the timeline
// benches call faultPoint("step", t) per timestep). In-process backends
// (the thread simulator) deliberately have no fault points: killing a
// "rank" there would kill the whole test process.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace geo::support {

/// Parsed GEO_FAULT specification. See the header comment for the grammar.
struct FaultSpec {
    enum class Action : std::uint8_t { Kill, Exit, Delay, Drop };

    Action action = Action::Kill;
    int rank = -1;               ///< -1 = any rank
    std::string op;              ///< empty = any op
    std::uint64_t seq = kAnySeq; ///< kAnySeq = any sequence number
    int exitCode = 1;            ///< exit: status
    int delayMs = 1000;          ///< delay: duration
    std::string onceMarker;      ///< non-empty = one-shot marker file path

    static constexpr std::uint64_t kAnySeq = ~std::uint64_t{0};
};

/// Parse a spec string. Returns std::nullopt for an empty/absent spec;
/// throws std::invalid_argument on a malformed one (unknown action or key,
/// bad number) — a typo in a chaos test must fail loudly, not silently
/// disable the fault.
[[nodiscard]] std::optional<FaultSpec> parseFaultSpec(const char* spec);

/// Execute a fault point named `op` at sequence number `seq` on `rank`.
/// Matches against the process-wide GEO_FAULT spec (parsed once, cached);
/// no-op in the common case of no spec. `rank` = -1 matches only
/// rank-unselective specs.
void faultPoint(const char* op, std::uint64_t seq, int rank);

/// Convenience for application-level fault points: the rank is taken from
/// the GEO_RANK worker environment (-1 outside a worker).
void faultPoint(const char* op, std::uint64_t seq);

}  // namespace geo::support
