// Minimal fixed-width table printer used by the benchmark harness to emit
// the rows the paper's tables and figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace geo {

/// Collects rows of string cells and prints them with aligned columns.
class Table {
public:
    explicit Table(std::vector<std::string> header);

    /// Append one row; must have the same arity as the header.
    void addRow(std::vector<std::string> cells);

    /// Format a double with the given precision, trimming trailing zeros.
    static std::string num(double value, int precision = 4);

    /// Print with column alignment and a separator under the header.
    void print(std::ostream& os) const;

    [[nodiscard]] std::size_t rows() const { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace geo
