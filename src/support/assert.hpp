// Lightweight always-on invariant checks for library internals.
//
// GEO_REQUIRE is used for preconditions on public API boundaries (throws
// std::invalid_argument), GEO_CHECK for internal invariants (throws
// std::logic_error). Both stay enabled in release builds: partitioning a
// mesh wrongly is far more expensive than the branch.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace geo::detail {

[[noreturn]] inline void requireFail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
    std::ostringstream os;
    os << "precondition failed: " << expr << " at " << file << ':' << line;
    if (!msg.empty()) os << " — " << msg;
    throw std::invalid_argument(os.str());
}

[[noreturn]] inline void checkFail(const char* expr, const char* file, int line,
                                   const std::string& msg) {
    std::ostringstream os;
    os << "invariant violated: " << expr << " at " << file << ':' << line;
    if (!msg.empty()) os << " — " << msg;
    throw std::logic_error(os.str());
}

}  // namespace geo::detail

#define GEO_REQUIRE(expr, msg)                                            \
    do {                                                                  \
        if (!(expr)) ::geo::detail::requireFail(#expr, __FILE__, __LINE__, (msg)); \
    } while (false)

#define GEO_CHECK(expr, msg)                                              \
    do {                                                                  \
        if (!(expr)) ::geo::detail::checkFail(#expr, __FILE__, __LINE__, (msg)); \
    } while (false)
