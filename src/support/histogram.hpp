// Streaming latency histogram with lock-free per-thread shards.
//
// The serving SLO controller (serve/service.hpp) needs a p99 route latency
// that can be RECORDED from every query thread on the hot path and READ by
// the admission controller without ever blocking a reader. The design:
//   * fixed HDR-style bucket layout — nanosecond values are bucketed by
//     (octave, 1/32-octave sub-bucket) using pure integer arithmetic, so a
//     bucket index is a deterministic function of the value (known-answer
//     testable) and every quantile carries a bounded relative error of
//     1/32 ≈ 3.2%,
//   * one shard per recording thread — record() is two relaxed atomic ops
//     on the caller's own shard (no CAS loops, no contention, no locks),
//   * merge on read — merged() sums the shards into a plain snapshot; the
//     sum of relaxed counters is a momentary view, which is exactly what an
//     SLO probe wants (merging is associative and order-independent, see
//     tests/test_support.cpp).
// Values are seconds (double) at the API, nanoseconds internally; values
// above ~73 minutes clamp into the last bucket.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

namespace geo::support {

/// Merged, immutable view of a LatencyHistogram: plain counters, value-type
/// semantics, quantiles. Obtained via LatencyHistogram::merged(); two
/// snapshots can be merged again (shard-merge associativity), which is how
/// a sweep aggregates per-cell histograms.
struct HistogramCounts {
    std::vector<std::uint64_t> counts;  ///< one slot per bucket (may be empty = zero)
    std::uint64_t total = 0;

    void merge(const HistogramCounts& other) {
        if (counts.size() < other.counts.size()) counts.resize(other.counts.size(), 0);
        for (std::size_t i = 0; i < other.counts.size(); ++i)
            counts[i] += other.counts[i];
        total += other.total;
    }

    [[nodiscard]] std::uint64_t count() const noexcept { return total; }

    /// The q-quantile in seconds: the upper edge of the first bucket whose
    /// cumulative count reaches ceil(q·total) (q clamped to [0, 1]); 0 when
    /// the histogram is empty. Within 1/32 relative error of the exact
    /// order statistic by the bucket-layout guarantee.
    [[nodiscard]] double quantile(double q) const noexcept;
};

class LatencyHistogram {
public:
    /// Sub-bucket resolution: each power-of-two octave of nanoseconds is
    /// split into 32 linear sub-buckets, bounding quantile error to 1/32.
    static constexpr int kSubBits = 5;
    static constexpr std::uint64_t kSub = std::uint64_t{1} << kSubBits;
    /// Largest distinguishable octave: values at or above 2^42 ns (~73 min)
    /// clamp into the final bucket — far beyond any sane route latency.
    static constexpr int kMaxExponent = 42;
    static constexpr std::size_t kBuckets =
        static_cast<std::size_t>(kMaxExponent - kSubBits + 1) * kSub;

    explicit LatencyHistogram(int shards = 1)
        : shardCount_(std::max(1, shards)),
          shards_(std::make_unique<Shard[]>(static_cast<std::size_t>(shardCount_))) {}

    [[nodiscard]] int shards() const noexcept { return shardCount_; }

    /// Record one observation into `shard` (callers map threads to shards;
    /// out-of-range shards wrap). Lock-free: one relaxed fetch_add on a
    /// counter no other thread writes when shards are per-thread.
    void record(double seconds, int shard = 0) noexcept {
        const std::size_t s =
            static_cast<std::size_t>(shard < 0 ? -shard : shard) %
            static_cast<std::size_t>(shardCount_);
        shards_[s].counts[bucketIndex(toNanos(seconds))].fetch_add(
            1, std::memory_order_relaxed);
    }

    /// Merge every shard into one plain snapshot (momentary view under
    /// concurrent record()s; exact once recording stopped).
    [[nodiscard]] HistogramCounts merged() const {
        HistogramCounts out;
        out.counts.assign(kBuckets, 0);
        for (int s = 0; s < shardCount_; ++s)
            for (std::size_t b = 0; b < kBuckets; ++b)
                out.counts[b] += shards_[s].counts[b].load(std::memory_order_relaxed);
        for (const auto c : out.counts) out.total += c;
        return out;
    }

    /// Bucket of a nanosecond value. Values below kSub get exact unit
    /// buckets; above, the index is (octave group << kSubBits) | the top
    /// kSubBits mantissa bits below the leading one — integer-only, so the
    /// layout is a testable known answer.
    [[nodiscard]] static std::size_t bucketIndex(std::uint64_t nanos) noexcept {
        if (nanos < kSub) return static_cast<std::size_t>(nanos);
        const int msb = 63 - std::countl_zero(nanos);
        const int exponent = std::min(msb, kMaxExponent - 1);
        const std::uint64_t group =
            static_cast<std::uint64_t>(exponent - kSubBits + 1);
        const std::uint64_t sub =
            (nanos >> (exponent - kSubBits)) & (kSub - 1);
        return static_cast<std::size_t>(std::min<std::uint64_t>(
            group * kSub + sub, kBuckets - 1));
    }

    /// Upper edge of bucket `idx` in seconds — what quantile() reports.
    [[nodiscard]] static double bucketUpperSeconds(std::size_t idx) noexcept {
        if (idx >= kBuckets) idx = kBuckets - 1;
        if (idx < kSub) return static_cast<double>(idx) * 1e-9;
        const std::uint64_t group = idx >> kSubBits;
        const std::uint64_t sub = idx & (kSub - 1);
        const int exponent = static_cast<int>(group) + kSubBits - 1;
        const std::uint64_t base = std::uint64_t{1} << exponent;
        const std::uint64_t width = std::uint64_t{1} << (exponent - kSubBits);
        return static_cast<double>(base + (sub + 1) * width - 1) * 1e-9;
    }

private:
    [[nodiscard]] static std::uint64_t toNanos(double seconds) noexcept {
        if (!(seconds > 0.0)) return 0;  // negatives and NaN clamp to zero
        const double nanos = seconds * 1e9;
        return nanos >= 9.2e18 ? ~std::uint64_t{0}
                               : static_cast<std::uint64_t>(nanos);
    }

    struct Shard {
        std::array<std::atomic<std::uint64_t>, kBuckets> counts{};
        /// Keep adjacent shards' hot counters off each other's cache lines.
        char pad[64];
    };

    int shardCount_;
    std::unique_ptr<Shard[]> shards_;
};

inline double HistogramCounts::quantile(double q) const noexcept {
    if (total == 0) return 0.0;
    const double clamped = std::min(1.0, std::max(0.0, q));
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(clamped * static_cast<double>(total))));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        seen += counts[b];
        if (seen >= rank) return LatencyHistogram::bucketUpperSeconds(b);
    }
    return LatencyHistogram::bucketUpperSeconds(counts.empty() ? 0 : counts.size() - 1);
}

}  // namespace geo::support
