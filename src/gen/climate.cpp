#include "gen/climate.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "gen/delaunay2d.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace geo::gen {

namespace {

/// Smooth random field in [-1, 1]: sum of a few random plane waves.
class WaveField {
public:
    WaveField(Xoshiro256& rng, int waves, double baseFrequency) {
        for (int w = 0; w < waves; ++w) {
            const double angle = rng.uniform(0.0, 2.0 * M_PI);
            const double freq = baseFrequency * rng.uniform(0.6, 1.8);
            waves_.push_back(Wave{freq * std::cos(angle), freq * std::sin(angle),
                                  rng.uniform(0.0, 2.0 * M_PI),
                                  rng.uniform(0.5, 1.0)});
        }
    }

    [[nodiscard]] double operator()(const Point2& p) const {
        double v = 0.0, wsum = 0.0;
        for (const auto& w : waves_) {
            v += w.amplitude * std::sin(w.kx * p[0] + w.ky * p[1] + w.phase);
            wsum += w.amplitude;
        }
        return v / wsum;
    }

private:
    struct Wave {
        double kx, ky, phase, amplitude;
    };
    std::vector<Wave> waves_;
};

}  // namespace

Mesh2 climate25d(std::int64_t n, int maxLevels, std::uint64_t seed) {
    GEO_REQUIRE(n >= 3, "need n >= 3 points");
    GEO_REQUIRE(maxLevels >= 1, "need at least one vertical level");
    Xoshiro256 rng(seed);

    // "Bathymetry" field: > 0 means ocean, depth proportional to the value;
    // <= 0 is land (no mesh points there).
    const WaveField bathymetry(rng, 8, 9.0);
    const double coastWidth = 0.05;

    // Oversample; keep ocean points, denser near the coastline.
    std::vector<Point2> pts;
    std::vector<double> weights;
    pts.reserve(static_cast<std::size_t>(n));
    std::int64_t attempts = 0;
    const std::int64_t maxAttempts = n * 4000;
    while (static_cast<std::int64_t>(pts.size()) < n) {
        GEO_CHECK(attempts++ < maxAttempts, "climate sampling stalled (all land?)");
        const Point2 p{{rng.uniform(), rng.uniform()}};
        const double b = bathymetry(p);
        if (b <= 0.0) continue;  // land
        const double coastBoost = std::exp(-(b * b) / (2.0 * coastWidth * coastWidth));
        const double density = 0.25 + 0.75 * coastBoost;
        if (rng.uniform() >= density) continue;
        pts.push_back(p);
        // Vertical levels grow with depth: coastal cells are shallow.
        const double depth = std::clamp(b, 0.0, 1.0);
        weights.push_back(1.0 + std::floor(depth * (maxLevels - 1) + 0.5));
    }

    auto graph = delaunayTriangulate2d(pts);

    // Delaunay of the ocean point cloud is connected by construction (it
    // triangulates the convex hull), so no component filtering is needed;
    // land areas simply have long skinny triangles crossing them, which
    // mirrors how unstructured ocean meshes bridge narrow straits.
    Mesh2 mesh;
    mesh.name = "climate25d-n" + std::to_string(n) + "-L" + std::to_string(maxLevels);
    mesh.meshClass = MeshClass::Dim25;
    mesh.points = std::move(pts);
    mesh.weights = std::move(weights);
    mesh.graph = std::move(graph);
    return mesh;
}

}  // namespace geo::gen
