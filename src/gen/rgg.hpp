// Random geometric graphs (the paper's rgg_n instances and the radius-graph
// machinery reused by the Alya-like tube meshes).
#pragma once

#include <cstdint>

#include "gen/mesh.hpp"

namespace geo::gen {

/// 2D random geometric graph: n uniform points in the unit square, edges
/// between pairs closer than `radius`. radius <= 0 selects the connectivity
/// threshold ~ sqrt(ln n / (pi n)) scaled by 1.5, matching the DIMACS rgg
/// construction.
Mesh2 rgg2d(std::int64_t n, double radius, std::uint64_t seed);

/// 3D variant in the unit cube; default radius ~ (ln n / n)^(1/3) scaled.
Mesh3 rgg3d(std::int64_t n, double radius, std::uint64_t seed);

/// Radius graph over an arbitrary point cloud (grid-bucket accelerated).
template <int D>
graph::CsrGraph radiusGraph(std::span<const Point<D>> points, double radius);

extern template graph::CsrGraph radiusGraph<2>(std::span<const Point2>, double);
extern template graph::CsrGraph radiusGraph<3>(std::span<const Point3>, double);

}  // namespace geo::gen
