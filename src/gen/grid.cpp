#include "gen/grid.hpp"

#include "support/assert.hpp"

namespace geo::gen {

Mesh2 grid2d(std::int32_t nx, std::int32_t ny) {
    GEO_REQUIRE(nx >= 1 && ny >= 1, "grid extents must be positive");
    Mesh2 mesh;
    mesh.name = "grid2d-" + std::to_string(nx) + "x" + std::to_string(ny);
    mesh.meshClass = MeshClass::Dim2;
    const auto n = static_cast<std::int64_t>(nx) * ny;
    mesh.points.reserve(static_cast<std::size_t>(n));
    graph::GraphBuilder builder(static_cast<graph::Vertex>(n));
    auto id = [&](std::int32_t x, std::int32_t y) {
        return static_cast<graph::Vertex>(static_cast<std::int64_t>(y) * nx + x);
    };
    for (std::int32_t y = 0; y < ny; ++y) {
        for (std::int32_t x = 0; x < nx; ++x) {
            mesh.points.push_back(Point2{{static_cast<double>(x), static_cast<double>(y)}});
            if (x + 1 < nx) builder.addEdge(id(x, y), id(x + 1, y));
            if (y + 1 < ny) builder.addEdge(id(x, y), id(x, y + 1));
        }
    }
    mesh.graph = builder.build();
    return mesh;
}

Mesh3 grid3d(std::int32_t nx, std::int32_t ny, std::int32_t nz) {
    GEO_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1, "grid extents must be positive");
    Mesh3 mesh;
    mesh.name = "grid3d-" + std::to_string(nx) + "x" + std::to_string(ny) + "x" +
                std::to_string(nz);
    mesh.meshClass = MeshClass::Dim3;
    const auto n = static_cast<std::int64_t>(nx) * ny * nz;
    mesh.points.reserve(static_cast<std::size_t>(n));
    graph::GraphBuilder builder(static_cast<graph::Vertex>(n));
    auto id = [&](std::int32_t x, std::int32_t y, std::int32_t z) {
        return static_cast<graph::Vertex>((static_cast<std::int64_t>(z) * ny + y) * nx + x);
    };
    for (std::int32_t z = 0; z < nz; ++z) {
        for (std::int32_t y = 0; y < ny; ++y) {
            for (std::int32_t x = 0; x < nx; ++x) {
                mesh.points.push_back(Point3{{static_cast<double>(x), static_cast<double>(y),
                                              static_cast<double>(z)}});
                if (x + 1 < nx) builder.addEdge(id(x, y, z), id(x + 1, y, z));
                if (y + 1 < ny) builder.addEdge(id(x, y, z), id(x, y + 1, z));
                if (z + 1 < nz) builder.addEdge(id(x, y, z), id(x, y, z + 1));
            }
        }
    }
    mesh.graph = builder.build();
    return mesh;
}

}  // namespace geo::gen
