#include "gen/alya.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "gen/rgg.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace geo::gen {

namespace {

struct Segment {
    Point3 a;
    Point3 b;
    double radius;
};

/// Build a recursive bifurcating tube tree inside the unit cube.
void buildTree(std::vector<Segment>& out, Xoshiro256& rng, const Point3& start,
               Point3 direction, double length, double radius, int depth) {
    if (depth == 0 || length < 0.01) return;
    Point3 end = start + direction * length;
    for (int i = 0; i < 3; ++i) end[i] = std::clamp(end[i], 0.05, 0.95);
    out.push_back(Segment{start, end, radius});

    // Two children branching at ~35 degrees, slightly randomized, with the
    // classic airway radius reduction factor ~0.79 (Murray's law).
    for (int child = 0; child < 2; ++child) {
        const double azimuth = rng.uniform(0.0, 2.0 * M_PI);
        const double tilt = rng.uniform(0.4, 0.8) * (child == 0 ? 1.0 : -1.0);
        // Perturb the direction: rotate `direction` by tilt in a random
        // plane. Build an orthonormal frame around it.
        Point3 up{{0.0, 0.0, 1.0}};
        if (std::abs(dot(up, direction)) > 0.9) up = Point3{{1.0, 0.0, 0.0}};
        Point3 side{{direction[1] * up[2] - direction[2] * up[1],
                     direction[2] * up[0] - direction[0] * up[2],
                     direction[0] * up[1] - direction[1] * up[0]}};
        side /= std::max(norm(side), 1e-12);
        const Point3 side2{{direction[1] * side[2] - direction[2] * side[1],
                            direction[2] * side[0] - direction[0] * side[2],
                            direction[0] * side[1] - direction[1] * side[0]}};
        Point3 newDir = direction * std::cos(tilt) +
                        (side * std::cos(azimuth) + side2 * std::sin(azimuth)) * std::sin(tilt);
        newDir /= std::max(norm(newDir), 1e-12);
        buildTree(out, rng, end, newDir, length * rng.uniform(0.65, 0.8), radius * 0.79,
                  depth - 1);
    }
}

double pointSegmentDistance(const Point3& p, const Segment& s) {
    const Point3 ab = s.b - s.a;
    const double len2 = dot(ab, ab);
    double t = len2 > 0 ? dot(p - s.a, ab) / len2 : 0.0;
    t = std::clamp(t, 0.0, 1.0);
    return distance(p, s.a + ab * t);
}

}  // namespace

Mesh3 alya3d(std::int64_t n, int depth, std::uint64_t seed) {
    GEO_REQUIRE(n >= 4, "need n >= 4 points");
    GEO_REQUIRE(depth >= 1, "need depth >= 1");
    Xoshiro256 rng(seed);

    std::vector<Segment> tree;
    buildTree(tree, rng, Point3{{0.5, 0.5, 0.92}}, Point3{{0.0, 0.0, -1.0}}, 0.3, 0.05,
              depth);
    GEO_CHECK(!tree.empty(), "tube tree construction produced no segments");

    // Sample points inside the tubes: pick a segment weighted by its
    // volume, then a uniform point in its cylinder.
    std::vector<double> cumVolume;
    double total = 0.0;
    for (const auto& s : tree) {
        total += s.radius * s.radius * distance(s.a, s.b);
        cumVolume.push_back(total);
    }

    Mesh3 mesh;
    mesh.name = "alya3d-n" + std::to_string(n) + "-d" + std::to_string(depth);
    mesh.meshClass = MeshClass::Dim3;
    mesh.points.reserve(static_cast<std::size_t>(n));
    while (static_cast<std::int64_t>(mesh.points.size()) < n) {
        const double pick = rng.uniform(0.0, total);
        const auto it = std::lower_bound(cumVolume.begin(), cumVolume.end(), pick);
        const auto& s = tree[static_cast<std::size_t>(it - cumVolume.begin())];
        const double t = rng.uniform();
        // Uniform point in the disk of radius s.radius.
        const double r = s.radius * std::sqrt(rng.uniform());
        const double phi = rng.uniform(0.0, 2.0 * M_PI);
        Point3 axis = s.b - s.a;
        axis /= std::max(norm(axis), 1e-12);
        Point3 up{{0.0, 0.0, 1.0}};
        if (std::abs(dot(up, axis)) > 0.9) up = Point3{{1.0, 0.0, 0.0}};
        Point3 side{{axis[1] * up[2] - axis[2] * up[1], axis[2] * up[0] - axis[0] * up[2],
                     axis[0] * up[1] - axis[1] * up[0]}};
        side /= std::max(norm(side), 1e-12);
        const Point3 side2{{axis[1] * side[2] - axis[2] * side[1],
                            axis[2] * side[0] - axis[0] * side[2],
                            axis[0] * side[1] - axis[1] * side[0]}};
        const Point3 p = s.a + (s.b - s.a) * t +
                         side * (r * std::cos(phi)) + side2 * (r * std::sin(phi));
        mesh.points.push_back(p);
    }

    // Radius graph calibrated to tetrahedral degree: mean spacing inside
    // the tubes is (tubeVolume/n)^(1/3); factor 2 gives ~14 neighbors.
    const double tubeVolume = total * M_PI;
    const double spacing = std::cbrt(tubeVolume / static_cast<double>(n));
    mesh.graph = radiusGraph<3>(mesh.points, 2.0 * spacing);

    // The radius graph on a branching cloud can leave stray isolated
    // points at thin branch tips; connect every isolated vertex to its
    // nearest sampled predecessor so the mesh is usable for BFS metrics.
    std::vector<graph::Vertex> isolated;
    for (graph::Vertex v = 0; v < mesh.graph.numVertices(); ++v)
        if (mesh.graph.degree(v) == 0) isolated.push_back(v);
    if (!isolated.empty()) {
        graph::GraphBuilder repair(mesh.graph.numVertices());
        for (graph::Vertex v = 0; v < mesh.graph.numVertices(); ++v)
            for (const auto u : mesh.graph.neighbors(v))
                if (u > v) repair.addEdge(v, u);
        for (const auto v : isolated) {
            // Nearest other point by brute force (few isolated vertices).
            graph::Vertex best = -1;
            double bestDist = std::numeric_limits<double>::infinity();
            for (graph::Vertex u = 0; u < mesh.graph.numVertices(); ++u) {
                if (u == v) continue;
                const double d = squaredDistance(mesh.points[static_cast<std::size_t>(u)],
                                                 mesh.points[static_cast<std::size_t>(v)]);
                if (d < bestDist) {
                    bestDist = d;
                    best = u;
                }
            }
            repair.addEdge(v, best);
        }
        mesh.graph = repair.build();
    }
    return mesh;
}

}  // namespace geo::gen
