// 2D Delaunay triangulation (Bowyer–Watson, incremental with walking point
// location in Hilbert insertion order — expected linear time on random
// inputs).
//
// Reproduces the paper's DelaunayX instance series ("Delaunay triangulations
// of X random 2D points in the unit square") and is reused as the
// triangulator behind the FEM-style and climate mesh generators.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gen/mesh.hpp"

namespace geo::gen {

/// Triangulate an arbitrary point set; returns the primal edge graph
/// (an edge per triangle side). Requires >= 3 non-collinear points.
graph::CsrGraph delaunayTriangulate2d(std::span<const Point2> points);

/// Triangle soup variant for consumers that need faces (SVG export, FEM
/// assembly): each triple indexes `points`.
std::vector<std::array<std::int32_t, 3>> delaunayTriangles2d(std::span<const Point2> points);

/// The paper's DelaunayX series: n uniform random points in the unit square.
Mesh2 delaunay2d(std::int64_t n, std::uint64_t seed);

}  // namespace geo::gen
