// Mesh container: geometric points + primal connectivity + node weights.
//
// Instances stand in for the paper's benchmark families (DIMACS 2D meshes,
// FESOM 2.5D climate meshes, Alya 3D meshes, Delaunay series); see DESIGN.md
// §2 for the substitution rationale. Every generator returns this container
// so partitioners and metrics code are instance-agnostic.
#pragma once

#include <string>
#include <vector>

#include "geometry/point.hpp"
#include "graph/csr.hpp"

namespace geo::gen {

/// Instance classes used for the paper's per-class aggregation (Fig. 2).
enum class MeshClass {
    Dim2,   ///< 2D meshes (DIMACS-style)
    Dim25,  ///< 2.5D weighted climate meshes
    Dim3,   ///< 3D meshes (Alya-style, 3D Delaunay)
};

[[nodiscard]] constexpr const char* toString(MeshClass c) noexcept {
    switch (c) {
        case MeshClass::Dim2: return "2D";
        case MeshClass::Dim25: return "2.5D";
        case MeshClass::Dim3: return "3D";
    }
    return "?";
}

template <int D>
struct Mesh {
    std::string name;
    MeshClass meshClass = MeshClass::Dim2;
    std::vector<Point<D>> points;
    std::vector<double> weights;  ///< empty = unit node weights
    graph::CsrGraph graph;        ///< primal mesh connectivity

    [[nodiscard]] std::int64_t numVertices() const noexcept {
        return static_cast<std::int64_t>(points.size());
    }
    [[nodiscard]] std::int64_t numEdges() const noexcept { return graph.numEdges(); }
};

using Mesh2 = Mesh<2>;
using Mesh3 = Mesh<3>;

}  // namespace geo::gen
