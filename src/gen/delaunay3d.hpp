// 3D Delaunay triangulation (incremental Bowyer–Watson over tetrahedra).
//
// Reproduces the paper's 3D Delaunay instances ("five 3D Delaunay
// triangulations ... using the generator of Funke et al."): uniform random
// points in the unit cube, tetrahedralized, primal edge graph extracted.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "gen/mesh.hpp"

namespace geo::gen {

/// Tetrahedralize an arbitrary point set; returns the primal edge graph.
/// Requires >= 4 non-coplanar points in generic position (random inputs).
graph::CsrGraph delaunayTriangulate3d(std::span<const Point3> points);

/// Tetrahedron soup (each quadruple indexes `points`).
std::vector<std::array<std::int32_t, 4>> delaunayTets3d(std::span<const Point3> points);

/// The paper's 3D Delaunay series: n uniform random points in the unit cube.
Mesh3 delaunay3d(std::int64_t n, std::uint64_t seed);

}  // namespace geo::gen
