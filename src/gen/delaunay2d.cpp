#include "gen/delaunay2d.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "geometry/box.hpp"
#include "sfc/hilbert.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace geo::gen {

namespace {

// Predicates in long double: sufficient for unit-scale inputs with a
// moderately sized (64x span) super triangle; see DESIGN.md.
using Real = long double;

Real orient(const Point2& a, const Point2& b, const Point2& c) {
    const Real abx = static_cast<Real>(b[0]) - a[0];
    const Real aby = static_cast<Real>(b[1]) - a[1];
    const Real acx = static_cast<Real>(c[0]) - a[0];
    const Real acy = static_cast<Real>(c[1]) - a[1];
    return abx * acy - aby * acx;
}

/// > 0 iff p strictly inside the circumcircle of CCW triangle (a, b, c).
Real inCircle(const Point2& a, const Point2& b, const Point2& c, const Point2& p) {
    const Real adx = static_cast<Real>(a[0]) - p[0];
    const Real ady = static_cast<Real>(a[1]) - p[1];
    const Real bdx = static_cast<Real>(b[0]) - p[0];
    const Real bdy = static_cast<Real>(b[1]) - p[1];
    const Real cdx = static_cast<Real>(c[0]) - p[0];
    const Real cdy = static_cast<Real>(c[1]) - p[1];
    const Real ad2 = adx * adx + ady * ady;
    const Real bd2 = bdx * bdx + bdy * bdy;
    const Real cd2 = cdx * cdx + cdy * cdy;
    return adx * (bdy * cd2 - cdy * bd2) - ady * (bdx * cd2 - cdx * bd2) +
           ad2 * (bdx * cdy - cdx * bdy);
}

struct Tri {
    std::array<std::int32_t, 3> v;    // CCW vertices
    std::array<std::int32_t, 3> nbr;  // nbr[i] = triangle across edge opposite v[i]
    bool alive = true;
};

class Triangulation {
public:
    explicit Triangulation(std::span<const Point2> input)
        : n_(static_cast<std::int32_t>(input.size())) {
        GEO_REQUIRE(input.size() >= 3, "Delaunay needs >= 3 points");
        pts_.assign(input.begin(), input.end());
        // Super triangle: large enough that all points are strictly inside.
        const auto bb = Box2::around(input);
        const Point2 c = bb.center();
        const double span = std::max({bb.hi[0] - bb.lo[0], bb.hi[1] - bb.lo[1], 1e-9});
        const double r = 64.0 * span;
        pts_.push_back(Point2{{c[0] - 2.0 * r, c[1] - r}});
        pts_.push_back(Point2{{c[0] + 2.0 * r, c[1] - r}});
        pts_.push_back(Point2{{c[0], c[1] + 2.0 * r}});
        tris_.push_back(Tri{{n_, n_ + 1, n_ + 2}, {-1, -1, -1}, true});
        mark_.push_back(0);

        // Hilbert insertion order keeps the walking search short.
        std::vector<std::pair<std::uint64_t, std::int32_t>> order;
        order.reserve(input.size());
        for (std::int32_t i = 0; i < n_; ++i)
            order.emplace_back(sfc::hilbertIndex<2>(input[static_cast<std::size_t>(i)], bb), i);
        std::sort(order.begin(), order.end());
        for (const auto& [key, i] : order) insert(i);
    }

    [[nodiscard]] std::vector<std::array<std::int32_t, 3>> realTriangles() const {
        std::vector<std::array<std::int32_t, 3>> out;
        for (const auto& t : tris_) {
            if (!t.alive) continue;
            if (t.v[0] >= n_ || t.v[1] >= n_ || t.v[2] >= n_) continue;
            out.push_back(t.v);
        }
        return out;
    }

private:
    struct BoundaryEdge {
        std::int32_t to;
        std::int32_t outside;
    };

    const Point2& at(std::int32_t v) const { return pts_[static_cast<std::size_t>(v)]; }

    /// Walk from `start` to a triangle containing p.
    std::int32_t locate(const Point2& p, std::int32_t start) const {
        std::int32_t t = start;
        for (std::int64_t steps = 0; steps < static_cast<std::int64_t>(tris_.size()) + 8;
             ++steps) {
            const Tri& tri = tris_[static_cast<std::size_t>(t)];
            bool moved = false;
            for (int i = 0; i < 3; ++i) {
                const auto a = tri.v[static_cast<std::size_t>((i + 1) % 3)];
                const auto b = tri.v[static_cast<std::size_t>((i + 2) % 3)];
                if (orient(at(a), at(b), p) < 0) {  // p strictly outside edge (a, b)
                    const auto next = tri.nbr[static_cast<std::size_t>(i)];
                    GEO_CHECK(next >= 0, "walk left the super triangle");
                    t = next;
                    moved = true;
                    break;
                }
            }
            if (!moved) return t;
        }
        GEO_CHECK(false, "point location walk did not terminate");
        return -1;
    }

    bool inCavity(std::int32_t t) const {
        return mark_[static_cast<std::size_t>(t)] == epoch_;
    }

    void insert(std::int32_t vp) {
        const Point2& p = at(vp);
        const std::int32_t seed = locate(p, lastTri_);
        ++epoch_;

        // Grow the cavity: all connected triangles whose circumcircle
        // contains p.
        cavity_.clear();
        std::vector<std::int32_t> stack{seed};
        mark_[static_cast<std::size_t>(seed)] = epoch_;
        while (!stack.empty()) {
            const auto t = stack.back();
            stack.pop_back();
            cavity_.push_back(t);
            for (const auto nb : tris_[static_cast<std::size_t>(t)].nbr) {
                if (nb < 0 || inCavity(nb)) continue;
                const Tri& tri = tris_[static_cast<std::size_t>(nb)];
                if (inCircle(at(tri.v[0]), at(tri.v[1]), at(tri.v[2]), p) > 0) {
                    mark_[static_cast<std::size_t>(nb)] = epoch_;
                    stack.push_back(nb);
                }
            }
        }

        // Boundary of the cavity: directed edges a -> b, CCW around the
        // cavity, with the surviving outside triangle. A Delaunay cavity
        // boundary is a simple polygon, so each `a` appears exactly once.
        boundary_.clear();
        for (const auto t : cavity_) {
            const Tri& tri = tris_[static_cast<std::size_t>(t)];
            for (int i = 0; i < 3; ++i) {
                const auto nb = tri.nbr[static_cast<std::size_t>(i)];
                if (nb >= 0 && inCavity(nb)) continue;
                const auto a = tri.v[static_cast<std::size_t>((i + 1) % 3)];
                const auto b = tri.v[static_cast<std::size_t>((i + 2) % 3)];
                boundary_.emplace_back(a, BoundaryEdge{b, nb});
            }
        }
        GEO_CHECK(boundary_.size() >= 3, "cavity boundary must be a polygon");
        std::sort(boundary_.begin(), boundary_.end(),
                  [](const auto& x, const auto& y) { return x.first < y.first; });
        auto nextEdge = [&](std::int32_t from) -> const BoundaryEdge& {
            const auto it = std::lower_bound(
                boundary_.begin(), boundary_.end(), from,
                [](const auto& e, std::int32_t key) { return e.first < key; });
            GEO_CHECK(it != boundary_.end() && it->first == from,
                      "cavity boundary is not a cycle");
            return it->second;
        };

        for (const auto t : cavity_) tris_[static_cast<std::size_t>(t)].alive = false;

        // Retriangulate as a fan around p, walking the boundary cycle.
        const std::int32_t firstVertex = boundary_.front().first;
        const auto firstNew = static_cast<std::int32_t>(tris_.size());
        std::int32_t a = firstVertex;
        std::size_t emitted = 0;
        do {
            const BoundaryEdge& e = nextEdge(a);
            const auto id = static_cast<std::int32_t>(tris_.size());
            // (p, a, b) is CCW: (a, b) runs CCW around the cavity that
            // contains p.
            tris_.push_back(Tri{{vp, a, e.to}, {e.outside, -1, -1}, true});
            mark_.push_back(0);
            if (e.outside >= 0) {
                // Outside triangle's edge (e.to, a) now borders the new one.
                Tri& out = tris_[static_cast<std::size_t>(e.outside)];
                for (int i = 0; i < 3; ++i) {
                    if (out.v[static_cast<std::size_t>((i + 1) % 3)] == e.to &&
                        out.v[static_cast<std::size_t>((i + 2) % 3)] == a) {
                        out.nbr[static_cast<std::size_t>(i)] = id;
                        break;
                    }
                }
            }
            a = e.to;
            ++emitted;
            GEO_CHECK(emitted <= boundary_.size(), "cavity boundary walk looped");
        } while (a != firstVertex);
        GEO_CHECK(emitted == boundary_.size(), "cavity boundary visited exactly once");

        // Stitch consecutive fan triangles: triangle j = (p, a_j, a_{j+1});
        // its edge opposite a_j is (a_{j+1}, p) shared with triangle j+1,
        // edge opposite a_{j+1} is (p, a_j) shared with triangle j-1.
        const auto lastNew = static_cast<std::int32_t>(tris_.size()) - 1;
        for (std::int32_t id = firstNew; id <= lastNew; ++id) {
            tris_[static_cast<std::size_t>(id)].nbr[1] = (id == lastNew) ? firstNew : id + 1;
            tris_[static_cast<std::size_t>(id)].nbr[2] = (id == firstNew) ? lastNew : id - 1;
        }
        lastTri_ = firstNew;
    }

    std::int32_t n_;
    std::vector<Point2> pts_;
    std::vector<Tri> tris_;
    std::vector<std::uint32_t> mark_;  // epoch marker per triangle
    std::uint32_t epoch_ = 0;
    std::int32_t lastTri_ = 0;
    std::vector<std::int32_t> cavity_;
    std::vector<std::pair<std::int32_t, BoundaryEdge>> boundary_;
};

}  // namespace

std::vector<std::array<std::int32_t, 3>> delaunayTriangles2d(std::span<const Point2> points) {
    const Triangulation tr(points);
    return tr.realTriangles();
}

graph::CsrGraph delaunayTriangulate2d(std::span<const Point2> points) {
    const auto tris = delaunayTriangles2d(points);
    graph::GraphBuilder builder(static_cast<graph::Vertex>(points.size()));
    for (const auto& t : tris) {
        builder.addEdge(t[0], t[1]);
        builder.addEdge(t[1], t[2]);
        builder.addEdge(t[2], t[0]);
    }
    return builder.build();
}

Mesh2 delaunay2d(std::int64_t n, std::uint64_t seed) {
    GEO_REQUIRE(n >= 3, "delaunay2d needs >= 3 points");
    Xoshiro256 rng(seed);
    Mesh2 mesh;
    mesh.name = "delaunay2d-n" + std::to_string(n);
    mesh.meshClass = MeshClass::Dim2;
    mesh.points.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
        mesh.points.push_back(Point2{{rng.uniform(), rng.uniform()}});
    mesh.graph = delaunayTriangulate2d(mesh.points);
    return mesh;
}

}  // namespace geo::gen
