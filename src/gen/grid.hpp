// Structured grids with analytically known partition metrics — the ground
// truth instances for unit tests (e.g. a k-way slab partition of an
// nx × ny grid has a known edge cut).
#pragma once

#include <cstdint>

#include "gen/mesh.hpp"

namespace geo::gen {

/// nx × ny unit-spaced grid with 4-neighbor connectivity.
Mesh2 grid2d(std::int32_t nx, std::int32_t ny);

/// nx × ny × nz grid with 6-neighbor connectivity.
Mesh3 grid3d(std::int32_t nx, std::int32_t ny, std::int32_t nz);

}  // namespace geo::gen
