// 3D respiratory-system style meshes (Alya test case analog).
//
// The Alya PRACE benchmarks mesh a branching airway geometry. We generate a
// recursive bifurcating tube tree, sample points inside the tubes, and
// connect them with a radius graph calibrated to tetrahedral-mesh degree
// (~14 neighbors), reproducing the "3D, tubular, branching" character that
// distinguishes this class from volumetric Delaunay cubes.
#pragma once

#include <cstdint>

#include "gen/mesh.hpp"

namespace geo::gen {

/// n points in a bifurcating tube tree of the given depth (>= 1).
Mesh3 alya3d(std::int64_t n, int depth, std::uint64_t seed);

}  // namespace geo::gen
