// Instance catalog: named, seeded, size-scalable factories for every mesh
// family used in the paper's evaluation, grouped the way Fig. 2 groups them
// (2D DIMACS-style / 2.5D climate / 3D). The benchmark binaries iterate
// this catalog so tables and figures cover the same instance mix as the
// paper.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gen/mesh.hpp"

namespace geo::gen {

struct Instance2Spec {
    std::string name;       ///< paper-family name, e.g. "hugetric-analog"
    MeshClass meshClass;
    /// Factory: (targetVertices, seed) -> mesh.
    std::function<Mesh2(std::int64_t, std::uint64_t)> make;
};

struct Instance3Spec {
    std::string name;
    MeshClass meshClass;
    std::function<Mesh3(std::int64_t, std::uint64_t)> make;
};

/// 2D + 2.5D families (DIMACS analogs and climate meshes).
const std::vector<Instance2Spec>& catalog2d();

/// 3D families (Alya analog, 3D Delaunay, 3D rgg).
const std::vector<Instance3Spec>& catalog3d();

}  // namespace geo::gen
