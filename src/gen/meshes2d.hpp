// Synthetic 2D mesh families standing in for the paper's DIMACS instances.
//
// hugetric / hugetrace / hugebubbles are adaptively refined triangular
// meshes from the Marquardt–Schamberger benchmark generator; 333SP, AS365,
// M6, NACA0015, NLR are FEM triangulations graded towards airfoil-like
// geometry. We reproduce the geometric character by sampling points from a
// spatially varying density field and Delaunay-triangulating them:
//   * refinedTriMesh  — density concentrated along random walk "traces"
//                       (hugetric/hugetrace character),
//   * bubbleMesh      — density concentrated on circle boundaries
//                       (hugebubbles character),
//   * femMesh2d       — boundary-layer grading around an elliptic body with
//                       a hole where the body sits (NACA/NLR character).
#pragma once

#include <cstdint>

#include "gen/mesh.hpp"

namespace geo::gen {

/// Adaptively refined triangle mesh: density follows `traces` random-walk
/// curves, refinement ratio ~20:1 between feature and background density.
Mesh2 refinedTriMesh(std::int64_t n, int traces, std::uint64_t seed);

/// Bubble-refined mesh: density peaks on the boundaries of `bubbles`
/// random circles.
Mesh2 bubbleMesh(std::int64_t n, int bubbles, std::uint64_t seed);

/// FEM-style airfoil mesh: boundary-layer grading around an ellipse with a
/// cut-out hole (points inside the body are rejected).
Mesh2 femMesh2d(std::int64_t n, std::uint64_t seed);

}  // namespace geo::gen
