#include "gen/meshes2d.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "gen/delaunay2d.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace geo::gen {

namespace {

/// Rejection-sample n points in the unit square from density(x) in (0, 1].
template <typename Density>
std::vector<Point2> sampleDensity(std::int64_t n, Xoshiro256& rng, Density&& density) {
    std::vector<Point2> pts;
    pts.reserve(static_cast<std::size_t>(n));
    std::int64_t attempts = 0;
    const std::int64_t maxAttempts = n * 2000;
    while (static_cast<std::int64_t>(pts.size()) < n) {
        GEO_CHECK(attempts++ < maxAttempts, "density too low: rejection sampling stalled");
        const Point2 p{{rng.uniform(), rng.uniform()}};
        if (rng.uniform() < density(p)) pts.push_back(p);
    }
    return pts;
}

/// Distance from p to the closest vertex of a polyline.
double polylineDistance(const Point2& p, const std::vector<Point2>& line) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& q : line) best = std::min(best, squaredDistance(p, q));
    return std::sqrt(best);
}

}  // namespace

Mesh2 refinedTriMesh(std::int64_t n, int traces, std::uint64_t seed) {
    GEO_REQUIRE(n >= 3 && traces >= 1, "need n >= 3 points and >= 1 trace");
    Xoshiro256 rng(seed);

    // Random-walk feature curves the refinement follows.
    std::vector<std::vector<Point2>> curves;
    for (int t = 0; t < traces; ++t) {
        std::vector<Point2> curve;
        Point2 pos{{rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9)}};
        double heading = rng.uniform(0.0, 2.0 * M_PI);
        const int steps = 140;
        for (int s = 0; s < steps; ++s) {
            curve.push_back(pos);
            heading += rng.uniform(-0.45, 0.45);
            const double step = 0.012;
            pos[0] = std::clamp(pos[0] + step * std::cos(heading), 0.02, 0.98);
            pos[1] = std::clamp(pos[1] + step * std::sin(heading), 0.02, 0.98);
        }
        curves.push_back(std::move(curve));
    }

    const double featureWidth = 0.03;
    auto density = [&](const Point2& p) {
        double d = std::numeric_limits<double>::infinity();
        for (const auto& c : curves) d = std::min(d, polylineDistance(p, c));
        // 20:1 refinement ratio between trace neighborhood and background.
        return 0.05 + 0.95 * std::exp(-(d * d) / (2.0 * featureWidth * featureWidth));
    };

    Mesh2 mesh;
    mesh.name = "refinedtri-n" + std::to_string(n) + "-t" + std::to_string(traces);
    mesh.meshClass = MeshClass::Dim2;
    mesh.points = sampleDensity(n, rng, density);
    mesh.graph = delaunayTriangulate2d(mesh.points);
    return mesh;
}

Mesh2 bubbleMesh(std::int64_t n, int bubbles, std::uint64_t seed) {
    GEO_REQUIRE(n >= 3 && bubbles >= 1, "need n >= 3 points and >= 1 bubble");
    Xoshiro256 rng(seed);
    struct Circle {
        Point2 c;
        double r;
    };
    std::vector<Circle> circles;
    for (int b = 0; b < bubbles; ++b)
        circles.push_back(Circle{Point2{{rng.uniform(0.15, 0.85), rng.uniform(0.15, 0.85)}},
                                 rng.uniform(0.05, 0.2)});

    const double shellWidth = 0.02;
    auto density = [&](const Point2& p) {
        double best = std::numeric_limits<double>::infinity();
        for (const auto& c : circles)
            best = std::min(best, std::abs(distance(p, c.c) - c.r));
        return 0.05 + 0.95 * std::exp(-(best * best) / (2.0 * shellWidth * shellWidth));
    };

    Mesh2 mesh;
    mesh.name = "bubbles-n" + std::to_string(n) + "-b" + std::to_string(bubbles);
    mesh.meshClass = MeshClass::Dim2;
    mesh.points = sampleDensity(n, rng, density);
    mesh.graph = delaunayTriangulate2d(mesh.points);
    return mesh;
}

Mesh2 femMesh2d(std::int64_t n, std::uint64_t seed) {
    GEO_REQUIRE(n >= 3, "need n >= 3 points");
    Xoshiro256 rng(seed);

    // Elliptic "airfoil" body centered left of the domain middle; points
    // inside the body are rejected (hole), density decays with distance
    // from the body surface (boundary-layer grading).
    const Point2 center{{0.35, 0.5}};
    const double ax = 0.18, ay = 0.045;
    auto bodyValue = [&](const Point2& p) {
        const double dx = (p[0] - center[0]) / ax;
        const double dy = (p[1] - center[1]) / ay;
        return dx * dx + dy * dy;  // < 1 inside the body
    };
    auto density = [&](const Point2& p) {
        const double v = bodyValue(p);
        if (v < 1.0) return 0.0;  // hole
        // Approximate surface distance through the level-set value.
        const double d = (std::sqrt(v) - 1.0) * std::min(ax, ay);
        return 0.04 + 0.96 * std::exp(-d / 0.05);
    };

    Mesh2 mesh;
    mesh.name = "fem2d-n" + std::to_string(n);
    mesh.meshClass = MeshClass::Dim2;
    mesh.points = sampleDensity(n, rng, density);
    mesh.graph = delaunayTriangulate2d(mesh.points);
    return mesh;
}

}  // namespace geo::gen
