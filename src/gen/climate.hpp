// 2.5D climate-simulation meshes (FESOM analog).
//
// Atmosphere/ocean models partition a 2D surface mesh whose node weights
// encode the number of vertical grid levels below each surface point (§1 of
// the paper). We synthesize: a lon-lat style rectangle, land regions cut out
// by a smooth random field (coastlines), mesh density increased near the
// coastline (as in FESOM meshes), and node weights proportional to local
// ocean depth drawn from the same field.
#pragma once

#include <cstdint>

#include "gen/mesh.hpp"

namespace geo::gen {

/// n surface points; weights in [1, maxLevels]. The mesh is connected
/// (largest ocean component is kept and re-indexed).
Mesh2 climate25d(std::int64_t n, int maxLevels, std::uint64_t seed);

}  // namespace geo::gen
