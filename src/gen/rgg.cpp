#include "gen/rgg.hpp"

#include <array>
#include <cmath>
#include <numbers>

#include "geometry/box.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace geo::gen {

namespace {

/// Uniform grid bucket index over the bounding box with cell size >= radius,
/// so all neighbors of a point lie in the 3^D adjacent cells.
template <int D>
class BucketGrid {
public:
    BucketGrid(std::span<const Point<D>> points, double radius)
        : points_(points), bounds_(Box<D>::around(points)), radius_(radius) {
        GEO_REQUIRE(radius > 0.0, "radius must be positive");
        for (int i = 0; i < D; ++i) {
            const double extent = std::max(bounds_.hi[i] - bounds_.lo[i], 1e-300);
            cells_[static_cast<std::size_t>(i)] =
                std::max<std::int64_t>(1, static_cast<std::int64_t>(extent / radius));
        }
        std::int64_t totalCells = 1;
        for (int i = 0; i < D; ++i) totalCells *= cells_[static_cast<std::size_t>(i)];
        buckets_.resize(static_cast<std::size_t>(totalCells));
        for (std::size_t p = 0; p < points.size(); ++p)
            buckets_[cellOf(points[p])].push_back(static_cast<std::int32_t>(p));
    }

    /// Visit all point indices in the 3^D neighborhood of p's cell.
    template <typename Visitor>
    void forNeighborhood(const Point<D>& p, Visitor&& visit) const {
        std::array<std::int64_t, D> c = coords(p);
        std::array<std::int64_t, D> it{};
        visitRec(c, it, 0, visit);
    }

private:
    std::size_t cellOf(const Point<D>& p) const {
        const auto c = coords(p);
        std::int64_t idx = 0;
        for (int i = 0; i < D; ++i) idx = idx * cells_[static_cast<std::size_t>(i)] + c[static_cast<std::size_t>(i)];
        return static_cast<std::size_t>(idx);
    }

    std::array<std::int64_t, D> coords(const Point<D>& p) const {
        std::array<std::int64_t, D> c{};
        for (int i = 0; i < D; ++i) {
            const double extent = std::max(bounds_.hi[i] - bounds_.lo[i], 1e-300);
            auto v = static_cast<std::int64_t>((p[i] - bounds_.lo[i]) / extent *
                                               static_cast<double>(cells_[static_cast<std::size_t>(i)]));
            c[static_cast<std::size_t>(i)] =
                std::clamp<std::int64_t>(v, 0, cells_[static_cast<std::size_t>(i)] - 1);
        }
        return c;
    }

    template <typename Visitor>
    void visitRec(const std::array<std::int64_t, D>& center, std::array<std::int64_t, D>& it,
                  int dim, Visitor& visit) const {
        if (dim == D) {
            std::int64_t idx = 0;
            for (int i = 0; i < D; ++i) idx = idx * cells_[static_cast<std::size_t>(i)] + it[static_cast<std::size_t>(i)];
            for (const auto p : buckets_[static_cast<std::size_t>(idx)]) visit(p);
            return;
        }
        for (std::int64_t d = -1; d <= 1; ++d) {
            const std::int64_t v = center[static_cast<std::size_t>(dim)] + d;
            if (v < 0 || v >= cells_[static_cast<std::size_t>(dim)]) continue;
            it[static_cast<std::size_t>(dim)] = v;
            visitRec(center, it, dim + 1, visit);
        }
    }

    std::span<const Point<D>> points_;
    Box<D> bounds_;
    double radius_;
    std::array<std::int64_t, D> cells_{};
    std::vector<std::vector<std::int32_t>> buckets_;
};

}  // namespace

template <int D>
graph::CsrGraph radiusGraph(std::span<const Point<D>> points, double radius) {
    const BucketGrid<D> grid(points, radius);
    graph::GraphBuilder builder(static_cast<graph::Vertex>(points.size()));
    const double r2 = radius * radius;
    for (std::size_t v = 0; v < points.size(); ++v) {
        grid.forNeighborhood(points[v], [&](std::int32_t u) {
            if (static_cast<std::size_t>(u) <= v) return;  // each pair once
            if (squaredDistance(points[v], points[static_cast<std::size_t>(u)]) <= r2)
                builder.addEdge(static_cast<graph::Vertex>(v), u);
        });
    }
    return builder.build();
}

Mesh2 rgg2d(std::int64_t n, double radius, std::uint64_t seed) {
    GEO_REQUIRE(n >= 2, "rgg needs at least 2 points");
    if (radius <= 0.0) {
        radius = 1.5 * std::sqrt(std::log(static_cast<double>(n)) /
                                 (std::numbers::pi * static_cast<double>(n)));
    }
    Xoshiro256 rng(seed);
    Mesh2 mesh;
    mesh.name = "rgg2d-n" + std::to_string(n);
    mesh.meshClass = MeshClass::Dim2;
    mesh.points.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
        mesh.points.push_back(Point2{{rng.uniform(), rng.uniform()}});
    mesh.graph = radiusGraph<2>(mesh.points, radius);
    return mesh;
}

Mesh3 rgg3d(std::int64_t n, double radius, std::uint64_t seed) {
    GEO_REQUIRE(n >= 2, "rgg needs at least 2 points");
    if (radius <= 0.0) {
        radius = 1.5 * std::cbrt(std::log(static_cast<double>(n)) /
                                 (std::numbers::pi * static_cast<double>(n)));
    }
    Xoshiro256 rng(seed);
    Mesh3 mesh;
    mesh.name = "rgg3d-n" + std::to_string(n);
    mesh.meshClass = MeshClass::Dim3;
    mesh.points.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
        mesh.points.push_back(Point3{{rng.uniform(), rng.uniform(), rng.uniform()}});
    mesh.graph = radiusGraph<3>(mesh.points, radius);
    return mesh;
}

template graph::CsrGraph radiusGraph<2>(std::span<const Point2>, double);
template graph::CsrGraph radiusGraph<3>(std::span<const Point3>, double);

}  // namespace geo::gen
