#include "gen/registry.hpp"

#include "gen/alya.hpp"
#include "gen/climate.hpp"
#include "gen/delaunay2d.hpp"
#include "gen/delaunay3d.hpp"
#include "gen/meshes2d.hpp"
#include "gen/rgg.hpp"

namespace geo::gen {

const std::vector<Instance2Spec>& catalog2d() {
    static const std::vector<Instance2Spec> specs = {
        {"hugetric-analog", MeshClass::Dim2,
         [](std::int64_t n, std::uint64_t seed) { return refinedTriMesh(n, 3, seed); }},
        {"hugetrace-analog", MeshClass::Dim2,
         [](std::int64_t n, std::uint64_t seed) { return refinedTriMesh(n, 1, seed); }},
        {"hugebubbles-analog", MeshClass::Dim2,
         [](std::int64_t n, std::uint64_t seed) { return bubbleMesh(n, 4, seed); }},
        {"fem2d-analog", MeshClass::Dim2,
         [](std::int64_t n, std::uint64_t seed) { return femMesh2d(n, seed); }},
        {"rgg2d", MeshClass::Dim2,
         [](std::int64_t n, std::uint64_t seed) { return rgg2d(n, 0.0, seed); }},
        {"delaunay2d", MeshClass::Dim2,
         [](std::int64_t n, std::uint64_t seed) { return delaunay2d(n, seed); }},
        {"fesom-analog", MeshClass::Dim25,
         [](std::int64_t n, std::uint64_t seed) { return climate25d(n, 40, seed); }},
        {"fesom-shallow-analog", MeshClass::Dim25,
         [](std::int64_t n, std::uint64_t seed) { return climate25d(n, 10, seed); }},
    };
    return specs;
}

const std::vector<Instance3Spec>& catalog3d() {
    static const std::vector<Instance3Spec> specs = {
        {"alya-analog", MeshClass::Dim3,
         [](std::int64_t n, std::uint64_t seed) { return alya3d(n, 6, seed); }},
        {"delaunay3d", MeshClass::Dim3,
         [](std::int64_t n, std::uint64_t seed) { return delaunay3d(n, seed); }},
        {"rgg3d", MeshClass::Dim3,
         [](std::int64_t n, std::uint64_t seed) { return rgg3d(n, 0.0, seed); }},
    };
    return specs;
}

}  // namespace geo::gen
