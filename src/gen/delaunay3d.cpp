#include "gen/delaunay3d.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "geometry/box.hpp"
#include "sfc/hilbert.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace geo::gen {

namespace {

using Real = long double;

/// > 0 iff d lies on the positive side of the oriented plane (a, b, c).
Real orient3d(const Point3& a, const Point3& b, const Point3& c, const Point3& d) {
    const Real adx = static_cast<Real>(a[0]) - d[0];
    const Real ady = static_cast<Real>(a[1]) - d[1];
    const Real adz = static_cast<Real>(a[2]) - d[2];
    const Real bdx = static_cast<Real>(b[0]) - d[0];
    const Real bdy = static_cast<Real>(b[1]) - d[1];
    const Real bdz = static_cast<Real>(b[2]) - d[2];
    const Real cdx = static_cast<Real>(c[0]) - d[0];
    const Real cdy = static_cast<Real>(c[1]) - d[1];
    const Real cdz = static_cast<Real>(c[2]) - d[2];
    return adx * (bdy * cdz - bdz * cdy) - ady * (bdx * cdz - bdz * cdx) +
           adz * (bdx * cdy - bdy * cdx);
}

/// inSphere determinant; the *sign convention* depends on the orientation of
/// (a, b, c, d), so callers normalize with orient3d.
Real inSphereRaw(const Point3& a, const Point3& b, const Point3& c, const Point3& d,
                 const Point3& p) {
    const auto row = [&](const Point3& q, Real out[4]) {
        out[0] = static_cast<Real>(q[0]) - p[0];
        out[1] = static_cast<Real>(q[1]) - p[1];
        out[2] = static_cast<Real>(q[2]) - p[2];
        out[3] = out[0] * out[0] + out[1] * out[1] + out[2] * out[2];
    };
    Real m[4][4];
    row(a, m[0]);
    row(b, m[1]);
    row(c, m[2]);
    row(d, m[3]);

    auto det3 = [](Real a00, Real a01, Real a02, Real a10, Real a11, Real a12, Real a20,
                   Real a21, Real a22) {
        return a00 * (a11 * a22 - a12 * a21) - a01 * (a10 * a22 - a12 * a20) +
               a02 * (a10 * a21 - a11 * a20);
    };
    Real det = 0;
    for (int i = 0; i < 4; ++i) {
        Real sub[3][3];
        int rr = 0;
        for (int r = 0; r < 4; ++r) {
            if (r == i) continue;
            sub[rr][0] = m[r][1];
            sub[rr][1] = m[r][2];
            sub[rr][2] = m[r][3];
            ++rr;
        }
        const Real minor = det3(sub[0][0], sub[0][1], sub[0][2], sub[1][0], sub[1][1],
                                sub[1][2], sub[2][0], sub[2][1], sub[2][2]);
        det += ((i % 2 == 0) ? 1 : -1) * m[i][0] * minor;
    }
    return det;
}

struct Tet {
    std::array<std::int32_t, 4> v;
    std::array<std::int32_t, 4> nbr;  // nbr[i] = tet across face opposite v[i]
    bool alive = true;
};

class Tetrahedralization {
public:
    explicit Tetrahedralization(std::span<const Point3> input)
        : n_(static_cast<std::int32_t>(input.size())) {
        GEO_REQUIRE(input.size() >= 4, "3D Delaunay needs >= 4 points");
        pts_.assign(input.begin(), input.end());
        const auto bb = Box3::around(input);
        const Point3 c = bb.center();
        const double span =
            std::max({bb.hi[0] - bb.lo[0], bb.hi[1] - bb.lo[1], bb.hi[2] - bb.lo[2], 1e-9});
        const double r = 64.0 * span;
        // Large regular-ish tetrahedron around the domain.
        pts_.push_back(Point3{{c[0] - 2.0 * r, c[1] - r, c[2] - r}});
        pts_.push_back(Point3{{c[0] + 2.0 * r, c[1] - r, c[2] - r}});
        pts_.push_back(Point3{{c[0], c[1] + 2.0 * r, c[2] - r}});
        pts_.push_back(Point3{{c[0], c[1], c[2] + 2.0 * r}});
        Tet super{{n_, n_ + 1, n_ + 2, n_ + 3}, {-1, -1, -1, -1}, true};
        // Normalize orientation so orient3d(v0,v1,v2,v3) > 0.
        if (orient3d(at(super.v[0]), at(super.v[1]), at(super.v[2]), at(super.v[3])) < 0)
            std::swap(super.v[0], super.v[1]);
        tets_.push_back(super);
        mark_.push_back(0);

        std::vector<std::pair<std::uint64_t, std::int32_t>> order;
        order.reserve(input.size());
        for (std::int32_t i = 0; i < n_; ++i)
            order.emplace_back(sfc::hilbertIndex<3>(input[static_cast<std::size_t>(i)], bb), i);
        std::sort(order.begin(), order.end());
        for (const auto& [key, i] : order) insert(i);
    }

    [[nodiscard]] std::vector<std::array<std::int32_t, 4>> realTets() const {
        std::vector<std::array<std::int32_t, 4>> out;
        for (const auto& t : tets_) {
            if (!t.alive) continue;
            if (t.v[0] >= n_ || t.v[1] >= n_ || t.v[2] >= n_ || t.v[3] >= n_) continue;
            out.push_back(t.v);
        }
        return out;
    }

private:
    const Point3& at(std::int32_t v) const { return pts_[static_cast<std::size_t>(v)]; }

    /// The three vertices of face i (opposite v[i]) in an order that has
    /// positive orientation with v[i] on the inside.
    std::array<std::int32_t, 3> face(const Tet& t, int i) const {
        // For a positively oriented tet (v0,v1,v2,v3), the faces listed so
        // that orient3d(face, v[i]) > 0:
        static constexpr int idx[4][3] = {{1, 3, 2}, {0, 2, 3}, {0, 3, 1}, {0, 1, 2}};
        return {t.v[static_cast<std::size_t>(idx[i][0])],
                t.v[static_cast<std::size_t>(idx[i][1])],
                t.v[static_cast<std::size_t>(idx[i][2])]};
    }

    std::int32_t locate(const Point3& p, std::int32_t start) const {
        std::int32_t t = start;
        for (std::int64_t steps = 0; steps < static_cast<std::int64_t>(tets_.size()) + 8;
             ++steps) {
            const Tet& tet = tets_[static_cast<std::size_t>(t)];
            bool moved = false;
            for (int i = 0; i < 4; ++i) {
                const auto f = face(tet, i);
                if (orient3d(at(f[0]), at(f[1]), at(f[2]), p) < 0) {
                    const auto next = tet.nbr[static_cast<std::size_t>(i)];
                    GEO_CHECK(next >= 0, "walk left the super tetrahedron");
                    t = next;
                    moved = true;
                    break;
                }
            }
            if (!moved) return t;
        }
        GEO_CHECK(false, "3D point location walk did not terminate");
        return -1;
    }

    bool circumsphereContains(const Tet& t, const Point3& p) const {
        const Real o = orient3d(at(t.v[0]), at(t.v[1]), at(t.v[2]), at(t.v[3]));
        const Real s = inSphereRaw(at(t.v[0]), at(t.v[1]), at(t.v[2]), at(t.v[3]), p);
        // For positively oriented tets the raw determinant is positive
        // inside; normalize by the orientation sign for safety.
        return (o > 0) ? (s > 0) : (s < 0);
    }

    bool inCavity(std::int32_t t) const { return mark_[static_cast<std::size_t>(t)] == epoch_; }

    static std::uint64_t faceKey(std::int32_t a, std::int32_t b, std::int32_t c) {
        std::array<std::int32_t, 3> s{a, b, c};
        std::sort(s.begin(), s.end());
        return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s[0])) << 42) ^
               (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s[1])) << 21) ^
               static_cast<std::uint64_t>(static_cast<std::uint32_t>(s[2]));
    }

    void insert(std::int32_t vp) {
        const Point3& p = at(vp);
        const std::int32_t seedTet = locate(p, lastTet_);
        ++epoch_;

        cavity_.clear();
        std::vector<std::int32_t> stack{seedTet};
        mark_[static_cast<std::size_t>(seedTet)] = epoch_;
        while (!stack.empty()) {
            const auto t = stack.back();
            stack.pop_back();
            cavity_.push_back(t);
            for (const auto nb : tets_[static_cast<std::size_t>(t)].nbr) {
                if (nb < 0 || inCavity(nb)) continue;
                if (circumsphereContains(tets_[static_cast<std::size_t>(nb)], p)) {
                    mark_[static_cast<std::size_t>(nb)] = epoch_;
                    stack.push_back(nb);
                }
            }
        }

        // Boundary faces of the cavity with their outside tet.
        struct BoundaryFace {
            std::array<std::int32_t, 3> f;  // oriented: positive with p inside
            std::int32_t outside;
        };
        std::vector<BoundaryFace> boundary;
        for (const auto t : cavity_) {
            const Tet& tet = tets_[static_cast<std::size_t>(t)];
            for (int i = 0; i < 4; ++i) {
                const auto nb = tet.nbr[static_cast<std::size_t>(i)];
                if (nb >= 0 && inCavity(nb)) continue;
                // face(tet, i) is oriented positively towards v[i], i.e.
                // towards the cavity interior that contains p.
                boundary.push_back(BoundaryFace{face(tet, i), nb});
            }
        }
        GEO_CHECK(boundary.size() >= 4, "3D cavity boundary must enclose a volume");

        for (const auto t : cavity_) tets_[static_cast<std::size_t>(t)].alive = false;

        // Create one new tet per boundary face: (f0, f1, f2, p). Orientation
        // is positive because the face is oriented with p on its positive
        // side. Face opposite p is the boundary face (links outward); the
        // other three faces are internal and shared pairwise between new
        // tets — stitched via a face-key map.
        std::unordered_map<std::uint64_t, std::pair<std::int32_t, int>> open;
        open.reserve(boundary.size() * 3);
        const auto firstNew = static_cast<std::int32_t>(tets_.size());
        for (const auto& bf : boundary) {
            const auto id = static_cast<std::int32_t>(tets_.size());
            Tet tet;
            tet.v = {bf.f[0], bf.f[1], bf.f[2], vp};
            tet.nbr = {-1, -1, -1, bf.outside};
            tets_.push_back(tet);
            mark_.push_back(0);
            if (bf.outside >= 0) {
                Tet& out = tets_[static_cast<std::size_t>(bf.outside)];
                for (int i = 0; i < 4; ++i) {
                    const auto of = face(out, i);
                    if (faceKey(of[0], of[1], of[2]) == faceKey(bf.f[0], bf.f[1], bf.f[2])) {
                        out.nbr[static_cast<std::size_t>(i)] = id;
                        break;
                    }
                }
            }
        }
        const auto lastNew = static_cast<std::int32_t>(tets_.size()) - 1;
        for (std::int32_t id = firstNew; id <= lastNew; ++id) {
            // Internal faces are those containing vp: faces opposite
            // v[0], v[1], v[2].
            for (int i = 0; i < 3; ++i) {
                const Tet& tet = tets_[static_cast<std::size_t>(id)];
                const auto f = face(tet, i);
                const auto key = faceKey(f[0], f[1], f[2]);
                const auto it = open.find(key);
                if (it == open.end()) {
                    open.emplace(key, std::pair(id, i));
                } else {
                    const auto [otherId, otherFace] = it->second;
                    tets_[static_cast<std::size_t>(id)].nbr[static_cast<std::size_t>(i)] =
                        otherId;
                    tets_[static_cast<std::size_t>(otherId)]
                        .nbr[static_cast<std::size_t>(otherFace)] = id;
                    open.erase(it);
                }
            }
        }
        GEO_CHECK(open.empty(), "unmatched internal faces after cavity fill");
        lastTet_ = firstNew;
    }

    std::int32_t n_;
    std::vector<Point3> pts_;
    std::vector<Tet> tets_;
    std::vector<std::uint32_t> mark_;
    std::uint32_t epoch_ = 0;
    std::int32_t lastTet_ = 0;
    std::vector<std::int32_t> cavity_;
};

}  // namespace

std::vector<std::array<std::int32_t, 4>> delaunayTets3d(std::span<const Point3> points) {
    const Tetrahedralization tr(points);
    return tr.realTets();
}

graph::CsrGraph delaunayTriangulate3d(std::span<const Point3> points) {
    const auto tets = delaunayTets3d(points);
    graph::GraphBuilder builder(static_cast<graph::Vertex>(points.size()));
    for (const auto& t : tets) {
        for (int i = 0; i < 4; ++i)
            for (int j = i + 1; j < 4; ++j)
                builder.addEdge(t[static_cast<std::size_t>(i)], t[static_cast<std::size_t>(j)]);
    }
    return builder.build();
}

Mesh3 delaunay3d(std::int64_t n, std::uint64_t seed) {
    GEO_REQUIRE(n >= 4, "delaunay3d needs >= 4 points");
    Xoshiro256 rng(seed);
    Mesh3 mesh;
    mesh.name = "delaunay3d-n" + std::to_string(n);
    mesh.meshClass = MeshClass::Dim3;
    mesh.points.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
        mesh.points.push_back(Point3{{rng.uniform(), rng.uniform(), rng.uniform()}});
    mesh.graph = delaunayTriangulate3d(mesh.points);
    return mesh;
}

}  // namespace geo::gen
