#include "hier/hier_partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/assert.hpp"

namespace geo::hier {

namespace {

/// Depth-first walk over the topology tree. Every visited node runs one
/// (kk = branching)-way warm-startable sub-partition on its point subset;
/// aggregation is per level because sibling runs model disjoint machine
/// parts working concurrently.
template <int D>
class HierRun {
public:
    HierRun(const Topology& topo, std::span<const Point<D>> points,
            std::span<const double> weights, const core::Settings& settings, int ranks,
            const repart::RepartOptions& options, par::CostModel model,
            HierState<D>& state, HierResult& out)
        : topo_(topo),
          points_(points),
          weights_(weights),
          settings_(settings),
          ranks_(ranks),
          options_(options),
          model_(model),
          state_(state),
          out_(out) {
        // Breadth-first node numbering: level l holds the product of the
        // branching factors above it.
        levelOffset_.assign(static_cast<std::size_t>(topo_.depth()) + 1, 0);
        std::size_t nodesAtLevel = 1;
        for (int l = 0; l < topo_.depth(); ++l) {
            levelOffset_[static_cast<std::size_t>(l) + 1] =
                levelOffset_[static_cast<std::size_t>(l)] + nodesAtLevel;
            nodesAtLevel *= static_cast<std::size_t>(topo_.levels[static_cast<std::size_t>(l)].branching);
        }
        const std::size_t internalNodes = levelOffset_.back();
        if (state_.nodes.empty()) state_.nodes.resize(internalNodes);
        GEO_REQUIRE(state_.nodes.size() == internalNodes,
                    "HierState does not match the topology (node count differs)");
        out_.nodeDiagrams.resize(internalNodes);
        levelAgg_.resize(static_cast<std::size_t>(topo_.depth()));
        // Per-level imbalances compound multiplicatively (a leaf can be over
        // target at every level of its path), so split the user's epsilon:
        // (1 + eps_level)^depth = 1 + eps keeps the end-to-end guarantee
        // comparable with a flat run at the same epsilon.
        levelEpsilon_ = std::pow(1.0 + settings_.epsilon,
                                 1.0 / static_cast<double>(topo_.depth())) -
                        1.0;
    }

    void run() {
        std::vector<std::int64_t> all(points_.size());
        std::iota(all.begin(), all.end(), std::int64_t{0});
        visit(/*level=*/0, /*indexInLevel=*/0, std::move(all), /*leafBase=*/0, ranks_);
        // Fold the per-level aggregates: levels run one after the other.
        for (const auto& agg : levelAgg_) {
            for (const auto& [phase, seconds] : agg.phaseMax)
                out_.phaseSeconds[phase] += seconds;
            out_.modeledSeconds += agg.modeledMax;
        }
    }

private:
    struct LevelAgg {
        std::map<std::string, double> phaseMax;
        double modeledMax = 0.0;
    };

    [[nodiscard]] std::int32_t leavesBelow(int level) const {
        std::int64_t count = 1;
        for (int l = level + 1; l < topo_.depth(); ++l)
            count *= topo_.levels[static_cast<std::size_t>(l)].branching;
        return static_cast<std::int32_t>(count);
    }

    void visit(int level, std::size_t indexInLevel, std::vector<std::int64_t> indices,
               std::int32_t leafBase, int ranks) {
        const auto& tl = topo_.levels[static_cast<std::size_t>(level)];
        const std::int32_t kk = tl.branching;
        GEO_REQUIRE(static_cast<std::int64_t>(indices.size()) >= kk,
                    "hierarchical recursion ran out of points (need at least one "
                    "point per child at every node)");

        // Gather this node's subset — except when it IS the whole input
        // (the root, or any node below an all-pass-through branching-1
        // chain), where indices is the identity and the original spans
        // serve directly, sparing a full-size copy held across the whole
        // recursion.
        std::span<const Point<D>> subPoints = points_;
        std::span<const double> subWeights = weights_;
        std::vector<Point<D>> gatheredPoints;
        std::vector<double> gatheredWeights;
        if (indices.size() != points_.size()) {
            gatheredPoints.reserve(indices.size());
            for (const auto i : indices)
                gatheredPoints.push_back(points_[static_cast<std::size_t>(i)]);
            subPoints = gatheredPoints;
            if (!weights_.empty()) {
                gatheredWeights.reserve(indices.size());
                for (const auto i : indices)
                    gatheredWeights.push_back(weights_[static_cast<std::size_t>(i)]);
                subWeights = gatheredWeights;
            }
        }

        core::Settings sub = settings_;
        sub.targetFractions = tl.capacities;  // empty = uniform children
        sub.epsilon = levelEpsilon_;

        const std::size_t nodeId = levelOffset_[static_cast<std::size_t>(level)] + indexInLevel;
        const auto res = repart::repartitionGeographer<D>(
            subPoints, subWeights, kk, ranks, sub, state_.nodes[nodeId], options_, model_);

        auto& agg = levelAgg_[static_cast<std::size_t>(level)];
        for (const auto& [phase, seconds] : res.result.phaseSeconds)
            agg.phaseMax[phase] = std::max(agg.phaseMax[phase], seconds);
        agg.modeledMax = std::max(agg.modeledMax, res.result.modeledSeconds);
        out_.counters.merge(res.result.counters);
        out_.converged = out_.converged && res.result.converged;
        res.warmStarted ? ++out_.warmNodes : ++out_.coldNodes;
        // Freeze this node's serving diagram: the pair its share of the
        // partition is the exact argmin of (see GeographerResult).
        out_.nodeDiagrams[nodeId] = HierResult::NodeDiagram{
            res.result.centerCoords, res.result.assignmentInfluence.empty()
                                         ? res.result.influence
                                         : res.result.assignmentInfluence};

        // Route every point to its child; recurse or, at the last level,
        // commit the leaf as the flat block id.
        const std::int32_t span = leavesBelow(level);
        std::vector<std::vector<std::int64_t>> childIndices(static_cast<std::size_t>(kk));
        for (std::size_t i = 0; i < indices.size(); ++i)
            childIndices[static_cast<std::size_t>(res.result.partition[i])].push_back(indices[i]);
        for (std::int32_t c = 0; c < kk; ++c) {
            if (level + 1 == topo_.depth()) {
                for (const auto i : childIndices[static_cast<std::size_t>(c)])
                    out_.partition[static_cast<std::size_t>(i)] = leafBase + c;
            } else {
                visit(level + 1, indexInLevel * static_cast<std::size_t>(kk) +
                                     static_cast<std::size_t>(c),
                      std::move(childIndices[static_cast<std::size_t>(c)]),
                      leafBase + c * span, std::max(1, ranks / kk));
            }
        }
    }

    const Topology& topo_;
    std::span<const Point<D>> points_;
    std::span<const double> weights_;
    const core::Settings& settings_;
    int ranks_;
    const repart::RepartOptions& options_;
    par::CostModel model_;
    HierState<D>& state_;
    HierResult& out_;
    std::vector<std::size_t> levelOffset_;
    std::vector<LevelAgg> levelAgg_;
    double levelEpsilon_ = 0.0;
};

}  // namespace

template <int D>
HierResult repartitionHierarchical(std::span<const Point<D>> points,
                                   std::span<const double> weights,
                                   const Topology& topo, int ranks,
                                   const core::Settings& settings, HierState<D>& state,
                                   const repart::RepartOptions& options,
                                   par::CostModel model) {
    topo.validate();
    GEO_REQUIRE(ranks >= 1, "need at least one rank");
    GEO_REQUIRE(weights.empty() || weights.size() == points.size(),
                "weights must be empty or match points");
    GEO_REQUIRE(settings.targetFractions.empty(),
                "per-block targets come from the topology capacities; leave "
                "Settings::targetFractions empty");
    GEO_REQUIRE(settings.initialInfluence.empty(),
                "warm-start state is carried per topology node in HierState; leave "
                "Settings::initialInfluence empty");
    const std::int32_t k = topo.leafCount();
    GEO_REQUIRE(static_cast<std::int64_t>(points.size()) >= k, "need at least k points");

    HierResult out;
    out.partition.assign(points.size(), -1);
    out.blockLeaf.resize(static_cast<std::size_t>(k));
    std::iota(out.blockLeaf.begin(), out.blockLeaf.end(), 0);
    out.leafCapacities = topo.leafCapacities();

    // Run against a scratch copy and commit on success: a failure deep in
    // the recursion (e.g. a node's subset running out of points) must not
    // leave the caller's state with this step's root split but last step's
    // child splits.
    HierState<D> next = state;
    HierRun<D> run(topo, points, weights, settings, ranks, options, model, next, out);
    run.run();
    state = std::move(next);

    for (const auto b : out.partition)
        GEO_CHECK(b >= 0 && b < k, "every point must be assigned a leaf block");
    out.imbalance = graph::imbalance(out.partition, k, weights, out.leafCapacities,
                                     settings.resolvedThreads());
    return out;
}

template <int D>
HierResult partitionHierarchical(std::span<const Point<D>> points,
                                 std::span<const double> weights, const Topology& topo,
                                 int ranks, const core::Settings& settings,
                                 par::CostModel model) {
    // A fresh state is never warmable, so every node runs the cold pipeline;
    // the state itself is discarded.
    HierState<D> scratch;
    return repartitionHierarchical<D>(points, weights, topo, ranks, settings, scratch, {},
                                      model);
}

double topologySpmvCommSeconds(const graph::CsrGraph& g, const graph::Partition& part,
                               const Topology& topo, const par::CostModel& model,
                               std::size_t bytesPerValue, int threads) {
    const std::int32_t k = topo.leafCount();
    graph::validatePartition(g, part, k);
    const auto cost = topo.blockCostMatrix();
    const auto kk = static_cast<std::size_t>(k);
    const auto pairs = graph::ghostPairCounts(g, part, k, threads);
    double worst = 0.0;
    for (std::size_t receiver = 0; receiver < kk; ++receiver) {
        double recvWeightedBytes = 0.0;
        std::int32_t neighborCount = 0;
        for (std::size_t owner = 0; owner < kk; ++owner) {
            const auto idx = receiver * kk + owner;
            if (pairs[idx] == 0) continue;
            recvWeightedBytes += static_cast<double>(pairs[idx]) * cost[idx] *
                                 static_cast<double>(bytesPerValue);
            neighborCount++;
        }
        worst = std::max(worst, model.alpha * neighborCount +
                                    model.beta * recvWeightedBytes);
    }
    return worst;
}

template HierResult partitionHierarchical<2>(std::span<const Point2>,
                                             std::span<const double>, const Topology&,
                                             int, const core::Settings&, par::CostModel);
template HierResult partitionHierarchical<3>(std::span<const Point3>,
                                             std::span<const double>, const Topology&,
                                             int, const core::Settings&, par::CostModel);
template HierResult repartitionHierarchical<2>(std::span<const Point2>,
                                               std::span<const double>, const Topology&,
                                               int, const core::Settings&, HierState<2>&,
                                               const repart::RepartOptions&,
                                               par::CostModel);
template HierResult repartitionHierarchical<3>(std::span<const Point3>,
                                               std::span<const double>, const Topology&,
                                               int, const core::Settings&, HierState<3>&,
                                               const repart::RepartOptions&,
                                               par::CostModel);

}  // namespace geo::hier
