// Hierarchical balanced k-means over a machine topology tree.
//
// The paper's pipeline is flat: k blocks, one level. Its cost model (and
// ours, par::CostModel::crossIslandFactor) says traffic across interconnect
// islands is ~2.5× more expensive than within — so the partition should
// *match the machine*. partitionHierarchical runs the existing balanced
// k-means level by level over a Topology: the top level splits all points
// into one part per island with targetFractions derived from the islands'
// subtree capacities, then recurses into each part for the next level, down
// to one block per leaf. Blocks of the same subtree end up geometrically
// adjacent, so the expensive top-level cuts are the short ones.
//
// Sibling sub-runs at a level describe disjoint machine parts working
// concurrently: each recursion level divides the simulated ranks among the
// children, and the modeled time charges max-over-siblings per level.
//
// repartitionHierarchical is the time-stepped variant: every tree node
// carries its own repart::RepartState (centers + influence of its split),
// warm-starting level by level exactly like src/repart does for the flat
// pipeline.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/geographer.hpp"
#include "core/settings.hpp"
#include "graph/metrics.hpp"
#include "hier/topology.hpp"
#include "par/cost_model.hpp"
#include "repart/repartition.hpp"

namespace geo::hier {

struct HierResult {
    /// Block per original (input-order) point; block ids are leaf ids.
    graph::Partition partition;
    /// Block → topology leaf. Identity by construction (blocks are numbered
    /// in depth-first leaf order), recorded explicitly so downstream mapping
    /// code does not have to rely on that convention.
    std::vector<std::int32_t> blockLeaf;
    /// Normalized capacity share per block — the targetFractions to pass to
    /// graph::imbalance / evaluatePartition.
    std::vector<double> leafCapacities;
    /// Achieved imbalance against leafCapacities (target-aware definition).
    double imbalance = 0.0;
    /// All per-node k-means runs converged.
    bool converged = true;
    /// Loop counters merged over every node run.
    core::KMeansCounters counters;
    /// Per-phase time: per level the max over that level's sibling runs
    /// (they model disjoint machine parts running concurrently), summed
    /// over levels.
    std::map<std::string, double> phaseSeconds;
    /// Modeled parallel time: max over siblings within a level, summed over
    /// levels (+ probe costs on the repartitioning path).
    double modeledSeconds = 0.0;
    /// Node runs that warm-started / ran the cold pipeline
    /// (repartitionHierarchical only; partitionHierarchical is all cold).
    int warmNodes = 0;
    int coldNodes = 0;

    /// Weighted-Voronoi diagram of one internal node's final split:
    /// `branching` centers (row-major × D) and the influence values the
    /// node's final assignment sweep used, so the node's share of
    /// `partition` is the exact level-local argmin of this pair.
    struct NodeDiagram {
        std::vector<double> centerCoords;
        std::vector<double> influence;
    };
    /// One diagram per internal topology node, in breadth-first node order
    /// (the HierState indexing). serve::PartitionSnapshot replays these
    /// level by level to route arbitrary points through the same descent
    /// this run performed.
    std::vector<NodeDiagram> nodeDiagrams;
};

/// Warm-start state for repartitionHierarchical: one (centers, influence)
/// pair per internal topology node, in breadth-first node order. Default
/// constructed = first call runs cold everywhere.
template <int D>
struct HierState {
    std::vector<repart::RepartState<D>> nodes;
};

/// Partition `points` into one block per topology leaf on `ranks` simulated
/// MPI processes. `settings.targetFractions` and `settings.initialInfluence`
/// must be empty — capacities come from the topology, warm-start state from
/// HierState. `settings.epsilon` is the END-TO-END imbalance target: each
/// level runs at (1 + ε)^(1/depth) − 1 so the compounded leaf imbalance
/// stays comparable to a flat run at the same ε.
template <int D>
HierResult partitionHierarchical(std::span<const Point<D>> points,
                                 std::span<const double> weights, const Topology& topo,
                                 int ranks, const core::Settings& settings,
                                 par::CostModel model = {});

/// Time-stepped variant: warm-start every node split from `state` when the
/// per-node drift probe allows, exactly like repart::repartitionGeographer.
/// On return `state` holds this step's per-node centers and influence.
template <int D>
HierResult repartitionHierarchical(std::span<const Point<D>> points,
                                   std::span<const double> weights,
                                   const Topology& topo, int ranks,
                                   const core::Settings& settings, HierState<D>& state,
                                   const repart::RepartOptions& options = {},
                                   par::CostModel model = {});

/// Modeled per-iteration SpMV halo-exchange time under the topology: each
/// block receives its ghost values in one round per neighbor block, with the
/// per-byte cost scaled by the link cost of the (receiver, owner) leaf pair;
/// the result is the slowest block's time — the topology-aware analog of
/// spmv::SpmvTiming::modeledCommSecondsPerIteration.
/// `threads` fans the ghost enumeration out over workers
/// (graph::ghostPairCounts); the per-receiver folds run in fixed owner
/// order, so the result is identical at every thread count.
double topologySpmvCommSeconds(const graph::CsrGraph& g, const graph::Partition& part,
                               const Topology& topo, const par::CostModel& model = {},
                               std::size_t bytesPerValue = sizeof(double),
                               int threads = par::defaultThreads());

extern template HierResult partitionHierarchical<2>(std::span<const Point2>,
                                                    std::span<const double>,
                                                    const Topology&, int,
                                                    const core::Settings&, par::CostModel);
extern template HierResult partitionHierarchical<3>(std::span<const Point3>,
                                                    std::span<const double>,
                                                    const Topology&, int,
                                                    const core::Settings&, par::CostModel);
extern template HierResult repartitionHierarchical<2>(
    std::span<const Point2>, std::span<const double>, const Topology&, int,
    const core::Settings&, HierState<2>&, const repart::RepartOptions&, par::CostModel);
extern template HierResult repartitionHierarchical<3>(
    std::span<const Point3>, std::span<const double>, const Topology&, int,
    const core::Settings&, HierState<3>&, const repart::RepartOptions&, par::CostModel);

}  // namespace geo::hier
