// Machine topology tree for hierarchical partitioning.
//
// A Topology describes a machine as a uniform tree: every node at level l
// has levels[l].branching children, so the leaf count is the product of the
// branching factors. Leaves are compute units (islands → nodes → cores);
// hier::partitionHierarchical assigns exactly one block per leaf. Each level
// additionally carries
//   * per-child relative capacities (heterogeneous machines, paper
//     footnote 1) — the same pattern at every node of the level, and
//   * a cross factor: the relative per-unit cost of traffic between two
//     leaves whose paths diverge at this level, mirroring
//     par::CostModel::crossIslandFactor (cross-island traffic is ~2.5× more
//     expensive than traffic inside an island).
//
// Leaves are numbered in depth-first (mixed-radix) order: the level-0 child
// index is the most significant digit. That makes leaf id == flat block id
// in hier::HierResult.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "par/cost_model.hpp"

namespace geo::hier {

struct TopologyLevel {
    /// Children per tree node at this level (≥ 1).
    std::int32_t branching = 2;
    /// Relative capacity per child; empty = uniform, else one positive
    /// value per child (normalized internally, shared by all nodes of the
    /// level).
    std::vector<double> capacities;
    /// Relative per-unit cost of traffic crossing this level (> 0). The
    /// cost of a leaf pair is the cross factor of the *topmost* level where
    /// their paths diverge.
    double crossFactor = 1.0;
};

struct Topology {
    std::vector<TopologyLevel> levels;

    /// Uniform-capacity topology from branching factors alone; the top
    /// level crosses interconnect islands and inherits the cost model's
    /// penalty factor, deeper levels cost 1.
    static Topology fromBranching(std::span<const std::int32_t> branchings,
                                  const par::CostModel& model = {});

    [[nodiscard]] int depth() const noexcept { return static_cast<int>(levels.size()); }

    /// Number of leaves = product of branching factors = number of blocks.
    [[nodiscard]] std::int32_t leafCount() const;

    /// Throws std::invalid_argument unless every level is well-formed.
    void validate() const;

    /// Normalized capacity share of every leaf (product of the per-level
    /// child capacities along its path); the targetFractions of the
    /// equivalent flat-k run.
    [[nodiscard]] std::vector<double> leafCapacities() const;

    /// Child index per level on the path from the root to `leaf`.
    [[nodiscard]] std::vector<std::int32_t> leafPath(std::int32_t leaf) const;

    /// Topmost level where the two leaves' root paths diverge; depth() when
    /// a == b (no divergence).
    [[nodiscard]] int divergenceLevel(std::int32_t a, std::int32_t b) const;

    /// Per-unit traffic cost between two leaves: crossFactor of the
    /// divergence level, 0 for a == b.
    [[nodiscard]] double linkCost(std::int32_t a, std::int32_t b) const;

    /// Flattened k × k matrix of linkCost over all leaf pairs — the weight
    /// matrix graph::topologyCommCost expects when block b maps to leaf b.
    [[nodiscard]] std::vector<double> blockCostMatrix() const;

    /// Serving rank per leaf when the machine's leaves are hosted by
    /// `ranks` processes: the same contiguous block split par::blockRange
    /// gives the SPMD runtime (leaves are depth-first ordered, so a rank's
    /// slice is a geometrically coherent subtree range).
    [[nodiscard]] std::vector<std::int32_t> leafRankMap(int ranks) const;
};

}  // namespace geo::hier
