#include "hier/topology.hpp"

#include "par/comm.hpp"
#include "support/assert.hpp"

namespace geo::hier {

Topology Topology::fromBranching(std::span<const std::int32_t> branchings,
                                 const par::CostModel& model) {
    GEO_REQUIRE(!branchings.empty(), "topology needs at least one level");
    Topology topo;
    for (std::size_t l = 0; l < branchings.size(); ++l) {
        TopologyLevel level;
        level.branching = branchings[l];
        level.crossFactor = l == 0 ? model.crossIslandFactor : 1.0;
        topo.levels.push_back(std::move(level));
    }
    topo.validate();
    return topo;
}

std::int32_t Topology::leafCount() const {
    std::int64_t count = 1;
    for (const auto& level : levels) {
        count *= level.branching;
        GEO_REQUIRE(count <= (std::int64_t{1} << 30), "topology leaf count overflows");
    }
    return static_cast<std::int32_t>(count);
}

void Topology::validate() const {
    GEO_REQUIRE(!levels.empty(), "topology needs at least one level");
    for (const auto& level : levels) {
        GEO_REQUIRE(level.branching >= 1, "branching factors must be at least 1");
        GEO_REQUIRE(level.capacities.empty() ||
                        level.capacities.size() ==
                            static_cast<std::size_t>(level.branching),
                    "need one capacity per child or none");
        for (const double c : level.capacities)
            GEO_REQUIRE(c > 0.0, "capacities must be positive");
        GEO_REQUIRE(level.crossFactor > 0.0, "cross factors must be positive");
    }
    (void)leafCount();  // overflow check
}

std::vector<double> Topology::leafCapacities() const {
    validate();
    std::vector<double> shares{1.0};
    for (const auto& level : levels) {
        const auto b = static_cast<std::size_t>(level.branching);
        double childSum = 0.0;
        for (std::size_t c = 0; c < b; ++c)
            childSum += level.capacities.empty() ? 1.0 : level.capacities[c];
        std::vector<double> next;
        next.reserve(shares.size() * b);
        for (const double parent : shares)
            for (std::size_t c = 0; c < b; ++c)
                next.push_back(parent *
                               (level.capacities.empty() ? 1.0 : level.capacities[c]) /
                               childSum);
        shares = std::move(next);
    }
    return shares;
}

std::vector<std::int32_t> Topology::leafPath(std::int32_t leaf) const {
    GEO_REQUIRE(leaf >= 0 && leaf < leafCount(), "leaf index out of range");
    std::vector<std::int32_t> path(levels.size());
    for (std::size_t l = levels.size(); l-- > 0;) {
        path[l] = leaf % levels[l].branching;
        leaf /= levels[l].branching;
    }
    return path;
}

int Topology::divergenceLevel(std::int32_t a, std::int32_t b) const {
    const auto pa = leafPath(a);
    const auto pb = leafPath(b);
    for (std::size_t l = 0; l < pa.size(); ++l)
        if (pa[l] != pb[l]) return static_cast<int>(l);
    return depth();
}

double Topology::linkCost(std::int32_t a, std::int32_t b) const {
    if (a == b) return 0.0;
    return levels[static_cast<std::size_t>(divergenceLevel(a, b))].crossFactor;
}

std::vector<double> Topology::blockCostMatrix() const {
    const std::int32_t k = leafCount();
    std::vector<double> cost(static_cast<std::size_t>(k) * static_cast<std::size_t>(k), 0.0);
    for (std::int32_t a = 0; a < k; ++a)
        for (std::int32_t b = 0; b < k; ++b)
            cost[static_cast<std::size_t>(a) * static_cast<std::size_t>(k) +
                 static_cast<std::size_t>(b)] = linkCost(a, b);
    return cost;
}

std::vector<std::int32_t> Topology::leafRankMap(int ranks) const {
    return par::blockRankMap(leafCount(), ranks);
}

}  // namespace geo::hier
