#include "baseline/rib.hpp"

#include <numeric>
#include <vector>

#include "baseline/split.hpp"
#include "geometry/eigen.hpp"
#include "support/assert.hpp"

namespace geo::baseline {

namespace {

template <int D>
void ribRecurse(std::span<const Point<D>> points, std::span<const double> weights,
                std::span<std::int32_t> indices, std::int32_t firstBlock, std::int32_t parts,
                graph::Partition& out, std::vector<double>& keyScratch) {
    if (parts == 1 || indices.size() <= 1) {
        for (const auto i : indices) out[static_cast<std::size_t>(i)] = firstBlock;
        return;
    }
    // Principal inertia axis of this subset.
    std::vector<Point<D>> subset;
    std::vector<double> subWeights;
    subset.reserve(indices.size());
    for (const auto i : indices) {
        subset.push_back(points[static_cast<std::size_t>(i)]);
        if (!weights.empty()) subWeights.push_back(weights[static_cast<std::size_t>(i)]);
    }
    const auto axis = principalAxis<D>(covarianceMatrix<D>(subset, subWeights));
    for (const auto i : indices)
        keyScratch[static_cast<std::size_t>(i)] = dot(points[static_cast<std::size_t>(i)], axis);

    const auto [leftParts, rightParts] = detail::halve(parts);
    const std::size_t cut = detail::weightedSplit(
        indices, keyScratch, weights,
        static_cast<double>(leftParts) / static_cast<double>(parts));
    ribRecurse<D>(points, weights, indices.subspan(0, cut), firstBlock, leftParts, out,
                  keyScratch);
    ribRecurse<D>(points, weights, indices.subspan(cut), firstBlock + leftParts, rightParts,
                  out, keyScratch);
}

}  // namespace

template <int D>
graph::Partition rib(std::span<const Point<D>> points, std::span<const double> weights,
                     std::int32_t k) {
    GEO_REQUIRE(k >= 1, "need at least one block");
    GEO_REQUIRE(static_cast<std::int64_t>(points.size()) >= k, "need at least k points");
    GEO_REQUIRE(weights.empty() || weights.size() == points.size(),
                "weights must be empty or match points");
    graph::Partition out(points.size(), 0);
    std::vector<std::int32_t> indices(points.size());
    std::iota(indices.begin(), indices.end(), 0);
    std::vector<double> keyScratch(points.size());
    ribRecurse<D>(points, weights, indices, 0, k, out, keyScratch);
    return out;
}

template graph::Partition rib<2>(std::span<const Point2>, std::span<const double>,
                                 std::int32_t);
template graph::Partition rib<3>(std::span<const Point3>, std::span<const double>,
                                 std::int32_t);

}  // namespace geo::baseline
