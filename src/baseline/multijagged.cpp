#include "baseline/multijagged.hpp"

#include <cmath>
#include <numeric>
#include <vector>

#include "baseline/split.hpp"
#include "geometry/box.hpp"
#include "support/assert.hpp"

namespace geo::baseline {

namespace {

/// Number of sections for this level: ~k^(1/levelsLeft), at least 2,
/// at most the remaining part count.
std::int32_t sectionCount(std::int32_t parts, int levelsLeft) {
    if (parts <= 2 || levelsLeft <= 1) return parts;
    const double ideal = std::pow(static_cast<double>(parts), 1.0 / levelsLeft);
    return std::clamp<std::int32_t>(static_cast<std::int32_t>(std::lround(ideal)), 2, parts);
}

/// Distribute `parts` over `sections` near-evenly (first buckets get the
/// remainder), so section weights can be proportional to block counts.
std::vector<std::int32_t> distributeParts(std::int32_t parts, std::int32_t sections) {
    std::vector<std::int32_t> out(static_cast<std::size_t>(sections), parts / sections);
    for (std::int32_t i = 0; i < parts % sections; ++i) out[static_cast<std::size_t>(i)]++;
    return out;
}

template <int D>
void mjRecurse(std::span<const Point<D>> points, std::span<const double> weights,
               std::span<std::int32_t> indices, std::int32_t firstBlock, std::int32_t parts,
               int level, int levels, int baseAxis, graph::Partition& out,
               std::vector<double>& keyScratch) {
    if (parts == 1 || indices.size() <= 1) {
        for (const auto i : indices) out[static_cast<std::size_t>(i)] = firstBlock;
        return;
    }
    if (indices.size() <= static_cast<std::size_t>(parts)) {
        // Degenerate subset: one point per block, round robin.
        for (std::size_t i = 0; i < indices.size(); ++i)
            out[static_cast<std::size_t>(indices[i])] =
                firstBlock + static_cast<std::int32_t>(i) % parts;
        return;
    }
    const std::int32_t sections = sectionCount(parts, levels - level);
    const auto sectionParts = distributeParts(parts, sections);

    // Cut axis cycles per level starting from the widest extent axis of the
    // whole input (the MJ "jagged" pattern): every level must use a
    // different axis or multisection degenerates into parallel slabs.
    const int axis = (baseAxis + level) % D;
    for (const auto i : indices)
        keyScratch[static_cast<std::size_t>(i)] = points[static_cast<std::size_t>(i)][axis];

    // Sort once, then walk the weighted quantile cuts for all sections.
    std::sort(indices.begin(), indices.end(), [&](std::int32_t a, std::int32_t b) {
        return keyScratch[static_cast<std::size_t>(a)] < keyScratch[static_cast<std::size_t>(b)];
    });
    double total = 0.0;
    for (const auto i : indices)
        total += weights.empty() ? 1.0 : weights[static_cast<std::size_t>(i)];

    std::size_t begin = 0;
    double acc = 0.0;
    std::int32_t blockCursor = firstBlock;
    std::int32_t consumedParts = 0;
    for (std::int32_t s = 0; s < sections; ++s) {
        consumedParts += sectionParts[static_cast<std::size_t>(s)];
        std::size_t end;
        if (s == sections - 1) {
            end = indices.size();
        } else {
            const double target = total * static_cast<double>(consumedParts) /
                                  static_cast<double>(parts);
            end = begin;
            while (end < indices.size() && acc < target) {
                acc += weights.empty() ? 1.0
                                       : weights[static_cast<std::size_t>(indices[end])];
                ++end;
            }
            // Keep at least one point per non-empty remaining section.
            end = std::clamp(end, begin + 1, indices.size() - (static_cast<std::size_t>(sections - 1 - s)));
        }
        mjRecurse<D>(points, weights, indices.subspan(begin, end - begin), blockCursor,
                     sectionParts[static_cast<std::size_t>(s)], level + 1, levels, baseAxis,
                     out, keyScratch);
        blockCursor += sectionParts[static_cast<std::size_t>(s)];
        begin = end;
    }
}

}  // namespace

template <int D>
graph::Partition multiJagged(std::span<const Point<D>> points,
                             std::span<const double> weights, std::int32_t k) {
    GEO_REQUIRE(k >= 1, "need at least one block");
    GEO_REQUIRE(static_cast<std::int64_t>(points.size()) >= k, "need at least k points");
    GEO_REQUIRE(weights.empty() || weights.size() == points.size(),
                "weights must be empty or match points");
    graph::Partition out(points.size(), 0);
    std::vector<std::int32_t> indices(points.size());
    std::iota(indices.begin(), indices.end(), 0);
    std::vector<double> keyScratch(points.size());
    Box<D> bb = Box<D>::around(points);
    // MJ uses one multisection level per dimension by default, starting on
    // the widest axis of the input.
    mjRecurse<D>(points, weights, indices, 0, k, 0, D, bb.widestAxis(), out, keyScratch);
    return out;
}

template graph::Partition multiJagged<2>(std::span<const Point2>, std::span<const double>,
                                         std::int32_t);
template graph::Partition multiJagged<3>(std::span<const Point3>, std::span<const double>,
                                         std::int32_t);

}  // namespace geo::baseline
