#include "baseline/rcb_dist.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geometry/box.hpp"
#include "support/assert.hpp"

namespace geo::baseline {

namespace {

/// One active subdomain of the bisection tree.
struct Domain {
    std::int32_t firstBlock;
    std::int32_t parts;     ///< blocks still to create in this subdomain
    int axis = 0;           ///< cut axis (widest of the global subdomain box)
    double lo = 0.0, hi = 0.0;  ///< binary-search interval on the cut axis
    double targetFraction = 0.5;  ///< weight fraction of the left child
    double totalWeight = 0.0;
};

}  // namespace

template <int D>
std::vector<std::int32_t> rcbDistributed(par::Comm& comm, std::span<const Point<D>> points,
                                         std::span<const double> weights, std::int32_t k,
                                         int medianProbes) {
    GEO_REQUIRE(k >= 1, "need at least one block");
    GEO_REQUIRE(weights.empty() || weights.size() == points.size(),
                "weights must be empty or match points");
    GEO_REQUIRE(medianProbes >= 8, "median search needs a few probes");

    const std::size_t n = points.size();
    // domainOf[i]: index into `domains` of the subdomain point i belongs to;
    // finished points carry their block in `out` and domain -1.
    std::vector<std::int32_t> domainOf(n, 0);
    std::vector<std::int32_t> out(n, 0);

    auto weightOf = [&](std::size_t i) { return weights.empty() ? 1.0 : weights[i]; };

    std::vector<Domain> domains(1);
    domains[0].firstBlock = 0;
    domains[0].parts = k;

    while (true) {
        // Drop finished domains (parts == 1): label their points.
        {
            std::vector<std::int32_t> remap(domains.size(), -1);
            std::vector<Domain> active;
            for (std::size_t d = 0; d < domains.size(); ++d) {
                if (domains[d].parts == 1) continue;
                remap[d] = static_cast<std::int32_t>(active.size());
                active.push_back(domains[d]);
            }
            for (std::size_t i = 0; i < n; ++i) {
                const auto d = domainOf[i];
                if (d < 0) continue;
                if (remap[static_cast<std::size_t>(d)] < 0) {
                    out[i] = domains[static_cast<std::size_t>(d)].firstBlock;
                    domainOf[i] = -1;
                } else {
                    domainOf[i] = remap[static_cast<std::size_t>(d)];
                }
            }
            domains = std::move(active);
        }
        const auto nd = static_cast<std::int32_t>(domains.size());
        if (nd == 0) break;

        // Per-domain global bounding box (min-allreduce over lo and −hi)
        // and total weight (sum-allreduce) — two vectorized collectives.
        std::vector<double> boxData(static_cast<std::size_t>(nd) * 2 * D,
                                    std::numeric_limits<double>::infinity());
        std::vector<double> domainWeight(static_cast<std::size_t>(nd), 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            const auto d = domainOf[i];
            if (d < 0) continue;
            const auto base = static_cast<std::size_t>(d) * 2 * D;
            for (int a = 0; a < D; ++a) {
                boxData[base + static_cast<std::size_t>(a)] =
                    std::min(boxData[base + static_cast<std::size_t>(a)], points[i][a]);
                boxData[base + static_cast<std::size_t>(D + a)] =
                    std::min(boxData[base + static_cast<std::size_t>(D + a)], -points[i][a]);
            }
            domainWeight[static_cast<std::size_t>(d)] += weightOf(i);
        }
        comm.allreduceMin(std::span<double>(boxData));
        comm.allreduceSum(std::span<double>(domainWeight));

        for (std::int32_t d = 0; d < nd; ++d) {
            auto& dom = domains[static_cast<std::size_t>(d)];
            const auto base = static_cast<std::size_t>(d) * 2 * D;
            int axis = 0;
            double widest = -1.0;
            for (int a = 0; a < D; ++a) {
                const double lo = boxData[base + static_cast<std::size_t>(a)];
                const double hi = -boxData[base + static_cast<std::size_t>(D + a)];
                if (hi - lo > widest) {
                    widest = hi - lo;
                    axis = a;
                }
            }
            dom.axis = axis;
            dom.lo = boxData[base + static_cast<std::size_t>(axis)];
            dom.hi = -boxData[base + static_cast<std::size_t>(D + axis)];
            dom.totalWeight = domainWeight[static_cast<std::size_t>(d)];
            dom.targetFraction = static_cast<double>(dom.parts / 2) /
                                 static_cast<double>(dom.parts);
        }

        // Vectorized distributed median search: all domains probe in
        // lockstep; one allreduce of nd partial weights per step.
        std::vector<double> cut(static_cast<std::size_t>(nd));
        std::vector<double> lo(static_cast<std::size_t>(nd)), hi(static_cast<std::size_t>(nd));
        for (std::int32_t d = 0; d < nd; ++d) {
            lo[static_cast<std::size_t>(d)] = domains[static_cast<std::size_t>(d)].lo;
            hi[static_cast<std::size_t>(d)] = domains[static_cast<std::size_t>(d)].hi;
        }
        std::vector<double> below(static_cast<std::size_t>(nd));
        for (int probe = 0; probe < medianProbes; ++probe) {
            for (std::int32_t d = 0; d < nd; ++d)
                cut[static_cast<std::size_t>(d)] =
                    0.5 * (lo[static_cast<std::size_t>(d)] + hi[static_cast<std::size_t>(d)]);
            std::fill(below.begin(), below.end(), 0.0);
            for (std::size_t i = 0; i < n; ++i) {
                const auto d = domainOf[i];
                if (d < 0) continue;
                if (points[i][domains[static_cast<std::size_t>(d)].axis] <
                    cut[static_cast<std::size_t>(d)])
                    below[static_cast<std::size_t>(d)] += weightOf(i);
            }
            comm.allreduceSum(std::span<double>(below));
            for (std::int32_t d = 0; d < nd; ++d) {
                const auto& dom = domains[static_cast<std::size_t>(d)];
                if (below[static_cast<std::size_t>(d)] <
                    dom.targetFraction * dom.totalWeight)
                    lo[static_cast<std::size_t>(d)] = cut[static_cast<std::size_t>(d)];
                else
                    hi[static_cast<std::size_t>(d)] = cut[static_cast<std::size_t>(d)];
            }
        }

        // Split every domain at its cut.
        std::vector<Domain> next;
        std::vector<std::int32_t> leftChild(static_cast<std::size_t>(nd));
        std::vector<std::int32_t> rightChild(static_cast<std::size_t>(nd));
        for (std::int32_t d = 0; d < nd; ++d) {
            const auto& dom = domains[static_cast<std::size_t>(d)];
            const std::int32_t leftParts = dom.parts / 2;
            Domain l = dom, r = dom;
            l.parts = leftParts;
            r.parts = dom.parts - leftParts;
            r.firstBlock = dom.firstBlock + leftParts;
            leftChild[static_cast<std::size_t>(d)] = static_cast<std::int32_t>(next.size());
            next.push_back(l);
            rightChild[static_cast<std::size_t>(d)] = static_cast<std::int32_t>(next.size());
            next.push_back(r);
        }
        for (std::size_t i = 0; i < n; ++i) {
            const auto d = domainOf[i];
            if (d < 0) continue;
            const bool left = points[i][domains[static_cast<std::size_t>(d)].axis] <
                              cut[static_cast<std::size_t>(d)];
            domainOf[i] = left ? leftChild[static_cast<std::size_t>(d)]
                               : rightChild[static_cast<std::size_t>(d)];
        }
        domains = std::move(next);
    }
    return out;
}

template std::vector<std::int32_t> rcbDistributed<2>(par::Comm&, std::span<const Point2>,
                                                     std::span<const double>, std::int32_t,
                                                     int);
template std::vector<std::int32_t> rcbDistributed<3>(par::Comm&, std::span<const Point3>,
                                                     std::span<const double>, std::int32_t,
                                                     int);

}  // namespace geo::baseline
