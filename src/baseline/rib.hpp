// Recursive Inertial Bisection (Taylor & Nour-Omid, Williams) — Zoltan's
// RIB baseline. Like RCB, but each subset is bisected orthogonally to its
// principal inertia axis (dominant eigenvector of the covariance matrix),
// adapting the cut direction to the point distribution.
#pragma once

#include <cstdint>
#include <span>

#include "geometry/point.hpp"
#include "graph/metrics.hpp"

namespace geo::baseline {

template <int D>
graph::Partition rib(std::span<const Point<D>> points, std::span<const double> weights,
                     std::int32_t k);

extern template graph::Partition rib<2>(std::span<const Point2>, std::span<const double>,
                                        std::int32_t);
extern template graph::Partition rib<3>(std::span<const Point3>, std::span<const double>,
                                        std::int32_t);

}  // namespace geo::baseline
