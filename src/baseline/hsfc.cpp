#include "baseline/hsfc.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "geometry/box.hpp"
#include "sfc/hilbert.hpp"
#include "support/assert.hpp"

namespace geo::baseline {

template <int D>
graph::Partition hsfc(std::span<const Point<D>> points, std::span<const double> weights,
                      std::int32_t k) {
    GEO_REQUIRE(k >= 1, "need at least one block");
    GEO_REQUIRE(static_cast<std::int64_t>(points.size()) >= k, "need at least k points");
    GEO_REQUIRE(weights.empty() || weights.size() == points.size(),
                "weights must be empty or match points");

    const auto bb = Box<D>::around(points);
    std::vector<std::pair<std::uint64_t, std::int32_t>> order;
    order.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        order.emplace_back(sfc::hilbertIndex<D>(points[i], bb), static_cast<std::int32_t>(i));
    std::sort(order.begin(), order.end());

    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) total += weights.empty() ? 1.0 : weights[i];

    graph::Partition out(points.size(), 0);
    double acc = 0.0;
    std::int32_t block = 0;
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        const auto i = static_cast<std::size_t>(order[pos].second);
        // Advance to the next block once its weight quota is filled; the
        // curve is cut at weighted quantiles of the total.
        while (block < k - 1 &&
               acc >= total * static_cast<double>(block + 1) / static_cast<double>(k))
            ++block;
        out[i] = block;
        acc += weights.empty() ? 1.0 : weights[i];
    }
    return out;
}

template graph::Partition hsfc<2>(std::span<const Point2>, std::span<const double>,
                                  std::int32_t);
template graph::Partition hsfc<3>(std::span<const Point3>, std::span<const double>,
                                  std::int32_t);

}  // namespace geo::baseline
