// MultiJagged (Deveci, Rajamanickam, Devine, Çatalyürek, TPDS 2016) —
// Zoltan2's scalable multisection partitioner and the strongest competitor
// in the paper's evaluation.
//
// Instead of recursive bisection, each recursion level cuts the current
// subset into s >= 2 slabs at once along one axis (axes cycle per level),
// with s chosen so that the per-level section counts multiply to exactly k.
// The result is a jagged rectangular tiling ("multi-jagged").
#pragma once

#include <cstdint>
#include <span>

#include "geometry/point.hpp"
#include "graph/metrics.hpp"

namespace geo::baseline {

template <int D>
graph::Partition multiJagged(std::span<const Point<D>> points,
                             std::span<const double> weights, std::int32_t k);

extern template graph::Partition multiJagged<2>(std::span<const Point2>,
                                                std::span<const double>, std::int32_t);
extern template graph::Partition multiJagged<3>(std::span<const Point3>,
                                                std::span<const double>, std::int32_t);

}  // namespace geo::baseline
