// Shared machinery for the recursive geometric baselines: weighted splits
// of an index subset along a scalar key (a coordinate for RCB/MultiJagged,
// an inertial projection for RIB).
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "support/assert.hpp"

namespace geo::baseline::detail {

/// Reorder `indices` so the first group (returned size) carries `fraction`
/// of the total weight in ascending key order — the weighted-median split
/// every recursive bisection method relies on. Keys are indexed by point id.
inline std::size_t weightedSplit(std::span<std::int32_t> indices,
                                 std::span<const double> keys,
                                 std::span<const double> weights, double fraction) {
    GEO_REQUIRE(fraction > 0.0 && fraction < 1.0, "split fraction must be in (0, 1)");
    std::sort(indices.begin(), indices.end(), [&](std::int32_t a, std::int32_t b) {
        return keys[static_cast<std::size_t>(a)] < keys[static_cast<std::size_t>(b)];
    });
    double total = 0.0;
    for (const auto i : indices)
        total += weights.empty() ? 1.0 : weights[static_cast<std::size_t>(i)];
    const double target = fraction * total;
    double acc = 0.0;
    for (std::size_t pos = 0; pos < indices.size(); ++pos) {
        const double w =
            weights.empty() ? 1.0 : weights[static_cast<std::size_t>(indices[pos])];
        // Put the straddling point on whichever side leaves the smaller
        // weight error.
        if (acc + w >= target) {
            const bool takeIt = (target - acc) > (acc + w - target);
            const std::size_t cut = pos + (takeIt ? 1 : 0);
            // Never create an empty side if both need points.
            return std::clamp<std::size_t>(cut, 1, indices.size() - 1);
        }
        acc += w;
    }
    return indices.size() - 1;
}

/// Split `parts` into two near-halves (used by bisection methods).
inline std::pair<std::int32_t, std::int32_t> halve(std::int32_t parts) {
    const std::int32_t left = parts / 2;
    return {left, parts - left};
}

}  // namespace geo::baseline::detail
