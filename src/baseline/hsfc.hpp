// Hilbert space-filling-curve partitioner (Zoltan's HSFC baseline, also the
// method behind ParMetis' geometric mode): sort points by Hilbert index and
// cut the curve into k consecutive, weight-balanced segments.
#pragma once

#include <cstdint>
#include <span>

#include "geometry/point.hpp"
#include "graph/metrics.hpp"

namespace geo::baseline {

template <int D>
graph::Partition hsfc(std::span<const Point<D>> points, std::span<const double> weights,
                      std::int32_t k);

extern template graph::Partition hsfc<2>(std::span<const Point2>, std::span<const double>,
                                         std::int32_t);
extern template graph::Partition hsfc<3>(std::span<const Point3>, std::span<const double>,
                                         std::int32_t);

}  // namespace geo::baseline
