// Distributed (SPMD) Recursive Coordinate Bisection.
//
// The serial `rcb` reimplements the algorithm; this variant reproduces how
// parallel RCB actually executes on MPI (Zoltan's implementation): all
// ranks cooperate on every bisection level. Each level runs one
// *vectorized* distributed median search — a binary search on the cut
// coordinate per active subdomain, with one allreduce per probe step
// carrying all subdomains' weight counts at once. Points are never
// migrated; each rank labels its local points. This is the communication
// pattern whose log(k)·probes·allreduce cost makes recursive bisection
// scale poorly in the paper's Fig. 3.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/point.hpp"
#include "par/comm.hpp"

namespace geo::baseline {

/// Partition the rank-local `points` (the union over ranks is the input)
/// into k blocks. Returns the block of each local point. All ranks must
/// call collectively with the same k.
template <int D>
std::vector<std::int32_t> rcbDistributed(par::Comm& comm, std::span<const Point<D>> points,
                                         std::span<const double> weights, std::int32_t k,
                                         int medianProbes = 40);

extern template std::vector<std::int32_t> rcbDistributed<2>(par::Comm&,
                                                            std::span<const Point2>,
                                                            std::span<const double>,
                                                            std::int32_t, int);
extern template std::vector<std::int32_t> rcbDistributed<3>(par::Comm&,
                                                            std::span<const Point3>,
                                                            std::span<const double>,
                                                            std::int32_t, int);

}  // namespace geo::baseline
