#include "baseline/tools.hpp"

#include <cmath>

#include "baseline/hsfc.hpp"
#include "baseline/multijagged.hpp"
#include "baseline/rcb.hpp"
#include "baseline/rib.hpp"
#include "core/geographer.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace geo::baseline {

const char* toolName(ToolKind kind) noexcept {
    switch (kind) {
        case ToolKind::GeoKmeans: return "geoKmeans";
        case ToolKind::MultiJagged: return "MJ";
        case ToolKind::Rcb: return "Rcb";
        case ToolKind::Rib: return "Rib";
        case ToolKind::Hsfc: return "Hsfc";
    }
    return "?";
}

namespace {

template <int D>
ToolResult<D> runGeographer(std::span<const Point<D>> points, std::span<const double> weights,
                            std::int32_t k, double eps, int ranks, std::uint64_t seed) {
    core::Settings settings;
    settings.epsilon = eps;
    settings.seed = seed;
    Timer t;
    auto res = core::partitionGeographer<D>(points, weights, k, ranks, settings);
    return ToolResult<D>{std::move(res.partition), t.seconds()};
}

template <int D>
std::vector<Tool<D>> makeTools() {
    std::vector<Tool<D>> tools;
    tools.push_back(Tool<D>{ToolKind::GeoKmeans, "geoKmeans", runGeographer<D>});
    tools.push_back(Tool<D>{
        ToolKind::MultiJagged, "MJ",
        [](std::span<const Point<D>> p, std::span<const double> w, std::int32_t k, double,
           int, std::uint64_t) {
            Timer t;
            auto part = multiJagged<D>(p, w, k);
            return ToolResult<D>{std::move(part), t.seconds()};
        }});
    tools.push_back(Tool<D>{
        ToolKind::Rcb, "Rcb",
        [](std::span<const Point<D>> p, std::span<const double> w, std::int32_t k, double,
           int, std::uint64_t) {
            Timer t;
            auto part = rcb<D>(p, w, k);
            return ToolResult<D>{std::move(part), t.seconds()};
        }});
    tools.push_back(Tool<D>{
        ToolKind::Rib, "Rib",
        [](std::span<const Point<D>> p, std::span<const double> w, std::int32_t k, double,
           int, std::uint64_t) {
            Timer t;
            auto part = rib<D>(p, w, k);
            return ToolResult<D>{std::move(part), t.seconds()};
        }});
    tools.push_back(Tool<D>{
        ToolKind::Hsfc, "Hsfc",
        [](std::span<const Point<D>> p, std::span<const double> w, std::int32_t k, double,
           int, std::uint64_t) {
            Timer t;
            auto part = hsfc<D>(p, w, k);
            return ToolResult<D>{std::move(part), t.seconds()};
        }});
    return tools;
}

}  // namespace

const std::vector<Tool<2>>& tools2() {
    static const auto tools = makeTools<2>();
    return tools;
}

const std::vector<Tool<3>>& tools3() {
    static const auto tools = makeTools<3>();
    return tools;
}

ScalingEstimate modeledScaling(ToolKind kind, std::int64_t n, std::int32_t k, int ranks,
                               int dim, double serialSeconds, const par::CostModel& model) {
    GEO_REQUIRE(ranks >= 1, "need at least one rank");
    ScalingEstimate est;
    est.computeSeconds = serialSeconds / static_cast<double>(ranks);
    if (ranks == 1) return est;

    const auto recordBytes = static_cast<std::size_t>(8 * (dim + 1));  // coords + weight
    const std::size_t localBytes =
        static_cast<std::size_t>(n / ranks) * recordBytes;
    const double log2k = std::max(1.0, std::log2(static_cast<double>(k)));

    switch (kind) {
        case ToolKind::Rcb:
        case ToolKind::Rib: {
            // log2(k) bisection levels; each runs a distributed weighted
            // median search (~30 allreduce rounds of a few scalars) and
            // migrates roughly the whole local data once (alltoallv). RIB
            // additionally reduces a covariance matrix per level — the same
            // order, so one model covers both.
            const double medianRounds = 30.0;
            est.commSeconds =
                log2k * (medianRounds * model.allreduce(ranks, 16) +
                         model.alltoallv(ranks, localBytes, localBytes));
            break;
        }
        case ToolKind::MultiJagged: {
            // One multisection round per dimension: the cut search reduces
            // s ~ k^(1/dim) candidate quantiles together (vectorized
            // allreduce), then migrates data once per round.
            const double sections = std::pow(static_cast<double>(k), 1.0 / dim);
            const double cutRounds = 30.0;
            est.commSeconds =
                dim * (cutRounds * model.allreduce(ranks, static_cast<std::size_t>(
                                                              8.0 * sections)) +
                       model.alltoallv(ranks, localBytes, localBytes));
            break;
        }
        case ToolKind::Hsfc: {
            // Hilbert indices are local; one splitter allgather and one
            // all-to-all redistribution (sample sort), then local cuts.
            est.commSeconds = model.allgather(ranks, static_cast<std::size_t>(ranks) * 16) +
                              model.alltoallv(ranks, localBytes, localBytes);
            break;
        }
        case ToolKind::GeoKmeans: {
            // Sort + redistribution like HSFC, plus one allreduce of the
            // replicated centers/sizes per balance sweep (~60 sweeps).
            const double sweeps = 60.0;
            est.commSeconds =
                model.allgather(ranks, static_cast<std::size_t>(ranks) * 16) +
                model.alltoallv(ranks, localBytes, localBytes) +
                sweeps * model.allreduce(ranks, static_cast<std::size_t>(k) * 8 * 4);
            break;
        }
    }
    return est;
}

}  // namespace geo::baseline
