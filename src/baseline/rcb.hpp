// Recursive Coordinate Bisection (Berger & Bokhari 1987, Simon 1991) —
// the classic geometric partitioner in Zoltan, used as a baseline in the
// paper's evaluation.
//
// Recursively bisects the point set at the weighted median along the widest
// axis of the current subset's bounding box, splitting the block budget
// proportionally.
#pragma once

#include <cstdint>
#include <span>

#include "geometry/point.hpp"
#include "graph/metrics.hpp"

namespace geo::baseline {

template <int D>
graph::Partition rcb(std::span<const Point<D>> points, std::span<const double> weights,
                     std::int32_t k);

extern template graph::Partition rcb<2>(std::span<const Point2>, std::span<const double>,
                                        std::int32_t);
extern template graph::Partition rcb<3>(std::span<const Point3>, std::span<const double>,
                                        std::int32_t);

}  // namespace geo::baseline
