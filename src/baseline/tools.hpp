// Unified partitioner registry used by every benchmark binary, covering the
// five tools of the paper's evaluation: Geographer (balanced k-means), and
// Zoltan-analog MultiJagged, RCB, RIB, HSFC.
//
// For scaling figures the baselines (which we implement serially — the
// paper compares against the Zoltan binaries we reimplement algorithmically)
// are projected to p ranks with an analytic latency–bandwidth model that
// mirrors each algorithm's communication structure; Geographer uses the real
// per-rank measurements of the simulated SPMD runtime. See DESIGN.md §2.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/settings.hpp"
#include "geometry/point.hpp"
#include "graph/metrics.hpp"
#include "par/cost_model.hpp"

namespace geo::baseline {

enum class ToolKind { GeoKmeans, MultiJagged, Rcb, Rib, Hsfc };

[[nodiscard]] const char* toolName(ToolKind kind) noexcept;

template <int D>
struct ToolResult {
    graph::Partition partition;
    double seconds = 0.0;  ///< measured wall time of the partitioning call
};

template <int D>
struct Tool {
    ToolKind kind;
    std::string name;  ///< paper's label: geoKmeans / MJ / Rcb / Rib / Hsfc
    /// (points, weights, k, eps, ranks, seed) -> partition + time. `ranks`
    /// only affects Geographer (the baselines are serial implementations).
    std::function<ToolResult<D>(std::span<const Point<D>>, std::span<const double>,
                                std::int32_t, double, int, std::uint64_t)>
        run;
};

/// All five tools; Geographer first (it is the ratio baseline in Fig. 2).
const std::vector<Tool<2>>& tools2();
const std::vector<Tool<3>>& tools3();

/// Analytic parallel-time projection for the serial baselines: compute
/// scales as serialSeconds/ranks, communication follows each algorithm's
/// collective structure (bisection levels for RCB/RIB, one multisection
/// round per dimension for MJ, sort + splitter exchange for HSFC).
struct ScalingEstimate {
    double computeSeconds = 0.0;
    double commSeconds = 0.0;
    [[nodiscard]] double total() const noexcept { return computeSeconds + commSeconds; }
};

ScalingEstimate modeledScaling(ToolKind kind, std::int64_t n, std::int32_t k, int ranks,
                               int dim, double serialSeconds, const par::CostModel& model);

}  // namespace geo::baseline
