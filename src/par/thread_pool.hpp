// Reusable intra-rank worker pool behind par::parallelFor.
//
// PR 3 introduced fork-join threading for the assignment sweep but spawned
// fresh std::threads on every parallelFor call. Once every O(n) phase of the
// pipeline is threaded (SFC keying, local sort, center updates, metrics),
// that spawn cost is paid dozens of times per run and dominates small
// phases. This pool keeps the workers alive across calls: each OS thread
// that uses parallelFor owns one lazily-created pool (so SPMD rank threads
// never contend for each other's workers), workers block on a condition
// variable between tasks, and a task is dispatched as one generation bump +
// notify instead of thread creation.
//
// The pool does not choose chunking — parallelFor still splits [0, n) into
// one contiguous chunk per worker with thread-count-independent *item*
// semantics left to the caller. The pool only executes chunk w on worker w
// (chunk 0 on the caller), so the determinism contract of DESIGN.md
// "Threading model" is unaffected by pooling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>

namespace geo::par {

/// Process-wide default worker-thread count: the GEO_THREADS environment
/// variable when set (>= 1), else 1. Read once. Both Settings::threads
/// resolution (core) and the graph-metrics thread defaults consult this, so
/// one env var threads the whole pipeline — which is what lets the CI
/// GEO_THREADS=4 matrix leg exercise every threaded path through the
/// existing suite.
[[nodiscard]] inline int defaultThreads() noexcept {
    static const int cached = [] {
        const char* env = std::getenv("GEO_THREADS");
        const int parsed = env ? std::atoi(env) : 0;
        return parsed >= 1 ? parsed : 1;
    }();
    return cached;
}

class ThreadPool {
public:
    using Body = std::function<void(std::size_t, std::size_t, int)>;

    ThreadPool() = default;
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;
    ~ThreadPool();

    /// Run `body(begin, end, worker)` over [0, n) with `threads` workers
    /// (chunk w = [n·w/threads, n·(w+1)/threads), worker 0 = the caller).
    /// Blocks until every chunk finished; rethrows the first worker
    /// exception. Requires threads >= 2 and n >= 1 (parallelFor handles the
    /// serial fast path before reaching the pool).
    void run(int threads, std::size_t n, const Body& body);

    /// The calling thread's own pool, created on first use and destroyed
    /// (workers joined) when the thread exits. Rank threads of the SPMD
    /// machine therefore get disjoint pools whose lifetime spans all phases
    /// of the run on that rank.
    static ThreadPool& forThisThread();

private:
    struct State;
    void ensureWorkers(int count);
    void workerLoop(int slot, std::uint64_t seenGeneration);

    State* state_ = nullptr;  ///< allocated on first run()
};

}  // namespace geo::par
