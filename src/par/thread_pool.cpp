#include "par/thread_pool.hpp"

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "support/assert.hpp"

namespace geo::par {

/// Shared pool state. Workers sleep on `wake` until the generation counter
/// advances, run their chunk of the current task, then report completion on
/// `done`. A worker whose slot is beyond the current task's party count
/// simply re-arms for the next generation.
struct ThreadPool::State {
    std::mutex mutex;
    std::condition_variable wake;
    std::condition_variable done;
    std::vector<std::thread> workers;

    // Current task (valid while pending > 0 or the caller runs chunk 0).
    const Body* body = nullptr;
    std::size_t n = 0;
    int parties = 0;        ///< total workers incl. caller
    std::uint64_t generation = 0;
    int pending = 0;        ///< spawned workers still running this task
    std::exception_ptr error;
    bool stop = false;
};

namespace {

/// Chunk w of [0, n) split over t workers — the exact split parallelFor has
/// always used; kept here so pool and header cannot drift apart.
struct Chunk {
    std::size_t begin, end;
};
Chunk chunkOf(std::size_t n, int w, int t) {
    const auto tw = static_cast<std::size_t>(w);
    const auto tt = static_cast<std::size_t>(t);
    return {n * tw / tt, n * (tw + 1) / tt};
}

}  // namespace

ThreadPool::~ThreadPool() {
    if (!state_) return;
    {
        const std::lock_guard<std::mutex> lock(state_->mutex);
        state_->stop = true;
    }
    state_->wake.notify_all();
    for (auto& worker : state_->workers) worker.join();
    delete state_;
}

void ThreadPool::ensureWorkers(int count) {
    // Called under state_->mutex, *before* run() bumps the generation. New
    // workers start with `seen` equal to the pre-dispatch generation, so
    // the bump that follows in the same critical section is visible to them
    // as a fresh task (reading the counter after spawning would race: the
    // worker could observe the already-bumped value and sleep through the
    // very task it was spawned for).
    while (static_cast<int>(state_->workers.size()) < count) {
        const int slot = static_cast<int>(state_->workers.size());
        const std::uint64_t spawnGeneration = state_->generation;
        state_->workers.emplace_back(
            [this, slot, spawnGeneration] { workerLoop(slot, spawnGeneration); });
    }
}

void ThreadPool::workerLoop(int slot, std::uint64_t seen) {
    State& s = *state_;
    std::unique_lock<std::mutex> lock(s.mutex);
    for (;;) {
        s.wake.wait(lock, [&] { return s.stop || s.generation != seen; });
        if (s.stop) return;
        seen = s.generation;
        if (slot + 1 >= s.parties) continue;  // not needed for this task
        const Body* body = s.body;
        const auto [begin, end] = chunkOf(s.n, slot + 1, s.parties);
        lock.unlock();
        std::exception_ptr thrown;
        if (begin < end) {
            try {
                (*body)(begin, end, slot + 1);
            } catch (...) {
                thrown = std::current_exception();
            }
        }
        lock.lock();
        if (thrown && !s.error) s.error = thrown;
        if (--s.pending == 0) s.done.notify_one();
    }
}

void ThreadPool::run(int threads, std::size_t n, const Body& body) {
    GEO_REQUIRE(threads >= 2 && n >= 1, "pool dispatch needs >= 2 workers");
    if (!state_) state_ = new State();
    State& s = *state_;
    {
        const std::lock_guard<std::mutex> lock(s.mutex);
        ensureWorkers(threads - 1);
        s.body = &body;
        s.n = n;
        s.parties = threads;
        s.pending = threads - 1;
        s.error = nullptr;
        ++s.generation;
    }
    s.wake.notify_all();

    // Chunk 0 runs on the caller, concurrently with the workers.
    const auto [begin, end] = chunkOf(n, 0, threads);
    std::exception_ptr thrown;
    if (begin < end) {
        try {
            body(begin, end, 0);
        } catch (...) {
            thrown = std::current_exception();
        }
    }

    std::unique_lock<std::mutex> lock(s.mutex);
    s.done.wait(lock, [&] { return s.pending == 0; });
    s.body = nullptr;
    if (thrown && !s.error) s.error = thrown;
    std::exception_ptr error = s.error;
    s.error = nullptr;
    lock.unlock();
    if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::forThisThread() {
    static thread_local ThreadPool pool;
    return pool;
}

}  // namespace geo::par
