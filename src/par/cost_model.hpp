// Analytic communication-cost model for the simulated runtime.
//
// The paper's scaling experiments (Fig. 3, Fig. 4) ran on SuperMUC with IBM
// MPI; we have one node. The runtime counts every byte and collective round
// each logical rank performs; this model converts those counts into a
// latency–bandwidth time estimate so scaling *shape* can be reproduced.
//
// Parameters default to SuperMUC-like values: α ≈ 5 µs per message round,
// β ≈ 1 ns/byte, and a penalty factor once the rank count exceeds one
// "island" (8192 cores), mirroring the cross-island slowdown the paper
// observes between 8192 and 16384 processes (§5.3.2).
#pragma once

#include <cmath>
#include <cstddef>

namespace geo::par {

struct CostModel {
    double alpha = 5e-6;             ///< latency per message round [s]
    double beta = 1.0e-9;            ///< inverse bandwidth [s/byte]
    int islandSize = 8192;           ///< ranks per interconnect island
    double crossIslandFactor = 2.5;  ///< bandwidth penalty across islands

    [[nodiscard]] double effectiveBeta(int ranks) const noexcept {
        return ranks > islandSize ? beta * crossIslandFactor : beta;
    }

    [[nodiscard]] static double log2Ceil(int ranks) noexcept {
        return ranks <= 1 ? 0.0 : std::ceil(std::log2(static_cast<double>(ranks)));
    }

    /// Recursive-doubling allreduce: 2·log2(p) rounds, 2·bytes moved.
    [[nodiscard]] double allreduce(int ranks, std::size_t bytes) const noexcept {
        return 2.0 * log2Ceil(ranks) * alpha +
               2.0 * static_cast<double>(bytes) * effectiveBeta(ranks);
    }

    /// Binomial-tree broadcast.
    [[nodiscard]] double broadcast(int ranks, std::size_t bytes) const noexcept {
        return log2Ceil(ranks) * alpha + static_cast<double>(bytes) * effectiveBeta(ranks);
    }

    /// Ring/recursive allgather of `totalBytes` across the communicator.
    [[nodiscard]] double allgather(int ranks, std::size_t totalBytes) const noexcept {
        return log2Ceil(ranks) * alpha + static_cast<double>(totalBytes) * effectiveBeta(ranks);
    }

    /// Personalized all-to-all as seen by one rank sending/receiving
    /// `sentBytes`/`recvBytes` in up to p−1 messages.
    [[nodiscard]] double alltoallv(int ranks, std::size_t sentBytes,
                                   std::size_t recvBytes) const noexcept {
        return static_cast<double>(ranks - 1) * alpha +
               static_cast<double>(sentBytes + recvBytes) * effectiveBeta(ranks);
    }

    /// Sparse neighbor exchange (halo): one round per neighbor.
    [[nodiscard]] double neighborExchange(int ranks, int neighbors,
                                          std::size_t bytes) const noexcept {
        return static_cast<double>(neighbors) * alpha +
               static_cast<double>(bytes) * effectiveBeta(ranks);
    }
};

}  // namespace geo::par
