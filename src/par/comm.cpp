#include "par/comm.hpp"

#include <algorithm>
#include <ctime>
#include <exception>
#include <thread>

#include "par/transport/sim.hpp"
#include "par/transport/socket.hpp"

namespace geo::par {

namespace detail {

double threadCpuSeconds() noexcept {
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace detail

namespace {

/// Sim-backend run: one thread per logical rank over shared slots.
RunStats runSim(int ranks, const CostModel& model,
                const std::function<void(Comm&)>& body) {
    SimShared shared(ranks);
    std::vector<CommStats> stats(static_cast<std::size_t>(ranks));
    std::vector<double> cpuSeconds(static_cast<std::size_t>(ranks), 0.0);

    if (ranks == 1) {
        // Serial fast path: no thread spawn; keeps unit tests and examples
        // cheap and debuggable.
        SimTransport transport(0, shared);
        Comm comm(transport, model, stats[0]);
        const double cpu0 = detail::threadCpuSeconds();
        body(comm);
        cpuSeconds[0] = detail::threadCpuSeconds() - cpu0;
    } else {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(ranks));
        std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks));
        for (int r = 0; r < ranks; ++r) {
            threads.emplace_back([&, r] {
                SimTransport transport(r, shared);
                Comm comm(transport, model, stats[static_cast<std::size_t>(r)]);
                const double cpu0 = detail::threadCpuSeconds();
                try {
                    body(comm);
                } catch (...) {
                    errors[static_cast<std::size_t>(r)] = std::current_exception();
                    // A crashed rank must not deadlock the others; the
                    // barrier would wait forever. Terminating the run with
                    // the stored exception is handled after join, but we
                    // must release peers: abort the whole run instead of
                    // hanging. Simplest safe policy: keep participating in
                    // barriers is impossible, so rethrow after join relies
                    // on the body not crashing mid-collective in tests.
                }
                cpuSeconds[static_cast<std::size_t>(r)] =
                    detail::threadCpuSeconds() - cpu0;
            });
        }
        for (auto& t : threads) t.join();
        for (auto& e : errors)
            if (e) std::rethrow_exception(e);
    }

    RunStats out;
    for (int r = 0; r < ranks; ++r) {
        const auto& s = stats[static_cast<std::size_t>(r)];
        out.maxCpuSeconds = std::max(out.maxCpuSeconds, cpuSeconds[static_cast<std::size_t>(r)]);
        out.maxModeledCommSeconds = std::max(out.maxModeledCommSeconds, s.modeledCommSeconds);
        out.totalBytes += s.bytesSent;
        out.collectives = std::max(out.collectives, s.collectives);
    }
    return out;
}

/// Process-backend run: the body executes ONCE here, on this process's
/// rank; peer processes run their own copies. RunStats are then combined
/// across processes through raw (unaccounted) transport reductions so every
/// process reports the same aggregate, just like the simulator does.
RunStats runProcess(Transport& transport, const CostModel& model,
                    const std::function<void(Comm&)>& body) {
    struct Lease {
        ~Lease() { releaseProcessTransport(); }
    } lease;

    CommStats stats;
    Comm comm(transport, model, stats);
    const double cpu0 = detail::threadCpuSeconds();
    body(comm);
    const double cpu = detail::threadCpuSeconds() - cpu0;

    RunStats out;
    out.maxCpuSeconds = cpu;
    out.maxModeledCommSeconds = stats.modeledCommSeconds;
    out.totalBytes = stats.bytesSent;
    out.collectives = stats.collectives;
    transport.allreduce(&out.maxCpuSeconds, 1, DType::F64, ReduceOp::Max);
    transport.allreduce(&out.maxModeledCommSeconds, 1, DType::F64, ReduceOp::Max);
    transport.allreduce(&out.totalBytes, 1, DType::U64, ReduceOp::Sum);
    transport.allreduce(&out.collectives, 1, DType::U64, ReduceOp::Max);
    return out;
}

}  // namespace

Machine::Machine(int ranks, CostModel model, TransportKind kind)
    : ranks_(ranks), model_(model), kind_(kind) {
    GEO_REQUIRE(ranks >= 1, "need at least one rank");
}

RunStats Machine::run(const std::function<void(Comm&)>& body) {
    TransportKind kind = kind_ == TransportKind::Auto ? envTransportKind() : kind_;
    if (kind == TransportKind::Socket || kind == TransportKind::Tcp) {
        ensureWorkerTransport();  // no-op outside a geo_launch worker
        if (Transport* transport = acquireProcessTransport(ranks_))
            return runProcess(*transport, model_, body);
        // No worker transport of this size available (not a geo_launch
        // worker, rank-count mismatch, or an enclosing run holds the lease):
        // simulate. Nested sub-communicators land here by design.
    }
    return runSim(ranks_, model_, body);
}

RunStats runSpmd(int ranks, const std::function<void(Comm&)>& body, CostModel model,
                 TransportKind kind) {
    Machine machine(ranks, model, kind);
    return machine.run(body);
}

}  // namespace geo::par
