#include "par/comm.hpp"

#include <ctime>
#include <exception>
#include <thread>

namespace geo::par {

namespace detail {

double threadCpuSeconds() noexcept {
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace detail

Machine::Machine(int ranks, CostModel model) : ranks_(ranks), model_(model) {
    GEO_REQUIRE(ranks >= 1, "need at least one rank");
}

RunStats Machine::run(const std::function<void(Comm&)>& body) {
    detail::SharedState shared(ranks_, model_);

    if (ranks_ == 1) {
        // Serial fast path: no thread spawn; keeps unit tests and examples
        // cheap and debuggable.
        Comm comm(0, shared);
        const double cpu0 = detail::threadCpuSeconds();
        body(comm);
        shared.cpuSeconds[0] = detail::threadCpuSeconds() - cpu0;
    } else {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(ranks_));
        std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks_));
        for (int r = 0; r < ranks_; ++r) {
            threads.emplace_back([&, r] {
                Comm comm(r, shared);
                const double cpu0 = detail::threadCpuSeconds();
                try {
                    body(comm);
                } catch (...) {
                    errors[static_cast<std::size_t>(r)] = std::current_exception();
                    // A crashed rank must not deadlock the others; the
                    // barrier would wait forever. Terminating the run with
                    // the stored exception is handled after join, but we
                    // must release peers: abort the whole run instead of
                    // hanging. Simplest safe policy: keep participating in
                    // barriers is impossible, so rethrow after join relies
                    // on the body not crashing mid-collective in tests.
                }
                shared.cpuSeconds[static_cast<std::size_t>(r)] =
                    detail::threadCpuSeconds() - cpu0;
            });
        }
        for (auto& t : threads) t.join();
        for (auto& e : errors)
            if (e) std::rethrow_exception(e);
    }

    RunStats out;
    for (int r = 0; r < ranks_; ++r) {
        const auto& s = shared.stats[static_cast<std::size_t>(r)];
        out.maxCpuSeconds = std::max(out.maxCpuSeconds, shared.cpuSeconds[static_cast<std::size_t>(r)]);
        out.maxModeledCommSeconds = std::max(out.maxModeledCommSeconds, s.modeledCommSeconds);
        out.totalBytes += s.bytesSent;
        out.collectives = std::max(out.collectives, s.collectives);
    }
    return out;
}

RunStats runSpmd(int ranks, const std::function<void(Comm&)>& body, CostModel model) {
    Machine machine(ranks, model);
    return machine.run(body);
}

}  // namespace geo::par
