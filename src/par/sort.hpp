// Distributed sorting and redistribution over the simulated runtime.
//
// Geographer's first phase globally sorts all points by Hilbert index and
// redistributes them so each rank holds a contiguous curve segment (§4.1).
// The paper uses the schizophrenic quicksort of Axtmann et al.; we implement
// the classic sample sort with regular sampling, which has the same
// communication structure (one splitter allgather + one alltoallv).
//
// Two properties beyond the seed implementation:
//
//   * Total order via (key, origin rank, local index) tags. Regular
//     sampling over heavily duplicated keys used to produce equal splitters
//     and near-empty ranks (every duplicate of a key landed on one rank);
//     the tags make every record distinct, so splitters can land *inside* a
//     duplicate run and spread it across ranks. The tags also make the
//     output a deterministic function of the input alone.
//   * Rank-local sorting runs through `parallelSort` — per-thread sorted
//     runs merged by a co-ranked parallel merge. Because the tagged
//     comparator is a strict total order, the sorted permutation is unique,
//     so the result is bitwise identical at every thread count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "par/comm.hpp"
#include "par/parallel_for.hpp"
#include "support/assert.hpp"

namespace geo::par {

namespace detail {

/// Co-rank of diagonal d in the merge of sorted runs a and b: the number of
/// elements drawn from `a` among the first d outputs, with ties resolved
/// toward `a` (std::merge stability). Binary search, O(log min(na, nb)).
template <typename T, typename Cmp>
std::size_t coRank(std::size_t d, const T* a, std::size_t na, const T* b,
                   std::size_t nb, Cmp cmp) {
    std::size_t lo = d > nb ? d - nb : 0;
    std::size_t hi = std::min(d, na);
    while (lo < hi) {
        const std::size_t i = lo + (hi - lo) / 2;
        const std::size_t j = d - i;  // >= 1 and <= nb by the bracket above
        if (cmp(a[i], b[j - 1])) {
            lo = i + 1;  // a[i] belongs to the prefix
        } else {
            hi = i;
        }
    }
    return lo;
}

/// Merge sorted runs a and b into `out`, split over `threads` workers at
/// output diagonals found by co-ranking. Each worker produces a disjoint
/// contiguous slice of the output, so the merge parallelizes without
/// synchronization; with a strict total order the output is the unique
/// sorted sequence regardless of the split.
template <typename T, typename Cmp>
void parallelMerge(int threads, const T* a, std::size_t na, const T* b,
                   std::size_t nb, T* out, Cmp cmp) {
    parallelFor(threads, na + nb, [&](std::size_t o0, std::size_t o1, int) {
        std::size_t i = coRank(o0, a, na, b, nb, cmp);
        std::size_t j = o0 - i;
        for (std::size_t o = o0; o < o1; ++o) {
            if (j >= nb || (i < na && !cmp(b[j], a[i]))) {
                out[o] = a[i++];
            } else {
                out[o] = b[j++];
            }
        }
    });
}

}  // namespace detail

/// Parallel multiway mergesort: per-thread sorted runs (std::sort) merged
/// pairwise with co-ranked parallel merges, ping-ponging through one spare
/// buffer. `cmp` MUST induce a strict total order (no two elements
/// equivalent) for the output to be independent of the thread count — with
/// ties, which run an element lands in depends on the chunking. All callers
/// in this codebase tag records to guarantee totality.
template <typename T, typename Cmp = std::less<T>>
void parallelSort(int threads, std::vector<T>& data, Cmp cmp = {}) {
    const std::size_t n = data.size();
    // Below the cutoff the spawn/merge bookkeeping costs more than it saves.
    constexpr std::size_t kSerialCutoff = 1u << 13;
    if (threads <= 1 || n <= kSerialCutoff) {
        std::sort(data.begin(), data.end(), cmp);
        return;
    }
    const auto runs = static_cast<std::size_t>(threads);
    std::vector<std::size_t> bounds(runs + 1);
    for (std::size_t r = 0; r <= runs; ++r) bounds[r] = n * r / runs;
    parallelFor(threads, runs, [&](std::size_t r0, std::size_t r1, int) {
        for (std::size_t r = r0; r < r1; ++r)
            std::sort(data.begin() + static_cast<std::ptrdiff_t>(bounds[r]),
                      data.begin() + static_cast<std::ptrdiff_t>(bounds[r + 1]), cmp);
    });

    std::vector<T> buffer(n);
    T* src = data.data();
    T* dst = buffer.data();
    while (bounds.size() > 2) {
        std::vector<std::size_t> next;
        next.reserve(bounds.size() / 2 + 2);
        next.push_back(0);
        std::size_t r = 0;
        for (; r + 2 < bounds.size(); r += 2) {
            detail::parallelMerge(threads, src + bounds[r], bounds[r + 1] - bounds[r],
                                  src + bounds[r + 1], bounds[r + 2] - bounds[r + 1],
                                  dst + bounds[r], cmp);
            next.push_back(bounds[r + 2]);
        }
        if (r + 2 == bounds.size()) {  // odd run count: carry the last run over
            std::copy(src + bounds[r], src + bounds[r + 1], dst + bounds[r]);
            next.push_back(bounds[r + 1]);
        }
        std::swap(src, dst);
        bounds = std::move(next);
    }
    if (src != data.data()) std::copy(src, src + n, data.data());
}

/// Globally sort (key, value) records by key across all ranks.
/// On return, each rank holds a sorted run and rank r's largest key is
/// <= rank r+1's smallest key. Sizes may differ slightly between ranks
/// (splitter granularity), as with any sample sort. Records with equal keys
/// are ordered by (origin rank, original local index), which both fixes the
/// duplicate-key splitter skew and makes the output deterministic.
template <typename Key, typename Value>
struct KeyedRecord {
    Key key;
    Value value;
    friend bool operator<(const KeyedRecord& a, const KeyedRecord& b) {
        return a.key < b.key;
    }
};

template <typename Key, typename Value>
std::vector<KeyedRecord<Key, Value>> sampleSort(Comm& comm,
                                                std::vector<KeyedRecord<Key, Value>> local,
                                                int oversampling = 16, int threads = 1) {
    using Record = KeyedRecord<Key, Value>;
    GEO_REQUIRE(local.size() < static_cast<std::size_t>(UINT32_MAX),
                "per-rank input exceeds the 32-bit tag range");

    /// (key, origin, index) — the strict total order everything sorts by.
    struct Tag {
        Key key;
        std::uint32_t origin;
        std::uint32_t index;
    };
    struct TaggedRecord {
        Tag tag;
        Value value;
    };
    const auto tagLess = [](const Tag& a, const Tag& b) {
        if (a.key != b.key) return a.key < b.key;
        if (a.origin != b.origin) return a.origin < b.origin;
        return a.index < b.index;
    };
    const auto recordLess = [&](const TaggedRecord& a, const TaggedRecord& b) {
        return tagLess(a.tag, b.tag);
    };

    const int p = comm.size();
    const auto myRank = static_cast<std::uint32_t>(comm.rank());
    std::vector<TaggedRecord> tagged(local.size());
    parallelFor(threads, local.size(), [&](std::size_t i0, std::size_t i1, int) {
        for (std::size_t i = i0; i < i1; ++i)
            tagged[i] = TaggedRecord{Tag{local[i].key, myRank, static_cast<std::uint32_t>(i)},
                                     local[i].value};
    });
    local.clear();
    local.shrink_to_fit();
    parallelSort(threads, tagged, recordLess);

    if (p > 1) {
        // Regular sampling: each rank contributes `oversampling` evenly
        // spaced tags from its sorted run (fewer if it holds fewer records).
        std::vector<Tag> samples;
        const std::size_t n = tagged.size();
        const int s = std::min<std::size_t>(static_cast<std::size_t>(oversampling), n);
        samples.reserve(static_cast<std::size_t>(s));
        for (int i = 0; i < s; ++i) {
            const std::size_t idx = (n * static_cast<std::size_t>(2 * i + 1)) /
                                    static_cast<std::size_t>(2 * s);
            samples.push_back(tagged[idx].tag);
        }
        std::vector<Tag> allSamples = comm.allgatherv(std::span<const Tag>(samples));
        std::sort(allSamples.begin(), allSamples.end(), tagLess);

        // p-1 splitters at regular positions in the sample.
        std::vector<Tag> splitters;
        splitters.reserve(static_cast<std::size_t>(p - 1));
        if (!allSamples.empty()) {
            for (int i = 1; i < p; ++i) {
                const std::size_t idx =
                    std::min(allSamples.size() - 1,
                             (allSamples.size() * static_cast<std::size_t>(i)) /
                                 static_cast<std::size_t>(p));
                splitters.push_back(allSamples[idx]);
            }
        }

        // Bucket local records by destination rank.
        std::vector<std::vector<TaggedRecord>> sendTo(static_cast<std::size_t>(p));
        std::size_t begin = 0;
        for (int dest = 0; dest < p; ++dest) {
            std::size_t end = tagged.size();
            if (dest < p - 1 && !splitters.empty()) {
                end = static_cast<std::size_t>(
                    std::upper_bound(tagged.begin() + static_cast<std::ptrdiff_t>(begin),
                                     tagged.end(), splitters[static_cast<std::size_t>(dest)],
                                     [&](const Tag& tag, const TaggedRecord& rec) {
                                         return tagLess(tag, rec.tag);
                                     }) -
                    tagged.begin());
            }
            sendTo[static_cast<std::size_t>(dest)].assign(
                tagged.begin() + static_cast<std::ptrdiff_t>(begin),
                tagged.begin() + static_cast<std::ptrdiff_t>(end));
            begin = end;
        }

        tagged = comm.alltoallv(sendTo);
        parallelSort(threads, tagged, recordLess);
    }

    std::vector<Record> out(tagged.size());
    parallelFor(threads, tagged.size(), [&](std::size_t i0, std::size_t i1, int) {
        for (std::size_t i = i0; i < i1; ++i)
            out[i] = Record{tagged[i].tag.key, tagged[i].value};
    });
    return out;
}

/// Rebalance sorted runs so every rank holds exactly its block-distribution
/// share: rank r gets records [r*N/p, (r+1)*N/p) of the global order.
/// Precondition: runs are globally sorted (as produced by sampleSort).
template <typename Record>
std::vector<Record> rebalanceSorted(Comm& comm, std::vector<Record> local) {
    const int p = comm.size();
    if (p == 1) return local;
    const auto localCount = static_cast<std::uint64_t>(local.size());
    const std::uint64_t before = comm.exscanSum(localCount);
    const std::uint64_t total = comm.allreduceSum(localCount);

    auto targetStart = [&](int r) {
        return (total * static_cast<std::uint64_t>(r)) / static_cast<std::uint64_t>(p);
    };

    std::vector<std::vector<Record>> sendTo(static_cast<std::size_t>(p));
    for (std::size_t i = 0; i < local.size(); ++i) {
        const std::uint64_t globalPos = before + i;
        // Destination rank: the unique r with targetStart(r) <= pos < targetStart(r+1).
        int r = static_cast<int>((globalPos * static_cast<std::uint64_t>(p)) / std::max<std::uint64_t>(total, 1));
        while (r > 0 && globalPos < targetStart(r)) --r;
        while (r < p - 1 && globalPos >= targetStart(r + 1)) ++r;
        sendTo[static_cast<std::size_t>(r)].push_back(local[i]);
    }
    return comm.alltoallv(sendTo);
}

/// Redistribute records to explicit destination ranks.
template <typename Record>
std::vector<Record> redistribute(Comm& comm, std::span<const Record> local,
                                 std::span<const int> destination) {
    GEO_REQUIRE(local.size() == destination.size(), "one destination per record");
    const int p = comm.size();
    std::vector<std::vector<Record>> sendTo(static_cast<std::size_t>(p));
    for (std::size_t i = 0; i < local.size(); ++i) {
        GEO_REQUIRE(destination[i] >= 0 && destination[i] < p, "destination rank out of range");
        sendTo[static_cast<std::size_t>(destination[i])].push_back(local[i]);
    }
    return comm.alltoallv(sendTo);
}

}  // namespace geo::par
