// Distributed sorting and redistribution over the simulated runtime.
//
// Geographer's first phase globally sorts all points by Hilbert index and
// redistributes them so each rank holds a contiguous curve segment (§4.1).
// The paper uses the schizophrenic quicksort of Axtmann et al.; we implement
// the classic sample sort with regular sampling, which has the same
// communication structure (one splitter allgather + one alltoallv).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "par/comm.hpp"
#include "support/assert.hpp"

namespace geo::par {

/// Globally sort (key, value) records by key across all ranks.
/// On return, each rank holds a sorted run and rank r's largest key is
/// <= rank r+1's smallest key. Sizes may differ slightly between ranks
/// (splitter granularity), as with any sample sort.
template <typename Key, typename Value>
struct KeyedRecord {
    Key key;
    Value value;
    friend bool operator<(const KeyedRecord& a, const KeyedRecord& b) {
        return a.key < b.key;
    }
};

template <typename Key, typename Value>
std::vector<KeyedRecord<Key, Value>> sampleSort(Comm& comm,
                                                std::vector<KeyedRecord<Key, Value>> local,
                                                int oversampling = 16) {
    using Record = KeyedRecord<Key, Value>;
    std::sort(local.begin(), local.end());
    const int p = comm.size();
    if (p == 1) return local;

    // Regular sampling: each rank contributes `oversampling` evenly spaced
    // keys from its sorted run (fewer if it holds fewer records).
    std::vector<Key> samples;
    const std::size_t n = local.size();
    const int s = std::min<std::size_t>(static_cast<std::size_t>(oversampling), n);
    samples.reserve(static_cast<std::size_t>(s));
    for (int i = 0; i < s; ++i) {
        const std::size_t idx = (n * static_cast<std::size_t>(2 * i + 1)) /
                                static_cast<std::size_t>(2 * s);
        samples.push_back(local[idx].key);
    }
    std::vector<Key> allSamples = comm.allgatherv(std::span<const Key>(samples));
    std::sort(allSamples.begin(), allSamples.end());

    // p-1 splitters at regular positions in the sample.
    std::vector<Key> splitters;
    splitters.reserve(static_cast<std::size_t>(p - 1));
    if (!allSamples.empty()) {
        for (int i = 1; i < p; ++i) {
            const std::size_t idx =
                std::min(allSamples.size() - 1,
                         (allSamples.size() * static_cast<std::size_t>(i)) /
                             static_cast<std::size_t>(p));
            splitters.push_back(allSamples[idx]);
        }
    }

    // Bucket local records by destination rank.
    std::vector<std::vector<Record>> sendTo(static_cast<std::size_t>(p));
    std::size_t begin = 0;
    for (int r = 0; r < p; ++r) {
        std::size_t end = local.size();
        if (r < p - 1 && !splitters.empty()) {
            const Record probe{splitters[static_cast<std::size_t>(r)], Value{}};
            end = static_cast<std::size_t>(
                std::upper_bound(local.begin() + static_cast<std::ptrdiff_t>(begin),
                                 local.end(), probe) -
                local.begin());
        }
        sendTo[static_cast<std::size_t>(r)].assign(
            local.begin() + static_cast<std::ptrdiff_t>(begin),
            local.begin() + static_cast<std::ptrdiff_t>(end));
        begin = end;
    }

    std::vector<Record> received = comm.alltoallv(sendTo);
    std::sort(received.begin(), received.end());
    return received;
}

/// Rebalance sorted runs so every rank holds exactly its block-distribution
/// share: rank r gets records [r*N/p, (r+1)*N/p) of the global order.
/// Precondition: runs are globally sorted (as produced by sampleSort).
template <typename Record>
std::vector<Record> rebalanceSorted(Comm& comm, std::vector<Record> local) {
    const int p = comm.size();
    if (p == 1) return local;
    const auto localCount = static_cast<std::uint64_t>(local.size());
    const std::uint64_t before = comm.exscanSum(localCount);
    const std::uint64_t total = comm.allreduceSum(localCount);

    auto targetStart = [&](int r) {
        return (total * static_cast<std::uint64_t>(r)) / static_cast<std::uint64_t>(p);
    };

    std::vector<std::vector<Record>> sendTo(static_cast<std::size_t>(p));
    for (std::size_t i = 0; i < local.size(); ++i) {
        const std::uint64_t globalPos = before + i;
        // Destination rank: the unique r with targetStart(r) <= pos < targetStart(r+1).
        int r = static_cast<int>((globalPos * static_cast<std::uint64_t>(p)) / std::max<std::uint64_t>(total, 1));
        while (r > 0 && globalPos < targetStart(r)) --r;
        while (r < p - 1 && globalPos >= targetStart(r + 1)) ++r;
        sendTo[static_cast<std::size_t>(r)].push_back(local[i]);
    }
    return comm.alltoallv(sendTo);
}

/// Redistribute records to explicit destination ranks.
template <typename Record>
std::vector<Record> redistribute(Comm& comm, std::span<const Record> local,
                                 std::span<const int> destination) {
    GEO_REQUIRE(local.size() == destination.size(), "one destination per record");
    const int p = comm.size();
    std::vector<std::vector<Record>> sendTo(static_cast<std::size_t>(p));
    for (std::size_t i = 0; i < local.size(); ++i) {
        GEO_REQUIRE(destination[i] >= 0 && destination[i] < p, "destination rank out of range");
        sendTo[static_cast<std::size_t>(destination[i])].push_back(local[i]);
    }
    return comm.alltoallv(sendTo);
}

}  // namespace geo::par
