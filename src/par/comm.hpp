// Thread-SPMD simulated message-passing runtime.
//
// This substitutes for MPI on SuperMUC (see DESIGN.md §2). Every logical
// rank runs the same SPMD function a real MPI rank would run, against a
// `Comm` handle providing the collectives Geographer needs: barrier,
// allreduce (sum/min/max), broadcast, allgather(v), alltoallv, exscan.
//
// Semantics match MPI: collectives must be called by all ranks of the
// communicator in the same order; data races are prevented by a two-phase
// publish/read protocol around a central barrier.
//
// Every collective updates per-rank statistics (bytes, rounds) and a modeled
// communication time from `CostModel`, so scaling experiments can report a
// latency–bandwidth estimate alongside measured per-rank CPU time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <numeric>
#include <span>
#include <vector>

#include "par/cost_model.hpp"
#include "support/assert.hpp"

namespace geo::par {

/// Contiguous balanced block distribution of n items over p ranks: rank r
/// owns [n·r/p, n·(r+1)/p). The single source of truth for how inputs are
/// sliced onto ranks; repart::ownerRank is its exact inverse.
struct BlockRange {
    std::int64_t lo = 0;
    std::int64_t hi = 0;
};
[[nodiscard]] constexpr BlockRange blockRange(std::int64_t n, int rank,
                                              int size) noexcept {
    return {n * rank / size, n * (rank + 1) / size};
}

/// Materialized owner map of blockRange: the rank owning each of n items.
/// Shared by hier::Topology::leafRankMap and the serving snapshots' block →
/// rank maps, so the two can never disagree on the split convention.
[[nodiscard]] inline std::vector<std::int32_t> blockRankMap(std::int64_t n, int size) {
    GEO_REQUIRE(size >= 1, "need at least one rank");
    std::vector<std::int32_t> map(static_cast<std::size_t>(n), 0);
    for (int r = 0; r < size; ++r) {
        const auto [lo, hi] = blockRange(n, r, size);
        for (std::int64_t i = lo; i < hi; ++i)
            map[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(r);
    }
    return map;
}

/// Per-rank communication statistics accumulated by the runtime.
struct CommStats {
    std::uint64_t bytesSent = 0;
    std::uint64_t bytesReceived = 0;
    std::uint64_t collectives = 0;
    double modeledCommSeconds = 0.0;

    void merge(const CommStats& o) noexcept {
        bytesSent += o.bytesSent;
        bytesReceived += o.bytesReceived;
        collectives += o.collectives;
        modeledCommSeconds += o.modeledCommSeconds;
    }
};

/// Aggregate over all ranks of one SPMD run.
struct RunStats {
    double maxCpuSeconds = 0.0;       ///< slowest rank's on-CPU compute time
    double maxModeledCommSeconds = 0; ///< slowest rank's modeled comm time
    std::uint64_t totalBytes = 0;     ///< sum of bytes sent by all ranks
    std::uint64_t collectives = 0;    ///< collectives per rank (same on all)

    /// Modeled parallel makespan: slowest compute + slowest communication.
    [[nodiscard]] double modeledSeconds() const noexcept {
        return maxCpuSeconds + maxModeledCommSeconds;
    }
};

namespace detail {

/// Central sense-reversing barrier (condition-variable based, so waiting
/// ranks release the core — essential when simulating many ranks on few
/// cores).
class Barrier {
public:
    explicit Barrier(int parties) : parties_(parties) {}

    void arriveAndWait() {
        std::unique_lock lock(mutex_);
        const std::uint64_t gen = generation_;
        if (++arrived_ == parties_) {
            arrived_ = 0;
            ++generation_;
            cv_.notify_all();
        } else {
            cv_.wait(lock, [&] { return generation_ != gen; });
        }
    }

private:
    std::mutex mutex_;
    std::condition_variable cv_;
    int parties_;
    int arrived_ = 0;
    std::uint64_t generation_ = 0;
};

/// Shared state of one machine run: publication slots + barrier.
struct SharedState {
    explicit SharedState(int ranks, CostModel model)
        : size(ranks), cost(model), barrier(ranks), slots(static_cast<std::size_t>(ranks)),
          stats(static_cast<std::size_t>(ranks)) {}

    int size;
    CostModel cost;
    Barrier barrier;
    std::vector<const void*> slots;  ///< per-rank published pointer
    std::vector<CommStats> stats;
    std::vector<double> cpuSeconds = std::vector<double>(static_cast<std::size_t>(size), 0.0);
};

double threadCpuSeconds() noexcept;

}  // namespace detail

/// Communicator handle owned by one logical rank inside an SPMD region.
class Comm {
public:
    Comm(int rank, detail::SharedState& shared) : rank_(rank), shared_(&shared) {}

    [[nodiscard]] int rank() const noexcept { return rank_; }
    [[nodiscard]] int size() const noexcept { return shared_->size; }
    [[nodiscard]] bool isRoot() const noexcept { return rank_ == 0; }
    [[nodiscard]] const CostModel& costModel() const noexcept { return shared_->cost; }

    void barrier() { shared_->barrier.arriveAndWait(); }

    /// Element-wise sum-allreduce of a vector, in place (MPI_Allreduce SUM).
    template <typename T>
    void allreduceSum(std::span<T> inout) {
        allreduceImpl(inout, [](T& a, const T& b) { a += b; });
    }

    /// Element-wise min / max allreduce, in place.
    template <typename T>
    void allreduceMin(std::span<T> inout) {
        allreduceImpl(inout, [](T& a, const T& b) { if (b < a) a = b; });
    }
    template <typename T>
    void allreduceMax(std::span<T> inout) {
        allreduceImpl(inout, [](T& a, const T& b) { if (a < b) a = b; });
    }

    /// Scalar conveniences.
    template <typename T>
    [[nodiscard]] T allreduceSum(T v) {
        allreduceSum(std::span<T>(&v, 1));
        return v;
    }
    template <typename T>
    [[nodiscard]] T allreduceMin(T v) {
        allreduceMin(std::span<T>(&v, 1));
        return v;
    }
    template <typename T>
    [[nodiscard]] T allreduceMax(T v) {
        allreduceMax(std::span<T>(&v, 1));
        return v;
    }

    /// Broadcast root's buffer to everyone. All ranks pass equally-sized
    /// buffers (MPI_Bcast).
    template <typename T>
    void broadcast(std::span<T> data, int root = 0) {
        if (size() == 1) return;
        publish(data.data());
        barrier();
        if (rank_ != root) {
            const T* src = static_cast<const T*>(shared_->slots[static_cast<std::size_t>(root)]);
            std::copy(src, src + data.size(), data.begin());
        }
        barrier();
        const std::size_t bytes = data.size() * sizeof(T);
        account(rank_ == root ? bytes : 0, rank_ == root ? 0 : bytes,
                shared_->cost.broadcast(size(), bytes));
    }

    /// Gather one value from each rank; every rank receives the full vector
    /// ordered by rank (MPI_Allgather).
    template <typename T>
    [[nodiscard]] std::vector<T> allgather(const T& mine) {
        std::vector<T> local(1, mine);
        return allgatherv(std::span<const T>(local));
    }

    /// Variable-size allgather: concatenation of all ranks' spans in rank
    /// order (MPI_Allgatherv).
    template <typename T>
    [[nodiscard]] std::vector<T> allgatherv(std::span<const T> mine) {
        if (size() == 1) return std::vector<T>(mine.begin(), mine.end());
        struct Contribution {
            const T* data;
            std::size_t count;
        } contrib{mine.data(), mine.size()};
        publish(&contrib);
        barrier();
        std::vector<T> out;
        std::size_t total = 0;
        for (int r = 0; r < size(); ++r) {
            const auto* c = static_cast<const Contribution*>(shared_->slots[static_cast<std::size_t>(r)]);
            total += c->count;
        }
        out.reserve(total);
        for (int r = 0; r < size(); ++r) {
            const auto* c = static_cast<const Contribution*>(shared_->slots[static_cast<std::size_t>(r)]);
            out.insert(out.end(), c->data, c->data + c->count);
        }
        barrier();
        const std::size_t totalBytes = total * sizeof(T);
        account(mine.size() * sizeof(T), totalBytes - mine.size() * sizeof(T),
                shared_->cost.allgather(size(), totalBytes));
        return out;
    }

    /// Personalized all-to-all: sendTo[r] is this rank's message for rank r;
    /// the result concatenates, in rank order, what every rank sent to this
    /// one (MPI_Alltoallv).
    template <typename T>
    [[nodiscard]] std::vector<T> alltoallv(const std::vector<std::vector<T>>& sendTo) {
        GEO_REQUIRE(static_cast<int>(sendTo.size()) == size(),
                    "alltoallv needs one bucket per rank");
        if (size() == 1) return sendTo[0];
        publish(&sendTo);
        barrier();
        std::vector<T> out;
        std::size_t recvCount = 0;
        for (int r = 0; r < size(); ++r) {
            const auto* buckets = static_cast<const std::vector<std::vector<T>>*>(
                shared_->slots[static_cast<std::size_t>(r)]);
            recvCount += (*buckets)[static_cast<std::size_t>(rank_)].size();
        }
        out.reserve(recvCount);
        for (int r = 0; r < size(); ++r) {
            const auto* buckets = static_cast<const std::vector<std::vector<T>>*>(
                shared_->slots[static_cast<std::size_t>(r)]);
            const auto& msg = (*buckets)[static_cast<std::size_t>(rank_)];
            out.insert(out.end(), msg.begin(), msg.end());
        }
        barrier();
        std::size_t sent = 0;
        for (int r = 0; r < size(); ++r)
            if (r != rank_) sent += sendTo[static_cast<std::size_t>(r)].size() * sizeof(T);
        const std::size_t selfBytes = sendTo[static_cast<std::size_t>(rank_)].size() * sizeof(T);
        const std::size_t received = recvCount * sizeof(T) - selfBytes;
        account(sent, received, shared_->cost.alltoallv(size(), sent, received));
        return out;
    }

    /// Exclusive prefix sum over ranks (MPI_Exscan); rank 0 receives 0.
    template <typename T>
    [[nodiscard]] T exscanSum(const T& mine) {
        const auto all = allgather(mine);
        T acc{};
        for (int r = 0; r < rank_; ++r) acc += all[static_cast<std::size_t>(r)];
        return acc;
    }

    /// Record non-collective communication performed through shared memory
    /// (e.g. the SpMV halo exchange) in the stats and cost model.
    void accountNeighborExchange(int neighbors, std::size_t sentBytes,
                                 std::size_t recvBytes) {
        account(sentBytes, recvBytes,
                shared_->cost.neighborExchange(size(), neighbors, sentBytes + recvBytes));
    }

    [[nodiscard]] const CommStats& stats() const noexcept {
        return shared_->stats[static_cast<std::size_t>(rank_)];
    }
    void resetStats() noexcept {
        shared_->stats[static_cast<std::size_t>(rank_)] = CommStats{};
    }

    /// On-CPU time consumed by this rank's thread so far (excludes time
    /// blocked in barriers) — the simulator's stand-in for per-rank compute
    /// wall time on a dedicated core.
    [[nodiscard]] double cpuSeconds() const noexcept { return detail::threadCpuSeconds(); }

private:
    template <typename T, typename Op>
    void allreduceImpl(std::span<T> inout, Op op) {
        if (size() == 1) return;
        // Publish a copy so in-place accumulation cannot race with readers.
        std::vector<T> mine(inout.begin(), inout.end());
        publish(mine.data());
        barrier();
        // Fold strictly in rank order on EVERY rank: replicated algorithm
        // state (k-means centers, influence values) must stay bit-identical
        // across ranks, which a rank-dependent summation order would break.
        const T* first = static_cast<const T*>(shared_->slots[0]);
        std::copy(first, first + inout.size(), inout.begin());
        for (int r = 1; r < size(); ++r) {
            const T* other = static_cast<const T*>(shared_->slots[static_cast<std::size_t>(r)]);
            for (std::size_t i = 0; i < inout.size(); ++i) op(inout[i], other[i]);
        }
        barrier();
        const std::size_t bytes = inout.size() * sizeof(T);
        account(bytes, bytes, shared_->cost.allreduce(size(), bytes));
    }

    void publish(const void* ptr) noexcept {
        shared_->slots[static_cast<std::size_t>(rank_)] = ptr;
    }

    void account(std::size_t sent, std::size_t received, double modeledSeconds) noexcept {
        auto& s = shared_->stats[static_cast<std::size_t>(rank_)];
        s.bytesSent += sent;
        s.bytesReceived += received;
        s.collectives += 1;
        s.modeledCommSeconds += modeledSeconds;
    }

    int rank_;
    detail::SharedState* shared_;
};

/// Owns an SPMD execution: spawns one thread per logical rank and runs the
/// given body with a rank-local Comm. Usable repeatedly; each run() returns
/// aggregated statistics.
class Machine {
public:
    explicit Machine(int ranks, CostModel model = {});

    /// Run the SPMD body on all ranks; rethrows the first rank exception.
    RunStats run(const std::function<void(Comm&)>& body);

    [[nodiscard]] int ranks() const noexcept { return ranks_; }

private:
    int ranks_;
    CostModel model_;
};

/// Convenience: single SPMD run.
RunStats runSpmd(int ranks, const std::function<void(Comm&)>& body,
                 CostModel model = {});

}  // namespace geo::par
