// Typed SPMD communicator over a pluggable transport.
//
// This substitutes for MPI on SuperMUC (see DESIGN.md §2). Every logical
// rank runs the same SPMD function a real MPI rank would run, against a
// `Comm` handle providing the collectives Geographer needs: barrier,
// allreduce (sum/min/max), broadcast, allgather(v), alltoallv, exscan.
//
// Comm is the typed, stats-accounted face; the byte moving underneath is a
// `Transport` (par/transport/transport.hpp) selected per Machine run:
// either the in-process thread-SPMD simulator (ranks are threads — the
// deterministic default) or the multi-process socket backend installed by a
// geo_launch worker. Algorithms never see the difference: collective
// semantics match MPI, reductions fold in rank order 0..p-1 on every
// backend, and CommStats are computed HERE from logical payload sizes and
// the CostModel, so bytes/rounds/modeled-seconds are identical no matter
// which backend carried the bits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "par/cost_model.hpp"
#include "par/transport/transport.hpp"
#include "support/assert.hpp"

namespace geo::par {

/// Contiguous balanced block distribution of n items over p ranks: rank r
/// owns [n·r/p, n·(r+1)/p). The single source of truth for how inputs are
/// sliced onto ranks; repart::ownerRank is its exact inverse.
struct BlockRange {
    std::int64_t lo = 0;
    std::int64_t hi = 0;
};
[[nodiscard]] constexpr BlockRange blockRange(std::int64_t n, int rank,
                                              int size) noexcept {
    return {n * rank / size, n * (rank + 1) / size};
}

/// Materialized owner map of blockRange: the rank owning each of n items.
/// Shared by hier::Topology::leafRankMap and the serving snapshots' block →
/// rank maps, so the two can never disagree on the split convention.
[[nodiscard]] inline std::vector<std::int32_t> blockRankMap(std::int64_t n, int size) {
    GEO_REQUIRE(size >= 1, "need at least one rank");
    std::vector<std::int32_t> map(static_cast<std::size_t>(n), 0);
    for (int r = 0; r < size; ++r) {
        const auto [lo, hi] = blockRange(n, r, size);
        for (std::int64_t i = lo; i < hi; ++i)
            map[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(r);
    }
    return map;
}

/// Per-rank communication statistics accumulated by the runtime.
struct CommStats {
    std::uint64_t bytesSent = 0;
    std::uint64_t bytesReceived = 0;
    std::uint64_t collectives = 0;
    double modeledCommSeconds = 0.0;

    void merge(const CommStats& o) noexcept {
        bytesSent += o.bytesSent;
        bytesReceived += o.bytesReceived;
        collectives += o.collectives;
        modeledCommSeconds += o.modeledCommSeconds;
    }
};

/// Aggregate over all ranks of one SPMD run.
struct RunStats {
    double maxCpuSeconds = 0.0;       ///< slowest rank's on-CPU compute time
    double maxModeledCommSeconds = 0; ///< slowest rank's modeled comm time
    std::uint64_t totalBytes = 0;     ///< sum of bytes sent by all ranks
    std::uint64_t collectives = 0;    ///< collectives per rank (same on all)

    /// Modeled parallel makespan: slowest compute + slowest communication.
    [[nodiscard]] double modeledSeconds() const noexcept {
        return maxCpuSeconds + maxModeledCommSeconds;
    }
};

namespace detail {

double threadCpuSeconds() noexcept;

}  // namespace detail

/// Communicator handle owned by one logical rank inside an SPMD region.
/// Thin typed wrapper over a Transport plus uniform stats accounting.
class Comm {
public:
    Comm(Transport& transport, const CostModel& cost, CommStats& stats)
        : transport_(&transport), cost_(&cost), stats_(&stats) {}

    [[nodiscard]] int rank() const noexcept { return transport_->rank(); }
    [[nodiscard]] int size() const noexcept { return transport_->size(); }
    [[nodiscard]] bool isRoot() const noexcept { return rank() == 0; }
    [[nodiscard]] const CostModel& costModel() const noexcept { return *cost_; }

    /// The byte engine underneath — entry points use crossProcess() to
    /// decide whether root-assembled results must be replicated, and raw
    /// transport calls to move data WITHOUT touching the stats (so
    /// bookkeeping traffic never skews backend-comparable reports).
    [[nodiscard]] Transport& transport() const noexcept { return *transport_; }
    [[nodiscard]] bool crossProcess() const noexcept { return transport_->crossProcess(); }

    void barrier() { transport_->barrier(); }

    /// Element-wise sum-allreduce of a vector, in place (MPI_Allreduce SUM).
    template <typename T>
    void allreduceSum(std::span<T> inout) { allreduceImpl(inout, ReduceOp::Sum); }

    /// Element-wise min / max allreduce, in place.
    template <typename T>
    void allreduceMin(std::span<T> inout) { allreduceImpl(inout, ReduceOp::Min); }
    template <typename T>
    void allreduceMax(std::span<T> inout) { allreduceImpl(inout, ReduceOp::Max); }

    /// Scalar conveniences.
    template <typename T>
    [[nodiscard]] T allreduceSum(T v) {
        allreduceSum(std::span<T>(&v, 1));
        return v;
    }
    template <typename T>
    [[nodiscard]] T allreduceMin(T v) {
        allreduceMin(std::span<T>(&v, 1));
        return v;
    }
    template <typename T>
    [[nodiscard]] T allreduceMax(T v) {
        allreduceMax(std::span<T>(&v, 1));
        return v;
    }

    /// Broadcast root's buffer to everyone. All ranks pass equally-sized
    /// buffers (MPI_Bcast).
    template <typename T>
    void broadcast(std::span<T> data, int root = 0) {
        static_assert(std::is_trivially_copyable_v<T>);
        if (size() == 1) return;
        const std::size_t bytes = data.size() * sizeof(T);
        transport_->broadcast(data.data(), bytes, root);
        account(rank() == root ? bytes : 0, rank() == root ? 0 : bytes,
                cost_->broadcast(size(), bytes));
    }

    /// Gather one value from each rank; every rank receives the full vector
    /// ordered by rank (MPI_Allgather).
    template <typename T>
    [[nodiscard]] std::vector<T> allgather(const T& mine) {
        std::vector<T> local(1, mine);
        return allgatherv(std::span<const T>(local));
    }

    /// Variable-size allgather: concatenation of all ranks' spans in rank
    /// order (MPI_Allgatherv).
    template <typename T>
    [[nodiscard]] std::vector<T> allgatherv(std::span<const T> mine) {
        static_assert(std::is_trivially_copyable_v<T>);
        if (size() == 1) return std::vector<T>(mine.begin(), mine.end());
        const std::size_t mineBytes = mine.size() * sizeof(T);
        const std::vector<std::byte> raw =
            transport_->allgatherv(ConstBuf{mine.data(), mineBytes});
        GEO_CHECK(raw.size() % sizeof(T) == 0,
                  "allgatherv returned a partial element");
        std::vector<T> out(raw.size() / sizeof(T));
        if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
        account(mineBytes, raw.size() - mineBytes,
                cost_->allgather(size(), raw.size()));
        return out;
    }

    /// Personalized all-to-all: sendTo[r] is this rank's message for rank r;
    /// the result concatenates, in rank order, what every rank sent to this
    /// one (MPI_Alltoallv).
    template <typename T>
    [[nodiscard]] std::vector<T> alltoallv(const std::vector<std::vector<T>>& sendTo) {
        static_assert(std::is_trivially_copyable_v<T>);
        GEO_REQUIRE(static_cast<int>(sendTo.size()) == size(),
                    "alltoallv needs one bucket per rank");
        if (size() == 1) return sendTo[0];
        std::vector<ConstBuf> bufs(sendTo.size());
        for (std::size_t r = 0; r < sendTo.size(); ++r)
            bufs[r] = ConstBuf{sendTo[r].data(), sendTo[r].size() * sizeof(T)};
        const std::vector<std::byte> raw = transport_->alltoallv(bufs);
        GEO_CHECK(raw.size() % sizeof(T) == 0,
                  "alltoallv returned a partial element");
        std::vector<T> out(raw.size() / sizeof(T));
        if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
        std::size_t sent = 0;
        for (int r = 0; r < size(); ++r)
            if (r != rank()) sent += sendTo[static_cast<std::size_t>(r)].size() * sizeof(T);
        const std::size_t selfBytes = sendTo[static_cast<std::size_t>(rank())].size() * sizeof(T);
        const std::size_t received = raw.size() - selfBytes;
        account(sent, received, cost_->alltoallv(size(), sent, received));
        return out;
    }

    /// Exclusive prefix sum over ranks (MPI_Exscan); rank 0 receives 0.
    /// Accounted as the one-element allgather it is implemented with, so
    /// stats match the pre-transport runtime exactly.
    template <typename T>
    [[nodiscard]] T exscanSum(const T& mine) {
        if (size() == 1) return T{};
        T v = mine;
        transport_->exscanSum(&v, DTypeOf<T>::value);
        const std::size_t total = static_cast<std::size_t>(size()) * sizeof(T);
        account(sizeof(T), total - sizeof(T), cost_->allgather(size(), total));
        return v;
    }

    /// Record non-collective communication performed through shared memory
    /// (e.g. the SpMV halo exchange) in the stats and cost model.
    void accountNeighborExchange(int neighbors, std::size_t sentBytes,
                                 std::size_t recvBytes) {
        account(sentBytes, recvBytes,
                cost_->neighborExchange(size(), neighbors, sentBytes + recvBytes));
    }

    [[nodiscard]] const CommStats& stats() const noexcept { return *stats_; }
    void resetStats() noexcept { *stats_ = CommStats{}; }

    /// On-CPU time consumed by this rank so far (excludes time blocked in
    /// barriers) — the stand-in for per-rank compute wall time on a
    /// dedicated core. Per-thread in the simulator, per-process over
    /// sockets; identical meaning either way.
    [[nodiscard]] double cpuSeconds() const noexcept { return detail::threadCpuSeconds(); }

private:
    template <typename T>
    void allreduceImpl(std::span<T> inout, ReduceOp op) {
        static_assert(std::is_trivially_copyable_v<T>);
        if (size() == 1) return;
        transport_->allreduce(inout.data(), inout.size(), DTypeOf<T>::value, op);
        const std::size_t bytes = inout.size() * sizeof(T);
        account(bytes, bytes, cost_->allreduce(size(), bytes));
    }

    void account(std::size_t sent, std::size_t received, double modeledSeconds) noexcept {
        stats_->bytesSent += sent;
        stats_->bytesReceived += received;
        stats_->collectives += 1;
        stats_->modeledCommSeconds += modeledSeconds;
    }

    Transport* transport_;
    const CostModel* cost_;
    CommStats* stats_;
};

/// Owns an SPMD execution: resolves a transport backend and runs the given
/// body once per logical rank with a rank-local Comm. Usable repeatedly;
/// each run() returns aggregated statistics.
///
/// Backend resolution per run: `kind` Auto defers to GEO_TRANSPORT (unset →
/// simulator). Socket/Tcp claim the process-wide transport installed by
/// geo_launch — available, size-matched and not already leased by an
/// enclosing run — and execute the body ONCE on this process's rank;
/// otherwise the run silently falls back to the thread simulator, which
/// keeps single-rank helpers, hier's nested sub-partitions and plain test
/// binaries working unchanged inside or outside a worker.
class Machine {
public:
    explicit Machine(int ranks, CostModel model = {},
                     TransportKind kind = TransportKind::Auto);

    /// Run the SPMD body on all ranks; rethrows the first rank exception.
    RunStats run(const std::function<void(Comm&)>& body);

    [[nodiscard]] int ranks() const noexcept { return ranks_; }

private:
    int ranks_;
    CostModel model_;
    TransportKind kind_;
};

/// Convenience: single SPMD run.
RunStats runSpmd(int ranks, const std::function<void(Comm&)>& body,
                 CostModel model = {}, TransportKind kind = TransportKind::Auto);

}  // namespace geo::par
