#include "par/transport/sim.hpp"

#include <cstring>

#include "support/assert.hpp"

namespace geo::par {

void SimTransport::allreduce(void* inout, std::size_t count, DType type,
                             ReduceOp op) {
    const int p = size();
    if (p == 1) return;
    const std::size_t bytes = count * dtypeSize(type);

    // Publish a private copy so the fold below can overwrite `inout`
    // without racing other ranks still reading our contribution.
    std::vector<std::byte> copy(bytes);
    std::memcpy(copy.data(), inout, bytes);
    publish(copy.data());
    barrier();

    std::memcpy(inout, slot(0), bytes);
    for (int r = 1; r < p; ++r) reduceInPlace(type, op, inout, slot(r), count);
    barrier();
}

void SimTransport::broadcast(void* data, std::size_t bytes, int root) {
    const int p = size();
    if (p == 1) return;
    GEO_REQUIRE(root >= 0 && root < p, "broadcast root out of range");
    publish(data);
    barrier();
    if (rank_ != root && bytes > 0) std::memcpy(data, slot(root), bytes);
    barrier();
}

std::vector<std::byte> SimTransport::allgatherv(ConstBuf mine) {
    const int p = size();
    if (p == 1) {
        std::vector<std::byte> out(mine.bytes);
        if (mine.bytes > 0) std::memcpy(out.data(), mine.data, mine.bytes);
        return out;
    }
    publish(&mine);
    barrier();

    std::size_t total = 0;
    for (int r = 0; r < p; ++r)
        total += static_cast<const ConstBuf*>(slot(r))->bytes;

    std::vector<std::byte> out;
    out.reserve(total);
    for (int r = 0; r < p; ++r) {
        const auto* buf = static_cast<const ConstBuf*>(slot(r));
        const auto* src = static_cast<const std::byte*>(buf->data);
        out.insert(out.end(), src, src + buf->bytes);
    }
    barrier();
    return out;
}

std::vector<std::byte> SimTransport::alltoallv(std::span<const ConstBuf> sendTo) {
    const int p = size();
    GEO_REQUIRE(static_cast<int>(sendTo.size()) == p,
                "alltoallv needs one send buffer per rank");
    if (p == 1) {
        std::vector<std::byte> out(sendTo[0].bytes);
        if (sendTo[0].bytes > 0)
            std::memcpy(out.data(), sendTo[0].data, sendTo[0].bytes);
        return out;
    }
    publish(sendTo.data());
    barrier();

    std::vector<std::byte> out;
    for (int r = 0; r < p; ++r) {
        const auto* bufs = static_cast<const ConstBuf*>(slot(r));
        const ConstBuf& forMe = bufs[rank_];
        const auto* src = static_cast<const std::byte*>(forMe.data);
        out.insert(out.end(), src, src + forMe.bytes);
    }
    barrier();
    return out;
}

}  // namespace geo::par
