#include "par/transport/transport.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

#include "support/assert.hpp"

namespace geo::par {

const char* toString(TransportErrorKind kind) noexcept {
    switch (kind) {
        case TransportErrorKind::Timeout: return "timeout";
        case TransportErrorKind::PeerClosed: return "peer-closed";
        case TransportErrorKind::ConnectFailed: return "connect-failed";
        case TransportErrorKind::Protocol: return "protocol";
    }
    return "?";
}

namespace {

std::string formatTransportError(TransportErrorKind kind, int peer,
                                 const std::string& op, std::uint32_t seq,
                                 const std::string& detail) {
    std::string msg = "transport error: kind=";
    msg += toString(kind);
    msg += " op=" + op;
    msg += " seq=" + std::to_string(seq);
    if (peer >= 0) msg += " peer=" + std::to_string(peer);
    if (!detail.empty()) msg += " — " + detail;
    return msg;
}

int envMs(const char* var, int fallback) noexcept {
    const char* env = std::getenv(var);
    if (!env || *env == '\0') return fallback;
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (!end || *end != '\0' || v < 0 || v > 1000 * 3600 * 24) return fallback;
    return static_cast<int>(v);
}

}  // namespace

TransportError::TransportError(TransportErrorKind kind_, int peer_, std::string op_,
                               std::uint32_t seq_, const std::string& detail)
    : std::runtime_error(formatTransportError(kind_, peer_, op_, seq_, detail)),
      kind(kind_),
      peer(peer_),
      op(std::move(op_)),
      seq(seq_) {}

int defaultCommTimeoutMs() noexcept { return envMs("GEO_COMM_TIMEOUT_MS", 30000); }

int defaultConnectTimeoutMs() noexcept {
    return envMs("GEO_CONNECT_TIMEOUT_MS", 30000);
}

TransportKind parseTransportKind(std::string_view name) {
    if (name == "sim") return TransportKind::Sim;
    if (name == "socket") return TransportKind::Socket;
    if (name == "tcp") return TransportKind::Tcp;
    GEO_REQUIRE(false, "unknown transport '" + std::string(name) +
                           "' (use sim, socket, or tcp)");
}

const char* transportKindName(TransportKind kind) noexcept {
    switch (kind) {
        case TransportKind::Auto: return "auto";
        case TransportKind::Sim: return "sim";
        case TransportKind::Socket: return "socket";
        case TransportKind::Tcp: return "tcp";
    }
    return "?";
}

TransportKind envTransportKind() {
    const char* env = std::getenv("GEO_TRANSPORT");
    if (!env || *env == '\0') return TransportKind::Sim;
    const TransportKind kind = parseTransportKind(env);
    return kind == TransportKind::Auto ? TransportKind::Sim : kind;
}

int defaultRanks() noexcept {
    const char* env = std::getenv("GEO_RANKS");
    const int parsed = env ? std::atoi(env) : 0;
    return parsed >= 1 ? parsed : 1;
}

std::size_t dtypeSize(DType type) noexcept {
    switch (type) {
        case DType::U8: return 1;
        case DType::I32:
        case DType::U32:
        case DType::F32: return 4;
        case DType::I64:
        case DType::U64:
        case DType::F64: return 8;
    }
    return 0;
}

namespace {

template <typename T>
void reduceTyped(ReduceOp op, void* accRaw, const void* otherRaw, std::size_t count) {
    auto* acc = static_cast<T*>(accRaw);
    const auto* other = static_cast<const T*>(otherRaw);
    switch (op) {
        case ReduceOp::Sum:
            for (std::size_t i = 0; i < count; ++i) acc[i] += other[i];
            break;
        case ReduceOp::Min:
            for (std::size_t i = 0; i < count; ++i)
                if (other[i] < acc[i]) acc[i] = other[i];
            break;
        case ReduceOp::Max:
            for (std::size_t i = 0; i < count; ++i)
                if (acc[i] < other[i]) acc[i] = other[i];
            break;
    }
}

}  // namespace

void reduceInPlace(DType type, ReduceOp op, void* acc, const void* other,
                   std::size_t count) {
    switch (type) {
        case DType::U8: return reduceTyped<std::uint8_t>(op, acc, other, count);
        case DType::I32: return reduceTyped<std::int32_t>(op, acc, other, count);
        case DType::U32: return reduceTyped<std::uint32_t>(op, acc, other, count);
        case DType::I64: return reduceTyped<std::int64_t>(op, acc, other, count);
        case DType::U64: return reduceTyped<std::uint64_t>(op, acc, other, count);
        case DType::F32: return reduceTyped<float>(op, acc, other, count);
        case DType::F64: return reduceTyped<double>(op, acc, other, count);
    }
}

namespace {

Transport* g_processTransport = nullptr;
bool g_processTransportLeased = false;

}  // namespace

void setProcessTransport(Transport* transport) noexcept {
    g_processTransport = transport;
    g_processTransportLeased = false;
}

Transport* processTransport() noexcept { return g_processTransport; }

Transport* acquireProcessTransport(int ranks) noexcept {
    if (!g_processTransport || g_processTransportLeased ||
        g_processTransport->size() != ranks)
        return nullptr;
    g_processTransportLeased = true;
    return g_processTransport;
}

void releaseProcessTransport() noexcept { g_processTransportLeased = false; }

void Transport::exscanSum(void* inout, DType type) {
    const std::size_t bytes = dtypeSize(type);
    if (size() == 1) {
        std::memset(inout, 0, bytes);  // arithmetic zero for every DType
        return;
    }
    const std::vector<std::byte> all = allgatherv(ConstBuf{inout, bytes});
    GEO_CHECK(all.size() == bytes * static_cast<std::size_t>(size()),
              "exscan gather size mismatch");
    std::memset(inout, 0, bytes);
    for (int r = 0; r < rank(); ++r)
        reduceInPlace(type, ReduceOp::Sum, inout,
                      all.data() + static_cast<std::size_t>(r) * bytes, 1);
}

}  // namespace geo::par
