// Multi-process socket backend: real ranks, real bytes, one host.
//
// Each rank is an OS process launched by tools/geo_launch. The mesh is
// fully connected: every pair of ranks shares one stream socket —
// Unix-domain by default (paths under GEO_SOCKET_DIR), TCP loopback when
// GEO_TRANSPORT=tcp (ports GEO_PORT_BASE + rank). Rank r listens on its own
// endpoint, dials every lower rank, and accepts from every higher rank; a
// handshake frame on each new connection pins the peer's identity before
// any collective traffic flows.
//
// Wire protocol: length-prefixed frames
//
//     [u32 magic][u32 tag][u64 payloadLen][payload]
//
// where tag packs (opcode, collective sequence number). Both ends advance
// the sequence once per collective, so a desynchronized peer — one rank
// entering collectives in a different order — fails loudly on the tag check
// instead of silently mixing payloads. Frame decode uses the same
// bounds-checked binio primitives as the snapshot loader.
//
// Collective algorithms (DESIGN.md §2):
//   * broadcast     — binomial tree rooted at `root`.
//   * allreduce     — binomial-tree gather of every rank's buffer to rank 0
//                     (concatenation, preserving per-rank payloads), a
//                     SEQUENTIAL fold 0..p-1 at the root through the shared
//                     reduceInPlace kernel, then tree broadcast. The tree
//                     moves bytes; it never changes fold order — that is
//                     what keeps floating-point results bitwise identical
//                     to the simulator.
//   * allgatherv    — tree gather of (origin, payload) entries, root
//                     concatenates in rank order, tree broadcast.
//   * barrier       — zero-byte gather + broadcast.
//   * alltoallv     — pairwise exchange: step s sends to (rank+s) mod p
//                     while receiving from (rank−s) mod p, full-duplex via
//                     poll so two ranks streaming large payloads at each
//                     other cannot deadlock on filled socket buffers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "par/transport/transport.hpp"

namespace geo::par {

/// Configuration a worker needs to join the mesh (normally parsed from the
/// geo_launch environment by ensureWorkerTransport, but constructible
/// directly for tests).
struct SocketConfig {
    int rank = 0;
    int ranks = 1;
    bool tcp = false;          ///< false → Unix-domain sockets in `dir`
    std::string dir;           ///< Unix: directory holding geo.<r>.sock
    int portBase = 0;          ///< TCP: rank r listens on 127.0.0.1:portBase+r
    /// Deadline for every blocking collective operation, in milliseconds:
    /// an op making no byte progress for this long throws
    /// TransportError{Timeout} instead of hanging on a dead or wedged peer.
    /// -1 = resolve from GEO_COMM_TIMEOUT_MS (default 30000); 0 = no
    /// deadline (block forever, the pre-fault-tolerance behavior).
    int opTimeoutMs = -1;
    /// Deadline for mesh construction (bounded-retry dials + handshake
    /// accepts). -1 = resolve from GEO_CONNECT_TIMEOUT_MS (default 30000).
    int connectTimeoutMs = -1;
};

class SocketTransport final : public Transport {
public:
    /// Joins the mesh: binds the own endpoint, dials lower ranks, accepts
    /// higher ranks, handshakes every connection. Blocks until all p-1
    /// peers are connected or the connect timeout expires (throws).
    explicit SocketTransport(const SocketConfig& config);
    ~SocketTransport() override;

    SocketTransport(const SocketTransport&) = delete;
    SocketTransport& operator=(const SocketTransport&) = delete;

    [[nodiscard]] int rank() const noexcept override { return config_.rank; }
    [[nodiscard]] int size() const noexcept override { return config_.ranks; }
    [[nodiscard]] const char* name() const noexcept override {
        return config_.tcp ? "tcp" : "socket";
    }
    [[nodiscard]] bool crossProcess() const noexcept override { return true; }

    void barrier() override;
    void allreduce(void* inout, std::size_t count, DType type, ReduceOp op) override;
    void broadcast(void* data, std::size_t bytes, int root) override;
    [[nodiscard]] std::vector<std::byte> allgatherv(ConstBuf mine) override;
    [[nodiscard]] std::vector<std::byte> alltoallv(
        std::span<const ConstBuf> sendTo) override;

private:
    enum class Op : std::uint8_t;

    void connectMesh();
    [[nodiscard]] int fdFor(int peer) const;

    /// Collective prologue: bump the wire sequence, remember the op name for
    /// error reports, and run the op's fault point (GEO_FAULT).
    void beginCollective(const char* op);

    void sendFrame(int peer, Op op, const void* payload, std::size_t bytes);
    [[nodiscard]] std::vector<std::byte> recvFrame(int peer, Op op);
    [[nodiscard]] std::vector<std::byte> exchangeFrames(int sendPeer, Op sendOp,
                                                        const void* sendPayload,
                                                        std::size_t sendBytes,
                                                        int recvPeer, Op recvOp);

    /// Tree gather to rank 0: root returns all p payloads indexed by origin
    /// rank; everyone else returns an empty vector.
    [[nodiscard]] std::vector<std::vector<std::byte>> gatherToRoot(ConstBuf mine);
    /// Tree broadcast of a variable-size payload; only root's argument
    /// matters, every rank returns the payload.
    [[nodiscard]] std::vector<std::byte> bcastBytes(std::vector<std::byte> mine,
                                                    int root);

    SocketConfig config_;
    int listenFd_ = -1;
    std::vector<int> peerFd_;    ///< per-rank socket fd (own slot = -1)
    std::uint32_t seq_ = 0;      ///< collective sequence, bumped per call
    const char* opName_ = "handshake";  ///< current op, for TransportError
    int opTimeoutMs_ = 0;        ///< resolved per-op deadline (0 = none)
    int connectTimeoutMs_ = 0;   ///< resolved mesh-construction deadline
};

/// Lazily construct and install the process-wide SocketTransport from the
/// geo_launch worker environment (GEO_RANK, GEO_RANKS, GEO_TRANSPORT,
/// GEO_SOCKET_DIR / GEO_PORT_BASE). Returns the installed transport, or
/// nullptr when this process is not a worker. Safe to call repeatedly; the
/// mesh is built once and lives until process exit.
Transport* ensureWorkerTransport();

}  // namespace geo::par
