// Abstract transport: the collective set par::Comm exposes, as an interface.
//
// `Comm` carries the typed, stats-accounted API the algorithms program
// against (barrier, allreduce sum/min/max, broadcast, allgather(v),
// alltoallv, exscan). A Transport is the byte-level engine underneath it,
// selected at runtime:
//
//   * SimTransport (sim.hpp)    — the original in-process thread-SPMD
//     simulator: ranks are threads, collectives move bytes through shared
//     slots around a central barrier. Deterministic test backend.
//   * SocketTransport (socket.hpp) — real multi-process backend: ranks are
//     OS processes connected by a Unix-domain or TCP socket mesh speaking a
//     length-prefixed frame protocol. Launched by tools/geo_launch.
//
// The determinism contract both backends must honor (and the conformance
// suite in tests/test_transport.cpp enforces): reductions fold elementwise
// in STRICT RANK ORDER 0..p-1, and v-collectives concatenate contributions
// in rank order. Floating-point collective results are therefore bitwise
// identical across backends, which is what lets a partition computed over
// sockets reproduce the simulator's partition exactly.
//
// Typed reduction lives here (DType + reduceInPlace) rather than in the
// backends so both fold with the very same code path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace geo::par {

/// Failure classes a transport operation can surface. Every blocking socket
/// operation is deadline-bounded (SocketConfig::opTimeoutMs), so a dead or
/// wedged peer produces one of these instead of an indefinite hang:
///   * Timeout       — the deadline expired with no progress (wedged peer,
///     network partition, absent rank at handshake time).
///   * PeerClosed    — the peer's socket closed under us (EOF, ECONNRESET,
///     EPIPE): the peer process died or tore down its mesh.
///   * ConnectFailed — the bounded-retry dial loop could not reach the
///     peer's endpoint before the connect deadline.
///   * Protocol      — the peer is alive but sent garbage (bad magic,
///     desynchronized collective tag, oversized frame).
enum class TransportErrorKind : std::uint8_t {
    Timeout,
    PeerClosed,
    ConnectFailed,
    Protocol,
};

[[nodiscard]] const char* toString(TransportErrorKind kind) noexcept;

/// Typed failure of a transport operation: which peer, during which
/// collective (op + transport sequence number), and why. Derives from
/// std::runtime_error so existing catch sites keep working; new code can
/// catch TransportError specifically and switch on `kind` (retry, restart,
/// degrade). Thrown instead of hanging or aborting — the supervision layer
/// (tools/geo_launch) turns the resulting worker exit into a fleet
/// teardown/restart decision.
class TransportError : public std::runtime_error {
public:
    TransportError(TransportErrorKind kind, int peer, std::string op,
                   std::uint32_t seq, const std::string& detail);

    TransportErrorKind kind;  ///< failure class
    int peer;                 ///< peer rank involved (-1 when not peer-specific)
    std::string op;           ///< collective/operation name ("allreduce", ...)
    std::uint32_t seq;        ///< transport collective sequence number
};

/// GEO_COMM_TIMEOUT_MS resolution: deadline in milliseconds for every
/// blocking socket-transport operation. Unset/unparseable → 30000. A value
/// of 0 disables the deadline (pre-fault-tolerance blocking behavior).
/// Not cached: tests and geo_launch workers mutate the environment.
[[nodiscard]] int defaultCommTimeoutMs() noexcept;

/// GEO_CONNECT_TIMEOUT_MS resolution: deadline for mesh construction (dial
/// retries + handshake accepts). Unset/unparseable → 30000.
[[nodiscard]] int defaultConnectTimeoutMs() noexcept;

/// Which transport a Machine run should use. Auto defers to the
/// GEO_TRANSPORT environment variable (unset → Sim). Socket/Tcp are the
/// same backend over different address families; both require the process
/// to have been launched as a geo_launch worker (GEO_RANK/GEO_RANKS set) —
/// outside a worker, Machine falls back to the simulator.
enum class TransportKind : std::uint8_t { Auto, Sim, Socket, Tcp };

/// Parse a GEO_TRANSPORT value ("sim", "socket", "tcp"); throws
/// std::invalid_argument on anything else.
[[nodiscard]] TransportKind parseTransportKind(std::string_view name);
[[nodiscard]] const char* transportKindName(TransportKind kind) noexcept;

/// GEO_TRANSPORT environment resolution: parsed value when set, Sim when
/// unset. Deliberately NOT cached (unlike defaultThreads): geo_launch
/// workers and the precedence tests mutate the variable at runtime.
[[nodiscard]] TransportKind envTransportKind();

/// GEO_RANKS environment resolution: the value when set and >= 1, else 1.
/// Not cached, same reasoning as envTransportKind.
[[nodiscard]] int defaultRanks() noexcept;

/// Element types a typed reduction can fold. Deliberately a closed set:
/// both backends must reduce with identical semantics, so every type is
/// spelled out once in reduceInPlace's dispatch.
enum class DType : std::uint8_t { U8, I32, U32, I64, U64, F32, F64 };

enum class ReduceOp : std::uint8_t { Sum, Min, Max };

[[nodiscard]] std::size_t dtypeSize(DType type) noexcept;

/// acc[i] = op(acc[i], other[i]) for count elements of `type`. The ONLY
/// reduction kernel in the system: the simulator folds published slots with
/// it and the socket backend folds gathered buffers with it, in the same
/// rank order, so results agree bitwise.
void reduceInPlace(DType type, ReduceOp op, void* acc, const void* other,
                   std::size_t count);

/// C++ type → DType. Unspecialized use is a compile error: transporting a
/// new element type through a reduction must be a conscious decision.
template <typename T>
struct DTypeOf;
template <> struct DTypeOf<std::uint8_t> { static constexpr DType value = DType::U8; };
template <> struct DTypeOf<std::int32_t> { static constexpr DType value = DType::I32; };
template <> struct DTypeOf<std::uint32_t> { static constexpr DType value = DType::U32; };
template <> struct DTypeOf<std::int64_t> { static constexpr DType value = DType::I64; };
template <> struct DTypeOf<std::uint64_t> { static constexpr DType value = DType::U64; };
template <> struct DTypeOf<float> { static constexpr DType value = DType::F32; };
template <> struct DTypeOf<double> { static constexpr DType value = DType::F64; };

/// Borrowed byte buffer handed to a transport (never owning).
struct ConstBuf {
    const void* data = nullptr;
    std::size_t bytes = 0;
};

/// The byte-level collective engine. All calls are collective: every rank
/// of the transport must enter them in the same order with compatible
/// arguments (the MPI contract). Implementations may assume size() >= 2 for
/// the data-moving calls — Comm short-circuits single-rank communicators —
/// but must stay correct (no-op) at size() == 1 anyway.
class Transport {
public:
    virtual ~Transport() = default;

    [[nodiscard]] virtual int rank() const noexcept = 0;
    [[nodiscard]] virtual int size() const noexcept = 0;
    /// Backend name for reports and bench JSON: "sim", "socket", "tcp".
    [[nodiscard]] virtual const char* name() const noexcept = 0;
    /// True when ranks are separate OS processes (no shared memory): the
    /// signal for entry points to replicate root-assembled results.
    [[nodiscard]] virtual bool crossProcess() const noexcept = 0;

    virtual void barrier() = 0;

    /// In-place elementwise reduction folded in rank order 0..p-1.
    virtual void allreduce(void* inout, std::size_t count, DType type,
                           ReduceOp op) = 0;

    /// Root's buffer replaces everyone's; all ranks pass `bytes` equal.
    virtual void broadcast(void* data, std::size_t bytes, int root) = 0;

    /// Concatenation of all ranks' buffers in rank order, on every rank.
    [[nodiscard]] virtual std::vector<std::byte> allgatherv(ConstBuf mine) = 0;

    /// Personalized all-to-all: sendTo[r] is this rank's message for rank r
    /// (sendTo.size() == size()); returns the concatenation, in sender rank
    /// order, of what every rank sent to this one.
    [[nodiscard]] virtual std::vector<std::byte> alltoallv(
        std::span<const ConstBuf> sendTo) = 0;

    /// Exclusive prefix sum over ranks of one element of `type` (rank 0
    /// receives the zero value). Default implementation gathers every
    /// rank's element and folds [0, rank) in rank order — backends may
    /// override with something smarter but must keep that fold order.
    virtual void exscanSum(void* inout, DType type);
};

/// Process-wide transport registry. A geo_launch worker installs its
/// SocketTransport here at startup (setProcessTransport); Machine runs with
/// kind Socket/Tcp claim it for the duration of one SPMD run. The lease is
/// exclusive — a nested Machine run inside an SPMD body (hier's per-node
/// sub-partitions, single-rank helpers) finds the transport busy and falls
/// back to the in-process simulator, which is exactly the desired
/// redundant-but-deterministic behavior for sub-communicators.
void setProcessTransport(Transport* transport) noexcept;
[[nodiscard]] Transport* processTransport() noexcept;

/// Claim the process transport for one run. Returns nullptr (and claims
/// nothing) when no transport is installed, it is already leased, or its
/// size differs from `ranks` — all the cases where the caller must fall
/// back to the simulator.
[[nodiscard]] Transport* acquireProcessTransport(int ranks) noexcept;
void releaseProcessTransport() noexcept;

}  // namespace geo::par
