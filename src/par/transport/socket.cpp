#include "par/transport/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <stdexcept>
#include <string>

#include "support/assert.hpp"
#include "support/binio.hpp"
#include "support/fault.hpp"

namespace geo::par {

namespace {

constexpr std::uint32_t kFrameMagic = 0x47454F54;  // "GEOT"
constexpr std::uint32_t kWireVersion = 1;
constexpr std::uint64_t kMaxFrameBytes = std::uint64_t{1} << 40;
constexpr std::size_t kHeaderBytes = 16;  // u32 magic + u32 tag + u64 len

[[noreturn]] void sysFail(const char* what) {
    throw std::runtime_error(std::string("socket transport: ") + what + " failed: " +
                             std::strerror(errno));
}

double monotonicSeconds() noexcept {
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Inactivity deadline for a blocking operation. `ms <= 0` means unbounded
/// (the pre-fault-tolerance behavior); otherwise the limit is an absolute
/// monotonic timestamp that byte progress pushes forward via reset() — the
/// deadline bounds SILENCE, not total transfer time, so a slow-but-alive
/// peer streaming a large payload never trips it.
struct Deadline {
    double limit = 0.0;  ///< absolute monotonic seconds; 0 = unbounded
    int ms = 0;          ///< the configured window, for error messages

    static Deadline after(int milliseconds) {
        Deadline d;
        d.ms = milliseconds;
        if (milliseconds > 0) d.limit = monotonicSeconds() + milliseconds * 1e-3;
        return d;
    }
    void reset() {
        if (ms > 0) limit = monotonicSeconds() + ms * 1e-3;
    }
    /// Remaining window as a poll() timeout argument: -1 = unbounded,
    /// 0 = already expired, else milliseconds (rounded up so we never spin).
    [[nodiscard]] int pollMs() const {
        if (limit <= 0.0) return -1;
        const double rem = (limit - monotonicSeconds()) * 1000.0;
        if (rem <= 0.0) return 0;
        return rem >= 1e9 ? 1000000000 : static_cast<int>(rem) + 1;
    }
    [[nodiscard]] bool expired() const {
        return limit > 0.0 && monotonicSeconds() >= limit;
    }
};

/// Error context for one blocking operation: which collective (name + wire
/// sequence) the bytes belong to, so a TransportError pinpoints the op.
struct IoCtx {
    const char* op;
    std::uint32_t seq;
    int timeoutMs;
};

/// Map a failed send/recv/poll syscall to a typed error. Peer-death errnos
/// (the peer process died or reset the connection) become PeerClosed — the
/// recoverable class supervision acts on; anything else is Protocol.
[[noreturn]] void ioFail(const char* what, const IoCtx& ctx, int peer) {
    const int err = errno;
    if (err == EPIPE || err == ECONNRESET || err == ECONNABORTED || err == ETIMEDOUT)
        throw TransportError(TransportErrorKind::PeerClosed, peer, ctx.op, ctx.seq,
                             std::string(what) + ": " + std::strerror(err));
    throw TransportError(TransportErrorKind::Protocol, peer, ctx.op, ctx.seq,
                         std::string(what) + " failed: " + std::strerror(err));
}

[[noreturn]] void ioTimeout(const char* what, const IoCtx& ctx, int peer,
                            const Deadline& dl) {
    throw TransportError(TransportErrorKind::Timeout, peer, ctx.op, ctx.seq,
                         std::string(what) + " made no progress for " +
                             std::to_string(dl.ms) + " ms");
}

/// Block until `fd` is ready for `events` or the deadline expires (throws
/// Timeout). A positive poll() result — including POLLERR/POLLHUP — returns
/// normally: the next syscall surfaces the precise error.
void waitReady(int fd, short events, const Deadline& dl, const IoCtx& ctx, int peer,
               const char* what) {
    for (;;) {
        pollfd pfd{fd, events, 0};
        const int rc = ::poll(&pfd, 1, dl.pollMs());
        if (rc > 0) return;
        if (rc == 0) ioTimeout(what, ctx, peer, dl);
        if (errno == EINTR) continue;
        ioFail("poll", ctx, peer);
    }
}

/// Deadline-bounded full write. MSG_DONTWAIT keeps every syscall
/// non-blocking; the only place this function can wait is the poll inside
/// waitReady, which is where the deadline bites.
void sendAll(int fd, const void* data, std::size_t bytes, const IoCtx& ctx,
             int peer) {
    Deadline dl = Deadline::after(ctx.timeoutMs);
    const auto* p = static_cast<const std::byte*>(data);
    while (bytes > 0) {
        const ssize_t w = ::send(fd, p, bytes, MSG_NOSIGNAL | MSG_DONTWAIT);
        if (w > 0) {
            p += w;
            bytes -= static_cast<std::size_t>(w);
            dl.reset();
            continue;
        }
        if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            waitReady(fd, POLLOUT, dl, ctx, peer, "send");
            continue;
        }
        if (w < 0 && errno == EINTR) continue;
        ioFail("send", ctx, peer);
    }
}

/// Deadline-bounded full read; EOF (the peer died or closed its mesh)
/// throws PeerClosed.
void recvAll(int fd, void* data, std::size_t bytes, const IoCtx& ctx, int peer) {
    Deadline dl = Deadline::after(ctx.timeoutMs);
    auto* p = static_cast<std::byte*>(data);
    while (bytes > 0) {
        const ssize_t r = ::recv(fd, p, bytes, MSG_DONTWAIT);
        if (r > 0) {
            p += r;
            bytes -= static_cast<std::size_t>(r);
            dl.reset();
            continue;
        }
        if (r == 0)
            throw TransportError(TransportErrorKind::PeerClosed, peer, ctx.op,
                                 ctx.seq, "peer closed connection (EOF)");
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            waitReady(fd, POLLIN, dl, ctx, peer, "recv");
            continue;
        }
        if (errno == EINTR) continue;
        ioFail("recv", ctx, peer);
    }
}

void setNonBlocking(int fd, bool on) {
    const int flags = fcntl(fd, F_GETFL, 0);
    if (flags < 0) sysFail("fcntl(F_GETFL)");
    const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    if (want != flags && fcntl(fd, F_SETFL, want) < 0) sysFail("fcntl(F_SETFL)");
}

void setNoDelay(int fd) {
    const int one = 1;
    // Best effort: fails harmlessly on Unix-domain sockets.
    (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

std::string unixPath(const std::string& dir, int rank) {
    return dir + "/geo." + std::to_string(rank) + ".sock";
}

}  // namespace

enum class SocketTransport::Op : std::uint8_t {
    Hello = 1,    ///< connection handshake (seq 0)
    Gather = 2,   ///< child → parent leg of a tree gather
    Bcast = 3,    ///< parent → child leg of a tree broadcast
    Exchange = 4  ///< pairwise alltoallv frame
};

namespace {

/// tag = opcode in the top byte, collective sequence number below. The
/// sequence wraps at 24 bits; both ends wrap together, so the desync check
/// stays exact.
std::uint32_t makeTagImpl(std::uint8_t op, std::uint32_t seq) {
    return (static_cast<std::uint32_t>(op) << 24) | (seq & 0xFFFFFFu);
}

}  // namespace

void SocketTransport::beginCollective(const char* op) {
    ++seq_;
    opName_ = op;
    support::faultPoint(op, seq_, config_.rank);
}

void SocketTransport::sendFrame(int peer, Op op, const void* payload,
                                std::size_t bytes) {
    const IoCtx ctx{opName_, seq_, opTimeoutMs_};
    binio::Writer header;
    header.u32(kFrameMagic);
    header.u32(makeTagImpl(static_cast<std::uint8_t>(op), seq_));
    header.u64(bytes);
    sendAll(fdFor(peer), header.buffer().data(), header.size(), ctx, peer);
    if (bytes > 0) sendAll(fdFor(peer), payload, bytes, ctx, peer);
}

std::vector<std::byte> SocketTransport::recvFrame(int peer, Op op) {
    const IoCtx ctx{opName_, seq_, opTimeoutMs_};
    std::array<std::byte, kHeaderBytes> raw{};
    recvAll(fdFor(peer), raw.data(), raw.size(), ctx, peer);
    binio::Reader header(raw);
    GEO_CHECK(header.u32() == kFrameMagic, "bad frame magic (stream corrupt)");
    const std::uint32_t tag = header.u32();
    const std::uint32_t expected = makeTagImpl(static_cast<std::uint8_t>(op), seq_);
    GEO_CHECK(tag == expected,
              "collective desync: peer " + std::to_string(peer) + " sent tag " +
                  std::to_string(tag) + ", expected " + std::to_string(expected));
    const std::uint64_t len = header.u64();
    GEO_CHECK(len <= kMaxFrameBytes, "frame length exceeds protocol cap");
    std::vector<std::byte> payload(static_cast<std::size_t>(len));
    if (len > 0) recvAll(fdFor(peer), payload.data(), payload.size(), ctx, peer);
    return payload;
}

std::vector<std::byte> SocketTransport::exchangeFrames(int sendPeer, Op sendOp,
                                                       const void* sendPayload,
                                                       std::size_t sendBytes,
                                                       int recvPeer, Op recvOp) {
    const IoCtx ctx{opName_, seq_, opTimeoutMs_};
    const int sendFd = fdFor(sendPeer);
    const int recvFd = fdFor(recvPeer);

    binio::Writer headerW;
    headerW.u32(kFrameMagic);
    headerW.u32(makeTagImpl(static_cast<std::uint8_t>(sendOp), seq_));
    headerW.u64(sendBytes);
    const std::vector<std::byte>& sendHeader = headerW.buffer();
    const auto* sendBody = static_cast<const std::byte*>(sendPayload);
    std::size_t sendOff = 0;  // linear over header then payload
    const std::size_t sendTotal = kHeaderBytes + sendBytes;

    std::array<std::byte, kHeaderBytes> recvHeader{};
    std::size_t recvOff = 0;  // linear over header then payload
    std::size_t recvTotal = kHeaderBytes;  // extended once the header arrives
    bool recvHeaderParsed = false;
    std::vector<std::byte> recvPayload;

    Deadline dl = Deadline::after(opTimeoutMs_);
    while (sendOff < sendTotal || recvOff < recvTotal) {
        // Pump the send side until the kernel buffer is full.
        while (sendOff < sendTotal) {
            const void* p;
            std::size_t n;
            if (sendOff < kHeaderBytes) {
                p = sendHeader.data() + sendOff;
                n = kHeaderBytes - sendOff;
            } else {
                p = sendBody + (sendOff - kHeaderBytes);
                n = sendBytes - (sendOff - kHeaderBytes);
            }
            const ssize_t w = ::send(sendFd, p, n, MSG_NOSIGNAL | MSG_DONTWAIT);
            if (w > 0) {
                sendOff += static_cast<std::size_t>(w);
                dl.reset();
                continue;
            }
            if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
            if (w < 0 && errno == EINTR) continue;
            ioFail("send", ctx, sendPeer);
        }
        // Pump the receive side until the kernel buffer is drained.
        while (recvOff < recvTotal) {
            void* p;
            std::size_t n;
            if (recvOff < kHeaderBytes) {
                p = recvHeader.data() + recvOff;
                n = kHeaderBytes - recvOff;
            } else {
                p = recvPayload.data() + (recvOff - kHeaderBytes);
                n = recvPayload.size() - (recvOff - kHeaderBytes);
            }
            const ssize_t r = ::recv(recvFd, p, n, MSG_DONTWAIT);
            if (r > 0) {
                recvOff += static_cast<std::size_t>(r);
                dl.reset();
                if (!recvHeaderParsed && recvOff == kHeaderBytes) {
                    binio::Reader header(recvHeader);
                    GEO_CHECK(header.u32() == kFrameMagic,
                              "bad frame magic (stream corrupt)");
                    const std::uint32_t expected = makeTagImpl(
                        static_cast<std::uint8_t>(recvOp), seq_);
                    GEO_CHECK(header.u32() == expected,
                              "collective desync in pairwise exchange");
                    const std::uint64_t len = header.u64();
                    GEO_CHECK(len <= kMaxFrameBytes,
                              "frame length exceeds protocol cap");
                    recvPayload.resize(static_cast<std::size_t>(len));
                    recvTotal = kHeaderBytes + recvPayload.size();
                    recvHeaderParsed = true;
                }
                continue;
            }
            if (r == 0)
                throw TransportError(TransportErrorKind::PeerClosed, recvPeer,
                                     ctx.op, ctx.seq,
                                     "peer closed connection (EOF)");
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            ioFail("recv", ctx, recvPeer);
        }
        if (sendOff >= sendTotal && recvOff >= recvTotal) break;

        // Block until either side can make progress. Full-duplex: two
        // ranks streaming large payloads at each other both keep
        // draining their receive side, so filled send buffers always
        // empty eventually — no deadlock.
        pollfd fds[2];
        nfds_t nfds = 0;
        if (sendFd == recvFd) {
            fds[0].fd = sendFd;
            fds[0].events = static_cast<short>(
                (sendOff < sendTotal ? POLLOUT : 0) |
                (recvOff < recvTotal ? POLLIN : 0));
            fds[0].revents = 0;
            nfds = 1;
        } else {
            if (sendOff < sendTotal) {
                fds[nfds].fd = sendFd;
                fds[nfds].events = POLLOUT;
                fds[nfds].revents = 0;
                ++nfds;
            }
            if (recvOff < recvTotal) {
                fds[nfds].fd = recvFd;
                fds[nfds].events = POLLIN;
                fds[nfds].revents = 0;
                ++nfds;
            }
        }
        const int rc = ::poll(fds, nfds, dl.pollMs());
        if (rc == 0)
            ioTimeout("pairwise exchange", ctx,
                      recvOff < recvTotal ? recvPeer : sendPeer, dl);
        if (rc < 0 && errno != EINTR) ioFail("poll", ctx, recvPeer);
    }
    return recvPayload;
}

SocketTransport::SocketTransport(const SocketConfig& config) : config_(config) {
    GEO_REQUIRE(config_.ranks >= 1, "need at least one rank");
    GEO_REQUIRE(config_.rank >= 0 && config_.rank < config_.ranks,
                "rank out of range");
    opTimeoutMs_ =
        config_.opTimeoutMs >= 0 ? config_.opTimeoutMs : defaultCommTimeoutMs();
    connectTimeoutMs_ = config_.connectTimeoutMs >= 0 ? config_.connectTimeoutMs
                                                      : defaultConnectTimeoutMs();
    peerFd_.assign(static_cast<std::size_t>(config_.ranks), -1);
    if (config_.ranks == 1) return;
    // A peer that dies mid-collective turns our next send into SIGPIPE;
    // MSG_NOSIGNAL covers sends, this covers any stragglers.
    std::signal(SIGPIPE, SIG_IGN);
    connectMesh();
}

SocketTransport::~SocketTransport() {
    for (const int fd : peerFd_)
        if (fd >= 0) ::close(fd);
    if (listenFd_ >= 0) ::close(listenFd_);
    if (!config_.tcp && config_.ranks > 1 && !config_.dir.empty())
        ::unlink(unixPath(config_.dir, config_.rank).c_str());
}

int SocketTransport::fdFor(int peer) const {
    GEO_CHECK(peer >= 0 && peer < config_.ranks && peer != config_.rank,
              "no connection to that peer");
    const int fd = peerFd_[static_cast<std::size_t>(peer)];
    GEO_CHECK(fd >= 0, "peer not connected");
    return fd;
}

void SocketTransport::connectMesh() {
    const int p = config_.ranks;
    const int self = config_.rank;
    support::faultPoint("handshake", 0, self);

    // 1. Bind the own endpoint first so every peer's dial lands in the
    //    listen backlog no matter how process startup interleaves.
    if (config_.tcp) {
        listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd_ < 0) sysFail("socket");
        const int one = 1;
        (void)setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<std::uint16_t>(config_.portBase + self));
        if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
            sysFail("bind");
    } else {
        GEO_REQUIRE(!config_.dir.empty(), "unix socket transport needs a directory");
        const std::string path = unixPath(config_.dir, self);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        GEO_REQUIRE(path.size() < sizeof(addr.sun_path),
                    "socket directory path too long");
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        ::unlink(path.c_str());
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd_ < 0) sysFail("socket");
        if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
            sysFail("bind");
    }
    if (::listen(listenFd_, p) < 0) sysFail("listen");

    const auto helloPayload = [&](int fromRank) {
        binio::Writer w;
        w.u32(kWireVersion);
        w.u32(static_cast<std::uint32_t>(p));
        w.u32(static_cast<std::uint32_t>(fromRank));
        return std::move(w).take();
    };
    const auto parseHello = [&](std::vector<std::byte> payload) {
        binio::Reader r(payload);
        GEO_CHECK(r.u32() == kWireVersion, "handshake wire version mismatch");
        GEO_CHECK(r.u32() == static_cast<std::uint32_t>(p),
                  "handshake rank-count mismatch (mixed launches?)");
        const int from = static_cast<int>(r.u32());
        r.expectEnd("handshake frame");
        GEO_CHECK(from >= 0 && from < p && from != self, "handshake rank out of range");
        return from;
    };

    // 2. Dial every lower rank (bounded retry until its listener is bound).
    for (int peer = 0; peer < self; ++peer) {
        const Deadline dl = Deadline::after(connectTimeoutMs_);
        int fd = -1;
        int attempt = 0;
        for (;;) {
            fd = ::socket(config_.tcp ? AF_INET : AF_UNIX, SOCK_STREAM, 0);
            if (fd < 0) sysFail("socket");
            int rc;
            if (config_.tcp) {
                sockaddr_in addr{};
                addr.sin_family = AF_INET;
                addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
                addr.sin_port =
                    htons(static_cast<std::uint16_t>(config_.portBase + peer));
                rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
            } else {
                const std::string path = unixPath(config_.dir, peer);
                sockaddr_un addr{};
                addr.sun_family = AF_UNIX;
                GEO_REQUIRE(path.size() < sizeof(addr.sun_path),
                            "socket directory path too long");
                std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
                rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
            }
            if (rc == 0) break;
            const int err = errno;
            ::close(fd);
            fd = -1;
            const bool retryable = err == ECONNREFUSED || err == ENOENT ||
                                   err == EAGAIN || err == EINTR;
            if (!retryable || dl.expired())
                throw TransportError(
                    TransportErrorKind::ConnectFailed, peer, "handshake", 0,
                    std::string("connect: ") + std::strerror(err) + " after " +
                        std::to_string(attempt + 1) + " attempt(s) (deadline " +
                        std::to_string(connectTimeoutMs_) + " ms)");
            // Exponential backoff with deterministic per-rank jitter: many
            // ranks re-dialing one slow starter spread out instead of
            // stampeding in lockstep, yet the schedule is reproducible.
            const int base = 1 << std::min(attempt, 6);  // 1..64 ms
            const auto hash = static_cast<std::uint32_t>(self * 64 + attempt) *
                              0x9E3779B9u;
            int sleepMs = base + static_cast<int>(hash >> 24) % (base + 1);
            const int remaining = dl.pollMs();
            if (remaining >= 0) sleepMs = std::min(sleepMs, std::max(remaining, 1));
            ::usleep(static_cast<useconds_t>(sleepMs) * 1000);
            ++attempt;
        }
        setNoDelay(fd);
        peerFd_[static_cast<std::size_t>(peer)] = fd;
        const auto hello = helloPayload(self);
        sendFrame(peer, Op::Hello, hello.data(), hello.size());
        GEO_CHECK(parseHello(recvFrame(peer, Op::Hello)) == peer,
                  "connected to the wrong peer endpoint");
    }

    // 3. Accept every higher rank; the handshake identifies which one each
    //    accepted connection belongs to (arrival order is arbitrary). One
    //    deadline bounds the WHOLE accept phase: an absent rank — crashed
    //    before dialing, never launched — turns into a typed Timeout here
    //    instead of an indefinite accept() hang.
    const IoCtx acceptCtx{"handshake", 0, connectTimeoutMs_};
    const Deadline acceptDl = Deadline::after(connectTimeoutMs_);
    if (p - 1 - self > 0) setNonBlocking(listenFd_, true);
    for (int pending = p - 1 - self; pending > 0; --pending) {
        int fd;
        for (;;) {
            fd = ::accept(listenFd_, nullptr, nullptr);
            if (fd >= 0) break;
            if (errno == EINTR || errno == ECONNABORTED) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                waitReady(listenFd_, POLLIN, acceptDl, acceptCtx, -1, "accept");
                continue;
            }
            sysFail("accept");
        }
        setNonBlocking(fd, false);
        setNoDelay(fd);
        // Read the handshake directly on the fd — the peer's rank is not
        // known until the hello payload arrives.
        std::array<std::byte, kHeaderBytes> raw{};
        recvAll(fd, raw.data(), raw.size(), acceptCtx, -1);
        binio::Reader header(raw);
        GEO_CHECK(header.u32() == kFrameMagic, "bad handshake magic");
        GEO_CHECK(header.u32() == makeTagImpl(static_cast<std::uint8_t>(Op::Hello), 0),
                  "bad handshake tag");
        const std::uint64_t len = header.u64();
        GEO_CHECK(len <= 64, "handshake frame oversized");
        std::vector<std::byte> payload(static_cast<std::size_t>(len));
        recvAll(fd, payload.data(), payload.size(), acceptCtx, -1);
        const int from = parseHello(std::move(payload));
        GEO_CHECK(from > self, "handshake from unexpected direction");
        GEO_CHECK(peerFd_[static_cast<std::size_t>(from)] < 0,
                  "duplicate connection from peer");
        peerFd_[static_cast<std::size_t>(from)] = fd;
        const auto hello = helloPayload(self);
        sendFrame(from, Op::Hello, hello.data(), hello.size());
    }

    ::close(listenFd_);
    listenFd_ = -1;
}

std::vector<std::vector<std::byte>> SocketTransport::gatherToRoot(ConstBuf mine) {
    const int p = config_.ranks;
    const int self = config_.rank;

    // Accumulated entry list: [u32 origin][u64 len][bytes] per entry.
    // Internal tree nodes merge children by concatenating entry bytes —
    // payloads are never decoded until the root.
    std::uint32_t count = 1;
    binio::Writer body;
    body.u32(static_cast<std::uint32_t>(self));
    body.u64(mine.bytes);
    body.bytes(mine.data, mine.bytes);

    for (int mask = 1; mask < p; mask <<= 1) {
        if (self & mask) {
            const int parent = self - mask;
            binio::Writer frame;
            frame.u32(count);
            frame.bytes(body.buffer());
            sendFrame(parent, Op::Gather, frame.buffer().data(), frame.size());
            return {};
        }
        const int child = self + mask;
        if (child < p) {
            const std::vector<std::byte> payload = recvFrame(child, Op::Gather);
            binio::Reader r(payload);
            count += r.u32();
            body.bytes(r.rest());
        }
    }

    GEO_CHECK(self == 0 && count == static_cast<std::uint32_t>(p),
              "gather reached root with wrong entry count");
    std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
    std::vector<bool> seen(static_cast<std::size_t>(p), false);
    binio::Reader r(body.buffer());
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t origin = r.u32();
        GEO_CHECK(origin < static_cast<std::uint32_t>(p) && !seen[origin],
                  "gather entry with bad origin rank");
        seen[origin] = true;
        const std::uint64_t len = r.u64();
        out[origin] = r.bytes(static_cast<std::size_t>(len));
    }
    r.expectEnd("gather entry list");
    return out;
}

std::vector<std::byte> SocketTransport::bcastBytes(std::vector<std::byte> mine,
                                                   int root) {
    const int p = config_.ranks;
    const int self = config_.rank;
    const int rel = (self - root + p) % p;

    int mask = 1;
    for (; mask < p; mask <<= 1) {
        if (rel & mask) {
            int src = self - mask;
            if (src < 0) src += p;
            mine = recvFrame(src, Op::Bcast);
            break;
        }
    }
    for (mask >>= 1; mask > 0; mask >>= 1) {
        if (rel + mask < p) {
            int dst = self + mask;
            if (dst >= p) dst -= p;
            sendFrame(dst, Op::Bcast, mine.data(), mine.size());
        }
    }
    return mine;
}

void SocketTransport::barrier() {
    if (config_.ranks == 1) return;
    beginCollective("barrier");
    (void)gatherToRoot(ConstBuf{nullptr, 0});
    (void)bcastBytes({}, 0);
}

void SocketTransport::allreduce(void* inout, std::size_t count, DType type,
                                ReduceOp op) {
    const int p = config_.ranks;
    if (p == 1) return;
    beginCollective("allreduce");
    const std::size_t bytes = count * dtypeSize(type);

    // Tree gather moves the bytes; the FOLD stays sequential in rank order
    // 0..p-1 at the root — the same order and the same reduceInPlace kernel
    // as the simulator, so floating-point results agree bitwise.
    std::vector<std::vector<std::byte>> gathered =
        gatherToRoot(ConstBuf{inout, bytes});
    std::vector<std::byte> result;
    if (config_.rank == 0) {
        for (int r = 0; r < p; ++r)
            GEO_CHECK(gathered[static_cast<std::size_t>(r)].size() == bytes,
                      "allreduce contribution size mismatch");
        result = std::move(gathered[0]);
        for (int r = 1; r < p; ++r)
            reduceInPlace(type, op, result.data(),
                          gathered[static_cast<std::size_t>(r)].data(), count);
    }
    result = bcastBytes(std::move(result), 0);
    GEO_CHECK(result.size() == bytes, "allreduce result size mismatch");
    if (bytes > 0) std::memcpy(inout, result.data(), bytes);
}

void SocketTransport::broadcast(void* data, std::size_t bytes, int root) {
    const int p = config_.ranks;
    if (p == 1) return;
    GEO_REQUIRE(root >= 0 && root < p, "broadcast root out of range");
    beginCollective("broadcast");
    std::vector<std::byte> payload;
    if (config_.rank == root) {
        payload.resize(bytes);
        if (bytes > 0) std::memcpy(payload.data(), data, bytes);
    }
    payload = bcastBytes(std::move(payload), root);
    GEO_CHECK(payload.size() == bytes, "broadcast size mismatch across ranks");
    if (config_.rank != root && bytes > 0)
        std::memcpy(data, payload.data(), bytes);
}

std::vector<std::byte> SocketTransport::allgatherv(ConstBuf mine) {
    const int p = config_.ranks;
    if (p == 1) {
        std::vector<std::byte> out(mine.bytes);
        if (mine.bytes > 0) std::memcpy(out.data(), mine.data, mine.bytes);
        return out;
    }
    beginCollective("allgatherv");
    std::vector<std::vector<std::byte>> gathered = gatherToRoot(mine);
    std::vector<std::byte> concat;
    if (config_.rank == 0) {
        std::size_t total = 0;
        for (const auto& part : gathered) total += part.size();
        concat.reserve(total);
        for (const auto& part : gathered)
            concat.insert(concat.end(), part.begin(), part.end());
    }
    return bcastBytes(std::move(concat), 0);
}

std::vector<std::byte> SocketTransport::alltoallv(std::span<const ConstBuf> sendTo) {
    const int p = config_.ranks;
    GEO_REQUIRE(static_cast<int>(sendTo.size()) == p,
                "alltoallv needs one send buffer per rank");
    const int self = config_.rank;
    if (p == 1) {
        std::vector<std::byte> out(sendTo[0].bytes);
        if (sendTo[0].bytes > 0)
            std::memcpy(out.data(), sendTo[0].data, sendTo[0].bytes);
        return out;
    }
    beginCollective("alltoallv");

    std::vector<std::vector<std::byte>> fromRank(static_cast<std::size_t>(p));
    auto& selfPart = fromRank[static_cast<std::size_t>(self)];
    selfPart.resize(sendTo[static_cast<std::size_t>(self)].bytes);
    if (!selfPart.empty())
        std::memcpy(selfPart.data(), sendTo[static_cast<std::size_t>(self)].data,
                    selfPart.size());

    // Pairwise exchange: at step s this rank's send to (self+s) mod p is
    // exactly what that peer expects from us at its own step s, so every
    // frame pairs up with a matching receive in the same logical step.
    for (int s = 1; s < p; ++s) {
        const int sendPeer = (self + s) % p;
        const int recvPeer = (self - s + p) % p;
        const ConstBuf& out = sendTo[static_cast<std::size_t>(sendPeer)];
        fromRank[static_cast<std::size_t>(recvPeer)] = exchangeFrames(
            sendPeer, Op::Exchange, out.data, out.bytes, recvPeer, Op::Exchange);
    }

    std::size_t total = 0;
    for (const auto& part : fromRank) total += part.size();
    std::vector<std::byte> result;
    result.reserve(total);
    for (const auto& part : fromRank)
        result.insert(result.end(), part.begin(), part.end());
    return result;
}

Transport* ensureWorkerTransport() {
    static std::unique_ptr<SocketTransport> worker = []() -> std::unique_ptr<SocketTransport> {
        const char* rankEnv = std::getenv("GEO_RANK");
        if (!rankEnv || *rankEnv == '\0') return nullptr;
        const TransportKind kind = envTransportKind();
        if (kind != TransportKind::Socket && kind != TransportKind::Tcp)
            return nullptr;
        SocketConfig cfg;
        cfg.rank = std::atoi(rankEnv);
        cfg.ranks = defaultRanks();
        cfg.tcp = kind == TransportKind::Tcp;
        if (const char* dir = std::getenv("GEO_SOCKET_DIR")) cfg.dir = dir;
        if (const char* base = std::getenv("GEO_PORT_BASE"))
            cfg.portBase = std::atoi(base);
        // opTimeoutMs / connectTimeoutMs stay -1: the constructor resolves
        // them from GEO_COMM_TIMEOUT_MS / GEO_CONNECT_TIMEOUT_MS, which
        // geo_launch forwards to every worker.
        GEO_REQUIRE(cfg.rank >= 0 && cfg.rank < cfg.ranks,
                    "GEO_RANK out of range of GEO_RANKS");
        auto transport = std::make_unique<SocketTransport>(cfg);
        setProcessTransport(transport.get());
        return transport;
    }();
    return worker.get();
}

}  // namespace geo::par
