// In-process thread-SPMD simulator backend.
//
// The original runtime (pre-transport-refactor src/par/comm.hpp) ran every
// logical rank as a thread and moved collective data through per-rank
// publication slots around a central barrier. That engine lives here now,
// type-erased behind the Transport interface; the Machine in par/comm keeps
// spawning one thread per rank and hands each a SimTransport over one
// shared SimShared.
//
// Data races are prevented by the same two-phase publish/read protocol:
// every rank publishes a pointer, a barrier makes all publications visible,
// every rank reads what it needs, and a second barrier releases the
// publications before any rank can reuse its buffer.
//
// This backend is the determinism ORACLE: reductions fold in rank order
// 0..p-1 through the shared reduceInPlace kernel, and the conformance suite
// holds the socket backend to bitwise-equal results.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "par/transport/transport.hpp"

namespace geo::par {

namespace detail {

/// Central sense-reversing barrier (condition-variable based, so waiting
/// ranks release the core — essential when simulating many ranks on few
/// cores).
class Barrier {
public:
    explicit Barrier(int parties) : parties_(parties) {}

    void arriveAndWait() {
        std::unique_lock lock(mutex_);
        const std::uint64_t gen = generation_;
        if (++arrived_ == parties_) {
            arrived_ = 0;
            ++generation_;
            cv_.notify_all();
        } else {
            cv_.wait(lock, [&] { return generation_ != gen; });
        }
    }

private:
    std::mutex mutex_;
    std::condition_variable cv_;
    int parties_;
    int arrived_ = 0;
    std::uint64_t generation_ = 0;
};

}  // namespace detail

/// Shared state of one simulated machine run: publication slots + barrier.
struct SimShared {
    explicit SimShared(int ranks)
        : size(ranks), barrier(ranks), slots(static_cast<std::size_t>(ranks)) {}

    int size;
    detail::Barrier barrier;
    std::vector<const void*> slots;  ///< per-rank published pointer
};

/// One rank's view of a simulated machine.
class SimTransport final : public Transport {
public:
    SimTransport(int rank, SimShared& shared) : rank_(rank), shared_(&shared) {}

    [[nodiscard]] int rank() const noexcept override { return rank_; }
    [[nodiscard]] int size() const noexcept override { return shared_->size; }
    [[nodiscard]] const char* name() const noexcept override { return "sim"; }
    [[nodiscard]] bool crossProcess() const noexcept override { return false; }

    void barrier() override { shared_->barrier.arriveAndWait(); }

    void allreduce(void* inout, std::size_t count, DType type, ReduceOp op) override;
    void broadcast(void* data, std::size_t bytes, int root) override;
    [[nodiscard]] std::vector<std::byte> allgatherv(ConstBuf mine) override;
    [[nodiscard]] std::vector<std::byte> alltoallv(
        std::span<const ConstBuf> sendTo) override;

private:
    void publish(const void* ptr) noexcept {
        shared_->slots[static_cast<std::size_t>(rank_)] = ptr;
    }
    [[nodiscard]] const void* slot(int r) const noexcept {
        return shared_->slots[static_cast<std::size_t>(r)];
    }

    int rank_;
    SimShared* shared_;
};

}  // namespace geo::par
