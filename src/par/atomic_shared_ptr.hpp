// Minimal atomically-swappable shared_ptr slot for single-slot
// publish/subscribe (the serve::Router epoch swap).
//
// Why not std::atomic<std::shared_ptr<T>>: libstdc++ 12 guards the slot
// with a lock bit but releases the READER side with memory_order_relaxed
// (_Sp_atomic::load → _M_refcount.unlock(memory_order_relaxed)), so there
// is no release/acquire edge from a reader's plain read of the stored
// pointer to the next writer's plain write of it. That is a data race by
// the letter of the memory model — harmless on x86 in practice, but
// ThreadSanitizer rightly reports it, and the serving subsystem's swap
// correctness is exactly what the TSan CI job exists to prove. This slot
// uses the same one-bit spin protocol with release ordering on BOTH unlock
// paths, which closes the edge and makes the protocol TSan-provable.
//
// Protocol: the slot holds a pointer to a heap-allocated
// std::shared_ptr<T> with the low bit doubling as a spin bit. Readers and
// writers hold the bit only for a pointer-sized critical section — a
// shared_ptr copy (one atomic refcount increment) for readers, a pointer
// exchange for writers; nobody ever blocks on a mutex or waits for the
// other side to finish anything longer. The writer frees the displaced
// holder OUTSIDE the critical section; any reader that copied it earlier
// keeps the pointee alive through shared ownership.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace geo::par {

template <typename T>
class AtomicSharedPtr {
public:
    AtomicSharedPtr() = default;
    AtomicSharedPtr(const AtomicSharedPtr&) = delete;
    AtomicSharedPtr& operator=(const AtomicSharedPtr&) = delete;

    ~AtomicSharedPtr() {
        delete holderOf(slot_.load(std::memory_order_relaxed));
    }

    /// Replace the stored shared_ptr (release semantics: everything written
    /// to *desired before the call is visible to readers that load it).
    void store(std::shared_ptr<T> desired) {
        Holder* next = desired ? new Holder(std::move(desired)) : nullptr;
        const std::uintptr_t held = lock();
        // Publishing store: installs the new holder and clears the lock bit
        // in one release store.
        slot_.store(reinterpret_cast<std::uintptr_t>(next),
                    std::memory_order_release);
        delete holderOf(held);  // outside the critical section
    }

    /// Copy the stored shared_ptr (acquire semantics).
    [[nodiscard]] std::shared_ptr<T> load() const {
        const std::uintptr_t held = lock();
        const Holder* holder = holderOf(held);
        std::shared_ptr<T> copy = holder ? holder->value : nullptr;
        // Reader unlock must be a RELEASE store: it orders the copy above
        // before the next writer's exchange of the slot (the edge libstdc++
        // 12 omits).
        slot_.store(held, std::memory_order_release);
        return copy;
    }

private:
    struct Holder {
        explicit Holder(std::shared_ptr<T> v) : value(std::move(v)) {}
        std::shared_ptr<T> value;
    };
    static constexpr std::uintptr_t kLockBit = 1;

    static Holder* holderOf(std::uintptr_t bits) noexcept {
        return reinterpret_cast<Holder*>(bits & ~kLockBit);
    }

    /// Spin until the lock bit flips 0 → 1; returns the held pointer bits
    /// (without the lock bit). Acquire on success pairs with the release
    /// unlock of whichever side held the bit before.
    std::uintptr_t lock() const noexcept {
        std::uintptr_t current = slot_.load(std::memory_order_relaxed);
        for (;;) {
            while (current & kLockBit)
                current = slot_.load(std::memory_order_relaxed);
            if (slot_.compare_exchange_weak(current, current | kLockBit,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed))
                return current;
        }
    }

    mutable std::atomic<std::uintptr_t> slot_{0};
};

}  // namespace geo::par
