// Intra-rank fork-join parallelism for every O(n) phase of the pipeline.
//
// The simulated SPMD runtime (par/comm.hpp) dedicates one thread per logical
// rank; `parallelFor` adds a second, nested level: a rank may fan its local
// compute loop out over `threads` workers (Settings::threads). Work is split
// into contiguous chunks of *items* (callers pass fixed-size cache blocks,
// never single points, whenever they reduce floating-point partials), so the
// chunk boundaries — and therefore every floating-point reduction the caller
// performs per chunk — are a function of the item count only, not of the
// thread count. That is what makes threaded sweeps bitwise reproducible at
// any `threads` value; see DESIGN.md "Threading model".
//
// Execution goes through the calling thread's persistent par::ThreadPool, so
// repeated phase launches (keying, sort, assignment, center update, metrics)
// reuse the same workers instead of paying a thread spawn per phase.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>

#include "par/thread_pool.hpp"

namespace geo::par {

/// Run `fn(begin, end, worker)` over [0, n) split into one contiguous chunk
/// per worker (chunk w = [n·w/threads, n·(w+1)/threads)). Worker 0 runs on
/// the calling thread; the rest execute on the caller's pooled workers. The
/// first exception thrown by any worker is rethrown on the caller after all
/// chunks finished.
template <typename Fn>
void parallelFor(int threads, std::size_t n, Fn&& fn) {
    if (threads <= 1 || n <= 1) {
        if (n > 0) fn(std::size_t{0}, n, 0);
        return;
    }
    const ThreadPool::Body body = std::forward<Fn>(fn);
    ThreadPool::forThisThread().run(threads, n, body);
}

/// Tile-aligned variant for callers whose floating-point partials live at
/// fixed `tile`-item boundaries (the PointStore / assignment-engine cache
/// blocks): `fn(begin, end, worker)` ranges cover [0, n) and begin/end are
/// always multiples of `tile` (end clamps to n on the last tile). The split
/// is computed over whole tiles, so — like parallelFor — chunk boundaries
/// depend only on n and tile, never on the thread count, and a caller that
/// reduces per-tile partials in tile order stays bitwise reproducible.
template <typename Fn>
void parallelForTiled(int threads, std::size_t n, std::size_t tile, Fn&& fn) {
    if (tile == 0) tile = 1;
    const std::size_t tiles = (n + tile - 1) / tile;
    parallelFor(threads, tiles,
                [&, tile, n](std::size_t t0, std::size_t t1, int worker) {
                    fn(t0 * tile, std::min(n, t1 * tile), worker);
                });
}

}  // namespace geo::par
