// Intra-rank fork-join parallelism for the assignment engine.
//
// The simulated SPMD runtime (par/comm.hpp) dedicates one thread per logical
// rank; `parallelFor` adds a second, nested level: a rank may fan its local
// compute loop out over `threads` workers. Work is split into contiguous
// chunks of *items* (the assignment engine passes cache blocks, never single
// points), so the chunk boundaries — and therefore every floating-point
// reduction the caller performs per chunk — are a function of the item count
// only, not of the thread count. That is what makes threaded sweeps bitwise
// reproducible at any `threads` value.
#pragma once

#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace geo::par {

/// Run `fn(begin, end, worker)` over [0, n) split into one contiguous chunk
/// per worker (chunk w = [n·w/threads, n·(w+1)/threads)). Worker 0 runs on
/// the calling thread; the rest are spawned. The first exception thrown by
/// any worker is rethrown on the caller after all workers joined.
template <typename Fn>
void parallelFor(int threads, std::size_t n, Fn&& fn) {
    if (threads <= 1 || n <= 1) {
        if (n > 0) fn(std::size_t{0}, n, 0);
        return;
    }
    const auto t = static_cast<std::size_t>(threads);
    std::vector<std::thread> workers;
    workers.reserve(t - 1);
    std::exception_ptr firstError;
    std::mutex errorMutex;
    auto runChunk = [&](std::size_t w) {
        const std::size_t begin = n * w / t;
        const std::size_t end = n * (w + 1) / t;
        if (begin >= end) return;
        try {
            fn(begin, end, static_cast<int>(w));
        } catch (...) {
            const std::lock_guard<std::mutex> lock(errorMutex);
            if (!firstError) firstError = std::current_exception();
        }
    };
    for (std::size_t w = 1; w < t; ++w) workers.emplace_back(runChunk, w);
    runChunk(0);
    for (auto& worker : workers) worker.join();
    if (firstError) std::rethrow_exception(firstError);
}

}  // namespace geo::par
