// Intra-rank fork-join parallelism for every O(n) phase of the pipeline.
//
// The simulated SPMD runtime (par/comm.hpp) dedicates one thread per logical
// rank; `parallelFor` adds a second, nested level: a rank may fan its local
// compute loop out over `threads` workers (Settings::threads). Work is split
// into contiguous chunks of *items* (callers pass fixed-size cache blocks,
// never single points, whenever they reduce floating-point partials), so the
// chunk boundaries — and therefore every floating-point reduction the caller
// performs per chunk — are a function of the item count only, not of the
// thread count. That is what makes threaded sweeps bitwise reproducible at
// any `threads` value; see DESIGN.md "Threading model".
//
// Execution goes through the calling thread's persistent par::ThreadPool, so
// repeated phase launches (keying, sort, assignment, center update, metrics)
// reuse the same workers instead of paying a thread spawn per phase.
#pragma once

#include <cstddef>
#include <utility>

#include "par/thread_pool.hpp"

namespace geo::par {

/// Run `fn(begin, end, worker)` over [0, n) split into one contiguous chunk
/// per worker (chunk w = [n·w/threads, n·(w+1)/threads)). Worker 0 runs on
/// the calling thread; the rest execute on the caller's pooled workers. The
/// first exception thrown by any worker is rethrown on the caller after all
/// chunks finished.
template <typename Fn>
void parallelFor(int threads, std::size_t n, Fn&& fn) {
    if (threads <= 1 || n <= 1) {
        if (n > 0) fn(std::size_t{0}, n, 0);
        return;
    }
    const ThreadPool::Body body = std::forward<Fn>(fn);
    ThreadPool::forThisThread().run(threads, n, body);
}

}  // namespace geo::par
