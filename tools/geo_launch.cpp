// geo_launch — SPMD process launcher for the socket transport.
//
// Spawns N copies of a program, each as one rank of a socket-transport
// mesh, and waits for all of them:
//
//     geo_launch -n 4 -- ./example_quickstart
//     geo_launch -n 2 --transport tcp --port-base 24000 -- ./test_transport --worker=conformance
//
// Each worker gets GEO_RANK / GEO_RANKS / GEO_TRANSPORT plus the rendezvous
// (GEO_SOCKET_DIR for Unix-domain sockets — a fresh temp directory by
// default — or GEO_PORT_BASE for TCP). Workers run completely unchanged
// SPMD entry points: the first Machine run inside each process joins the
// mesh via par::ensureWorkerTransport.
//
// Exit status: 0 when every rank exits 0; otherwise the first failing
// rank's status (128+signal for signal deaths). On the first failure the
// remaining ranks are killed — a dead peer would leave them blocked in a
// collective forever.
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s -n <ranks> [--transport socket|tcp] [--socket-dir DIR]\n"
                 "       [--port-base PORT] -- <program> [args...]\n",
                 argv0);
}

int parseInt(const char* s, const char* what) {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (!end || *end != '\0' || v < 0) {
        std::fprintf(stderr, "geo_launch: bad %s '%s'\n", what, s);
        std::exit(2);
    }
    return static_cast<int>(v);
}

}  // namespace

int main(int argc, char** argv) {
    int ranks = 0;
    bool tcp = false;
    std::string socketDir;
    int portBase = 0;
    int cmdStart = -1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--") {
            cmdStart = i + 1;
            break;
        }
        if (arg == "-n" || arg == "--ranks") {
            if (++i >= argc) { usage(argv[0]); return 2; }
            ranks = parseInt(argv[i], "rank count");
        } else if (arg == "--transport") {
            if (++i >= argc) { usage(argv[0]); return 2; }
            const std::string kind = argv[i];
            if (kind == "tcp") {
                tcp = true;
            } else if (kind == "socket" || kind == "unix") {
                tcp = false;
            } else {
                std::fprintf(stderr, "geo_launch: unknown transport '%s'\n",
                             kind.c_str());
                return 2;
            }
        } else if (arg == "--socket-dir") {
            if (++i >= argc) { usage(argv[0]); return 2; }
            socketDir = argv[i];
        } else if (arg == "--port-base") {
            if (++i >= argc) { usage(argv[0]); return 2; }
            portBase = parseInt(argv[i], "port base");
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (ranks < 1 || cmdStart < 0 || cmdStart >= argc) {
        usage(argv[0]);
        return 2;
    }

    bool ownDir = false;
    if (tcp) {
        if (portBase <= 0) {
            // Derive a per-launch port range from the pid so concurrent
            // launches on one host don't collide; +ranks must stay < 65536.
            portBase = 20000 + static_cast<int>(getpid()) % 30000;
        }
        if (portBase + ranks > 65535) {
            std::fprintf(stderr, "geo_launch: port range overflows\n");
            return 2;
        }
    } else if (socketDir.empty()) {
        const char* tmp = std::getenv("TMPDIR");
        std::string tmpl = std::string(tmp && *tmp ? tmp : "/tmp") + "/geo_launch.XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        if (!mkdtemp(buf.data())) {
            std::perror("geo_launch: mkdtemp");
            return 1;
        }
        socketDir = buf.data();
        ownDir = true;
    }

    std::vector<pid_t> pids(static_cast<std::size_t>(ranks), -1);
    for (int r = 0; r < ranks; ++r) {
        const pid_t pid = fork();
        if (pid < 0) {
            std::perror("geo_launch: fork");
            for (int k = 0; k < r; ++k) kill(pids[static_cast<std::size_t>(k)], SIGKILL);
            return 1;
        }
        if (pid == 0) {
            setenv("GEO_RANK", std::to_string(r).c_str(), 1);
            setenv("GEO_RANKS", std::to_string(ranks).c_str(), 1);
            setenv("GEO_TRANSPORT", tcp ? "tcp" : "socket", 1);
            if (tcp)
                setenv("GEO_PORT_BASE", std::to_string(portBase).c_str(), 1);
            else
                setenv("GEO_SOCKET_DIR", socketDir.c_str(), 1);
            execvp(argv[cmdStart], argv + cmdStart);
            std::perror("geo_launch: exec");
            _exit(127);
        }
        pids[static_cast<std::size_t>(r)] = pid;
    }

    int failStatus = 0;
    int live = ranks;
    while (live > 0) {
        int status = 0;
        const pid_t pid = wait(&status);
        if (pid < 0) {
            if (errno == EINTR) continue;
            break;
        }
        --live;
        int rc = 0;
        if (WIFEXITED(status)) rc = WEXITSTATUS(status);
        else if (WIFSIGNALED(status)) rc = 128 + WTERMSIG(status);
        if (rc != 0 && failStatus == 0) {
            failStatus = rc;
            // One dead rank deadlocks the rest mid-collective: take the
            // whole job down and report the original failure.
            for (const pid_t p : pids)
                if (p > 0 && p != pid) kill(p, SIGKILL);
        }
    }

    if (ownDir) {
        for (int r = 0; r < ranks; ++r)
            unlink((socketDir + "/geo." + std::to_string(r) + ".sock").c_str());
        rmdir(socketDir.c_str());
    }
    return failStatus;
}
