// geo_launch — SPMD process launcher and supervisor for the socket
// transport.
//
// Spawns N copies of a program, each as one rank of a socket-transport
// mesh, and supervises them:
//
//     geo_launch -n 4 -- ./example_quickstart
//     geo_launch -n 2 --transport tcp --port-base 24000 -- ./test_transport --worker=conformance
//     geo_launch -n 4 --restart 2 --comm-timeout-ms 5000 -- ./bench_repart_timeline ...
//
// Each worker gets GEO_RANK / GEO_RANKS / GEO_TRANSPORT plus the rendezvous
// (GEO_SOCKET_DIR for Unix-domain sockets — a fresh temp directory by
// default — or GEO_PORT_BASE for TCP). Workers run completely unchanged
// SPMD entry points: the first Machine run inside each process joins the
// mesh via par::ensureWorkerTransport.
//
// Supervision (DESIGN.md "Failure model & recovery"):
//   * A ~50 ms waitpid heartbeat detects the FIRST failing rank and prints
//     a structured report (rank, pid, exit status or signal name).
//   * One dead rank deadlocks the survivors mid-collective (their deadlines
//     would eventually fire, but there is nothing useful left to compute),
//     so the supervisor tears the mesh down: SIGTERM to every survivor, a
//     grace period (--grace-ms, default 2000), then SIGKILL, then reap.
//   * --restart N relaunches the whole fleet up to N times after a failed
//     attempt, with GEO_RESTART_ATTEMPT exported so workers (and fault
//     specs using once= markers) can tell attempts apart. Combined with
//     --resume on the benches this gives checkpoint/restart recovery.
//   * --comm-timeout-ms / --connect-timeout-ms forward deadlines to every
//     worker (GEO_COMM_TIMEOUT_MS / GEO_CONNECT_TIMEOUT_MS), so a wedged
//     peer turns into a typed TransportError instead of a hang.
//
// Exit status: 0 when every rank of some attempt exits 0; otherwise the
// first failing rank's status of the last attempt (128+signal for signal
// deaths).
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

namespace {

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s -n <ranks> [--transport socket|tcp] [--socket-dir DIR]\n"
                 "       [--port-base PORT] [--restart N] [--grace-ms MS]\n"
                 "       [--comm-timeout-ms MS] [--connect-timeout-ms MS]\n"
                 "       -- <program> [args...]\n",
                 argv0);
}

int parseInt(const char* s, const char* what) {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (!end || *end != '\0' || v < 0) {
        std::fprintf(stderr, "geo_launch: bad %s '%s'\n", what, s);
        std::exit(2);
    }
    return static_cast<int>(v);
}

double monotonicSeconds() {
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Everything one launch attempt needs; immutable across attempts except
/// the attempt number (exported as GEO_RESTART_ATTEMPT).
struct LaunchPlan {
    int ranks = 0;
    bool tcp = false;
    std::string socketDir;
    int portBase = 0;
    int graceMs = 2000;
    char** cmd = nullptr;
};

void describeExit(int rank, pid_t pid, int status) {
    if (WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        std::fprintf(stderr, "[geo-launch] rank %d (pid %d) killed by signal %d (%s)\n",
                     rank, static_cast<int>(pid), sig, strsignal(sig));
    } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        std::fprintf(stderr, "[geo-launch] rank %d (pid %d) exited with status %d\n",
                     rank, static_cast<int>(pid), WEXITSTATUS(status));
    }
}

int exitCode(int status) {
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    return 1;
}

/// Run one fleet: fork/exec every rank, heartbeat-supervise, tear down on
/// first failure. Returns 0 when all ranks exited 0, else the first failing
/// rank's exit code.
int runAttempt(const LaunchPlan& plan, int attempt) {
    // Stale endpoints from a crashed previous attempt would make bind fail
    // or, worse, dial into a dead socket file.
    if (!plan.tcp)
        for (int r = 0; r < plan.ranks; ++r)
            unlink((plan.socketDir + "/geo." + std::to_string(r) + ".sock").c_str());

    std::vector<pid_t> pids(static_cast<std::size_t>(plan.ranks), -1);
    for (int r = 0; r < plan.ranks; ++r) {
        const pid_t pid = fork();
        if (pid < 0) {
            std::perror("geo_launch: fork");
            for (int k = 0; k < r; ++k) kill(pids[static_cast<std::size_t>(k)], SIGKILL);
            for (int k = 0; k < r; ++k)
                waitpid(pids[static_cast<std::size_t>(k)], nullptr, 0);
            return 1;
        }
        if (pid == 0) {
            setenv("GEO_RANK", std::to_string(r).c_str(), 1);
            setenv("GEO_RANKS", std::to_string(plan.ranks).c_str(), 1);
            setenv("GEO_TRANSPORT", plan.tcp ? "tcp" : "socket", 1);
            setenv("GEO_RESTART_ATTEMPT", std::to_string(attempt).c_str(), 1);
            if (plan.tcp)
                setenv("GEO_PORT_BASE", std::to_string(plan.portBase).c_str(), 1);
            else
                setenv("GEO_SOCKET_DIR", plan.socketDir.c_str(), 1);
            execvp(plan.cmd[0], plan.cmd);
            std::perror("geo_launch: exec");
            _exit(127);
        }
        pids[static_cast<std::size_t>(r)] = pid;
    }

    const auto rankOf = [&](pid_t pid) {
        for (int r = 0; r < plan.ranks; ++r)
            if (pids[static_cast<std::size_t>(r)] == pid) return r;
        return -1;
    };

    int failStatus = 0;
    int live = plan.ranks;
    std::vector<bool> alive(static_cast<std::size_t>(plan.ranks), true);
    bool termSent = false;
    bool killSent = false;
    double killAt = 0.0;  // SIGKILL deadline once teardown starts

    while (live > 0) {
        int status = 0;
        const pid_t pid = waitpid(-1, &status, WNOHANG);
        if (pid < 0) {
            if (errno == EINTR) continue;
            break;  // nothing left to reap (should not happen while live > 0)
        }
        if (pid == 0) {
            // Heartbeat tick: nobody exited. Escalate a pending teardown
            // whose grace period ran out.
            if (termSent && !killSent && monotonicSeconds() >= killAt) {
                for (int r = 0; r < plan.ranks; ++r)
                    if (alive[static_cast<std::size_t>(r)])
                        kill(pids[static_cast<std::size_t>(r)], SIGKILL);
                killSent = true;
            }
            usleep(50 * 1000);
            continue;
        }
        const int rank = rankOf(pid);
        if (rank >= 0) alive[static_cast<std::size_t>(rank)] = false;
        --live;
        const int rc = exitCode(status);
        if (rc != 0) {
            // During teardown our own SIGTERM/SIGKILL deaths are expected —
            // only failures BEFORE the teardown are the fleet's fault.
            if (!termSent) describeExit(rank, pid, status);
            if (failStatus == 0) failStatus = rc;
        }
        if (rc != 0 && !termSent) {
            // One dead rank deadlocks the rest mid-collective: take the
            // whole job down gracefully and report the original failure.
            int survivors = 0;
            for (int r = 0; r < plan.ranks; ++r)
                if (alive[static_cast<std::size_t>(r)]) {
                    kill(pids[static_cast<std::size_t>(r)], SIGTERM);
                    ++survivors;
                }
            if (survivors > 0)
                std::fprintf(stderr,
                             "[geo-launch] tearing down %d survivor(s), grace %d ms\n",
                             survivors, plan.graceMs);
            termSent = true;
            killAt = monotonicSeconds() + plan.graceMs * 1e-3;
        }
    }
    return failStatus;
}

}  // namespace

int main(int argc, char** argv) {
    int ranks = 0;
    bool tcp = false;
    std::string socketDir;
    int portBase = 0;
    int restart = 0;
    int graceMs = 2000;
    int commTimeoutMs = -1;
    int connectTimeoutMs = -1;
    int cmdStart = -1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--") {
            cmdStart = i + 1;
            break;
        }
        if (arg == "-n" || arg == "--ranks") {
            if (++i >= argc) { usage(argv[0]); return 2; }
            ranks = parseInt(argv[i], "rank count");
        } else if (arg == "--transport") {
            if (++i >= argc) { usage(argv[0]); return 2; }
            const std::string kind = argv[i];
            if (kind == "tcp") {
                tcp = true;
            } else if (kind == "socket" || kind == "unix") {
                tcp = false;
            } else {
                std::fprintf(stderr, "geo_launch: unknown transport '%s'\n",
                             kind.c_str());
                return 2;
            }
        } else if (arg == "--socket-dir") {
            if (++i >= argc) { usage(argv[0]); return 2; }
            socketDir = argv[i];
        } else if (arg == "--port-base") {
            if (++i >= argc) { usage(argv[0]); return 2; }
            portBase = parseInt(argv[i], "port base");
        } else if (arg == "--restart") {
            if (++i >= argc) { usage(argv[0]); return 2; }
            restart = parseInt(argv[i], "restart count");
        } else if (arg == "--grace-ms") {
            if (++i >= argc) { usage(argv[0]); return 2; }
            graceMs = parseInt(argv[i], "grace period");
        } else if (arg == "--comm-timeout-ms") {
            if (++i >= argc) { usage(argv[0]); return 2; }
            commTimeoutMs = parseInt(argv[i], "comm timeout");
        } else if (arg == "--connect-timeout-ms") {
            if (++i >= argc) { usage(argv[0]); return 2; }
            connectTimeoutMs = parseInt(argv[i], "connect timeout");
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (ranks < 1 || cmdStart < 0 || cmdStart >= argc) {
        usage(argv[0]);
        return 2;
    }

    bool ownDir = false;
    if (tcp) {
        if (portBase <= 0) {
            // Derive a per-launch port range from the pid so concurrent
            // launches on one host don't collide; +ranks must stay < 65536.
            portBase = 20000 + static_cast<int>(getpid()) % 30000;
        }
        if (portBase + ranks > 65535) {
            std::fprintf(stderr, "geo_launch: port range overflows\n");
            return 2;
        }
    } else if (socketDir.empty()) {
        const char* tmp = std::getenv("TMPDIR");
        std::string tmpl = std::string(tmp && *tmp ? tmp : "/tmp") + "/geo_launch.XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        if (!mkdtemp(buf.data())) {
            std::perror("geo_launch: mkdtemp");
            return 1;
        }
        socketDir = buf.data();
        ownDir = true;
    }

    // Deadlines travel by environment so the workers' transport picks them
    // up without any per-program flag plumbing (children inherit these).
    if (commTimeoutMs >= 0)
        setenv("GEO_COMM_TIMEOUT_MS", std::to_string(commTimeoutMs).c_str(), 1);
    if (connectTimeoutMs >= 0)
        setenv("GEO_CONNECT_TIMEOUT_MS", std::to_string(connectTimeoutMs).c_str(), 1);

    LaunchPlan plan;
    plan.ranks = ranks;
    plan.tcp = tcp;
    plan.socketDir = socketDir;
    plan.portBase = portBase;
    plan.graceMs = graceMs;
    plan.cmd = argv + cmdStart;

    int failStatus = 0;
    for (int attempt = 0; attempt <= restart; ++attempt) {
        failStatus = runAttempt(plan, attempt);
        if (failStatus == 0) break;
        if (attempt < restart)
            std::fprintf(stderr,
                         "[geo-launch] attempt %d failed (status %d); restarting "
                         "(%d attempt(s) left)\n",
                         attempt, failStatus, restart - attempt);
    }

    if (ownDir) {
        for (int r = 0; r < ranks; ++r)
            unlink((socketDir + "/geo." + std::to_string(r) + ".sock").c_str());
        rmdir(socketDir.c_str());
    }
    return failStatus;
}
