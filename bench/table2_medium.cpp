// Table 2: detailed per-instance results for the small/medium graphs with
// k = p = 64 in the paper (333SP, AS365, M6, NACA0015, NLR, alya test
// cases, delaunay017M, fesom variants, hugebubbles/trace/tric, rgg).
// Scaled to one machine: every catalog family at n ~ 30k with k = 16.
#include <iostream>

#include "common.hpp"
#include "gen/registry.hpp"

namespace {

using namespace geo;

void printRows(const std::string& name, std::int64_t n,
               const std::vector<bench::ToolRow>& rows) {
    auto best = rows.front();
    for (const auto& r : rows) {
        best.seconds = std::min(best.seconds, r.seconds);
        best.cut = std::min(best.cut, r.cut);
        best.maxCommVol = std::min(best.maxCommVol, r.maxCommVol);
        best.totCommVol = std::min(best.totCommVol, r.totCommVol);
        best.harmDiam = std::min(best.harmDiam, r.harmDiam);
        best.spmvCommSeconds = std::min(best.spmvCommSeconds, r.spmvCommSeconds);
    }
    Table table({"graph", "tool", "time", "cut", "maxCommVol", "S commVol", "diameter",
                 "timeSpMVComm"});
    auto mark = [](bool isBest, std::string s) { return isBest ? "*" + s : s; };
    bool first = true;
    for (const auto& r : rows) {
        table.addRow({first ? name + " n=" + std::to_string(n) : "", r.tool,
                      mark(r.seconds == best.seconds, Table::num(r.seconds, 3)),
                      mark(r.cut == best.cut, std::to_string(r.cut)),
                      mark(r.maxCommVol == best.maxCommVol, std::to_string(r.maxCommVol)),
                      mark(r.totCommVol == best.totCommVol, std::to_string(r.totCommVol)),
                      mark(r.harmDiam == best.harmDiam, Table::num(r.harmDiam, 4)),
                      mark(r.spmvCommSeconds == best.spmvCommSeconds,
                           Table::num(r.spmvCommSeconds, 4))});
        first = false;
    }
    table.print(std::cout);
    std::cout << '\n';
}

}  // namespace

int main() {
    const std::int32_t k = 16;
    const double eps = 0.03;
    const std::int64_t n2d = 30000, n3d = 15000;
    std::cout << "=== Table 2: small and medium graphs, k=" << k
              << " (paper: k=p=64) ===\n('*' marks the best value per column)\n\n";

    for (const auto& spec : gen::catalog2d()) {
        const auto mesh = spec.make(n2d, 21);
        printRows(spec.name, mesh.numVertices(), bench::runAllTools<2>(mesh, k, eps, 21, 20));
    }
    for (const auto& spec : gen::catalog3d()) {
        const auto mesh = spec.make(n3d, 21);
        printRows(spec.name, mesh.numVertices(), bench::runAllTools<3>(mesh, k, eps, 21, 20));
    }
    std::cout << "Paper shape: geoKmeans wins most commVol columns (strongest on 2D);\n"
                 "MJ takes some cut columns on 3D; no tool dominates everywhere.\n";
    return 0;
}
