// Figure 1: visual comparison of partition shapes on a hugetric-style mesh,
// 8 blocks, for all five tools. Writes one SVG per tool and prints the
// shape statistics the pictures illustrate (RCB/RIB: thin long blocks;
// MJ: rectangles; HSFC: wrinkled boundaries; Geographer: curved compact
// blocks).
#include <filesystem>
#include <iostream>

#include "baseline/tools.hpp"
#include "common.hpp"
#include "gen/meshes2d.hpp"
#include "graph/metrics.hpp"
#include "io/svg.hpp"

int main() {
    using namespace geo;
    const std::int64_t n = 30000;
    const std::int32_t k = 8;
    std::cout << "=== Fig. 1: partition shapes (hugetric-analog, " << n << " points, k="
              << k << ") ===\n\n";
    const auto mesh = gen::refinedTriMesh(n, 3, /*seed=*/4711);

    const std::string outDir = "fig1_out";
    std::filesystem::create_directories(outDir);

    Table table({"tool", "cut", "totCommVol", "harmDiam", "disconnected", "svg"});
    for (const auto& tool : baseline::tools2()) {
        const auto res = tool.run(mesh.points, {}, k, 0.03, 1, 1);
        const auto m = graph::evaluatePartition(mesh.graph, res.partition, k);
        const std::string svg = outDir + "/" + tool.name + ".svg";
        io::writeSvgPartition(svg, mesh.points, res.partition, k, 900,
                              tool.name + " on " + mesh.name);
        table.addRow({tool.name, std::to_string(m.edgeCut),
                      std::to_string(m.totalCommVolume), Table::num(m.harmonicMeanDiameter, 4),
                      std::to_string(m.disconnectedBlocks), svg});
    }
    table.print(std::cout);
    std::cout << "\nInspect the SVGs: balanced k-means yields curved compact blocks;\n"
                 "RCB/RIB produce thin slabs, HSFC wrinkled boundaries (paper Fig. 1).\n";
    return 0;
}
