// Extension bench: FM-style graph-based postprocessing on top of each
// geometric partitioner (the paper calls this "easily possible, but outside
// the scope"). Quantifies how much local refinement narrows the gap between
// the tools — and whether Geographer still leads after refinement.
#include <iostream>

#include "baseline/tools.hpp"
#include "common.hpp"
#include "gen/delaunay2d.hpp"
#include "gen/meshes2d.hpp"
#include "graph/metrics.hpp"
#include "refine/fm.hpp"

int main() {
    using namespace geo;
    const std::int32_t k = 16;
    std::cout << "=== Extension: FM refinement on top of each partitioner (k=" << k
              << ") ===\n\n";

    for (const auto& [name, mesh] :
         {std::pair{std::string("delaunay2d-30k"), gen::delaunay2d(30000, 3)},
          std::pair{std::string("hugetric-analog-30k"), gen::refinedTriMesh(30000, 3, 3)}}) {
        Table table({"graph", "tool", "cut", "cut+FM", "improvement%", "moved", "imbalance+FM"});
        bool first = true;
        for (const auto& tool : baseline::tools2()) {
            const auto res = tool.run(mesh.points, {}, k, 0.03, 1, 1);
            auto part = res.partition;
            refine::FmSettings fs;
            fs.epsilon = 0.03;
            const auto fm = refine::fmRefine(mesh.graph, part, k, {}, fs);
            table.addRow({first ? name : "", tool.name, std::to_string(fm.cutBefore),
                          std::to_string(fm.cutAfter),
                          Table::num(100.0 * (1.0 - static_cast<double>(fm.cutAfter) /
                                                        static_cast<double>(fm.cutBefore)),
                                     3),
                          std::to_string(fm.movedVertices),
                          Table::num(graph::imbalance(part, k), 4)});
            first = false;
        }
        table.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "Expected: Hsfc gains the most (wrinkled boundaries), geoKmeans the\n"
                 "least (already smooth); the post-refinement ranking should keep\n"
                 "geoKmeans in front on these 2D meshes.\n";
    return 0;
}
