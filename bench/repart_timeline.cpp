// Dynamic repartitioning timeline: warm-started balanced k-means vs. cold
// re-partitioning vs. re-run RCB over the time-stepped workloads of
// src/repart/scenarios.hpp — now closed into an end-to-end
// compute→serve→recompute loop through src/serve.
//
// For every scenario and step, each strategy partitions the evolved point
// cloud; we report partitioning time, edge cut (on a per-step Delaunay
// triangulation of the cloud), imbalance, k-means outer iterations, and the
// migration volume against the strategy's own previous partition. The warm
// strategy additionally *serves*: each step publishes an immutable snapshot
// into a serve::Router, and the NEXT step's points are first routed through
// that (now stale) snapshot before repartitioning — the misroute column is
// the fraction of queries the stale diagram sends to a different block than
// the fresh partition, and staleness is the wall-clock window the snapshot
// served alone. The summary quantifies the repartitioning claim: warm
// starts converge in fewer outer iterations, move far less data, and leave
// the serving layer only briefly inconsistent.
//
//   ./bench_repart_timeline [points] [steps] [blocks] [ranks]
//                           [--transport sim|socket|tcp]
//                           [--mem-budget BYTES] [--json PATH]
//                           [--checkpoint PATH] [--checkpoint-every K]
//                           [--resume PATH]
//
// `--mem-budget BYTES` (k/m/g suffixes accepted) caps the assignment
// engine's tile storage via Settings::memoryBudgetBytes; partitions are
// bitwise unchanged (chunked-vs-resident contract), only the memory
// counters and wall clock move.
//
// `--checkpoint PATH` saves the warm strategy's state (centers, influence)
// plus the deterministic cursor (scenario index, step) every K completed
// steps (--checkpoint-every, default 1); `--resume PATH` fast-forwards to
// the checkpointed cursor — scenarios regenerate deterministically from
// their seed, so every partition computed after the resume point is bitwise
// identical to the uninterrupted run (only the per-step bookkeeping that
// compares against pre-crash history — migration, misroute — restarts).
// Each step also runs the fault point faultPoint("step", scenario*T + t),
// so GEO_FAULT can kill a rank at an exact step for the chaos suite.
//
// Under `geo_launch -n N -- bench_repart_timeline ... --transport socket`
// the run spans N real processes: the ranks argument is overridden by the
// worker count, every process executes the loop in lockstep, and only
// rank 0 prints tables or writes the JSON.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "baseline/rcb.hpp"
#include "core/checkpoint.hpp"
#include "gen/delaunay2d.hpp"
#include "graph/metrics.hpp"
#include "repart/migration.hpp"
#include "repart/repartition.hpp"
#include "repart/scenarios.hpp"
#include "serve/router.hpp"
#include "serve/snapshot.hpp"
#include "common.hpp"
#include "support/fault.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace geo;

struct StepRecord {
    double seconds = 0.0;         ///< host wall time around the call
    double modeledSeconds = 0.0;  ///< modeled SPMD pipeline time (0 for RCB)
    int outerIterations = 0;   ///< 0 for RCB (no iterative phase)
    bool warm = false;
    std::int64_t cut = 0;
    double imbalance = 0.0;
    double migratedFraction = 0.0;
    std::uint64_t migratedBytes = 0;
    double misrouteFraction = -1.0;  ///< stale-snapshot misroutes; -1 = no snapshot yet
    /// Recompute window the stale snapshot bridges: wall time from routing
    /// this step's queries through the previous snapshot until the fresh
    /// one is published (repartition + snapshot build + publish).
    double stalenessSeconds = -1.0;
};

struct StrategyHistory {
    std::vector<std::int64_t> prevIds;
    graph::Partition prevPartition;
    std::vector<StepRecord> records;
    core::KMeansCounters counters;  ///< engine counters summed over all steps
};

void recordMigration(StrategyHistory& h, const repart::WorkloadStep<2>& step,
                     const graph::Partition& partition, std::int32_t k, int ranks,
                     StepRecord& rec) {
    if (!h.prevIds.empty()) {
        const auto m = repart::migrationStats(
            h.prevIds, h.prevPartition, step.ids, partition, step.weights, k, ranks,
            repart::migrationBytesPerPoint(2));
        rec.migratedFraction = m.migratedFraction;
        rec.migratedBytes = m.totalBytes;
    }
    h.prevIds = step.ids;
    h.prevPartition = partition;
}

double mean(const std::vector<double>& v) {
    return v.empty() ? 0.0 : std::accumulate(v.begin(), v.end(), 0.0) /
                                 static_cast<double>(v.size());
}

core::CheckpointState toCheckpoint(const repart::RepartState<2>& state,
                                   std::uint64_t phase, std::uint64_t step) {
    core::CheckpointState ck;
    ck.dims = 2;
    ck.phase = phase;
    ck.step = step;
    ck.influence = state.influence;
    ck.centerCoords.reserve(state.centers.size() * 2);
    for (const auto& c : state.centers)
        for (int d = 0; d < 2; ++d) ck.centerCoords.push_back(c[d]);
    return ck;
}

repart::RepartState<2> fromCheckpoint(const core::CheckpointState& ck) {
    if (ck.dims != 2)
        throw std::invalid_argument("resume checkpoint has dims=" +
                                    std::to_string(ck.dims) + ", this bench is 2-D");
    repart::RepartState<2> state;
    state.centers = core::unflattenCenters<2>(ck.centerCoords);
    state.influence = ck.influence;
    return state;
}

struct Summary {
    std::string scenario;
    double warmIters = 0.0, coldIters = 0.0;
    double warmMig = 0.0, coldMig = 0.0, rcbMig = 0.0;
    double misroute = 0.0;
    int warmSteps = 0;
};

struct ScenarioTrace {
    std::string name;
    StrategyHistory warm, cold, rcb;
    Summary summary;
};

void writeStepJson(std::ostream& out, const char* name, const StepRecord& rec,
                   bool last) {
    out << "        \"" << name << "\": {\"seconds\": " << rec.seconds
        << ", \"modeled_s\": " << rec.modeledSeconds
        << ", \"iters\": " << rec.outerIterations
        << ", \"warm\": " << (rec.warm ? "true" : "false")
        << ", \"cut\": " << rec.cut << ", \"imbalance\": " << rec.imbalance
        << ", \"migrated\": " << rec.migratedFraction
        << ", \"migratedBytes\": " << rec.migratedBytes;
    if (rec.misrouteFraction >= 0.0)
        out << ", \"misroute\": " << rec.misrouteFraction
            << ", \"staleness_s\": " << rec.stalenessSeconds;
    out << "}" << (last ? "" : ",") << "\n";
}

/// BENCH_repart.json: the repartitioning bench trajectory, mirroring
/// components_breakdown's BENCH_pipeline.json.
void writeJson(const std::string& path, std::int64_t n, int steps, std::int32_t k,
               int ranks, geo::par::TransportKind transport, std::uint64_t memBudget,
               const std::vector<ScenarioTrace>& traces) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write " << path << "\n";
        return;
    }
    out << "{\n  \"bench\": \"repart_timeline\",\n  \"n\": " << n
        << ",\n  \"steps\": " << steps << ",\n  \"k\": " << k
        << ",\n  \"ranks\": " << ranks << ",\n  \"transport\": \""
        << geo::bench::resolvedTransportName(transport) << "\",\n  \"processes\": "
        << geo::bench::workerProcesses() << ",\n  \"mem_budget_bytes\": " << memBudget
        << ",\n";
    geo::bench::writePeakRssField(out);
    out << "  \"scenarios\": [\n";
    for (std::size_t s = 0; s < traces.size(); ++s) {
        const auto& trace = traces[s];
        out << "    {\"scenario\": \"" << trace.name << "\",\n     \"steps\": [\n";
        for (std::size_t t = 0; t < trace.warm.records.size(); ++t) {
            out << "      {\"step\": " << t << ",\n";
            writeStepJson(out, "repart", trace.warm.records[t], false);
            writeStepJson(out, "scratch", trace.cold.records[t], false);
            writeStepJson(out, "rcb", trace.rcb.records[t], true);
            out << "      }" << (t + 1 < trace.warm.records.size() ? "," : "") << "\n";
        }
        const auto& sum = trace.summary;
        out << "     ],\n     \"summary\": {\"warmSteps\": " << sum.warmSteps
            << ", \"itersWarm\": " << sum.warmIters << ", \"itersCold\": " << sum.coldIters
            << ", \"migWarm\": " << sum.warmMig << ", \"migCold\": " << sum.coldMig
            << ", \"migRcb\": " << sum.rcbMig << ", \"misrouteMean\": " << sum.misroute
            << "}}" << (s + 1 < traces.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
    std::int64_t n = 10000;
    int steps = 6;
    std::int32_t k = 8;
    int ranks = 4;
    std::string jsonPath;
    par::TransportKind transport = par::TransportKind::Auto;
    std::uint64_t memBudget = 0;
    std::string checkpointPath, resumePath;
    int checkpointEvery = 1;
    const char* usage =
        " [points] [steps] [blocks] [ranks] [--transport sim|socket|tcp]"
        " [--mem-budget BYTES] [--json PATH]"
        " [--checkpoint PATH] [--checkpoint-every K] [--resume PATH]\n";
    int positional = 0;
    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        if (arg == "--json") {
            if (a + 1 >= argc) {
                std::cerr << "--json requires a path\nusage: " << argv[0] << usage;
                return 1;
            }
            jsonPath = argv[++a];
        } else if (arg == "--checkpoint") {
            if (a + 1 >= argc) {
                std::cerr << "--checkpoint requires a path\nusage: " << argv[0] << usage;
                return 1;
            }
            checkpointPath = argv[++a];
        } else if (arg == "--checkpoint-every") {
            if (a + 1 >= argc) {
                std::cerr << "--checkpoint-every requires a count\nusage: " << argv[0]
                          << usage;
                return 1;
            }
            checkpointEvery = std::max(1, std::atoi(argv[++a]));
        } else if (arg == "--resume") {
            if (a + 1 >= argc) {
                std::cerr << "--resume requires a path\nusage: " << argv[0] << usage;
                return 1;
            }
            resumePath = argv[++a];
        } else if (arg == "--transport") {
            if (a + 1 >= argc) {
                std::cerr << "--transport requires a backend\nusage: " << argv[0] << usage;
                return 1;
            }
            transport = par::parseTransportKind(argv[++a]);
        } else if (arg == "--mem-budget") {
            if (a + 1 >= argc) {
                std::cerr << "--mem-budget requires a byte count\nusage: " << argv[0]
                          << usage;
                return 1;
            }
            try {
                memBudget = support::parseMemBytes(argv[++a]);
            } catch (const std::exception& e) {
                std::cerr << "--mem-budget: " << e.what() << "\nusage: " << argv[0]
                          << usage;
                return 1;
            }
        } else if (!arg.empty() &&
                   arg.find_first_not_of("0123456789") == std::string::npos &&
                   positional < 4) {
            switch (positional++) {
                case 0: n = std::atoll(arg.c_str()); break;
                case 1: steps = std::atoi(arg.c_str()); break;
                case 2: k = std::atoi(arg.c_str()); break;
                case 3: ranks = std::atoi(arg.c_str()); break;
            }
        } else {
            std::cerr << "unrecognized argument: " << arg << "\nusage: " << argv[0]
                      << usage;
            return 1;
        }
    }

    // Under geo_launch the SPMD width IS the worker count; non-root ranks
    // run the same loop through the socket collectives but stay silent.
    if (std::getenv("GEO_RANK") != nullptr) ranks = bench::workerProcesses();
    const bench::MuteNonRoot mute;

    core::Settings settings;
    settings.epsilon = 0.03;
    settings.transport = transport;
    settings.memoryBudgetBytes = memBudget;

    std::cout << "Dynamic repartitioning timeline: n=" << n << ", T=" << steps
              << ", k=" << k << ", ranks=" << ranks << "\n\n";

    // Every rank loads the same checkpoint, so the replicated warm state and
    // the cursor agree across the mesh exactly as they would mid-run.
    core::CheckpointState resumeCursor;
    bool resuming = false;
    if (!resumePath.empty()) {
        try {
            resumeCursor = core::loadCheckpoint(resumePath);
            resuming = true;
            std::cout << "resuming from " << resumePath << ": scenario "
                      << resumeCursor.phase << ", step " << resumeCursor.step
                      << "\n";
        } catch (const std::exception& e) {
            std::cerr << "cannot resume: " << e.what() << "\n";
            return 1;
        }
    }

    const repart::ScenarioKind kinds[] = {
        repart::ScenarioKind::Advection, repart::ScenarioKind::Rotation,
        repart::ScenarioKind::Hotspot, repart::ScenarioKind::Churn};
    const std::size_t kindCount = std::size(kinds);

    std::vector<ScenarioTrace> traces;

    for (std::size_t si = 0; si < kindCount; ++si) {
        const auto kind = kinds[si];
        // Scenarios before the checkpointed cursor already ran to
        // completion in the interrupted run.
        if (resuming && si < resumeCursor.phase) continue;

        repart::ScenarioConfig cfg;
        cfg.kind = kind;
        cfg.basePoints = n;
        cfg.seed = 42;
        repart::Scenario<2> scenario(cfg);

        ScenarioTrace trace;
        trace.name = toString(kind);
        repart::RepartState<2> warmState, coldState;
        StrategyHistory& warmHist = trace.warm;
        StrategyHistory& coldHist = trace.cold;
        StrategyHistory& rcbHist = trace.rcb;
        repart::RepartOptions coldOptions;
        coldOptions.forceCold = true;

        // Serving layer of the warm strategy: every step publishes an
        // immutable snapshot; the next step's queries are routed through it
        // BEFORE the repartition finishes, then compared against the fresh
        // partition (misroute) — the first end-to-end
        // compute→serve→recompute loop.
        serve::Router<2> router(1);

        // `seconds` is host wall time (thread machine incl. spawn/join for
        // the geographer strategies, serial for RCB); `modeled` is the
        // simulated-SPMD pipeline estimate incl. the drift probe — the
        // apples-to-apples warm-vs-scratch number.
        Table table({"step", "strategy", "seconds", "modeled", "iters", "cut",
                     "imbalance", "migrated", "migKB", "misroute"});
        int startStep = 0;
        if (resuming && si == resumeCursor.phase) {
            startStep = std::min(static_cast<int>(resumeCursor.step), steps);
            // startStep == 0 means the cursor sits on a scenario boundary:
            // the uninterrupted run starts this scenario cold, so the
            // checkpointed warm state (from the PREVIOUS scenario) must not
            // leak in.
            if (startStep > 0) warmState = fromCheckpoint(resumeCursor);
            // Scenarios regenerate deterministically: advancing from the
            // seed replays the exact point clouds of the interrupted run.
            for (int t = 0; t < startStep; ++t) scenario.advance();
            resuming = false;
        }
        for (int t = startStep; t < steps; ++t) {
            support::faultPoint("step", si * static_cast<std::uint64_t>(steps) +
                                            static_cast<std::uint64_t>(t));
            const auto& step = scenario.current();
            const auto graph = gen::delaunayTriangulate2d(step.points);

            // Warm-capable repartitioning (cold only on step 0 / high drift).
            {
                // Route this step's queries with the previous step's (now
                // stale) snapshot, exactly as a serving process would while
                // the "recompute" below still runs; the staleness timer
                // spans that recompute window up to the fresh publish.
                std::vector<std::int32_t> staleRouted;
                if (router.hasSnapshot()) {
                    staleRouted.assign(step.points.size(), -1);
                    router.route(step.points, std::span<std::int32_t>(staleRouted));
                }

                Timer timer;
                const auto res = repart::repartitionGeographer<2>(
                    step.points, step.weights, k, ranks, settings, warmState);
                StepRecord rec;
                rec.seconds = timer.seconds();
                router.publish(serve::PartitionSnapshot<2>::fromResult(
                    res.result, static_cast<std::uint64_t>(t + 1), ranks));
                if (!staleRouted.empty()) {
                    rec.stalenessSeconds = timer.seconds();  // route → fresh publish
                    rec.misrouteFraction =
                        serve::misrouteStats(staleRouted, res.result.partition).fraction();
                }
                rec.modeledSeconds = res.result.modeledSeconds;
                rec.outerIterations = res.result.counters.outerIterations;
                rec.warm = res.warmStarted;
                rec.cut = graph::edgeCut(graph, res.result.partition);
                rec.imbalance = res.result.imbalance;
                recordMigration(warmHist, step, res.result.partition, k, ranks, rec);
                warmHist.counters.merge(res.result.counters);
                warmHist.records.push_back(rec);
            }
            // Cold re-partitioning from scratch every step.
            {
                Timer timer;
                const auto res = repart::repartitionGeographer<2>(
                    step.points, step.weights, k, ranks, settings, coldState, coldOptions);
                StepRecord rec;
                rec.seconds = timer.seconds();
                rec.modeledSeconds = res.result.modeledSeconds;
                rec.outerIterations = res.result.counters.outerIterations;
                rec.cut = graph::edgeCut(graph, res.result.partition);
                rec.imbalance = res.result.imbalance;
                recordMigration(coldHist, step, res.result.partition, k, ranks, rec);
                coldHist.counters.merge(res.result.counters);
                coldHist.records.push_back(rec);
            }
            // Re-run RCB from scratch every step.
            {
                Timer timer;
                const auto part = baseline::rcb<2>(step.points, step.weights, k);
                StepRecord rec;
                rec.seconds = timer.seconds();
                rec.cut = graph::edgeCut(graph, part);
                rec.imbalance = graph::imbalance(part, k, step.weights);
                recordMigration(rcbHist, step, part, k, ranks, rec);
                rcbHist.records.push_back(rec);
            }

            const auto addRow = [&](const char* name, const StepRecord& rec,
                                    bool showWarm) {
                table.addRow({std::to_string(t),
                              showWarm ? (std::string(name) + (rec.warm ? "(warm)" : "(cold)"))
                                       : std::string(name),
                              Table::num(rec.seconds, 4),
                              rec.modeledSeconds > 0.0 ? Table::num(rec.modeledSeconds, 4)
                                                       : std::string("-"),
                              rec.outerIterations > 0 ? std::to_string(rec.outerIterations)
                                                      : std::string("-"),
                              std::to_string(rec.cut), Table::num(rec.imbalance, 4),
                              Table::num(rec.migratedFraction, 4),
                              Table::num(static_cast<double>(rec.migratedBytes) / 1024.0, 1),
                              rec.misrouteFraction >= 0.0
                                  ? Table::num(rec.misrouteFraction, 4)
                                  : std::string("-")});
            };
            addRow("repart", warmHist.records.back(), true);
            addRow("scratch", coldHist.records.back(), false);
            addRow("rcb", rcbHist.records.back(), false);

            scenario.advance();

            // The cursor names the NEXT unit of work: mid-scenario that is
            // (si, t+1); on the last step it rolls to (si+1, 0) so a resume
            // starts the next scenario cold, exactly like the uninterrupted
            // run. Root writes; the state is replicated on every rank.
            if (!checkpointPath.empty() && bench::isRootProcess() &&
                ((t + 1) % checkpointEvery == 0 || t + 1 == steps)) {
                const bool scenarioDone = t + 1 == steps;
                core::saveCheckpoint(
                    checkpointPath,
                    toCheckpoint(warmState, scenarioDone ? si + 1 : si,
                                 scenarioDone ? 0
                                              : static_cast<std::uint64_t>(t + 1)));
            }
        }

        std::cout << "=== scenario: " << toString(kind) << " ===\n";
        table.print(std::cout);

        // Assignment-engine counters summed over all steps: the warm path
        // inherits the fast engine's savings (lazy epoch bounds applied on
        // touch, batched squared-distance kernels, Hamerly skips).
        const auto printCounters = [](const char* name,
                                      const core::KMeansCounters& c) {
            std::cout << name << ": distCalcs=" << c.distanceCalcs
                      << " batched=" << c.batchedDistanceCalcs
                      << " epochApps=" << c.epochBoundApplications << " skip%="
                      << Table::num(100.0 * c.skipFraction(), 3)
                      << " peakTileKB=" << c.peakTileBytes / 1024
                      << " spills=" << c.spilledTiles << '\n';
        };
        printCounters("engine counters repart ", warmHist.counters);
        printCounters("engine counters scratch", coldHist.counters);

        // Steps 1..T-1 (step 0 has no previous partition to migrate from).
        Summary& sum = trace.summary;
        sum.scenario = toString(kind);
        std::vector<double> wIters, cIters, wMig, cMig, rMig, misroutes;
        for (std::size_t i = 1; i < warmHist.records.size(); ++i) {
            wIters.push_back(warmHist.records[i].outerIterations);
            cIters.push_back(coldHist.records[i].outerIterations);
            wMig.push_back(warmHist.records[i].migratedFraction);
            cMig.push_back(coldHist.records[i].migratedFraction);
            rMig.push_back(rcbHist.records[i].migratedFraction);
            if (warmHist.records[i].misrouteFraction >= 0.0)
                misroutes.push_back(warmHist.records[i].misrouteFraction);
            sum.warmSteps += warmHist.records[i].warm;
        }
        sum.warmIters = mean(wIters);
        sum.coldIters = mean(cIters);
        sum.warmMig = mean(wMig);
        sum.coldMig = mean(cMig);
        sum.rcbMig = mean(rMig);
        sum.misroute = mean(misroutes);
        traces.push_back(std::move(trace));
        std::cout << '\n';
    }

    std::cout << "=== summary over steps 1.." << steps - 1
              << " (means; lower is better) ===\n";
    Table table({"scenario", "warmSteps", "itersWarm", "itersCold", "migWarm", "migCold",
                 "migRcb", "misroute"});
    for (const auto& trace : traces) {
        const auto& s = trace.summary;
        table.addRow({s.scenario, std::to_string(s.warmSteps), Table::num(s.warmIters, 2),
                      Table::num(s.coldIters, 2), Table::num(s.warmMig, 4),
                      Table::num(s.coldMig, 4), Table::num(s.rcbMig, 4),
                      Table::num(s.misroute, 4)});
    }
    table.print(std::cout);
    std::cout << "\nwarmSteps = steps the drift probe accepted the warm path.\n"
                 "itersWarm < itersCold and migWarm < migCold demonstrate the\n"
                 "repartitioning claim (advection/hotspot acceptance criteria).\n"
                 "misroute = fraction of this step's queries the PREVIOUS step's\n"
                 "snapshot routes to a different block than the fresh partition —\n"
                 "the serving-layer cost of repartitioning lag.\n";

    std::cout << "\nprocess peak RSS: "
              << Table::num(static_cast<double>(support::peakRssBytes()) /
                                (1024.0 * 1024.0), 1)
              << " MB (mem budget: "
              << (memBudget == 0 ? std::string("unlimited")
                                 : std::to_string(memBudget) + " bytes")
              << ")\n";

    if (!jsonPath.empty() && bench::isRootProcess())
        writeJson(jsonPath, n, steps, k, ranks, transport, memBudget, traces);
    return 0;
}
