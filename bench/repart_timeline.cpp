// Dynamic repartitioning timeline: warm-started balanced k-means vs. cold
// re-partitioning vs. re-run RCB over the time-stepped workloads of
// src/repart/scenarios.hpp.
//
// For every scenario and step, each strategy partitions the evolved point
// cloud; we report partitioning time, edge cut (on a per-step Delaunay
// triangulation of the cloud), imbalance, k-means outer iterations, and the
// migration volume against the strategy's own previous partition. The
// summary quantifies the repartitioning claim: warm starts converge in fewer
// outer iterations and move far less data than re-partitioning from scratch.
//
//   ./bench_repart_timeline [points] [steps] [blocks] [ranks]
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "baseline/rcb.hpp"
#include "gen/delaunay2d.hpp"
#include "graph/metrics.hpp"
#include "repart/migration.hpp"
#include "repart/repartition.hpp"
#include "repart/scenarios.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace geo;

struct StepRecord {
    double seconds = 0.0;         ///< host wall time around the call
    double modeledSeconds = 0.0;  ///< modeled SPMD pipeline time (0 for RCB)
    int outerIterations = 0;   ///< 0 for RCB (no iterative phase)
    bool warm = false;
    std::int64_t cut = 0;
    double imbalance = 0.0;
    double migratedFraction = 0.0;
    std::uint64_t migratedBytes = 0;
};

struct StrategyHistory {
    std::vector<std::int64_t> prevIds;
    graph::Partition prevPartition;
    std::vector<StepRecord> records;
    core::KMeansCounters counters;  ///< engine counters summed over all steps
};

void recordMigration(StrategyHistory& h, const repart::WorkloadStep<2>& step,
                     const graph::Partition& partition, std::int32_t k, int ranks,
                     StepRecord& rec) {
    if (!h.prevIds.empty()) {
        const auto m = repart::migrationStats(
            h.prevIds, h.prevPartition, step.ids, partition, step.weights, k, ranks,
            repart::migrationBytesPerPoint(2));
        rec.migratedFraction = m.migratedFraction;
        rec.migratedBytes = m.totalBytes;
    }
    h.prevIds = step.ids;
    h.prevPartition = partition;
}

double mean(const std::vector<double>& v) {
    return v.empty() ? 0.0 : std::accumulate(v.begin(), v.end(), 0.0) /
                                 static_cast<double>(v.size());
}

}  // namespace

int main(int argc, char** argv) {
    const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 10000;
    const int steps = argc > 2 ? std::atoi(argv[2]) : 6;
    const std::int32_t k = argc > 3 ? std::atoi(argv[3]) : 8;
    const int ranks = argc > 4 ? std::atoi(argv[4]) : 4;

    core::Settings settings;
    settings.epsilon = 0.03;

    std::cout << "Dynamic repartitioning timeline: n=" << n << ", T=" << steps
              << ", k=" << k << ", ranks=" << ranks << "\n\n";

    const repart::ScenarioKind kinds[] = {
        repart::ScenarioKind::Advection, repart::ScenarioKind::Rotation,
        repart::ScenarioKind::Hotspot, repart::ScenarioKind::Churn};

    struct Summary {
        std::string scenario;
        double warmIters = 0.0, coldIters = 0.0;
        double warmMig = 0.0, coldMig = 0.0, rcbMig = 0.0;
        int warmSteps = 0;
    };
    std::vector<Summary> summaries;

    for (const auto kind : kinds) {
        repart::ScenarioConfig cfg;
        cfg.kind = kind;
        cfg.basePoints = n;
        cfg.seed = 42;
        repart::Scenario<2> scenario(cfg);

        repart::RepartState<2> warmState, coldState;
        StrategyHistory warmHist, coldHist, rcbHist;
        repart::RepartOptions coldOptions;
        coldOptions.forceCold = true;

        // `seconds` is host wall time (thread machine incl. spawn/join for
        // the geographer strategies, serial for RCB); `modeled` is the
        // simulated-SPMD pipeline estimate incl. the drift probe — the
        // apples-to-apples warm-vs-scratch number.
        Table table({"step", "strategy", "seconds", "modeled", "iters", "cut",
                     "imbalance", "migrated", "migKB"});
        for (int t = 0; t < steps; ++t) {
            const auto& step = scenario.current();
            const auto graph = gen::delaunayTriangulate2d(step.points);

            // Warm-capable repartitioning (cold only on step 0 / high drift).
            {
                Timer timer;
                const auto res = repart::repartitionGeographer<2>(
                    step.points, step.weights, k, ranks, settings, warmState);
                StepRecord rec;
                rec.seconds = timer.seconds();
                rec.modeledSeconds = res.result.modeledSeconds;
                rec.outerIterations = res.result.counters.outerIterations;
                rec.warm = res.warmStarted;
                rec.cut = graph::edgeCut(graph, res.result.partition);
                rec.imbalance = res.result.imbalance;
                recordMigration(warmHist, step, res.result.partition, k, ranks, rec);
                warmHist.counters.merge(res.result.counters);
                warmHist.records.push_back(rec);
            }
            // Cold re-partitioning from scratch every step.
            {
                Timer timer;
                const auto res = repart::repartitionGeographer<2>(
                    step.points, step.weights, k, ranks, settings, coldState, coldOptions);
                StepRecord rec;
                rec.seconds = timer.seconds();
                rec.modeledSeconds = res.result.modeledSeconds;
                rec.outerIterations = res.result.counters.outerIterations;
                rec.cut = graph::edgeCut(graph, res.result.partition);
                rec.imbalance = res.result.imbalance;
                recordMigration(coldHist, step, res.result.partition, k, ranks, rec);
                coldHist.counters.merge(res.result.counters);
                coldHist.records.push_back(rec);
            }
            // Re-run RCB from scratch every step.
            {
                Timer timer;
                const auto part = baseline::rcb<2>(step.points, step.weights, k);
                StepRecord rec;
                rec.seconds = timer.seconds();
                rec.cut = graph::edgeCut(graph, part);
                rec.imbalance = graph::imbalance(part, k, step.weights);
                recordMigration(rcbHist, step, part, k, ranks, rec);
                rcbHist.records.push_back(rec);
            }

            const auto addRow = [&](const char* name, const StepRecord& rec,
                                    bool showWarm) {
                table.addRow({std::to_string(t),
                              showWarm ? (std::string(name) + (rec.warm ? "(warm)" : "(cold)"))
                                       : std::string(name),
                              Table::num(rec.seconds, 4),
                              rec.modeledSeconds > 0.0 ? Table::num(rec.modeledSeconds, 4)
                                                       : std::string("-"),
                              rec.outerIterations > 0 ? std::to_string(rec.outerIterations)
                                                      : std::string("-"),
                              std::to_string(rec.cut), Table::num(rec.imbalance, 4),
                              Table::num(rec.migratedFraction, 4),
                              Table::num(static_cast<double>(rec.migratedBytes) / 1024.0, 1)});
            };
            addRow("repart", warmHist.records.back(), true);
            addRow("scratch", coldHist.records.back(), false);
            addRow("rcb", rcbHist.records.back(), false);

            scenario.advance();
        }

        std::cout << "=== scenario: " << toString(kind) << " ===\n";
        table.print(std::cout);

        // Assignment-engine counters summed over all steps: the warm path
        // inherits the fast engine's savings (lazy epoch bounds applied on
        // touch, batched squared-distance kernels, Hamerly skips).
        const auto printCounters = [](const char* name,
                                      const core::KMeansCounters& c) {
            std::cout << name << ": distCalcs=" << c.distanceCalcs
                      << " batched=" << c.batchedDistanceCalcs
                      << " epochApps=" << c.epochBoundApplications << " skip%="
                      << Table::num(100.0 * c.skipFraction(), 3) << '\n';
        };
        printCounters("engine counters repart ", warmHist.counters);
        printCounters("engine counters scratch", coldHist.counters);

        // Steps 1..T-1 (step 0 has no previous partition to migrate from).
        Summary sum;
        sum.scenario = toString(kind);
        std::vector<double> wIters, cIters, wMig, cMig, rMig;
        for (std::size_t i = 1; i < warmHist.records.size(); ++i) {
            wIters.push_back(warmHist.records[i].outerIterations);
            cIters.push_back(coldHist.records[i].outerIterations);
            wMig.push_back(warmHist.records[i].migratedFraction);
            cMig.push_back(coldHist.records[i].migratedFraction);
            rMig.push_back(rcbHist.records[i].migratedFraction);
            sum.warmSteps += warmHist.records[i].warm;
        }
        sum.warmIters = mean(wIters);
        sum.coldIters = mean(cIters);
        sum.warmMig = mean(wMig);
        sum.coldMig = mean(cMig);
        sum.rcbMig = mean(rMig);
        summaries.push_back(sum);
        std::cout << '\n';
    }

    std::cout << "=== summary over steps 1.." << steps - 1
              << " (means; lower is better) ===\n";
    Table table({"scenario", "warmSteps", "itersWarm", "itersCold", "migWarm", "migCold",
                 "migRcb"});
    for (const auto& s : summaries)
        table.addRow({s.scenario, std::to_string(s.warmSteps), Table::num(s.warmIters, 2),
                      Table::num(s.coldIters, 2), Table::num(s.warmMig, 4),
                      Table::num(s.coldMig, 4), Table::num(s.rcbMig, 4)});
    table.print(std::cout);
    std::cout << "\nwarmSteps = steps the drift probe accepted the warm path.\n"
                 "itersWarm < itersCold and migWarm < migCold demonstrate the\n"
                 "repartitioning claim (advection/hotspot acceptance criteria).\n";
    return 0;
}
