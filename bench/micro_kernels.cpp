// Google-benchmark micro-kernels for the hot paths: Hilbert indexing
// (phase 1 of Geographer), the balanced k-means assignment sweep with and
// without the geometric optimizations, distributed sample sort, and the
// baseline partitioners.
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "baseline/hsfc.hpp"
#include "baseline/multijagged.hpp"
#include "baseline/rcb.hpp"
#include "core/assign_kernel.hpp"
#include "core/balanced_kmeans.hpp"
#include "geometry/box.hpp"
#include "par/comm.hpp"
#include "par/sort.hpp"
#include "sfc/hilbert.hpp"
#include "support/rng.hpp"

namespace {

using namespace geo;

std::vector<Point2> points2(std::int64_t n, std::uint64_t seed = 1) {
    Xoshiro256 rng(seed);
    std::vector<Point2> pts;
    pts.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
        pts.push_back(Point2{{rng.uniform(), rng.uniform()}});
    return pts;
}

std::vector<Point3> points3(std::int64_t n, std::uint64_t seed = 1) {
    Xoshiro256 rng(seed);
    std::vector<Point3> pts;
    pts.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
        pts.push_back(Point3{{rng.uniform(), rng.uniform(), rng.uniform()}});
    return pts;
}

void BM_HilbertIndex2D(benchmark::State& state) {
    const auto pts = points2(state.range(0));
    const auto bb = Box2::around(std::span<const Point2>(pts));
    for (auto _ : state) {
        std::uint64_t acc = 0;
        for (const auto& p : pts) acc ^= sfc::hilbertIndex<2>(p, bb);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HilbertIndex2D)->Arg(1 << 14)->Arg(1 << 17);

void BM_HilbertIndex3D(benchmark::State& state) {
    const auto pts = points3(state.range(0));
    const auto bb = Box3::around(std::span<const Point3>(pts));
    for (auto _ : state) {
        std::uint64_t acc = 0;
        for (const auto& p : pts) acc ^= sfc::hilbertIndex<3>(p, bb);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HilbertIndex3D)->Arg(1 << 14)->Arg(1 << 17);

void kmeansBench(benchmark::State& state, bool hamerly, bool bbox) {
    const auto pts = points2(state.range(0));
    Xoshiro256 rng(7);
    std::vector<Point2> centers;
    for (int c = 0; c < 16; ++c)
        centers.push_back(Point2{{rng.uniform(), rng.uniform()}});
    core::Settings s;
    s.hamerlyBounds = hamerly;
    s.boundingBoxPruning = bbox;
    s.sampledInitialization = false;
    for (auto _ : state) {
        par::runSpmd(1, [&](par::Comm& comm) {
            auto out = core::balancedKMeans<2>(comm, pts, {}, centers, s);
            benchmark::DoNotOptimize(out.assignment.data());
        });
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_BalancedKMeans_Optimized(benchmark::State& state) {
    kmeansBench(state, true, true);
}
BENCHMARK(BM_BalancedKMeans_Optimized)->Arg(1 << 14);

void BM_BalancedKMeans_NoBounds(benchmark::State& state) {
    kmeansBench(state, false, false);
}
BENCHMARK(BM_BalancedKMeans_NoBounds)->Arg(1 << 14);

// ---------------------------------------------------------------------------
// Assignment-sweep kernels (core/assign_kernel): one full sweep of the
// active points against k = 64 centers, bounds reset each iteration so every
// point is (re)assigned. "Reference" is the seed implementation's scalar
// sqrt-domain loop; "Fast" the squared-domain SoA batch kernel; the T2/T4
// variants add intra-rank threads. Both modes produce bitwise-identical
// assignments (tests/test_kmeans.cpp equivalence suite).
// ---------------------------------------------------------------------------

template <int DIM>
std::vector<Point<DIM>> randomPointsDim(std::int64_t n, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<Point<DIM>> pts;
    pts.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        Point<DIM> p;
        for (int d = 0; d < DIM; ++d) p[d] = rng.uniform();
        pts.push_back(p);
    }
    return pts;
}

template <int DIM>
void assignSweepBench(benchmark::State& state, bool reference, int threads) {
    const auto n = static_cast<std::int64_t>(state.range(0));
    const std::int32_t k = 64;
    const auto pts = randomPointsDim<DIM>(n, 3);
    const auto centers = randomPointsDim<DIM>(k, 5);
    Xoshiro256 rng(7);
    std::vector<double> influence;
    for (std::int32_t c = 0; c < k; ++c) influence.push_back(rng.uniform(0.8, 1.25));

    core::Settings s;
    s.referenceAssignment = reference;
    s.threads = threads;
    core::AssignEngine<DIM> engine(pts, {}, s, k);
    std::vector<std::size_t> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), std::size_t{0});
    engine.setActive(order, order.size());
    std::vector<double> sizes(static_cast<std::size_t>(k), 0.0);
    for (auto _ : state) {
        engine.resetBounds();
        engine.beginRound(centers, influence, engine.activeBox());
        engine.sweep(sizes);
        benchmark::DoNotOptimize(sizes.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}

void BM_AssignSweep2D_Reference(benchmark::State& state) {
    assignSweepBench<2>(state, true, 1);
}
void BM_AssignSweep2D_Fast(benchmark::State& state) { assignSweepBench<2>(state, false, 1); }
void BM_AssignSweep2D_FastT2(benchmark::State& state) {
    assignSweepBench<2>(state, false, 2);
}
void BM_AssignSweep2D_FastT4(benchmark::State& state) {
    assignSweepBench<2>(state, false, 4);
}
void BM_AssignSweep3D_Reference(benchmark::State& state) {
    assignSweepBench<3>(state, true, 1);
}
void BM_AssignSweep3D_Fast(benchmark::State& state) { assignSweepBench<3>(state, false, 1); }
void BM_AssignSweep3D_FastT2(benchmark::State& state) {
    assignSweepBench<3>(state, false, 2);
}
void BM_AssignSweep3D_FastT4(benchmark::State& state) {
    assignSweepBench<3>(state, false, 4);
}
BENCHMARK(BM_AssignSweep2D_Reference)->Arg(1 << 17)->Arg(1 << 20);
BENCHMARK(BM_AssignSweep2D_Fast)->Arg(1 << 17)->Arg(1 << 20);
BENCHMARK(BM_AssignSweep2D_FastT2)->Arg(1 << 20);
BENCHMARK(BM_AssignSweep2D_FastT4)->Arg(1 << 20);
BENCHMARK(BM_AssignSweep3D_Reference)->Arg(1 << 17)->Arg(1 << 20);
BENCHMARK(BM_AssignSweep3D_Fast)->Arg(1 << 17)->Arg(1 << 20);
BENCHMARK(BM_AssignSweep3D_FastT2)->Arg(1 << 20);
BENCHMARK(BM_AssignSweep3D_FastT4)->Arg(1 << 20);

// Whole-algorithm before/after across the scenario grid the engine serves:
// full vs sampled initialization, unit vs weighted points.
void kmeansEngineBench(benchmark::State& state, bool reference, bool sampled,
                       bool weighted) {
    const auto n = state.range(0);
    const auto pts = points2(n);
    Xoshiro256 rng(11);
    std::vector<double> weights;
    if (weighted)
        for (std::int64_t i = 0; i < n; ++i) weights.push_back(rng.below(9) + 1.0);
    std::vector<Point2> centers;
    for (int c = 0; c < 64; ++c) centers.push_back(Point2{{rng.uniform(), rng.uniform()}});
    core::Settings s;
    s.referenceAssignment = reference;
    s.sampledInitialization = sampled;
    for (auto _ : state) {
        par::runSpmd(1, [&](par::Comm& comm) {
            auto out = core::balancedKMeans<2>(comm, pts, weights, centers, s);
            benchmark::DoNotOptimize(out.assignment.data());
        });
    }
    state.SetItemsProcessed(state.iterations() * n);
}

void BM_KMeansFull_Reference(benchmark::State& state) {
    kmeansEngineBench(state, true, false, false);
}
void BM_KMeansFull_Fast(benchmark::State& state) {
    kmeansEngineBench(state, false, false, false);
}
void BM_KMeansSampled_Reference(benchmark::State& state) {
    kmeansEngineBench(state, true, true, false);
}
void BM_KMeansSampled_Fast(benchmark::State& state) {
    kmeansEngineBench(state, false, true, false);
}
void BM_KMeansWeighted_Reference(benchmark::State& state) {
    kmeansEngineBench(state, true, false, true);
}
void BM_KMeansWeighted_Fast(benchmark::State& state) {
    kmeansEngineBench(state, false, false, true);
}
BENCHMARK(BM_KMeansFull_Reference)->Arg(1 << 16);
BENCHMARK(BM_KMeansFull_Fast)->Arg(1 << 16);
BENCHMARK(BM_KMeansSampled_Reference)->Arg(1 << 16);
BENCHMARK(BM_KMeansSampled_Fast)->Arg(1 << 16);
BENCHMARK(BM_KMeansWeighted_Reference)->Arg(1 << 16);
BENCHMARK(BM_KMeansWeighted_Fast)->Arg(1 << 16);

void BM_SampleSort(benchmark::State& state) {
    const auto perRank = state.range(0);
    for (auto _ : state) {
        par::runSpmd(4, [&](par::Comm& comm) {
            Xoshiro256 rng(10 + static_cast<std::uint64_t>(comm.rank()));
            std::vector<par::KeyedRecord<std::uint64_t, std::int64_t>> local;
            for (std::int64_t i = 0; i < perRank; ++i)
                local.push_back({rng(), i});
            auto sorted = par::sampleSort(comm, std::move(local));
            benchmark::DoNotOptimize(sorted.data());
        });
    }
    state.SetItemsProcessed(state.iterations() * perRank * 4);
}
BENCHMARK(BM_SampleSort)->Arg(1 << 13);

void BM_Rcb(benchmark::State& state) {
    const auto pts = points2(state.range(0));
    for (auto _ : state) {
        auto part = baseline::rcb<2>(pts, {}, 64);
        benchmark::DoNotOptimize(part.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Rcb)->Arg(1 << 16);

void BM_MultiJagged(benchmark::State& state) {
    const auto pts = points2(state.range(0));
    for (auto _ : state) {
        auto part = baseline::multiJagged<2>(pts, {}, 64);
        benchmark::DoNotOptimize(part.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MultiJagged)->Arg(1 << 16);

void BM_Hsfc(benchmark::State& state) {
    const auto pts = points2(state.range(0));
    for (auto _ : state) {
        auto part = baseline::hsfc<2>(pts, {}, 64);
        benchmark::DoNotOptimize(part.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Hsfc)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
