// Figure 4: running time vs instance size across all graph families, with a
// fixed target of points per block (paper: 250k points/block, k chosen per
// graph as the nearest power of two; we target 4096 points/block) and
// least-squares trend lines per tool in log–log space.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "gen/registry.hpp"

namespace {

/// Least-squares slope/intercept of log2(t) over log2(n).
struct Fit {
    double slope = 0.0;
    double intercept = 0.0;
};

Fit fitLogLog(const std::vector<std::pair<double, double>>& nt) {
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (const auto& [n, t] : nt) {
        const double x = std::log2(n), y = std::log2(std::max(t, 1e-9));
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    const auto m = static_cast<double>(nt.size());
    Fit f;
    f.slope = (m * sxy - sx * sy) / std::max(m * sxx - sx * sx, 1e-12);
    f.intercept = (sy - f.slope * sx) / m;
    return f;
}

}  // namespace

int main() {
    using namespace geo;
    const std::int64_t pointsPerBlock = 4096;
    const std::vector<std::int64_t> sizes{8192, 16384, 32768, 65536};

    std::cout << "=== Fig. 4: running time vs n, " << pointsPerBlock
              << " points per block ===\n\n";

    Table table({"graph", "n", "k", "geoKmeans[s]", "MJ[s]", "Rcb[s]", "Rib[s]", "Hsfc[s]"});
    std::map<std::string, std::vector<std::pair<double, double>>> series;

    auto record = [&](const std::string& name, std::int64_t n,
                      const std::vector<bench::ToolRow>& rows) {
        // k = power of two closest to n / pointsPerBlock.
        std::vector<std::string> cells{name, std::to_string(n), ""};
        for (const auto& row : rows) {
            series[row.tool].emplace_back(static_cast<double>(n), row.seconds);
            cells.push_back(Table::num(row.seconds, 3));
        }
        cells[2] = std::to_string(
            1 << static_cast<int>(std::lround(std::log2(static_cast<double>(n) /
                                                        static_cast<double>(pointsPerBlock)))));
        table.addRow(cells);
    };

    for (const auto& spec : gen::catalog2d()) {
        for (const auto n : sizes) {
            const auto k = static_cast<std::int32_t>(
                1 << static_cast<int>(std::lround(std::log2(
                    static_cast<double>(n) / static_cast<double>(pointsPerBlock)))));
            const auto mesh = spec.make(n, 11);
            record(spec.name, n, bench::runAllTools<2>(mesh, std::max(k, 2), 0.03, 11,
                                                       /*spmvIterations=*/0,
                                                       /*computeDiameter=*/false));
        }
    }
    for (const auto& spec : gen::catalog3d()) {
        for (const auto n : sizes) {
            if (spec.name == "delaunay3d" && n > 32768) continue;  // keep runtime sane
            const auto k = static_cast<std::int32_t>(
                1 << static_cast<int>(std::lround(std::log2(
                    static_cast<double>(n) / static_cast<double>(pointsPerBlock)))));
            const auto mesh = spec.make(n, 11);
            record(spec.name, n, bench::runAllTools<3>(mesh, std::max(k, 2), 0.03, 11, 0,
                                                       false));
        }
    }
    table.print(std::cout);

    std::cout << "\nLeast-squares fits of log2(time) over log2(n):\n";
    Table fits({"tool", "slope", "time(n=2^20) [s]"});
    for (const auto& [tool, nt] : series) {
        const auto f = fitLogLog(nt);
        fits.addRow({tool, Table::num(f.slope, 3),
                     Table::num(std::exp2(f.slope * 20.0 + f.intercept), 3)});
    }
    fits.print(std::cout);
    std::cout << "\nPaper shape: all tools near slope 1 (linear in n); geoKmeans has the\n"
                 "largest constant, Hsfc/MJ the smallest.\n";
    return 0;
}
