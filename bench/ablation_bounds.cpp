// Ablation of the geometric optimizations (§4.3–4.4): Hamerly-style
// distance bounds and bounding-box pruning. Verifies the paper's claim that
// "the innermost loop can be skipped in about 80% of the cases" and
// quantifies the distance-computation savings of each optimization.
#include <iostream>

#include "common.hpp"
#include "core/geographer.hpp"
#include "gen/delaunay2d.hpp"
#include "gen/meshes2d.hpp"
#include "graph/metrics.hpp"

namespace {

using namespace geo;

void runCase(const std::string& meshName, const gen::Mesh2& mesh, std::int32_t k,
             Table& table) {
    struct Config {
        const char* name;
        bool hamerly, bbox;
    };
    const Config configs[] = {{"both", true, true},
                              {"bounds-only", true, false},
                              {"bbox-only", false, true},
                              {"neither", false, false}};
    std::int64_t cutBoth = -1;
    for (const auto& cfg : configs) {
        core::Settings s;
        s.hamerlyBounds = cfg.hamerly;
        s.boundingBoxPruning = cfg.bbox;
        // 8 ranks: bbox pruning works against *rank-local* bounding boxes,
        // so it only prunes once each rank holds a small part of the domain.
        Timer t;
        const auto res = core::partitionGeographer<2>(mesh.points, {}, k, 8, s);
        const double seconds = t.seconds();
        const auto cut = graph::edgeCut(mesh.graph, res.partition);
        if (cutBoth < 0) cutBoth = cut;
        table.addRow({meshName, cfg.name, Table::num(seconds, 3),
                      Table::num(res.counters.skipFraction(), 3),
                      std::to_string(res.counters.distanceCalcs),
                      std::to_string(res.counters.bboxBreaks), std::to_string(cut),
                      cut == cutBoth ? "yes" : "NO"});
    }
}

}  // namespace

int main() {
    const std::int32_t k = 32;
    std::cout << "=== Ablation: Hamerly bounds + bbox pruning (k=" << k << ") ===\n\n";
    Table table({"graph", "config", "time[s]", "skipFrac", "distCalcs", "bboxBreaks", "cut",
                 "same cut"});
    const auto del = gen::delaunay2d(40000, 3);
    runCase("delaunay2d-40k", del, k, table);
    const auto tric = gen::refinedTriMesh(40000, 3, 3);
    runCase("hugetric-analog-40k", tric, k, table);
    table.print(std::cout);
    std::cout << "\nPaper claim: with both optimizations the inner loop is skipped in\n"
                 "~80% of the point evaluations, and the optimizations do not change\n"
                 "the result (same cut).\n";
    return 0;
}
