// Table 1: detailed per-instance results for the *large* graphs with
// k = p = 1024 in the paper (alyaTestCaseB, delaunay250M/2B, fesom-jigsaw,
// refinedtrace-00006/7). Scaled to one machine: the largest generated
// analogs at k = 32. Columns: time, cut, maxCommVol, ΣcommVol, diameter,
// timeSpMVComm — best value per instance/metric marked with '*'.
//
//   ./bench_table1_large [--transport sim|socket|tcp] [--ranks N]
//
// `--ranks N` runs Geographer's SPMD phase at width N (baselines stay
// serial). The tool registry builds its own Settings, so `--transport`
// flows through the GEO_TRANSPORT environment fallback; under
// `geo_launch -n N -- bench_table1_large --transport socket --ranks N`
// the Geographer rows run on the real multi-process backend.
#include <cstdlib>
#include <iostream>
#include <string>

#include "common.hpp"
#include "gen/alya.hpp"
#include "gen/climate.hpp"
#include "gen/delaunay2d.hpp"
#include "gen/delaunay3d.hpp"
#include "gen/meshes2d.hpp"

namespace {

using namespace geo;

void printInstance(const std::string& name, std::int64_t n,
                   const std::vector<bench::ToolRow>& rows) {
    // Mark the best value per column.
    auto best = rows.front();
    for (const auto& r : rows) {
        best.seconds = std::min(best.seconds, r.seconds);
        best.cut = std::min(best.cut, r.cut);
        best.maxCommVol = std::min(best.maxCommVol, r.maxCommVol);
        best.totCommVol = std::min(best.totCommVol, r.totCommVol);
        best.harmDiam = std::min(best.harmDiam, r.harmDiam);
        best.spmvCommSeconds = std::min(best.spmvCommSeconds, r.spmvCommSeconds);
    }
    Table table({"graph", "tool", "time", "cut", "maxCommVol", "S commVol", "diameter",
                 "timeSpMVComm"});
    auto mark = [](bool isBest, std::string s) { return isBest ? "*" + s : s; };
    bool first = true;
    for (const auto& r : rows) {
        table.addRow({first ? name + " n=" + std::to_string(n) : "", r.tool,
                      mark(r.seconds == best.seconds, Table::num(r.seconds, 3)),
                      mark(r.cut == best.cut, std::to_string(r.cut)),
                      mark(r.maxCommVol == best.maxCommVol, std::to_string(r.maxCommVol)),
                      mark(r.totCommVol == best.totCommVol, std::to_string(r.totCommVol)),
                      mark(r.harmDiam == best.harmDiam, Table::num(r.harmDiam, 4)),
                      mark(r.spmvCommSeconds == best.spmvCommSeconds,
                           Table::num(r.spmvCommSeconds, 4))});
        first = false;
    }
    table.print(std::cout);
    std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
    int ranks = 1;
    const char* usage = " [--transport sim|socket|tcp] [--ranks N]\n";
    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        if (arg == "--transport") {
            if (a + 1 >= argc) {
                std::cerr << "--transport requires a backend\nusage: " << argv[0] << usage;
                return 1;
            }
            // Validate, then hand the choice to the tools through the
            // GEO_TRANSPORT fallback of Settings::resolvedTransport.
            const auto kind = par::parseTransportKind(argv[++a]);
            setenv("GEO_TRANSPORT", par::transportKindName(kind), 1);
        } else if (arg == "--ranks") {
            if (a + 1 >= argc) {
                std::cerr << "--ranks requires a count\nusage: " << argv[0] << usage;
                return 1;
            }
            ranks = std::atoi(argv[++a]);
            if (ranks < 1) {
                std::cerr << "--ranks must be >= 1 (got " << ranks << ")\n";
                return 1;
            }
        } else {
            std::cerr << "unrecognized argument: " << arg << "\nusage: " << argv[0]
                      << usage;
            return 1;
        }
    }

    // Under geo_launch the whole binary runs once per worker; only rank 0
    // prints (the workers join Geographer's socket collectives).
    const bench::MuteNonRoot mute;
    if (std::getenv("GEO_RANK") != nullptr) ranks = bench::workerProcesses();

    const std::int32_t k = 32;
    const double eps = 0.03;
    std::cout << "=== Table 1: large graphs, k=" << k << " (paper: k=p=1024) ===\n"
              << "('*' marks the best value per column; geoKmeans SPMD width: "
              << ranks << ")\n\n";

    struct Case2 {
        std::string name;
        gen::Mesh2 mesh;
    };
    // Large-analog instances, one per paper family.
    std::vector<Case2> cases2;
    cases2.push_back({"delaunay-large", gen::delaunay2d(200000, 1)});
    cases2.push_back({"refinedtrace-analog", gen::refinedTriMesh(150000, 1, 2)});
    cases2.push_back({"fesom-jigsaw-analog", gen::climate25d(120000, 40, 3)});

    for (auto& c : cases2)
        printInstance(c.name, c.mesh.numVertices(),
                      bench::runAllTools<2>(c.mesh, k, eps, 1, 20,
                                            /*computeDiameter=*/true, ranks));

    const auto alya = gen::alya3d(100000, 7, 4);
    printInstance("alyaTestCaseB-analog", alya.numVertices(),
                  bench::runAllTools<3>(alya, k, eps, 1, 20,
                                        /*computeDiameter=*/true, ranks));
    const auto del3 = gen::delaunay3d(60000, 5);
    printInstance("delaunay3d-large", del3.numVertices(),
                  bench::runAllTools<3>(del3, k, eps, 1, 20,
                                        /*computeDiameter=*/true, ranks));

    std::cout << "Paper shape: geoKmeans leads S commVol and timeSpMVComm on most rows;\n"
                 "MJ is the strongest competitor; Hsfc has the fastest partitioning time.\n";
    return 0;
}
