// Online routing throughput: queries per second of the serving subsystem
// (src/serve) as a function of batch size × thread count × block count.
//
// For each k, the bench partitions a uniform point cloud once, freezes the
// resulting weighted-Voronoi diagram into a PartitionSnapshot, and measures
//   * naive    — the seed-style per-point scan: one sqrt + one divide per
//                candidate center, in the effective-distance domain,
//   * single   — Router::route(point): the low-latency path (one atomic
//                shared_ptr load + one descent per query),
//   * batched  — Router::route(span): the cache-blocked squared-domain
//                kernel, fanned over the router's worker threads.
// Every batched/single result is verified against the engine's partition
// before timing (the serving exactness contract).
//
// Acceptance (ISSUE 5): batched routing >= 3x the naive scan at n=1M,
// k=64, single-thread. `--json PATH` writes BENCH_serve.json for the CI
// bench trajectory.
//
//   ./bench_serve_qps [n] [--json PATH]
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/geographer.hpp"
#include "serve/router.hpp"
#include "serve/snapshot.hpp"
#include "support/mem.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace geo;

struct Row {
    std::int32_t k = 0;
    std::string mode;  ///< "naive", "single", "batched"
    int threads = 1;
    std::int64_t batch = 0;  ///< 0 for naive/single
    bool kdTree = false;
    double seconds = 0.0;
    double qps = 0.0;
};

/// The reference cost model: the seed implementation's per-candidate loop,
/// sqrt domain, no blocking, no SoA — what a service would do without the
/// snapshot structure.
std::int64_t naiveScan(std::span<const Point2> points, std::span<const Point2> centers,
                       std::span<const double> influence,
                       std::span<std::int32_t> out) {
    std::int64_t checksum = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        double best = std::numeric_limits<double>::infinity();
        std::int32_t bestC = -1;
        for (std::size_t c = 0; c < centers.size(); ++c) {
            const double eDist = distance(points[i], centers[c]) / influence[c];
            if (eDist < best) {
                best = eDist;
                bestC = static_cast<std::int32_t>(c);
            }
        }
        out[i] = bestC;
        checksum += bestC;
    }
    return checksum;
}

void writeJson(const std::string& path, std::int64_t n, const std::vector<Row>& rows,
               double speedup) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write " << path << "\n";
        return;
    }
    out << "{\n  \"bench\": \"serve_qps\",\n  \"instance\": \"uniform2d\",\n"
        << "  \"n\": " << n << ",\n"
        << "  \"peak_rss_bytes\": " << geo::support::peakRssBytes() << ",\n"
        << "  \"batched_vs_naive_speedup_k64_t1\": " << speedup << ",\n"
        << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        out << "    {\"k\": " << r.k << ", \"mode\": \"" << r.mode
            << "\", \"threads\": " << r.threads << ", \"batch\": " << r.batch
            << ", \"kdTree\": " << (r.kdTree ? "true" : "false")
            << ", \"seconds\": " << r.seconds << ", \"qps\": " << r.qps << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
    std::int64_t n = 1'000'000;
    std::string jsonPath;
    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        if (arg == "--json") {
            if (a + 1 >= argc) {
                std::cerr << "--json requires a path\nusage: " << argv[0]
                          << " [n] [--json PATH]\n";
                return 1;
            }
            jsonPath = argv[++a];
        } else if (!arg.empty() && arg.find_first_not_of("0123456789") == std::string::npos) {
            n = std::atoll(arg.c_str());
        } else {
            std::cerr << "unrecognized argument: " << arg << "\nusage: " << argv[0]
                      << " [n] [--json PATH]\n";
            return 1;
        }
    }
    if (n < 1000) {
        std::cerr << "n must be >= 1000 (got " << n << ")\n";
        return 1;
    }

    std::cout << "=== Online routing QPS (uniform2d n=" << n << ") ===\n\n";
    Xoshiro256 rng(1234);
    std::vector<Point2> points(static_cast<std::size_t>(n));
    for (auto& p : points) {
        p[0] = rng.uniform();
        p[1] = rng.uniform();
    }

    std::vector<Row> rows;
    double naiveSecondsK64 = 0.0, batchedSecondsK64 = 0.0;

    Table table({"k", "mode", "threads", "batch", "kdTree", "seconds", "Mqps"});
    for (const std::int32_t k : {16, 64, 256}) {
        core::Settings settings;
        const auto res = core::partitionGeographer<2>(points, {}, k, /*ranks=*/1, settings);
        const auto snap = serve::PartitionSnapshot<2>::fromResult(res, 1);
        const auto centers = core::unflattenCenters<2>(res.centerCoords);
        const auto& influence = res.assignmentInfluence.empty()
                                    ? res.influence
                                    : res.assignmentInfluence;

        std::vector<std::int32_t> routed(points.size(), -1);

        const auto addRow = [&](const std::string& mode, int threads,
                                std::int64_t batch, double seconds) {
            Row row;
            row.k = k;
            row.mode = mode;
            row.threads = threads;
            row.batch = batch;
            row.kdTree = snap.usesKdTree();
            row.seconds = seconds;
            row.qps = static_cast<double>(n) / seconds;
            rows.push_back(row);
            table.addRow({std::to_string(k), mode, std::to_string(threads),
                          batch > 0 ? std::to_string(batch) : std::string("-"),
                          snap.usesKdTree() ? "yes" : "no", Table::num(seconds, 4),
                          Table::num(row.qps / 1e6, 3)});
        };

        // Naive per-point sqrt-domain scan (single thread).
        {
            Timer timer;
            const auto checksum = naiveScan(points, centers, influence, routed);
            const double seconds = timer.seconds();
            addRow("naive", 1, 0, seconds);
            if (k == 64) naiveSecondsK64 = seconds;
            if (checksum < 0) std::cerr << "impossible checksum\n";
        }

        // Low-latency single-point path (router, one query per call).
        {
            serve::Router<2> router(1);
            router.publish(snap);
            Timer timer;
            for (std::size_t i = 0; i < points.size(); ++i)
                routed[i] = router.route(points[i]);
            addRow("single", 1, 0, timer.seconds());
            if (routed != res.partition) {
                std::cerr << "FAIL: single-point routing diverged from the partition\n";
                return 1;
            }
        }

        // Compact fp32-center snapshot (single thread, one batch size): the
        // guard re-resolves any lane fp32 could flip, so results must stay
        // identical to the engine's partition — verified below like every
        // other mode.
        {
            serve::SnapshotOptions compactOptions;
            compactOptions.compactCenters = true;
            const auto compactSnap =
                serve::PartitionSnapshot<2>::fromResult(res, 1, 0, compactOptions);
            serve::Router<2> router(1);
            router.publish(compactSnap);
            std::fill(routed.begin(), routed.end(), -1);
            Timer timer;
            for (std::int64_t lo = 0; lo < n; lo += 16384) {
                const auto len = static_cast<std::size_t>(std::min<std::int64_t>(16384, n - lo));
                router.route(std::span<const Point2>(points.data() + lo, len),
                             std::span<std::int32_t>(routed.data() + lo, len));
            }
            addRow("compact", 1, 16384, timer.seconds());
            if (routed != res.partition) {
                std::cerr << "FAIL: compact fp32 routing diverged from the partition\n";
                return 1;
            }
            // The router holds its own copy of the snapshot; read the
            // fallback counter from the copy that actually served.
            std::cout << "k=" << k << " compact fp32 fallbacks: "
                      << router.snapshot()->compactFallbacks() << " / " << n << "\n";
        }

        // Batched path: batch size x thread count.
        for (const int threads : {1, 2, 4, 8}) {
            serve::Router<2> router(threads);
            router.publish(snap);
            for (const std::int64_t batch : {16384LL, 262144LL,
                                             static_cast<long long>(n)}) {
                std::fill(routed.begin(), routed.end(), -1);
                Timer timer;
                for (std::int64_t lo = 0; lo < n; lo += batch) {
                    const auto len = static_cast<std::size_t>(std::min(batch, n - lo));
                    router.route(
                        std::span<const Point2>(points.data() + lo, len),
                        std::span<std::int32_t>(routed.data() + lo, len));
                }
                const double seconds = timer.seconds();
                addRow("batched", threads, batch, seconds);
                if (routed != res.partition) {
                    std::cerr << "FAIL: batched routing diverged from the partition\n";
                    return 1;
                }
                if (k == 64 && threads == 1 && batch == 16384)
                    batchedSecondsK64 = seconds;
            }
        }
    }
    table.print(std::cout);

    const double speedup =
        batchedSecondsK64 > 0.0 ? naiveSecondsK64 / batchedSecondsK64 : 0.0;
    std::cout << "\nbatched (t=1, batch=16384) vs naive sqrt-domain scan at k=64: x"
              << Table::num(speedup, 2)
              << "\n(acceptance: >= 3x at n=1M, k=64, single thread; every batched\n"
                 "and single-point result was verified bitwise against the engine's\n"
                 "partition before timing)\n";

    if (!jsonPath.empty()) writeJson(jsonPath, n, rows, speedup);
    return 0;
}
