// Ablation of the initialization (§4.1, §4.5): space-filling-curve center
// seeding vs uniform random seeding, and the sampled-initialization rounds
// (start from 100 random points per rank, double per round) vs full-set
// iterations from the start.
#include <iostream>

#include "baseline/tools.hpp"
#include "common.hpp"
#include "core/balanced_kmeans.hpp"
#include "core/geographer.hpp"
#include "gen/delaunay2d.hpp"
#include "geometry/box.hpp"
#include "graph/metrics.hpp"
#include "par/comm.hpp"
#include "sfc/hilbert.hpp"
#include "support/rng.hpp"

namespace {

using namespace geo;

/// Sum of squared point-to-center distances (the k-means objective).
double sse(std::span<const Point2> pts, const core::KMeansOutcome<2>& out) {
    double s = 0.0;
    for (std::size_t i = 0; i < pts.size(); ++i)
        s += squaredDistance(pts[i],
                             out.centers[static_cast<std::size_t>(out.assignment[i])]);
    return s;
}

/// Centers at equidistant positions along the Hilbert curve (Alg. 2 line 7).
std::vector<Point2> sfcCenters(std::span<const Point2> pts, std::int32_t k) {
    const auto bb = Box2::around(pts);
    std::vector<std::pair<std::uint64_t, std::size_t>> order;
    for (std::size_t i = 0; i < pts.size(); ++i)
        order.emplace_back(sfc::hilbertIndex<2>(pts[i], bb), i);
    std::sort(order.begin(), order.end());
    std::vector<Point2> centers;
    const auto n = static_cast<std::int64_t>(pts.size());
    for (std::int32_t c = 0; c < k; ++c) {
        const auto pos = static_cast<std::size_t>(
            std::min<std::int64_t>(n - 1, (n * c) / k + n / (2 * static_cast<std::int64_t>(k))));
        centers.push_back(pts[order[pos].second]);
    }
    return centers;
}

std::vector<Point2> randomCenters(std::span<const Point2> pts, std::int32_t k,
                                  std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<Point2> centers;
    for (std::int32_t c = 0; c < k; ++c)
        centers.push_back(pts[rng.below(pts.size())]);
    return centers;
}

/// k-means++ seeding (Arthur & Vassilvitskii; §3.3 of the paper): each new
/// center is drawn with probability proportional to the squared distance to
/// the nearest existing center. The paper rejects it as "inherently
/// sequential ... O(nk)"; we include it to quantify the quality trade-off.
std::vector<Point2> kmeansPlusPlusCenters(std::span<const Point2> pts, std::int32_t k,
                                          std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<Point2> centers{pts[rng.below(pts.size())]};
    std::vector<double> d2(pts.size(), std::numeric_limits<double>::infinity());
    while (static_cast<std::int32_t>(centers.size()) < k) {
        double total = 0.0;
        for (std::size_t i = 0; i < pts.size(); ++i) {
            d2[i] = std::min(d2[i], squaredDistance(pts[i], centers.back()));
            total += d2[i];
        }
        double pick = rng.uniform(0.0, total);
        std::size_t chosen = pts.size() - 1;
        for (std::size_t i = 0; i < pts.size(); ++i) {
            pick -= d2[i];
            if (pick <= 0.0) {
                chosen = i;
                break;
            }
        }
        centers.push_back(pts[chosen]);
    }
    return centers;
}

}  // namespace

int main() {
    const std::int32_t k = 24;
    const auto mesh = gen::delaunay2d(40000, 17);
    std::cout << "=== Ablation: initialization (delaunay2d n=40000, k=" << k << ") ===\n\n";

    Table table({"variant", "SSE", "outerIters", "time[s]", "imbalance"});
    auto run = [&](const std::string& name, std::vector<Point2> centers, bool sampled) {
        core::Settings s;
        s.sampledInitialization = sampled;
        par::runSpmd(1, [&](par::Comm& comm) {
            Timer t;
            const auto out =
                core::balancedKMeans<2>(comm, mesh.points, {}, std::move(centers), s);
            table.addRow({name, Table::num(sse(mesh.points, out), 5),
                          std::to_string(out.counters.outerIterations),
                          Table::num(t.seconds(), 3), Table::num(out.imbalance, 4)});
        });
    };

    run("SFC seeding + sampled init", sfcCenters(mesh.points, k), true);
    run("SFC seeding, full init", sfcCenters(mesh.points, k), false);
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL})
        run("random seeding #" + std::to_string(seed) + ", sampled init",
            randomCenters(mesh.points, k, seed), true);
    Timer kppTimer;
    auto kpp = kmeansPlusPlusCenters(mesh.points, k, 1);
    const double kppSeconds = kppTimer.seconds();
    run("k-means++ seeding (seeding alone took " + Table::num(kppSeconds, 3) + "s)",
        std::move(kpp), true);

    table.print(std::cout);

    // Curve ablation: the full pipeline with Hilbert vs Morton ordering.
    std::cout << "\nCurve choice (full Geographer pipeline, same mesh):\n";
    Table curveTable({"curve", "cut", "totCommVol", "time[s]"});
    for (const auto curve : {core::Curve::Hilbert, core::Curve::Morton}) {
        core::Settings s;
        s.curve = curve;
        Timer t;
        const auto res = core::partitionGeographer<2>(mesh.points, {}, k, 4, s);
        const auto m = graph::evaluatePartition(mesh.graph, res.partition, k, {}, false);
        curveTable.addRow({curve == core::Curve::Hilbert ? "Hilbert" : "Morton",
                           std::to_string(m.edgeCut), std::to_string(m.totalCommVolume),
                           Table::num(t.seconds(), 3)});
    }
    curveTable.print(std::cout);
    std::cout << "\nExpected: SFC seeding converges in fewer outer iterations than random\n"
                 "seeding on average, and sampled init costs roughly one extra full round\n"
                 "while skipping precise work during the wild early phases (§4.5).\n";
    return 0;
}
