// Flat k vs topology-aware hierarchical partitioning.
//
// The paper's pipeline is topology-oblivious: k equal blocks, one level.
// This bench quantifies what matching the partition to the machine buys on
// the §2 metrics plus two topology-weighted ones:
//   * topoCommCost — communication volume with every ghost weighted by the
//     bandwidth factor of the deepest tree level it crosses
//     (graph::topologyCommCost with Topology::blockCostMatrix), and
//   * topoSpMV — modeled per-iteration SpMV halo time under those weights
//     (hier::topologySpmvCommSeconds).
// Both partitioners run at the same epsilon; the flat run maps block b to
// leaf b (the topology-oblivious default). Expectation: comparable epsilon
// and edge cut, measurably lower cross-island volume and modeled SpMV time
// for the hierarchical run.
//
//   ./bench_hier_topology [targetVertices]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/geographer.hpp"
#include "gen/climate.hpp"
#include "gen/delaunay2d.hpp"
#include "gen/grid.hpp"
#include "graph/metrics.hpp"
#include "hier/hier_partition.hpp"
#include "hier/topology.hpp"
#include "support/table.hpp"

namespace {

using geo::core::Settings;
using geo::hier::Topology;
using geo::hier::TopologyLevel;

struct Row {
    std::string instance;
    std::string scheme;
    double imbalance = 0.0;
    std::int64_t edgeCut = 0;
    std::int64_t totCommVol = 0;
    double crossIslandVol = 0.0;
    double topoCommCost = 0.0;
    double topoSpmvUs = 0.0;
};

/// Cost matrix that counts only ghosts crossing the top (island) level.
std::vector<double> crossIslandMatrix(const Topology& topo) {
    const std::int32_t k = topo.leafCount();
    std::vector<double> m(static_cast<std::size_t>(k) * static_cast<std::size_t>(k), 0.0);
    for (std::int32_t a = 0; a < k; ++a)
        for (std::int32_t b = 0; b < k; ++b)
            if (a != b && topo.divergenceLevel(a, b) == 0)
                m[static_cast<std::size_t>(a) * static_cast<std::size_t>(k) +
                  static_cast<std::size_t>(b)] = 1.0;
    return m;
}

Row evaluate(const std::string& instance, const std::string& scheme,
             const geo::gen::Mesh2& mesh, const geo::graph::Partition& part,
             const Topology& topo) {
    const std::int32_t k = topo.leafCount();
    const auto caps = topo.leafCapacities();
    Row row;
    row.instance = instance;
    row.scheme = scheme;
    const auto m = geo::graph::evaluatePartition(mesh.graph, part, k, mesh.weights,
                                                 /*computeDiameter=*/false, caps);
    row.imbalance = m.imbalance;
    row.edgeCut = m.edgeCut;
    row.totCommVol = m.totalCommVolume;
    row.crossIslandVol =
        geo::graph::topologyCommCost(mesh.graph, part, k, crossIslandMatrix(topo));
    row.topoCommCost =
        geo::graph::topologyCommCost(mesh.graph, part, k, topo.blockCostMatrix());
    row.topoSpmvUs = geo::hier::topologySpmvCommSeconds(mesh.graph, part, topo) * 1e6;
    return row;
}

}  // namespace

int main(int argc, char** argv) {
    const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 20000;
    const int ranks = 4;
    Settings s;
    s.epsilon = 0.05;

    // 8 islands of 8 nodes with the cost model's 2.5x cross-island
    // bandwidth penalty, plus a 3-level variant (islands -> nodes ->
    // sockets). Note the flat baseline is strongest when the island count
    // aligns with the Hilbert curve's 4-way recursive structure on a
    // uniform square (curve quarters are quadrants); these shapes are the
    // realistic non-aligned ones.
    Topology two;
    two.levels.push_back(TopologyLevel{8, {}, 2.5});
    two.levels.push_back(TopologyLevel{8, {}, 1.0});
    Topology three;
    three.levels.push_back(TopologyLevel{3, {}, 2.5});
    three.levels.push_back(TopologyLevel{3, {}, 1.5});
    three.levels.push_back(TopologyLevel{3, {}, 1.0});

    const std::int32_t side =
        static_cast<std::int32_t>(std::lround(std::sqrt(static_cast<double>(n))));
    std::vector<std::pair<std::string, geo::gen::Mesh2>> meshes;
    meshes.emplace_back("grid2d", geo::gen::grid2d(side, side));
    meshes.emplace_back("delaunay2d", geo::gen::delaunay2d(n, 1));
    meshes.emplace_back("climate25d", geo::gen::climate25d(n, 3, 1));

    const std::vector<std::pair<const Topology*, std::string>> topologies{
        {&two, "2-level islands(8) x nodes(8), cross factor 2.5"},
        {&three, "3-level islands(3) x nodes(3) x sockets(3), factors 2.5/1.5"}};

    for (const auto& [topo, label] : topologies) {
        const std::int32_t k = topo->leafCount();
        std::cout << "=== " << label << "  (k = " << k << ", epsilon = " << s.epsilon
                  << ", ranks = " << ranks << ") ===\n";
        geo::Table table({"instance", "scheme", "imbalance", "edgeCut", "totCommVol",
                          "crossIslandVol", "topoCommCost", "vsFlat", "topoSpMV_us"});
        geo::core::KMeansCounters flatCounters, hierCounters;
        for (const auto& [name, mesh] : meshes) {
            const auto flat = geo::core::partitionGeographer<2>(
                mesh.points, mesh.weights, k, ranks, s);
            const auto hier = geo::hier::partitionHierarchical<2>(
                mesh.points, mesh.weights, *topo, ranks, s);
            flatCounters.merge(flat.counters);
            hierCounters.merge(hier.counters);
            const Row flatRow = evaluate(name, "flat", mesh, flat.partition, *topo);
            const Row hierRow = evaluate(name, "hier", mesh, hier.partition, *topo);
            for (const Row* row : {&flatRow, &hierRow}) {
                table.addRow({row->instance, row->scheme,
                              geo::Table::num(row->imbalance, 4),
                              std::to_string(row->edgeCut), std::to_string(row->totCommVol),
                              geo::Table::num(row->crossIslandVol, 6),
                              geo::Table::num(row->topoCommCost, 6),
                              row == &hierRow && flatRow.topoCommCost > 0.0
                                  ? geo::Table::num(row->topoCommCost / flatRow.topoCommCost, 3)
                                  : std::string("1"),
                              geo::Table::num(row->topoSpmvUs, 4)});
            }
        }
        table.print(std::cout);
        // Assignment-engine counters over the three instances: the per-node
        // hierarchical solves inherit the fast engine (batched
        // squared-distance kernels, lazy epoch bounds) like the flat run.
        const auto printCounters = [](const char* name,
                                      const geo::core::KMeansCounters& c) {
            std::cout << name << ": distCalcs=" << c.distanceCalcs
                      << " batched=" << c.batchedDistanceCalcs
                      << " epochApps=" << c.epochBoundApplications << " skip%="
                      << geo::Table::num(100.0 * c.skipFraction(), 3) << '\n';
        };
        printCounters("engine counters flat", flatCounters);
        printCounters("engine counters hier", hierCounters);
        std::cout << '\n';
    }
    std::cout << "flat = partitionGeographer with k blocks, block b on leaf b;\n"
                 "hier = partitionHierarchical over the topology tree.\n"
                 "crossIslandVol counts only ghosts crossing the top level;\n"
                 "topoCommCost weighs every ghost by its level's bandwidth factor;\n"
                 "topoSpMV is the modeled slowest-block halo time per SpMV iteration.\n";
    return 0;
}
