// Figure 3: weak and strong scaling on the DelaunayX series.
//
// (a) Weak scaling: p = k doubles from 2 to 64 with a fixed number of
//     points per process (paper: 32 -> 8192 procs at 250k points/proc; we
//     scale to 4096 points/proc on one machine).
// (b) Strong scaling: fixed mesh, k = p swept (paper: Delaunay2B with
//     k = 1024 -> 16384).
//
// Geographer runs genuinely SPMD on the simulated runtime: reported time is
// max-rank CPU time + modeled communication from the counted collectives.
// The serial baselines are projected with the per-algorithm comm model
// (DESIGN.md §2). The shape to reproduce: Geographer/MJ/HSFC scale nearly
// flat (weak) and downward (strong); RCB/RIB degrade visibly.
//
//   ./bench_fig3_scaling [--transport sim|socket|tcp] [--ranks N]
//
// `--ranks N` replaces the p sweep with the single width N — the mode for
// `geo_launch -n N -- bench_fig3_scaling --transport socket --ranks N`,
// where only a run whose SPMD width matches the launched process mesh
// engages the real socket backend (any other width silently falls back to
// the simulator, which would mislabel the rows).
#include <cstdlib>
#include <iostream>
#include <string>

#include "baseline/rcb_dist.hpp"
#include "baseline/tools.hpp"
#include "common.hpp"
#include "core/geographer.hpp"
#include "gen/delaunay2d.hpp"

namespace {

using namespace geo;

double geographerModeledSeconds(const gen::Mesh2& mesh, std::int32_t k, int ranks,
                                par::TransportKind transport) {
    core::Settings settings;
    settings.epsilon = 0.03;
    settings.transport = transport;
    const auto res = core::partitionGeographer<2>(mesh.points, {}, k, ranks, settings);
    return res.modeledSeconds;
}

/// Measured SPMD RCB: per-rank CPU + modeled comm, like Geographer.
double rcbSpmdModeledSeconds(const gen::Mesh2& mesh, std::int32_t k, int ranks) {
    std::vector<double> score(static_cast<std::size_t>(ranks), 0.0);
    par::runSpmd(ranks, [&](par::Comm& comm) {
        const auto n = static_cast<std::int64_t>(mesh.points.size());
        const std::int64_t lo = n * comm.rank() / ranks;
        const std::int64_t hi = n * (comm.rank() + 1) / ranks;
        std::vector<Point2> local(mesh.points.begin() + lo, mesh.points.begin() + hi);
        const double cpu0 = comm.cpuSeconds();
        (void)baseline::rcbDistributed<2>(comm, local, {}, k);
        score[static_cast<std::size_t>(comm.rank())] =
            (comm.cpuSeconds() - cpu0) + comm.stats().modeledCommSeconds;
    });
    return *std::max_element(score.begin(), score.end());
}

/// Serial baseline seconds for the given mesh/k (measured once per size).
double serialSeconds(const baseline::Tool<2>& tool, const gen::Mesh2& mesh, std::int32_t k) {
    return tool.run(mesh.points, {}, k, 0.03, 1, 1).seconds;
}

}  // namespace

int main(int argc, char** argv) {
    par::TransportKind transport = par::TransportKind::Auto;
    int ranksArg = 0;
    const char* usage = " [--transport sim|socket|tcp] [--ranks N]\n";
    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        if (arg == "--transport") {
            if (a + 1 >= argc) {
                std::cerr << "--transport requires a backend\nusage: " << argv[0] << usage;
                return 1;
            }
            transport = par::parseTransportKind(argv[++a]);
        } else if (arg == "--ranks") {
            if (a + 1 >= argc) {
                std::cerr << "--ranks requires a count\nusage: " << argv[0] << usage;
                return 1;
            }
            ranksArg = std::atoi(argv[++a]);
            if (ranksArg < 2) {
                std::cerr << "--ranks must be >= 2 (got " << ranksArg << ")\n";
                return 1;
            }
        } else {
            std::cerr << "unrecognized argument: " << arg << "\nusage: " << argv[0]
                      << usage;
            return 1;
        }
    }

    // Under geo_launch every worker runs the whole binary; non-root ranks
    // join the socket collectives of the matching-width runs but stay quiet.
    const bench::MuteNonRoot mute;

    const par::CostModel model;
    std::vector<int> procs{2, 4, 8, 16, 32, 64};
    if (ranksArg > 0) procs = {ranksArg};

    std::cout << "=== Fig. 3a: weak scaling, DelaunayX series (4096 points/proc) ===\n"
              << "(geoKmeans and Rcb-spmd are measured SPMD runs; the other columns are\n"
              << " serial measurements projected with the per-algorithm comm model)\n";
    Table weak({"p=k", "n", "geoKmeans[s]", "Rcb-spmd[s]", "MJ[s]", "Rcb[s]", "Rib[s]",
                "Hsfc[s]"});
    for (const int p : procs) {
        const std::int64_t n = 4096LL * p;
        const auto mesh = gen::delaunay2d(n, 100 + static_cast<std::uint64_t>(p));
        std::vector<std::string> row{std::to_string(p), std::to_string(n)};
        row.push_back(Table::num(geographerModeledSeconds(mesh, p, p, transport), 4));
        row.push_back(Table::num(rcbSpmdModeledSeconds(mesh, p, p), 4));
        for (std::size_t t = 1; t < baseline::tools2().size(); ++t) {
            const auto& tool = baseline::tools2()[t];
            const double serial = serialSeconds(tool, mesh, p);
            row.push_back(Table::num(
                baseline::modeledScaling(tool.kind, n, p, p, 2, serial, model).total(), 4));
        }
        weak.addRow(row);
    }
    weak.print(std::cout);

    std::cout << "\n=== Fig. 3b: strong scaling, fixed Delaunay mesh (n=262144) ===\n";
    const auto big = gen::delaunay2d(262144, 77);
    Table strong({"p=k", "geoKmeans[s]", "MJ[s]", "Rcb[s]", "Rib[s]", "Hsfc[s]"});
    for (const int p : procs) {
        std::vector<std::string> row{std::to_string(p)};
        row.push_back(Table::num(geographerModeledSeconds(big, p, p, transport), 4));
        for (std::size_t t = 1; t < baseline::tools2().size(); ++t) {
            const auto& tool = baseline::tools2()[t];
            const double serial = serialSeconds(tool, big, p);
            row.push_back(Table::num(
                baseline::modeledScaling(tool.kind, 262144, p, p, 2, serial, model).total(),
                4));
        }
        strong.addRow(row);
    }
    strong.print(std::cout);
    std::cout << "\nPaper shape: near-flat weak scaling for geoKmeans/MJ/Hsfc up to large p;\n"
                 "Rcb/Rib running time grows with every doubling.\n";
    return 0;
}
