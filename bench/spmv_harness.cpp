// Distributed SpMV harness: the paper's timeSpMVComm measurement done the
// MPI way — the graph is redistributed according to each tool's partition
// onto k = p simulated ranks and 100 multiplications are executed through
// the runtime's collectives. Complements the plan-based estimate used in
// Tables 1/2 and validates that both agree on the tool ranking.
#include <iostream>

#include "baseline/tools.hpp"
#include "common.hpp"
#include "gen/delaunay2d.hpp"
#include "spmv/dist_spmv.hpp"
#include "spmv/spmv.hpp"

int main() {
    using namespace geo;
    const std::int32_t k = 16;
    const int ranks = 16;
    const auto mesh = gen::delaunay2d(30000, 5);
    std::cout << "=== Distributed SpMV (delaunay2d n=30000, k=p=" << k
              << ", 100 iterations) ===\n\n";

    Table table({"tool", "haloBytes/iter", "distComm[s/iter]", "planComm[s/iter]",
                 "compute[s/iter]"});
    for (const auto& tool : baseline::tools2()) {
        const auto res = tool.run(mesh.points, {}, k, 0.03, 1, 1);
        const auto dist = spmv::runSpmvDistributed(mesh.graph, res.partition, k, ranks, 100);
        const auto plan = spmv::runSpmv(mesh.graph, res.partition, k, 10);
        table.addRow({tool.name, std::to_string(dist.haloBytesPerIteration),
                      Table::num(dist.commSecondsPerIteration, 4),
                      Table::num(plan.modeledCommSecondsPerIteration, 4),
                      Table::num(dist.computeSecondsPerIteration, 4)});
    }
    table.print(std::cout);
    std::cout << "\nBoth communication estimates must rank the tools identically;\n"
                 "geoKmeans should move the fewest halo bytes (paper Tables 1-2).\n";
    return 0;
}
