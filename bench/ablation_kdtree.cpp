// §4.3 claim check: "Nearest-neighbor data structures like kd-trees are
// outperformed by simpler distance bounds in most published experiments."
// Runs the identical balanced k-means with (a) Hamerly bounds + bbox
// pruning, (b) a kd-tree over the centers, (c) kd-tree + Hamerly skip,
// (d) plain linear scans, and compares wall time at several k.
#include <iostream>

#include "common.hpp"
#include "core/geographer.hpp"
#include "gen/delaunay2d.hpp"
#include "graph/metrics.hpp"

int main() {
    using namespace geo;
    const auto mesh = gen::delaunay2d(40000, 21);
    std::cout << "=== Ablation: distance bounds vs kd-tree (delaunay2d n=40000) ===\n\n";

    Table table({"k", "bounds+bbox[s]", "kdtree[s]", "kdtree+bounds[s]", "linear[s]",
                 "same cut"});
    for (const std::int32_t k : {8, 32, 128}) {
        auto run = [&](bool bounds, bool bbox, bool kdtree) {
            core::Settings s;
            s.hamerlyBounds = bounds;
            s.boundingBoxPruning = bbox;
            s.useKdTree = kdtree;
            Timer t;
            const auto res = core::partitionGeographer<2>(mesh.points, {}, k, 8, s);
            return std::pair(t.seconds(), graph::edgeCut(mesh.graph, res.partition));
        };
        const auto [tBounds, cutBounds] = run(true, true, false);
        const auto [tTree, cutTree] = run(false, false, true);
        const auto [tBoth, cutBoth] = run(true, false, true);
        const auto [tLinear, cutLinear] = run(false, false, false);
        const bool same = cutBounds == cutTree && cutTree == cutBoth && cutBoth == cutLinear;
        table.addRow({std::to_string(k), Table::num(tBounds, 3), Table::num(tTree, 3),
                      Table::num(tBoth, 3), Table::num(tLinear, 3), same ? "yes" : "NO"});
    }
    table.print(std::cout);
    std::cout << "\nPaper claim (§4.3): the bounds+bbox configuration beats the kd-tree\n"
                 "(both beat plain linear scans at larger k).\n";
    return 0;
}
