// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures.
#pragma once

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "baseline/tools.hpp"
#include "gen/mesh.hpp"
#include "graph/metrics.hpp"
#include "par/transport/transport.hpp"
#include "spmv/spmv.hpp"
#include "support/mem.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace geo::bench {

/// Multi-process awareness: under `geo_launch -n N -- bench_...` the whole
/// binary executes once per worker process, so tables and BENCH_*.json must
/// come from rank 0 only. Outside a worker every process is "root".
[[nodiscard]] inline bool isRootProcess() {
    const char* rank = std::getenv("GEO_RANK");
    return rank == nullptr || std::string_view(rank) == "0";
}

/// Real worker-process count this binary runs across (1 outside geo_launch).
[[nodiscard]] inline int workerProcesses() {
    return std::getenv("GEO_RANK") == nullptr ? 1 : par::defaultRanks();
}

/// Display name of the transport a Settings-carried kind will resolve to —
/// what the BENCH_*.json "transport" field records.
[[nodiscard]] inline const char* resolvedTransportName(par::TransportKind kind) {
    return par::transportKindName(kind == par::TransportKind::Auto
                                      ? par::envTransportKind()
                                      : kind);
}

/// Emit the peak-RSS field every BENCH_*.json carries, so the bench
/// trajectory tracks memory alongside time. Callers place it right after
/// the opening lines of the object (note the trailing comma + newline).
inline void writePeakRssField(std::ostream& out) {
    out << "  \"peak_rss_bytes\": " << support::peakRssBytes() << ",\n";
}

/// Silences std::cout on non-root worker ranks for the lifetime of the
/// object. Restores the original stream buffer on destruction — std::cout
/// is flushed again during static teardown, after any main-local filebuf
/// is gone.
class MuteNonRoot {
public:
    MuteNonRoot() {
        if (isRootProcess()) return;
        devnull_.open("/dev/null");
        saved_ = std::cout.rdbuf(devnull_.rdbuf());
    }
    ~MuteNonRoot() {
        if (saved_ != nullptr) std::cout.rdbuf(saved_);
    }
    MuteNonRoot(const MuteNonRoot&) = delete;
    MuteNonRoot& operator=(const MuteNonRoot&) = delete;

private:
    std::ofstream devnull_;
    std::streambuf* saved_ = nullptr;
};

/// Quality + timing of one tool on one instance (one row of Tables 1/2).
struct ToolRow {
    std::string tool;
    double seconds = 0.0;
    std::int64_t cut = 0;
    std::int64_t maxCommVol = 0;
    std::int64_t totCommVol = 0;
    double harmDiam = 0.0;
    double imbalance = 0.0;
    double spmvCommSeconds = 0.0;
};

/// Run every registered tool on a mesh and collect the §2 metrics.
/// `spmvIterations` = 0 skips the SpMV benchmark (faster sweeps).
/// `ranks` only affects Geographer (the baselines run serially); pairing it
/// with GEO_TRANSPORT=socket under geo_launch puts its SPMD phase on the
/// real multi-process backend.
template <int D>
std::vector<ToolRow> runAllTools(const gen::Mesh<D>& mesh, std::int32_t k, double eps,
                                 std::uint64_t seed, int spmvIterations = 20,
                                 bool computeDiameter = true, int ranks = 1) {
    const auto& tools = [] {
        if constexpr (D == 2) return baseline::tools2();
        else return baseline::tools3();
    }();
    std::vector<ToolRow> rows;
    for (const auto& tool : tools) {
        const auto res = tool.run(mesh.points, mesh.weights, k, eps, ranks, seed);
        const auto m =
            graph::evaluatePartition(mesh.graph, res.partition, k, mesh.weights,
                                     computeDiameter);
        ToolRow row;
        row.tool = tool.name;
        row.seconds = res.seconds;
        row.cut = m.edgeCut;
        row.maxCommVol = m.maxCommVolume;
        row.totCommVol = m.totalCommVolume;
        row.harmDiam = m.harmonicMeanDiameter;
        row.imbalance = m.imbalance;
        if (spmvIterations > 0) {
            row.spmvCommSeconds =
                spmv::runSpmv(mesh.graph, res.partition, k, spmvIterations)
                    .modeledCommSecondsPerIteration;
        }
        rows.push_back(row);
    }
    return rows;
}

/// Geometric mean (the aggregation of Fig. 2; the paper uses the harmonic
/// mean only for diameters, which our evaluatePartition already applies
/// within an instance).
inline double geometricMean(const std::vector<double>& values) {
    if (values.empty()) return 0.0;
    double logSum = 0.0;
    for (const double v : values) logSum += std::log(std::max(v, 1e-300));
    return std::exp(logSum / static_cast<double>(values.size()));
}

/// Accumulates tool/metric ratios relative to the baseline tool (Fig. 2).
class RatioAggregator {
public:
    void add(const std::vector<ToolRow>& rows) {
        const auto& base = rows.front();  // geoKmeans is first
        for (const auto& row : rows) {
            auto push = [&](const char* metric, double value, double baseValue) {
                if (baseValue > 0.0)
                    ratios_[row.tool][metric].push_back(value / baseValue);
            };
            push("edgeCut", static_cast<double>(row.cut), static_cast<double>(base.cut));
            push("maxCommVol", static_cast<double>(row.maxCommVol),
                 static_cast<double>(base.maxCommVol));
            push("totCommVol", static_cast<double>(row.totCommVol),
                 static_cast<double>(base.totCommVol));
            push("harmDiam", row.harmDiam, base.harmDiam);
            push("timeComm", row.spmvCommSeconds, base.spmvCommSeconds);
        }
    }

    /// Print one row per tool with the geometric-mean ratio per metric.
    void print(std::ostream& os, const std::string& title) const {
        os << title << " (ratios vs geoKmeans, geometric mean; >1 means worse)\n";
        Table table({"tool", "edgeCut", "maxCommVol", "totCommVol", "harmDiam", "timeComm"});
        for (const auto& [tool, metrics] : ratios_) {
            auto get = [&](const char* name) {
                const auto it = metrics.find(name);
                return it == metrics.end() ? 0.0 : geometricMean(it->second);
            };
            table.addRow({tool, Table::num(get("edgeCut"), 3), Table::num(get("maxCommVol"), 3),
                          Table::num(get("totCommVol"), 3), Table::num(get("harmDiam"), 3),
                          Table::num(get("timeComm"), 3)});
        }
        table.print(os);
        os << '\n';
    }

private:
    std::map<std::string, std::map<std::string, std::vector<double>>> ratios_;
};

}  // namespace geo::bench
