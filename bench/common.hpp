// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures.
#pragma once

#include <cmath>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "baseline/tools.hpp"
#include "gen/mesh.hpp"
#include "graph/metrics.hpp"
#include "spmv/spmv.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace geo::bench {

/// Quality + timing of one tool on one instance (one row of Tables 1/2).
struct ToolRow {
    std::string tool;
    double seconds = 0.0;
    std::int64_t cut = 0;
    std::int64_t maxCommVol = 0;
    std::int64_t totCommVol = 0;
    double harmDiam = 0.0;
    double imbalance = 0.0;
    double spmvCommSeconds = 0.0;
};

/// Run every registered tool on a mesh and collect the §2 metrics.
/// `spmvIterations` = 0 skips the SpMV benchmark (faster sweeps).
template <int D>
std::vector<ToolRow> runAllTools(const gen::Mesh<D>& mesh, std::int32_t k, double eps,
                                 std::uint64_t seed, int spmvIterations = 20,
                                 bool computeDiameter = true) {
    const auto& tools = [] {
        if constexpr (D == 2) return baseline::tools2();
        else return baseline::tools3();
    }();
    std::vector<ToolRow> rows;
    for (const auto& tool : tools) {
        const auto res = tool.run(mesh.points, mesh.weights, k, eps, /*ranks=*/1, seed);
        const auto m =
            graph::evaluatePartition(mesh.graph, res.partition, k, mesh.weights,
                                     computeDiameter);
        ToolRow row;
        row.tool = tool.name;
        row.seconds = res.seconds;
        row.cut = m.edgeCut;
        row.maxCommVol = m.maxCommVolume;
        row.totCommVol = m.totalCommVolume;
        row.harmDiam = m.harmonicMeanDiameter;
        row.imbalance = m.imbalance;
        if (spmvIterations > 0) {
            row.spmvCommSeconds =
                spmv::runSpmv(mesh.graph, res.partition, k, spmvIterations)
                    .modeledCommSecondsPerIteration;
        }
        rows.push_back(row);
    }
    return rows;
}

/// Geometric mean (the aggregation of Fig. 2; the paper uses the harmonic
/// mean only for diameters, which our evaluatePartition already applies
/// within an instance).
inline double geometricMean(const std::vector<double>& values) {
    if (values.empty()) return 0.0;
    double logSum = 0.0;
    for (const double v : values) logSum += std::log(std::max(v, 1e-300));
    return std::exp(logSum / static_cast<double>(values.size()));
}

/// Accumulates tool/metric ratios relative to the baseline tool (Fig. 2).
class RatioAggregator {
public:
    void add(const std::vector<ToolRow>& rows) {
        const auto& base = rows.front();  // geoKmeans is first
        for (const auto& row : rows) {
            auto push = [&](const char* metric, double value, double baseValue) {
                if (baseValue > 0.0)
                    ratios_[row.tool][metric].push_back(value / baseValue);
            };
            push("edgeCut", static_cast<double>(row.cut), static_cast<double>(base.cut));
            push("maxCommVol", static_cast<double>(row.maxCommVol),
                 static_cast<double>(base.maxCommVol));
            push("totCommVol", static_cast<double>(row.totCommVol),
                 static_cast<double>(base.totCommVol));
            push("harmDiam", row.harmDiam, base.harmDiam);
            push("timeComm", row.spmvCommSeconds, base.spmvCommSeconds);
        }
    }

    /// Print one row per tool with the geometric-mean ratio per metric.
    void print(std::ostream& os, const std::string& title) const {
        os << title << " (ratios vs geoKmeans, geometric mean; >1 means worse)\n";
        Table table({"tool", "edgeCut", "maxCommVol", "totCommVol", "harmDiam", "timeComm"});
        for (const auto& [tool, metrics] : ratios_) {
            auto get = [&](const char* name) {
                const auto it = metrics.find(name);
                return it == metrics.end() ? 0.0 : geometricMean(it->second);
            };
            table.addRow({tool, Table::num(get("edgeCut"), 3), Table::num(get("maxCommVol"), 3),
                          Table::num(get("totCommVol"), 3), Table::num(get("harmDiam"), 3),
                          Table::num(get("timeComm"), 3)});
        }
        table.print(os);
        os << '\n';
    }

private:
    std::map<std::string, std::map<std::string, std::vector<double>>> ratios_;
};

}  // namespace geo::bench
