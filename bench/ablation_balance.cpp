// Ablation of the balancing scheme (§4.2): influence-change cap, influence
// erosion, number of balance iterations between center movements, and the
// two epsilon values the paper uses (0.03, 0.05). Reports achieved
// imbalance, edge cut and iterations — the trade-offs behind the paper's
// "tuning parameter" remarks.
#include <iostream>

#include "common.hpp"
#include "core/geographer.hpp"
#include "gen/meshes2d.hpp"
#include "graph/metrics.hpp"

int main() {
    using namespace geo;
    const std::int32_t k = 24;
    const auto mesh = gen::refinedTriMesh(30000, 3, 13);  // nonuniform density
    std::cout << "=== Ablation: balancing scheme (hugetric-analog n=30000, k=" << k
              << ") ===\n\n";

    Table table({"variant", "imbalance", "cut", "outerIters", "balanceSweeps"});
    auto run = [&](const std::string& name, const core::Settings& s) {
        const auto res = core::partitionGeographer<2>(mesh.points, {}, k, 1, s);
        table.addRow({name, Table::num(graph::imbalance(res.partition, k), 4),
                      std::to_string(graph::edgeCut(mesh.graph, res.partition)),
                      std::to_string(res.counters.outerIterations),
                      std::to_string(res.counters.balanceIterations)});
    };

    {
        core::Settings s;
        run("default (eps=0.03, cap=5%, erosion on)", s);
    }
    {
        core::Settings s;
        s.epsilon = 0.05;
        run("eps=0.05", s);
    }
    {
        core::Settings s;
        s.influenceErosion = false;
        run("no influence erosion", s);
    }
    {
        core::Settings s;
        s.influenceChangeCap = 0.20;
        run("influence cap 20% (risk of oscillation)", s);
    }
    {
        core::Settings s;
        s.influenceChangeCap = 0.01;
        run("influence cap 1% (slow balancing)", s);
    }
    {
        core::Settings s;
        s.maxBalanceIterations = 3;
        run("maxBalanceIter=3", s);
    }
    {
        core::Settings s;
        s.maxBalanceIterations = 50;
        run("maxBalanceIter=50", s);
    }
    table.print(std::cout);
    std::cout << "\nExpected: every variant meets its epsilon given enough sweeps; small\n"
                 "caps need more sweeps, large caps risk more balance iterations; erosion\n"
                 "mainly guards heterogeneous instances against anomalies.\n";
    return 0;
}
