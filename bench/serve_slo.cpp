// SLO-governed serving under churn: the serve::PartitionService exercised
// across a QPS × churn × repartition-cadence grid.
//
// Every cell runs the full concurrent loop for a fixed window: frontier
// threads issue paced batched route() calls (mostly Low priority, a slice
// High so shedding is observable as a *difference*), a producer streams
// repart::diffSteps churn batches from a Churn scenario into submit(), and
// the background worker keeps republishing warm-started repartitions. The
// row records what the SLO controller saw: p50/p99 route latency from the
// sharded histogram, the misroute rate at the last publish, the staleness
// window (seconds and events), shed/backpressure counters, published
// epochs, and the final admission state.
//
//   ./bench_serve_slo [points] [blocks] [ranks]
//                     [--duration-ms N] [--json PATH]
//                     [--staleness-ms N] [--staleness-events N]
//                     [--queue-bound N] [--p99-ms F]
//                     [--expect-sheds]
//
// `--expect-sheds` makes the binary exit nonzero when the whole sweep shed
// nothing — the chaos CI leg wedges the repartition worker with
// GEO_FAULT=delay:ms=...:op=repart plus a tight --staleness-events bound
// and uses this flag to assert the bounded-staleness contract actually
// tripped (low-priority load shed, high-priority still served).
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "repart/scenarios.hpp"
#include "serve/service.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace geo;

struct Cell {
    double qps = 0.0;        ///< target route() batches per second (whole frontier)
    double churnEps = 0.0;   ///< target churn events per second
    double cadenceMs = 0.0;  ///< repartition interval floor
};

struct Row {
    Cell cell;
    std::uint64_t servedBatches = 0;
    std::uint64_t shed = 0;
    std::uint64_t backpressureWaits = 0;
    std::uint64_t publishedEpochs = 0;
    std::uint64_t appliedEvents = 0;
    double p50 = 0.0;
    double p99 = 0.0;
    double misroute = -1.0;
    double stalenessSeconds = 0.0;
    std::uint64_t stalenessEvents = 0;
    std::string finalState;
};

constexpr std::size_t kQueryBatch = 256;
constexpr int kFrontierThreads = 2;
/// Every 8th frontier batch is High priority: under Shedding the Low
/// slice bounces with Overloaded while this slice keeps being answered —
/// the availability half of the bounded-staleness contract.
constexpr std::uint64_t kHighEvery = 8;

Row runCell(const Cell& cell, std::int64_t points, std::int32_t blocks, int ranks,
            const serve::SloConfig& slo, double durationSeconds) {
    repart::ScenarioConfig scfg;
    scfg.kind = repart::ScenarioKind::Churn;
    scfg.basePoints = points;
    scfg.churnFraction = 0.05;
    scfg.seed = 42;
    repart::Scenario<2> scenario(scfg);

    serve::ServiceConfig<2> cfg;
    cfg.blocks = blocks;
    cfg.ranks = ranks;
    cfg.slo = slo;
    cfg.repartitionIntervalSeconds = cell.cadenceMs / 1000.0;
    serve::PartitionService<2> service(cfg, scenario.current());

    std::atomic<bool> running{true};

    // Churn producer: advance the scenario, diff, submit (blocking —
    // backpressure throttles this thread when ingest falls behind), pace to
    // the cell's target event rate.
    std::thread producer([&] {
        repart::WorkloadStep<2> prev = scenario.current();
        while (running.load(std::memory_order_acquire)) {
            scenario.advance();
            const auto& next = scenario.current();
            auto events = repart::diffSteps(prev, next);
            prev = next;
            const double budget =
                cell.churnEps > 0.0
                    ? static_cast<double>(events.size()) / cell.churnEps
                    : 0.01;
            if (!service.submit(std::move(events))) return;
            std::this_thread::sleep_for(std::chrono::duration<double>(budget));
        }
    });

    // Query frontier: each thread routes a fixed random batch, paced so the
    // threads together hit the cell's batch rate.
    std::vector<std::thread> frontier;
    const double perThreadInterval =
        cell.qps > 0.0 ? static_cast<double>(kFrontierThreads) / cell.qps : 0.0;
    for (int t = 0; t < kFrontierThreads; ++t) {
        frontier.emplace_back([&, t] {
            Xoshiro256 rng(1000 + static_cast<std::uint64_t>(t));
            std::vector<Point2> query(kQueryBatch);
            for (auto& p : query)
                for (int d = 0; d < 2; ++d) p[d] = rng.uniform();
            std::vector<std::int32_t> out(kQueryBatch);
            std::uint64_t i = 0;
            while (running.load(std::memory_order_acquire)) {
                const auto priority = (i % kHighEvery == 0)
                                          ? serve::QueryPriority::High
                                          : serve::QueryPriority::Low;
                (void)service.route(std::span<const Point2>(query),
                                    std::span<std::int32_t>(out), priority);
                ++i;
                if (perThreadInterval > 0.0)
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(perThreadInterval));
            }
        });
    }

    std::this_thread::sleep_for(std::chrono::duration<double>(durationSeconds));
    const auto health = service.health();  // sampled while the loop is live
    running.store(false, std::memory_order_release);
    for (auto& t : frontier) t.join();
    service.stop();  // unblocks a producer stuck in backpressure
    producer.join();

    Row row;
    row.cell = cell;
    row.servedBatches = health.servedBatches;
    row.shed = health.shedQueries;
    row.backpressureWaits = health.backpressureWaits;
    row.publishedEpochs = health.publishedEpochs;
    row.appliedEvents = health.appliedEvents;
    row.p50 = health.p50LatencySeconds;
    row.p99 = health.p99LatencySeconds;
    row.misroute = health.lastMisrouteFraction;
    row.stalenessSeconds = health.stalenessSeconds;
    row.stalenessEvents = health.stalenessEvents;
    row.finalState = serve::toString(health.state);
    return row;
}

void writeJson(const std::string& path, std::int64_t points, std::int32_t blocks,
               int ranks, const serve::SloConfig& slo, double durationSeconds,
               const std::vector<Row>& rows) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write " << path << "\n";
        return;
    }
    out << "{\n  \"bench\": \"serve_slo\",\n  \"instance\": \"churn2d\",\n"
        << "  \"n\": " << points << ",\n";
    bench::writePeakRssField(out);
    out << "  \"blocks\": " << blocks << ",\n  \"ranks\": " << ranks << ",\n"
        << "  \"cell_duration_seconds\": " << durationSeconds << ",\n"
        << "  \"slo\": {\"p99_target_seconds\": " << slo.p99LatencyTargetSeconds
        << ", \"max_misroute\": " << slo.maxMisrouteFraction
        << ", \"max_staleness_seconds\": " << slo.maxStalenessSeconds
        << ", \"max_staleness_events\": " << slo.maxStalenessEvents
        << ", \"ingest_queue_bound\": " << slo.ingestQueueBound << "},\n"
        << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        out << "    {\"qps\": " << r.cell.qps << ", \"churn_eps\": " << r.cell.churnEps
            << ", \"cadence_ms\": " << r.cell.cadenceMs
            << ", \"served_batches\": " << r.servedBatches
            << ", \"p50_latency_seconds\": " << r.p50
            << ", \"p99_latency_seconds\": " << r.p99
            << ", \"misroute_fraction\": " << r.misroute
            << ", \"staleness_seconds\": " << r.stalenessSeconds
            << ", \"staleness_events\": " << r.stalenessEvents
            << ", \"shed_queries\": " << r.shed
            << ", \"backpressure_waits\": " << r.backpressureWaits
            << ", \"published_epochs\": " << r.publishedEpochs
            << ", \"applied_events\": " << r.appliedEvents
            << ", \"final_state\": \"" << r.finalState << "\"}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
    std::int64_t points = 20000;
    std::int32_t blocks = 16;
    int ranks = 1;
    double durationSeconds = 1.0;
    std::string jsonPath;
    bool expectSheds = false;
    serve::SloConfig slo;
    slo.maxStalenessSeconds = 5.0;
    slo.maxStalenessEvents = 200000;
    slo.ingestQueueBound = 16384;

    int positional = 0;
    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        auto value = [&](const char* flag) -> const char* {
            if (a + 1 >= argc) {
                std::cerr << flag << " requires a value\n";
                std::exit(2);
            }
            return argv[++a];
        };
        if (arg == "--json") jsonPath = value("--json");
        else if (arg == "--duration-ms") durationSeconds = std::atof(value(arg.c_str())) / 1000.0;
        else if (arg == "--staleness-ms") slo.maxStalenessSeconds = std::atof(value(arg.c_str())) / 1000.0;
        else if (arg == "--staleness-events") slo.maxStalenessEvents = std::strtoull(value(arg.c_str()), nullptr, 10);
        else if (arg == "--queue-bound") slo.ingestQueueBound = std::strtoull(value(arg.c_str()), nullptr, 10);
        else if (arg == "--p99-ms") slo.p99LatencyTargetSeconds = std::atof(value(arg.c_str())) / 1000.0;
        else if (arg == "--expect-sheds") expectSheds = true;
        else if (positional == 0) { points = std::atoll(arg.c_str()); ++positional; }
        else if (positional == 1) { blocks = std::atoi(arg.c_str()); ++positional; }
        else if (positional == 2) { ranks = std::atoi(arg.c_str()); ++positional; }
        else {
            std::cerr << "usage: " << argv[0]
                      << " [points] [blocks] [ranks] [--duration-ms N] [--json PATH]"
                         " [--staleness-ms N] [--staleness-events N] [--queue-bound N]"
                         " [--p99-ms F] [--expect-sheds]\n";
            return 2;
        }
    }

    // The sweep: light vs heavy query load × light vs heavy churn × fast vs
    // slow recompute cadence. Small on purpose — this is the CI-smoke shape;
    // crank --duration-ms for a real measurement.
    const std::vector<Cell> cells = {
        {200.0, 5000.0, 20.0},   {200.0, 50000.0, 20.0},
        {200.0, 50000.0, 200.0}, {2000.0, 5000.0, 20.0},
        {2000.0, 50000.0, 20.0}, {2000.0, 50000.0, 200.0},
    };

    std::cout << "serve_slo: n=" << points << " blocks=" << blocks
              << " ranks=" << ranks << " duration/cell=" << durationSeconds
              << "s\n\n";

    std::vector<Row> rows;
    for (const auto& cell : cells)
        rows.push_back(runCell(cell, points, blocks, ranks, slo, durationSeconds));

    Table table({"qps", "churn/s", "cadence", "batches", "p50 ms", "p99 ms",
                 "misroute", "stale s", "stale ev", "shed", "bp", "epochs", "state"});
    for (const auto& r : rows) {
        table.addRow({Table::num(r.cell.qps, 0), Table::num(r.cell.churnEps, 0),
                      Table::num(r.cell.cadenceMs, 0), std::to_string(r.servedBatches),
                      Table::num(r.p50 * 1e3, 3), Table::num(r.p99 * 1e3, 3),
                      Table::num(r.misroute, 4), Table::num(r.stalenessSeconds, 3),
                      std::to_string(r.stalenessEvents), std::to_string(r.shed),
                      std::to_string(r.backpressureWaits),
                      std::to_string(r.publishedEpochs), r.finalState});
    }
    table.print(std::cout);

    if (!jsonPath.empty())
        writeJson(jsonPath, points, blocks, ranks, slo, durationSeconds, rows);

    if (expectSheds) {
        std::uint64_t shed = 0;
        for (const auto& r : rows) shed += r.shed;
        if (shed == 0) {
            std::cerr << "\n--expect-sheds: no queries were shed anywhere in the sweep\n";
            return 1;
        }
        std::cout << "\n--expect-sheds: " << shed << " low-priority batches shed\n";
    }
    return 0;
}
