// Figure 2: per-class aggregated quality ratios (baseline = Geographer) for
// edgeCut, maxCommVol, totCommVol, harmDiam and SpMV comm time, across the
// three instance classes:
//   (a) 2D DIMACS-style meshes, (b) 2.5D climate meshes, (c) 3D meshes.
// The paper reports geometric-mean ratios over each class with k = p; we
// use k = 16 and laptop-scale instances (see EXPERIMENTS.md).
#include <iostream>

#include "common.hpp"
#include "gen/registry.hpp"

int main() {
    using namespace geo;
    const std::int64_t n2d = 20000, n3d = 12000;
    const std::int32_t k = 16;
    const double eps = 0.03;
    const std::vector<std::uint64_t> seeds{1, 2};

    std::cout << "=== Fig. 2: aggregated quality ratios per instance class ===\n"
              << "(k=" << k << ", eps=" << eps << ", " << seeds.size()
              << " seeds, 2D n=" << n2d << ", 3D n=" << n3d << ")\n\n";

    bench::RatioAggregator agg2d, agg25d, agg3d;
    for (const auto& spec : gen::catalog2d()) {
        for (const auto seed : seeds) {
            const auto mesh = spec.make(n2d, seed);
            const auto rows = bench::runAllTools<2>(mesh, k, eps, seed);
            if (spec.meshClass == gen::MeshClass::Dim25)
                agg25d.add(rows);
            else
                agg2d.add(rows);
            std::cout << "  done: " << mesh.name << " seed " << seed << "\n";
        }
    }
    for (const auto& spec : gen::catalog3d()) {
        for (const auto seed : seeds) {
            const auto mesh = spec.make(n3d, seed);
            agg3d.add(bench::runAllTools<3>(mesh, k, eps, seed));
            std::cout << "  done: " << mesh.name << " seed " << seed << "\n";
        }
    }
    std::cout << '\n';
    agg2d.print(std::cout, "(a) DIMACS-style graphs (2D)");
    agg25d.print(std::cout, "(b) Climate graphs (2.5D, weighted)");
    agg3d.print(std::cout, "(c) Alya-style and Delaunay (3D)");
    std::cout << "Paper shape: competitors sit above 1.0 on totCommVol in every class\n"
                 "(Geographer ~15% ahead of the best competitor on 2D).\n";
    return 0;
}
