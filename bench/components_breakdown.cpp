// §5.3.2 "Components": share of total Geographer time spent in the three
// phases (Hilbert indexing, redistribution, balanced k-means) as the rank
// count grows. Paper observation on Delaunay2B: at p=1024 redistribution
// takes 32% and k-means 47%; at p=16384 redistribution 46%, k-means 42% —
// the redistribution share grows with p.
#include <iostream>

#include "common.hpp"
#include "core/geographer.hpp"
#include "gen/delaunay2d.hpp"

int main() {
    using namespace geo;
    const std::int64_t n = 65536;
    const std::int32_t k = 32;
    std::cout << "=== Components breakdown (delaunay2d n=" << n << ", k=" << k
              << ") ===\n\n";
    const auto mesh = gen::delaunay2d(n, 9);

    Table table({"ranks", "hilbert[s]", "redistribute[s]", "kmeans[s]", "hilbert%",
                 "redistribute%", "kmeans%"});
    for (const int ranks : {1, 2, 4, 8, 16, 32}) {
        core::Settings settings;
        const auto res = core::partitionGeographer<2>(mesh.points, {}, k, ranks, settings);
        const double h = res.phaseSeconds.at("hilbert");
        const double r = res.phaseSeconds.at("redistribute");
        const double m = res.phaseSeconds.at("kmeans");
        const double total = h + r + m;
        table.addRow({std::to_string(ranks), Table::num(h, 3), Table::num(r, 3),
                      Table::num(m, 3), Table::num(100.0 * h / total, 3),
                      Table::num(100.0 * r / total, 3), Table::num(100.0 * m / total, 3)});
    }
    table.print(std::cout);
    std::cout << "\nPaper shape: k-means dominates at small p; the redistribution share\n"
                 "grows with the number of processes.\n";
    return 0;
}
