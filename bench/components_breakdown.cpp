// §5.3.2 "Components": share of total Geographer time spent in the three
// phases (Hilbert indexing, redistribution, balanced k-means) as the rank
// count grows. Paper observation on Delaunay2B: at p=1024 redistribution
// takes 32% and k-means 47%; at p=16384 redistribution 46%, k-means 42% —
// the redistribution share grows with p.
#include <iostream>

#include "common.hpp"
#include "core/geographer.hpp"
#include "gen/delaunay2d.hpp"

int main() {
    using namespace geo;
    const std::int64_t n = 65536;
    const std::int32_t k = 32;
    std::cout << "=== Components breakdown (delaunay2d n=" << n << ", k=" << k
              << ") ===\n\n";
    const auto mesh = gen::delaunay2d(n, 9);

    Table table({"ranks", "hilbert[s]", "redistribute[s]", "kmeans[s]", "hilbert%",
                 "redistribute%", "kmeans%"});
    for (const int ranks : {1, 2, 4, 8, 16, 32}) {
        core::Settings settings;
        const auto res = core::partitionGeographer<2>(mesh.points, {}, k, ranks, settings);
        const double h = res.phaseSeconds.at("hilbert");
        const double r = res.phaseSeconds.at("redistribute");
        const double m = res.phaseSeconds.at("kmeans");
        const double total = h + r + m;
        table.addRow({std::to_string(ranks), Table::num(h, 3), Table::num(r, 3),
                      Table::num(m, 3), Table::num(100.0 * h / total, 3),
                      Table::num(100.0 * r / total, 3), Table::num(100.0 * m / total, 3)});
    }
    table.print(std::cout);
    std::cout << "\nPaper shape: k-means dominates at small p; the redistribution share\n"
                 "grows with the number of processes.\n\n";

    // Assignment-engine before/after: the same pipeline with the scalar
    // sqrt-domain reference kernel (the seed implementation) vs the fast
    // engine (squared-distance SoA batch kernel + lazy epoch bounds), plus
    // the engine's own counters. Assignments are identical in both modes.
    std::cout << "=== assignment engine before/after (kmeans phase) ===\n";
    Table engineTable({"ranks", "mode", "kmeans[s]", "distCalcs", "batched", "epochApps",
                       "skip%"});
    for (const int ranks : {1, 4}) {
        for (const bool reference : {true, false}) {
            core::Settings settings;
            settings.referenceAssignment = reference;
            const auto res =
                core::partitionGeographer<2>(mesh.points, {}, k, ranks, settings);
            engineTable.addRow(
                {std::to_string(ranks), reference ? "reference" : "fast",
                 Table::num(res.phaseSeconds.at("kmeans"), 3),
                 std::to_string(res.counters.distanceCalcs),
                 std::to_string(res.counters.batchedDistanceCalcs),
                 std::to_string(res.counters.epochBoundApplications),
                 Table::num(100.0 * res.counters.skipFraction(), 3)});
        }
    }
    engineTable.print(std::cout);
    std::cout << "\nreference = seed scalar kernel (one sqrt per candidate, eager bound\n"
                 "sweeps); fast = squared-domain batch kernel with lazy epoch bounds.\n";
    return 0;
}
