// §5.3.2 "Components": share of total Geographer time spent in the three
// phases (Hilbert indexing, redistribution, balanced k-means) as the rank
// count grows. Paper observation on Delaunay2B: at p=1024 redistribution
// takes 32% and k-means 47%; at p=16384 redistribution 46%, k-means 42% —
// the redistribution share grows with p.
//
// Extended with the intra-rank thread-scaling breakdown: one rank, the
// whole pipeline, per-phase wall time at threads = 1, 2, 4, 8 (keying,
// sort/redistribute, assignment sweeps, center updates, metrics). Optional
// `--json PATH` writes the rows as BENCH_pipeline.json for the CI bench
// trajectory; optional first positional argument overrides the scaling
// instance size (default 1M points — the acceptance configuration).
//
// Memory budgeting: `--mem-budget BYTES` (suffixes k/m/g accepted) caps the
// point pipeline's tile storage via Settings::memoryBudgetBytes — the
// chunked PointStore path, bitwise identical to the resident path.
// `--assert-rss BYTES` makes the binary exit non-zero if the process peak
// RSS ends above the cap (the CI bench-smoke guard). After the scaling rows
// the final run's diagram is frozen into a PartitionSnapshot and every
// input point routed back through the serving layer, so a budgeted run
// covers the whole partition+serve pipeline under one RSS cap.
//
// Checkpoint/restart: `--checkpoint PATH` records which thread-scaling row
// completed last (the rows are this bench's long pole); `--resume PATH`
// skips the preamble tables and every completed row. Each row is an
// independent full-pipeline run, so a resumed row is bitwise identical to
// the interrupted run's. When every row already completed, the last row is
// re-run — the serve stage needs its result.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/checkpoint.hpp"
#include "core/geographer.hpp"
#include "gen/delaunay2d.hpp"
#include "serve/router.hpp"
#include "serve/snapshot.hpp"

namespace {

struct ScalingRow {
    int threads = 1;
    double keying = 0.0;   ///< phase "hilbert": bounds pass + batch keying
    double sort = 0.0;     ///< phase "redistribute": sample sort + rebalance
    double assign = 0.0;   ///< k-means assignment sweeps
    double update = 0.0;   ///< k-means center-update reductions
    double kmeans = 0.0;   ///< whole k-means phase (assign + update + rest)
    double metrics = 0.0;  ///< evaluatePartition (no diameter BFS)
    double total = 0.0;    ///< pipeline + metrics wall time
    std::uint64_t keyedPoints = 0;
    std::uint64_t sortedRecords = 0;
    std::uint64_t peakTileBytes = 0;  ///< engine point-store high-water mark
    std::uint64_t residentBytes = 0;  ///< tile bytes live at the end
    std::uint64_t spilledTiles = 0;   ///< tile refills beyond the first fill
};

void writeJson(const std::string& path, std::int64_t n, std::int32_t k,
               geo::par::TransportKind transport, std::uint64_t memBudget,
               double serveSeconds, std::int64_t servedPoints,
               const std::vector<ScalingRow>& rows) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write " << path << "\n";
        return;
    }
    out << "{\n  \"bench\": \"components_breakdown\",\n"
        << "  \"instance\": \"delaunay2d\",\n"
        << "  \"n\": " << n << ",\n  \"k\": " << k << ",\n  \"ranks\": 1,\n"
        << "  \"transport\": \"" << geo::bench::resolvedTransportName(transport)
        << "\",\n  \"processes\": " << geo::bench::workerProcesses() << ",\n"
        << "  \"mem_budget_bytes\": " << memBudget << ",\n"
        << "  \"serve_s\": " << serveSeconds << ",\n"
        << "  \"served_points\": " << servedPoints << ",\n";
    geo::bench::writePeakRssField(out);
    out << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        out << "    {\"threads\": " << r.threads << ", \"keying_s\": " << r.keying
            << ", \"sort_s\": " << r.sort << ", \"assign_s\": " << r.assign
            << ", \"update_s\": " << r.update << ", \"kmeans_s\": " << r.kmeans
            << ", \"metrics_s\": " << r.metrics << ", \"total_s\": " << r.total
            << ", \"keyedPoints\": " << r.keyedPoints
            << ", \"sortedRecords\": " << r.sortedRecords
            << ", \"peakTileBytes\": " << r.peakTileBytes
            << ", \"residentBytes\": " << r.residentBytes
            << ", \"spilledTiles\": " << r.spilledTiles << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
    using namespace geo;
    std::int64_t scalingN = 1'000'000;
    std::string jsonPath;
    par::TransportKind transport = par::TransportKind::Auto;
    std::uint64_t memBudget = 0;
    std::uint64_t assertRss = 0;
    std::string checkpointPath, resumePath;
    const char* usage =
        " [scaling-n] [--transport sim|socket|tcp] [--mem-budget BYTES]"
        " [--assert-rss BYTES] [--json PATH] [--checkpoint PATH] [--resume PATH]\n";
    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        if (arg == "--json") {
            if (a + 1 >= argc) {
                std::cerr << "--json requires a path\nusage: " << argv[0] << usage;
                return 1;
            }
            jsonPath = argv[++a];
        } else if (arg == "--checkpoint") {
            if (a + 1 >= argc) {
                std::cerr << "--checkpoint requires a path\nusage: " << argv[0] << usage;
                return 1;
            }
            checkpointPath = argv[++a];
        } else if (arg == "--resume") {
            if (a + 1 >= argc) {
                std::cerr << "--resume requires a path\nusage: " << argv[0] << usage;
                return 1;
            }
            resumePath = argv[++a];
        } else if (arg == "--transport") {
            if (a + 1 >= argc) {
                std::cerr << "--transport requires a backend\nusage: " << argv[0] << usage;
                return 1;
            }
            transport = par::parseTransportKind(argv[++a]);
        } else if (arg == "--mem-budget" || arg == "--assert-rss") {
            if (a + 1 >= argc) {
                std::cerr << arg << " requires a byte count\nusage: " << argv[0] << usage;
                return 1;
            }
            try {
                (arg == "--mem-budget" ? memBudget : assertRss) =
                    support::parseMemBytes(argv[++a]);
            } catch (const std::exception& e) {
                std::cerr << arg << ": " << e.what() << "\nusage: " << argv[0] << usage;
                return 1;
            }
        } else if (!arg.empty() && arg.find_first_not_of("0123456789") == std::string::npos) {
            scalingN = std::atoll(arg.c_str());
        } else {
            std::cerr << "unrecognized argument: " << arg << "\nusage: " << argv[0]
                      << usage;
            return 1;
        }
    }

    // Under geo_launch every worker runs this whole binary; non-root ranks
    // still participate in the socket collectives but stay silent.
    const bench::MuteNonRoot mute;
    if (scalingN < 1000) {
        std::cerr << "scaling-n must be >= 1000 (got " << scalingN << ")\n";
        return 1;
    }

    // The cursor counts completed thread-scaling rows; a cursor > 0 also
    // implies the preamble tables already ran, so a resume skips them.
    std::size_t resumeRow = 0;
    if (!resumePath.empty()) {
        try {
            resumeRow = static_cast<std::size_t>(core::loadCheckpoint(resumePath).phase);
            std::cout << "resuming from " << resumePath << ": " << resumeRow
                      << " scaling row(s) already complete\n";
        } catch (const std::exception& e) {
            std::cerr << "cannot resume: " << e.what() << "\n";
            return 1;
        }
    }

    const std::int64_t n = 65536;
    const std::int32_t k = 32;
    std::cout << "=== Components breakdown (delaunay2d n=" << n << ", k=" << k
              << ") ===\n\n";
    const auto mesh = gen::delaunay2d(n, 9);

    if (resumeRow == 0) {
    Table table({"ranks", "hilbert[s]", "redistribute[s]", "kmeans[s]", "hilbert%",
                 "redistribute%", "kmeans%"});
    for (const int ranks : {1, 2, 4, 8, 16, 32}) {
        core::Settings settings;
        settings.transport = transport;
        settings.memoryBudgetBytes = memBudget;
        const auto res = core::partitionGeographer<2>(mesh.points, {}, k, ranks, settings);
        const double h = res.phaseSeconds.at("hilbert");
        const double r = res.phaseSeconds.at("redistribute");
        const double m = res.phaseSeconds.at("kmeans");
        const double total = h + r + m;
        table.addRow({std::to_string(ranks), Table::num(h, 3), Table::num(r, 3),
                      Table::num(m, 3), Table::num(100.0 * h / total, 3),
                      Table::num(100.0 * r / total, 3), Table::num(100.0 * m / total, 3)});
    }
    table.print(std::cout);
    std::cout << "\nPaper shape: k-means dominates at small p; the redistribution share\n"
                 "grows with the number of processes.\n\n";

    // Assignment-engine before/after: the same pipeline with the scalar
    // sqrt-domain reference kernel (the seed implementation) vs the fast
    // engine (squared-distance SoA batch kernel + lazy epoch bounds), plus
    // the engine's own counters. Assignments are identical in both modes.
    std::cout << "=== assignment engine before/after (kmeans phase) ===\n";
    Table engineTable({"ranks", "mode", "kmeans[s]", "distCalcs", "batched", "epochApps",
                       "skip%"});
    for (const int ranks : {1, 4}) {
        for (const bool reference : {true, false}) {
            core::Settings settings;
            settings.transport = transport;
            settings.memoryBudgetBytes = memBudget;
            settings.referenceAssignment = reference;
            const auto res =
                core::partitionGeographer<2>(mesh.points, {}, k, ranks, settings);
            engineTable.addRow(
                {std::to_string(ranks), reference ? "reference" : "fast",
                 Table::num(res.phaseSeconds.at("kmeans"), 3),
                 std::to_string(res.counters.distanceCalcs),
                 std::to_string(res.counters.batchedDistanceCalcs),
                 std::to_string(res.counters.epochBoundApplications),
                 Table::num(100.0 * res.counters.skipFraction(), 3)});
        }
    }
    engineTable.print(std::cout);
    std::cout << "\nreference = seed scalar kernel (one sqrt per candidate, eager bound\n"
                 "sweeps); fast = squared-domain batch kernel with lazy epoch bounds.\n\n";
    }  // resumeRow == 0 preamble

    // Per-phase intra-rank thread scaling: the whole pipeline on ONE rank so
    // Amdahl shows up per phase, not per rank. Partitions, centers,
    // influence and metrics are bitwise identical across rows (enforced by
    // tests/test_threads.cpp); only the wall clock may differ.
    std::cout << "=== per-phase thread scaling (delaunay2d n=" << scalingN
              << ", k=" << k << ", ranks=1) ===\n";
    const auto big = scalingN == n ? mesh : gen::delaunay2d(scalingN, 9);
    std::vector<ScalingRow> rows;
    core::GeographerResult lastRes;
    Table scalingTable({"threads", "keying[s]", "sort[s]", "assign[s]", "update[s]",
                        "metrics[s]", "total[s]", "peakTileMB", "spills"});
    const int threadCounts[] = {1, 2, 4, 8};
    const std::size_t rowCount = std::size(threadCounts);
    // Resume skips completed rows; when all are complete, re-run the last
    // one — the serve stage below consumes its result.
    const std::size_t firstRow = std::min(resumeRow, rowCount - 1);
    for (std::size_t rowIdx = firstRow; rowIdx < rowCount; ++rowIdx) {
        const int threads = threadCounts[rowIdx];
        core::Settings settings;
        settings.transport = transport;
        settings.memoryBudgetBytes = memBudget;
        settings.threads = threads;
        Timer whole;
        const auto res =
            core::partitionGeographer<2>(big.points, {}, k, /*ranks=*/1, settings);
        Timer metricsTimer;
        const auto m = graph::evaluatePartition(big.graph, res.partition, k, {},
                                                /*computeDiameter=*/false, {}, threads);
        ScalingRow row;
        row.threads = threads;
        row.keying = res.phaseSeconds.at("hilbert");
        row.sort = res.phaseSeconds.at("redistribute");
        row.assign = res.phaseSeconds.at("assign");
        row.update = res.phaseSeconds.at("update");
        row.kmeans = res.phaseSeconds.at("kmeans");
        row.metrics = metricsTimer.seconds();
        row.total = whole.seconds();
        row.keyedPoints = res.counters.keyedPoints;
        row.sortedRecords = res.counters.sortedRecords;
        row.peakTileBytes = res.counters.peakTileBytes;
        row.residentBytes = res.counters.residentBytes;
        row.spilledTiles = res.counters.spilledTiles;
        rows.push_back(row);
        if (threads == 8) lastRes = res;
        scalingTable.addRow(
            {std::to_string(row.threads), Table::num(row.keying, 3),
             Table::num(row.sort, 3), Table::num(row.assign, 3),
             Table::num(row.update, 3), Table::num(row.metrics, 3),
             Table::num(row.total, 3),
             Table::num(static_cast<double>(row.peakTileBytes) / (1024.0 * 1024.0), 2),
             std::to_string(row.spilledTiles)});
        (void)m;
        if (!checkpointPath.empty() && bench::isRootProcess()) {
            core::CheckpointState ck;
            ck.dims = 2;
            ck.phase = rowIdx + 1;  // rows completed
            core::saveCheckpoint(checkpointPath, ck);
        }
    }
    scalingTable.print(std::cout);
    const auto& t1 = rows.front();
    const auto& t8 = rows.back();
    const double keySortSpeedup = (t1.keying + t1.sort) / (t8.keying + t8.sort);
    const double wholeReduction = 100.0 * (1.0 - t8.total / t1.total);
    std::cout << "\nkeying+sort speedup (1 -> 8 threads): x"
              << Table::num(keySortSpeedup, 2)
              << "\nwhole-run wall-time reduction (1 -> 8 threads): "
              << Table::num(wholeReduction, 1)
              << "%\n(results bitwise identical across rows; targets: >= 2x and >= 30% "
                 "on >= 8 hardware threads)\n";

    // Serve stage: freeze the final run's weighted-Voronoi diagram and route
    // every input point back through the online serving layer — the snapshot
    // must reproduce the producing partition exactly, and the routing pass
    // shares the process RSS budget with the pipeline above.
    std::cout << "\n=== serve (route all " << scalingN << " points) ===\n";
    serve::Router<2> router(1);
    router.publish(serve::PartitionSnapshot<2>::fromResult(lastRes, /*version=*/1));
    std::vector<std::int32_t> routed(big.points.size(), -1);
    Timer serveTimer;
    constexpr std::int64_t kServeBatch = 16384;
    for (std::int64_t lo = 0; lo < static_cast<std::int64_t>(big.points.size());
         lo += kServeBatch) {
        const auto len = std::min<std::int64_t>(kServeBatch,
                                                static_cast<std::int64_t>(big.points.size()) - lo);
        router.route(std::span<const Point2>(big.points.data() + lo, len),
                     std::span<std::int32_t>(routed.data() + lo, len));
    }
    const double serveSeconds = serveTimer.seconds();
    for (std::size_t i = 0; i < routed.size(); ++i) {
        if (routed[i] != lastRes.partition[i]) {
            std::cerr << "FAIL: serve route diverges from partition at point " << i << "\n";
            return 1;
        }
    }
    std::cout << "routed " << routed.size() << " points in " << Table::num(serveSeconds, 3)
              << " s (" << Table::num(static_cast<double>(routed.size()) / serveSeconds / 1e6, 2)
              << " Mqps), all blocks verified against the producing run\n";

    const std::uint64_t peakRss = support::peakRssBytes();
    std::cout << "\nmem budget: "
              << (memBudget == 0 ? std::string("unlimited")
                                 : std::to_string(memBudget) + " bytes")
              << " | engine peak tile bytes: " << rows.back().peakTileBytes
              << " | spilled tiles: " << rows.back().spilledTiles
              << " | process peak RSS: "
              << Table::num(static_cast<double>(peakRss) / (1024.0 * 1024.0), 1)
              << " MB\n";

    if (!jsonPath.empty() && bench::isRootProcess())
        writeJson(jsonPath, scalingN, k, transport, memBudget, serveSeconds,
                  static_cast<std::int64_t>(routed.size()), rows);
    if (assertRss > 0 && peakRss > assertRss) {
        std::cerr << "FAIL: peak RSS " << peakRss << " bytes exceeds --assert-rss "
                  << assertRss << "\n";
        return 1;
    }
    return 0;
}
