// Dynamic repartitioning end-to-end: partition an advecting point cloud
// once, then follow it across timesteps with warm-started balanced k-means,
// measuring convergence effort and data migration at every step.
//
//   ./repartition_demo [numPoints] [steps] [blocks] [ranks]
#include <cstdlib>
#include <iostream>

#include "graph/metrics.hpp"
#include "repart/migration.hpp"
#include "repart/repartition.hpp"
#include "repart/scenarios.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
    const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 20000;
    const int steps = argc > 2 ? std::atoi(argv[2]) : 6;
    const std::int32_t k = argc > 3 ? std::atoi(argv[3]) : 8;
    const int ranks = argc > 4 ? std::atoi(argv[4]) : 4;

    std::cout << "Advecting " << n << " points over " << steps
              << " timesteps, repartitioning into " << k << " blocks on " << ranks
              << " simulated ranks.\n\n";

    geo::repart::ScenarioConfig cfg;
    cfg.kind = geo::repart::ScenarioKind::Advection;
    cfg.basePoints = n;
    cfg.drift = 0.03;
    cfg.seed = 42;
    geo::repart::Scenario<2> scenario(cfg);

    geo::core::Settings settings;
    settings.epsilon = 0.03;

    geo::repart::RepartState<2> state;  // empty: first step runs cold
    std::vector<std::int64_t> prevIds;
    geo::graph::Partition prevPartition;

    geo::Table table({"step", "path", "drift", "outerIters", "imbalance", "migrated",
                      "migKB", "migModeled_ms"});
    for (int t = 0; t < steps; ++t) {
        const auto& step = scenario.current();
        const auto res = geo::repart::repartitionGeographer<2>(
            step.points, step.weights, k, ranks, settings, state);

        double migrated = 0.0, migKb = 0.0, migMs = 0.0;
        if (!prevIds.empty()) {
            const auto m = geo::repart::migrationStats(
                prevIds, prevPartition, step.ids, res.result.partition, step.weights, k,
                ranks, geo::repart::migrationBytesPerPoint(2));
            migrated = m.migratedFraction;
            migKb = static_cast<double>(m.totalBytes) / 1024.0;
            migMs = m.modeledSeconds * 1e3;
        }
        table.addRow({std::to_string(t), res.warmStarted ? "warm" : "cold",
                      res.normalizedDrift ? geo::Table::num(*res.normalizedDrift, 3)
                                          : std::string("-"),
                      std::to_string(res.result.counters.outerIterations),
                      geo::Table::num(res.result.imbalance, 4),
                      geo::Table::num(migrated, 4), geo::Table::num(migKb, 1),
                      geo::Table::num(migMs, 3)});

        prevIds = step.ids;
        prevPartition = res.result.partition;
        scenario.advance();
    }
    table.print(std::cout);
    std::cout << "\nStep 0 runs the full cold pipeline (Hilbert sort + k-means);\n"
                 "later steps resume k-means from the previous centers and\n"
                 "influence, skipping the sort/redistribution entirely.\n";
    return 0;
}
