// Full simulation-pipeline example: generate a 3D mesh, partition it, build
// the halo-exchange plan, run repeated SpMV (the computational kernel the
// partition exists to accelerate), and export the artifacts (METIS graph,
// partition file) for use with external tools.
//
//   ./spmv_pipeline [numPoints] [blocks] [outDir]
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "baseline/tools.hpp"
#include "gen/delaunay3d.hpp"
#include "graph/metrics.hpp"
#include "io/metis.hpp"
#include "spmv/spmv.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
    const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 15000;
    const std::int32_t k = argc > 2 ? std::atoi(argv[2]) : 8;
    const std::string outDir = argc > 3 ? argv[3] : "spmv_pipeline_out";

    std::cout << "Generating a 3D Delaunay mesh (" << n << " points)...\n";
    const auto mesh = geo::gen::delaunay3d(n, /*seed=*/3);
    std::cout << "  " << mesh.numVertices() << " vertices, " << mesh.numEdges()
              << " edges\n\n";

    geo::Table table({"tool", "totGhosts", "maxGhosts", "maxNbrs", "spmvComm[s/iter]",
                      "spmvCompute[s/iter]"});
    for (const auto& tool : geo::baseline::tools3()) {
        const auto res = tool.run(mesh.points, {}, k, 0.03, 1, 1);
        const auto t = geo::spmv::runSpmv(mesh.graph, res.partition, k, 100);
        table.addRow({tool.name, std::to_string(t.totalGhosts),
                      std::to_string(t.maxGhosts), std::to_string(t.maxNeighbors),
                      geo::Table::num(t.modeledCommSecondsPerIteration, 4),
                      geo::Table::num(t.computeSecondsPerIteration, 4)});
    }
    table.print(std::cout);

    // Export the Geographer partition for external consumers.
    std::filesystem::create_directories(outDir);
    const auto geoRes = geo::baseline::tools3().front().run(mesh.points, {}, k, 0.03, 1, 1);
    geo::io::writeMetis(outDir + "/mesh.metis", mesh.graph);
    geo::io::writePartition(outDir + "/mesh.part", geoRes.partition);
    std::cout << "\nWrote " << outDir << "/mesh.metis and " << outDir
              << "/mesh.part (METIS formats).\n";
    return 0;
}
