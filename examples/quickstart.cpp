// Quickstart: partition a random 2D point cloud into balanced, compact
// blocks with Geographer's balanced k-means.
//
//   ./quickstart [numPoints] [blocks] [ranks]
#include <cstdlib>
#include <iostream>

#include "core/geographer.hpp"
#include "gen/delaunay2d.hpp"
#include "graph/metrics.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
    const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 20000;
    const std::int32_t k = argc > 2 ? std::atoi(argv[2]) : 8;
    const int ranks = argc > 3 ? std::atoi(argv[3]) : 4;

    std::cout << "Generating a Delaunay mesh with " << n << " points...\n";
    const auto mesh = geo::gen::delaunay2d(n, /*seed=*/42);

    geo::core::Settings settings;
    settings.epsilon = 0.03;  // allow 3% imbalance, like the paper

    std::cout << "Partitioning into " << k << " blocks on " << ranks
              << " simulated MPI ranks...\n";
    const auto result =
        geo::core::partitionGeographer<2>(mesh.points, {}, k, ranks, settings);

    const auto metrics = geo::graph::evaluatePartition(mesh.graph, result.partition, k);

    geo::Table table({"metric", "value"});
    table.addRow({"points", std::to_string(n)});
    table.addRow({"blocks", std::to_string(k)});
    table.addRow({"edge cut", std::to_string(metrics.edgeCut)});
    table.addRow({"max comm volume", std::to_string(metrics.maxCommVolume)});
    table.addRow({"total comm volume", std::to_string(metrics.totalCommVolume)});
    table.addRow({"imbalance", geo::Table::num(metrics.imbalance, 4)});
    table.addRow({"harmonic mean diameter", geo::Table::num(metrics.harmonicMeanDiameter, 4)});
    table.addRow({"disconnected blocks", std::to_string(metrics.disconnectedBlocks)});
    table.addRow({"k-means outer iterations", std::to_string(result.counters.outerIterations)});
    table.addRow({"bound skip fraction", geo::Table::num(result.counters.skipFraction(), 3)});
    table.print(std::cout);

    std::cout << "\nPhase breakdown (max over ranks):\n";
    for (const auto& [phase, seconds] : result.phaseSeconds)
        std::cout << "  " << phase << ": " << seconds << " s\n";
    return 0;
}
