// Topology-aware partitioning: match the partition to the machine.
//
// Describes a machine of 2 interconnect islands (the first with 3x the
// capacity of the second — think fat and thin nodes) each holding 4 blocks,
// partitions a Delaunay mesh hierarchically, and compares against the flat
// topology-oblivious run on the topology-weighted communication metrics.
//
//   ./topology_partition [numPoints]
#include <cstdlib>
#include <iostream>

#include "core/geographer.hpp"
#include "gen/delaunay2d.hpp"
#include "graph/metrics.hpp"
#include "hier/hier_partition.hpp"
#include "hier/topology.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
    const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 20000;
    const auto mesh = geo::gen::delaunay2d(n, /*seed=*/42);

    // Islands -> blocks; cross-island traffic is 2.5x as expensive.
    geo::hier::Topology topo;
    topo.levels.push_back(geo::hier::TopologyLevel{2, {3.0, 1.0}, 2.5});
    topo.levels.push_back(geo::hier::TopologyLevel{4, {}, 1.0});
    const std::int32_t k = topo.leafCount();
    const auto capacities = topo.leafCapacities();

    geo::core::Settings settings;
    settings.epsilon = 0.05;

    std::cout << "Partitioning " << n << " points onto a 2-island machine (3:1 "
                 "capacity, " << k << " blocks)...\n\n";
    const auto hier =
        geo::hier::partitionHierarchical<2>(mesh.points, {}, topo, /*ranks=*/4, settings);
    // Flat baseline at the same epsilon and the same non-uniform targets.
    geo::core::Settings flatSettings = settings;
    flatSettings.targetFractions = capacities;
    const auto flat = geo::core::partitionGeographer<2>(mesh.points, {}, k, /*ranks=*/4,
                                                        flatSettings);

    const auto cost = topo.blockCostMatrix();
    geo::Table table({"scheme", "imbalance", "edgeCut", "topoCommCost", "topoSpMV_us"});
    for (const auto& [scheme, part] :
         {std::pair<const char*, const geo::graph::Partition&>{"hier", hier.partition},
          std::pair<const char*, const geo::graph::Partition&>{"flat", flat.partition}}) {
        const auto m = geo::graph::evaluatePartition(mesh.graph, part, k, {},
                                                     /*computeDiameter=*/false, capacities);
        table.addRow({scheme, geo::Table::num(m.imbalance, 4),
                      std::to_string(m.edgeCut),
                      geo::Table::num(geo::graph::topologyCommCost(mesh.graph, part, k, cost), 6),
                      geo::Table::num(geo::hier::topologySpmvCommSeconds(mesh.graph, part,
                                                                         topo) * 1e6, 4)});
    }
    table.print(std::cout);

    std::cout << "\nBlock capacity shares (leaf order): ";
    for (const auto c : capacities) std::cout << geo::Table::num(c, 4) << ' ';
    std::cout << "\nimbalance uses the capacity-aware metric "
                 "(imbalance(part, k, weights, targetFractions)).\n";
    return 0;
}
