// Online partition serving end-to-end: partition a point cloud, freeze the
// weighted-Voronoi diagram into an immutable snapshot, publish it through
// the lock-free router, answer point→block→rank queries, survive a restart
// from disk, and follow a repartition with an epoch swap — measuring how
// many queries the stale snapshot would have misrouted.
//
// Publishes go through Router::tryPublish, the degradation-aware path a
// long-running server uses (serve/service.hpp builds on it): a failed
// recompute leaves the last good epoch serving and is only recorded in
// RouterHealth, which this example prints after every swap.
//
//   ./online_routing [numPoints] [blocks] [ranks]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "repart/repartition.hpp"
#include "serve/router.hpp"
#include "serve/snapshot.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
    const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 20000;
    const std::int32_t k = argc > 2 ? std::atoi(argv[2]) : 16;
    const int ranks = argc > 3 ? std::atoi(argv[3]) : 4;

    std::cout << "Serving a " << k << "-block partition of " << n << " points on "
              << ranks << " ranks.\n\n";

    geo::Xoshiro256 rng(7);
    std::vector<geo::Point2> points(static_cast<std::size_t>(n));
    for (auto& p : points) {
        p[0] = rng.uniform();
        p[1] = rng.uniform();
    }

    // Compute: one cold partition; serve: publish its diagram through the
    // degradation-aware path. tryPublish never throws — on failure the
    // router keeps its previous epoch — so a server checks health()
    // instead of wrapping publishes in try/catch.
    geo::core::Settings settings;
    geo::repart::RepartState<2> state;
    geo::serve::Router<2> router;
    const bool published = router.tryPublish([&] {
        const auto step1 =
            geo::repart::repartitionGeographer<2>(points, {}, k, ranks, settings, state);
        return geo::serve::PartitionSnapshot<2>::fromResult(step1.result,
                                                            /*version=*/1, ranks);
    });
    auto health = router.health();
    if (!published || !health.servable()) {
        std::cerr << "initial publish failed: " << health.lastPublishError << "\n";
        return 1;
    }
    std::cout << "published snapshot v" << router.snapshot()->version() << " (epoch "
              << health.epoch << ", " << router.snapshot()->blockCount()
              << " blocks, age " << geo::Table::num(health.epochAgeSeconds, 4)
              << "s, failed publishes: " << health.failedPublishes << ")\n\n";

    // Low-latency point lookups: block and serving rank per query.
    geo::Table queryTable({"query", "block", "rank"});
    for (int q = 0; q < 5; ++q) {
        const geo::Point2 p{rng.uniform(), rng.uniform()};
        const auto block = router.route(p);
        char label[64];
        std::snprintf(label, sizeof label, "(%.3f, %.3f)", p[0], p[1]);
        queryTable.addRow({label, std::to_string(block),
                           std::to_string(router.snapshot()->rankOf(block))});
    }
    queryTable.print(std::cout);

    // Restart path: a serving process can reload the diagram from disk and
    // answer identically.
    const char* path = "online_routing_snapshot.bin";
    router.snapshot()->save(path);
    const auto reloaded = geo::serve::PartitionSnapshot<2>::load(path);
    std::vector<std::int32_t> before(points.size()), after(points.size());
    router.route(points, std::span<std::int32_t>(before));
    reloaded.blockOf(points, std::span<std::int32_t>(after));
    std::cout << "\nsaved + reloaded " << path << ": "
              << (before == after ? "identical routes for all " : "MISMATCH on ")
              << points.size() << " queries\n";

    // Recompute: the workload drifts, a warm repartition runs, and the
    // router swaps epochs without ever blocking readers. The misroute rate
    // is what queries served from the stale snapshot during the repartition
    // window would have gotten wrong.
    for (auto& p : points) {
        p[0] += 0.02;
        p[1] += 0.01;
    }
    std::vector<std::int32_t> staleRouted(points.size());
    router.route(points, std::span<std::int32_t>(staleRouted));

    const auto step2 =
        geo::repart::repartitionGeographer<2>(points, {}, k, ranks, settings, state);
    if (!router.tryPublish([&] {
            return geo::serve::PartitionSnapshot<2>::fromResult(step2.result,
                                                                /*version=*/2, ranks);
        })) {
        // Degraded, not down: the v1 epoch keeps serving every query.
        health = router.health();
        std::cerr << "repartition publish failed (" << health.lastPublishError
                  << "); still serving epoch " << health.epoch << "\n";
        return 1;
    }
    health = router.health();
    const auto stats = geo::serve::misrouteStats(staleRouted, step2.result.partition);
    std::cout << "\nworkload drifted; " << (step2.warmStarted ? "warm" : "cold")
              << " repartition published snapshot v" << router.snapshot()->version()
              << " (epoch " << health.epoch
              << ", consecutive failures: " << health.consecutiveFailures << ")\n"
              << "stale-snapshot misroutes during the swap window: " << stats.misrouted
              << " / " << stats.total << " queries ("
              << geo::Table::num(100.0 * stats.fraction(), 2) << "%)\n";
    return 0;
}
