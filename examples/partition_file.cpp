// Command-line partitioner: read a METIS graph + coordinate file, partition
// with any of the five tools, write the partition (and optionally SVG/VTK).
// This is the workflow external users of a mesh partitioner actually run.
//
//   ./partition_file <graph.metis> <coords.xy> <k> [tool] [out.part]
//
// With no arguments, generates a demo mesh, writes it to ./partition_demo/,
// and partitions that (so the binary is runnable out of the box).
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "baseline/tools.hpp"
#include "gen/meshes2d.hpp"
#include "graph/metrics.hpp"
#include "io/metis.hpp"
#include "io/svg.hpp"
#include "io/vtk.hpp"
#include "support/table.hpp"

namespace {

void usage() {
    std::cout << "usage: partition_file <graph.metis> <coords.xy> <k> [tool] [out.part]\n"
                 "  tool: geoKmeans (default) | MJ | Rcb | Rib | Hsfc\n";
}

}  // namespace

int main(int argc, char** argv) {
    using namespace geo;

    std::string graphPath, coordPath, outPath = "out.part", toolName = "geoKmeans";
    std::int32_t k = 8;

    if (argc < 4) {
        usage();
        std::cout << "\nNo input given — generating a demo instance...\n";
        std::filesystem::create_directories("partition_demo");
        const auto mesh = gen::femMesh2d(20000, 1);
        io::writeMetis("partition_demo/demo.metis", mesh.graph);
        io::writeCoordinates("partition_demo/demo.xy", mesh.points);
        graphPath = "partition_demo/demo.metis";
        coordPath = "partition_demo/demo.xy";
        outPath = "partition_demo/demo.part";
    } else {
        graphPath = argv[1];
        coordPath = argv[2];
        k = std::atoi(argv[3]);
        if (argc > 4) toolName = argv[4];
        if (argc > 5) outPath = argv[5];
    }

    const auto metis = io::readMetis(graphPath);
    const auto coords = io::readCoordinates(coordPath);
    if (static_cast<graph::Vertex>(coords.size()) != metis.graph.numVertices()) {
        std::cerr << "error: " << coords.size() << " coordinates for "
                  << metis.graph.numVertices() << " vertices\n";
        return 1;
    }

    const baseline::Tool<2>* tool = nullptr;
    for (const auto& t : baseline::tools2())
        if (t.name == toolName) tool = &t;
    if (tool == nullptr) {
        std::cerr << "error: unknown tool '" << toolName << "'\n";
        usage();
        return 1;
    }

    std::cout << "Partitioning " << graphPath << " (n=" << metis.graph.numVertices()
              << ", m=" << metis.graph.numEdges() << ") into " << k << " blocks with "
              << tool->name << "...\n";
    const auto res = tool->run(coords, metis.vertexWeights, k, 0.03, 4, 1);
    io::writePartition(outPath, res.partition);

    const auto m = graph::evaluatePartition(metis.graph, res.partition, k,
                                            metis.vertexWeights);
    Table table({"metric", "value"});
    table.addRow({"time [s]", Table::num(res.seconds, 4)});
    table.addRow({"edge cut", std::to_string(m.edgeCut)});
    table.addRow({"total comm volume", std::to_string(m.totalCommVolume)});
    table.addRow({"imbalance", Table::num(m.imbalance, 4)});
    table.print(std::cout);

    const std::string svgPath = outPath + ".svg";
    io::writeSvgPartition(svgPath, coords, res.partition, k, 900, tool->name);
    const std::string vtkPath = outPath + ".vtk";
    io::writeVtk<2>(vtkPath, coords, metis.graph, res.partition);
    std::cout << "wrote " << outPath << ", " << svgPath << ", " << vtkPath << '\n';
    return 0;
}
