// 2.5D climate mesh partitioning with node weights — the weather/ocean
// use case that motivates the paper (§1): the 2D surface mesh carries the
// number of vertical levels as a node weight, and the partition must
// balance *weighted* load.
//
//   ./climate_weighted [numPoints] [blocks]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/geographer.hpp"
#include "gen/climate.hpp"
#include "graph/metrics.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
    const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 20000;
    const std::int32_t k = argc > 2 ? std::atoi(argv[2]) : 12;

    std::cout << "Generating a FESOM-style ocean mesh (" << n
              << " surface points, up to 40 vertical levels)...\n";
    const auto mesh = geo::gen::climate25d(n, /*maxLevels=*/40, /*seed=*/11);

    double totalLevels = 0.0;
    for (const double w : mesh.weights) totalLevels += w;
    std::cout << "Total 3D grid points represented: " << static_cast<long long>(totalLevels)
              << " (avg " << totalLevels / static_cast<double>(n) << " levels/column)\n\n";

    geo::core::Settings settings;
    settings.epsilon = 0.05;

    // Weighted partition: balances 3D work.
    const auto weighted =
        geo::core::partitionGeographer<2>(mesh.points, mesh.weights, k, 4, settings);
    // Unweighted partition: balances surface columns only.
    const auto unweighted =
        geo::core::partitionGeographer<2>(mesh.points, {}, k, 4, settings);

    geo::Table table({"partition", "columnImbalance", "workImbalance", "cut"});
    auto report = [&](const char* name, const geo::graph::Partition& part) {
        table.addRow({name,
                      geo::Table::num(geo::graph::imbalance(part, k), 4),
                      geo::Table::num(geo::graph::imbalance(part, k, mesh.weights), 4),
                      std::to_string(geo::graph::edgeCut(mesh.graph, part))});
    };
    report("weight-aware", weighted.partition);
    report("unweighted", unweighted.partition);
    table.print(std::cout);

    std::cout << "\nThe weight-aware partition keeps the 3D work imbalance within "
              << settings.epsilon << ";\nthe unweighted one balances columns but can "
                 "overload blocks over deep ocean.\n";
    return 0;
}
