// Compare all five partitioners (Geographer, MultiJagged, RCB, RIB, HSFC)
// on an adaptively refined simulation mesh — the workflow of the paper's
// evaluation, on one instance.
//
//   ./mesh_comparison [numPoints] [blocks]
#include <cstdlib>
#include <iostream>

#include "baseline/tools.hpp"
#include "gen/meshes2d.hpp"
#include "graph/metrics.hpp"
#include "spmv/spmv.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
    const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 30000;
    const std::int32_t k = argc > 2 ? std::atoi(argv[2]) : 16;

    std::cout << "Generating a hugetric-style refined triangle mesh (" << n
              << " points)...\n\n";
    const auto mesh = geo::gen::refinedTriMesh(n, /*traces=*/3, /*seed=*/7);

    geo::Table table({"tool", "time[s]", "cut", "maxCommVol", "totCommVol", "harmDiam",
                      "imbalance", "spmvComm[s]"});
    for (const auto& tool : geo::baseline::tools2()) {
        const auto res = tool.run(mesh.points, {}, k, 0.03, /*ranks=*/1, /*seed=*/1);
        const auto m = geo::graph::evaluatePartition(mesh.graph, res.partition, k);
        const auto spmv = geo::spmv::runSpmv(mesh.graph, res.partition, k, 20);
        table.addRow({tool.name, geo::Table::num(res.seconds, 3),
                      std::to_string(m.edgeCut), std::to_string(m.maxCommVolume),
                      std::to_string(m.totalCommVolume),
                      geo::Table::num(m.harmonicMeanDiameter, 4),
                      geo::Table::num(m.imbalance, 3),
                      geo::Table::num(spmv.modeledCommSecondsPerIteration, 3)});
    }
    table.print(std::cout);
    std::cout << "\nLower is better everywhere; geoKmeans should lead on the\n"
                 "communication-volume columns (the paper's headline result).\n";
    return 0;
}
