#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/balanced_kmeans.hpp"
#include "graph/metrics.hpp"
#include "par/comm.hpp"
#include "repart/migration.hpp"
#include "repart/repartition.hpp"
#include "repart/scenarios.hpp"
#include "support/rng.hpp"

namespace {

using geo::Point2;
using geo::Xoshiro256;
using geo::core::Settings;
using geo::par::Comm;
using geo::par::runSpmd;
using geo::repart::migrationStats;
using geo::repart::MigrationStats;
using geo::repart::ownerRank;
using geo::repart::RepartOptions;
using geo::repart::repartitionGeographer;
using geo::repart::RepartState;
using geo::repart::Scenario;
using geo::repart::ScenarioConfig;
using geo::repart::ScenarioKind;

ScenarioConfig smallConfig(ScenarioKind kind) {
    ScenarioConfig cfg;
    cfg.kind = kind;
    cfg.basePoints = 2500;
    cfg.drift = 0.02;
    cfg.seed = 7;
    return cfg;
}

TEST(Scenarios, DeterministicAcrossInstances) {
    for (const auto kind : {ScenarioKind::Advection, ScenarioKind::Rotation,
                            ScenarioKind::Hotspot, ScenarioKind::Churn}) {
        Scenario<2> a(smallConfig(kind));
        Scenario<2> b(smallConfig(kind));
        for (int t = 0; t < 3; ++t) {
            ASSERT_EQ(a.current().ids, b.current().ids) << toString(kind);
            ASSERT_EQ(a.current().points.size(), b.current().points.size());
            for (std::size_t i = 0; i < a.current().points.size(); ++i)
                ASSERT_EQ(a.current().points[i], b.current().points[i]) << toString(kind);
            a.advance();
            b.advance();
        }
    }
}

TEST(Scenarios, HotspotAddsAndRemovesButKeepsBase) {
    auto cfg = smallConfig(ScenarioKind::Hotspot);
    cfg.hotspotBoost = 0.3;
    Scenario<2> s(cfg);
    const auto countBase = [&](const auto& step) {
        return std::count_if(step.ids.begin(), step.ids.end(),
                             [&](std::int64_t id) { return id < cfg.basePoints; });
    };
    EXPECT_EQ(countBase(s.current()), cfg.basePoints);
    const auto size0 = s.current().points.size();
    EXPECT_GT(size0, static_cast<std::size_t>(cfg.basePoints));  // hotspot added points
    std::int64_t maxId = 0;
    for (int t = 0; t < 4; ++t) {
        s.advance();
        EXPECT_EQ(countBase(s.current()), cfg.basePoints);  // base survives
        for (const auto id : s.current().ids) maxId = std::max(maxId, id);
    }
    // The moving hotspot retired old refinement points and minted new ids.
    EXPECT_GT(maxId, static_cast<std::int64_t>(size0));
}

TEST(Scenarios, ChurnReplacesRequestedFraction) {
    auto cfg = smallConfig(ScenarioKind::Churn);
    cfg.churnFraction = 0.1;
    Scenario<2> s(cfg);
    const auto before = s.current().ids;
    s.advance();
    const auto& after = s.current().ids;
    ASSERT_EQ(before.size(), after.size());
    std::size_t replaced = 0;
    for (std::size_t i = 0; i < before.size(); ++i) replaced += (before[i] != after[i]);
    const double fraction = static_cast<double>(replaced) / static_cast<double>(before.size());
    EXPECT_NEAR(fraction, cfg.churnFraction, 0.04);
}

TEST(Migration, HandBuiltPartitionsMatchExpectedStats) {
    // k=2 blocks on 2 ranks: block 0 -> rank 0, block 1 -> rank 1.
    const std::vector<std::int64_t> prevIds{0, 1, 2, 3};
    const std::vector<std::int32_t> prevBlocks{0, 0, 1, 1};
    // id 3 deleted, id 4 inserted, id 1 migrates 0 -> 1.
    const std::vector<std::int64_t> currIds{0, 1, 2, 4};
    const std::vector<std::int32_t> currBlocks{0, 1, 1, 0};
    const MigrationStats m = migrationStats(prevIds, prevBlocks, currIds, currBlocks,
                                            /*currWeights=*/{}, /*k=*/2, /*ranks=*/2,
                                            /*bytesPerPoint=*/16);
    EXPECT_EQ(m.survivors, 3);
    EXPECT_EQ(m.migratedPoints, 1);
    EXPECT_DOUBLE_EQ(m.survivingWeight, 3.0);
    EXPECT_DOUBLE_EQ(m.migratedWeight, 1.0);
    EXPECT_NEAR(m.migratedFraction, 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(m.stability, 2.0 / 3.0, 1e-12);
    EXPECT_EQ(m.totalBytes, 16u);
    EXPECT_EQ(m.maxSendBytes, 16u);
    EXPECT_EQ(m.maxRecvBytes, 16u);
    EXPECT_GT(m.modeledSeconds, 0.0);
}

TEST(Migration, SameRankMovesCostNoBytesButOneMetadataRound) {
    // k=4 blocks on 2 ranks: blocks {0,1} -> rank 0, {2,3} -> rank 1.
    EXPECT_EQ(ownerRank(0, 4, 2), 0);
    EXPECT_EQ(ownerRank(1, 4, 2), 0);
    EXPECT_EQ(ownerRank(2, 4, 2), 1);
    // Non-divisible k: inverse of the lo = k*r/p block distribution,
    // i.e. rank 0 owns {0}, rank 1 owns {1, 2}.
    EXPECT_EQ(ownerRank(0, 3, 2), 0);
    EXPECT_EQ(ownerRank(1, 3, 2), 1);
    EXPECT_EQ(ownerRank(2, 3, 2), 1);
    const std::vector<std::int64_t> ids{0, 1};
    const std::vector<std::int32_t> prev{0, 2};
    const std::vector<std::int32_t> curr{1, 3};  // both move within their rank
    const geo::par::CostModel model;
    const MigrationStats m = migrationStats(ids, prev, ids, curr, {}, 4, 2, 32, model);
    EXPECT_EQ(m.migratedPoints, 2);
    // No payload crosses a rank boundary...
    EXPECT_EQ(m.totalBytes, 0u);
    EXPECT_EQ(m.maxSendBytes, 0u);
    EXPECT_EQ(m.maxRecvBytes, 0u);
    // ...but block relabeling is still a collective metadata round: exactly
    // the zero-byte alltoallv latency.
    EXPECT_DOUBLE_EQ(m.modeledSeconds, model.alltoallv(2, 0, 0));
    EXPECT_GT(m.modeledSeconds, 0.0);
}

TEST(Migration, NoMigrationCostsNothing) {
    const std::vector<std::int64_t> ids{0, 1};
    const std::vector<std::int32_t> blocks{0, 1};
    const MigrationStats m = migrationStats(ids, blocks, ids, blocks, {}, 2, 2, 32);
    EXPECT_EQ(m.migratedPoints, 0);
    EXPECT_DOUBLE_EQ(m.modeledSeconds, 0.0);
}

TEST(Migration, WeightedFractionUsesCurrentWeights) {
    const std::vector<std::int64_t> ids{0, 1};
    const std::vector<std::int32_t> prev{0, 1};
    const std::vector<std::int32_t> curr{1, 1};
    const std::vector<double> weights{3.0, 1.0};
    const MigrationStats m = migrationStats(ids, prev, ids, curr, weights, 2, 1, 8);
    EXPECT_DOUBLE_EQ(m.migratedWeight, 3.0);
    EXPECT_DOUBLE_EQ(m.survivingWeight, 4.0);
    EXPECT_NEAR(m.migratedFraction, 0.75, 1e-12);
}

TEST(GraphMetrics, PartitionChangeWeighted) {
    const geo::graph::Partition a{0, 0, 1, 1};
    const geo::graph::Partition b{0, 1, 1, 0};
    EXPECT_DOUBLE_EQ(geo::graph::partitionChange(a, b), 0.5);
    const std::vector<double> w{1.0, 2.0, 1.0, 4.0};
    EXPECT_DOUBLE_EQ(geo::graph::partitionChange(a, b, w), 6.0 / 8.0);
    EXPECT_DOUBLE_EQ(geo::graph::partitionChange(a, a, w), 0.0);
}

TEST(BalancedKMeans, InitialInfluencePlumbing) {
    Xoshiro256 rng(3);
    std::vector<Point2> pts;
    for (int i = 0; i < 500; ++i) pts.push_back(Point2{{rng.uniform(), rng.uniform()}});
    std::vector<Point2> centers{Point2{{0.25, 0.5}}, Point2{{0.75, 0.5}}};
    Settings good;
    good.initialInfluence = {1.1, 0.9};
    Settings badSize;
    badSize.initialInfluence = {1.0};
    Settings badValue;
    badValue.initialInfluence = {1.0, 0.0};
    runSpmd(1, [&](Comm& comm) {
        const auto out = geo::core::balancedKMeans<2>(comm, pts, {}, centers, good);
        EXPECT_EQ(out.influence.size(), 2u);
        EXPECT_THROW(
            (void)geo::core::balancedKMeans<2>(comm, pts, {}, centers, badSize),
            std::invalid_argument);
        EXPECT_THROW(
            (void)geo::core::balancedKMeans<2>(comm, pts, {}, centers, badValue),
            std::invalid_argument);
    });
}

TEST(Repartition, WarmStartDeterministicAcrossRuns) {
    const auto cfg = smallConfig(ScenarioKind::Advection);
    Settings s;
    s.epsilon = 0.05;
    std::vector<geo::graph::Partition> first;
    for (int trial = 0; trial < 2; ++trial) {
        Scenario<2> scenario(cfg);
        RepartState<2> state;
        std::vector<geo::graph::Partition> parts;
        for (int t = 0; t < 3; ++t) {
            const auto res = repartitionGeographer<2>(scenario.current().points, {}, 4, 2,
                                                      s, state);
            parts.push_back(res.result.partition);
            scenario.advance();
        }
        if (trial == 0)
            first = parts;
        else
            EXPECT_EQ(first, parts);
    }
}

TEST(Repartition, WarmStartsAfterFirstStepAndKeepsBalance) {
    const auto cfg = smallConfig(ScenarioKind::Advection);
    Scenario<2> scenario(cfg);
    Settings s;
    s.epsilon = 0.05;
    RepartState<2> state;
    for (int t = 0; t < 4; ++t) {
        const auto res =
            repartitionGeographer<2>(scenario.current().points, {}, 4, 2, s, state);
        // Step 0 has no state (cold); gentle advection warm-starts afterwards.
        EXPECT_EQ(res.warmStarted, t > 0) << "step " << t;
        EXPECT_LE(res.result.imbalance, s.epsilon + 1e-9) << "step " << t;
        const auto imb = geo::graph::imbalance(res.result.partition, 4);
        EXPECT_LE(imb, s.epsilon + 1e-9) << "step " << t;
        scenario.advance();
    }
}

TEST(Repartition, HotspotStaysBalancedUnderInsertDelete) {
    auto cfg = smallConfig(ScenarioKind::Hotspot);
    cfg.hotspotBoost = 0.3;
    Scenario<2> scenario(cfg);
    Settings s;
    s.epsilon = 0.05;
    RepartState<2> state;
    for (int t = 0; t < 3; ++t) {
        const auto& step = scenario.current();
        // Hotspot is the one scenario with node weights (refinement points
        // are heavier) — exercise the weighted repartitioning path.
        ASSERT_EQ(step.weights.size(), step.points.size());
        EXPECT_GT(*std::max_element(step.weights.begin(), step.weights.end()), 1.0);
        const auto res =
            repartitionGeographer<2>(step.points, step.weights, 4, 2, s, state);
        EXPECT_LE(res.result.imbalance, s.epsilon + 1e-9) << "step " << t;
        ASSERT_EQ(res.result.partition.size(), step.points.size());
        scenario.advance();
    }
}

TEST(Repartition, ColdFallbackTriggersOnLargeDrift) {
    Xoshiro256 rng(13);
    std::vector<Point2> cloud;
    for (int i = 0; i < 2000; ++i)
        cloud.push_back(Point2{{rng.uniform(), rng.uniform()}});
    Settings s;
    RepartState<2> state;
    const auto warm0 = repartitionGeographer<2>(cloud, {}, 4, 2, s, state);
    EXPECT_FALSE(warm0.warmStarted);  // no prior state
    // No usable state: the probe never ran, so no drift and no probe phase.
    EXPECT_FALSE(warm0.normalizedDrift.has_value());
    EXPECT_EQ(warm0.result.phaseSeconds.count("probe"), 0u);

    // Same cloud again: negligible drift, warm path.
    const auto warm1 = repartitionGeographer<2>(cloud, {}, 4, 2, s, state);
    EXPECT_TRUE(warm1.warmStarted);
    ASSERT_TRUE(warm1.normalizedDrift.has_value());
    EXPECT_LT(*warm1.normalizedDrift, 0.25);
    EXPECT_EQ(warm1.result.phaseSeconds.count("probe"), 1u);

    // Teleport the workload far away: the probe must reject the old centers.
    auto shifted = cloud;
    for (auto& p : shifted) p = Point2{{p[0] * 0.3 + 7.0, p[1] * 0.3 - 4.0}};
    const auto cold = repartitionGeographer<2>(shifted, {}, 4, 2, s, state);
    EXPECT_FALSE(cold.warmStarted);
    ASSERT_TRUE(cold.normalizedDrift.has_value());
    EXPECT_GT(*cold.normalizedDrift, 0.25);
    EXPECT_LE(cold.result.imbalance, s.epsilon + 1e-9);
}

TEST(Repartition, ColdFallbackWhenClusterRegionVacates) {
    // Step 0: uniform cloud plus a dense far-away blob that claims at least
    // one center. Step 1: the blob is gone — its center is stranded in
    // empty space, which influence adaptation alone recovers from slowly.
    // The probe must detect the sample-empty cluster and go cold.
    Xoshiro256 rng(23);
    std::vector<Point2> withBlob, withoutBlob;
    for (int i = 0; i < 1500; ++i) {
        const Point2 p{{rng.uniform(), rng.uniform()}};
        withBlob.push_back(p);
        withoutBlob.push_back(p);
    }
    for (int i = 0; i < 1500; ++i)
        withBlob.push_back(Point2{{8.0 + 0.1 * rng.uniform(), 8.0 + 0.1 * rng.uniform()}});
    Settings s;
    RepartState<2> state;
    (void)repartitionGeographer<2>(withBlob, {}, 4, 2, s, state);
    const auto res = repartitionGeographer<2>(withoutBlob, {}, 4, 2, s, state);
    EXPECT_FALSE(res.warmStarted);
    EXPECT_LE(res.result.imbalance, s.epsilon + 1e-9);
}

TEST(Repartition, HeavySparseClusterDoesNotSpuriouslyGoCold) {
    // k-means balances by WEIGHT but the drift probe samples by COUNT: a
    // block made of a few very heavy points may win no sampled point at
    // all. That must not be mistaken for a stranded center — on an
    // identical (zero-drift) cloud the warm path must be taken.
    Xoshiro256 rng(29);
    std::vector<Point2> pts;
    std::vector<double> w;
    for (int i = 0; i < 20000; ++i) {
        pts.push_back(Point2{{rng.uniform(), rng.uniform()}});
        w.push_back(1.0);
    }
    for (int i = 0; i < 5; ++i) {
        pts.push_back(Point2{{0.02 * rng.uniform(), 0.02 * rng.uniform()}});
        w.push_back(2000.0);
    }
    Settings s;
    s.epsilon = 0.05;
    RepartState<2> state;
    (void)repartitionGeographer<2>(pts, w, 4, 2, s, state);
    const auto again = repartitionGeographer<2>(pts, w, 4, 2, s, state);
    EXPECT_TRUE(again.warmStarted);
    ASSERT_TRUE(again.normalizedDrift.has_value());
    EXPECT_LT(*again.normalizedDrift, 0.25);
}

TEST(Repartition, ForceFlagsOverrideProbe) {
    Xoshiro256 rng(17);
    std::vector<Point2> cloud;
    for (int i = 0; i < 1500; ++i)
        cloud.push_back(Point2{{rng.uniform(), rng.uniform()}});
    Settings s;
    RepartState<2> state;
    (void)repartitionGeographer<2>(cloud, {}, 3, 2, s, state);
    RepartOptions forceCold;
    forceCold.forceCold = true;
    const auto cold = repartitionGeographer<2>(cloud, {}, 3, 2, s, state, forceCold);
    EXPECT_FALSE(cold.warmStarted);
    // Forced paths skip the probe: "probe not run" must be distinguishable
    // from "measured zero drift".
    EXPECT_FALSE(cold.normalizedDrift.has_value());
    EXPECT_EQ(cold.result.phaseSeconds.count("probe"), 0u);
    RepartOptions forceWarm;
    forceWarm.forceWarm = true;
    const auto warm = repartitionGeographer<2>(cloud, {}, 3, 2, s, state, forceWarm);
    EXPECT_TRUE(warm.warmStarted);
    EXPECT_FALSE(warm.normalizedDrift.has_value());
    EXPECT_EQ(warm.result.phaseSeconds.count("probe"), 0u);
}

TEST(Repartition, WarmNeedsFewerOuterIterationsThanCold) {
    auto cfg = smallConfig(ScenarioKind::Advection);
    cfg.basePoints = 4000;
    Scenario<2> scenario(cfg);
    Settings s;
    s.epsilon = 0.05;
    RepartState<2> state;
    (void)repartitionGeographer<2>(scenario.current().points, {}, 6, 2, s, state);
    scenario.advance();

    const auto warm =
        repartitionGeographer<2>(scenario.current().points, {}, 6, 2, s, state);
    ASSERT_TRUE(warm.warmStarted);
    const auto cold =
        geo::core::partitionGeographer<2>(scenario.current().points, {}, 6, 2, s);
    EXPECT_LT(warm.result.counters.outerIterations, cold.counters.outerIterations);
}

TEST(Repartition, WarmMigratesLessThanColdRerun) {
    auto cfg = smallConfig(ScenarioKind::Advection);
    Scenario<2> scenario(cfg);
    Settings s;
    s.epsilon = 0.05;

    RepartState<2> warmState, coldState;
    const auto& step0 = scenario.current();
    const auto base = repartitionGeographer<2>(step0.points, {}, 4, 2, s, warmState);
    coldState = warmState;  // identical starting partition for both strategies
    const auto prevIds = step0.ids;
    const auto prevPart = base.result.partition;

    scenario.advance();
    const auto& step1 = scenario.current();
    const auto warm = repartitionGeographer<2>(step1.points, {}, 4, 2, s, warmState);
    ASSERT_TRUE(warm.warmStarted);
    RepartOptions forceCold;
    forceCold.forceCold = true;
    const auto cold =
        repartitionGeographer<2>(step1.points, {}, 4, 2, s, coldState, forceCold);

    const auto bpp = geo::repart::migrationBytesPerPoint(2);
    const auto mWarm = migrationStats(prevIds, prevPart, step1.ids,
                                      warm.result.partition, {}, 4, 2, bpp);
    const auto mCold = migrationStats(prevIds, prevPart, step1.ids,
                                      cold.result.partition, {}, 4, 2, bpp);
    EXPECT_LT(mWarm.migratedFraction, mCold.migratedFraction);
}

}  // namespace
