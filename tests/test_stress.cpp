// Stress and fuzz tests: randomized collective sequences, adversarial sort
// inputs, near-degenerate Delaunay configurations, and cross-validation of
// the metric implementations against brute-force recomputation.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "gen/delaunay2d.hpp"
#include "gen/delaunay3d.hpp"
#include "graph/metrics.hpp"
#include "par/comm.hpp"
#include "par/sort.hpp"
#include "support/rng.hpp"

namespace {

using namespace geo;
using geo::par::Comm;
using geo::par::runSpmd;

TEST(CommStress, RandomizedCollectiveSequencesStayConsistent) {
    // All ranks execute the same randomized schedule of collectives; the
    // replicated results must agree bit-for-bit at every step.
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        runSpmd(5, [&](Comm& comm) {
            Xoshiro256 schedule(seed);  // same stream on every rank
            Xoshiro256 localRng(1000 * seed + static_cast<std::uint64_t>(comm.rank()));
            double replicated = 0.0;
            for (int step = 0; step < 40; ++step) {
                const auto op = schedule.below(4);
                const double mine = localRng.uniform();
                double value = 0.0;
                switch (op) {
                    case 0: value = comm.allreduceSum(mine); break;
                    case 1: value = comm.allreduceMax(mine); break;
                    case 2: value = comm.allreduceMin(mine); break;
                    case 3: {
                        const auto all = comm.allgather(mine);
                        value = all[static_cast<std::size_t>(step) % all.size()];
                        break;
                    }
                }
                replicated += value;
                // Every rank must hold the identical running value.
                EXPECT_EQ(comm.allreduceMax(replicated), comm.allreduceMin(replicated));
            }
        });
    }
}

TEST(CommStress, LargePayloadAllreduce) {
    runSpmd(3, [&](Comm& comm) {
        std::vector<double> big(100000, static_cast<double>(comm.rank() + 1));
        comm.allreduceSum(std::span<double>(big));
        for (const double v : big) EXPECT_DOUBLE_EQ(v, 6.0);
    });
}

TEST(SortStress, AdversarialInputs) {
    using Rec = par::KeyedRecord<std::uint64_t, std::int32_t>;
    struct Case {
        const char* name;
        std::function<std::uint64_t(int rank, int i, Xoshiro256&)> key;
    };
    const Case cases[] = {
        {"presorted", [](int r, int i, Xoshiro256&) {
             return static_cast<std::uint64_t>(r) * 100000 + static_cast<std::uint64_t>(i);
         }},
        {"reversed", [](int r, int i, Xoshiro256&) {
             return 1000000000ULL - static_cast<std::uint64_t>(r) * 100000 -
                    static_cast<std::uint64_t>(i);
         }},
        {"few-distinct", [](int, int, Xoshiro256& rng) { return rng.below(3); }},
        {"one-hot", [](int r, int i, Xoshiro256&) {
             return (r == 2 && i < 10) ? 0ULL : 777ULL;
         }},
    };
    for (const auto& c : cases) {
        runSpmd(4, [&](Comm& comm) {
            Xoshiro256 rng(50 + static_cast<std::uint64_t>(comm.rank()));
            std::vector<Rec> local;
            for (int i = 0; i < 500; ++i)
                local.push_back(Rec{c.key(comm.rank(), i, rng), comm.rank() * 500 + i});
            auto sorted = par::sampleSort(comm, local);
            EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end())) << c.name;
            const auto total = comm.allreduceSum(static_cast<std::uint64_t>(sorted.size()));
            EXPECT_EQ(total, 2000u) << c.name;
            // Global sortedness across rank boundaries.
            const auto all = comm.allgatherv(std::span<const Rec>(sorted));
            EXPECT_TRUE(std::is_sorted(all.begin(), all.end())) << c.name;
        });
    }
}

TEST(DelaunayFuzz, JitteredGridsAndClustersStayValid) {
    // Near-degenerate configurations: jittered lattices (almost cocircular
    // quads) and tight clusters with far outliers.
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
        Xoshiro256 rng(seed);
        std::vector<Point2> pts;
        const int g = 18;
        for (int i = 0; i < g; ++i)
            for (int j = 0; j < g; ++j)
                pts.push_back(Point2{{i + 1e-7 * rng.uniform(-1, 1),
                                      j + 1e-7 * rng.uniform(-1, 1)}});
        for (int c = 0; c < 30; ++c)
            pts.push_back(Point2{{1e3 + rng.uniform(), 1e3 + rng.uniform()}});
        const auto graph = gen::delaunayTriangulate2d(pts);
        EXPECT_NO_THROW(graph.validate()) << "seed " << seed;
        EXPECT_EQ(graph::connectedComponents(graph).count, 1) << "seed " << seed;
    }
}

TEST(DelaunayFuzz, AnisotropicCloud3d) {
    // Extremely stretched 3D clouds stress the circumsphere predicate.
    Xoshiro256 rng(9);
    std::vector<Point3> pts;
    for (int i = 0; i < 500; ++i)
        pts.push_back(Point3{{1000.0 * rng.uniform(), rng.uniform(), 0.001 * rng.uniform()}});
    const auto graph = gen::delaunayTriangulate3d(pts);
    EXPECT_NO_THROW(graph.validate());
    EXPECT_EQ(graph::connectedComponents(graph).count, 1);
}

TEST(MetricsCrossCheck, CutAndVolumeAgainstBruteForce) {
    // Random partitions on a random mesh: edgeCut and communicationVolume
    // must match a naive recomputation.
    const auto mesh = gen::delaunay2d(800, 77);
    Xoshiro256 rng(78);
    for (int trial = 0; trial < 5; ++trial) {
        const std::int32_t k = 2 + static_cast<std::int32_t>(rng.below(6));
        graph::Partition part(mesh.points.size());
        for (auto& b : part) b = static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(k)));

        std::vector<std::int64_t> volBrute(static_cast<std::size_t>(k), 0);
        for (graph::Vertex v = 0; v < mesh.graph.numVertices(); ++v) {
            std::set<std::int32_t> foreign;
            for (const auto u : mesh.graph.neighbors(v)) {
                if (part[static_cast<std::size_t>(u)] != part[static_cast<std::size_t>(v)])
                    foreign.insert(part[static_cast<std::size_t>(u)]);
            }
            volBrute[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
                static_cast<std::int64_t>(foreign.size());
        }
        // Count cut edges once per unordered pair.
        std::int64_t cutPairs = 0;
        for (graph::Vertex v = 0; v < mesh.graph.numVertices(); ++v)
            for (const auto u : mesh.graph.neighbors(v))
                if (u > v &&
                    part[static_cast<std::size_t>(u)] != part[static_cast<std::size_t>(v)])
                    ++cutPairs;
        EXPECT_EQ(graph::edgeCut(mesh.graph, part), cutPairs);
        EXPECT_EQ(graph::communicationVolume(mesh.graph, part, k), volBrute);
    }
}

TEST(MetricsCrossCheck, DiameterBoundNeverExceedsTrueDiameter) {
    // On small blocks, compare the iFUB lower bound against an exact
    // all-pairs BFS diameter.
    const auto mesh = gen::delaunay2d(300, 81);
    graph::Partition part(mesh.points.size());
    for (std::size_t i = 0; i < part.size(); ++i)
        part[i] = mesh.points[i][0] < 0.5 ? 0 : 1;
    for (std::int32_t b = 0; b < 2; ++b) {
        const auto bound = graph::blockDiameterLowerBound(mesh.graph, part, b);
        if (bound == graph::kInfiniteDiameter) continue;
        std::int32_t exact = 0;
        for (graph::Vertex v = 0; v < mesh.graph.numVertices(); ++v) {
            if (part[static_cast<std::size_t>(v)] != b) continue;
            const auto r = graph::bfs(mesh.graph, v, part, b);
            exact = std::max(exact, r.eccentricity);
        }
        EXPECT_LE(bound, exact);
        EXPECT_GE(2 * bound, exact);  // double sweep is a 2-approximation
    }
}

}  // namespace
