#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/eigen.hpp"
#include "geometry/point.hpp"
#include "support/rng.hpp"

namespace {

using geo::Box2;
using geo::Box3;
using geo::Point2;
using geo::Point3;

TEST(Point, Arithmetic) {
    const Point2 a{{1.0, 2.0}};
    const Point2 b{{3.0, 5.0}};
    EXPECT_EQ((a + b), (Point2{{4.0, 7.0}}));
    EXPECT_EQ((b - a), (Point2{{2.0, 3.0}}));
    EXPECT_EQ((a * 2.0), (Point2{{2.0, 4.0}}));
    EXPECT_EQ((a / 2.0), (Point2{{0.5, 1.0}}));
}

TEST(Point, DotAndNorm) {
    const Point3 a{{1.0, 2.0, 2.0}};
    EXPECT_DOUBLE_EQ(geo::dot(a, a), 9.0);
    EXPECT_DOUBLE_EQ(geo::norm(a), 3.0);
}

TEST(Point, DistanceIsMetric) {
    geo::Xoshiro256 rng(11);
    for (int i = 0; i < 200; ++i) {
        Point3 a, b, c;
        for (int d = 0; d < 3; ++d) {
            a[d] = rng.uniform(-1, 1);
            b[d] = rng.uniform(-1, 1);
            c[d] = rng.uniform(-1, 1);
        }
        const double ab = geo::distance(a, b);
        const double ba = geo::distance(b, a);
        EXPECT_DOUBLE_EQ(ab, ba);
        EXPECT_LE(ab, geo::distance(a, c) + geo::distance(c, b) + 1e-12);
        EXPECT_GE(ab, 0.0);
    }
    const Point3 p{{0.3, 0.4, 0.5}};
    EXPECT_DOUBLE_EQ(geo::distance(p, p), 0.0);
}

TEST(Box, EmptyIsInvalidUntilExtended) {
    auto b = Box2::empty();
    EXPECT_FALSE(b.valid());
    b.extend(Point2{{1.0, 2.0}});
    EXPECT_TRUE(b.valid());
    EXPECT_TRUE(b.contains(Point2{{1.0, 2.0}}));
}

TEST(Box, AroundContainsAllPoints) {
    geo::Xoshiro256 rng(13);
    std::vector<Point2> pts;
    for (int i = 0; i < 500; ++i)
        pts.push_back(Point2{{rng.uniform(-5, 5), rng.uniform(0, 10)}});
    const auto b = Box2::around(pts);
    for (const auto& p : pts) EXPECT_TRUE(b.contains(p));
}

TEST(Box, MinMaxDistanceBracketTrueDistances) {
    geo::Xoshiro256 rng(17);
    Box3 b;
    b.lo = Point3{{0.0, 0.0, 0.0}};
    b.hi = Point3{{1.0, 2.0, 3.0}};
    for (int i = 0; i < 500; ++i) {
        Point3 q{{rng.uniform(-4, 5), rng.uniform(-4, 6), rng.uniform(-4, 7)}};
        // Sample points inside the box; min/max distances must bracket them.
        Point3 inside{{rng.uniform(0, 1), rng.uniform(0, 2), rng.uniform(0, 3)}};
        const double d = geo::distance(q, inside);
        EXPECT_LE(b.minDistance(q), d + 1e-12);
        EXPECT_GE(b.maxDistance(q), d - 1e-12);
    }
}

TEST(Box, MinDistanceZeroInside) {
    Box2 b;
    b.lo = Point2{{0.0, 0.0}};
    b.hi = Point2{{1.0, 1.0}};
    EXPECT_DOUBLE_EQ(b.minDistance(Point2{{0.5, 0.5}}), 0.0);
    EXPECT_DOUBLE_EQ(b.minDistance(Point2{{2.0, 0.5}}), 1.0);
}

TEST(Box, WidestAxis) {
    Box3 b;
    b.lo = Point3{{0.0, 0.0, 0.0}};
    b.hi = Point3{{1.0, 5.0, 2.0}};
    EXPECT_EQ(b.widestAxis(), 1);
}

TEST(Box, CenterAndExtent) {
    Box2 b;
    b.lo = Point2{{-1.0, 0.0}};
    b.hi = Point2{{3.0, 2.0}};
    EXPECT_EQ(b.center(), (Point2{{1.0, 1.0}}));
    EXPECT_EQ(b.extent(), (Point2{{4.0, 2.0}}));
}

TEST(Centroid, UnweightedMean) {
    std::vector<Point2> pts{{{0.0, 0.0}}, {{2.0, 0.0}}, {{1.0, 3.0}}};
    const auto c = geo::centroid<2>(pts);
    EXPECT_NEAR(c[0], 1.0, 1e-12);
    EXPECT_NEAR(c[1], 1.0, 1e-12);
}

TEST(Centroid, WeightsShiftTheMean) {
    std::vector<Point2> pts{{{0.0, 0.0}}, {{1.0, 0.0}}};
    std::vector<double> w{1.0, 3.0};
    const auto c = geo::centroid<2>(pts, w);
    EXPECT_NEAR(c[0], 0.75, 1e-12);
}

TEST(Centroid, EmptyThrows) {
    std::vector<Point2> none;
    EXPECT_THROW(geo::centroid<2>(none), std::invalid_argument);
}

TEST(PrincipalAxis, RecoversDominantDirection2D) {
    // Points stretched along (1,1)/sqrt(2).
    geo::Xoshiro256 rng(23);
    std::vector<Point2> pts;
    for (int i = 0; i < 2000; ++i) {
        const double t = rng.uniform(-10, 10);
        const double noise = rng.uniform(-0.1, 0.1);
        pts.push_back(Point2{{t + noise, t - noise}});
    }
    const auto axis = geo::principalAxis<2>(geo::covarianceMatrix<2>(pts));
    const double align = std::abs(axis[0] * M_SQRT1_2 + axis[1] * M_SQRT1_2);
    EXPECT_GT(align, 0.999);
    EXPECT_NEAR(geo::norm(axis), 1.0, 1e-9);
}

TEST(PrincipalAxis, RecoversDominantDirection3D) {
    geo::Xoshiro256 rng(29);
    std::vector<Point3> pts;
    for (int i = 0; i < 2000; ++i) {
        const double t = rng.uniform(-10, 10);
        pts.push_back(Point3{{0.05 * rng.uniform(-1, 1), t, 0.05 * rng.uniform(-1, 1)}});
    }
    const auto axis = geo::principalAxis<3>(geo::covarianceMatrix<3>(pts));
    EXPECT_GT(std::abs(axis[1]), 0.999);
}

TEST(PrincipalAxis, DegenerateAllEqualPointsYieldsUnitVector) {
    std::vector<Point2> pts(10, Point2{{1.0, 1.0}});
    const auto axis = geo::principalAxis<2>(geo::covarianceMatrix<2>(pts));
    EXPECT_NEAR(geo::norm(axis), 1.0, 1e-9);
}

TEST(Covariance, DiagonalForAxisAlignedSpread) {
    geo::Xoshiro256 rng(31);
    std::vector<Point2> pts;
    for (int i = 0; i < 20000; ++i)
        pts.push_back(Point2{{rng.uniform(-1, 1), rng.uniform(-0.1, 0.1)}});
    const auto m = geo::covarianceMatrix<2>(pts);
    EXPECT_NEAR(m[0][1], 0.0, 0.01);
    EXPECT_GT(m[0][0], m[1][1]);
}

}  // namespace
