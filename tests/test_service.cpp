// Suite for the SLO-governed serving service (serve/service.hpp).
//
// Dual-purpose binary like test_fault: with no --worker flag it is a normal
// gtest binary; `--worker=wedge` re-runs the bounded-staleness scenario in a
// child process whose environment carries GEO_FAULT=delay:op=repart — the
// fault spec is parsed once per process, so wedging the repartition worker
// through the REAL injection path needs a fresh process, not a setenv.
//
// What the suite proves, mapped to the serving contract:
//   * epoch consistency — every route() ticket names a published epoch and
//     its blocks are bitwise what that epoch's snapshot answers,
//   * bounded staleness — a wedged repartition worker (hook- and
//     GEO_FAULT-wedged) drives the controller to Shedding once the applied
//     churn outruns maxStalenessEvents: Low-priority queries bounce with
//     Overloaded, High-priority queries are still answered,
//   * backpressure — producers block before the ingest queue ever exceeds
//     its event bound, and the state machine reports it,
//   * degradation — a publish-failure storm leaves every route answering
//     from the last good epoch with zero failed queries, and the service
//     recovers on the first successful publish,
//   * poison — the only path to the Poisoned state, surfaced as a typed
//     ticket, never an exception,
//   * the latency histogram survives concurrent recording (the TSan job
//     runs this binary).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "repart/scenarios.hpp"
#include "serve/service.hpp"
#include "support/histogram.hpp"
#include "support/rng.hpp"

namespace {

using namespace geo;
using serve::PartitionService;
using serve::QueryPriority;
using serve::RouteStatus;
using serve::ServiceConfig;
using serve::ServiceState;

/// Manual-reset gate for wedging service hooks from the test body.
class Gate {
public:
    void open() {
        {
            const std::lock_guard<std::mutex> lock(m_);
            open_ = true;
        }
        cv_.notify_all();
    }
    void wait() {
        std::unique_lock<std::mutex> lock(m_);
        cv_.wait(lock, [this] { return open_; });
    }
    /// True once at least one waiter arrived (the hook is wedged).
    [[nodiscard]] bool engaged() const {
        const std::lock_guard<std::mutex> lock(m_);
        return engaged_;
    }
    void markEngaged() {
        {
            const std::lock_guard<std::mutex> lock(m_);
            engaged_ = true;
        }
        cv_.notify_all();
    }

private:
    mutable std::mutex m_;
    std::condition_variable cv_;
    bool open_ = false;
    bool engaged_ = false;
};

repart::WorkloadStep<2> makeStep(std::int64_t n, std::uint64_t seed = 7) {
    Xoshiro256 rng(seed);
    repart::WorkloadStep<2> step;
    step.ids.resize(static_cast<std::size_t>(n));
    step.points.resize(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        step.ids[static_cast<std::size_t>(i)] = i;
        for (int d = 0; d < 2; ++d)
            step.points[static_cast<std::size_t>(i)][d] = rng.uniform();
    }
    return step;
}

/// `count` Move events over the first ids of `step`, fresh uniform targets.
std::vector<repart::ChurnEvent<2>> moveEvents(const repart::WorkloadStep<2>& step,
                                              std::size_t count,
                                              std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<repart::ChurnEvent<2>> events;
    events.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        repart::ChurnEvent<2> e;
        e.kind = repart::ChurnEvent<2>::Kind::Move;
        e.id = step.ids[i % step.ids.size()];
        for (int d = 0; d < 2; ++d) e.point[d] = rng.uniform();
        events.push_back(e);
    }
    return events;
}

// ------------------------------------------------------------- churn diff

TEST(ChurnDiff, RoundTripsScenarioSteps) {
    repart::ScenarioConfig cfg;
    cfg.kind = repart::ScenarioKind::Churn;
    cfg.basePoints = 500;
    cfg.churnFraction = 0.2;
    cfg.seed = 11;
    repart::Scenario<2> scenario(cfg);
    auto prev = scenario.current();
    for (int step = 0; step < 3; ++step) {
        scenario.advance();
        const auto& next = scenario.current();
        const auto events = repart::diffSteps(prev, next);

        // Apply the events to prev; the result must equal next as an
        // id → point map.
        std::map<std::int64_t, Point2> state;
        for (std::size_t i = 0; i < prev.ids.size(); ++i)
            state[prev.ids[i]] = prev.points[i];
        for (const auto& e : events) {
            switch (e.kind) {
                case repart::ChurnEvent<2>::Kind::Remove:
                    ASSERT_EQ(state.erase(e.id), 1u);
                    break;
                case repart::ChurnEvent<2>::Kind::Insert:
                    ASSERT_FALSE(state.count(e.id));
                    state[e.id] = e.point;
                    break;
                case repart::ChurnEvent<2>::Kind::Move:
                    ASSERT_TRUE(state.count(e.id));
                    state[e.id] = e.point;
                    break;
            }
        }
        ASSERT_EQ(state.size(), next.ids.size());
        for (std::size_t i = 0; i < next.ids.size(); ++i) {
            const auto it = state.find(next.ids[i]);
            ASSERT_NE(it, state.end());
            EXPECT_EQ(it->second, next.points[i]);
        }
        prev = next;
    }
}

TEST(ChurnDiff, IdenticalStepsDiffEmpty) {
    const auto step = makeStep(100);
    EXPECT_TRUE(repart::diffSteps(step, step).empty());
}

// ------------------------------------------------------------ service core

TEST(Service, ServableImmediatelyWithEpochOne) {
    ServiceConfig<2> cfg;
    cfg.blocks = 4;
    PartitionService<2> service(cfg, makeStep(400));
    std::vector<Point2> q{{0.1, 0.2}, {0.9, 0.8}};
    std::vector<std::int32_t> out(q.size(), -1);
    const auto ticket = service.route(q, out);
    EXPECT_EQ(ticket.status, RouteStatus::Ok);
    EXPECT_EQ(ticket.epoch, 1u);
    for (const auto b : out) {
        EXPECT_GE(b, 0);
        EXPECT_LT(b, 4);
    }
    const auto health = service.health();
    EXPECT_EQ(health.state, ServiceState::Healthy);
    EXPECT_EQ(health.publishedEpochs, 1u);
    EXPECT_EQ(health.servedBatches, 1u);
    EXPECT_GT(health.p99LatencySeconds, 0.0);
    EXPECT_TRUE(health.router.servable());
}

TEST(Service, RoutesAreConsistentWithSomePublishedEpoch) {
    ServiceConfig<2> cfg;
    cfg.blocks = 8;
    cfg.repartitionIntervalSeconds = 0.005;

    // Record every published snapshot by epoch; the frontier cross-checks
    // each ticket against the recorded snapshot it claims answered.
    std::mutex snapMutex;
    std::map<std::uint64_t, std::shared_ptr<const serve::PartitionSnapshot<2>>> byEpoch;
    cfg.onPublish = [&](std::uint64_t epoch, auto snap) {
        const std::lock_guard<std::mutex> lock(snapMutex);
        byEpoch[epoch] = std::move(snap);
    };

    const auto initial = makeStep(2000);
    PartitionService<2> service(cfg, initial);

    std::atomic<bool> running{true};
    std::thread producer([&] {
        std::uint64_t seed = 100;
        while (running.load(std::memory_order_acquire)) {
            service.submit(moveEvents(initial, 400, seed++));
            service.requestRepartition();
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    });

    std::vector<std::thread> frontier;
    std::atomic<int> failures{0};
    std::atomic<int> checked{0};
    for (int t = 0; t < 4; ++t) {
        frontier.emplace_back([&, t] {
            Xoshiro256 rng(500 + static_cast<std::uint64_t>(t));
            std::vector<Point2> query(128);
            for (auto& p : query)
                for (int d = 0; d < 2; ++d) p[d] = rng.uniform();
            std::vector<std::int32_t> got(query.size());
            std::vector<std::int32_t> expected(query.size());
            while (running.load(std::memory_order_acquire)) {
                const auto ticket = service.route(query, got);
                if (ticket.status != RouteStatus::Ok) continue;
                // The route can land between the epoch swap and the
                // recording onPublish callback; give the recorder a moment
                // before declaring the epoch unaccounted for.
                std::shared_ptr<const serve::PartitionSnapshot<2>> snap;
                for (int spin = 0; spin < 2000 && !snap; ++spin) {
                    {
                        const std::lock_guard<std::mutex> lock(snapMutex);
                        const auto it = byEpoch.find(ticket.epoch);
                        if (it != byEpoch.end()) snap = it->second;
                    }
                    if (!snap)
                        std::this_thread::sleep_for(std::chrono::microseconds(50));
                }
                if (!snap) {  // a ticket for an unrecorded epoch is a failure
                    failures.fetch_add(1);
                    continue;
                }
                snap->blockOf(std::span<const Point2>(query),
                              std::span<std::int32_t>(expected));
                if (got != expected) failures.fetch_add(1);
                checked.fetch_add(1);
            }
        });
    }
    // Keep the frontier live across several real republishes, so routes are
    // checked while publishes are actually landing mid-stream.
    EXPECT_TRUE(service.waitForEpoch(4, 60.0));
    running.store(false);
    for (auto& t : frontier) t.join();
    producer.join();

    EXPECT_EQ(failures.load(), 0);
    EXPECT_GT(checked.load(), 0);
    // The churn stream forced actual republishing while the frontier ran.
    EXPECT_GT(service.health().publishedEpochs, 1u);
}

// --------------------------------------------------------------- staleness

TEST(Service, WedgedWorkerShedsLowPriorityOnceEventBoundExceeded) {
    Gate wedge;
    ServiceConfig<2> cfg;
    cfg.blocks = 4;
    cfg.slo.maxStalenessEvents = 300;
    cfg.repartitionIntervalSeconds = 0.002;
    cfg.repartHook = [&](std::uint64_t) {
        wedge.markEngaged();
        wedge.wait();
    };
    const auto initial = makeStep(1500);
    PartitionService<2> service(cfg, initial);

    ASSERT_TRUE(service.submit(moveEvents(initial, 1000, 1)));
    ASSERT_TRUE(service.waitForIngestDrain(10.0));

    const auto health = service.health();
    EXPECT_EQ(health.state, ServiceState::Shedding);
    EXPECT_GT(health.stalenessEvents, cfg.slo.maxStalenessEvents);

    std::vector<Point2> q{{0.5, 0.5}};
    std::vector<std::int32_t> out(1, -1);
    const auto low = service.route(q, out, QueryPriority::Low);
    EXPECT_EQ(low.status, RouteStatus::Overloaded);
    const auto high = service.route(q, out, QueryPriority::High);
    EXPECT_EQ(high.status, RouteStatus::Ok);
    EXPECT_EQ(high.epoch, 1u);  // still the pre-wedge epoch, never garbage
    EXPECT_GE(service.health().shedQueries, 1u);

    // The transition log must show the Healthy → Shedding edge with the
    // event-staleness reason.
    bool sawEdge = false;
    for (const auto& t : service.health().transitions)
        sawEdge = sawEdge || (t.from == ServiceState::Healthy &&
                              t.to == ServiceState::Shedding &&
                              t.reason.find("events") != std::string::npos);
    EXPECT_TRUE(sawEdge);

    wedge.open();
    // Unwedged, the worker publishes a fresh epoch and the service heals.
    EXPECT_TRUE(service.waitForEpoch(2, 30.0));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const auto healed = service.route(q, out, QueryPriority::Low);
    EXPECT_EQ(healed.status, RouteStatus::Ok);
    EXPECT_GE(healed.epoch, 2u);
}

// ------------------------------------------------------------ backpressure

TEST(Service, BackpressureBlocksProducersBeforeQueueExceedsBound) {
    Gate drainGate;
    ServiceConfig<2> cfg;
    cfg.blocks = 4;
    cfg.slo.ingestQueueBound = 100;
    cfg.ingestHook = [&](std::uint64_t) {
        drainGate.markEngaged();
        drainGate.wait();
    };
    const auto initial = makeStep(800);
    PartitionService<2> service(cfg, initial);

    // The first batch is popped immediately and wedges in the hook; the
    // following ones pile up in the queue until the bound blocks submit().
    std::atomic<int> submitted{0};
    std::thread producer([&] {
        for (int i = 0; i < 10; ++i) {
            if (!service.submit(moveEvents(initial, 40, 10 + i))) return;
            submitted.fetch_add(1);
        }
    });

    // Wait until the producer is actually blocked (observable state).
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (service.health().state != ServiceState::Backpressure &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    auto health = service.health();
    EXPECT_EQ(health.state, ServiceState::Backpressure);
    EXPECT_GE(health.backpressureWaits, 1u);
    EXPECT_LE(health.ingestQueueDepth, cfg.slo.ingestQueueBound);
    EXPECT_LT(submitted.load(), 10);  // the producer did NOT run ahead

    // Queries still flow under backpressure.
    std::vector<Point2> q{{0.3, 0.7}};
    std::vector<std::int32_t> out(1, -1);
    EXPECT_EQ(service.route(q, out, QueryPriority::Low).status, RouteStatus::Ok);

    drainGate.open();
    producer.join();
    EXPECT_EQ(submitted.load(), 10);
    EXPECT_TRUE(service.waitForIngestDrain(10.0));
    EXPECT_EQ(service.health().ingestQueueDepth, 0u);
    EXPECT_EQ(service.health().appliedEvents, 400u);
}

// -------------------------------------------------------------- degradation

TEST(Service, PublishFailureStormDegradesToLastGoodEpochWithZeroFailedRoutes) {
    std::atomic<bool> storm{true};
    ServiceConfig<2> cfg;
    cfg.blocks = 4;
    cfg.repartitionIntervalSeconds = 0.002;
    cfg.publishHook = [&](std::uint64_t) {
        if (storm.load(std::memory_order_acquire))
            throw std::runtime_error("injected publish failure");
    };
    const auto initial = makeStep(1200);
    PartitionService<2> service(cfg, initial);

    // Drive repartition attempts through the storm while routing.
    std::vector<Point2> q{{0.2, 0.4}, {0.6, 0.6}};
    std::vector<std::int32_t> out(q.size(), -1);
    std::uint64_t seed = 50;
    for (int i = 0; i < 20; ++i) {
        service.submit(moveEvents(initial, 50, seed++));
        service.requestRepartition();
        const auto ticket = service.route(q, out, QueryPriority::High);
        ASSERT_EQ(ticket.status, RouteStatus::Ok);  // zero failed routes
        ASSERT_EQ(ticket.epoch, 1u);                // always the last good epoch
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    const auto degraded = service.health();
    EXPECT_GT(degraded.router.failedPublishes, 0u);
    EXPECT_GT(degraded.router.consecutiveFailures, 0u);
    EXPECT_FALSE(degraded.router.lastPublishError.empty());
    EXPECT_EQ(degraded.publishedEpochs, 1u);
    EXPECT_TRUE(degraded.router.servable());

    // Storm over: the next successful publish clears the failure streak.
    storm.store(false, std::memory_order_release);
    service.submit(moveEvents(initial, 50, seed++));
    service.requestRepartition();
    ASSERT_TRUE(service.waitForEpoch(2, 30.0));
    const auto healed = service.health();
    EXPECT_EQ(healed.router.consecutiveFailures, 0u);
    EXPECT_GE(service.route(q, out).epoch, 2u);
}

TEST(Service, PoisonSurfacesAsTypedTicketAndState) {
    ServiceConfig<2> cfg;
    cfg.blocks = 4;
    PartitionService<2> service(cfg, makeStep(400));
    service.router().poison("operator drill");
    std::vector<Point2> q{{0.5, 0.5}};
    std::vector<std::int32_t> out(1, -1);
    EXPECT_EQ(service.route(q, out, QueryPriority::High).status,
              RouteStatus::Poisoned);
    const auto health = service.health();
    EXPECT_EQ(health.state, ServiceState::Poisoned);
    EXPECT_EQ(health.router.poisonReason, "operator drill");
    bool sawEdge = false;
    for (const auto& t : health.transitions)
        sawEdge = sawEdge || t.to == ServiceState::Poisoned;
    EXPECT_TRUE(sawEdge);
}

// ---------------------------------------------------- histogram under TSan

TEST(Service, HistogramSurvivesConcurrentRecordingAndMerging) {
    support::LatencyHistogram hist(4);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 100000;
    std::atomic<bool> stopReader{false};
    std::thread reader([&] {
        while (!stopReader.load(std::memory_order_acquire)) {
            const auto view = hist.merged();  // momentary view, must not race
            (void)view.quantile(0.99);
        }
    });
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&, t] {
            Xoshiro256 rng(static_cast<std::uint64_t>(t));
            for (int i = 0; i < kPerThread; ++i)
                hist.record(rng.uniform() * 1e-3, t);
        });
    }
    for (auto& w : writers) w.join();
    stopReader.store(true, std::memory_order_release);
    reader.join();
    EXPECT_EQ(hist.merged().count(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ----------------------------------------------- GEO_FAULT wedge (re-exec)

std::string selfExe() {
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0) return {};
    buf[n] = '\0';
    return std::string(buf);
}

/// Child body: GEO_FAULT=delay:ms=...:op=repart is already in the
/// environment, so faultPoint("repart", seq) wedges the worker through the
/// real injection path. Exit 0 iff the bounded-staleness contract held.
int wedgeWorkerMain() {
    ServiceConfig<2> cfg;
    cfg.blocks = 4;
    cfg.slo.maxStalenessEvents = 300;
    cfg.repartitionIntervalSeconds = 0.002;
    const auto initial = makeStep(1500);
    PartitionService<2> service(cfg, initial);

    if (!service.submit(moveEvents(initial, 1000, 1))) return 10;
    if (!service.waitForIngestDrain(10.0)) return 11;
    // Wait until the worker actually reached the fault point (the attempt
    // counter bumps right before it), so the assertions below run against a
    // genuinely wedged worker, not one that was never scheduled.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (service.health().repartitionAttempts == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (service.health().repartitionAttempts == 0) return 18;

    const auto health = service.health();
    if (health.state != ServiceState::Shedding) return 12;
    if (health.stalenessEvents <= cfg.slo.maxStalenessEvents) return 13;
    if (health.publishedEpochs != 1) return 14;  // the wedge held: no publish

    std::vector<Point2> q{{0.5, 0.5}};
    std::vector<std::int32_t> out(1, -1);
    if (service.route(q, out, QueryPriority::Low).status !=
        RouteStatus::Overloaded)
        return 15;
    const auto high = service.route(q, out, QueryPriority::High);
    if (high.status != RouteStatus::Ok || high.epoch != 1) return 16;
    if (service.health().shedQueries == 0) return 17;
    // Exit without waiting out the delay: stop() joins the worker, which is
    // mid-sleep inside faultPoint — bounded by the delay (4 s).
    return 0;
}

TEST(ServiceChaos, GeoFaultDelayWedgesWorkerAndStalenessBoundHolds) {
    const std::string exe = selfExe();
    ASSERT_FALSE(exe.empty());
    const std::string cmd =
        "GEO_FAULT=delay:ms=4000:op=repart GEO_THREADS=2 '" + exe +
        "' --worker=wedge";
    const int rc = std::system(cmd.c_str());
    ASSERT_NE(rc, -1);
    EXPECT_EQ(WIFEXITED(rc) ? WEXITSTATUS(rc) : 255, 0);
}

}  // namespace

int main(int argc, char** argv) {
    // Worker dispatch before gtest: the chaos leg re-execs this binary.
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--worker=wedge") == 0) return wedgeWorkerMain();

    // The gtest legs must run unwedged even when the environment carries a
    // stray fault spec (e.g. a CI job exporting GEO_FAULT for the bench).
    unsetenv("GEO_FAULT");

    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
