// Whole-pipeline thread-determinism suite: every entry point must produce
// bitwise-identical results at Settings::threads = 1, 2, 4, 8 — assignments,
// centers, influence, imbalance AND every evaluatePartition metric field.
// This is the enforcement of DESIGN.md "Threading model": threaded phases
// split work at fixed block boundaries and reduce partials in block order,
// so the thread count can never leak into a result.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/geographer.hpp"
#include "gen/delaunay2d.hpp"
#include "graph/metrics.hpp"
#include "hier/hier_partition.hpp"
#include "hier/topology.hpp"
#include "repart/repartition.hpp"
#include "support/rng.hpp"

namespace {

using geo::Point2;
using geo::Xoshiro256;
using geo::core::GeographerResult;
using geo::core::Settings;

constexpr std::array<int, 3> kThreadSweep{2, 4, 8};

/// Fractional, non-integer weights so every double accumulation (center
/// sums, block weights) actually exercises the fixed-block association —
/// with integer weights any summation order would agree.
std::vector<double> fractionalWeights(std::size_t n, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<double> w;
    w.reserve(n);
    for (std::size_t i = 0; i < n; ++i) w.push_back(0.25 + rng.uniform());
    return w;
}

void expectSameResult(const GeographerResult& got, const GeographerResult& want,
                      const std::string& label) {
    EXPECT_EQ(got.partition, want.partition) << label;
    EXPECT_EQ(got.centerCoords, want.centerCoords) << label;
    EXPECT_EQ(got.influence, want.influence) << label;
    EXPECT_EQ(got.imbalance, want.imbalance) << label;
    EXPECT_EQ(got.converged, want.converged) << label;
    // Loop counters are part of the contract too: a thread-dependent skip
    // or distance count would mean the sweeps took different decisions.
    EXPECT_EQ(got.counters.pointEvaluations, want.counters.pointEvaluations) << label;
    EXPECT_EQ(got.counters.boundSkips, want.counters.boundSkips) << label;
    EXPECT_EQ(got.counters.distanceCalcs, want.counters.distanceCalcs) << label;
    EXPECT_EQ(got.counters.balanceIterations, want.counters.balanceIterations) << label;
    EXPECT_EQ(got.counters.keyedPoints, want.counters.keyedPoints) << label;
    EXPECT_EQ(got.counters.sortedRecords, want.counters.sortedRecords) << label;
}

void expectSameMetrics(const geo::graph::PartitionMetrics& got,
                       const geo::graph::PartitionMetrics& want,
                       const std::string& label) {
    EXPECT_EQ(got.edgeCut, want.edgeCut) << label;
    EXPECT_EQ(got.maxExternalEdges, want.maxExternalEdges) << label;
    EXPECT_EQ(got.maxCommVolume, want.maxCommVolume) << label;
    EXPECT_EQ(got.totalCommVolume, want.totalCommVolume) << label;
    EXPECT_EQ(got.imbalance, want.imbalance) << label;
    EXPECT_EQ(got.harmonicMeanDiameter, want.harmonicMeanDiameter) << label;
    EXPECT_EQ(got.disconnectedBlocks, want.disconnectedBlocks) << label;
    EXPECT_EQ(got.emptyBlocks, want.emptyBlocks) << label;
}

TEST(ThreadDeterminism, PartitionGeographerBitwiseAcrossThreadCounts) {
    const auto mesh = geo::gen::delaunay2d(6000, 211);
    const auto weights = fractionalWeights(mesh.points.size(), 212);
    const std::int32_t k = 12;

    Settings base;
    base.threads = 1;
    const auto want =
        geo::core::partitionGeographer<2>(mesh.points, weights, k, /*ranks=*/2, base);

    for (const int threads : kThreadSweep) {
        Settings s;
        s.threads = threads;
        const auto got =
            geo::core::partitionGeographer<2>(mesh.points, weights, k, 2, s);
        expectSameResult(got, want, "partition t" + std::to_string(threads));
    }
}

TEST(ThreadDeterminism, DeprecatedAssignThreadsAliasStillApplies) {
    const auto mesh = geo::gen::delaunay2d(2000, 217);
    Settings viaAlias, viaThreads;
    viaAlias.assignThreads = 4;  // pre-PR-4 spelling
    viaThreads.threads = 4;
    EXPECT_EQ(viaAlias.resolvedThreads(), 4);
    EXPECT_EQ(viaThreads.resolvedThreads(), 4);
    const auto a = geo::core::partitionGeographer<2>(mesh.points, {}, 6, 1, viaAlias);
    const auto b = geo::core::partitionGeographer<2>(mesh.points, {}, 6, 1, viaThreads);
    expectSameResult(a, b, "alias");
}

TEST(ThreadDeterminism, RepartitionBitwiseAcrossThreadCounts) {
    const auto mesh = geo::gen::delaunay2d(5000, 223);
    // Second timestep: slight deterministic drift, small enough to warm-start.
    auto drifted = mesh.points;
    for (auto& p : drifted) {
        p[0] += 0.003;
        p[1] -= 0.002;
    }
    const auto weights = fractionalWeights(mesh.points.size(), 224);
    const std::int32_t k = 8;

    struct Steps {
        geo::repart::RepartResult<2> first, second;
    };
    const auto runBoth = [&](int threads) {
        Settings s;
        s.threads = threads;
        geo::repart::RepartState<2> state;
        Steps out;
        out.first = geo::repart::repartitionGeographer<2>(mesh.points, weights, k,
                                                          /*ranks=*/2, s, state);
        out.second =
            geo::repart::repartitionGeographer<2>(drifted, weights, k, 2, s, state);
        return out;
    };

    const Steps want = runBoth(1);
    ASSERT_TRUE(want.second.warmStarted);  // the drift is small by design
    for (const int threads : kThreadSweep) {
        const Steps got = runBoth(threads);
        const std::string label = "repart t" + std::to_string(threads);
        EXPECT_EQ(got.first.warmStarted, want.first.warmStarted) << label;
        EXPECT_EQ(got.second.warmStarted, want.second.warmStarted) << label;
        EXPECT_EQ(got.second.normalizedDrift.has_value(),
                  want.second.normalizedDrift.has_value())
            << label;
        if (got.second.normalizedDrift && want.second.normalizedDrift)
            EXPECT_EQ(*got.second.normalizedDrift, *want.second.normalizedDrift) << label;
        expectSameResult(got.first.result, want.first.result, label + " step1");
        expectSameResult(got.second.result, want.second.result, label + " step2");
    }
}

TEST(ThreadDeterminism, PartitionHierarchicalBitwiseAcrossThreadCounts) {
    const auto mesh = geo::gen::delaunay2d(4000, 227);
    const auto weights = fractionalWeights(mesh.points.size(), 228);
    const std::array<std::int32_t, 2> branchings{3, 2};
    const auto topo = geo::hier::Topology::fromBranching(branchings);

    Settings base;
    base.threads = 1;
    const auto want =
        geo::hier::partitionHierarchical<2>(mesh.points, weights, topo, /*ranks=*/2, base);

    for (const int threads : kThreadSweep) {
        Settings s;
        s.threads = threads;
        const auto got =
            geo::hier::partitionHierarchical<2>(mesh.points, weights, topo, 2, s);
        const std::string label = "hier t" + std::to_string(threads);
        EXPECT_EQ(got.partition, want.partition) << label;
        EXPECT_EQ(got.imbalance, want.imbalance) << label;
        EXPECT_EQ(got.warmNodes, want.warmNodes) << label;
        EXPECT_EQ(got.coldNodes, want.coldNodes) << label;
    }
}

TEST(ThreadDeterminism, EvaluatePartitionBitwiseAcrossThreadCounts) {
    const auto mesh = geo::gen::delaunay2d(6000, 229);
    const auto weights = fractionalWeights(mesh.points.size(), 230);
    const std::int32_t k = 9;
    Settings s;
    const auto res = geo::core::partitionGeographer<2>(mesh.points, weights, k, 1, s);

    const auto want = geo::graph::evaluatePartition(mesh.graph, res.partition, k, weights,
                                                    /*computeDiameter=*/true, {}, 1);
    for (const int threads : kThreadSweep) {
        const auto got = geo::graph::evaluatePartition(mesh.graph, res.partition, k,
                                                       weights, true, {}, threads);
        expectSameMetrics(got, want, "metrics t" + std::to_string(threads));
    }

    // The topology-weighted folds share the determinism contract.
    const auto topo = geo::hier::Topology::fromBranching(std::array<std::int32_t, 2>{3, 3});
    const auto cost = topo.blockCostMatrix();
    const double wantCost = geo::graph::topologyCommCost(mesh.graph, res.partition, k, cost, 1);
    const double wantSpmv =
        geo::hier::topologySpmvCommSeconds(mesh.graph, res.partition, topo, {},
                                           sizeof(double), 1);
    for (const int threads : kThreadSweep) {
        EXPECT_EQ(geo::graph::topologyCommCost(mesh.graph, res.partition, k, cost, threads),
                  wantCost);
        EXPECT_EQ(geo::hier::topologySpmvCommSeconds(mesh.graph, res.partition, topo, {},
                                                     sizeof(double), threads),
                  wantSpmv);
    }
}

TEST(ThreadDeterminism, GhostPairCountsMatchForEachGhost) {
    const auto mesh = geo::gen::delaunay2d(3000, 233);
    const std::int32_t k = 7;
    Settings s;
    const auto res = geo::core::partitionGeographer<2>(mesh.points, {}, k, 1, s);

    const auto kk = static_cast<std::size_t>(k);
    std::vector<std::int64_t> want(kk * kk, 0);
    geo::graph::forEachGhost(mesh.graph, res.partition, k,
                             [&](std::int32_t owner, std::int32_t receiver, geo::graph::Vertex) {
                                 want[static_cast<std::size_t>(receiver) * kk +
                                      static_cast<std::size_t>(owner)]++;
                             });
    for (const int threads : {1, 2, 4, 8}) {
        EXPECT_EQ(geo::graph::ghostPairCounts(mesh.graph, res.partition, k, threads), want)
            << "t" << threads;
    }
}

}  // namespace
