// Memory-budget suite: parseMemBytes / GEO_MEM_BUDGET resolution, the
// tiled core::PointStore (wave geometry, gather correctness, accounting),
// and the tentpole contract — a budgeted (chunked) pipeline reproduces the
// resident pipeline BITWISE for flat, warm-started, and hierarchical runs
// at several thread counts. The chunked path only regroups the engine's
// fixed 1024-point blocks into waves and folds them in the same ascending
// order, so not a single double may differ.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "core/geographer.hpp"
#include "core/point_store.hpp"
#include "core/settings.hpp"
#include "gen/delaunay2d.hpp"
#include "hier/hier_partition.hpp"
#include "hier/topology.hpp"
#include "repart/repartition.hpp"
#include "support/mem.hpp"
#include "support/rng.hpp"

namespace {

using geo::Point2;
using geo::Xoshiro256;
using geo::core::GeographerResult;
using geo::core::PointStore;
using geo::core::Settings;
using geo::support::parseMemBytes;

std::vector<double> fractionalWeights(std::size_t n, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<double> w;
    w.reserve(n);
    for (std::size_t i = 0; i < n; ++i) w.push_back(0.25 + rng.uniform());
    return w;
}

/// Restores (or clears) GEO_MEM_BUDGET when the test ends, so env-mutating
/// tests cannot leak into each other or the rest of the binary.
class ScopedBudgetEnv {
public:
    explicit ScopedBudgetEnv(const char* value) {
        const char* old = std::getenv("GEO_MEM_BUDGET");
        had_ = old != nullptr;
        if (had_) saved_ = old;
        if (value != nullptr)
            setenv("GEO_MEM_BUDGET", value, 1);
        else
            unsetenv("GEO_MEM_BUDGET");
    }
    ~ScopedBudgetEnv() {
        if (had_)
            setenv("GEO_MEM_BUDGET", saved_.c_str(), 1);
        else
            unsetenv("GEO_MEM_BUDGET");
    }
    ScopedBudgetEnv(const ScopedBudgetEnv&) = delete;
    ScopedBudgetEnv& operator=(const ScopedBudgetEnv&) = delete;

private:
    bool had_ = false;
    std::string saved_;
};

TEST(ParseMemBytes, PlainAndSuffixedValues) {
    EXPECT_EQ(parseMemBytes("0"), 0u);
    EXPECT_EQ(parseMemBytes("123"), 123u);
    EXPECT_EQ(parseMemBytes("4k"), 4096u);
    EXPECT_EQ(parseMemBytes("4K"), 4096u);
    EXPECT_EQ(parseMemBytes("4kb"), 4096u);
    EXPECT_EQ(parseMemBytes("100m"), 100u * 1024 * 1024);
    EXPECT_EQ(parseMemBytes("100MB"), 100u * 1024 * 1024);
    EXPECT_EQ(parseMemBytes("2g"), 2ull * 1024 * 1024 * 1024);
    EXPECT_EQ(parseMemBytes("2Gb"), 2ull * 1024 * 1024 * 1024);
}

TEST(ParseMemBytes, RejectsGarbageAndOverflow) {
    EXPECT_THROW(parseMemBytes(""), std::invalid_argument);
    EXPECT_THROW(parseMemBytes("abc"), std::invalid_argument);
    EXPECT_THROW(parseMemBytes("12x"), std::invalid_argument);
    EXPECT_THROW(parseMemBytes("-5"), std::invalid_argument);
    EXPECT_THROW(parseMemBytes("k"), std::invalid_argument);
    EXPECT_THROW(parseMemBytes("99999999999999999999g"), std::invalid_argument);
}

TEST(MemoryBudget, SettingsFieldWinsOverEnvironment) {
    const ScopedBudgetEnv env("1m");
    Settings s;
    EXPECT_EQ(s.resolvedMemoryBudget(), 1024u * 1024);  // env fallback
    s.memoryBudgetBytes = 4096;
    EXPECT_EQ(s.resolvedMemoryBudget(), 4096u);  // explicit field wins
}

TEST(MemoryBudget, UnsetEnvironmentMeansUnlimited) {
    const ScopedBudgetEnv env(nullptr);
    Settings s;
    EXPECT_EQ(s.resolvedMemoryBudget(), 0u);
}

TEST(MemoryBudget, UnparseableEnvironmentThrows) {
    const ScopedBudgetEnv env("lots");
    Settings s;
    EXPECT_THROW(s.resolvedMemoryBudget(), std::invalid_argument);
    // Deliberately uncached: fixing the variable fixes the resolution.
    setenv("GEO_MEM_BUDGET", "8k", 1);
    EXPECT_EQ(s.resolvedMemoryBudget(), 8192u);
}

class PointStoreFixture : public ::testing::Test {
protected:
    void SetUp() override {
        Xoshiro256 rng(71);
        points_.resize(5000);
        for (auto& p : points_) {
            p[0] = rng.uniform();
            p[1] = rng.uniform();
        }
        weights_ = fractionalWeights(points_.size(), 72);
        order_.resize(points_.size());
        std::iota(order_.begin(), order_.end(), std::size_t{0});
    }
    std::vector<Point2> points_;
    std::vector<double> weights_;
    std::vector<std::size_t> order_;
};

TEST_F(PointStoreFixture, UnlimitedBudgetIsResidentInOneWave) {
    PointStore<2> store(points_, weights_, /*budgetBytes=*/0);
    store.setActive(order_, points_.size(), 2);
    EXPECT_TRUE(store.resident());
    EXPECT_EQ(store.waveCount(), 1u);
    EXPECT_EQ(store.wavePoints(), points_.size());
    EXPECT_EQ(store.accounting().spilledTiles, 0u);
}

TEST_F(PointStoreFixture, TightBudgetChunksIntoTileAlignedWaves) {
    // 2D: 24 bytes/point. 32768 bytes -> 1365 points -> one whole tile.
    PointStore<2> store(points_, weights_, 32768);
    store.setActive(order_, points_.size(), 2);
    EXPECT_FALSE(store.resident());
    EXPECT_EQ(store.wavePoints(), PointStore<2>::kTilePoints);
    EXPECT_EQ(store.waveCount(),
              (points_.size() + PointStore<2>::kTilePoints - 1) /
                  PointStore<2>::kTilePoints);
    EXPECT_LE(store.accounting().residentBytes,
              PointStore<2>::kTilePoints * PointStore<2>::kBytesPerPoint);
}

TEST_F(PointStoreFixture, BudgetSmallerThanOneTileClampsUp) {
    PointStore<2> store(points_, weights_, /*budgetBytes=*/1);
    store.setActive(order_, points_.size(), 1);
    EXPECT_FALSE(store.resident());
    EXPECT_EQ(store.wavePoints(), PointStore<2>::kTilePoints);
}

TEST_F(PointStoreFixture, WavesGatherTheActiveOrderExactly) {
    // A non-identity order (reversed) through a chunked store: every wave
    // slot j must hold point order[begin + j] and its weight.
    std::vector<std::size_t> reversed(order_.rbegin(), order_.rend());
    PointStore<2> store(points_, weights_, 49152);  // 2048-point waves
    store.setActive(reversed, points_.size(), 3);
    ASSERT_GT(store.waveCount(), 1u);
    for (std::size_t w = 0; w < store.waveCount(); ++w) {
        const auto view = store.wave(w, 3);
        EXPECT_EQ(view.begin % PointStore<2>::kTilePoints, 0u);
        for (std::size_t j = 0; j < view.count; ++j) {
            const std::size_t p = reversed[view.begin + j];
            ASSERT_EQ(view.x[0][j], points_[p][0]) << "wave " << w << " slot " << j;
            ASSERT_EQ(view.x[1][j], points_[p][1]);
            ASSERT_EQ(view.weight[j], weights_[p]);
        }
    }
}

TEST_F(PointStoreFixture, SpilledTilesCountRefillsOnly) {
    PointStore<2> store(points_, weights_, 49152);
    store.setActive(order_, points_.size(), 1);
    const std::size_t waves = store.waveCount();
    ASSERT_GT(waves, 1u);
    // First full pass: every tile gathered once, nothing is a refill yet.
    for (std::size_t w = 0; w < waves; ++w) (void)store.wave(w, 1);
    EXPECT_EQ(store.accounting().spilledTiles, 0u);
    // Second pass re-gathers every wave: now each tile fill is a spill.
    for (std::size_t w = 0; w < waves; ++w) (void)store.wave(w, 1);
    EXPECT_GT(store.accounting().spilledTiles, 0u);
    // Re-requesting the loaded wave is free — no fill, no spill.
    const auto spills = store.accounting().spilledTiles;
    (void)store.wave(waves - 1, 1);
    EXPECT_EQ(store.accounting().spilledTiles, spills);
}

/// The tentpole assertion: identical bits with and without a budget.
void expectSameResult(const GeographerResult& got, const GeographerResult& want,
                      const std::string& label) {
    EXPECT_EQ(got.partition, want.partition) << label;
    EXPECT_EQ(got.centerCoords, want.centerCoords) << label;
    EXPECT_EQ(got.influence, want.influence) << label;
    EXPECT_EQ(got.imbalance, want.imbalance) << label;
    EXPECT_EQ(got.converged, want.converged) << label;
    // The sweeps must take the very same decisions point by point.
    EXPECT_EQ(got.counters.pointEvaluations, want.counters.pointEvaluations) << label;
    EXPECT_EQ(got.counters.boundSkips, want.counters.boundSkips) << label;
    EXPECT_EQ(got.counters.distanceCalcs, want.counters.distanceCalcs) << label;
}

TEST(ChunkedVsResident, FlatPartitionBitwise) {
    const auto mesh = geo::gen::delaunay2d(6000, 311);
    const auto weights = fractionalWeights(mesh.points.size(), 312);
    const std::int32_t k = 12;

    Settings resident;
    resident.threads = 1;
    const auto want =
        geo::core::partitionGeographer<2>(mesh.points, weights, k, /*ranks=*/2, resident);
    EXPECT_EQ(want.counters.spilledTiles, 0u);

    for (const int threads : {1, 4}) {
        for (const std::uint64_t budget : {std::uint64_t{32768}, std::uint64_t{49152}}) {
            Settings s;
            s.threads = threads;
            s.memoryBudgetBytes = budget;
            const auto got =
                geo::core::partitionGeographer<2>(mesh.points, weights, k, 2, s);
            expectSameResult(got, want,
                             "budget " + std::to_string(budget) + " t" +
                                 std::to_string(threads));
            // Counter plausibility: running under budget must actually spill,
            // and the tile high-water mark must respect the wave cap.
            EXPECT_GT(got.counters.spilledTiles, 0u);
            EXPECT_GT(got.counters.peakTileBytes, 0u);
            const std::uint64_t bpp = PointStore<2>::kBytesPerPoint;
            const std::uint64_t wavePoints =
                std::max<std::uint64_t>(PointStore<2>::kTilePoints,
                                        budget / bpp / PointStore<2>::kTilePoints *
                                            PointStore<2>::kTilePoints);
            EXPECT_LE(got.counters.peakTileBytes, wavePoints * bpp);
        }
    }
}

TEST(ChunkedVsResident, WarmRepartitionBitwise) {
    const auto mesh = geo::gen::delaunay2d(5000, 317);
    auto drifted = mesh.points;
    for (auto& p : drifted) {
        p[0] += 0.003;
        p[1] -= 0.002;
    }
    const auto weights = fractionalWeights(mesh.points.size(), 318);
    const std::int32_t k = 8;

    const auto runBoth = [&](std::uint64_t budget, int threads) {
        Settings s;
        s.threads = threads;
        s.memoryBudgetBytes = budget;
        geo::repart::RepartState<2> state;
        auto first = geo::repart::repartitionGeographer<2>(mesh.points, weights, k,
                                                           /*ranks=*/2, s, state);
        auto second =
            geo::repart::repartitionGeographer<2>(drifted, weights, k, 2, s, state);
        return std::make_pair(std::move(first), std::move(second));
    };

    const auto want = runBoth(0, 1);
    ASSERT_TRUE(want.second.warmStarted);
    for (const int threads : {1, 4}) {
        const auto got = runBoth(32768, threads);
        const std::string label = "warm t" + std::to_string(threads);
        EXPECT_EQ(got.second.warmStarted, want.second.warmStarted) << label;
        expectSameResult(got.first.result, want.first.result, label + " step1");
        expectSameResult(got.second.result, want.second.result, label + " step2");
        EXPECT_GT(got.second.result.counters.spilledTiles, 0u);
    }
}

TEST(ChunkedVsResident, HierarchicalBitwise) {
    const auto mesh = geo::gen::delaunay2d(4000, 331);
    const auto weights = fractionalWeights(mesh.points.size(), 332);
    const std::array<std::int32_t, 2> branchings{3, 2};
    const auto topo = geo::hier::Topology::fromBranching(branchings);

    Settings resident;
    resident.threads = 1;
    const auto want = geo::hier::partitionHierarchical<2>(mesh.points, weights, topo,
                                                          /*ranks=*/2, resident);

    for (const int threads : {1, 4}) {
        Settings s;
        s.threads = threads;
        s.memoryBudgetBytes = 32768;
        const auto got =
            geo::hier::partitionHierarchical<2>(mesh.points, weights, topo, 2, s);
        const std::string label = "hier t" + std::to_string(threads);
        EXPECT_EQ(got.partition, want.partition) << label;
        EXPECT_EQ(got.imbalance, want.imbalance) << label;
        EXPECT_EQ(got.warmNodes, want.warmNodes) << label;
        EXPECT_EQ(got.coldNodes, want.coldNodes) << label;
    }
}

TEST(ChunkedVsResident, EnvironmentBudgetDrivesTheEngineToo) {
    // The GEO_MEM_BUDGET route (no Settings field) must chunk identically.
    const auto mesh = geo::gen::delaunay2d(3000, 337);
    Settings s;
    const auto want = geo::core::partitionGeographer<2>(mesh.points, {}, 6, 1, s);
    const ScopedBudgetEnv env("32k");
    const auto got = geo::core::partitionGeographer<2>(mesh.points, {}, 6, 1, s);
    EXPECT_EQ(got.partition, want.partition);
    EXPECT_EQ(got.centerCoords, want.centerCoords);
    EXPECT_GT(got.counters.spilledTiles, 0u);
}

}  // namespace
