// Online partition-serving suite: immutable snapshots + the lock-free
// epoch-swapped router (src/serve).
//
// The load-bearing property: a snapshot built from a run's GeographerResult
// routes every input point of that run to exactly the block the partition
// records — the snapshot freezes the (centers, assignmentInfluence) pair the
// final assignment sweep used, and the router's squared-domain kernel
// computes the same argmin the engine did. Verified for flat partitions,
// warm and cold repartitions, hierarchical runs, the kd-tree path, reloaded
// snapshots, and at several router thread counts. The concurrent-swap test
// is the data-race target of the TSan CI job.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/geographer.hpp"
#include "gen/delaunay2d.hpp"
#include "hier/hier_partition.hpp"
#include "hier/topology.hpp"
#include "repart/repartition.hpp"
#include "serve/router.hpp"
#include "serve/snapshot.hpp"
#include "support/rng.hpp"

namespace {

using geo::Point2;
using geo::Point3;
using geo::Xoshiro256;
using geo::core::Settings;
using geo::serve::PartitionSnapshot;
using geo::serve::Router;
using geo::serve::SnapshotOptions;

std::vector<double> fractionalWeights(std::size_t n, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<double> w;
    w.reserve(n);
    for (std::size_t i = 0; i < n; ++i) w.push_back(0.25 + rng.uniform());
    return w;
}

template <int D>
std::vector<std::int32_t> routeAll(const Router<D>& router,
                                   std::span<const geo::Point<D>> points) {
    std::vector<std::int32_t> blocks(points.size(), -1);
    router.route(points, std::span<std::int32_t>(blocks));
    return blocks;
}

/// Batched AND single-point routing must reproduce `want` bitwise at every
/// thread count — the acceptance criterion of the serving subsystem.
template <int D>
void expectRoutesMatch(const PartitionSnapshot<D>& snapshot,
                       std::span<const geo::Point<D>> points,
                       const std::vector<std::int32_t>& want, const std::string& label) {
    for (const int threads : {1, 2, 4}) {
        Router<D> router(threads);
        router.publish(snapshot);
        EXPECT_EQ(routeAll<D>(router, points), want) << label << " t" << threads;
    }
    Router<D> router(1);
    router.publish(snapshot);
    // Spot-check the low-latency single-point path on a deterministic stride.
    const std::size_t stride = std::max<std::size_t>(1, points.size() / 257);
    for (std::size_t i = 0; i < points.size(); i += stride)
        EXPECT_EQ(router.route(points[i]), want[i]) << label << " point " << i;
}

TEST(ServeSnapshot, FlatPartitionRoutesBitwise) {
    const auto mesh = geo::gen::delaunay2d(6000, 211);
    const auto weights = fractionalWeights(mesh.points.size(), 212);
    const std::int32_t k = 12;
    Settings settings;
    const auto res =
        geo::core::partitionGeographer<2>(mesh.points, weights, k, /*ranks=*/2, settings);

    const auto snap = PartitionSnapshot<2>::fromResult(res, /*version=*/7, /*ranks=*/2);
    EXPECT_EQ(snap.version(), 7u);
    EXPECT_EQ(snap.blockCount(), k);
    EXPECT_EQ(snap.depth(), 1);
    EXPECT_FALSE(snap.usesKdTree());  // k below the default tree threshold
    expectRoutesMatch<2>(snap, mesh.points, res.partition, "flat2d");

    // Rank map: contiguous split of 12 blocks over 2 ranks.
    EXPECT_TRUE(snap.hasRankMap());
    EXPECT_EQ(snap.rankOf(0), 0);
    EXPECT_EQ(snap.rankOf(5), 0);
    EXPECT_EQ(snap.rankOf(6), 1);
    EXPECT_EQ(snap.rankOf(11), 1);
    EXPECT_EQ(snap.leafOf(3), 3);  // identity without an explicit mapping
}

TEST(ServeSnapshot, FlatPartitionRoutesBitwise3d) {
    Xoshiro256 rng(97);
    std::vector<Point3> points(4000);
    for (auto& p : points)
        for (int d = 0; d < 3; ++d) p[d] = rng.uniform();
    Settings settings;
    const auto res = geo::core::partitionGeographer<3>(points, {}, 6, /*ranks=*/2, settings);
    const auto snap = PartitionSnapshot<3>::fromResult(res);
    expectRoutesMatch<3>(snap, points, res.partition, "flat3d");
    EXPECT_EQ(snap.rankOf(0), -1);  // no rank map requested
}

TEST(ServeSnapshot, RepartitionWarmAndColdRouteBitwise) {
    const auto mesh = geo::gen::delaunay2d(5000, 223);
    auto drifted = mesh.points;
    for (auto& p : drifted) {
        p[0] += 0.003;
        p[1] -= 0.002;
    }
    const auto weights = fractionalWeights(mesh.points.size(), 224);
    const std::int32_t k = 8;
    Settings settings;

    geo::repart::RepartState<2> state;
    const auto cold = geo::repart::repartitionGeographer<2>(mesh.points, weights, k,
                                                            /*ranks=*/2, settings, state);
    ASSERT_FALSE(cold.warmStarted);
    expectRoutesMatch<2>(PartitionSnapshot<2>::fromResult(cold.result, 1), mesh.points,
                         cold.result.partition, "repart cold");

    const auto warm = geo::repart::repartitionGeographer<2>(drifted, weights, k, 2,
                                                            settings, state);
    ASSERT_TRUE(warm.warmStarted);  // the drift is small by design
    expectRoutesMatch<2>(PartitionSnapshot<2>::fromResult(warm.result, 2), drifted,
                         warm.result.partition, "repart warm");
}

TEST(ServeSnapshot, ExactEvenWhenBalanceLoopExhausts) {
    // An unreachable epsilon forces every balance loop to exhaust
    // maxBalanceIterations, so influence adaptation runs AFTER the final
    // sweep: GeographerResult.influence is the warm-start state, while the
    // partition is the exact Voronoi diagram of assignmentInfluence. The
    // snapshot must pick the latter.
    const auto mesh = geo::gen::delaunay2d(3000, 229);
    const auto weights = fractionalWeights(mesh.points.size(), 230);
    Settings settings;
    settings.epsilon = 1e-9;
    settings.maxBalanceIterations = 2;
    settings.maxIterations = 4;
    const auto res =
        geo::core::partitionGeographer<2>(mesh.points, weights, 9, /*ranks=*/1, settings);
    ASSERT_EQ(res.assignmentInfluence.size(), 9u);
    EXPECT_NE(res.assignmentInfluence, res.influence);
    expectRoutesMatch<2>(PartitionSnapshot<2>::fromResult(res), mesh.points,
                         res.partition, "exhausted balance");
}

TEST(ServeSnapshot, HierarchicalRoutesBitwise) {
    const auto mesh = geo::gen::delaunay2d(4000, 227);
    const auto weights = fractionalWeights(mesh.points.size(), 228);
    const std::array<std::int32_t, 2> branchings{3, 2};
    const auto topo = geo::hier::Topology::fromBranching(branchings);
    Settings settings;

    const auto res =
        geo::hier::partitionHierarchical<2>(mesh.points, weights, topo, /*ranks=*/2, settings);
    ASSERT_EQ(res.nodeDiagrams.size(), 4u);  // root + 3 level-1 nodes
    const auto snap =
        PartitionSnapshot<2>::fromHierResult(res, topo, /*version=*/3, /*ranks=*/3);
    EXPECT_EQ(snap.depth(), 2);
    EXPECT_EQ(snap.blockCount(), topo.leafCount());
    expectRoutesMatch<2>(snap, mesh.points, res.partition, "hier cold");

    // Leaves 0..5 over 3 ranks: contiguous pairs.
    EXPECT_EQ(snap.rankOf(0), 0);
    EXPECT_EQ(snap.rankOf(3), 1);
    EXPECT_EQ(snap.rankOf(5), 2);
    EXPECT_EQ(snap.leafOf(4), 4);
}

TEST(ServeSnapshot, HierarchicalWarmRepartitionRoutesBitwise) {
    const auto mesh = geo::gen::delaunay2d(4000, 233);
    auto drifted = mesh.points;
    for (auto& p : drifted) {
        p[0] -= 0.002;
        p[1] += 0.003;
    }
    const std::array<std::int32_t, 2> branchings{2, 2};
    const auto topo = geo::hier::Topology::fromBranching(branchings);
    Settings settings;

    geo::hier::HierState<2> state;
    const auto first = geo::hier::repartitionHierarchical<2>(mesh.points, {}, topo,
                                                             /*ranks=*/2, settings, state);
    expectRoutesMatch<2>(PartitionSnapshot<2>::fromHierResult(first, topo, 1),
                         mesh.points, first.partition, "hier step1");

    const auto second = geo::hier::repartitionHierarchical<2>(drifted, {}, topo, 2,
                                                              settings, state);
    EXPECT_GT(second.warmNodes, 0);  // small drift: at least the root warms
    expectRoutesMatch<2>(PartitionSnapshot<2>::fromHierResult(second, topo, 2), drifted,
                         second.partition, "hier step2");
}

TEST(ServeSnapshot, KdTreeRoutingMatchesLinearScan) {
    const auto mesh = geo::gen::delaunay2d(5000, 239);
    const std::int32_t k = 48;
    Settings settings;
    const auto res = geo::core::partitionGeographer<2>(mesh.points, {}, k, 1, settings);

    SnapshotOptions treeOptions;
    treeOptions.kdTreeFromK = 1;  // force the tree even at small k
    const auto withTree = PartitionSnapshot<2>::fromResult(res, 1, 0, treeOptions);
    SnapshotOptions scanOptions;
    scanOptions.kdTreeFromK = 0;  // never build the tree
    const auto withScan = PartitionSnapshot<2>::fromResult(res, 1, 0, scanOptions);
    EXPECT_TRUE(withTree.usesKdTree());
    EXPECT_FALSE(withScan.usesKdTree());

    expectRoutesMatch<2>(withTree, mesh.points, res.partition, "kdtree");
    expectRoutesMatch<2>(withScan, mesh.points, res.partition, "linear");
}

TEST(ServeSnapshot, SaveLoadRoundTripsExactly) {
    const auto mesh = geo::gen::delaunay2d(3000, 241);
    Settings settings;
    const auto res = geo::core::partitionGeographer<2>(mesh.points, {}, 10, 2, settings);
    const auto snap = PartitionSnapshot<2>::fromResult(res, /*version=*/42, /*ranks=*/2);

    std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
    snap.save(stream);
    const auto loaded = PartitionSnapshot<2>::load(stream);

    EXPECT_EQ(loaded.version(), 42u);
    EXPECT_EQ(loaded.blockCount(), snap.blockCount());
    EXPECT_EQ(loaded.depth(), 1);
    EXPECT_TRUE(loaded.hasRankMap());
    for (std::int32_t b = 0; b < snap.blockCount(); ++b)
        EXPECT_EQ(loaded.rankOf(b), snap.rankOf(b));
    expectRoutesMatch<2>(loaded, mesh.points, res.partition, "loaded flat");

    // Hierarchical snapshots round-trip through the same format.
    const auto topo =
        geo::hier::Topology::fromBranching(std::array<std::int32_t, 2>{2, 3});
    const auto hres =
        geo::hier::partitionHierarchical<2>(mesh.points, {}, topo, 1, settings);
    const auto hsnap = PartitionSnapshot<2>::fromHierResult(hres, topo, 9, 6);
    std::stringstream hstream(std::ios::in | std::ios::out | std::ios::binary);
    hsnap.save(hstream);
    const auto hloaded = PartitionSnapshot<2>::load(hstream);
    EXPECT_EQ(hloaded.version(), 9u);
    EXPECT_EQ(hloaded.depth(), 2);
    expectRoutesMatch<2>(hloaded, mesh.points, hres.partition, "loaded hier");
}

TEST(ServeSnapshot, LoadRejectsForeignStreams) {
    std::stringstream garbage("definitely not a snapshot");
    EXPECT_THROW((void)PartitionSnapshot<2>::load(garbage), std::invalid_argument);

    // A 3D snapshot must not load as 2D.
    Xoshiro256 rng(5);
    std::vector<Point3> centers(4);
    for (auto& c : centers)
        for (int d = 0; d < 3; ++d) c[d] = rng.uniform();
    const std::vector<double> influence(4, 1.0);
    const auto snap3 = PartitionSnapshot<3>::fromCenters(centers, influence);
    std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
    snap3.save(stream);
    EXPECT_THROW((void)PartitionSnapshot<2>::load(stream), std::invalid_argument);
}

TEST(ServeRouter, PublishBumpsEpochAndKeepsOldSnapshotsAlive) {
    std::vector<Point2> centersA{{0.1, 0.1}, {0.9, 0.9}};
    std::vector<Point2> centersB{{0.9, 0.1}, {0.1, 0.9}, {0.5, 0.5}};
    const std::vector<double> onesA(2, 1.0), onesB(3, 1.0);

    Router<2> router(1);
    EXPECT_EQ(router.epoch(), 0u);
    EXPECT_FALSE(router.hasSnapshot());
    const Point2 probe{0.12, 0.11};
    EXPECT_THROW((void)router.route(probe), std::invalid_argument);

    EXPECT_EQ(router.publish(PartitionSnapshot<2>::fromCenters(centersA, onesA, 1)), 1u);
    const auto old = router.snapshot();
    EXPECT_EQ(router.route(probe), 0);

    EXPECT_EQ(router.publish(PartitionSnapshot<2>::fromCenters(centersB, onesB, 2)), 2u);
    EXPECT_EQ(router.epoch(), 2u);
    EXPECT_EQ(router.snapshot()->version(), 2u);
    EXPECT_EQ(router.route(probe), 2);  // centersB[2] = (0.5, 0.5) is closest
    // The retained shared_ptr still serves the old complete diagram.
    EXPECT_EQ(old->version(), 1u);
    EXPECT_EQ(old->blockCount(), 2);
    EXPECT_EQ(old->blockOf(probe), 0);
}

TEST(ServeRouter, ConcurrentReadersObserveOnlyCompleteSnapshots) {
    // Publisher swaps between two diagram families with different k while
    // readers route without locks. Every reader must observe a complete
    // snapshot: version and block count always pair up, and every routed
    // block is in range for the snapshot it was computed against. This is
    // the data-race target of the TSan CI job.
    const auto makeSnapshot = [](std::uint64_t version) {
        const bool odd = version % 2 == 1;
        std::vector<Point2> centers(odd ? 4 : 8);
        Xoshiro256 rng(version);
        for (auto& c : centers) {
            c[0] = rng.uniform();
            c[1] = rng.uniform();
        }
        const std::vector<double> influence(centers.size(), 1.0);
        return PartitionSnapshot<2>::fromCenters(centers, influence, version);
    };

    Router<2> router(1);
    router.publish(makeSnapshot(1));
    std::atomic<bool> stop{false};
    std::atomic<std::int64_t> violations{0};
    std::atomic<std::int64_t> reads{0};

    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&, t] {
            Xoshiro256 rng(1000 + static_cast<std::uint64_t>(t));
            while (!stop.load(std::memory_order_relaxed)) {
                const Point2 p{rng.uniform(), rng.uniform()};
                const auto snap = router.snapshot();
                const auto block = snap->blockOf(p);
                const bool completePair =
                    (snap->version() % 2 == 1 && snap->blockCount() == 4) ||
                    (snap->version() % 2 == 0 && snap->blockCount() == 8);
                if (!completePair || block < 0 || block >= snap->blockCount())
                    violations.fetch_add(1, std::memory_order_relaxed);
                if (router.route(p) < 0)
                    violations.fetch_add(1, std::memory_order_relaxed);
                reads.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    constexpr std::uint64_t kPublishes = 400;
    for (std::uint64_t v = 2; v <= kPublishes; ++v) {
        router.publish(makeSnapshot(v));
        if (v % 16 == 0) std::this_thread::yield();
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& reader : readers) reader.join();

    EXPECT_EQ(violations.load(), 0);
    EXPECT_GT(reads.load(), 0);
    EXPECT_EQ(router.epoch(), kPublishes);
    EXPECT_EQ(router.snapshot()->version(), kPublishes);
}

TEST(ServeRouter, MisrouteStatsCountsDisagreements) {
    const std::vector<std::int32_t> fresh{0, 1, 2, 3, 4};
    EXPECT_EQ(geo::serve::misrouteStats(fresh, fresh).misrouted, 0);
    EXPECT_DOUBLE_EQ(geo::serve::misrouteStats(fresh, fresh).fraction(), 0.0);

    const std::vector<std::int32_t> routed{0, 1, 0, 3, 0};
    const auto stats = geo::serve::misrouteStats(routed, fresh);
    EXPECT_EQ(stats.total, 5);
    EXPECT_EQ(stats.misrouted, 2);
    EXPECT_DOUBLE_EQ(stats.fraction(), 0.4);

    EXPECT_EQ(geo::serve::misrouteStats({}, {}).fraction(), 0.0);
    EXPECT_THROW((void)geo::serve::misrouteStats(routed, std::span<const std::int32_t>(
                                                             fresh.data(), 3)),
                 std::invalid_argument);
}

TEST(ServeRouter, HealthClockIsPinnedToSteadyClock) {
    // Regression guard for the serving-layer clock audit: every age and
    // staleness measurement (RouterHealth::epochAgeSeconds, the service SLO
    // staleness window) must run on a steady clock — a wall-clock step
    // would fake freshness (backwards) or shed real traffic (forwards).
    static_assert(std::is_same_v<geo::serve::HealthClock, std::chrono::steady_clock>,
                  "serving ages must use steady_clock, not the wall clock");
    static_assert(geo::serve::HealthClock::is_steady);

    // Runtime half: epoch age is non-negative and monotone between two
    // reads with no intervening publish.
    const std::vector<Point2> centers{{0.2, 0.2}, {0.8, 0.8}};
    const std::vector<double> ones(2, 1.0);
    Router<2> router(1);
    router.publish(PartitionSnapshot<2>::fromCenters(centers, ones, 1));
    const double age1 = router.health().epochAgeSeconds;
    const double age2 = router.health().epochAgeSeconds;
    EXPECT_GE(age1, 0.0);
    EXPECT_GE(age2, age1);
}

TEST(ServeSnapshot, FromStateServesCarriedWarmStartState) {
    const auto mesh = geo::gen::delaunay2d(3000, 251);
    Settings settings;
    geo::repart::RepartState<2> state;
    const auto res = geo::repart::repartitionGeographer<2>(mesh.points, {}, 7, 1,
                                                           settings, state);
    ASSERT_TRUE(state.warmable(7));
    const auto snap = PartitionSnapshot<2>::fromState(state, 5);
    EXPECT_EQ(snap.blockCount(), 7);
    EXPECT_EQ(snap.version(), 5u);
    // The carried state holds the post-adaptation influence; when the final
    // balance loop converged the two vectors agree and routing reproduces
    // the partition exactly.
    if (res.result.assignmentInfluence == res.result.influence)
        expectRoutesMatch<2>(snap, mesh.points, res.result.partition, "from state");
    for (const auto& p : mesh.points) {
        const auto b = snap.blockOf(p);
        ASSERT_GE(b, 0);
        ASSERT_LT(b, 7);
    }
}

TEST(ServeSnapshot, CompactCentersRouteIdenticallyToFp64) {
    const auto mesh = geo::gen::delaunay2d(6000, 251);
    const auto weights = fractionalWeights(mesh.points.size(), 252);
    const std::int32_t k = 24;
    Settings settings;
    const auto res =
        geo::core::partitionGeographer<2>(mesh.points, weights, k, 1, settings);

    SnapshotOptions compactOptions;
    compactOptions.compactCenters = true;
    const auto compact = PartitionSnapshot<2>::fromResult(res, 1, 0, compactOptions);
    EXPECT_TRUE(compact.usesCompactCenters());
    EXPECT_FALSE(compact.usesKdTree());

    // The exactness guard's whole point: routes equal the fp64 path (and
    // hence the run's own partition) bit for bit, fallbacks or not.
    expectRoutesMatch<2>(compact, mesh.points, res.partition, "compact2d");

    // Compact overrides the kd-tree even past its threshold — the hot path
    // must stay the guarded fp32 scan.
    SnapshotOptions both;
    both.compactCenters = true;
    both.kdTreeFromK = 1;
    const auto compactOverTree = PartitionSnapshot<2>::fromResult(res, 1, 0, both);
    EXPECT_TRUE(compactOverTree.usesCompactCenters());
    EXPECT_FALSE(compactOverTree.usesKdTree());
    expectRoutesMatch<2>(compactOverTree, mesh.points, res.partition, "compact>tree");
}

TEST(ServeSnapshot, CompactGuardCatchesNearTiesAndDuplicates) {
    // Two duplicated centers plus one distinct: every query near the
    // duplicates produces an exact fp32 tie, which must fall back to the
    // fp64 scan and resolve to the LOWER id — the fp64 tie rule.
    const std::vector<Point2> centers{Point2{{0.25, 0.5}}, Point2{{0.25, 0.5}},
                                      Point2{{0.75, 0.5}}};
    const std::vector<double> influence(3, 1.0);
    SnapshotOptions options;
    options.compactCenters = true;
    const auto compact = PartitionSnapshot<2>::fromCenters(
        std::span<const Point2>(centers), influence, 1, 0, options);
    const auto exact = PartitionSnapshot<2>::fromCenters(
        std::span<const Point2>(centers), influence, 1, 0, {});

    Xoshiro256 rng(257);
    std::vector<Point2> queries(4096);
    for (auto& q : queries) {
        q[0] = rng.uniform();
        q[1] = rng.uniform();
    }
    // Points squarely on the bisector x = 0.5 between distinct centers too.
    for (int i = 0; i < 64; ++i)
        queries.push_back(Point2{{0.5, static_cast<double>(i) / 64.0}});

    std::vector<std::int32_t> gotCompact(queries.size(), -1);
    std::vector<std::int32_t> gotExact(queries.size(), -2);
    compact.blockOf(queries, gotCompact);
    exact.blockOf(queries, gotExact);
    EXPECT_EQ(gotCompact, gotExact);
    for (const auto b : gotCompact) EXPECT_NE(b, 1);  // ties -> lowest id
    // Duplicate centers tie in fp32 for every left-half query; the guard
    // must have routed plenty of lanes through the fp64 fallback.
    EXPECT_GT(compact.compactFallbacks(), 0u);
}

TEST(ServeSnapshot, CompactRebuildsOnLoadAndStaysExact) {
    const auto mesh = geo::gen::delaunay2d(3000, 263);
    Settings settings;
    const auto res = geo::core::partitionGeographer<2>(mesh.points, {}, 16, 1, settings);
    const auto snap = PartitionSnapshot<2>::fromResult(res, 3);

    // The on-disk format carries fp64 only; load() with compact options
    // rebuilds the fp32 mirrors in finalize.
    std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
    snap.save(stream);
    SnapshotOptions options;
    options.compactCenters = true;
    const auto loaded = PartitionSnapshot<2>::load(stream, options);
    EXPECT_TRUE(loaded.usesCompactCenters());
    expectRoutesMatch<2>(loaded, mesh.points, res.partition, "loaded compact");
}

TEST(ServeSnapshot, CompactIgnoredForHierarchicalSnapshots) {
    const auto mesh = geo::gen::delaunay2d(2000, 269);
    Settings settings;
    const auto topo =
        geo::hier::Topology::fromBranching(std::array<std::int32_t, 2>{2, 3});
    const auto hres =
        geo::hier::partitionHierarchical<2>(mesh.points, {}, topo, 1, settings);
    SnapshotOptions options;
    options.compactCenters = true;
    const auto hsnap = PartitionSnapshot<2>::fromHierResult(hres, topo, 1, 0, options);
    EXPECT_FALSE(hsnap.usesCompactCenters());
    expectRoutesMatch<2>(hsnap, mesh.points, hres.partition, "hier compact-off");
}

TEST(ServeSnapshot, CompactCenters3d) {
    Xoshiro256 rng(271);
    std::vector<Point3> points(3000);
    for (auto& p : points)
        for (int d = 0; d < 3; ++d) p[d] = rng.uniform();
    Settings settings;
    const auto res = geo::core::partitionGeographer<3>(points, {}, 10, 1, settings);
    SnapshotOptions options;
    options.compactCenters = true;
    const auto compact = PartitionSnapshot<3>::fromResult(res, 1, 0, options);
    EXPECT_TRUE(compact.usesCompactCenters());
    expectRoutesMatch<3>(compact, points, res.partition, "compact3d");
}

}  // namespace
