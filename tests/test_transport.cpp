// Transport conformance + cross-backend acceptance suite.
//
// The binary is dual-purpose:
//   * run with no --worker flag it is a normal gtest binary: binio codec
//     units, the collectives conformance battery on the simulator at
//     several rank counts (the oracle), and the socket-backend legs, which
//     re-exec THIS binary under geo_launch (GEO_LAUNCH_PATH, injected by
//     CMake) so every conformance case also runs across real processes;
//   * run with --worker=conformance it executes the same battery inside a
//     geo_launch worker and signals failure through its exit code;
//   * run with --worker=pipeline OUT it runs the partition → repartition →
//     route pipeline and rank 0 writes a binary dump of every
//     deterministic output to OUT — the gtest side compares that dump
//     byte-for-byte against the simulator's, which is the ISSUE acceptance
//     criterion (same partition vector, same misrouteStats, at 2 and 4
//     real processes).
//
// Every expected value in the battery is the STRICT RANK-ORDER fold the
// determinism contract promises (transport.hpp): each rank recomputes the
// fold locally over all ranks' known contributions and compares bitwise,
// so a backend that reassociates floating-point reductions fails here.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "core/geographer.hpp"
#include "core/settings.hpp"
#include "par/comm.hpp"
#include "par/transport/transport.hpp"
#include "repart/repartition.hpp"
#include "repart/scenarios.hpp"
#include "serve/router.hpp"
#include "serve/snapshot.hpp"
#include "support/binio.hpp"

#ifndef GEO_LAUNCH_PATH
#error "GEO_LAUNCH_PATH must be defined to the geo_launch binary path"
#endif

namespace {

using geo::par::Comm;
using geo::par::TransportKind;

// ---------------------------------------------------------------- helpers

std::string selfExe() {
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0) return {};
    buf[n] = '\0';
    return std::string(buf);
}

/// Run `geo_launch <tail>`; returns the launcher's exit status (or -1 when
/// the shell could not be spawned, 128+signal on abnormal termination).
int runLaunch(const std::string& tail) {
    const std::string cmd = std::string(GEO_LAUNCH_PATH) + " " + tail;
    const int rc = std::system(cmd.c_str());
    if (rc == -1) return -1;
    if (WIFEXITED(rc)) return WEXITSTATUS(rc);
    if (WIFSIGNALED(rc)) return 128 + WTERMSIG(rc);
    return 255;
}

// ------------------------------------------------- conformance battery

/// One failure sink shared by all ranks of a run. In the simulator the
/// ranks are threads of this process, hence the mutex; in a geo_launch
/// worker each process owns a private instance.
struct Failures {
    std::mutex mu;
    std::vector<std::string> all;

    void add(int rank, const std::string& what) {
        const std::lock_guard<std::mutex> lock(mu);
        all.push_back("rank " + std::to_string(rank) + ": " + what);
    }
};

#define BAT_CHECK(cond, label) \
    do {                       \
        if (!(cond)) fails.add(comm.rank(), (label)); \
    } while (0)

/// The collectives conformance battery. Every expectation is exact —
/// including the floating-point ones, which recompute the rank-order fold
/// locally — so it doubles as the bitwise determinism check both backends
/// must pass identically. Valid at any size >= 1 (size 1 exercises the
/// short-circuit paths).
void runBattery(Comm& comm, Failures& fails) {
    const int p = comm.size();
    const int r = comm.rank();

    // Barriers compose with everything else; run a few up front.
    comm.barrier();
    comm.barrier();

    // Scalar integer sum: ranks contribute r+1.
    BAT_CHECK(comm.allreduceSum(std::int64_t{r} + 1) ==
                  std::int64_t{p} * (p + 1) / 2,
              "allreduceSum scalar int");

    // Vector double sum against the rank-order fold oracle. The values are
    // chosen so reassociation changes the rounding: a backend folding in
    // any other order produces bitwise-different sums.
    {
        const int m = 5;
        auto contrib = [&](int q, int i) {
            return 0.1 * (q + 1) + 1e-13 * (i + 1) * (q + 1) * (q + 1);
        };
        std::vector<double> mine(m), expect(m);
        for (int i = 0; i < m; ++i) {
            mine[static_cast<std::size_t>(i)] = contrib(r, i);
            double acc = contrib(0, i);
            for (int q = 1; q < p; ++q) acc += contrib(q, i);
            expect[static_cast<std::size_t>(i)] = acc;
        }
        comm.allreduceSum(std::span<double>(mine));
        BAT_CHECK(mine == expect, "allreduceSum double vector (bitwise fold)");
    }

    // Min/max with negatives.
    BAT_CHECK(comm.allreduceMin(std::int32_t{-r}) == -(p - 1), "allreduceMin int");
    BAT_CHECK(comm.allreduceMax(0.5 * r) == 0.5 * (p - 1), "allreduceMax double");
    BAT_CHECK(comm.allreduceMax(std::uint64_t{1} << (r % 48)) ==
                  std::uint64_t{1} << ((p - 1) % 48),
              "allreduceMax u64");

    // Broadcast from every root, plus the zero-length edge case.
    for (int root = 0; root < p; ++root) {
        std::vector<std::int64_t> buf(7, -1);
        if (r == root)
            for (int i = 0; i < 7; ++i)
                buf[static_cast<std::size_t>(i)] = root * 1000 + i;
        comm.broadcast(std::span<std::int64_t>(buf), root);
        bool ok = true;
        for (int i = 0; i < 7; ++i)
            ok &= buf[static_cast<std::size_t>(i)] == root * 1000 + i;
        BAT_CHECK(ok, "broadcast from root " + std::to_string(root));
    }
    {
        std::vector<int> empty;
        comm.broadcast(std::span<int>(empty), 0);  // must not hang or crash
    }

    // allgather of one scalar per rank: rank order is the contract.
    {
        const auto got = comm.allgather(r * 10 + 1);
        bool ok = static_cast<int>(got.size()) == p;
        for (int q = 0; ok && q < p; ++q)
            ok = got[static_cast<std::size_t>(q)] == q * 10 + 1;
        BAT_CHECK(ok, "allgather rank order");
    }

    // Uneven allgatherv: rank q contributes q elements — rank 0 sends a
    // zero-length buffer.
    {
        std::vector<std::int32_t> mine(static_cast<std::size_t>(r));
        for (int j = 0; j < r; ++j)
            mine[static_cast<std::size_t>(j)] = r * 100 + j;
        const auto got = comm.allgatherv(std::span<const std::int32_t>(mine));
        std::vector<std::int32_t> expect;
        for (int q = 0; q < p; ++q)
            for (int j = 0; j < q; ++j) expect.push_back(q * 100 + j);
        BAT_CHECK(got == expect, "allgatherv uneven sizes");
    }

    // All-empty allgatherv.
    {
        const std::vector<double> none;
        BAT_CHECK(comm.allgatherv(std::span<const double>(none)).empty(),
                  "allgatherv all-empty");
    }

    // Uneven alltoallv with POD struct payloads; bucket sizes (sender +
    // receiver) % 3 cover zero-length pairs in both directions.
    {
        struct Cell {
            std::int32_t tag;
            double value;
            bool operator==(const Cell&) const = default;
        };
        std::vector<std::vector<Cell>> sendTo(static_cast<std::size_t>(p));
        for (int q = 0; q < p; ++q)
            for (int j = 0; j < (r + q) % 3; ++j)
                sendTo[static_cast<std::size_t>(q)].push_back(
                    Cell{r * 10000 + q * 100 + j, 0.25 * r + j});
        const auto got = comm.alltoallv(sendTo);
        std::vector<Cell> expect;
        for (int q = 0; q < p; ++q)
            for (int j = 0; j < (q + r) % 3; ++j)
                expect.push_back(Cell{q * 10000 + r * 100 + j, 0.25 * q + j});
        BAT_CHECK(got == expect, "alltoallv uneven POD buckets");
    }

    // Exclusive prefix sums: integer exactly, double against the fold.
    BAT_CHECK(comm.exscanSum(std::uint64_t{static_cast<std::uint64_t>(r) + 1}) ==
                  static_cast<std::uint64_t>(r) * (r + 1) / 2,
              "exscanSum u64");
    {
        auto contrib = [](int q) { return 0.1 * (q + 1) + 1e-13 * (q + 1) * (q + 1); };
        double expect = 0.0;
        for (int q = 0; q < r; ++q) expect += contrib(q);
        BAT_CHECK(comm.exscanSum(contrib(r)) == expect,
                  "exscanSum double (bitwise fold)");
    }

    // Interleaved data-dependent collectives: 8 rounds mixing sum and max
    // where each round's input depends on the previous round's output.
    // Every rank recomputes the whole-machine evolution locally.
    {
        double x = 1.0 + 0.01 * r;
        std::vector<double> oracle(static_cast<std::size_t>(p));
        for (int q = 0; q < p; ++q) oracle[static_cast<std::size_t>(q)] = 1.0 + 0.01 * q;
        for (int it = 0; it < 8; ++it) {
            const double s = comm.allreduceSum(x);
            const double mx = comm.allreduceMax(x);
            x = s / p + 0.001 * mx + 1e-6 * r;

            double os = oracle[0];
            for (int q = 1; q < p; ++q) os += oracle[static_cast<std::size_t>(q)];
            double omx = oracle[0];
            for (int q = 1; q < p; ++q)
                omx = std::max(omx, oracle[static_cast<std::size_t>(q)]);
            for (int q = 0; q < p; ++q)
                oracle[static_cast<std::size_t>(q)] = os / p + 0.001 * omx + 1e-6 * q;
        }
        BAT_CHECK(x == oracle[static_cast<std::size_t>(r)],
                  "interleaved collective sequence (bitwise)");
    }

    // CommStats parity: the accounting happens in Comm from logical payload
    // sizes, so both backends must report byte-identical stats for the same
    // call sequence. (At size 1 collectives short-circuit unaccounted; the
    // single-rank zero-stats case is covered by test_comm.)
    if (p > 1) {
        comm.resetStats();
        std::vector<double> v(3, 1.0);
        comm.allreduceSum(std::span<double>(v));
        std::vector<std::int32_t> mine(static_cast<std::size_t>(r + 1), r);
        (void)comm.allgatherv(std::span<const std::int32_t>(mine));
        std::vector<std::int64_t> b(7, r == 0 ? 9 : 0);
        comm.broadcast(std::span<std::int64_t>(b), 0);

        const std::uint64_t gatherTotal =
            sizeof(std::int32_t) * static_cast<std::uint64_t>(p) * (p + 1) / 2;
        const std::uint64_t mineBytes = sizeof(std::int32_t) * (static_cast<std::uint64_t>(r) + 1);
        const std::uint64_t wantSent = 24 + mineBytes + (r == 0 ? 56 : 0);
        const std::uint64_t wantRecv = 24 + (gatherTotal - mineBytes) + (r == 0 ? 0 : 56);
        BAT_CHECK(comm.stats().collectives == 3, "stats: collective count");
        BAT_CHECK(comm.stats().bytesSent == wantSent, "stats: bytesSent");
        BAT_CHECK(comm.stats().bytesReceived == wantRecv, "stats: bytesReceived");
        comm.resetStats();
    }

    comm.barrier();
}

#undef BAT_CHECK

// ------------------------------------------------- pipeline scenario

/// The acceptance pipeline: cold partition → snapshot publish → route the
/// next timestep through the stale snapshot → warm repartition → misroute
/// accounting. Returns a binary dump of every deterministic output; the
/// same `ranks` must yield the same bytes on every backend.
std::vector<std::byte> runPipelineDump(int ranks, TransportKind kind) {
    using geo::repart::RepartState;
    using geo::serve::PartitionSnapshot;

    geo::repart::ScenarioConfig cfg;
    cfg.kind = geo::repart::ScenarioKind::Advection;
    cfg.basePoints = 1600;
    cfg.drift = 0.05;
    cfg.seed = 11;
    geo::repart::Scenario<2> scenario(cfg);

    geo::core::Settings settings;
    settings.threads = 2;
    settings.transport = kind;
    const std::int32_t k = 8;

    geo::binio::Writer w;
    auto dumpResult = [&w](const geo::core::GeographerResult& res) {
        w.u64(res.partition.size());
        w.vec(res.partition);
        w.f64(res.imbalance);
        w.u8(res.converged ? 1 : 0);
        w.vec(res.centerCoords);
        w.vec(res.influence);
        w.vec(res.assignmentInfluence);
        w.u64(res.runStats.totalBytes);
        w.u64(res.runStats.collectives);
        w.f64(res.runStats.maxModeledCommSeconds);
    };

    RepartState<2> state;
    const geo::repart::RepartOptions opts;

    // Step 0: no carried state — the full cold pipeline.
    const auto step0 = geo::repart::repartitionGeographer<2>(
        std::span<const geo::Point2>(scenario.current().points),
        std::span<const double>(scenario.current().weights), k, ranks, settings,
        state, opts);
    w.u8(step0.warmStarted ? 1 : 0);
    dumpResult(step0.result);

    // Publish step 0 as the serving snapshot, then route step 1's points
    // through it — the stale-snapshot serving situation.
    geo::serve::Router<2> router(/*threads=*/2);
    router.publish(PartitionSnapshot<2>::fromResult(step0.result, /*version=*/1, ranks));

    scenario.advance();
    const auto& pts1 = scenario.current().points;
    std::vector<std::int32_t> routed(pts1.size());
    router.route(std::span<const geo::Point2>(pts1), std::span<std::int32_t>(routed));
    w.u64(routed.size());
    w.vec(routed);
    std::vector<std::int32_t> routedRanks(pts1.size());
    for (std::size_t i = 0; i < pts1.size(); ++i)
        routedRanks[i] = router.routeRank(pts1[i]);
    w.vec(routedRanks);

    // Step 1: repartition the moved points (warm whenever the probe allows).
    const auto step1 = geo::repart::repartitionGeographer<2>(
        std::span<const geo::Point2>(pts1),
        std::span<const double>(scenario.current().weights), k, ranks, settings,
        state, opts);
    w.u8(step1.warmStarted ? 1 : 0);
    dumpResult(step1.result);

    const auto mis = geo::serve::misrouteStats(
        std::span<const std::int32_t>(routed),
        std::span<const std::int32_t>(step1.result.partition));
    w.i64(mis.total);
    w.i64(mis.misrouted);
    return std::move(w).take();
}

// ------------------------------------------------- worker entry points

int conformanceWorkerMain() {
    // Inside a geo_launch worker: the process transport must exist and be
    // cross-process — a silent simulator fallback would make the socket
    // conformance legs vacuous.
    const int ranks = geo::par::defaultRanks();
    Failures fails;
    bool sawCrossProcess = false;
    try {
        geo::par::runSpmd(ranks, [&](Comm& comm) {
            sawCrossProcess = comm.crossProcess();
            runBattery(comm, fails);
        });
    } catch (const std::exception& e) {
        std::fprintf(stderr, "[conformance] exception: %s\n", e.what());
        return 2;
    }
    if (!sawCrossProcess) {
        std::fprintf(stderr, "[conformance] expected a cross-process transport\n");
        return 3;
    }
    for (const auto& f : fails.all)
        std::fprintf(stderr, "[conformance] FAIL %s\n", f.c_str());
    return fails.all.empty() ? 0 : 1;
}

int pipelineWorkerMain(const char* outPath) {
    const char* rankEnv = std::getenv("GEO_RANK");
    try {
        const auto bytes = runPipelineDump(geo::par::defaultRanks(), TransportKind::Auto);
        // Guard against a silent simulator fallback, which would turn the
        // cross-backend comparison into sim-vs-sim.
        geo::par::Transport* transport = geo::par::processTransport();
        if (transport == nullptr || !transport->crossProcess()) {
            std::fprintf(stderr, "[pipeline] expected a cross-process transport\n");
            return 3;
        }
        if (rankEnv != nullptr && std::strcmp(rankEnv, "0") == 0) {
            std::ofstream out(outPath, std::ios::binary | std::ios::trunc);
            out.write(reinterpret_cast<const char*>(bytes.data()),
                      static_cast<std::streamsize>(bytes.size()));
            if (!out.good()) return 4;
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "[pipeline] exception: %s\n", e.what());
        return 2;
    }
    return 0;
}

// ------------------------------------------------- gtest: binio codec

namespace binio = geo::binio;

TEST(Binio, WriterReaderRoundTrip) {
    binio::Writer w;
    w.u8(7);
    w.u32(0xDEADBEEFu);
    w.u64(std::uint64_t{1} << 52);
    w.i32(-123);
    w.i64(-(std::int64_t{1} << 40));
    w.f64(0.1);
    const std::vector<double> values{1.5, -2.25, 1e300};
    w.u64(values.size());
    w.vec(values);
    const auto bytes = std::move(w).take();

    binio::Reader r(bytes);
    EXPECT_EQ(r.u8(), 7);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), std::uint64_t{1} << 52);
    EXPECT_EQ(r.i32(), -123);
    EXPECT_EQ(r.i64(), -(std::int64_t{1} << 40));
    EXPECT_EQ(r.f64(), 0.1);
    const auto count = r.u64();
    EXPECT_EQ(r.vec<double>(count), values);
    EXPECT_TRUE(r.atEnd());
    EXPECT_NO_THROW(r.expectEnd("roundtrip"));
}

TEST(Binio, ReaderRejectsTruncation) {
    binio::Writer w;
    w.u32(42);
    const auto bytes = std::move(w).take();
    binio::Reader r(bytes);
    EXPECT_THROW((void)r.u64(), std::invalid_argument);  // only 4 bytes left
    EXPECT_EQ(r.u32(), 42u);                             // failed read consumed nothing
}

TEST(Binio, ReaderRejectsHostileCountBeforeAllocating) {
    // A forged count (~1e18 doubles) must throw on the bounds check, not
    // attempt an 8 EB allocation.
    binio::Writer w;
    w.u64(std::uint64_t{1} << 60);
    const auto bytes = std::move(w).take();
    binio::Reader r(bytes);
    const auto count = r.u64();
    EXPECT_THROW((void)r.vec<double>(count), std::invalid_argument);
}

TEST(Binio, ExpectEndRejectsTrailingBytes) {
    binio::Writer w;
    w.u32(1);
    w.u8(0);  // trailing garbage
    const auto bytes = std::move(w).take();
    binio::Reader r(bytes);
    (void)r.u32();
    EXPECT_THROW(r.expectEnd("payload"), std::invalid_argument);
}

TEST(Binio, ReadAllEnforcesCap) {
    const std::string payload(100, 'x');
    std::istringstream big(payload);
    EXPECT_THROW((void)binio::readAll(big, 10), std::invalid_argument);
    std::istringstream ok(payload);
    EXPECT_EQ(binio::readAll(ok, 1000).size(), payload.size());
}

// ------------------------------------------------- gtest: simulator oracle

class SimConformance : public ::testing::TestWithParam<int> {};

TEST_P(SimConformance, BatteryPasses) {
    Failures fails;
    geo::par::runSpmd(GetParam(), [&](Comm& comm) { runBattery(comm, fails); },
                      {}, TransportKind::Sim);
    for (const auto& f : fails.all) ADD_FAILURE() << f;
}

INSTANTIATE_TEST_SUITE_P(RankCounts, SimConformance,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------- gtest: socket backend

TEST(SocketConformance, TwoRanks) {
    EXPECT_EQ(runLaunch("-n 2 -- " + selfExe() + " --worker=conformance"), 0);
}

TEST(SocketConformance, ThreeRanks) {
    // Non-power-of-two exercises the ragged edges of the binomial trees.
    EXPECT_EQ(runLaunch("-n 3 -- " + selfExe() + " --worker=conformance"), 0);
}

TEST(SocketConformance, FourRanks) {
    EXPECT_EQ(runLaunch("-n 4 -- " + selfExe() + " --worker=conformance"), 0);
}

TEST(SocketConformance, TcpTwoRanks) {
    EXPECT_EQ(runLaunch("--transport tcp -n 2 -- " + selfExe() + " --worker=conformance"),
              0);
}

TEST(GeoLaunch, PropagatesWorkerExitCode) {
    EXPECT_EQ(runLaunch("-n 2 -- " + selfExe() + " --worker=exit7"), 7);
}

// --------------------------------------- gtest: bitwise pipeline acceptance

void comparePipelineAgainstSim(int ranks) {
    const auto simBytes = runPipelineDump(ranks, TransportKind::Sim);
    ASSERT_FALSE(simBytes.empty());

    const std::string out = "/tmp/geo_test_pipeline_" + std::to_string(::getpid()) +
                            "_" + std::to_string(ranks) + ".bin";
    std::remove(out.c_str());
    ASSERT_EQ(runLaunch("-n " + std::to_string(ranks) + " -- " + selfExe() +
                        " --worker=pipeline " + out),
              0);

    std::ifstream in(out, std::ios::binary);
    ASSERT_TRUE(in.good()) << "worker produced no dump at " << out;
    const auto socketBytes = binio::readAll(in, std::size_t{1} << 30);
    std::remove(out.c_str());

    ASSERT_EQ(socketBytes.size(), simBytes.size());
    EXPECT_EQ(std::memcmp(socketBytes.data(), simBytes.data(), simBytes.size()), 0)
        << "socket backend diverged from the simulator at " << ranks << " ranks";
}

TEST(PipelineBitwise, SimVsSocketTwoRanks) { comparePipelineAgainstSim(2); }

TEST(PipelineBitwise, SimVsSocketFourRanks) { comparePipelineAgainstSim(4); }

}  // namespace

int main(int argc, char** argv) {
    // Worker dispatch: geo_launch re-execs this binary with a --worker flag.
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--worker=conformance") return conformanceWorkerMain();
        if (arg == "--worker=pipeline") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--worker=pipeline needs an output path\n");
                return 64;
            }
            return pipelineWorkerMain(argv[i + 1]);
        }
        if (arg == "--worker=exit7") return 7;
    }

    // gtest mode: scrub worker environment so the simulator legs cannot
    // accidentally pick up a socket transport from the caller's shell, and
    // the geo_launch children start from a clean slate.
    for (const char* var : {"GEO_RANK", "GEO_RANKS", "GEO_TRANSPORT",
                            "GEO_SOCKET_DIR", "GEO_PORT_BASE"})
        unsetenv(var);

    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
