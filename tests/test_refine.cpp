#include <gtest/gtest.h>

#include "baseline/hsfc.hpp"
#include "gen/delaunay2d.hpp"
#include "gen/grid.hpp"
#include "graph/metrics.hpp"
#include "refine/fm.hpp"
#include "support/rng.hpp"

namespace {

using namespace geo;
using geo::refine::fmRefine;
using geo::refine::FmSettings;

graph::Partition slabs(std::int32_t nx, std::int32_t ny, std::int32_t k) {
    graph::Partition part(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny));
    for (std::int32_t y = 0; y < ny; ++y)
        for (std::int32_t x = 0; x < nx; ++x)
            part[static_cast<std::size_t>(y) * static_cast<std::size_t>(nx) +
                 static_cast<std::size_t>(x)] = std::min<std::int32_t>(x * k / nx, k - 1);
    return part;
}

TEST(FmRefine, NoOpOnOptimalSlabPartition) {
    const auto mesh = gen::grid2d(16, 8);
    auto part = slabs(16, 8, 2);
    const auto res = fmRefine(mesh.graph, part, 2);
    EXPECT_EQ(res.cutBefore, res.cutAfter);
    EXPECT_EQ(res.movedVertices, 0);
    EXPECT_EQ(part, slabs(16, 8, 2));
}

TEST(FmRefine, RepairsPerturbedPartition) {
    const auto mesh = gen::grid2d(20, 10);
    auto part = slabs(20, 10, 2);
    // Perturb: flip a strip of vertices near the cut into the wrong block.
    Xoshiro256 rng(5);
    for (int i = 0; i < 20; ++i) {
        const auto v = static_cast<std::size_t>(rng.below(part.size()));
        part[v] = 1 - part[v];
    }
    const auto cutPerturbed = graph::edgeCut(mesh.graph, part);
    FmSettings s;
    s.epsilon = 0.1;
    const auto res = fmRefine(mesh.graph, part, 2, {}, s);
    EXPECT_EQ(res.cutBefore, cutPerturbed);
    EXPECT_LT(res.cutAfter, cutPerturbed);
    EXPECT_GT(res.movedVertices, 0);
    // Balance must be preserved.
    EXPECT_LE(graph::imbalance(part, 2), 0.1 + 1e-9);
}

TEST(FmRefine, NeverWorsensCutAcrossManyInstances) {
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        const auto mesh = gen::delaunay2d(3000, seed);
        auto part = baseline::hsfc<2>(mesh.points, {}, 8);
        const auto before = graph::edgeCut(mesh.graph, part);
        const auto res = fmRefine(mesh.graph, part, 8);
        EXPECT_LE(res.cutAfter, before);
        EXPECT_EQ(res.cutAfter, graph::edgeCut(mesh.graph, part));
        EXPECT_NO_THROW(graph::validatePartition(mesh.graph, part, 8));
    }
}

TEST(FmRefine, ImprovesSfcPartitionsSubstantially) {
    // HSFC's wrinkled boundaries leave plenty of positive-gain moves.
    const auto mesh = gen::delaunay2d(5000, 7);
    auto part = baseline::hsfc<2>(mesh.points, {}, 8);
    const auto res = fmRefine(mesh.graph, part, 8);
    EXPECT_LT(static_cast<double>(res.cutAfter), 0.95 * static_cast<double>(res.cutBefore));
}

TEST(FmRefine, RespectsBalanceConstraintUnderWeights) {
    const auto mesh = gen::grid2d(12, 12);
    std::vector<double> w(144, 1.0);
    for (std::size_t i = 0; i < 72; ++i) w[i] = 3.0;  // heavy bottom half
    auto part = slabs(12, 12, 3);
    FmSettings s;
    s.epsilon = 0.25;
    (void)fmRefine(mesh.graph, part, 3, w, s);
    double total = 0.0;
    std::vector<double> blockW(3, 0.0);
    for (std::size_t v = 0; v < part.size(); ++v) {
        blockW[static_cast<std::size_t>(part[v])] += w[v];
        total += w[v];
    }
    const double cap = (1.0 + s.epsilon) * std::ceil(total / 3.0);
    for (const double bw : blockW) EXPECT_LE(bw, cap + 3.0);  // +max single weight
}

TEST(FmRefine, RejectsBadInput) {
    const auto mesh = gen::grid2d(4, 4);
    graph::Partition bad(16, 0);
    bad[0] = 7;
    EXPECT_THROW((void)fmRefine(mesh.graph, bad, 2), std::invalid_argument);
    graph::Partition ok(16, 0);
    FmSettings s;
    s.maxPasses = 0;
    EXPECT_THROW((void)fmRefine(mesh.graph, ok, 1, {}, s), std::invalid_argument);
}

}  // namespace
