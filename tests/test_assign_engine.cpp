// Unit tests for the assignment engine (core/assign_kernel), driven
// directly — without the surrounding balanced k-means loop — so round
// sequences the full algorithm cannot easily produce are constructible.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "core/assign_kernel.hpp"
#include "geometry/box.hpp"
#include "support/rng.hpp"

namespace {

using namespace geo;
using geo::core::AssignEngine;
using geo::core::Settings;

template <int D>
std::vector<Point<D>> randomPoints(int n, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<Point<D>> pts;
    for (int i = 0; i < n; ++i) {
        Point<D> p;
        for (int d = 0; d < D; ++d) p[d] = rng.uniform();
        pts.push_back(p);
    }
    return pts;
}

std::vector<std::size_t> identityOrder(std::size_t n) {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    return order;
}

/// Brute-force argmin of the effective distance.
template <int D>
std::int32_t nearestCenter(const Point<D>& p, const std::vector<Point<D>>& centers,
                           const std::vector<double>& influence) {
    double best = std::numeric_limits<double>::infinity();
    std::int32_t bestC = -1;
    for (std::size_t c = 0; c < centers.size(); ++c) {
        const double e = distance(p, centers[c]) / influence[c];
        if (e < best) {
            best = e;
            bestC = static_cast<std::int32_t>(c);
        }
    }
    return bestC;
}

/// Regression for the stale pruning-key bug: the seed guarded the pruning
/// break on `centerKey_.size() == sortedCenters_.size()`, which stays true
/// once keys have been computed in ANY earlier round. A later round whose
/// active bounding box is invalid resets sortedCenters_ to identity order
/// without recomputing keys; breaking on stale keys in unsorted order then
/// skips centers that can still win. The engine must only consult keys
/// computed this round.
TEST(AssignEngine, StaleKeysAreNotConsultedWhenBoxIsInvalid) {
    for (const bool reference : {false, true}) {
        // p0 sits far out so round 1 computes a huge key for every center;
        // p1 sits exactly on center 2.
        const std::vector<Point2> points{Point2{{100.0, 0.0}}, Point2{{5.0, 0.0}}};
        const std::vector<Point2> centers{Point2{{0.0, 0.0}}, Point2{{0.1, 0.0}},
                                          Point2{{5.0, 0.0}}};
        const std::vector<double> influence(3, 1.0);
        Settings s;
        s.referenceAssignment = reference;
        s.boundingBoxPruning = true;
        s.hamerlyBounds = true;
        AssignEngine<2> engine(points, {}, s, 3);
        std::vector<double> sizes(3, 0.0);

        // Round 1: only p0 active; its box is far from every center, so the
        // pruning keys are all large (key for center 2 ≈ 95).
        const std::vector<std::size_t> round1{0};
        engine.setActive(round1, 1);
        engine.beginRound(centers, influence, engine.activeBox());
        engine.sweep(sizes);

        // Round 2: only p1 active, but the caller supplies an *invalid* box
        // (the state of a rank with no active points). With stale keys the
        // identity-order scan would compute centers 0 and 1 (eff dist 5 and
        // 4.9), see stale key[2] ≈ 95 > second ≈ 5 and break — wrongly
        // assigning p1 to center 1. Fresh guard: no keys, full scan.
        const std::vector<std::size_t> round2{1};
        engine.setActive(round2, 1);
        engine.beginRound(centers, influence, Box2::empty());
        engine.sweep(sizes);
        EXPECT_EQ(engine.assignment()[1], 2)
            << (reference ? "reference" : "fast") << " mode consulted stale keys";
    }
}

class EngineModeSweep : public ::testing::TestWithParam<std::tuple<bool, bool, int>> {};
INSTANTIATE_TEST_SUITE_P(
    Modes, EngineModeSweep,
    ::testing::Combine(::testing::Bool(),          // referenceAssignment
                       ::testing::Bool(),          // useKdTree
                       ::testing::Values(1, 3)));  // threads

TEST_P(EngineModeSweep, SingleSweepMatchesBruteForce) {
    const auto [reference, kdTree, threads] = GetParam();
    const auto points = randomPoints<2>(4000, 211);
    const auto centers = randomPoints<2>(23, 223);
    Xoshiro256 rng(227);
    std::vector<double> influence;
    for (std::size_t c = 0; c < centers.size(); ++c)
        influence.push_back(rng.uniform(0.5, 2.0));
    Settings s;
    s.referenceAssignment = reference;
    s.useKdTree = kdTree;
    s.threads = threads;
    AssignEngine<2> engine(points, {}, s, 23);
    const auto order = identityOrder(points.size());
    engine.setActive(order, points.size());
    engine.beginRound(centers, influence, engine.activeBox());
    std::vector<double> sizes(23, 0.0);
    engine.sweep(sizes);
    for (std::size_t p = 0; p < points.size(); ++p)
        ASSERT_EQ(engine.assignment()[p], nearestCenter(points[p], centers, influence))
            << "point " << p;
    EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0.0),
              static_cast<double>(points.size()));
}

TEST(AssignEngine, LazyEpochBoundsSkipButNeverMisassign) {
    const auto points = randomPoints<2>(5000, 229);
    auto centers = randomPoints<2>(12, 233);
    std::vector<double> influence(12, 1.0);
    Settings s;
    AssignEngine<2> engine(points, {}, s, 12);
    const auto order = identityOrder(points.size());
    engine.setActive(order, points.size());
    std::vector<double> sizes(12, 0.0);
    engine.beginRound(centers, influence, engine.activeBox());
    engine.sweep(sizes);

    // Apply three influence perturbations, each pushed as a lazy epoch; the
    // bounds replayed on touch must stay conservative: a skipped point's
    // membership is provably unchanged, so every assignment still equals
    // the brute-force argmin under the *current* influence.
    Xoshiro256 rng(239);
    for (int step = 0; step < 3; ++step) {
        std::vector<double> ratio(12);
        for (std::size_t c = 0; c < 12; ++c) {
            const double before = influence[c];
            influence[c] *= rng.uniform(0.96, 1.04);
            ratio[c] = before / influence[c];
        }
        engine.pushInfluenceEpoch(ratio);
        engine.beginRound(centers, influence, engine.activeBox());
        engine.sweep(sizes);
        for (std::size_t p = 0; p < points.size(); ++p)
            ASSERT_EQ(engine.assignment()[p],
                      nearestCenter(points[p], centers, influence))
                << "step " << step << " point " << p;
    }
    EXPECT_GT(engine.counters().boundSkips, 0u);
    EXPECT_GT(engine.counters().epochBoundApplications, 0u);
    // A skipped point applies epochs without a fresh distance scan, so the
    // lazy scheme did strictly less relaxation work than three eager O(n)
    // sweeps would have.
    EXPECT_LE(engine.counters().epochBoundApplications, 3u * points.size());
}

TEST(AssignEngine, MoveEpochKeepsBoundsConservative) {
    const auto points = randomPoints<2>(4000, 241);
    auto centers = randomPoints<2>(10, 251);
    std::vector<double> influence(10, 1.0);
    Settings s;
    AssignEngine<2> engine(points, {}, s, 10);
    const auto order = identityOrder(points.size());
    engine.setActive(order, points.size());
    std::vector<double> sizes(10, 0.0);
    engine.beginRound(centers, influence, engine.activeBox());
    engine.sweep(sizes);

    // Move every center a little and erode influence, as an outer k-means
    // iteration would, then push the corresponding move epoch.
    Xoshiro256 rng(257);
    std::vector<double> ratio(10), shift(10);
    for (std::size_t c = 0; c < 10; ++c) {
        Point2 moved = centers[c];
        moved[0] += rng.uniform(-0.01, 0.01);
        moved[1] += rng.uniform(-0.01, 0.01);
        const double delta = distance(moved, centers[c]);
        centers[c] = moved;
        const double before = influence[c];
        influence[c] *= rng.uniform(0.98, 1.02);
        ratio[c] = before / influence[c];
        shift[c] = delta / influence[c];
    }
    engine.pushMoveEpoch(ratio, shift);
    engine.beginRound(centers, influence, engine.activeBox());
    engine.sweep(sizes);
    for (std::size_t p = 0; p < points.size(); ++p)
        ASSERT_EQ(engine.assignment()[p], nearestCenter(points[p], centers, influence))
            << "point " << p;
}

TEST(AssignEngine, ThreadCountNeverChangesSizesBitwise) {
    // Fractional weights: the block-wise partial sums must reduce to the
    // exact same doubles at every thread count (fixed block boundaries,
    // serial block-order reduction) — the engine's determinism contract.
    const auto points = randomPoints<2>(7001, 263);
    Xoshiro256 rng(269);
    std::vector<double> weights;
    for (std::size_t i = 0; i < points.size(); ++i) weights.push_back(rng.uniform(0.1, 3.0));
    const auto centers = randomPoints<2>(16, 271);
    const std::vector<double> influence(16, 1.0);

    std::vector<double> want;
    std::vector<std::int32_t> wantAssign;
    for (const int threads : {1, 2, 3, 4}) {
        Settings s;
        s.threads = threads;
        AssignEngine<2> engine(points, weights, s, 16);
        const auto order = identityOrder(points.size());
    engine.setActive(order, points.size());
        engine.beginRound(centers, influence, engine.activeBox());
        std::vector<double> sizes(16, 0.0);
        engine.sweep(sizes);
        const auto assign = engine.takeAssignment();
        if (threads == 1) {
            want = sizes;
            wantAssign = assign;
        } else {
            EXPECT_EQ(sizes, want) << "threads=" << threads;
            EXPECT_EQ(assign, wantAssign) << "threads=" << threads;
        }
    }
}

TEST(AssignEngine, ZeroActivePointsIsANoop) {
    const auto points = randomPoints<2>(10, 277);
    const auto centers = randomPoints<2>(3, 281);
    const std::vector<double> influence(3, 1.0);
    Settings s;
    AssignEngine<2> engine(points, {}, s, 3);
    const auto order = identityOrder(points.size());
    engine.setActive(order, 0);
    EXPECT_FALSE(engine.activeBox().valid());
    engine.beginRound(centers, influence, engine.activeBox());
    std::vector<double> sizes(3, 1.0);
    engine.sweep(sizes);
    for (const double v : sizes) EXPECT_EQ(v, 0.0);
}

TEST(AssignEngine, BatchKernelCountsBatchedDistances) {
    const auto points = randomPoints<2>(2000, 283);
    const auto centers = randomPoints<2>(8, 293);
    const std::vector<double> influence(8, 1.0);
    for (const bool reference : {false, true}) {
        Settings s;
        s.referenceAssignment = reference;
        AssignEngine<2> engine(points, {}, s, 8);
        const auto order = identityOrder(points.size());
    engine.setActive(order, points.size());
        engine.beginRound(centers, influence, engine.activeBox());
        std::vector<double> sizes(8, 0.0);
        engine.sweep(sizes);
        EXPECT_GT(engine.counters().distanceCalcs, 0u);
        if (reference) {
            EXPECT_EQ(engine.counters().batchedDistanceCalcs, 0u);
        } else {
            EXPECT_EQ(engine.counters().batchedDistanceCalcs,
                      engine.counters().distanceCalcs);
        }
    }
}

}  // namespace
