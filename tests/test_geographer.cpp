#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/geographer.hpp"
#include "gen/delaunay2d.hpp"
#include "gen/delaunay3d.hpp"
#include "gen/grid.hpp"
#include "graph/metrics.hpp"
#include "support/rng.hpp"

namespace {

using geo::Point2;
using geo::core::partitionGeographer;
using geo::core::Settings;

TEST(Geographer, PartitionCoversAllPointsWithinBalance) {
    const auto mesh = geo::gen::delaunay2d(5000, 1);
    Settings s;
    const auto res = partitionGeographer<2>(mesh.points, {}, 8, 4, s);
    ASSERT_EQ(res.partition.size(), mesh.points.size());
    std::set<std::int32_t> used(res.partition.begin(), res.partition.end());
    EXPECT_EQ(used.size(), 8u);
    EXPECT_LE(geo::graph::imbalance(res.partition, 8), s.epsilon + 1e-9);
    EXPECT_LE(res.imbalance, s.epsilon + 1e-9);
}

class GeographerRankSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, GeographerRankSweep, ::testing::Values(1, 2, 5, 8));

TEST_P(GeographerRankSweep, RankCountDoesNotBreakBalance) {
    const int ranks = GetParam();
    const auto mesh = geo::gen::delaunay2d(3000, 2);
    Settings s;
    const auto res = partitionGeographer<2>(mesh.points, {}, 6, ranks, s);
    EXPECT_LE(geo::graph::imbalance(res.partition, 6), s.epsilon + 1e-9);
    // Phases were recorded.
    EXPECT_TRUE(res.phaseSeconds.count("hilbert"));
    EXPECT_TRUE(res.phaseSeconds.count("redistribute"));
    EXPECT_TRUE(res.phaseSeconds.count("kmeans"));
}

TEST(Geographer, BlocksMoreNumerousThanRanks) {
    // k is independent of the number of processes (paper §4.5).
    const auto mesh = geo::gen::delaunay2d(4000, 3);
    Settings s;
    const auto res = partitionGeographer<2>(mesh.points, {}, 16, 4, s);
    EXPECT_LE(geo::graph::imbalance(res.partition, 16), s.epsilon + 1e-9);
}

TEST(Geographer, BlocksFewerThanRanks) {
    const auto mesh = geo::gen::delaunay2d(2000, 4);
    Settings s;
    const auto res = partitionGeographer<2>(mesh.points, {}, 3, 8, s);
    EXPECT_LE(geo::graph::imbalance(res.partition, 3), s.epsilon + 1e-9);
}

TEST(Geographer, WeightedPartitionBalancesWeight) {
    const auto mesh = geo::gen::grid2d(60, 60);
    std::vector<double> w(mesh.points.size());
    // Strong weight gradient along x.
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] = 1.0 + 9.0 * (mesh.points[i][0] / 59.0);
    Settings s;
    s.epsilon = 0.05;
    s.maxIterations = 80;
    const auto res = partitionGeographer<2>(mesh.points, w, 6, 2, s);
    EXPECT_LE(geo::graph::imbalance(res.partition, 6, w), s.epsilon + 1e-9);
    // Unweighted sizes must differ: heavy blocks hold fewer points.
    std::vector<std::int64_t> counts(6, 0);
    for (const auto b : res.partition) counts[static_cast<std::size_t>(b)]++;
    EXPECT_GT(*std::max_element(counts.begin(), counts.end()),
              *std::min_element(counts.begin(), counts.end()));
}

TEST(Geographer, ProducesCompactBlocksOnGrid) {
    // On a uniform grid, k-means blocks must be connected and compact —
    // the shape-optimization claim of the paper (far fewer disconnected
    // blocks than arbitrary assignments).
    const auto mesh = geo::gen::grid2d(50, 50);
    Settings s;
    const auto res = partitionGeographer<2>(mesh.points, {}, 5, 2, s);
    const auto m = geo::graph::evaluatePartition(mesh.graph, res.partition, 5);
    EXPECT_EQ(m.disconnectedBlocks, 0);
    EXPECT_EQ(m.emptyBlocks, 0);
    // A 5-block partition of a 50x50 grid should cut far fewer than the
    // worst case; generous sanity bound.
    EXPECT_LT(m.edgeCut, 500);
}

TEST(Geographer, WorksIn3d) {
    const auto mesh = geo::gen::delaunay3d(2500, 5);
    Settings s;
    const auto res = partitionGeographer<3>(mesh.points, {}, 6, 3, s);
    EXPECT_LE(geo::graph::imbalance(res.partition, 6), s.epsilon + 1e-9);
    const auto m = geo::graph::evaluatePartition(mesh.graph, res.partition, 6);
    EXPECT_EQ(m.emptyBlocks, 0);
}

TEST(Geographer, DeterministicAcrossRankCounts) {
    // The partition depends on the rank count (different local samples),
    // but each configuration must be reproducible.
    const auto mesh = geo::gen::delaunay2d(2000, 6);
    Settings s;
    const auto a = partitionGeographer<2>(mesh.points, {}, 4, 3, s);
    const auto b = partitionGeographer<2>(mesh.points, {}, 4, 3, s);
    EXPECT_EQ(a.partition, b.partition);
}

TEST(Geographer, CountersAreAggregated) {
    const auto mesh = geo::gen::delaunay2d(3000, 7);
    Settings s;
    const auto res = partitionGeographer<2>(mesh.points, {}, 8, 4, s);
    EXPECT_GT(res.counters.pointEvaluations, 0u);
    EXPECT_GT(res.counters.distanceCalcs, 0u);
    EXPECT_GT(res.counters.balanceIterations, 0u);
    EXPECT_GT(res.counters.outerIterations, 0);
}

TEST(Geographer, RunStatsTrackCommunication) {
    const auto mesh = geo::gen::delaunay2d(2000, 8);
    Settings s;
    const auto res = partitionGeographer<2>(mesh.points, {}, 4, 4, s);
    EXPECT_GT(res.runStats.totalBytes, 0u);
    EXPECT_GT(res.runStats.collectives, 0u);
    EXPECT_GT(res.runStats.maxModeledCommSeconds, 0.0);
}

TEST(Geographer, RejectsBadArguments) {
    const auto mesh = geo::gen::delaunay2d(100, 9);
    Settings s;
    EXPECT_THROW((void)partitionGeographer<2>(mesh.points, {}, 0, 1, s),
                 std::invalid_argument);
    EXPECT_THROW((void)partitionGeographer<2>(mesh.points, {}, 200, 1, s),
                 std::invalid_argument);
    EXPECT_THROW((void)partitionGeographer<2>(std::span<const Point2>{}, {}, 1, 1, s),
                 std::invalid_argument);
}

TEST(Geographer, NonUniformTargetsReportCorrectImbalance) {
    // Regression for the metric bug: runs with Settings::targetFractions
    // used to be evaluated against the uniform ceil(W/k) denominator, so a
    // partition that hit its 60/25/15 target dead-on reported ~80%
    // imbalance. End-to-end: partition, then evaluate with the
    // fraction-aware overload.
    const auto mesh = geo::gen::delaunay2d(5000, 11);
    Settings s;
    s.targetFractions = {0.6, 0.25, 0.15};
    s.epsilon = 0.05;
    s.maxIterations = 80;
    const auto res = partitionGeographer<2>(mesh.points, {}, 3, 2, s);
    // The partitioner's own (fraction-aware) imbalance met epsilon...
    EXPECT_LE(res.imbalance, s.epsilon + 1e-9);
    // ...and the fraction-aware metric agrees with it.
    const auto imb =
        geo::graph::imbalance(res.partition, 3, {}, s.targetFractions);
    EXPECT_NEAR(imb, res.imbalance, 1e-9);
    EXPECT_LE(imb, s.epsilon + 1e-9);
    // The uniform metric on the same partition is far off target — the
    // bogus number previously reported.
    EXPECT_GT(geo::graph::imbalance(res.partition, 3), 0.5);
    // evaluatePartition plumbs the fractions through to its imbalance.
    const auto m = geo::graph::evaluatePartition(mesh.graph, res.partition, 3, {},
                                                 false, s.targetFractions);
    EXPECT_NEAR(m.imbalance, imb, 1e-12);
}

TEST(Geographer, EpsilonVariantsAreRespected) {
    const auto mesh = geo::gen::delaunay2d(4000, 10);
    for (const double eps : {0.03, 0.05}) {
        Settings s;
        s.epsilon = eps;
        const auto res = partitionGeographer<2>(mesh.points, {}, 10, 2, s);
        EXPECT_LE(geo::graph::imbalance(res.partition, 10), eps + 1e-9)
            << "epsilon " << eps;
    }
}

}  // namespace
