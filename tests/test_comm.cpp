#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "par/comm.hpp"

namespace {

using geo::par::Comm;
using geo::par::CostModel;
using geo::par::runSpmd;

class CommParam : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankCounts, CommParam, ::testing::Values(1, 2, 3, 4, 8, 13));

TEST_P(CommParam, RankAndSizeAreConsistent) {
    const int p = GetParam();
    std::atomic<int> sum{0};
    runSpmd(p, [&](Comm& comm) {
        EXPECT_EQ(comm.size(), p);
        EXPECT_GE(comm.rank(), 0);
        EXPECT_LT(comm.rank(), p);
        sum += comm.rank();
    });
    EXPECT_EQ(sum.load(), p * (p - 1) / 2);
}

TEST_P(CommParam, AllreduceSumScalar) {
    const int p = GetParam();
    runSpmd(p, [&](Comm& comm) {
        const int total = comm.allreduceSum(comm.rank() + 1);
        EXPECT_EQ(total, p * (p + 1) / 2);
    });
}

TEST_P(CommParam, AllreduceSumVector) {
    const int p = GetParam();
    runSpmd(p, [&](Comm& comm) {
        std::vector<double> v{static_cast<double>(comm.rank()), 1.0, -2.0};
        comm.allreduceSum(std::span<double>(v));
        EXPECT_DOUBLE_EQ(v[0], p * (p - 1) / 2.0);
        EXPECT_DOUBLE_EQ(v[1], p);
        EXPECT_DOUBLE_EQ(v[2], -2.0 * p);
    });
}

TEST_P(CommParam, AllreduceMinMax) {
    const int p = GetParam();
    runSpmd(p, [&](Comm& comm) {
        EXPECT_EQ(comm.allreduceMin(comm.rank()), 0);
        EXPECT_EQ(comm.allreduceMax(comm.rank()), p - 1);
    });
}

TEST_P(CommParam, BroadcastFromEveryRoot) {
    const int p = GetParam();
    runSpmd(p, [&](Comm& comm) {
        for (int root = 0; root < p; ++root) {
            std::vector<int> data(4, comm.rank() == root ? 77 + root : -1);
            comm.broadcast(std::span<int>(data), root);
            for (int v : data) EXPECT_EQ(v, 77 + root);
        }
    });
}

TEST_P(CommParam, AllgatherOrdersByRank) {
    const int p = GetParam();
    runSpmd(p, [&](Comm& comm) {
        const auto all = comm.allgather(comm.rank() * 10);
        ASSERT_EQ(static_cast<int>(all.size()), p);
        for (int r = 0; r < p; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 10);
    });
}

TEST_P(CommParam, AllgathervVariableSizes) {
    const int p = GetParam();
    runSpmd(p, [&](Comm& comm) {
        // Rank r contributes r+1 copies of r.
        std::vector<int> mine(static_cast<std::size_t>(comm.rank() + 1), comm.rank());
        const auto all = comm.allgatherv(std::span<const int>(mine));
        ASSERT_EQ(static_cast<int>(all.size()), p * (p + 1) / 2);
        std::size_t pos = 0;
        for (int r = 0; r < p; ++r)
            for (int i = 0; i <= r; ++i) EXPECT_EQ(all[pos++], r);
    });
}

TEST_P(CommParam, AlltoallvRoutesMessages) {
    const int p = GetParam();
    runSpmd(p, [&](Comm& comm) {
        // Message from r to s: value 100*r + s, repeated (s+1) times.
        std::vector<std::vector<int>> sendTo(static_cast<std::size_t>(p));
        for (int s = 0; s < p; ++s)
            sendTo[static_cast<std::size_t>(s)]
                .assign(static_cast<std::size_t>(s + 1), 100 * comm.rank() + s);
        const auto recv = comm.alltoallv(sendTo);
        ASSERT_EQ(static_cast<int>(recv.size()), p * (comm.rank() + 1));
        std::size_t pos = 0;
        for (int r = 0; r < p; ++r)
            for (int i = 0; i <= comm.rank(); ++i)
                EXPECT_EQ(recv[pos++], 100 * r + comm.rank());
    });
}

TEST_P(CommParam, ExscanSum) {
    const int p = GetParam();
    runSpmd(p, [&](Comm& comm) {
        const auto before = comm.exscanSum(static_cast<std::uint64_t>(comm.rank() + 1));
        std::uint64_t expected = 0;
        for (int r = 0; r < comm.rank(); ++r) expected += static_cast<std::uint64_t>(r + 1);
        EXPECT_EQ(before, expected);
    });
}

TEST_P(CommParam, CollectivesComposeAcrossIterations) {
    const int p = GetParam();
    runSpmd(p, [&](Comm& comm) {
        double value = comm.rank();
        for (int iter = 0; iter < 20; ++iter) {
            value = comm.allreduceSum(value) / p + 1.0;
        }
        // All ranks converge to the same fixed sequence.
        const double spread = comm.allreduceMax(value) - comm.allreduceMin(value);
        EXPECT_DOUBLE_EQ(spread, 0.0);
    });
}

TEST(CommStats, CountsBytesAndCollectives) {
    runSpmd(4, [&](Comm& comm) {
        comm.resetStats();
        (void)comm.allreduceSum(1.0);
        const auto& s = comm.stats();
        EXPECT_EQ(s.collectives, 1u);
        EXPECT_EQ(s.bytesSent, sizeof(double));
        EXPECT_GT(s.modeledCommSeconds, 0.0);
    });
}

TEST(CommStats, SerialCommunicatesNothing) {
    runSpmd(1, [&](Comm& comm) {
        comm.resetStats();
        (void)comm.allreduceSum(1.0);
        std::vector<int> v{1};
        comm.broadcast(std::span<int>(v));
        EXPECT_EQ(comm.stats().bytesSent, 0u);
    });
}

TEST(CostModel, AllreduceGrowsWithRanksAndBytes) {
    const CostModel m;
    EXPECT_LT(m.allreduce(2, 8), m.allreduce(1024, 8));
    EXPECT_LT(m.allreduce(64, 8), m.allreduce(64, 1 << 20));
}

TEST(CostModel, CrossIslandPenaltyKicksInBeyondIslandSize) {
    const CostModel m;
    const double below = m.allreduce(8192, 1 << 20);
    const double above = m.allreduce(8193, 1 << 20);
    EXPECT_GT(above, below * 1.5);
}

TEST(RunStats, ModeledTimeCombinesComputeAndComm) {
    const auto stats = runSpmd(4, [&](Comm& comm) {
        double sink = 0.0;
        for (int i = 0; i < 200000; ++i) sink += i;
        (void)comm.allreduceSum(sink > 0 ? 1.0 : 2.0);
    });
    EXPECT_GT(stats.maxCpuSeconds, 0.0);
    EXPECT_GT(stats.maxModeledCommSeconds, 0.0);
    EXPECT_NEAR(stats.modeledSeconds(),
                stats.maxCpuSeconds + stats.maxModeledCommSeconds, 1e-15);
}

TEST(Machine, PropagatesBodyExceptions) {
    geo::par::Machine machine(1);
    EXPECT_THROW(machine.run([](Comm&) { throw std::runtime_error("rank failure"); }),
                 std::runtime_error);
}

TEST(Machine, RejectsNonPositiveRankCount) {
    EXPECT_THROW(geo::par::Machine(0), std::invalid_argument);
}

TEST(Machine, IsReusableAcrossRuns) {
    geo::par::Machine machine(3);
    for (int i = 0; i < 3; ++i) {
        const auto stats = machine.run([&](Comm& comm) {
            (void)comm.allreduceSum(comm.rank());
        });
        EXPECT_EQ(stats.collectives, 1u);
    }
}

}  // namespace
