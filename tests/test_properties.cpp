// Cross-tool property tests: invariants that must hold for EVERY
// partitioner on EVERY mesh family, swept with parameterized gtest.
#include <gtest/gtest.h>

#include <set>

#include "baseline/tools.hpp"
#include "core/balanced_kmeans.hpp"
#include "gen/registry.hpp"
#include "graph/metrics.hpp"
#include "par/comm.hpp"
#include "support/rng.hpp"

namespace {

using namespace geo;

struct Sweep {
    std::size_t toolIndex;
    std::size_t familyIndex;
    std::int32_t k;
};

class ToolMeshSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, ToolMeshSweep,
    ::testing::Combine(::testing::Range(0, 5),      // tool
                       ::testing::Range(0, 8),      // 2D family
                       ::testing::Values(4, 16)));  // k

TEST_P(ToolMeshSweep, PartitionIsValidBalancedAndDeterministic) {
    const auto [toolIdx, familyIdx, k] = GetParam();
    const auto& tool = baseline::tools2()[static_cast<std::size_t>(toolIdx)];
    const auto& family = gen::catalog2d()[static_cast<std::size_t>(familyIdx)];
    const auto mesh = family.make(2500, 97);

    const auto a = tool.run(mesh.points, mesh.weights, k, 0.05, 2, 7);
    // Validity: every vertex assigned, every block in range and non-empty.
    ASSERT_EQ(a.partition.size(), mesh.points.size());
    std::set<std::int32_t> used(a.partition.begin(), a.partition.end());
    EXPECT_EQ(used.size(), static_cast<std::size_t>(k)) << "empty blocks";
    EXPECT_GE(*used.begin(), 0);
    EXPECT_LT(*used.rbegin(), k);
    // Balance (MJ's quantile rounding can exceed slightly on weighted
    // instances; everything stays within 12%).
    EXPECT_LE(graph::imbalance(a.partition, k, mesh.weights), 0.12) << tool.name;
    // Determinism.
    const auto b = tool.run(mesh.points, mesh.weights, k, 0.05, 2, 7);
    EXPECT_EQ(a.partition, b.partition) << tool.name;
}

TEST(KMeansInvariant, FinalAssignmentIsWeightedVoronoi) {
    // After convergence with balance reached, every point must sit in the
    // cluster minimizing effective distance dist/influence w.r.t. the
    // returned centers+influence — the defining property of §4.2.
    Xoshiro256 rng(123);
    std::vector<Point2> pts;
    for (int i = 0; i < 3000; ++i) pts.push_back(Point2{{rng.uniform(), rng.uniform()}});
    std::vector<Point2> centers;
    for (int c = 0; c < 6; ++c) centers.push_back(Point2{{rng.uniform(), rng.uniform()}});
    core::Settings s;
    s.epsilon = 0.1;  // generous: guarantees the balance early-return path
    par::runSpmd(1, [&](par::Comm& comm) {
        const auto out = core::balancedKMeans<2>(comm, pts, {}, centers, s);
        ASSERT_LE(out.imbalance, s.epsilon);
        for (std::size_t p = 0; p < pts.size(); ++p) {
            const auto assigned = static_cast<std::size_t>(out.assignment[p]);
            const double own = distance(pts[p], out.centers[assigned]) / out.influence[assigned];
            for (std::size_t c = 0; c < out.centers.size(); ++c) {
                const double other = distance(pts[p], out.centers[c]) / out.influence[c];
                EXPECT_GE(other, own - 1e-12)
                    << "point " << p << " prefers cluster " << c;
            }
        }
    });
}

TEST(KMeansInvariant, CentersLieInConvexHullBox) {
    // Cluster centers are weighted means of points, so they must stay
    // inside the bounding box of the input.
    Xoshiro256 rng(31);
    std::vector<Point2> pts;
    for (int i = 0; i < 2000; ++i)
        pts.push_back(Point2{{rng.uniform(2.0, 3.0), rng.uniform(-1.0, 0.0)}});
    std::vector<Point2> centers;
    for (int c = 0; c < 5; ++c)
        centers.push_back(Point2{{rng.uniform(2.0, 3.0), rng.uniform(-1.0, 0.0)}});
    core::Settings s;
    par::runSpmd(1, [&](par::Comm& comm) {
        const auto out = core::balancedKMeans<2>(comm, pts, {}, centers, s);
        for (const auto& c : out.centers) {
            EXPECT_GE(c[0], 2.0 - 1e-12);
            EXPECT_LE(c[0], 3.0 + 1e-12);
            EXPECT_GE(c[1], -1.0 - 1e-12);
            EXPECT_LE(c[1], 0.0 + 1e-12);
        }
        for (const double inf : out.influence) EXPECT_GT(inf, 0.0);
    });
}

TEST(KMeansInvariant, ObjectiveNotWorseThanInitialAssignment) {
    // Balanced k-means trades SSE for balance, but must still end far
    // below the cost of the *initial* center configuration.
    Xoshiro256 rng(37);
    std::vector<Point2> pts;
    for (int i = 0; i < 4000; ++i) pts.push_back(Point2{{rng.uniform(), rng.uniform()}});
    // Adversarial initial centers: all in one corner.
    std::vector<Point2> centers;
    for (int c = 0; c < 8; ++c)
        centers.push_back(Point2{{0.01 * rng.uniform(), 0.01 * rng.uniform()}});
    auto sseOf = [&](const std::vector<Point2>& cs,
                     const std::vector<std::int32_t>& assign) {
        double s = 0.0;
        for (std::size_t i = 0; i < pts.size(); ++i)
            s += squaredDistance(pts[i], cs[static_cast<std::size_t>(assign[i])]);
        return s;
    };
    // Initial: nearest-center assignment to the corner centers.
    std::vector<std::int32_t> initAssign(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        double best = 1e300;
        for (std::size_t c = 0; c < centers.size(); ++c) {
            const double d = squaredDistance(pts[i], centers[c]);
            if (d < best) {
                best = d;
                initAssign[i] = static_cast<std::int32_t>(c);
            }
        }
    }
    core::Settings s;
    par::runSpmd(1, [&](par::Comm& comm) {
        const auto out = core::balancedKMeans<2>(comm, pts, {}, centers, s);
        EXPECT_LT(sseOf(out.centers, out.assignment), 0.5 * sseOf(centers, initAssign));
    });
}

TEST(MeshFamilies, AreDeterministicPerSeedAndDifferAcrossSeeds) {
    for (const auto& spec : gen::catalog2d()) {
        const auto a = spec.make(600, 5);
        const auto b = spec.make(600, 5);
        const auto c = spec.make(600, 6);
        EXPECT_EQ(a.points, b.points) << spec.name;
        EXPECT_NE(a.points, c.points) << spec.name;
    }
}

TEST(MeshFamilies, EveryFamilyIsPartitionableEndToEnd) {
    for (const auto& spec : gen::catalog3d()) {
        const auto mesh = spec.make(1500, 3);
        const auto res =
            baseline::tools3().front().run(mesh.points, mesh.weights, 5, 0.05, 2, 1);
        EXPECT_LE(graph::imbalance(res.partition, 5, mesh.weights), 0.05 + 1e-9)
            << spec.name;
    }
}

}  // namespace
